package privreg

import (
	"fmt"
	"testing"
)

func multiOptions(seed int64, k int) []Option {
	return append(testPoolOptions(seed), WithOutcomes(k))
}

// syntheticRow derives the k responses of row i deterministically from its
// covariate, so two identically-seeded instances fed through different entry
// points see exactly the same data.
func syntheticRow(i, dim, k int) ([]float64, []float64) {
	x, y0 := syntheticPoint(i, dim)
	ys := make([]float64, k)
	ys[0] = y0
	for o := 1; o < k; o++ {
		var dot float64
		for j := 0; j < dim; j++ {
			dot += x[j] * float64((j+o)%dim+1)
		}
		ys[o] = dot / float64(dim*dim)
	}
	return x, ys
}

// TestMultiOutcomeEstimator drives the public multi-outcome surface: New
// returns a MultiEstimator whose row-wise and flat entry points land
// bit-identically, and whose per-outcome estimates are stable under repeated
// calls (the memoized lazy solve).
func TestMultiOutcomeEstimator(t *testing.T) {
	const dim, k, n = 4, 3, 20
	a, err := New("multi-outcome", multiOptions(11, k)...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("multi-outcome", multiOptions(11, k)...)
	if err != nil {
		t.Fatal(err)
	}
	ma, ok := a.(MultiEstimator)
	if !ok {
		t.Fatal("multi-outcome estimator does not implement MultiEstimator")
	}
	mb := b.(MultiEstimator)
	if ma.Outcomes() != k {
		t.Fatalf("Outcomes() = %d, want %d", ma.Outcomes(), k)
	}

	var flatXs, flatYs []float64
	for i := 0; i < n; i++ {
		x, ys := syntheticRow(i, dim, k)
		if err := ma.ObserveMulti(x, ys); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		flatXs = append(flatXs, x...)
		flatYs = append(flatYs, ys...)
	}
	if err := mb.ObserveMultiFlat(dim, flatXs, flatYs); err != nil {
		t.Fatal(err)
	}

	for o := 0; o < k; o++ {
		ta, err := ma.EstimateOutcome(o)
		if err != nil {
			t.Fatalf("outcome %d: %v", o, err)
		}
		tb, err := mb.EstimateOutcome(o)
		if err != nil {
			t.Fatalf("outcome %d: %v", o, err)
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("outcome %d coord %d: row-wise %v != flat %v", o, j, ta[j], tb[j])
			}
		}
		again, err := ma.EstimateOutcome(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ta {
			if again[j] != ta[j] {
				t.Fatalf("outcome %d: memoized estimate drifted at coord %d", o, j)
			}
		}
	}
	if _, err := ma.EstimateOutcome(k); err == nil {
		t.Fatal("out-of-range outcome accepted")
	}
	if _, err := ma.EstimateOutcome(-1); err == nil {
		t.Fatal("negative outcome accepted")
	}
	if err := ma.ObserveMulti(flatXs[:dim], flatYs[:k-1]); err == nil {
		t.Fatal("short response row accepted")
	}
}

// TestWithOutcomesRequiresMultiMechanism pins the construction-time guard:
// outcome counts above 1 only make sense on the multi-outcome mechanism.
func TestWithOutcomesRequiresMultiMechanism(t *testing.T) {
	for _, mech := range []string{"gradient", "projected", "generic-erm", "nonprivate"} {
		if _, err := New(mech, append(testPoolOptions(1), WithOutcomes(2))...); err == nil {
			t.Fatalf("%s accepted WithOutcomes(2)", mech)
		}
	}
	if _, err := New("multi-outcome", append(testPoolOptions(1), WithOutcomes(-1))...); err == nil {
		t.Fatal("negative outcome count accepted")
	}
	// Aliases resolve to the same capability.
	for _, alias := range []string{"primo", "multi"} {
		if _, err := New(alias, multiOptions(1, 2)...); err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
	}
}

// TestSingleOutcomeAdapterDegrades checks the graceful k = 1 degradation on
// mechanisms without native multi support: the MultiEstimator surface exists,
// reports one outcome, and rejects wider rows.
func TestSingleOutcomeAdapterDegrades(t *testing.T) {
	est, err := New("gradient", testPoolOptions(3)...)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := est.(MultiEstimator)
	if !ok {
		t.Fatal("adapter does not implement MultiEstimator")
	}
	if m.Outcomes() != 1 {
		t.Fatalf("Outcomes() = %d, want 1", m.Outcomes())
	}
	x, ys := syntheticRow(0, 4, 1)
	if err := m.ObserveMulti(x, ys); err != nil {
		t.Fatal(err)
	}
	theta, err := m.EstimateOutcome(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for j := range theta {
		if theta[j] != want[j] {
			t.Fatalf("coord %d: EstimateOutcome(0) %v != Estimate() %v", j, theta[j], want[j])
		}
	}
	if err := m.ObserveMulti(x, []float64{1, 2}); err == nil {
		t.Fatal("two-response row accepted by single-outcome estimator")
	}
	if _, err := m.EstimateOutcome(1); err == nil {
		t.Fatal("outcome 1 accepted by single-outcome estimator")
	}
}

// TestPoolMultiOutcomeCheckpointRestore is the durability property at the
// public layer: a multi-outcome pool checkpointed mid-stream and restored
// into a differently-seeded pool continues bit-identically with an
// uninterrupted reference, for every outcome.
func TestPoolMultiOutcomeCheckpointRestore(t *testing.T) {
	const dim, k, n, cut = 4, 3, 24, 10
	newPool := func(seed int64) *Pool {
		p, err := NewPool("multi-outcome", multiOptions(seed, k)...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ref := newPool(21)
	live := newPool(21)

	feed := func(p *Pool, lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			x, ys := syntheticRow(i, dim, k)
			for s := 0; s < 2; s++ {
				id := fmt.Sprintf("st-%d", s)
				if err := p.ObserveMultiFlat(id, dim, x, ys); err != nil {
					t.Fatalf("%s row %d: %v", id, i, err)
				}
			}
		}
	}
	feed(ref, 0, n)
	feed(live, 0, cut)

	blob, err := live.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored := newPool(99999) // different seed: state must come from the blob
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if got := restored.Outcomes(); got != k {
		t.Fatalf("restored pool serves %d outcomes, want %d", got, k)
	}
	feed(restored, cut, n)

	for s := 0; s < 2; s++ {
		id := fmt.Sprintf("st-%d", s)
		if length, ok := restored.LenOK(id); !ok || length != n {
			t.Fatalf("%s: len %d ok %v, want %d", id, length, ok, n)
		}
		for o := 0; o < k; o++ {
			want, err := ref.EstimateOutcome(id, o)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.EstimateOutcome(id, o)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s outcome %d coord %d: restored %v != reference %v", id, o, j, got[j], want[j])
				}
			}
		}
	}
}
