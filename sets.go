package privreg

import (
	"privreg/internal/constraint"
	"privreg/internal/vec"
)

// Constraint is a convex constraint set C ⊂ R^d for the regression parameter.
// Construct one with L2Constraint, L1Constraint, LpConstraint,
// SimplexConstraint, GroupL1Constraint, BoxConstraint or PolytopeConstraint.
type Constraint struct {
	set constraint.Set
}

// Domain describes the covariate domain X ⊂ R^d. Its Gaussian width drives the
// projection dimension of NewProjectedRegression. Construct one with
// UnitBallDomain, SparseDomain or L1Domain.
type Domain struct {
	set constraint.Set
}

// L2Constraint returns the Euclidean ball of the given radius (ridge
// regression).
func L2Constraint(dim int, radius float64) Constraint {
	return Constraint{set: constraint.NewL2Ball(dim, radius)}
}

// L1Constraint returns the L1 ball of the given radius (Lasso regression).
func L1Constraint(dim int, radius float64) Constraint {
	return Constraint{set: constraint.NewL1Ball(dim, radius)}
}

// LpConstraint returns the Lp ball of the given radius for p ≥ 1.
func LpConstraint(dim int, p, radius float64) Constraint {
	return Constraint{set: constraint.NewLpBall(dim, p, radius)}
}

// SimplexConstraint returns the probability simplex scaled to the given total
// mass.
func SimplexConstraint(dim int, mass float64) Constraint {
	return Constraint{set: constraint.NewSimplex(dim, mass)}
}

// GroupL1Constraint returns the group/block-L1 ball with consecutive blocks of
// the given size.
func GroupL1Constraint(dim, groupSize int, radius float64) Constraint {
	return Constraint{set: constraint.NewGroupL1Ball(dim, groupSize, radius)}
}

// BoxConstraint returns the hypercube [-halfWidth, halfWidth]^d.
func BoxConstraint(dim int, halfWidth float64) Constraint {
	return Constraint{set: constraint.NewBox(dim, halfWidth)}
}

// PolytopeConstraint returns the convex hull of the given vertices.
func PolytopeConstraint(vertices [][]float64) Constraint {
	vs := make([]vec.Vector, len(vertices))
	for i, v := range vertices {
		vs[i] = vec.Vector(v).Clone()
	}
	return Constraint{set: constraint.NewPolytope(vs)}
}

// Dim returns the ambient dimension of the constraint set.
func (c Constraint) Dim() int { return c.set.Dim() }

// Diameter returns ‖C‖ = sup_{θ∈C} ‖θ‖₂.
func (c Constraint) Diameter() float64 { return c.set.Diameter() }

// GaussianWidth returns the (analytic) Gaussian width w(C).
func (c Constraint) GaussianWidth() float64 { return c.set.GaussianWidth() }

// Project returns the Euclidean projection of x onto the constraint set.
func (c Constraint) Project(x []float64) []float64 {
	return c.set.Project(vec.Vector(x))
}

// Contains reports whether x lies in the constraint set up to tolerance tol.
func (c Constraint) Contains(x []float64, tol float64) bool {
	return c.set.Contains(vec.Vector(x), tol)
}

// Name returns a short description of the constraint set.
func (c Constraint) Name() string { return c.set.Name() }

// valid reports whether the Constraint was built by one of the constructors.
func (c Constraint) valid() bool { return c.set != nil }

// UnitBallDomain describes covariates drawn from the Euclidean unit ball (the
// generic, worst-case domain with Gaussian width ≈ √d).
func UnitBallDomain(dim int) Domain {
	return Domain{set: constraint.NewL2Ball(dim, 1)}
}

// SparseDomain describes covariates that are k-sparse unit vectors, the
// low-Gaussian-width domain (≈ √(k log(d/k))) motivating Algorithm PRIVINCREG2.
func SparseDomain(dim, sparsity int) Domain {
	return Domain{set: constraint.NewSparseSet(dim, sparsity, 1)}
}

// L1Domain describes covariates drawn from the L1 ball of the given radius
// (Gaussian width ≈ radius·√(log d)).
func L1Domain(dim int, radius float64) Domain {
	return Domain{set: constraint.NewL1Ball(dim, radius)}
}

// Dim returns the ambient dimension of the domain.
func (d Domain) Dim() int { return d.set.Dim() }

// GaussianWidth returns the (analytic) Gaussian width w(X).
func (d Domain) GaussianWidth() float64 { return d.set.GaussianWidth() }

// Contains reports whether x lies in the domain up to tolerance tol.
func (d Domain) Contains(x []float64, tol float64) bool {
	return d.set.Contains(vec.Vector(x), tol)
}

// Name returns a short description of the domain.
func (d Domain) Name() string { return d.set.Name() }

// valid reports whether the Domain was built by one of the constructors.
func (d Domain) valid() bool { return d.set != nil }
