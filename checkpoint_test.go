package privreg

import (
	"math"
	"testing"
)

// mechanismCase describes one registry mechanism with options suitable for
// fast deterministic tests.
type mechanismCase struct {
	name    string
	horizon int
	dim     int
	opts    func(seed int64) []Option
}

// testMechanismCases covers every registered mechanism.
func testMechanismCases() []mechanismCase {
	l2opts := func(dim, horizon int) func(seed int64) []Option {
		return func(seed int64) []Option {
			return []Option{
				WithEpsilonDelta(1, 1e-6),
				WithHorizon(horizon),
				WithConstraint(L2Constraint(dim, 1)),
				WithSeed(seed),
				WithWarmStart(true),
				WithMaxIterations(20),
			}
		}
	}
	sparseOpts := func(dim, horizon int, extra ...Option) func(seed int64) []Option {
		return func(seed int64) []Option {
			return append([]Option{
				WithEpsilonDelta(1, 1e-6),
				WithHorizon(horizon),
				WithConstraint(L1Constraint(dim, 1)),
				WithDomain(SparseDomain(dim, 3)),
				WithSeed(seed),
				WithMaxIterations(20),
			}, extra...)
		}
	}
	return []mechanismCase{
		{name: "gradient", horizon: 24, dim: 4, opts: l2opts(4, 24)},
		{name: "projected", horizon: 24, dim: 16, opts: sparseOpts(16, 24)},
		{name: "robust-projected", horizon: 24, dim: 16, opts: sparseOpts(16, 24, WithDomainOracle(func(x []float64) bool {
			nz := 0
			for _, v := range x {
				if v != 0 {
					nz++
				}
			}
			return nz <= 4
		}))},
		{name: "generic-erm", horizon: 24, dim: 3, opts: l2opts(3, 24)},
		{name: "naive-recompute", horizon: 12, dim: 3, opts: func(seed int64) []Option {
			return []Option{
				WithEpsilonDelta(1, 1e-6),
				WithHorizon(12),
				WithConstraint(L2Constraint(3, 1)),
				WithSeed(seed),
				WithMaxIterations(5),
			}
		}},
		{name: "nonprivate", horizon: 24, dim: 3, opts: l2opts(3, 24)},
	}
}

// syntheticPoint returns a deterministic covariate/response pair independent
// of any estimator state.
func syntheticPoint(i, dim int) ([]float64, float64) {
	x := make([]float64, dim)
	x[i%dim] = 0.8
	x[(i+1)%dim] = 0.3 * math.Sin(float64(i))
	y := 0.5*x[i%dim] - 0.2*x[(i+1)%dim]
	return x, y
}

func sameVector(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", label, len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("%s: coordinate %d differs: %v != %v (not bit-identical)", label, k, a[k], b[k])
		}
	}
}

// TestCheckpointRestoreBitIdentical is the acceptance test of the
// checkpoint/restore guarantee: for every mechanism, checkpoint mid-stream,
// restore into a freshly built estimator, continue both runs, and require the
// published estimates to be bit-identical to the uninterrupted run at several
// timesteps.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	for _, tc := range testMechanismCases() {
		t.Run(tc.name, func(t *testing.T) {
			ckptAt := tc.horizon * 2 / 5
			uninterrupted, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			interrupted, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}

			estimateSteps := map[int]bool{ckptAt + 1: true, tc.horizon * 3 / 4: true, tc.horizon: true}
			var restored Estimator
			feed := func(est Estimator, from, to int) {
				for i := from; i < to; i++ {
					x, y := syntheticPoint(i, tc.dim)
					if err := est.Observe(x, y); err != nil {
						t.Fatalf("Observe(%d): %v", i, err)
					}
				}
			}

			feed(uninterrupted, 0, ckptAt)
			feed(interrupted, 0, ckptAt)

			blob, err := interrupted.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err = New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			if restored.Len() != ckptAt {
				t.Fatalf("restored Len = %d, want %d", restored.Len(), ckptAt)
			}

			for i := ckptAt; i < tc.horizon; i++ {
				x, y := syntheticPoint(i, tc.dim)
				if err := uninterrupted.Observe(x, y); err != nil {
					t.Fatal(err)
				}
				if err := restored.Observe(x, y); err != nil {
					t.Fatal(err)
				}
				if estimateSteps[i+1] {
					a, err := uninterrupted.Estimate()
					if err != nil {
						t.Fatal(err)
					}
					b, err := restored.Estimate()
					if err != nil {
						t.Fatal(err)
					}
					sameVector(t, tc.name, a, b)
				}
			}
		})
	}
}

// TestCheckpointRestoreUnderDifferentSeed verifies that the checkpoint carries
// every randomness position: restoring into an estimator built with a
// *different* seed still continues bit-identically, because all live
// randomness (tree sources, solver sources, sketch spec) comes from the blob.
func TestCheckpointRestoreUnderDifferentSeed(t *testing.T) {
	for _, tc := range testMechanismCases() {
		t.Run(tc.name, func(t *testing.T) {
			ckptAt := tc.horizon / 2
			reference, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < ckptAt; i++ {
				x, y := syntheticPoint(i, tc.dim)
				if err := reference.Observe(x, y); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := reference.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := New(tc.name, tc.opts(977)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			for i := ckptAt; i < tc.horizon; i++ {
				x, y := syntheticPoint(i, tc.dim)
				if err := reference.Observe(x, y); err != nil {
					t.Fatal(err)
				}
				if err := restored.Observe(x, y); err != nil {
					t.Fatal(err)
				}
			}
			a, err := reference.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			sameVector(t, tc.name, a, b)
		})
	}
}

// TestCheckpointMismatchRejected verifies the failure modes: wrong mechanism,
// wrong structural parameters, truncated/garbage blobs.
func TestCheckpointMismatchRejected(t *testing.T) {
	grad, err := New("gradient",
		WithEpsilonDelta(1, 1e-6), WithHorizon(16), WithConstraint(L2Constraint(4, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := grad.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	erm, err := New("generic-erm",
		WithEpsilonDelta(1, 1e-6), WithHorizon(16), WithConstraint(L2Constraint(4, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := erm.UnmarshalBinary(blob); err == nil {
		t.Fatal("cross-mechanism restore should be rejected")
	}

	otherDim, err := New("gradient",
		WithEpsilonDelta(1, 1e-6), WithHorizon(16), WithConstraint(L2Constraint(5, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := otherDim.UnmarshalBinary(blob); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}

	otherHorizon, err := New("gradient",
		WithEpsilonDelta(1, 1e-6), WithHorizon(32), WithConstraint(L2Constraint(4, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := otherHorizon.UnmarshalBinary(blob); err == nil {
		t.Fatal("horizon mismatch should be rejected")
	}

	fresh, err := New("gradient",
		WithEpsilonDelta(1, 1e-6), WithHorizon(16), WithConstraint(L2Constraint(4, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.UnmarshalBinary(blob[:len(blob)-5]); err == nil {
		t.Fatal("truncated blob should be rejected")
	}
	if err := fresh.UnmarshalBinary([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage blob should be rejected")
	}
}
