package privreg

import (
	"errors"
	"fmt"

	"privreg/internal/core"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/sketch"
	"privreg/internal/vec"
)

// Privacy is an (ε, δ) differential-privacy budget for the entire output
// sequence of an estimator.
type Privacy struct {
	// Epsilon is the privacy-loss bound; must be positive.
	Epsilon float64
	// Delta is the failure probability of the ε bound; must lie in [0, 1) and
	// be strictly positive for the regression mechanisms (they use Gaussian
	// noise).
	Delta float64
}

func (p Privacy) params() dp.Params { return dp.Params{Epsilon: p.Epsilon, Delta: p.Delta} }

// Loss selects the per-datapoint loss of the generic incremental ERM mechanism.
type Loss int

// Supported losses for NewGenericERM and NewNaiveRecompute.
const (
	// SquaredLoss is (y - <x, θ>)², the linear-regression loss.
	SquaredLoss Loss = iota
	// LogisticLoss is ln(1 + exp(-y<x, θ>)), the logistic-regression loss with
	// labels in {-1, +1}.
	LogisticLoss
	// HingeLoss is max(0, 1 - y<x, θ>), the SVM loss.
	HingeLoss
)

// Sketch selects the random-projection backend of NewProjectedRegression.
type Sketch int

// Supported sketch backends.
const (
	// SketchDense is the paper's dense Gaussian projection, O(m·d) per point.
	// The default.
	SketchDense Sketch = iota
	// SketchSRHT is the subsampled randomized Hadamard transform fast path,
	// O(d log d) per point with the same embedding guarantee up to log factors.
	SketchSRHT
	// SketchAuto picks SRHT for large ambient dimensions (d ≥ 64) and the dense
	// projection otherwise.
	SketchAuto
)

func (s Sketch) backend() (sketch.Backend, error) {
	switch s {
	case SketchDense:
		return sketch.BackendDense, nil
	case SketchSRHT:
		return sketch.BackendSRHT, nil
	case SketchAuto:
		return sketch.BackendAuto, nil
	default:
		return 0, fmt.Errorf("privreg: unknown sketch backend %d", int(s))
	}
}

func (l Loss) function() (loss.Function, error) {
	switch l {
	case SquaredLoss:
		return loss.Squared{}, nil
	case LogisticLoss:
		return loss.Logistic{}, nil
	case HingeLoss:
		return loss.Hinge{}, nil
	default:
		return nil, fmt.Errorf("privreg: unknown loss %d", int(l))
	}
}

// Estimator is a streaming private (or baseline) ERM mechanism. Feed the stream
// one labelled point at a time with Observe; Estimate returns the current
// parameter estimate for the prefix observed so far. Estimates are lazy
// post-processing of already-private state, so Estimate may be called at any
// subset of timesteps (or repeatedly) without affecting the privacy guarantee.
type Estimator interface {
	// Name identifies the mechanism.
	Name() string
	// Observe feeds the next covariate/response pair. Covariates are clipped to
	// the unit Euclidean ball and responses to [-1, 1], the normalization the
	// privacy analysis assumes.
	Observe(x []float64, y float64) error
	// Estimate returns the current estimate θ_t, an element of the constraint
	// set.
	Estimate() ([]float64, error)
	// Len returns the number of observations so far.
	Len() int
}

// Config is the common configuration of every estimator constructor.
type Config struct {
	// Privacy is the total (ε, δ) budget for the whole stream. Ignored by the
	// non-private baseline.
	Privacy Privacy
	// Horizon is the stream length T (an upper bound is fine). Required unless
	// UnknownHorizon is set on a regression mechanism.
	Horizon int
	// Constraint is the constraint set C the estimates must lie in. Required.
	Constraint Constraint
	// Domain describes the covariate domain X. Required by
	// NewProjectedRegression (its Gaussian width sizes the sketch); optional
	// elsewhere.
	Domain Domain
	// Seed seeds all randomness (noise and projections) for reproducibility.
	// Two estimators built with the same seed and fed the same stream produce
	// identical outputs.
	Seed int64
	// WarmStart makes the per-timestep optimizer start from the previous
	// estimate rather than from scratch.
	WarmStart bool
	// UnknownHorizon switches the regression mechanisms to the Hybrid
	// continual-sum mechanism so that Horizon only acts as an optimization
	// heuristic, not a hard limit.
	UnknownHorizon bool
	// MaxIterations caps the per-estimate optimizer iterations (0 = default).
	MaxIterations int
	// Tau overrides the recomputation period of NewGenericERM (0 = the paper's
	// theory-optimal choice).
	Tau int
	// ProjectionDim overrides the sketch dimension m of NewProjectedRegression
	// (0 = Gordon's rule).
	ProjectionDim int
	// SketchBackend selects the projection implementation of
	// NewProjectedRegression: the dense Gaussian matrix (default), the
	// O(d log d) SRHT fast path, or automatic selection by dimension.
	SketchBackend Sketch
}

func (cfg Config) validate(needDomain bool) error {
	if !cfg.Constraint.valid() {
		return errors.New("privreg: Config.Constraint is required")
	}
	if cfg.Horizon <= 0 && !cfg.UnknownHorizon {
		return errors.New("privreg: Config.Horizon must be positive (or set UnknownHorizon)")
	}
	if needDomain && !cfg.Domain.valid() {
		return errors.New("privreg: Config.Domain is required by this mechanism")
	}
	if needDomain && cfg.Domain.valid() && cfg.Domain.Dim() != cfg.Constraint.Dim() {
		return errors.New("privreg: Config.Domain and Config.Constraint dimensions differ")
	}
	return nil
}

func (cfg Config) horizonOrDefault() int {
	if cfg.Horizon > 0 {
		return cfg.Horizon
	}
	// A generous default used only for optimizer heuristics when the horizon is
	// unknown.
	return 1 << 20
}

// estimatorAdapter adapts an internal core.Estimator to the public Estimator
// interface (plain []float64 at the boundary).
type estimatorAdapter struct {
	inner core.Estimator
}

func (a estimatorAdapter) Name() string { return a.inner.Name() }

func (a estimatorAdapter) Observe(x []float64, y float64) error {
	return a.inner.Observe(loss.Point{X: vec.Vector(x), Y: y})
}

func (a estimatorAdapter) Estimate() ([]float64, error) {
	theta, err := a.inner.Estimate()
	if err != nil {
		return nil, err
	}
	return []float64(theta), nil
}

func (a estimatorAdapter) Len() int { return a.inner.Len() }

// NewGradientRegression returns Algorithm PRIVINCREG1: private incremental
// least-squares regression via a Tree-Mechanism private gradient function.
// Excess empirical risk grows as ≈ √d (Theorem 4.2), independent of the stream
// length up to polylog factors.
func NewGradientRegression(cfg Config) (Estimator, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	src := randx.NewSource(cfg.Seed)
	inner, err := core.NewGradientRegression(cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), src, core.RegressionOptions{
		MaxIterations: cfg.MaxIterations,
		WarmStart:     cfg.WarmStart,
		UseHybridTree: cfg.UnknownHorizon,
	})
	if err != nil {
		return nil, err
	}
	return estimatorAdapter{inner: inner}, nil
}

// NewProjectedRegression returns Algorithm PRIVINCREG2: private incremental
// least-squares regression in a Gaussian random sketch sized by the Gaussian
// widths of the covariate domain and the constraint set, with the solution
// lifted back to the original space. Excess empirical risk grows as
// ≈ T^{1/3}·(w(X)+w(C))^{2/3} (Theorem 5.7) — dimension-free for sparse
// covariates with an L1-ball constraint.
func NewProjectedRegression(cfg Config) (Estimator, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	backend, err := cfg.SketchBackend.backend()
	if err != nil {
		return nil, err
	}
	src := randx.NewSource(cfg.Seed)
	inner, err := core.NewProjectedRegression(cfg.Domain.set, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), src, core.ProjectedOptions{
		RegressionOptions: core.RegressionOptions{
			MaxIterations: cfg.MaxIterations,
			WarmStart:     cfg.WarmStart,
			UseHybridTree: cfg.UnknownHorizon,
		},
		ProjectionDim: cfg.ProjectionDim,
		Sketch:        backend,
	})
	if err != nil {
		return nil, err
	}
	return estimatorAdapter{inner: inner}, nil
}

// NewRobustProjectedRegression returns the §5.2 extension of
// NewProjectedRegression for streams where only covariates accepted by the
// oracle belong to the small-Gaussian-width domain described by cfg.Domain;
// rejected points are neutralized before touching private state. The utility
// guarantee then applies to the risk restricted to accepted points.
func NewRobustProjectedRegression(cfg Config, oracle func(x []float64) bool) (Estimator, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, errors.New("privreg: nil domain oracle")
	}
	backend, err := cfg.SketchBackend.backend()
	if err != nil {
		return nil, err
	}
	src := randx.NewSource(cfg.Seed)
	inner, err := core.NewRobustProjectedRegression(cfg.Domain.set, cfg.Constraint.set,
		func(x vec.Vector) bool { return oracle([]float64(x)) },
		cfg.Privacy.params(), cfg.horizonOrDefault(), src, core.ProjectedOptions{
			RegressionOptions: core.RegressionOptions{
				MaxIterations: cfg.MaxIterations,
				WarmStart:     cfg.WarmStart,
				UseHybridTree: cfg.UnknownHorizon,
			},
			ProjectionDim: cfg.ProjectionDim,
			Sketch:        backend,
		})
	if err != nil {
		return nil, err
	}
	return estimatorAdapter{inner: inner}, nil
}

// NewGenericERM returns Mechanism PRIVINCERM: the generic transformation of a
// private batch ERM algorithm into a private incremental one, applicable to any
// of the supported losses. Excess empirical risk grows as ≈ (Td)^{1/3} for
// convex losses (Theorem 3.1).
func NewGenericERM(cfg Config, l Loss) (Estimator, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	f, err := l.function()
	if err != nil {
		return nil, err
	}
	src := randx.NewSource(cfg.Seed)
	inner, err := core.NewGenericERM(f, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), src, core.GenericOptions{
		Tau:   cfg.Tau,
		Batch: erm.PrivateBatchOptions{Iterations: cfg.MaxIterations},
	})
	if err != nil {
		return nil, err
	}
	return estimatorAdapter{inner: inner}, nil
}

// NewNaiveRecompute returns the naive private baseline that re-solves a private
// batch ERM problem at every timestep, splitting the budget over all T
// releases. Provided for comparison; its excess risk carries an extra ≈ √T
// factor.
func NewNaiveRecompute(cfg Config, l Loss) (Estimator, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	f, err := l.function()
	if err != nil {
		return nil, err
	}
	src := randx.NewSource(cfg.Seed)
	inner, err := core.NewNaiveRecompute(f, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), src, erm.PrivateBatchOptions{Iterations: cfg.MaxIterations})
	if err != nil {
		return nil, err
	}
	return estimatorAdapter{inner: inner}, nil
}

// NewNonPrivateBaseline returns the exact (non-private) incremental constrained
// least-squares solver: the utility ceiling every private mechanism is compared
// against.
func NewNonPrivateBaseline(cfg Config) (Estimator, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	inner := core.NewNonPrivateIncremental(cfg.Constraint.set, cfg.MaxIterations)
	return estimatorAdapter{inner: inner}, nil
}

// ExcessRisk returns the excess empirical squared-loss risk of estimate on the
// given prefix: Σ(y_i - <x_i, θ>)² minus the minimum achievable over the
// constraint set. It is the quantity bounded by Definition 1 of the paper and
// is what EXPERIMENTS.md reports.
func ExcessRisk(cons Constraint, xs [][]float64, ys []float64, estimate []float64) (float64, error) {
	if !cons.valid() {
		return 0, errors.New("privreg: invalid constraint")
	}
	if len(xs) != len(ys) {
		return 0, errors.New("privreg: covariate and response counts differ")
	}
	state := erm.NewLeastSquaresState(cons.Dim(), cons.set)
	for i, x := range xs {
		state.Observe(vec.Vector(x), ys[i])
	}
	exact := state.Minimize(0)
	excess := state.Risk(vec.Vector(estimate)) - state.Risk(exact)
	if excess < 0 {
		excess = 0
	}
	return excess, nil
}

// GaussianWidthOf estimates the Gaussian width of a constraint set by Monte
// Carlo; exposed because width is the key quantity users need when deciding
// between NewGradientRegression and NewProjectedRegression.
func GaussianWidthOf(cons Constraint, samples int, seed int64) (float64, error) {
	if !cons.valid() {
		return 0, errors.New("privreg: invalid constraint")
	}
	if samples <= 0 {
		samples = 200
	}
	src := randx.NewSource(seed)
	var sum float64
	for i := 0; i < samples; i++ {
		g := vec.Vector(src.NormalVector(cons.Dim(), 1))
		sum += cons.set.SupportFunction(g)
	}
	return sum / float64(samples), nil
}
