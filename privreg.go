package privreg

import (
	"errors"
	"fmt"

	"privreg/internal/codec"
	"privreg/internal/core"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/sketch"
	"privreg/internal/vec"
)

// Privacy is an (ε, δ) differential-privacy budget for the entire output
// sequence of an estimator.
type Privacy struct {
	// Epsilon is the privacy-loss bound; must be positive.
	Epsilon float64
	// Delta is the failure probability of the ε bound; must lie in [0, 1) and
	// be strictly positive for the regression mechanisms (they use Gaussian
	// noise).
	Delta float64
}

func (p Privacy) params() dp.Params { return dp.Params{Epsilon: p.Epsilon, Delta: p.Delta} }

// Loss selects the per-datapoint loss of the generic incremental ERM mechanism.
type Loss int

// Supported losses for NewGenericERM and NewNaiveRecompute.
const (
	// SquaredLoss is (y - <x, θ>)², the linear-regression loss.
	SquaredLoss Loss = iota
	// LogisticLoss is ln(1 + exp(-y<x, θ>)), the logistic-regression loss with
	// labels in {-1, +1}.
	LogisticLoss
	// HingeLoss is max(0, 1 - y<x, θ>), the SVM loss.
	HingeLoss
)

// Sketch selects the random-projection backend of NewProjectedRegression.
type Sketch int

// Supported sketch backends.
const (
	// SketchDense is the paper's dense Gaussian projection, O(m·d) per point.
	// The default.
	SketchDense Sketch = iota
	// SketchSRHT is the subsampled randomized Hadamard transform fast path,
	// O(d log d) per point with the same embedding guarantee up to log factors.
	SketchSRHT
	// SketchAuto picks SRHT for large ambient dimensions (d ≥ 64) and the dense
	// projection otherwise.
	SketchAuto
)

func (s Sketch) backend() (sketch.Backend, error) {
	switch s {
	case SketchDense:
		return sketch.BackendDense, nil
	case SketchSRHT:
		return sketch.BackendSRHT, nil
	case SketchAuto:
		return sketch.BackendAuto, nil
	default:
		return 0, fmt.Errorf("privreg: unknown sketch backend %d", int(s))
	}
}

func (l Loss) function() (loss.Function, error) {
	switch l {
	case SquaredLoss:
		return loss.Squared{}, nil
	case LogisticLoss:
		return loss.Logistic{}, nil
	case HingeLoss:
		return loss.Hinge{}, nil
	default:
		return nil, fmt.Errorf("privreg: unknown loss %d", int(l))
	}
}

// ErrStreamFull is returned by Observe and ObserveBatch when a fixed-horizon
// mechanism has already consumed its configured T elements (for ObserveBatch,
// when the batch would overrun it — the batch is then rejected whole).
var ErrStreamFull = core.ErrStreamFull

// Estimator is a streaming private (or baseline) ERM mechanism. Feed the stream
// one labelled point at a time with Observe (or in batches with ObserveBatch);
// Estimate returns the current parameter estimate for the prefix observed so
// far. Estimates are lazy post-processing of already-private state, so Estimate
// may be called at any subset of timesteps (or repeatedly) without affecting
// the privacy guarantee.
//
// Estimators are not safe for concurrent use; wrap them in a Pool (which
// shards and locks per stream) when serving many goroutines.
type Estimator interface {
	// Name identifies the mechanism's algorithm (e.g. "priv-inc-reg1").
	Name() string
	// Mechanism returns the registry name the estimator was constructed under
	// (e.g. "gradient"), the value to pass to New to build a compatible
	// instance for restoring a checkpoint.
	Mechanism() string
	// Observe feeds the next covariate/response pair. Covariates are clipped to
	// the unit Euclidean ball and responses to [-1, 1], the normalization the
	// privacy analysis assumes.
	Observe(x []float64, y float64) error
	// ObserveBatch feeds a contiguous run of covariate/response pairs.
	// Semantically equivalent to calling Observe on each pair in order —
	// identical private state, identical randomness consumption — but validated
	// up front (a batch that would overrun a fixed horizon is rejected whole,
	// before any element is consumed) and amortized: the continual-sum
	// mechanisms defer their running-sum aggregation to the end of the batch,
	// so per-point ingestion cost drops for batched arrivals.
	ObserveBatch(xs [][]float64, ys []float64) error
	// Estimate returns the current estimate θ_t, an element of the constraint
	// set.
	Estimate() ([]float64, error)
	// Len returns the number of observations so far.
	Len() int
	// MarshalBinary serializes the estimator's complete mutable state —
	// observation counts, private accumulators, warm-start iterates, and every
	// randomness-stream position — as a versioned checkpoint. An estimator
	// constructed with the same mechanism and options (including the seed) that
	// restores the checkpoint with UnmarshalBinary continues bit-identically to
	// an uninterrupted run: checkpoint/restore is invisible in the output
	// sequence. See docs/SERVING.md for restart semantics.
	MarshalBinary() ([]byte, error)
	// UnmarshalBinary restores a checkpoint produced by MarshalBinary on an
	// estimator of the same mechanism and configuration. Mechanism kind and
	// structural parameters (dimensions, horizon) are verified and a mismatch
	// is an error. On error the estimator's state is unspecified and it must
	// be discarded.
	UnmarshalBinary(data []byte) error
}

// FlatObserver is the zero-copy batch-ingest extension of Estimator: a flat
// row-major covariate buffer (len(ys)×dim values) instead of a [][]float64.
// It exists for network edges that decode wire frames straight into pooled
// float buffers — ObserveFlat reads rows as subslices of xs, builds no
// intermediate per-row structures, and is bit-identical to the equivalent
// ObserveBatch call (mechanisms copy what they keep, so xs may be reused the
// moment the call returns).
//
// Every estimator returned by New implements FlatObserver; the interface is
// separate so existing Estimator implementations stay valid.
type FlatObserver interface {
	// ObserveFlat feeds len(ys) points whose covariates are packed row-major
	// in xs: point i is (xs[i*dim:(i+1)*dim], ys[i]). Validation and horizon
	// semantics match ObserveBatch (all-or-nothing).
	ObserveFlat(dim int, xs []float64, ys []float64) error
}

// MultiEstimator is the k-outcome extension of Estimator, implemented by
// estimators of the "multi-outcome" mechanism (privreg.New("multi-outcome",
// WithOutcomes(k), ...)): each observed row carries one covariate and k
// responses, folded into a single shared feature-side state plus k per-outcome
// moment vectors, and each outcome's estimate is a lazy memoized solve under
// its share of the split budget.
//
// Every estimator returned by New implements the interface; on single-outcome
// mechanisms the methods degrade gracefully (Outcomes reports 1, the k = 1 row
// shapes delegate to Observe/Estimate, and wider rows are rejected).
type MultiEstimator interface {
	Estimator
	// Outcomes returns the number of outcome columns k.
	Outcomes() int
	// ObserveMulti feeds one row: a covariate with all k responses.
	ObserveMulti(x []float64, ys []float64) error
	// ObserveMultiFlat feeds rows packed flat: row-major covariates
	// (rows×dim values) and row-major responses (rows×k values). Validation
	// and horizon semantics match ObserveBatch (all-or-nothing); xs and ys may
	// be reused the moment the call returns.
	ObserveMultiFlat(dim int, xs []float64, ys []float64) error
	// EstimateOutcome returns outcome i's current estimate θ_t ∈ C.
	EstimateOutcome(i int) ([]float64, error)
}

// multiCore is the internal capability the adapter detects on a mechanism to
// serve MultiEstimator natively.
type multiCore interface {
	Outcomes() int
	ObserveMulti(x vec.Vector, ys []float64) error
	ObserveMultiFlat(xs, ys []float64) error
	EstimateOutcome(i int) (vec.Vector, error)
}

// Config is the common configuration of the deprecated estimator
// constructors. New code should construct estimators with New and functional
// options (WithPrivacy, WithHorizon, WithConstraint, …), which validate at the
// boundary and compose with Pool; Config remains as the carrier those shims
// feed into the same construction path.
type Config struct {
	// Privacy is the total (ε, δ) budget for the whole stream. Ignored by the
	// non-private baseline.
	Privacy Privacy
	// Horizon is the stream length T (an upper bound is fine). Required unless
	// UnknownHorizon is set on a regression mechanism.
	Horizon int
	// Constraint is the constraint set C the estimates must lie in. Required.
	Constraint Constraint
	// Domain describes the covariate domain X. Required by
	// NewProjectedRegression (its Gaussian width sizes the sketch); optional
	// elsewhere.
	Domain Domain
	// Seed seeds all randomness (noise and projections) for reproducibility.
	// Two estimators built with the same seed and fed the same stream produce
	// identical outputs.
	Seed int64
	// WarmStart makes the per-timestep optimizer start from the previous
	// estimate rather than from scratch.
	WarmStart bool
	// UnknownHorizon switches the regression mechanisms to the Hybrid
	// continual-sum mechanism so that Horizon only acts as an optimization
	// heuristic, not a hard limit.
	UnknownHorizon bool
	// MaxIterations caps the per-estimate optimizer iterations (0 = default).
	MaxIterations int
	// Tau overrides the recomputation period of NewGenericERM (0 = the paper's
	// theory-optimal choice).
	Tau int
	// HistoryCap bounds the history retained by the slow-path mechanisms
	// (generic-erm, naive-recompute) for losses without quadratic sufficient
	// statistics: positive keeps only the most recent HistoryCap points in a
	// ring buffer and solves over that window; 0 retains the full history.
	// Quadratic losses (squared, optionally ridge-regularized) never retain
	// history and ignore the cap.
	HistoryCap int
	// ProjectionDim overrides the sketch dimension m of NewProjectedRegression
	// (0 = Gordon's rule).
	ProjectionDim int
	// SketchBackend selects the projection implementation of
	// NewProjectedRegression: the dense Gaussian matrix (default), the
	// O(d log d) SRHT fast path, or automatic selection by dimension.
	SketchBackend Sketch
	// Outcomes is the number of outcome columns k of the multi-outcome
	// mechanism (0 means 1). Mechanisms that serve a single outcome reject
	// values above 1.
	Outcomes int
}

func (cfg Config) validate(needDomain bool) error {
	if !cfg.Constraint.valid() {
		return errors.New("privreg: Config.Constraint is required")
	}
	if cfg.Horizon <= 0 && !cfg.UnknownHorizon {
		return errors.New("privreg: Config.Horizon must be positive (or set UnknownHorizon)")
	}
	if needDomain && !cfg.Domain.valid() {
		return errors.New("privreg: Config.Domain is required by this mechanism")
	}
	if needDomain && cfg.Domain.valid() && cfg.Domain.Dim() != cfg.Constraint.Dim() {
		return errors.New("privreg: Config.Domain and Config.Constraint dimensions differ")
	}
	return nil
}

func (cfg Config) horizonOrDefault() int {
	if cfg.Horizon > 0 {
		return cfg.Horizon
	}
	// A generous default used only for optimizer heuristics when the horizon is
	// unknown.
	return 1 << 20
}

// estimatorAdapter adapts an internal core.Estimator to the public Estimator
// interface (plain []float64 at the boundary) and stamps checkpoints with the
// registry name so restores are routed to a compatible instance.
type estimatorAdapter struct {
	inner     core.Estimator
	mechanism string
	// flatScratch is the estimator-owned loss.Point buffer ObserveFlat reuses
	// across calls, so the hot wire-ingest path allocates nothing per batch.
	flatScratch []loss.Point
}

func (a *estimatorAdapter) Name() string { return a.inner.Name() }

func (a *estimatorAdapter) Mechanism() string { return a.mechanism }

func (a *estimatorAdapter) Observe(x []float64, y float64) error {
	return a.inner.Observe(loss.Point{X: vec.Vector(x), Y: y})
}

func (a *estimatorAdapter) ObserveBatch(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("privreg: batch covariate count %d does not match response count %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil
	}
	ps := make([]loss.Point, len(xs))
	for i := range xs {
		ps[i] = loss.Point{X: vec.Vector(xs[i]), Y: ys[i]}
	}
	return a.inner.ObserveBatch(ps)
}

// ObserveFlat implements FlatObserver: rows are read as subslices of the flat
// buffer and staged in the adapter-owned scratch, so nothing per-row is
// allocated and nothing references xs after the call (mechanisms copy on
// ingest; the scratch aliases are cleared before returning).
func (a *estimatorAdapter) ObserveFlat(dim int, xs []float64, ys []float64) error {
	if dim <= 0 {
		return fmt.Errorf("privreg: flat batch dimension must be positive, got %d", dim)
	}
	if len(xs) != dim*len(ys) {
		return fmt.Errorf("privreg: flat batch has %d covariate values, want %d (%d rows × dim %d)", len(xs), dim*len(ys), len(ys), dim)
	}
	if len(ys) == 0 {
		return nil
	}
	if cap(a.flatScratch) < len(ys) {
		a.flatScratch = make([]loss.Point, len(ys))
	}
	ps := a.flatScratch[:len(ys)]
	for i := range ps {
		ps[i] = loss.Point{X: vec.Vector(xs[i*dim : (i+1)*dim : (i+1)*dim]), Y: ys[i]}
	}
	err := a.inner.ObserveBatch(ps)
	// Drop the aliases: the caller is free to recycle xs into a buffer pool,
	// and a stale reference here would pin (and silently share) it.
	for i := range ps {
		ps[i].X = nil
	}
	return err
}

// Outcomes implements MultiEstimator: the mechanism's outcome count, 1 for
// single-outcome mechanisms.
func (a *estimatorAdapter) Outcomes() int {
	if m, ok := a.inner.(multiCore); ok {
		return m.Outcomes()
	}
	return 1
}

// ObserveMulti implements MultiEstimator. On single-outcome mechanisms a
// one-response row delegates to Observe; wider rows are rejected.
func (a *estimatorAdapter) ObserveMulti(x []float64, ys []float64) error {
	if m, ok := a.inner.(multiCore); ok {
		return m.ObserveMulti(vec.Vector(x), ys)
	}
	if len(ys) != 1 {
		return fmt.Errorf("privreg: mechanism %q serves a single outcome, row carries %d", a.mechanism, len(ys))
	}
	return a.Observe(x, ys[0])
}

// ObserveMultiFlat implements MultiEstimator; see ObserveMulti. It is the
// zero-copy ingest path of the multi-outcome mechanism: rows flow straight
// from a decoded wire frame into the shared statistics fold.
func (a *estimatorAdapter) ObserveMultiFlat(dim int, xs []float64, ys []float64) error {
	if dim <= 0 {
		return fmt.Errorf("privreg: flat batch dimension must be positive, got %d", dim)
	}
	if len(xs)%dim != 0 {
		return fmt.Errorf("privreg: flat batch of %d covariate values is not a multiple of dim %d", len(xs), dim)
	}
	if m, ok := a.inner.(multiCore); ok {
		k := m.Outcomes()
		if rows := len(xs) / dim; len(ys) != rows*k {
			return fmt.Errorf("privreg: flat batch of %d rows carries %d responses, want %d (k=%d)", rows, len(ys), rows*k, k)
		}
		return m.ObserveMultiFlat(xs, ys)
	}
	return a.ObserveFlat(dim, xs, ys)
}

// EstimateOutcome implements MultiEstimator. Outcome 0 of a single-outcome
// mechanism is its Estimate; other indices are rejected.
func (a *estimatorAdapter) EstimateOutcome(i int) ([]float64, error) {
	if m, ok := a.inner.(multiCore); ok {
		theta, err := m.EstimateOutcome(i)
		if err != nil {
			return nil, err
		}
		return []float64(theta), nil
	}
	if i != 0 {
		return nil, fmt.Errorf("privreg: mechanism %q serves a single outcome, index %d out of range", a.mechanism, i)
	}
	return a.Estimate()
}

func (a *estimatorAdapter) Estimate() ([]float64, error) {
	theta, err := a.inner.Estimate()
	if err != nil {
		return nil, err
	}
	return []float64(theta), nil
}

func (a *estimatorAdapter) Len() int { return a.inner.Len() }

// StateBytes reports the estimator's retained in-memory state (sufficient
// statistics, history buffers) when the underlying mechanism tracks it, and 0
// otherwise. The pool's store caches the value per stream and aggregates it
// into PoolStats.RetainedBytes.
func (a *estimatorAdapter) StateBytes() int {
	if sz, ok := a.inner.(interface{ StateBytes() int }); ok {
		return sz.StateBytes()
	}
	return 0
}

// checkpointMagic identifies a privreg estimator checkpoint; the byte after it
// is the envelope format version. Version 2 marks the counter-keyed lazy
// noise scheme of the continual-sum mechanisms (noise is a pure function of
// (key, node), so checkpoints persist keys instead of generator positions);
// version-1 checkpoints are rejected with a version error and cannot be
// migrated (their remaining noise stream is not reconstructible under the new
// scheme).
const (
	checkpointMagic   = "PRCK"
	checkpointVersion = 2
)

func (a *estimatorAdapter) MarshalBinary() ([]byte, error) {
	inner, err := a.inner.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var w codec.Writer
	w.String(checkpointMagic)
	w.Version(checkpointVersion)
	w.String(a.mechanism)
	w.Blob(inner)
	return w.Bytes(), nil
}

func (a *estimatorAdapter) UnmarshalBinary(data []byte) error {
	r := codec.NewReader(data)
	if r.String() != checkpointMagic {
		return errors.New("privreg: not a privreg checkpoint (bad magic)")
	}
	r.Version(checkpointVersion)
	mech := r.String()
	inner := r.Blob()
	if err := r.Finish(); err != nil {
		return err
	}
	if mech != a.mechanism {
		return fmt.Errorf("privreg: checkpoint is for mechanism %q, estimator is %q", mech, a.mechanism)
	}
	return a.inner.UnmarshalBinary(inner)
}

// NewGradientRegression returns Algorithm PRIVINCREG1: private incremental
// least-squares regression via a Tree-Mechanism private gradient function.
// Excess empirical risk grows as ≈ √d (Theorem 4.2), independent of the stream
// length up to polylog factors.
//
// Deprecated: use New("gradient", opts...); this constructor is a thin shim
// over the same construction path.
func NewGradientRegression(cfg Config) (Estimator, error) {
	return newFromConfig("gradient", cfg, nil)
}

// NewProjectedRegression returns Algorithm PRIVINCREG2: private incremental
// least-squares regression in a Gaussian random sketch sized by the Gaussian
// widths of the covariate domain and the constraint set, with the solution
// lifted back to the original space. Excess empirical risk grows as
// ≈ T^{1/3}·(w(X)+w(C))^{2/3} (Theorem 5.7) — dimension-free for sparse
// covariates with an L1-ball constraint.
//
// Deprecated: use New("projected", opts...); this constructor is a thin shim
// over the same construction path.
func NewProjectedRegression(cfg Config) (Estimator, error) {
	return newFromConfig("projected", cfg, nil)
}

// NewRobustProjectedRegression returns the §5.2 extension of
// NewProjectedRegression for streams where only covariates accepted by the
// oracle belong to the small-Gaussian-width domain described by cfg.Domain;
// rejected points are neutralized before touching private state. The utility
// guarantee then applies to the risk restricted to accepted points.
//
// Deprecated: use New("robust-projected", WithDomainOracle(oracle), ...);
// this constructor is a thin shim over the same construction path.
func NewRobustProjectedRegression(cfg Config, oracle func(x []float64) bool) (Estimator, error) {
	if oracle == nil {
		return nil, errors.New("privreg: nil domain oracle")
	}
	return newFromConfig("robust-projected", cfg, func(s *settings) { s.oracle = oracle })
}

// NewGenericERM returns Mechanism PRIVINCERM: the generic transformation of a
// private batch ERM algorithm into a private incremental one, applicable to any
// of the supported losses. Excess empirical risk grows as ≈ (Td)^{1/3} for
// convex losses (Theorem 3.1).
//
// Deprecated: use New("generic-erm", WithLoss(l), ...); this constructor is a
// thin shim over the same construction path.
func NewGenericERM(cfg Config, l Loss) (Estimator, error) {
	return newFromConfig("generic-erm", cfg, func(s *settings) { s.loss = l; s.lossSet = true })
}

// NewNaiveRecompute returns the naive private baseline that re-solves a private
// batch ERM problem at every timestep, splitting the budget over all T
// releases. Provided for comparison; its excess risk carries an extra ≈ √T
// factor.
//
// Deprecated: use New("naive-recompute", WithLoss(l), ...); this constructor
// is a thin shim over the same construction path.
func NewNaiveRecompute(cfg Config, l Loss) (Estimator, error) {
	return newFromConfig("naive-recompute", cfg, func(s *settings) { s.loss = l; s.lossSet = true })
}

// NewNonPrivateBaseline returns the exact (non-private) incremental constrained
// least-squares solver: the utility ceiling every private mechanism is compared
// against.
//
// Deprecated: use New("nonprivate", opts...); this constructor is a thin shim
// over the same construction path.
func NewNonPrivateBaseline(cfg Config) (Estimator, error) {
	return newFromConfig("nonprivate", cfg, nil)
}

// newFromConfig routes the deprecated Config-based constructors through the
// same registry funnel New uses, so validation and construction behavior are
// identical regardless of entry point.
func newFromConfig(name string, cfg Config, extra func(*settings)) (Estimator, error) {
	m, err := lookupMechanism(name)
	if err != nil {
		return nil, err
	}
	s := &settings{cfg: cfg}
	if extra != nil {
		extra(s)
	}
	return buildEstimator(m, s)
}

// ExcessRisk returns the excess empirical squared-loss risk of estimate on the
// given prefix: Σ(y_i - <x_i, θ>)² minus the minimum achievable over the
// constraint set. It is the quantity bounded by Definition 1 of the paper and
// is what EXPERIMENTS.md reports.
func ExcessRisk(cons Constraint, xs [][]float64, ys []float64, estimate []float64) (float64, error) {
	if !cons.valid() {
		return 0, errors.New("privreg: invalid constraint")
	}
	if len(xs) != len(ys) {
		return 0, errors.New("privreg: covariate and response counts differ")
	}
	state := erm.NewLeastSquaresState(cons.Dim(), cons.set)
	for i, x := range xs {
		state.Observe(vec.Vector(x), ys[i])
	}
	exact := state.Minimize(0)
	excess := state.Risk(vec.Vector(estimate)) - state.Risk(exact)
	if excess < 0 {
		excess = 0
	}
	return excess, nil
}

// GaussianWidthOf estimates the Gaussian width of a constraint set by Monte
// Carlo; exposed because width is the key quantity users need when deciding
// between NewGradientRegression and NewProjectedRegression.
func GaussianWidthOf(cons Constraint, samples int, seed int64) (float64, error) {
	if !cons.valid() {
		return 0, errors.New("privreg: invalid constraint")
	}
	if samples <= 0 {
		samples = 200
	}
	src := randx.NewSource(seed)
	var sum float64
	for i := 0; i < samples; i++ {
		g := vec.Vector(src.NormalVector(cons.Dim(), 1))
		sum += cons.set.SupportFunction(g)
	}
	return sum / float64(samples), nil
}
