package privreg

import (
	"fmt"
	"runtime"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/experiments"
	"privreg/internal/randx"
	"privreg/internal/sketch"
	"privreg/internal/tree"
	"privreg/internal/vec"
)

// The benchmarks below come in two groups.
//
// The first group regenerates the paper's evaluation artifacts — one benchmark
// per Table-1 row, per supporting proposition, and per DESIGN.md ablation — by
// invoking the experiment harness in quick mode (reduced sweeps). Run
// `go run ./cmd/privreg-bench -experiment all` for the full sweeps whose
// numbers EXPERIMENTS.md records; the benchmarks here keep the same workloads
// wired into `go test -bench=.` so regressions in either correctness or cost
// are caught.
//
// The second group contains micro-benchmarks of the hot paths (Tree Mechanism
// updates, projections, per-timestep mechanism updates and estimates).

func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Trials: 1, Seed: int64(i + 1), Epsilon: 1, Delta: 1e-6}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Table == nil || len(res.Table.Rows) == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

// BenchmarkTable1Row1GenericConvex reproduces Table 1 row 1 (Theorem 3.1 part 1):
// the generic transformation on a convex (logistic) loss.
func BenchmarkTable1Row1GenericConvex(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkTable1Row2StronglyConvex reproduces Table 1 row 2 (Theorem 3.1 part 2):
// the generic transformation on a strongly convex (ridge) loss.
func BenchmarkTable1Row2StronglyConvex(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkTable1Row3Mech1 reproduces Table 1 row 3, Mechanism 1 (Theorem 4.2):
// PRIVINCREG1's ≈ √d excess risk.
func BenchmarkTable1Row3Mech1(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkTable1Row3Mech2 reproduces Table 1 row 3, Mechanism 2 (Theorem 5.7):
// PRIVINCREG2's width-driven excess risk on sparse/Lasso instances.
func BenchmarkTable1Row3Mech2(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkNaiveVsGeneric reproduces the Section 1/3 comparison of naive
// per-step recomputation against the τ-spaced generic transformation.
func BenchmarkNaiveVsGeneric(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkTreeMechanismError reproduces Proposition C.1: Tree Mechanism error
// growth with the stream length.
func BenchmarkTreeMechanismError(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkNoisyPGDConvergence reproduces Proposition B.1: noisy projected
// gradient convergence versus iterations and gradient-error level.
func BenchmarkNoisyPGDConvergence(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkGordonEmbeddingAndLifting reproduces Theorems 5.1 and 5.3: embedding
// distortion (including adaptive streams) and lifting error versus m.
func BenchmarkGordonEmbeddingAndLifting(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkRobustMixedDomain reproduces the §5.2 robust extension on
// mixed-domain streams.
func BenchmarkRobustMixedDomain(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkPrivacySanity runs the neighboring-stream output-shift sanity check
// of Definition 4.
func BenchmarkPrivacySanity(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkAblationTreeVsNaiveSum compares the Tree Mechanism against naive
// per-step private sums (DESIGN.md ablation 1).
func BenchmarkAblationTreeVsNaiveSum(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkAblationWarmStart toggles optimizer warm-starting across timesteps
// (DESIGN.md ablation 2).
func BenchmarkAblationWarmStart(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkAblationProjScaling toggles the ‖x‖/‖Φx‖ covariate rescaling of the
// projected objective (DESIGN.md ablation 3).
func BenchmarkAblationProjScaling(b *testing.B) { runExperiment(b, "A3") }

// BenchmarkAblationTau sweeps the recomputation period τ of the generic
// transformation (DESIGN.md ablation 4).
func BenchmarkAblationTau(b *testing.B) { runExperiment(b, "A4") }

// BenchmarkAblationSketchBackend compares the dense and SRHT sketch backends
// inside PRIVINCREG2 on identical streams (DESIGN.md ablation 5).
func BenchmarkAblationSketchBackend(b *testing.B) { runExperiment(b, "A5") }

// --- micro-benchmarks -------------------------------------------------------

// BenchmarkTreeMechanismAdd measures the per-element cost of the Tree Mechanism
// for the vector dimensions used by the regression mechanisms (d and d²).
func BenchmarkTreeMechanismAdd(b *testing.B) {
	for _, dim := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			src := randx.NewSource(1)
			mech, err := tree.New(tree.Config{
				Dim: dim, MaxLen: b.N + 1, Sensitivity: 2,
				Privacy: dp.Params{Epsilon: 1, Delta: 1e-6},
			}, src)
			if err != nil {
				b.Fatal(err)
			}
			v := make([]float64, dim)
			v[0] = 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mech.Add(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeMechanismAddTo measures the allocation-free fast path of the
// Tree Mechanism. The allocs/op column must read 0 (guarded by
// TestTreeAddToZeroAlloc); compare against BenchmarkTreeMechanismAdd to see
// the cost of the allocating wrapper.
func BenchmarkTreeMechanismAddTo(b *testing.B) {
	for _, dim := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			src := randx.NewSource(1)
			mech, err := tree.New(tree.Config{
				Dim: dim, MaxLen: b.N + 1, Sensitivity: 2,
				Privacy: dp.Params{Epsilon: 1, Delta: 1e-6},
			}, src)
			if err != nil {
				b.Fatal(err)
			}
			v := make([]float64, dim)
			v[0] = 1
			dst := make([]float64, dim)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mech.AddTo(dst, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSketchApply compares the two sketch backends on the rescaled apply
// (the per-point hot operation of PRIVINCREG2) at the acceptance workload
// d=512, m=64: the dense Gaussian matvec is O(m·d) while the SRHT runs in
// O(d log d), so the SRHT should win by well over 3× here.
func BenchmarkSketchApply(b *testing.B) {
	const m, d = 64, 512
	for _, backend := range []sketch.Backend{sketch.BackendDense, sketch.BackendSRHT} {
		b.Run(fmt.Sprintf("%s/d=%d/m=%d", backend, d, m), func(b *testing.B) {
			src := randx.NewSource(10)
			tf, err := sketch.New(backend, m, d, src.Split())
			if err != nil {
				b.Fatal(err)
			}
			x := vec.Vector(src.SparseVector(d, 8))
			dst := vec.NewVector(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tf.ScaledApplyTo(dst, x)
			}
		})
	}
}

// BenchmarkExperimentWorkers runs the same experiment sweep serially and on
// the default worker pool; the speedup column of docs/PERFORMANCE.md comes
// from here. The output tables are byte-identical either way (guarded by
// TestParallelWorkersDeterministic).
func BenchmarkExperimentWorkers(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("E6/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiments.Options{Quick: true, Trials: 8, Seed: 1, Epsilon: 1, Delta: 1e-6, Workers: workers}
				res, err := experiments.Run("E6", opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Table == nil || len(res.Table.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkProjection measures Euclidean projection cost for the main
// constraint sets.
func BenchmarkProjection(b *testing.B) {
	d := 256
	src := randx.NewSource(2)
	x := vec.Vector(src.NormalVector(d, 1))
	sets := []constraint.Set{
		constraint.NewL2Ball(d, 1),
		constraint.NewL1Ball(d, 1),
		constraint.NewLpBall(d, 1.5, 1),
		constraint.NewSimplex(d, 1),
		constraint.NewGroupL1Ball(d, 8, 1),
	}
	for _, s := range sets {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.Project(x)
			}
		})
	}
}

// BenchmarkMechanismObserve measures the per-timestep update cost of the two
// regression mechanisms (the continual, privacy-critical path).
func BenchmarkMechanismObserve(b *testing.B) {
	for _, d := range []int{16, 64} {
		b.Run(fmt.Sprintf("reg1/d=%d", d), func(b *testing.B) {
			est, err := NewGradientRegression(Config{
				Privacy: Privacy{Epsilon: 1, Delta: 1e-6}, Horizon: 1 << 20,
				Constraint: L2Constraint(d, 1), Seed: 3, UnknownHorizon: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, d)
			x[0] = 0.5
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := est.Observe(x, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reg2/d=%d", d), func(b *testing.B) {
			est, err := NewProjectedRegression(Config{
				Privacy: Privacy{Epsilon: 1, Delta: 1e-6}, Horizon: 1 << 20,
				Constraint: L1Constraint(d, 1), Domain: SparseDomain(d, 3),
				Seed: 4, UnknownHorizon: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, d)
			x[0] = 0.5
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := est.Observe(x, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMechanismEstimate measures the cost of producing a private estimate
// (post-processing the private gradient with the optimizer, plus lifting for
// the projected mechanism).
func BenchmarkMechanismEstimate(b *testing.B) {
	d := 32
	build := func(projected bool) Estimator {
		cfg := Config{
			Privacy: Privacy{Epsilon: 1, Delta: 1e-6}, Horizon: 256,
			Constraint: L1Constraint(d, 1), Domain: SparseDomain(d, 3),
			Seed: 5, MaxIterations: 100,
		}
		var est Estimator
		var err error
		if projected {
			est, err = NewProjectedRegression(cfg)
		} else {
			est, err = NewGradientRegression(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		src := randx.NewSource(6)
		for i := 0; i < 64; i++ {
			x := src.SparseVector(d, 3)
			if err := est.Observe(x, 0.2); err != nil {
				b.Fatal(err)
			}
		}
		return est
	}
	b.Run("reg1", func(b *testing.B) {
		est := build(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Estimate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reg2-with-lift", func(b *testing.B) {
		est := build(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Estimate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObserveBatch compares scalar Observe against ObserveBatch on the
// public API: the batch path validates once and defers the Tree-Mechanism
// running-sum aggregation to the end of the batch.
func BenchmarkObserveBatch(b *testing.B) {
	const (
		d     = 32
		batch = 64
	)
	newEst := func() Estimator {
		// Unknown-horizon mode so the shared estimator never fills regardless
		// of b.N (a fixed horizon would cap the iteration count).
		est, err := New("gradient",
			WithEpsilonDelta(1, 1e-6),
			WithUnknownHorizon(),
			WithConstraint(L2Constraint(d, 1)),
			WithSeed(1),
		)
		if err != nil {
			b.Fatal(err)
		}
		return est
	}
	xs := make([][]float64, batch)
	ys := make([]float64, batch)
	for i := range xs {
		x := make([]float64, d)
		x[i%d] = 0.7
		xs[i] = x
		ys[i] = 0.3
	}
	b.Run("scalar", func(b *testing.B) {
		est := newEst()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if err := est.Observe(xs[j], ys[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		est := newEst()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := est.ObserveBatch(xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolFaultIn measures the spill store's worst case: a resident cap
// of 1 with two streams accessed alternately, so every Observe pays one full
// eviction (marshal + segment write) and one fault-in (segment read +
// unmarshal + rebuild). The gap to BenchmarkMechanismObserve is the price of
// a 100% cache miss; real skewed workloads sit in between (see
// docs/PERFORMANCE.md and docs/SERVING.md for capacity planning).
func BenchmarkPoolFaultIn(b *testing.B) {
	const d = 16
	newSpillPool := func(cap int) *Pool {
		p, err := NewPool("gradient",
			WithEpsilonDelta(1, 1e-6),
			WithUnknownHorizon(),
			WithConstraint(L2Constraint(d, 1)),
			WithSeed(1),
			WithSpillDir(b.TempDir()),
			WithStoreCap(cap),
		)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	x := make([]float64, d)
	x[0] = 0.5
	seed := func(p *Pool) {
		for _, id := range []string{"a", "b"} {
			for i := 0; i < 64; i++ {
				if err := p.Observe(id, x, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("thrash/cap=1", func(b *testing.B) {
		p := newSpillPool(1)
		seed(p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := "a"
			if i%2 == 1 {
				id = "b"
			}
			if err := p.Observe(id, x, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resident/cap=2", func(b *testing.B) {
		// Same workload with both streams resident: the no-spill baseline.
		p := newSpillPool(2)
		seed(p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := "a"
			if i%2 == 1 {
				id = "b"
			}
			if err := p.Observe(id, x, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolIncrementalCheckpoint measures the dirty-checkpoint property:
// with N streams on disk, a Flush after touching M streams costs O(M) segment
// writes plus one manifest, not O(N). Compare dirty=8 against dirty=all at
// the same N.
func BenchmarkPoolIncrementalCheckpoint(b *testing.B) {
	const (
		d = 16
		n = 256
	)
	x := make([]float64, d)
	x[0] = 0.5
	build := func(b *testing.B) *Pool {
		p, err := NewPool("gradient",
			WithEpsilonDelta(1, 1e-6),
			WithUnknownHorizon(),
			WithConstraint(L2Constraint(d, 1)),
			WithSeed(1),
			WithSpillDir(b.TempDir()),
		)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < n; s++ {
			id := fmt.Sprintf("bench-%03d", s)
			for i := 0; i < 16; i++ {
				if err := p.Observe(id, x, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := p.Flush(); err != nil {
			b.Fatal(err)
		}
		return p
	}
	for _, dirty := range []int{8, n} {
		b.Run(fmt.Sprintf("dirty=%d/streams=%d", dirty, n), func(b *testing.B) {
			p := build(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for s := 0; s < dirty; s++ {
					if err := p.Observe(fmt.Sprintf("bench-%03d", s), x, 0.3); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				fs, err := p.Flush()
				if err != nil {
					b.Fatal(err)
				}
				if fs.Segments != dirty {
					b.Fatalf("flush wrote %d segments, want %d", fs.Segments, dirty)
				}
			}
		})
	}
}

// BenchmarkCheckpoint measures the cost of the checkpoint/restore cycle for
// the serving-relevant mechanisms (see docs/SERVING.md for the size model).
func BenchmarkCheckpoint(b *testing.B) {
	const d = 32
	est, err := New("gradient",
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(4096),
		WithConstraint(L2Constraint(d, 1)),
		WithSeed(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, d)
	x[0] = 0.5
	for i := 0; i < 512; i++ {
		if err := est.Observe(x, 0.2); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := est.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	blob, err := est.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fresh, err := New("gradient",
				WithEpsilonDelta(1, 1e-6),
				WithHorizon(4096),
				WithConstraint(L2Constraint(d, 1)),
				WithSeed(1),
			)
			if err != nil {
				b.Fatal(err)
			}
			if err := fresh.UnmarshalBinary(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}
