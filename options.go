package privreg

import (
	"errors"
	"fmt"
	"math"
)

// settings is the resolved construction state an Option list produces. It
// wraps the legacy Config (still the carrier the deprecated constructors feed
// in) plus the per-mechanism extras that never belonged in a flat struct: the
// loss of the ERM mechanisms and the domain oracle of the robust mechanism.
type settings struct {
	cfg     Config
	loss    Loss
	lossSet bool
	oracle  func(x []float64) bool

	// Pool-scoped storage options (rejected by New; see NewPool).
	storeCap int
	spillDir string
}

// Option configures the construction of an estimator (or of every estimator a
// Pool manages). Options are applied in order; later options override earlier
// ones. Construct them with the With… functions.
type Option func(*settings) error

// WithPrivacy sets the total (ε, δ) differential-privacy budget for the whole
// stream. Every private mechanism in this package uses Gaussian noise, so it
// requires ε > 0 and δ ∈ (0, 1); violations are reported at construction, not
// at first use.
func WithPrivacy(p Privacy) Option {
	return func(s *settings) error {
		s.cfg.Privacy = p
		return nil
	}
}

// WithEpsilonDelta is shorthand for WithPrivacy(Privacy{Epsilon: epsilon,
// Delta: delta}).
func WithEpsilonDelta(epsilon, delta float64) Option {
	return WithPrivacy(Privacy{Epsilon: epsilon, Delta: delta})
}

// WithHorizon sets the stream length T (an upper bound is fine). Required
// unless WithUnknownHorizon is used.
func WithHorizon(t int) Option {
	return func(s *settings) error {
		if t <= 0 {
			return fmt.Errorf("privreg: WithHorizon requires a positive horizon, got %d", t)
		}
		s.cfg.Horizon = t
		return nil
	}
}

// WithUnknownHorizon switches the regression mechanisms to the Hybrid
// continual-sum mechanism, which needs no a-priori stream length; any horizon
// set with WithHorizon then only tunes optimizer heuristics.
func WithUnknownHorizon() Option {
	return func(s *settings) error {
		s.cfg.UnknownHorizon = true
		return nil
	}
}

// WithConstraint sets the constraint set C the estimates must lie in.
// Required by every mechanism.
func WithConstraint(c Constraint) Option {
	return func(s *settings) error {
		if !c.valid() {
			return errors.New("privreg: WithConstraint requires a constraint built by one of the constructors")
		}
		s.cfg.Constraint = c
		return nil
	}
}

// WithDomain describes the covariate domain X. Required by the projected
// mechanisms (its Gaussian width sizes the sketch); optional elsewhere.
func WithDomain(d Domain) Option {
	return func(s *settings) error {
		if !d.valid() {
			return errors.New("privreg: WithDomain requires a domain built by one of the constructors")
		}
		s.cfg.Domain = d
		return nil
	}
}

// WithSeed seeds all randomness (noise, projections) for reproducibility. Two
// estimators built with the same options and fed the same stream produce
// identical outputs.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithWarmStart controls whether each Estimate starts its optimizer from the
// previous estimate instead of from scratch.
func WithWarmStart(enabled bool) Option {
	return func(s *settings) error {
		s.cfg.WarmStart = enabled
		return nil
	}
}

// WithMaxIterations caps the per-estimate optimizer iterations (0 restores the
// default).
func WithMaxIterations(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("privreg: WithMaxIterations requires a non-negative count, got %d", n)
		}
		s.cfg.MaxIterations = n
		return nil
	}
}

// WithTau overrides the recomputation period of the generic-erm mechanism
// (0 restores the paper's theory-optimal choice).
func WithTau(tau int) Option {
	return func(s *settings) error {
		if tau < 0 {
			return fmt.Errorf("privreg: WithTau requires a non-negative period, got %d", tau)
		}
		s.cfg.Tau = tau
		return nil
	}
}

// WithHistoryCap bounds the history the slow-path mechanisms (generic-erm,
// naive-recompute) retain for losses without quadratic sufficient statistics:
// only the most recent n points are kept, and each private solve runs over
// that window instead of the full prefix (0 restores unbounded history).
// Quadratic losses fold the stream into O(d²) statistics and ignore the cap.
func WithHistoryCap(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("privreg: WithHistoryCap requires a non-negative count, got %d", n)
		}
		s.cfg.HistoryCap = n
		return nil
	}
}

// WithOutcomes sets the number of outcome columns k of the multi-outcome
// mechanism: every observed row then carries one covariate and k responses,
// served by k regressions that share one feature-side state under a split
// budget. Mechanisms that serve a single outcome reject k > 1. Zero restores
// the default of one outcome.
func WithOutcomes(k int) Option {
	return func(s *settings) error {
		if k < 0 {
			return fmt.Errorf("privreg: WithOutcomes requires a non-negative count, got %d", k)
		}
		s.cfg.Outcomes = k
		return nil
	}
}

// WithProjectionDim overrides the sketch dimension m of the projected
// mechanisms (0 restores Gordon's rule).
func WithProjectionDim(m int) Option {
	return func(s *settings) error {
		if m < 0 {
			return fmt.Errorf("privreg: WithProjectionDim requires a non-negative dimension, got %d", m)
		}
		s.cfg.ProjectionDim = m
		return nil
	}
}

// WithSketch selects the random-projection backend of the projected
// mechanisms: SketchDense, SketchSRHT, or SketchAuto.
func WithSketch(b Sketch) Option {
	return func(s *settings) error {
		if _, err := b.backend(); err != nil {
			return err
		}
		s.cfg.SketchBackend = b
		return nil
	}
}

// WithLoss selects the per-datapoint loss of the generic-erm and
// naive-recompute mechanisms (default SquaredLoss). Other mechanisms are
// least-squares by construction and reject the option.
func WithLoss(l Loss) Option {
	return func(s *settings) error {
		if _, err := l.function(); err != nil {
			return err
		}
		s.loss = l
		s.lossSet = true
		return nil
	}
}

// WithDomainOracle supplies the §5.2 membership oracle of the
// robust-projected mechanism: points the oracle rejects are neutralized
// before touching private state. Required by robust-projected and rejected by
// every other mechanism.
func WithDomainOracle(oracle func(x []float64) bool) Option {
	return func(s *settings) error {
		if oracle == nil {
			return errors.New("privreg: WithDomainOracle requires a non-nil oracle")
		}
		s.oracle = oracle
		return nil
	}
}

// WithSpillDir switches a Pool to the disk-backed stream store rooted at the
// given directory: stream state spills to per-stream segment files when the
// resident cap (WithStoreCap) is exceeded, Pool.Flush writes incremental
// checkpoints (only segments of streams touched since the last flush), and a
// new pool opened over the same directory restores lazily from the manifest —
// boot cost is O(manifest), streams fault in on first access. The directory
// is created if missing and must not be shared between pools of different
// mechanisms (the manifest records the mechanism and a mismatch refuses to
// open). Pool-scoped: New rejects it.
func WithSpillDir(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return errors.New("privreg: WithSpillDir requires a non-empty directory")
		}
		s.spillDir = dir
		return nil
	}
}

// WithStoreCap bounds the number of estimators a Pool keeps resident in
// memory: beyond cap, the least-recently-used streams are serialized to the
// spill directory and transparently faulted back in on their next
// Observe/Estimate — bit-identically, so a capped pool's outputs equal an
// uncapped pool's. Requires WithSpillDir (evicting without a spill target
// would discard budgeted private state); 0 restores the unbounded default.
// Pool-scoped: New rejects it.
func WithStoreCap(cap int) Option {
	return func(s *settings) error {
		if cap < 0 {
			return fmt.Errorf("privreg: WithStoreCap requires a non-negative cap, got %d", cap)
		}
		s.storeCap = cap
		return nil
	}
}

// validatePrivacy enforces the public-boundary budget contract for the
// Gaussian-noise mechanisms: ε must be a positive finite number and δ must lie
// strictly inside (0, 1).
func validatePrivacy(p Privacy) error {
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("privreg: Privacy.Epsilon must be a positive finite number, got %v (set it with WithPrivacy)", p.Epsilon)
	}
	if !(p.Delta > 0) || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("privreg: Privacy.Delta must lie in (0, 1) for the Gaussian-noise mechanisms, got %v (set it with WithPrivacy)", p.Delta)
	}
	return nil
}

// apply folds an option list over default settings.
func applyOptions(opts []Option) (*settings, error) {
	s := &settings{}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("privreg: nil Option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}
