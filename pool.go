package privreg

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"privreg/internal/codec"
	"privreg/internal/randx"
)

// poolShards is the number of lock shards a Pool spreads its streams over.
// Stream IDs hash to shards, so unrelated streams contend only 1/poolShards of
// the time; within a shard the map lock is held only for lookup/insert, and
// each stream carries its own mutex for the (much longer) estimator work.
const poolShards = 64

// Pool manages one estimator per stream ID — the unit a server fronting many
// users holds. All methods are safe for concurrent use by any number of
// goroutines; distinct streams proceed in parallel (locking is per stream,
// sharded for cheap lookup), while operations on the same stream serialize.
//
// Streams are created lazily on first Observe/ObserveBatch. Every stream's
// estimator is built from the Pool's mechanism and option template, with one
// difference: the random seed is derived deterministically from the template
// seed and the stream ID, so each stream draws independent noise yet the whole
// pool is reproducible and checkpoint/restore-stable.
type Pool struct {
	mech     *mechanism
	template settings
	stats    PoolStats // immutable identity fields only (Mechanism, Privacy)

	shards [poolShards]poolShard
}

type poolShard struct {
	mu      sync.RWMutex
	streams map[string]*poolStream
}

type poolStream struct {
	mu  sync.Mutex
	est Estimator
}

// ErrUnknownStream is returned (wrapped with the stream ID) by Pool methods
// that require an existing stream, such as Estimate on an ID that never
// observed anything. Match it with errors.Is.
var ErrUnknownStream = errors.New("privreg: unknown stream")

// PoolStats is a point-in-time snapshot of a Pool.
type PoolStats struct {
	// Mechanism is the canonical registry name of the pooled mechanism.
	Mechanism string
	// Privacy is the per-stream (ε, δ) budget (zero for nonprivate pools).
	Privacy Privacy
	// Horizon is the per-stream horizon from the template (0 when running with
	// an unknown horizon).
	Horizon int
	// Streams is the number of live streams.
	Streams int
	// Observations is the total number of points observed across all streams.
	Observations int64
	// Shards is the number of lock shards.
	Shards int
}

// NewPool returns a Pool that builds one estimator per stream from the given
// mechanism name (see Mechanisms) and option template. The template is
// validated eagerly by constructing and discarding a probe estimator, so a bad
// budget or a missing constraint fails here rather than on the first request.
func NewPool(mechanism string, opts ...Option) (*Pool, error) {
	m, err := lookupMechanism(mechanism)
	if err != nil {
		return nil, err
	}
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if _, err := buildEstimator(m, s); err != nil {
		return nil, err
	}
	p := &Pool{
		mech:     m,
		template: *s,
		stats: PoolStats{
			Mechanism: m.info.Name,
			Horizon:   s.cfg.Horizon,
			Shards:    poolShards,
		},
	}
	if m.info.Private {
		p.stats.Privacy = s.cfg.Privacy
	}
	for i := range p.shards {
		p.shards[i].streams = make(map[string]*poolStream)
	}
	return p, nil
}

// streamSeed derives a per-stream seed from the template seed and the stream
// ID with FNV-1a followed by the SplitMix64 finalizer (randx.Mix64, the same
// primitive Source.Split uses), so IDs that differ in one byte get
// well-separated seeds.
func (p *Pool) streamSeed(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	z := randx.Mix64(h.Sum64() ^ uint64(p.template.cfg.Seed))
	return int64(z & 0x7fffffffffffffff)
}

func (p *Pool) shardFor(id string) *poolShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &p.shards[h.Sum32()%poolShards]
}

// buildStream constructs a fresh estimator for the given stream ID from the
// pool template.
func (p *Pool) buildStream(id string) (Estimator, error) {
	s := p.template
	s.cfg.Seed = p.streamSeed(id)
	return buildEstimator(p.mech, &s)
}

// stream returns the poolStream for id, creating it when create is set.
func (p *Pool) stream(id string, create bool) (*poolStream, error) {
	sh := p.shardFor(id)
	sh.mu.RLock()
	ps := sh.streams[id]
	sh.mu.RUnlock()
	if ps != nil {
		return ps, nil
	}
	if !create {
		return nil, fmt.Errorf("%w %q", ErrUnknownStream, id)
	}
	// Build outside the shard lock (construction can be expensive: sketch
	// sampling, tree allocation), then insert; on a race the loser's estimator
	// is discarded.
	est, err := p.buildStream(id)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if existing := sh.streams[id]; existing != nil {
		sh.mu.Unlock()
		return existing, nil
	}
	ps = &poolStream{est: est}
	sh.streams[id] = ps
	sh.mu.Unlock()
	return ps, nil
}

// Observe feeds one covariate/response pair to the given stream, creating the
// stream on first use.
func (p *Pool) Observe(id string, x []float64, y float64) error {
	ps, err := p.stream(id, true)
	if err != nil {
		return err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.est.Observe(x, y)
}

// ObserveBatch feeds a contiguous batch to the given stream, creating the
// stream on first use. The batch is applied atomically with respect to other
// operations on the same stream.
func (p *Pool) ObserveBatch(id string, xs [][]float64, ys []float64) error {
	ps, err := p.stream(id, true)
	if err != nil {
		return err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.est.ObserveBatch(xs, ys)
}

// Estimate returns the current private estimate for the given stream. Unknown
// streams are an error (an estimate for a stream that never observed anything
// is almost always a caller bug; create streams by observing).
func (p *Pool) Estimate(id string) ([]float64, error) {
	ps, err := p.stream(id, false)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.est.Estimate()
}

// Len returns the number of observations of the given stream (0 for unknown
// streams).
func (p *Pool) Len(id string) int {
	ps, err := p.stream(id, false)
	if err != nil {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.est.Len()
}

// Has reports whether the stream exists (has observed at least one batch, or
// was restored from a checkpoint, and has not been dropped).
func (p *Pool) Has(id string) bool {
	sh := p.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.streams[id]
	sh.mu.RUnlock()
	return ok
}

// Drop removes a stream and reports whether it existed. Its budgeted private
// state is discarded; a subsequent Observe under the same ID starts a fresh
// stream (with the same derived seed).
func (p *Pool) Drop(id string) bool {
	sh := p.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.streams[id]
	delete(sh.streams, id)
	sh.mu.Unlock()
	return ok
}

// Streams returns the IDs of all live streams, sorted.
func (p *Pool) Streams() []string {
	var out []string
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for id := range sh.streams {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the pool: stream and observation counts plus the
// budget parameters every stream runs under.
func (p *Pool) Stats() PoolStats {
	st := p.stats
	// Snapshot the stream pointers under the shard lock, then count under each
	// stream's own lock with the shard lock released: holding both would let
	// one slow in-flight solve stall new-stream creation across its shard.
	var snapshot []*poolStream
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		st.Streams += len(sh.streams)
		for _, ps := range sh.streams {
			snapshot = append(snapshot, ps)
		}
		sh.mu.RUnlock()
	}
	for _, ps := range snapshot {
		ps.mu.Lock()
		st.Observations += int64(ps.est.Len())
		ps.mu.Unlock()
	}
	return st
}

// poolCheckpointMagic identifies a Pool checkpoint blob.
const (
	poolCheckpointMagic   = "PRPL"
	poolCheckpointVersion = 1
)

// Checkpoint serializes every stream's estimator state into one blob. Streams
// are written in sorted-ID order, so two pools with identical state produce
// identical blobs. Concurrent observations are not blocked globally — each
// stream is locked only while its own state is serialized — so a checkpoint
// taken under load is a per-stream-consistent snapshot.
func (p *Pool) Checkpoint() ([]byte, error) {
	type entry struct {
		id   string
		blob []byte
	}
	ids := p.Streams()
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		ps, err := p.stream(id, false)
		if err != nil {
			// The stream was dropped between listing and serialization; record
			// nothing for it.
			continue
		}
		ps.mu.Lock()
		blob, err := ps.est.MarshalBinary()
		ps.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("privreg: checkpointing stream %q: %w", id, err)
		}
		entries = append(entries, entry{id: id, blob: blob})
	}
	var w codec.Writer
	w.String(poolCheckpointMagic)
	w.Version(poolCheckpointVersion)
	w.String(p.mech.info.Name)
	w.Int(len(entries))
	for _, e := range entries {
		w.String(e.id)
		w.Blob(e.blob)
	}
	return w.Bytes(), nil
}

// Restore loads a checkpoint produced by Checkpoint into this pool, which must
// have been created with the same mechanism and option template (including the
// template seed — per-stream seeds derive from it). Existing streams with the
// same IDs are replaced; streams absent from the checkpoint are left alone.
// Restore is all-or-nothing: every stream in the checkpoint is rebuilt and
// verified before any is installed, so on error the pool is unchanged. After
// a successful restore, every restored stream continues bit-identically to
// the pool that was checkpointed.
func (p *Pool) Restore(data []byte) error {
	r := codec.NewReader(data)
	if r.String() != poolCheckpointMagic {
		return errors.New("privreg: not a pool checkpoint (bad magic)")
	}
	r.Version(poolCheckpointVersion)
	mech := r.String()
	count := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if mech != p.mech.info.Name {
		return fmt.Errorf("privreg: checkpoint is for mechanism %q, pool is %q", mech, p.mech.info.Name)
	}
	if count < 0 {
		return errors.New("privreg: corrupt pool checkpoint (negative stream count)")
	}
	type entry struct {
		id   string
		blob []byte
	}
	entries := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		id := r.String()
		blob := r.Blob()
		if r.Err() != nil {
			return r.Err()
		}
		entries = append(entries, entry{id: id, blob: blob})
	}
	if err := r.Finish(); err != nil {
		return err
	}
	// Rebuild and restore every stream before installing any, so a failure on
	// one stream leaves the pool exactly as it was (Restore is all-or-nothing).
	restored := make([]Estimator, len(entries))
	for i, e := range entries {
		est, err := p.buildStream(e.id)
		if err != nil {
			return fmt.Errorf("privreg: rebuilding stream %q: %w", e.id, err)
		}
		if err := est.UnmarshalBinary(e.blob); err != nil {
			return fmt.Errorf("privreg: restoring stream %q: %w", e.id, err)
		}
		restored[i] = est
	}
	for i, e := range entries {
		sh := p.shardFor(e.id)
		sh.mu.Lock()
		sh.streams[e.id] = &poolStream{est: restored[i]}
		sh.mu.Unlock()
	}
	return nil
}
