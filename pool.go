package privreg

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"privreg/internal/codec"
	"privreg/internal/randx"
	"privreg/internal/store"
)

// Pool manages one estimator per stream ID — the unit a server fronting many
// users holds. All methods are safe for concurrent use by any number of
// goroutines; distinct streams proceed in parallel (locking is per stream,
// sharded for cheap lookup), while operations on the same stream serialize.
//
// Streams are created lazily on first Observe/ObserveBatch. Every stream's
// estimator is built from the Pool's mechanism and option template, with one
// difference: the random seed is derived deterministically from the template
// seed and the stream ID, so each stream draws independent noise yet the whole
// pool is reproducible and checkpoint/restore-stable.
//
// Storage is pluggable. By default every stream stays resident in memory for
// the life of the process. With WithSpillDir the pool runs on the
// bounded-memory spill store instead: at most WithStoreCap estimators are
// resident, colder streams are serialized to per-stream segment files on disk
// and transparently faulted back in on access (bit-identical — spilling is
// invisible in the output sequence), and Flush writes incremental
// checkpoints whose cost scales with the number of streams touched since the
// last flush, not with the total stream count. See docs/SERVING.md.
type Pool struct {
	mech     *mechanism
	template settings
	stats    PoolStats // immutable identity fields only (Mechanism, Privacy, …)

	store store.StreamStore

	// standbyMu guards standby: stream IDs held as warm replicas for another
	// node rather than authoritative local state. The set only gates
	// bookkeeping (replication skips standbys, promotion flips them) — the
	// underlying estimator state is identical either way, which is what
	// makes promotion a metadata flip instead of a data copy.
	standbyMu sync.Mutex
	standby   map[string]struct{}

	// restoreMu serializes Restore's install phase against other restores,
	// so two concurrent monolithic restores cannot interleave installs.
	restoreMu sync.Mutex
}

// ErrUnknownStream is returned (wrapped with the stream ID) by Pool methods
// that require an existing stream, such as Estimate on an ID that never
// observed anything. Match it with errors.Is.
var ErrUnknownStream = errors.New("privreg: unknown stream")

// ErrNotPersistent is returned by Pool.Flush when the pool was built without
// WithSpillDir: there is no disk layer to checkpoint incrementally (use
// Checkpoint for a monolithic blob instead).
var ErrNotPersistent = errors.New("privreg: pool has no spill directory (build it with WithSpillDir to enable incremental checkpoints)")

// PoolStats is a point-in-time snapshot of a Pool.
type PoolStats struct {
	// Mechanism is the canonical registry name of the pooled mechanism.
	Mechanism string
	// Privacy is the per-stream (ε, δ) budget (zero for nonprivate pools).
	Privacy Privacy
	// Horizon is the per-stream horizon from the template (0 when running with
	// an unknown horizon).
	Horizon int
	// Streams is the number of live streams, resident or spilled.
	Streams int
	// Observations is the total number of points observed across all streams.
	Observations int64
	// Shards is the number of lock shards.
	Shards int

	// StoreCap is the resident-estimator bound (0 = unbounded).
	StoreCap int
	// Resident is the number of streams currently materialized in memory
	// (always equal to Streams for fully-resident pools).
	Resident int
	// Spilled is the number of streams currently held only as on-disk
	// segments (always 0 for fully-resident pools).
	Spilled int
	// DirtyStreams is the number of streams modified since their last
	// segment write — the number of segments the next Flush will rewrite.
	DirtyStreams int
	// Evictions counts resident→disk spills since the pool was created.
	Evictions int64
	// FaultIns counts disk→resident restores since the pool was created.
	FaultIns int64
	// StandbyStreams is the number of streams held as warm replicas for
	// other cluster nodes (included in Streams; 0 outside a cluster).
	StandbyStreams int
	// RetainedBytes is the total in-memory state retained across resident
	// streams for mechanisms that track it (the slow-path mechanisms report
	// their sufficient statistics or history buffers; spilled streams
	// contribute 0). Mechanisms without the accounting report 0.
	RetainedBytes int64
}

// FlushStats describes one incremental checkpoint written by Pool.Flush.
type FlushStats struct {
	// Segments is the number of per-stream segment files rewritten — the
	// streams that changed since the last flush, not the total stream count.
	Segments int
	// SegmentBytes is the total encoded size of the rewritten segments.
	SegmentBytes int
	// ManifestBytes is the size of the manifest (the recovery root).
	ManifestBytes int
	// Streams is the number of streams the manifest covers.
	Streams int
}

// NewPool returns a Pool that builds one estimator per stream from the given
// mechanism name (see Mechanisms) and option template. The template is
// validated eagerly by constructing and discarding a probe estimator, so a bad
// budget or a missing constraint fails here rather than on the first request.
//
// With WithSpillDir the pool opens the directory's manifest (if any) and
// registers every checkpointed stream immediately — restore-on-boot is
// O(manifest); stream state faults in lazily on first access.
func NewPool(mechanism string, opts ...Option) (*Pool, error) {
	m, err := lookupMechanism(mechanism)
	if err != nil {
		return nil, err
	}
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if s.storeCap < 0 {
		return nil, fmt.Errorf("privreg: WithStoreCap requires a non-negative cap, got %d", s.storeCap)
	}
	if s.storeCap > 0 && s.spillDir == "" {
		return nil, errors.New("privreg: WithStoreCap requires WithSpillDir (evicting without a spill directory would discard budgeted private state)")
	}
	if _, err := buildEstimator(m, s); err != nil {
		return nil, err
	}
	p := &Pool{
		mech:     m,
		template: *s,
		stats: PoolStats{
			Mechanism: m.info.Name,
			Horizon:   s.cfg.Horizon,
			Shards:    poolShards,
			StoreCap:  s.storeCap,
		},
	}
	if m.info.Private {
		p.stats.Privacy = s.cfg.Privacy
	}
	factory := func(id string) (store.Stream, error) { return p.buildStream(id) }
	if s.spillDir != "" {
		sp, err := store.OpenSpill(s.spillDir, m.info.Name, s.storeCap, factory)
		if err != nil {
			return nil, err
		}
		p.store = sp
	} else {
		p.store = store.NewResident(m.info.Name, factory)
	}
	return p, nil
}

// poolShards is the number of lock shards the stream store spreads streams
// over; kept for PoolStats continuity.
const poolShards = 64

// streamSeed derives a per-stream seed from the template seed and the stream
// ID with FNV-1a followed by the SplitMix64 finalizer (randx.Mix64, the same
// primitive Source.Split uses), so IDs that differ in one byte get
// well-separated seeds.
func (p *Pool) streamSeed(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	z := randx.Mix64(h.Sum64() ^ uint64(p.template.cfg.Seed))
	return int64(z & 0x7fffffffffffffff)
}

// buildStream constructs a fresh estimator for the given stream ID from the
// pool template. It is also the spill store's fault-in factory: the estimator
// it returns absorbs the stream's segment blob via UnmarshalBinary, after
// which it continues bit-identically (the checkpoint/restore contract).
func (p *Pool) buildStream(id string) (Estimator, error) {
	s := p.template
	s.cfg.Seed = p.streamSeed(id)
	return buildEstimator(p.mech, &s)
}

// wrapUnknown translates the store's not-found sentinel into the public
// ErrUnknownStream, stamped with the stream ID.
func wrapUnknown(err error, id string) error {
	if errors.Is(err, store.ErrNotFound) {
		return fmt.Errorf("%w %q", ErrUnknownStream, id)
	}
	return err
}

// Observe feeds one covariate/response pair to the given stream, creating the
// stream on first use (and faulting it in from disk if it was spilled).
func (p *Pool) Observe(id string, x []float64, y float64) error {
	return p.store.Update(id, true, func(st store.Stream) error {
		return st.(Estimator).Observe(x, y)
	})
}

// ObserveBatch feeds a contiguous batch to the given stream, creating the
// stream on first use. The batch is applied atomically with respect to other
// operations on the same stream.
func (p *Pool) ObserveBatch(id string, xs [][]float64, ys []float64) error {
	return p.store.Update(id, true, func(st store.Stream) error {
		return st.(Estimator).ObserveBatch(xs, ys)
	})
}

// ObserveFlat feeds a batch whose covariates are packed row-major in a single
// flat buffer: point i is (xs[i*dim:(i+1)*dim], ys[i]). Semantics are
// identical to ObserveBatch; the flat layout lets transport decoders hand the
// pool their receive buffers directly, with no per-row slice allocation. The
// pool does not retain xs or ys after the call returns.
func (p *Pool) ObserveFlat(id string, dim int, xs []float64, ys []float64) error {
	if dim <= 0 {
		return fmt.Errorf("privreg: flat batch dimension must be positive, got %d", dim)
	}
	if len(xs) != dim*len(ys) {
		return fmt.Errorf("privreg: flat batch has %d covariate values, want %d (%d rows × dim %d)", len(xs), dim*len(ys), len(ys), dim)
	}
	return p.store.Update(id, true, func(st store.Stream) error {
		est := st.(Estimator)
		if fo, ok := est.(FlatObserver); ok {
			return fo.ObserveFlat(dim, xs, ys)
		}
		// Fallback for custom Estimator implementations: materialize row views.
		rows := make([][]float64, len(ys))
		for i := range rows {
			rows[i] = xs[i*dim : (i+1)*dim : (i+1)*dim]
		}
		return est.ObserveBatch(rows, ys)
	})
}

// Outcomes returns the number of outcome columns k each stream of this pool
// serves: the WithOutcomes value for a multi-outcome pool, 1 otherwise.
func (p *Pool) Outcomes() int {
	if k := p.template.cfg.Outcomes; k > 1 && p.mech.info.MultiOutcome {
		return k
	}
	return 1
}

// ObserveMultiFlat feeds a batch of k-outcome rows packed flat: row-major
// covariates (rows×dim values) and row-major responses (rows×k values, k =
// Outcomes()). On a single-outcome pool it is ObserveFlat. Like ObserveFlat
// the pool does not retain xs or ys after the call returns, so transport
// decoders can hand their receive buffers over directly.
func (p *Pool) ObserveMultiFlat(id string, dim int, xs []float64, ys []float64) error {
	k := p.Outcomes()
	if k == 1 {
		return p.ObserveFlat(id, dim, xs, ys)
	}
	if dim <= 0 {
		return fmt.Errorf("privreg: flat batch dimension must be positive, got %d", dim)
	}
	if len(xs)%dim != 0 {
		return fmt.Errorf("privreg: flat batch of %d covariate values is not a multiple of dim %d", len(xs), dim)
	}
	if rows := len(xs) / dim; len(ys) != rows*k {
		return fmt.Errorf("privreg: flat batch of %d rows carries %d responses, want %d (k=%d)", rows, len(ys), rows*k, k)
	}
	return p.store.Update(id, true, func(st store.Stream) error {
		me, ok := st.(MultiEstimator)
		if !ok {
			return fmt.Errorf("privreg: stream %q estimator does not serve multiple outcomes", id)
		}
		return me.ObserveMultiFlat(dim, xs, ys)
	})
}

// EstimateOutcome returns outcome i's current private estimate for the given
// stream; outcome 0 of a single-outcome pool is its Estimate. Unknown streams
// are an error, and the access pattern (read-only unless WithWarmStart)
// matches Estimate.
func (p *Pool) EstimateOutcome(id string, i int) ([]float64, error) {
	access := p.store.Read
	if p.template.cfg.WarmStart {
		access = func(id string, fn func(store.Stream) error) error {
			return p.store.Update(id, false, fn)
		}
	}
	var theta []float64
	err := access(id, func(st store.Stream) error {
		me, ok := st.(MultiEstimator)
		if !ok {
			if i == 0 {
				var err error
				theta, err = st.(Estimator).Estimate()
				return err
			}
			return fmt.Errorf("privreg: stream %q estimator serves a single outcome, index %d out of range", id, i)
		}
		var err error
		theta, err = me.EstimateOutcome(i)
		return err
	})
	if err != nil {
		return nil, wrapUnknown(err, id)
	}
	return theta, nil
}

// Estimate returns the current private estimate for the given stream. Unknown
// streams are an error (an estimate for a stream that never observed anything
// is almost always a caller bug; create streams by observing).
//
// On a spill-backed pool, Estimate normally does not mark the stream dirty:
// the state it touches (the estimate memo, lazily materialized counter-keyed
// noise) is a deterministic function of the last persisted state, so the
// on-disk segment stays a valid snapshot and estimate-only traffic costs no
// checkpoint writes. With WithWarmStart the optimizer's start point feeds
// future outputs, so warm-started pools treat Estimate as a mutation.
func (p *Pool) Estimate(id string) ([]float64, error) {
	access := p.store.Read
	if p.template.cfg.WarmStart {
		access = func(id string, fn func(store.Stream) error) error {
			return p.store.Update(id, false, fn)
		}
	}
	var theta []float64
	err := access(id, func(st store.Stream) error {
		var err error
		theta, err = st.(Estimator).Estimate()
		return err
	})
	if err != nil {
		return nil, wrapUnknown(err, id)
	}
	return theta, nil
}

// LenOK returns the number of observations of the given stream and whether
// the stream exists, distinguishing an empty stream (0, true) from an unknown
// one (0, false). It never faults a spilled stream in: lengths are tracked
// alongside the residency state.
func (p *Pool) LenOK(id string) (int, bool) {
	return p.store.Length(id)
}

// Len returns the number of observations of the given stream, or 0 when the
// stream does not exist. Callers that need to tell an unknown stream from an
// empty one should use LenOK; Len remains as the historical shim (Estimate,
// by contrast, reports unknown streams as errors).
func (p *Pool) Len(id string) int {
	n, _ := p.store.Length(id)
	return n
}

// Has reports whether the stream exists (has observed at least one batch, or
// was restored from a checkpoint, and has not been dropped). Spilled streams
// exist.
func (p *Pool) Has(id string) bool {
	return p.store.Has(id)
}

// Drop removes a stream and reports whether it existed. Its budgeted private
// state is discarded (the on-disk segment of a spilled stream is deleted at
// the next Flush); a subsequent Observe under the same ID starts a fresh
// stream (with the same derived seed).
func (p *Pool) Drop(id string) bool {
	p.standbyMu.Lock()
	delete(p.standby, id)
	p.standbyMu.Unlock()
	return p.store.Delete(id)
}

// MarkStandby records that a stream is held as a warm replica for another
// node: its state mirrors the owner's but this pool is not authoritative for
// it. Standby streams are excluded from outbound replication and counted
// separately in Stats.
func (p *Pool) MarkStandby(id string) {
	p.standbyMu.Lock()
	if p.standby == nil {
		p.standby = make(map[string]struct{})
	}
	p.standby[id] = struct{}{}
	p.standbyMu.Unlock()
}

// Promote flips a standby stream to authoritative ownership — the metadata
// half of standby promotion; the data half is the replication-queue replay
// the cluster layer runs first. Reports whether the stream was a standby.
func (p *Pool) Promote(id string) bool {
	p.standbyMu.Lock()
	_, ok := p.standby[id]
	delete(p.standby, id)
	p.standbyMu.Unlock()
	return ok
}

// IsStandby reports whether the stream is held as a warm replica.
func (p *Pool) IsStandby(id string) bool {
	p.standbyMu.Lock()
	_, ok := p.standby[id]
	p.standbyMu.Unlock()
	return ok
}

// StandbyStreams returns the IDs of all standby streams, sorted.
func (p *Pool) StandbyStreams() []string {
	p.standbyMu.Lock()
	out := make([]string, 0, len(p.standby))
	for id := range p.standby {
		out = append(out, id)
	}
	p.standbyMu.Unlock()
	sort.Strings(out)
	return out
}

// Streams returns the IDs of all live streams (resident and spilled), sorted.
func (p *Pool) Streams() []string {
	return p.store.Keys()
}

// Stats returns a snapshot of the pool: stream, observation, and residency
// counts plus the budget parameters every stream runs under. Stats never
// faults spilled streams in.
func (p *Pool) Stats() PoolStats {
	st := p.stats
	ss := p.store.Stats()
	st.Streams = ss.Streams
	st.Observations = ss.Observations
	st.Resident = ss.Resident
	st.Spilled = ss.Spilled
	st.DirtyStreams = ss.Dirty
	st.Evictions = ss.Evictions
	st.FaultIns = ss.Faults
	st.RetainedBytes = ss.StateBytes
	p.standbyMu.Lock()
	st.StandbyStreams = len(p.standby)
	p.standbyMu.Unlock()
	return st
}

// Flush writes an incremental checkpoint of a spill-backed pool: every
// stream modified since the last flush gets a fresh fsynced segment file, and
// the manifest — the recovery root a restarted pool boots from — is atomically
// replaced. Cost is O(streams touched since the last flush), not O(total
// streams). Pools without WithSpillDir return ErrNotPersistent.
func (p *Pool) Flush() (FlushStats, error) {
	fs, err := p.store.Flush()
	if errors.Is(err, store.ErrNotPersistent) {
		return FlushStats{}, ErrNotPersistent
	}
	return FlushStats(fs), err
}

// ExportSegment returns one stream's state as a self-contained segment blob
// (the spill store's segment-file format: mechanism identity, stream ID,
// CRC) plus the stream's observation count — the unit the cluster layer
// ships between nodes during handoff and standby replication. On a
// spill-backed pool a cold stream's bytes come straight from its segment
// file without faulting the estimator in.
func (p *Pool) ExportSegment(id string) (data []byte, length int64, err error) {
	data, length, err = p.store.Export(id)
	if errors.Is(err, store.ErrNotFound) {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	return data, length, err
}

// ImportSegment installs a stream from a segment blob produced by
// ExportSegment on a pool of the same mechanism, replacing any local stream
// with the same ID. The blob's CRC and mechanism identity are verified
// before any local state changes; length is the stream's observation count
// at export (the segment format does not embed it). The imported stream is
// bit-identical to the source — estimator checkpoint codecs round-trip
// exactly — which is what makes cluster handoff invisible in the output
// sequence.
func (p *Pool) ImportSegment(data []byte, length int64) (id string, err error) {
	return p.store.Import(data, length)
}

// poolCheckpointMagic identifies a Pool checkpoint blob.
const (
	poolCheckpointMagic   = "PRPL"
	poolCheckpointVersion = 1
)

// Checkpoint serializes every stream's estimator state into one blob. Streams
// are written in sorted-ID order, so two pools with identical state produce
// identical blobs. Concurrent observations are not blocked globally — each
// stream is locked only while its own state is serialized — so a checkpoint
// taken under load is a per-stream-consistent snapshot. On a spill-backed
// pool, spilled streams are copied from their segment files without being
// faulted in.
//
// Checkpoint is the monolithic portability format (one self-contained blob);
// spill-backed pools usually persist with Flush instead, which rewrites only
// what changed.
func (p *Pool) Checkpoint() ([]byte, error) {
	type entry struct {
		id   string
		blob []byte
	}
	ids := p.Streams()
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		blob, err := p.store.Marshal(id)
		if errors.Is(err, store.ErrNotFound) {
			// The stream was dropped between listing and serialization; record
			// nothing for it.
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("privreg: checkpointing stream %q: %w", id, err)
		}
		entries = append(entries, entry{id: id, blob: blob})
	}
	var w codec.Writer
	w.String(poolCheckpointMagic)
	w.Version(poolCheckpointVersion)
	w.String(p.mech.info.Name)
	w.Int(len(entries))
	for _, e := range entries {
		w.String(e.id)
		w.Blob(e.blob)
	}
	return w.Bytes(), nil
}

// Restore loads a checkpoint produced by Checkpoint into this pool, which must
// have been created with the same mechanism and option template (including the
// template seed — per-stream seeds derive from it). Existing streams with the
// same IDs are replaced; streams absent from the checkpoint are left alone.
// Restore is all-or-nothing: every stream in the checkpoint is rebuilt and
// verified before any is installed, so on error the pool is unchanged. After
// a successful restore, every restored stream continues bit-identically to
// the pool that was checkpointed. Restored streams are installed resident and
// dirty; on a capped pool, installs beyond the cap spill as they land.
func (p *Pool) Restore(data []byte) error {
	r := codec.NewReader(data)
	if r.String() != poolCheckpointMagic {
		return errors.New("privreg: not a pool checkpoint (bad magic)")
	}
	r.Version(poolCheckpointVersion)
	mech := r.String()
	count := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if mech != p.mech.info.Name {
		return fmt.Errorf("privreg: checkpoint is for mechanism %q, pool is %q", mech, p.mech.info.Name)
	}
	if count < 0 {
		return errors.New("privreg: corrupt pool checkpoint (negative stream count)")
	}
	type entry struct {
		id   string
		blob []byte
	}
	entries := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		id := r.String()
		blob := r.Blob()
		if r.Err() != nil {
			return r.Err()
		}
		entries = append(entries, entry{id: id, blob: blob})
	}
	if err := r.Finish(); err != nil {
		return err
	}
	// Rebuild and restore every stream before installing any, so a failure on
	// one stream leaves the pool exactly as it was (Restore is all-or-nothing).
	restored := make([]Estimator, len(entries))
	for i, e := range entries {
		est, err := p.buildStream(e.id)
		if err != nil {
			return fmt.Errorf("privreg: rebuilding stream %q: %w", e.id, err)
		}
		if err := est.UnmarshalBinary(e.blob); err != nil {
			return fmt.Errorf("privreg: restoring stream %q: %w", e.id, err)
		}
		restored[i] = est
	}
	p.restoreMu.Lock()
	defer p.restoreMu.Unlock()
	for i, e := range entries {
		p.store.Install(e.id, restored[i])
	}
	return nil
}
