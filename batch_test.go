package privreg

import (
	"errors"
	"testing"

	"privreg/internal/core"
)

// TestObserveBatchMatchesScalarLoop is the acceptance test of batch
// ingestion: for every mechanism, feeding the stream through ObserveBatch in
// uneven chunks produces exactly the state a scalar Observe loop produces —
// same counts, bit-identical estimates.
func TestObserveBatchMatchesScalarLoop(t *testing.T) {
	for _, tc := range testMechanismCases() {
		t.Run(tc.name, func(t *testing.T) {
			scalar, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}

			xs := make([][]float64, tc.horizon)
			ys := make([]float64, tc.horizon)
			for i := range xs {
				xs[i], ys[i] = syntheticPoint(i, tc.dim)
			}

			for i := 0; i < tc.horizon; i++ {
				if err := scalar.Observe(xs[i], ys[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Uneven chunk sizes, including a singleton and an empty batch.
			for lo := 0; lo < tc.horizon; {
				hi := lo + 1 + (lo % 4)
				if hi > tc.horizon {
					hi = tc.horizon
				}
				if err := batched.ObserveBatch(xs[lo:hi], ys[lo:hi]); err != nil {
					t.Fatalf("ObserveBatch[%d:%d]: %v", lo, hi, err)
				}
				lo = hi
			}
			if err := batched.ObserveBatch(nil, nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}

			if scalar.Len() != batched.Len() {
				t.Fatalf("Len: scalar %d != batched %d", scalar.Len(), batched.Len())
			}
			a, err := scalar.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			b, err := batched.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			sameVector(t, tc.name, a, b)
		})
	}
}

// TestObserveBatchValidation covers the batch-boundary error contract:
// mismatched lengths, dimension mismatches, and all-or-nothing horizon
// overflow.
func TestObserveBatchValidation(t *testing.T) {
	newGrad := func() Estimator {
		est, err := New("gradient",
			WithEpsilonDelta(1, 1e-6), WithHorizon(8), WithConstraint(L2Constraint(3, 1)), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	est := newGrad()
	if err := est.ObserveBatch([][]float64{{1, 0, 0}}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("mismatched batch lengths should be rejected")
	}

	est = newGrad()
	if err := est.ObserveBatch([][]float64{{1, 0}}, []float64{0.1}); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	if est.Len() != 0 {
		t.Fatalf("failed batch must not consume elements, Len = %d", est.Len())
	}

	// A batch overrunning the horizon is rejected whole, before any element is
	// consumed.
	est = newGrad()
	xs := make([][]float64, 9)
	ys := make([]float64, 9)
	for i := range xs {
		xs[i], ys[i] = syntheticPoint(i, 3)
	}
	err := est.ObserveBatch(xs, ys)
	if !errors.Is(err, core.ErrStreamFull) {
		t.Fatalf("oversized batch error = %v, want ErrStreamFull", err)
	}
	if est.Len() != 0 {
		t.Fatalf("oversized batch must be all-or-nothing, Len = %d", est.Len())
	}
	// The same batch minus one element fits exactly.
	if err := est.ObserveBatch(xs[:8], ys[:8]); err != nil {
		t.Fatal(err)
	}
	if est.Len() != 8 {
		t.Fatalf("Len = %d, want 8", est.Len())
	}

	// The robust mechanism validates dimensions up front too: a bad element in
	// the middle of a batch must not leave a valid prefix ingested.
	robust, err := New("robust-projected",
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(8),
		WithConstraint(L1Constraint(8, 1)),
		WithDomain(SparseDomain(8, 2)),
		WithDomainOracle(func([]float64) bool { return true }),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	good, goodY := syntheticPoint(0, 8)
	if err := robust.ObserveBatch([][]float64{good, {1, 0}}, []float64{goodY, 0.1}); err == nil {
		t.Fatal("robust batch with a mid-batch dimension mismatch should be rejected")
	}
	if robust.Len() != 0 {
		t.Fatalf("robust failed batch must be all-or-nothing, Len = %d", robust.Len())
	}
}
