// Command privreg-server serves a privreg.Pool — one private incremental
// regression estimator per stream — over HTTP/JSON, and optionally over the
// compact binary wire protocol on a second port (-wire-addr), which ingests
// batched rows at a multiple of the JSON path's throughput with identical
// semantics. It is the network edge of the continual-release model: points
// arrive forever on POST (or observe frames), estimates are released on
// demand on GET (or estimate frames), and the process survives restarts by
// periodic checkpointing with restore-on-boot.
//
// Usage:
//
//	privreg-server -addr :8080 -mechanism gradient \
//	    -epsilon 1 -delta 1e-6 -horizon 100000 -dim 16 -seed 42 \
//	    -checkpoint-dir /var/lib/privreg -checkpoint-interval 30s \
//	    -store-cap 50000
//
// With -store-cap K at most K estimators stay resident in memory; colder
// streams spill to per-stream segment files under -checkpoint-dir and fault
// back in transparently (bit-identically) on their next request, so the
// server's estimator memory is O(K) regardless of how many streams it serves.
// Checkpoints are incremental: each one rewrites only segments of streams
// that changed since the last, plus a small fsynced manifest, and a restart
// restores from the manifest lazily. See docs/SERVING.md for sizing guidance.
//
// Endpoints (see docs/SERVING.md for the full API):
//
//	POST   /v1/streams/{id}/observe    ingest one point or a batch
//	GET    /v1/streams/{id}/estimate   current private estimate
//	GET    /v1/streams/{id}/stats      per-stream stats
//	DELETE /v1/streams/{id}            drop a stream
//	GET    /v1/streams                 list streams
//	GET    /v1/stats                   pool stats
//	GET    /v1/config                  the serving Spec (shadow-pool recipe)
//	GET    /v1/mechanisms              mechanism registry listing
//	POST   /v1/checkpoint              checkpoint now
//	GET    /healthz                    liveness (always 200 while the process runs)
//	GET    /readyz                     readiness (503 while draining or importing)
//	GET    /v1/ring                    cluster ring (clustered servers only)
//	GET    /metrics                    Prometheus text (?format=json for JSON)
//
// Cluster mode (see docs/CLUSTER.md): with -node-id and -peers the server
// joins a consistent-hash ring, owns a shard of the stream space, forwards
// misrouted requests to owners over the wire protocol, and replicates warm
// standbys. All members boot with the same -peers list:
//
//	privreg-server -addr :8080 -wire-addr :8081 -seed 42 \
//	    -node-id alpha \
//	    -peers "alpha=10.0.0.1:8080/10.0.0.1:8081,beta=10.0.0.2:8080/10.0.0.2:8081"
//
// A later node can instead boot solo and join live with -join, which
// rebalances the ring and hands off the moved streams' segments with no
// divergence window:
//
//	privreg-server -addr :8080 -wire-addr :8081 -seed 42 \
//	    -node-id gamma -peers "gamma=10.0.0.3:8080/10.0.0.3:8081" \
//	    -join http://10.0.0.1:8080
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting
// connections, applies every queued observation, hands its streams off to
// the surviving members (cluster mode), writes a final checkpoint, and exits
// 0 — so kill + restart is bit-identical to never having stopped (verified
// end to end by privreg-loadgen and the CI e2e job).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux served by -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privreg/internal/cluster"
	"privreg/internal/server"
	"privreg/internal/version"
)

// parsePeers decodes the -peers flag: comma-separated
// id=httpHost:port/wireHost:port entries. The wire address is mandatory per
// member because forwarding, handoff, and replication all ride the binary
// protocol.
func parsePeers(s string) ([]cluster.Node, error) {
	var nodes []cluster.Node
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, addrs, ok := strings.Cut(ent, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("peer entry %q: want id=httpHost:port/wireHost:port", ent)
		}
		httpAddr, wireAddr, ok := strings.Cut(addrs, "/")
		if !ok || httpAddr == "" || wireAddr == "" {
			return nil, fmt.Errorf("peer entry %q: want id=httpHost:port/wireHost:port (the wire address is required: cluster traffic rides the binary protocol)", ent)
		}
		nodes = append(nodes, cluster.Node{ID: id, Addr: httpAddr, WireAddr: wireAddr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return nodes, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		wireAddr     = flag.String("wire-addr", "", "optional second listen address for the binary wire protocol (e.g. :8081; empty disables)")
		mechanism    = flag.String("mechanism", "gradient", "registry mechanism to serve (see privreg-demo -list)")
		epsilon      = flag.Float64("epsilon", 1.0, "per-stream privacy parameter ε")
		delta        = flag.Float64("delta", 1e-6, "per-stream privacy parameter δ")
		horizon      = flag.Int("horizon", 100000, "per-stream horizon T")
		dim          = flag.Int("dim", 16, "covariate dimension d")
		outcomes     = flag.Int("outcomes", 0, "response columns k per row (requires -mechanism multi-outcome when above 1; 0/1 = single outcome)")
		radius       = flag.Float64("radius", 1, "L2 constraint-ball radius")
		seed         = flag.Int64("seed", 42, "pool template seed (per-stream seeds derive from it)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for pool state: per-stream segments + manifest (empty disables persistence)")
		ckptInterval = flag.Duration("checkpoint-interval", 30*time.Second, "periodic incremental checkpoint cadence (<=0 disables periodic saves)")
		storeCap     = flag.Int("store-cap", 0, "max estimators resident in memory; colder streams spill to -checkpoint-dir and fault back in on access (0 = unbounded)")
		queuePoints  = flag.Int("queue-points", 4096, "per-stream ingest queue bound, in points (overload returns 429)")
		pprofAddr    = flag.String("pprof-addr", "", "optional listen address for net/http/pprof diagnostics (e.g. localhost:6060; empty disables)")
		nodeID       = flag.String("node-id", "", "this node's ID in a cluster (empty = standalone; requires -peers and -wire-addr)")
		peersFlag    = flag.String("peers", "", `cluster members as comma-separated id=httpHost:port/wireHost:port entries, including this node's own; with -join, list only this node`)
		replicas     = flag.Int("replicas", 0, "cluster replication factor: owner + N-1 warm standbys (0 = default)")
		joinPeer     = flag.String("join", "", "HTTP base URL of an existing cluster member to join live (e.g. http://10.0.0.1:8080)")
		probeIvl     = flag.Duration("probe-interval", time.Second, "cluster failure-detector probe cadence (0 disables gossip failure detection)")
		probeTimeout = flag.Duration("probe-timeout", 0, "direct-probe ack timeout before trying indirect probes (0 = probe-interval/2)")
		suspicion    = flag.Duration("suspicion-timeout", 0, "how long a suspected member may stay unrefuted before it is declared dead and its streams promoted (0 = 3×probe-interval)")
	)
	flag.Parse()
	log.Printf("privreg-server %s", version.Version)

	// Profiling runs on its own listener so the diagnostics surface is never
	// exposed on the serving address; off by default. See docs/SERVING.md.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	// Cluster wiring: -node-id turns the flags into a ClusterConfig. The
	// node's own peers entry doubles as its advertised addresses, so it must
	// be present even when -join boots the node solo.
	var clusterCfg *server.ClusterConfig
	var selfAddr string
	if *nodeID != "" {
		if *wireAddr == "" {
			fmt.Fprintln(os.Stderr, "error: cluster mode requires -wire-addr (forwarding and handoff ride the binary protocol)")
			return 2
		}
		nodes, err := parsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error: -peers:", err)
			return 2
		}
		found := false
		for _, n := range nodes {
			if n.ID == *nodeID {
				selfAddr = n.Addr
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "error: -peers has no entry for -node-id %q (the entry advertises this node's addresses)\n", *nodeID)
			return 2
		}
		if *joinPeer != "" && len(nodes) != 1 {
			fmt.Fprintln(os.Stderr, "error: with -join, -peers must list only this node; the ring comes from the cluster being joined")
			return 2
		}
		clusterCfg = &server.ClusterConfig{
			NodeID:           *nodeID,
			Nodes:            nodes,
			Replicas:         *replicas,
			ProbeInterval:    *probeIvl,
			ProbeTimeout:     *probeTimeout,
			SuspicionTimeout: *suspicion,
		}
	} else if *peersFlag != "" || *joinPeer != "" {
		fmt.Fprintln(os.Stderr, "error: -peers/-join require -node-id")
		return 2
	}

	interval := *ckptInterval
	if interval <= 0 {
		interval = -1 // Config treats 0 as "default"; negative disables.
	}
	srv, err := server.New(server.Config{
		Spec: server.Spec{
			Mechanism: *mechanism,
			Epsilon:   *epsilon,
			Delta:     *delta,
			Horizon:   *horizon,
			Dim:       *dim,
			Outcomes:  *outcomes,
			Radius:    *radius,
			Seed:      *seed,
		},
		CheckpointDir:      *ckptDir,
		CheckpointInterval: interval,
		StoreCap:           *storeCap,
		MaxQueuedPoints:    *queuePoints,
		Cluster:            clusterCfg,
		Logf:               log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}

	// The wire listener shares the server's pool, ingester, and drain: Close
	// (run by srv.Run on shutdown) stops it and flushes its pending acks, so
	// the accept loop ending with "draining" is the clean exit.
	if *wireAddr != "" {
		go func() {
			if err := srv.ListenAndServeWire(*wireAddr); err != nil {
				log.Printf("wire listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Joining happens after this node's own listeners are up: the coordinator
	// pushes the moved streams' segments to us over the wire protocol and
	// drives the import window over HTTP, so both surfaces must already
	// serve. Until the join completes the importing gate bounces data-plane
	// traffic with retryable 503s. A failed join shuts the node down rather
	// than leaving it serving an orphan single-node ring.
	joinFailed := make(chan struct{})
	if *joinPeer != "" {
		go func() {
			base := "http://" + selfAddr
			for i := 0; i < 200; i++ {
				resp, err := http.Get(base + "/healthz")
				if err == nil {
					resp.Body.Close()
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if err := srv.JoinCluster(*joinPeer); err != nil {
				log.Printf("cluster join via %s failed: %v", *joinPeer, err)
				close(joinFailed)
				cancel()
				return
			}
			log.Printf("joined cluster via %s (ring v%d)", *joinPeer, srv.Ring().Version())
		}()
	}

	if err := srv.Run(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	select {
	case <-joinFailed:
		return 1
	default:
	}
	log.Printf("drained cleanly")
	return 0
}
