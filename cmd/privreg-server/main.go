// Command privreg-server serves a privreg.Pool — one private incremental
// regression estimator per stream — over HTTP/JSON, and optionally over the
// compact binary wire protocol on a second port (-wire-addr), which ingests
// batched rows at a multiple of the JSON path's throughput with identical
// semantics. It is the network edge of the continual-release model: points
// arrive forever on POST (or observe frames), estimates are released on
// demand on GET (or estimate frames), and the process survives restarts by
// periodic checkpointing with restore-on-boot.
//
// Usage:
//
//	privreg-server -addr :8080 -mechanism gradient \
//	    -epsilon 1 -delta 1e-6 -horizon 100000 -dim 16 -seed 42 \
//	    -checkpoint-dir /var/lib/privreg -checkpoint-interval 30s \
//	    -store-cap 50000
//
// With -store-cap K at most K estimators stay resident in memory; colder
// streams spill to per-stream segment files under -checkpoint-dir and fault
// back in transparently (bit-identically) on their next request, so the
// server's estimator memory is O(K) regardless of how many streams it serves.
// Checkpoints are incremental: each one rewrites only segments of streams
// that changed since the last, plus a small fsynced manifest, and a restart
// restores from the manifest lazily. See docs/SERVING.md for sizing guidance.
//
// Endpoints (see docs/SERVING.md for the full API):
//
//	POST   /v1/streams/{id}/observe    ingest one point or a batch
//	GET    /v1/streams/{id}/estimate   current private estimate
//	GET    /v1/streams/{id}/stats      per-stream stats
//	DELETE /v1/streams/{id}            drop a stream
//	GET    /v1/streams                 list streams
//	GET    /v1/stats                   pool stats
//	GET    /v1/config                  the serving Spec (shadow-pool recipe)
//	GET    /v1/mechanisms              mechanism registry listing
//	POST   /v1/checkpoint              checkpoint now
//	GET    /healthz                    liveness (503 while draining)
//	GET    /metrics                    Prometheus text (?format=json for JSON)
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting
// connections, applies every queued observation, writes a final checkpoint,
// and exits 0 — so kill + restart is bit-identical to never having stopped
// (verified end to end by privreg-loadgen and the CI e2e job).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux served by -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"privreg/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		wireAddr     = flag.String("wire-addr", "", "optional second listen address for the binary wire protocol (e.g. :8081; empty disables)")
		mechanism    = flag.String("mechanism", "gradient", "registry mechanism to serve (see privreg-demo -list)")
		epsilon      = flag.Float64("epsilon", 1.0, "per-stream privacy parameter ε")
		delta        = flag.Float64("delta", 1e-6, "per-stream privacy parameter δ")
		horizon      = flag.Int("horizon", 100000, "per-stream horizon T")
		dim          = flag.Int("dim", 16, "covariate dimension d")
		radius       = flag.Float64("radius", 1, "L2 constraint-ball radius")
		seed         = flag.Int64("seed", 42, "pool template seed (per-stream seeds derive from it)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for pool state: per-stream segments + manifest (empty disables persistence)")
		ckptInterval = flag.Duration("checkpoint-interval", 30*time.Second, "periodic incremental checkpoint cadence (<=0 disables periodic saves)")
		storeCap     = flag.Int("store-cap", 0, "max estimators resident in memory; colder streams spill to -checkpoint-dir and fault back in on access (0 = unbounded)")
		queuePoints  = flag.Int("queue-points", 4096, "per-stream ingest queue bound, in points (overload returns 429)")
		pprofAddr    = flag.String("pprof-addr", "", "optional listen address for net/http/pprof diagnostics (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	// Profiling runs on its own listener so the diagnostics surface is never
	// exposed on the serving address; off by default. See docs/SERVING.md.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	interval := *ckptInterval
	if interval <= 0 {
		interval = -1 // Config treats 0 as "default"; negative disables.
	}
	srv, err := server.New(server.Config{
		Spec: server.Spec{
			Mechanism: *mechanism,
			Epsilon:   *epsilon,
			Delta:     *delta,
			Horizon:   *horizon,
			Dim:       *dim,
			Radius:    *radius,
			Seed:      *seed,
		},
		CheckpointDir:      *ckptDir,
		CheckpointInterval: interval,
		StoreCap:           *storeCap,
		MaxQueuedPoints:    *queuePoints,
		Logf:               log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}

	// The wire listener shares the server's pool, ingester, and drain: Close
	// (run by srv.Run on shutdown) stops it and flushes its pending acks, so
	// the accept loop ending with "draining" is the clean exit.
	if *wireAddr != "" {
		go func() {
			if err := srv.ListenAndServeWire(*wireAddr); err != nil {
				log.Printf("wire listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.Run(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}
