// Command privreg-benchdiff is the bench-trajectory tool: it normalizes the
// JSON report of privreg-bench into a flat, diffable metric document, and
// compares two such documents with a regression threshold.
//
// Normalize (stdout gets the normalized document, the BENCH_*.json format).
// Passing several comma-separated reports — repeated runs of the same sweep —
// reduces each metric to its per-run minimum, the standard wall-time noise
// reduction:
//
//	privreg-bench -json -quick > bench_1.json
//	privreg-bench -json -quick > bench_2.json
//	privreg-benchdiff -normalize bench_1.json,bench_2.json > BENCH_pr.json
//
// Compare (warn-only by default — prints regressions, exits 0; -strict exits
// non-zero when a *gated* metric regresses past the threshold):
//
//	privreg-benchdiff -baseline BENCH_baseline.json -candidate BENCH_pr.json -threshold 1.5 -strict
//
// Timing metrics (ns suffixes) are compared by ratio against the threshold in
// both directions — regressions warn, speedups are reported as notices. Size
// metrics (bytes suffixes, e.g. checkpoint_bytes) get the same warn-only
// ratio treatment: a checkpoint that grows past the threshold surfaces as a
// PR annotation, shrinkage is a notice, and byte-level drift from legitimate
// format evolution stays silent. Rate metrics (points_per_sec suffixes, the
// edge-transport probes) are thresholded the same way with the direction
// inverted — higher is better — and under -normalize reduce to the per-run
// maximum instead of the minimum. Metrics that exist only in the candidate
// are reported as notices, never regressions, so an older committed baseline
// stays comparable with a PR that grows the bench surface. Remaining
// deterministic metrics (experiment
// counts) warn on any change, since a change means the code changed shape,
// not that the runner was noisy. Only the serving-critical ingest and
// estimate metrics
// (scalar_ns_per_point, batch_ns_per_point, estimate_ns, and the
// multi-outcome engine's ns_per_point_per_outcome) gate the -strict
// exit code: they are the hot-path guarantees CI locks in, while whole-sweep
// wall time, checkpoint latency, and shape facts stay advisory (they move for
// legitimate reasons — more experiments, fatter checkpoints — and would make
// a strict gate flap). Lines are emitted both human-readably and as GitHub
// Actions ::warning:: annotations so regressions surface on the PR itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// normalizedSchema versions the BENCH_*.json format.
const normalizedSchema = 1

// normalized is the flat metric document committed as BENCH_baseline.json and
// uploaded as the BENCH_pr.json artifact. Metrics are keyed
// "throughput/<mechanism>/<phase>" and "experiments/<fact>"; encoding/json
// sorts map keys, so the document is stable under re-normalization.
type normalized struct {
	Schema  int                `json:"schema"`
	Quick   bool               `json:"quick"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
}

// rawReport mirrors the subset of the privreg-bench -json document the
// trajectory cares about.
type rawReport struct {
	Seed        int64   `json:"seed"`
	Quick       bool    `json:"quick"`
	WallSeconds float64 `json:"wall_seconds"`
	Results     []struct {
		ID string `json:"id"`
	} `json:"results"`
	Throughput []struct {
		Mechanism        string  `json:"mechanism"`
		ScalarNsPerPoint float64 `json:"scalar_ns_per_point"`
		BatchNsPerPoint  float64 `json:"batch_ns_per_point"`
		EstimateNs       float64 `json:"estimate_ns"`
		CheckpointNs     float64 `json:"checkpoint_ns"`
		CheckpointBytes  int     `json:"checkpoint_bytes"`
	} `json:"throughput"`
	MultiOutcome *struct {
		NsPerPointPerOutcome            float64 `json:"ns_per_point_per_outcome"`
		IndependentNsPerPointPerOutcome float64 `json:"independent_ns_per_point_per_outcome"`
		EstimateAllNs                   float64 `json:"estimate_all_ns"`
	} `json:"multi_outcome"`
	Edge []struct {
		Proto        string  `json:"proto"`
		PointsPerSec float64 `json:"points_per_sec"`
	} `json:"edge"`
	Cluster *struct {
		Proto        string  `json:"proto"`
		PointsPerSec float64 `json:"points_per_sec"`
	} `json:"cluster"`
	Error string `json:"error"`
}

// normalize flattens one or more raw reports into a single metric document.
// With several reports (repeated runs of the same sweep) each metric takes
// its per-run minimum — the standard wall-time noise reduction: the minimum
// is the run least disturbed by the machine, and deterministic metrics are
// identical across runs so the minimum is a no-op for them.
func normalize(raws ...[]byte) (*normalized, error) {
	if len(raws) == 0 {
		return nil, fmt.Errorf("benchdiff: no reports to normalize")
	}
	var n *normalized
	for _, raw := range raws {
		var r rawReport
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("benchdiff: decoding privreg-bench report: %w", err)
		}
		if r.Error != "" {
			return nil, fmt.Errorf("benchdiff: refusing to normalize a failed bench run: %s", r.Error)
		}
		if len(r.Throughput) == 0 {
			return nil, fmt.Errorf("benchdiff: report has no throughput section (need privreg-bench -json)")
		}
		one := &normalized{Schema: normalizedSchema, Quick: r.Quick, Seed: r.Seed, Metrics: map[string]float64{}}
		for _, p := range r.Throughput {
			one.Metrics["throughput/"+p.Mechanism+"/scalar_ns_per_point"] = p.ScalarNsPerPoint
			one.Metrics["throughput/"+p.Mechanism+"/batch_ns_per_point"] = p.BatchNsPerPoint
			one.Metrics["throughput/"+p.Mechanism+"/estimate_ns"] = p.EstimateNs
			one.Metrics["throughput/"+p.Mechanism+"/checkpoint_ns"] = p.CheckpointNs
			one.Metrics["throughput/"+p.Mechanism+"/checkpoint_bytes"] = float64(p.CheckpointBytes)
		}
		if r.MultiOutcome != nil {
			one.Metrics["throughput/multi-outcome/ns_per_point_per_outcome"] = r.MultiOutcome.NsPerPointPerOutcome
			one.Metrics["throughput/multi-outcome/independent_ns_per_point_per_outcome"] = r.MultiOutcome.IndependentNsPerPointPerOutcome
			one.Metrics["throughput/multi-outcome/estimate_all_ns"] = r.MultiOutcome.EstimateAllNs
		}
		for _, e := range r.Edge {
			one.Metrics["throughput/edge/"+e.Proto+"/points_per_sec"] = e.PointsPerSec
		}
		if r.Cluster != nil {
			one.Metrics["throughput/cluster/"+r.Cluster.Proto+"/points_per_sec"] = r.Cluster.PointsPerSec
		}
		one.Metrics["experiments/count"] = float64(len(r.Results))
		one.Metrics["experiments/wall_seconds"] = r.WallSeconds
		if n == nil {
			n = one
			continue
		}
		if len(one.Metrics) != len(n.Metrics) {
			return nil, fmt.Errorf("benchdiff: reports disagree on metric set (%d vs %d metrics) — not repeated runs of the same sweep", len(one.Metrics), len(n.Metrics))
		}
		for k, v := range one.Metrics {
			prev, ok := n.Metrics[k]
			if !ok {
				return nil, fmt.Errorf("benchdiff: reports disagree on metric set (%s) — not repeated runs of the same sweep", k)
			}
			// Costs take the minimum across runs; rates (higher is better)
			// take the maximum — both pick the run least disturbed by the
			// machine.
			if rateMetric(k) {
				n.Metrics[k] = math.Max(prev, v)
			} else {
				n.Metrics[k] = math.Min(prev, v)
			}
		}
	}
	return n, nil
}

// finding is one comparison outcome.
type finding struct {
	level string // "warning" or "notice"
	text  string
}

// timingMetric reports whether a metric is a noisy wall-time measurement
// (ratio-thresholded) as opposed to a deterministic shape fact (any change
// warns).
func timingMetric(key string) bool {
	return strings.HasSuffix(key, "_ns") || strings.HasSuffix(key, "_ns_per_point") ||
		strings.HasSuffix(key, "ns_per_point_per_outcome") || strings.HasSuffix(key, "wall_seconds")
}

// timingFloorNs is the noise floor for nanosecond-denominated metrics: below
// one microsecond, scheduler jitter and GC pauses on shared runners dwarf any
// real signal, so two sub-floor values are never compared. A metric that
// climbs from sub-floor to above the floor still gets the ratio check — a
// 200ns op regressing to 5µs is a real finding.
const timingFloorNs = 1000.0

func nsMetric(key string) bool {
	return strings.HasSuffix(key, "_ns") || strings.HasSuffix(key, "_ns_per_point") ||
		strings.HasSuffix(key, "ns_per_point_per_outcome")
}

// rateMetric reports whether a metric is a throughput rate — higher is
// better, so the regression direction inverts relative to timing metrics.
// The edge probes (throughput/edge/{json,binary}/points_per_sec) and the
// cluster probe (throughput/cluster/binary/points_per_sec) are the
// current members. Rates are noisy wall-time measurements like timings
// (ratio-thresholded, warn-only), and under multi-run normalization they
// reduce to the per-run maximum instead of the minimum.
func rateMetric(key string) bool {
	return strings.HasSuffix(key, "points_per_sec")
}

// sizeMetric reports whether a metric is a byte count (checkpoint sizes,
// segment sizes). Sizes are deterministic but evolve with the on-disk format,
// so they get the ratio treatment rather than any-change warnings: only
// growth past the threshold is worth a PR annotation, and it never gates
// -strict.
func sizeMetric(key string) bool {
	return strings.HasSuffix(key, "_bytes")
}

// gatedMetric reports whether a metric participates in the -strict exit gate:
// the per-point ingest costs and the estimate latency — the serving hot
// paths. Everything else (wall time, checkpoint cost/size, experiment count)
// is advisory: it warns but never fails the build.
func gatedMetric(key string) bool {
	return strings.HasSuffix(key, "scalar_ns_per_point") ||
		strings.HasSuffix(key, "batch_ns_per_point") ||
		strings.HasSuffix(key, "estimate_ns") ||
		key == "throughput/multi-outcome/ns_per_point_per_outcome"
}

// compare diffs candidate against baseline. Findings are timing metrics whose
// ratio exceeds threshold and deterministic metrics that changed at all;
// improvements past 1/threshold are reported as notices. The regressions
// count — what -strict gates on — covers only gated metrics.
func compare(base, cand *normalized, threshold float64) (findings []finding, regressions int) {
	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base.Metrics[k]
		c, ok := cand.Metrics[k]
		if !ok {
			if gatedMetric(k) {
				regressions++
			}
			findings = append(findings, finding{"warning", fmt.Sprintf("%s: present in baseline, missing from candidate", k)})
			continue
		}
		if rateMetric(k) {
			if b <= 0 {
				continue
			}
			ratio := c / b
			switch {
			case ratio < 1/threshold:
				findings = append(findings, finding{"warning",
					fmt.Sprintf("%s regressed %.2fx (baseline %.0f, candidate %.0f; higher is better)", k, 1/ratio, b, c)})
			case ratio > threshold:
				findings = append(findings, finding{"notice",
					fmt.Sprintf("%s improved %.2fx (baseline %.0f, candidate %.0f)", k, ratio, b, c)})
			}
			continue
		}
		if timingMetric(k) {
			if b <= 0 {
				continue
			}
			if nsMetric(k) && b < timingFloorNs && c < timingFloorNs {
				continue
			}
			ratio := c / b
			switch {
			case ratio > threshold:
				if gatedMetric(k) {
					regressions++
				}
				findings = append(findings, finding{"warning",
					fmt.Sprintf("%s regressed %.2fx (baseline %.0f, candidate %.0f)", k, ratio, b, c)})
			case ratio < 1/threshold:
				findings = append(findings, finding{"notice",
					fmt.Sprintf("%s improved %.2fx (baseline %.0f, candidate %.0f)", k, 1/ratio, b, c)})
			}
			continue
		}
		if sizeMetric(k) {
			if b <= 0 {
				continue
			}
			ratio := c / b
			switch {
			case ratio > threshold:
				findings = append(findings, finding{"warning",
					fmt.Sprintf("%s grew %.2fx (baseline %.0f, candidate %.0f) — checkpoint-size regression", k, ratio, b, c)})
			case ratio < 1/threshold:
				findings = append(findings, finding{"notice",
					fmt.Sprintf("%s shrank %.2fx (baseline %.0f, candidate %.0f)", k, 1/ratio, b, c)})
			}
			continue
		}
		if math.Abs(c-b) > 0 {
			findings = append(findings, finding{"warning",
				fmt.Sprintf("%s changed: baseline %.0f, candidate %.0f (deterministic metric — the code changed shape)", k, b, c)})
		}
	}
	// Metrics the candidate adds are informational, never regressions: an
	// older committed baseline stays comparable across PRs that grow the
	// bench surface.
	for k, c := range cand.Metrics {
		if _, ok := base.Metrics[k]; !ok {
			findings = append(findings, finding{"notice", fmt.Sprintf("%s: new metric, not in baseline (candidate %.0f)", k, c)})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].level != findings[j].level {
			return findings[i].level == "warning"
		}
		return findings[i].text < findings[j].text
	})
	return findings, regressions
}

func readNormalized(path string) (*normalized, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var n normalized
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("benchdiff: decoding %s: %w", path, err)
	}
	if n.Schema != normalizedSchema {
		return nil, fmt.Errorf("benchdiff: %s has schema %d, this tool speaks %d", path, n.Schema, normalizedSchema)
	}
	return &n, nil
}

func main() {
	os.Exit(run(os.Stdout))
}

func run(stdout io.Writer) int {
	var (
		normalizePath = flag.String("normalize", "", "comma-separated privreg-bench -json reports to normalize; repeated runs are reduced per-metric to their minimum (stdout gets the BENCH_*.json document)")
		baseline      = flag.String("baseline", "", "committed baseline (normalized) to compare against")
		candidate     = flag.String("candidate", "", "candidate (normalized) to compare")
		threshold     = flag.Float64("threshold", 1.6, "timing regression ratio that triggers a warning")
		strict        = flag.Bool("strict", false, "exit non-zero on gated (ingest/estimate) regressions instead of warn-only")
	)
	flag.Parse()

	switch {
	case *normalizePath != "":
		var raws [][]byte
		for _, path := range strings.Split(*normalizePath, ",") {
			raw, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			raws = append(raws, raw)
		}
		n, err := normalize(raws...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(n); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0

	case *baseline != "" && *candidate != "":
		base, err := readNormalized(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		cand, err := readNormalized(*candidate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if *threshold <= 1 {
			fmt.Fprintln(os.Stderr, "error: -threshold must be > 1")
			return 2
		}
		findings, regressions := compare(base, cand, *threshold)
		for _, f := range findings {
			// The ::level:: prefix makes GitHub Actions surface the line as a
			// PR annotation; locally it is just a prefix.
			fmt.Fprintf(stdout, "::%s::bench: %s\n", f.level, f.text)
		}
		fmt.Fprintf(stdout, "benchdiff: %d metrics compared, %d gated regressions, %d findings (threshold %.2fx%s)\n",
			len(base.Metrics), regressions, len(findings), *threshold,
			map[bool]string{true: ", strict", false: ", warn-only"}[*strict])
		if *strict && regressions > 0 {
			return 1
		}
		return 0

	default:
		fmt.Fprintln(os.Stderr, "usage: privreg-benchdiff -normalize raw.json | privreg-benchdiff -baseline a.json -candidate b.json [-threshold 1.6] [-strict]")
		return 2
	}
}
