package main

import (
	"strings"
	"testing"
)

const sampleRaw = `{
  "seed": 1, "quick": true, "wall_seconds": 12.5,
  "results": [{"id": "E1"}, {"id": "E2"}],
  "throughput": [
    {"mechanism": "gradient", "scalar_ns_per_point": 2500, "batch_ns_per_point": 2100,
     "estimate_ns": 40000, "checkpoint_ns": 150000, "checkpoint_bytes": 42023},
    {"mechanism": "projected", "scalar_ns_per_point": 56000, "batch_ns_per_point": 46000,
     "estimate_ns": 26000000, "checkpoint_ns": 1250000, "checkpoint_bytes": 700520}
  ],
  "edge": [
    {"proto": "json", "points_per_sec": 60000},
    {"proto": "binary", "points_per_sec": 640000}
  ]
}`

func TestNormalize(t *testing.T) {
	n, err := normalize([]byte(sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	if n.Schema != normalizedSchema || !n.Quick || n.Seed != 1 {
		t.Fatalf("header: %+v", n)
	}
	for key, want := range map[string]float64{
		"throughput/gradient/scalar_ns_per_point": 2500,
		"throughput/gradient/checkpoint_bytes":    42023,
		"throughput/projected/batch_ns_per_point": 46000,
		"throughput/projected/estimate_ns":        26000000,
		"throughput/projected/checkpoint_ns":      1250000,
		"throughput/edge/json/points_per_sec":     60000,
		"throughput/edge/binary/points_per_sec":   640000,
		"experiments/count":                       2,
		"experiments/wall_seconds":                12.5,
	} {
		if got := n.Metrics[key]; got != want {
			t.Errorf("metric %s = %v, want %v", key, got, want)
		}
	}

	if _, err := normalize([]byte(`{"error": "boom", "throughput": [{"mechanism": "x"}]}`)); err == nil {
		t.Error("failed runs should not normalize")
	}
	if _, err := normalize([]byte(`{"results": []}`)); err == nil {
		t.Error("reports without throughput should not normalize")
	}
}

func TestNormalizeMinOfRuns(t *testing.T) {
	second := strings.Replace(sampleRaw, `"scalar_ns_per_point": 2500`, `"scalar_ns_per_point": 1800`, 1)
	second = strings.Replace(second, `"estimate_ns": 40000`, `"estimate_ns": 55000`, 1)
	second = strings.Replace(second, `"points_per_sec": 640000`, `"points_per_sec": 700000`, 1)
	n, err := normalize([]byte(sampleRaw), []byte(second))
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Metrics["throughput/gradient/scalar_ns_per_point"]; got != 1800 {
		t.Errorf("min reduction: scalar = %v, want 1800", got)
	}
	if got := n.Metrics["throughput/gradient/estimate_ns"]; got != 40000 {
		t.Errorf("min reduction: estimate = %v, want 40000", got)
	}
	if got := n.Metrics["throughput/gradient/checkpoint_bytes"]; got != 42023 {
		t.Errorf("deterministic metric changed under min: %v", got)
	}
	// Rates reduce to the per-run maximum: the best run is the least
	// machine-disturbed one when higher is better.
	if got := n.Metrics["throughput/edge/binary/points_per_sec"]; got != 700000 {
		t.Errorf("max reduction: binary rate = %v, want 700000", got)
	}
	if got := n.Metrics["throughput/edge/json/points_per_sec"]; got != 60000 {
		t.Errorf("max reduction: json rate = %v, want 60000", got)
	}

	// Disagreeing metric sets (different sweeps) are rejected.
	other := strings.Replace(sampleRaw, `"mechanism": "projected"`, `"mechanism": "different"`, 1)
	if _, err := normalize([]byte(sampleRaw), []byte(other)); err == nil {
		t.Error("mismatched sweeps should not min-reduce")
	}
}

func TestCompare(t *testing.T) {
	base, err := normalize([]byte(sampleRaw))
	if err != nil {
		t.Fatal(err)
	}

	// Identical → no findings.
	cand, _ := normalize([]byte(sampleRaw))
	findings, regressions := compare(base, cand, 1.6)
	if len(findings) != 0 || regressions != 0 {
		t.Fatalf("identical docs: findings=%v regressions=%d", findings, regressions)
	}

	// A 2x ingest slowdown is a gated regression; a 2x speedup is a notice; a
	// doubled checkpoint size and a missing advisory metric warn without
	// gating -strict; small byte drift (format evolution) stays silent.
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/gradient/scalar_ns_per_point"] *= 2
	cand.Metrics["throughput/projected/estimate_ns"] /= 2
	cand.Metrics["throughput/gradient/checkpoint_bytes"] *= 2
	cand.Metrics["throughput/projected/checkpoint_bytes"] += 8
	delete(cand.Metrics, "throughput/projected/checkpoint_ns")
	findings, regressions = compare(base, cand, 1.6)
	if regressions != 1 {
		t.Fatalf("gated regressions = %d, want 1 (the ingest slowdown; size growth and missing checkpoint metric are advisory); findings: %v", regressions, findings)
	}
	var texts []string
	for _, f := range findings {
		texts = append(texts, f.level+": "+f.text)
	}
	joined := strings.Join(texts, "\n")
	for _, want := range []string{
		"warning: throughput/gradient/scalar_ns_per_point regressed 2.00x",
		"warning: throughput/gradient/checkpoint_bytes grew 2.00x",
		"warning: throughput/projected/checkpoint_ns: present in baseline, missing from candidate",
		"notice: throughput/projected/estimate_ns improved 2.00x",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "projected/checkpoint_bytes") {
		t.Errorf("sub-threshold byte drift should be silent:\n%s", joined)
	}

	// A missing gated metric and a gated batch-ingest slowdown both gate; a
	// checkpoint-latency slowdown warns without gating.
	cand, _ = normalize([]byte(sampleRaw))
	delete(cand.Metrics, "throughput/gradient/estimate_ns")
	cand.Metrics["throughput/projected/batch_ns_per_point"] *= 3
	cand.Metrics["throughput/gradient/checkpoint_ns"] *= 3
	findings, regressions = compare(base, cand, 1.6)
	if regressions != 2 {
		t.Fatalf("gated regressions = %d, want 2 (missing estimate metric + batch slowdown); findings: %v", regressions, findings)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v, want 3 warnings (the checkpoint slowdown still warns)", findings)
	}

	// Small jitter below threshold is silent.
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/gradient/scalar_ns_per_point"] *= 1.3
	if findings, regressions = compare(base, cand, 1.6); len(findings) != 0 || regressions != 0 {
		t.Fatalf("jitter below threshold should be silent: %v", findings)
	}

	// Sub-microsecond timing values are below the noise floor: no comparison
	// when both sides are under it, but a climb across the floor still warns.
	base.Metrics["throughput/cheap/estimate_ns"] = 200
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/cheap/estimate_ns"] = 900 // 4.5x, but both sub-floor
	if findings, regressions = compare(base, cand, 1.6); len(findings) != 0 || regressions != 0 {
		t.Fatalf("sub-floor jitter should be silent: %v", findings)
	}
	cand.Metrics["throughput/cheap/estimate_ns"] = 5000 // crossed the floor
	if _, regressions = compare(base, cand, 1.6); regressions != 1 {
		t.Fatalf("sub-floor to above-floor regression should warn, got %d regressions", regressions)
	}
	delete(base.Metrics, "throughput/cheap/estimate_ns")

	// New candidate-only metrics are notices, not regressions, and carry the
	// candidate value so the annotation is self-contained.
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/new-mech/scalar_ns_per_point"] = 123
	if findings, regressions = compare(base, cand, 1.6); regressions != 0 || len(findings) != 1 || findings[0].level != "notice" {
		t.Fatalf("new metric handling: findings=%v regressions=%d", findings, regressions)
	} else if !strings.Contains(findings[0].text, "(candidate 123)") {
		t.Fatalf("new-metric notice should carry the candidate value: %q", findings[0].text)
	}

	// Rate metrics invert the regression direction: a halved throughput warns
	// (without gating -strict), a doubled throughput is a notice, and jitter
	// below the threshold is silent.
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/edge/binary/points_per_sec"] /= 2
	cand.Metrics["throughput/edge/json/points_per_sec"] *= 2
	findings, regressions = compare(base, cand, 1.6)
	if regressions != 0 {
		t.Fatalf("rate metrics must not gate -strict: %d regressions", regressions)
	}
	texts = texts[:0]
	for _, f := range findings {
		texts = append(texts, f.level+": "+f.text)
	}
	joined = strings.Join(texts, "\n")
	for _, want := range []string{
		"warning: throughput/edge/binary/points_per_sec regressed 2.00x",
		"notice: throughput/edge/json/points_per_sec improved 2.00x",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("rate findings missing %q in:\n%s", want, joined)
		}
	}
	cand, _ = normalize([]byte(sampleRaw))
	cand.Metrics["throughput/edge/binary/points_per_sec"] *= 0.8
	if findings, regressions = compare(base, cand, 1.6); len(findings) != 0 || regressions != 0 {
		t.Fatalf("sub-threshold rate jitter should be silent: %v", findings)
	}
}
