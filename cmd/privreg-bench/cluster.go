package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"privreg/internal/cluster"
	"privreg/internal/server"
	"privreg/internal/wire"
)

// clusterResult is the machine-readable form of the cluster-throughput
// probe: a 3-node in-process cluster on loopback, driven ring-aware over the
// binary wire protocol (every stream routed client-side to its owner, as
// privreg-loadgen -cluster does). points_per_sec is the aggregate ingest
// rate across all nodes.
//
// Read it against throughput/edge/binary/points_per_sec: on a multi-core
// host the cluster rate approaches nodes× the single-server rate because the
// shards apply points in parallel; on a single core the two rates are
// necessarily about equal — the nodes time-slice one CPU, so the probe then
// measures cluster overhead (extra listeners, ring routing), not scaling.
type clusterResult struct {
	Proto           string  `json:"proto"` // always "binary"
	Mechanism       string  `json:"mechanism"`
	Nodes           int     `json:"nodes"`
	Streams         int     `json:"streams"`
	PointsPerStream int     `json:"points_per_stream"`
	Dim             int     `json:"d"`
	Batch           int     `json:"batch"`
	PointsPerSec    float64 `json:"points_per_sec"`
}

const (
	clusterNodes   = 3
	clusterStreams = 6 // ~2 per node; same batch/dim shape as the edge probe
)

// benchNode is one in-process cluster member: a server plus its two
// listeners.
type benchNode struct {
	srv  *server.Server
	hs   *http.Server
	wire net.Listener
}

// runClusterProbe boots a clusterNodes-member cluster on loopback, feeds
// clusterStreams streams of perStream points each through the stream's owner
// over the wire protocol, and returns the aggregate rate. Replication is
// disabled so the probe measures the serving path, not the standby fanout.
func runClusterProbe(quick bool, seed int64) (*clusterResult, error) {
	perStream := 1 << 15
	if quick {
		perStream = 1 << 13
	}

	// All listeners first, so every node's config can name every member.
	nodes := make([]benchNode, clusterNodes)
	peerList := make([]struct{ http, wire net.Listener }, clusterNodes)
	var peers []struct {
		id         string
		http, wire string
	}
	for i := range peerList {
		hl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		wl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			hl.Close()
			return nil, err
		}
		peerList[i].http, peerList[i].wire = hl, wl
		peers = append(peers, struct {
			id         string
			http, wire string
		}{fmt.Sprintf("bench-%d", i), hl.Addr().String(), wl.Addr().String()})
	}
	memberNodes := make([]cluster.Node, clusterNodes)
	for i, p := range peers {
		memberNodes[i] = cluster.Node{ID: p.id, Addr: p.http, WireAddr: p.wire}
	}

	defer func() {
		for _, n := range nodes {
			if n.hs != nil {
				n.hs.Close()
			}
			if n.srv != nil {
				n.srv.Close()
			}
		}
	}()
	for i := range nodes {
		srv, err := server.New(server.Config{
			Spec: server.Spec{
				Mechanism: "nonprivate",
				Epsilon:   1,
				Delta:     1e-6,
				Horizon:   perStream,
				Dim:       edgeDim,
				Radius:    1,
				Seed:      seed,
			},
			CheckpointInterval: -1,
			Cluster: &server.ClusterConfig{
				NodeID:              peers[i].id,
				Nodes:               memberNodes,
				ReplicationInterval: -1,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("cluster probe node %d: %w", i, err)
		}
		nodes[i].srv = srv
		nodes[i].hs = &http.Server{Handler: srv.Handler()}
		go nodes[i].hs.Serve(peerList[i].http)
		go srv.ServeWire(peerList[i].wire)
	}

	// Ring-aware clients: one wire connection per node, each stream driven
	// through its owner so no request pays the forwarding hop.
	ring := nodes[0].srv.Ring()
	clients := make(map[string]*wire.Client, clusterNodes)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, p := range peers {
		c, err := wire.Dial(p.wire, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("cluster probe dial %s: %w", p.id, err)
		}
		clients[p.id] = c
	}

	errs := make(chan error, clusterStreams)
	start := time.Now()
	for s := 0; s < clusterStreams; s++ {
		id := fmt.Sprintf("cluster-%d", s)
		wc := clients[ring.Owner(id).ID]
		go func() {
			for lo := 0; lo < perStream; lo += edgeBatch {
				hi := lo + edgeBatch
				if hi > perStream {
					hi = perStream
				}
				if err := edgeSendWire(wc, id, lo, hi); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for s := 0; s < clusterStreams; s++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	// Every point must have landed on its owner — a cluster that misroutes
	// or drops fails the probe instead of winning it.
	for s := 0; s < clusterStreams; s++ {
		id := fmt.Sprintf("cluster-%d", s)
		var owner *server.Server
		for i, p := range peers {
			if p.id == ring.Owner(id).ID {
				owner = nodes[i].srv
			}
		}
		if n := owner.Pool().Len(id); n != perStream {
			return nil, fmt.Errorf("stream %s holds %d points on its owner after the run, want %d", id, n, perStream)
		}
	}
	return &clusterResult{
		Proto:           "binary",
		Mechanism:       "nonprivate",
		Nodes:           clusterNodes,
		Streams:         clusterStreams,
		PointsPerStream: perStream,
		Dim:             edgeDim,
		Batch:           edgeBatch,
		PointsPerSec:    float64(clusterStreams*perStream) / elapsed.Seconds(),
	}, nil
}

// runClusterCLI is the -cluster entry point: run just the cluster probe and
// print the rate (human-readably, or as one JSON document).
func runClusterCLI(quick bool, seed int64, asJSON bool) int {
	res, err := runClusterProbe(quick, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("cluster %-6s: %12.0f points/sec (%d nodes, %d streams × %d points, d=%d, batch=%d, mechanism %s)\n",
		res.Proto, res.PointsPerSec, res.Nodes, res.Streams, res.PointsPerStream, res.Dim, res.Batch, res.Mechanism)
	return 0
}
