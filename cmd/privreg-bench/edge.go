package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"privreg/internal/retry"
	"privreg/internal/server"
	"privreg/internal/wire"
)

// edgeResult is the machine-readable form of one edge-throughput probe: an
// in-process privreg server driven at full tilt through one of its two
// transports. points_per_sec is the end-to-end ingest rate (client encode →
// transport → server decode → group-commit apply → ack), so the pair of
// results measures the protocol overhead the estimator speed is hidden
// behind — the nonprivate mechanism applies points in ~0.2µs, leaving the
// wire format and HTTP/JSON machinery as essentially the whole cost.
type edgeResult struct {
	Proto           string  `json:"proto"` // "json" or "binary"
	Mechanism       string  `json:"mechanism"`
	Streams         int     `json:"streams"`
	PointsPerStream int     `json:"points_per_stream"`
	Dim             int     `json:"d"`
	Batch           int     `json:"batch"`
	PointsPerSec    float64 `json:"points_per_sec"`
}

// Edge-probe shape. Dim 32 with batch 256 matches the serving guidance in
// docs/SERVING.md (batch ≥64 so the per-request overhead amortizes); four
// concurrent streams keep the ingester's group commit busy without turning
// the probe into a scheduler benchmark.
const (
	edgeDim     = 32
	edgeBatch   = 256
	edgeStreams = 4
)

// runEdgeProbes boots one in-process server with both front ends listening on
// loopback and measures ingest throughput through each: the same synthetic
// workload (server.SyntheticPoint, so the loadgen shadow-pool contract holds
// here too) pushed over HTTP/JSON and over the binary wire protocol.
func runEdgeProbes(quick bool, seed int64) ([]edgeResult, error) {
	perStream := 1 << 15
	if quick {
		perStream = 1 << 13
	}

	srv, err := server.New(server.Config{
		Spec: server.Spec{
			Mechanism: "nonprivate",
			Epsilon:   1,
			Delta:     1e-6,
			Horizon:   perStream,
			Dim:       edgeDim,
			Radius:    1,
			Seed:      seed,
		},
		CheckpointInterval: -1,
	})
	if err != nil {
		return nil, fmt.Errorf("edge probe server: %w", err)
	}
	defer srv.Close()

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(httpLn)
	defer hs.Close()

	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.ServeWire(wireLn)

	results := make([]edgeResult, 0, 2)
	for _, proto := range []string{"json", "binary"} {
		rate, err := edgePhase(proto, srv, httpLn.Addr().String(), wireLn.Addr().String(), perStream)
		if err != nil {
			return nil, fmt.Errorf("edge probe %s: %w", proto, err)
		}
		results = append(results, edgeResult{
			Proto:           proto,
			Mechanism:       "nonprivate",
			Streams:         edgeStreams,
			PointsPerStream: perStream,
			Dim:             edgeDim,
			Batch:           edgeBatch,
			PointsPerSec:    rate,
		})
	}
	return results, nil
}

// edgePhase drives edgeStreams concurrent streams of perStream points each
// through one transport and returns the aggregate points/sec. Stream names
// are disjoint across phases so both phases hit fresh estimators of the same
// shape. Every batch must be positively acked and the final stream length
// checked against the pool, so a transport that silently drops points fails
// the probe instead of winning it.
func edgePhase(proto string, srv *server.Server, httpAddr, wireAddr string, perStream int) (float64, error) {
	var wc *wire.Client
	var hc *http.Client
	if proto == "binary" {
		c, err := wire.Dial(wireAddr, 5*time.Second)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		wc = c
	} else {
		tr := &http.Transport{MaxIdleConns: edgeStreams * 2, MaxIdleConnsPerHost: edgeStreams * 2}
		hc = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	errs := make(chan error, edgeStreams)
	start := time.Now()
	for s := 0; s < edgeStreams; s++ {
		id := fmt.Sprintf("edge-%s-%d", proto, s)
		go func() {
			for lo := 0; lo < perStream; lo += edgeBatch {
				hi := lo + edgeBatch
				if hi > perStream {
					hi = perStream
				}
				var err error
				if wc != nil {
					err = edgeSendWire(wc, id, lo, hi)
				} else {
					err = edgeSendJSON(hc, httpAddr, id, lo, hi)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for s := 0; s < edgeStreams; s++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)

	for s := 0; s < edgeStreams; s++ {
		id := fmt.Sprintf("edge-%s-%d", proto, s)
		if n := srv.Pool().Len(id); n != perStream {
			return 0, fmt.Errorf("stream %s holds %d points after the run, want %d", id, n, perStream)
		}
	}
	return float64(edgeStreams*perStream) / elapsed.Seconds(), nil
}

// edgeSendWire sends points [lo, hi) of a stream as one binary observe frame,
// retrying retryable nacks via the shared policy — backpressure is part of
// the measured path.
func edgeSendWire(wc *wire.Client, id string, lo, hi int) error {
	xs := make([]float64, 0, (hi-lo)*edgeDim)
	ys := make([]float64, 0, hi-lo)
	for j := lo; j < hi; j++ {
		x, y := server.SyntheticPoint(id, j, edgeDim)
		xs = append(xs, x...)
		ys = append(ys, y)
	}
	for attempt := 1; ; attempt++ {
		_, _, err := wc.Observe(id, xs, ys)
		if wire.IsRetryable(err) {
			hint, _ := wire.RetryAfter(err)
			retry.Backoff(attempt, hint)
			continue
		}
		return err
	}
}

// edgeSendJSON sends the same batch as one POST /observe, retrying
// backpressure statuses via the shared policy.
func edgeSendJSON(hc *http.Client, addr, id string, lo, hi int) error {
	xs := make([][]float64, 0, hi-lo)
	ys := make([]float64, 0, hi-lo)
	for j := lo; j < hi; j++ {
		x, y := server.SyntheticPoint(id, j, edgeDim)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	body, err := json.Marshal(map[string]any{"xs": xs, "ys": ys})
	if err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/v1/streams/%s/observe", addr, id)
	for attempt := 1; ; attempt++ {
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var or observeAck
		derr := json.NewDecoder(resp.Body).Decode(&or)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			if derr != nil {
				return derr
			}
			if or.Applied != hi-lo {
				return fmt.Errorf("ack applied %d of %d points", or.Applied, hi-lo)
			}
			return nil
		case retry.RetryableStatus(resp.StatusCode):
			retry.Backoff(attempt, retry.HTTPRetryAfter(resp))
		default:
			return fmt.Errorf("observe %s [%d, %d): HTTP %d", id, lo, hi, resp.StatusCode)
		}
	}
}

// observeAck mirrors the server's observe response body.
type observeAck struct {
	Applied int `json:"applied"`
	Len     int `json:"len"`
}

// runEdgeCLI is the -edge entry point: run just the edge probes and print
// the two rates plus their ratio (human-readably, or as one JSON array).
func runEdgeCLI(quick bool, seed int64, asJSON bool) int {
	results, err := runEdgeProbes(quick, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	rates := make(map[string]float64, len(results))
	for _, r := range results {
		rates[r.Proto] = r.PointsPerSec
		fmt.Printf("edge %-6s : %12.0f points/sec (%d streams × %d points, d=%d, batch=%d, mechanism %s)\n",
			r.Proto, r.PointsPerSec, r.Streams, r.PointsPerStream, r.Dim, r.Batch, r.Mechanism)
	}
	if rates["json"] > 0 {
		fmt.Printf("binary/json  : %12.2fx\n", rates["binary"]/rates["json"])
	}
	return 0
}
