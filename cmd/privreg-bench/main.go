// Command privreg-bench runs the reproduction experiments of the paper
// "Private Incremental Regression" (Kasiviswanathan, Nissim, Jin — PODS 2017)
// and prints the measured tables, scaling-exponent fits, and qualitative notes
// that EXPERIMENTS.md records.
//
// Usage:
//
//	privreg-bench -experiment all            # every experiment, full sweeps
//	privreg-bench -experiment E4 -trials 5   # one experiment, more repetitions
//	privreg-bench -list                      # list experiment IDs
//	privreg-bench -experiment all -quick     # reduced sweeps (seconds, not minutes)
//	privreg-bench -experiment E6 -workers 1  # disable the sweep worker pool
//	privreg-bench -experiment all -json      # machine-readable results on stdout
//
// Besides the paper experiments, -mechanism runs a serving-shaped throughput
// probe of a single registry mechanism (see privreg.Mechanisms): it streams T
// points scalar and batched, measures ingestion and estimate latency, and
// reports the checkpoint size:
//
//	privreg-bench -mechanism projected -T 2000 -d 128 -batch 64
//
// The process exits non-zero whenever any experiment fails, so CI smoke runs
// gate on it. With -json, stdout carries exactly one JSON document (errors go
// to stderr) for downstream perf-trajectory tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"privreg"
	"privreg/internal/experiments"
)

// jsonResult is the machine-readable form of one experiment result.
type jsonResult struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Table  jsonTable          `json:"table"`
	Slopes map[string]float64 `json:"slopes,omitempty"`
	Notes  []string           `json:"notes,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Seed        int64             `json:"seed"`
	Trials      int               `json:"trials"`
	Quick       bool              `json:"quick"`
	Workers     int               `json:"workers"`
	Epsilon     float64           `json:"epsilon"`
	Delta       float64           `json:"delta"`
	WallSeconds float64           `json:"wall_seconds"`
	Results     []jsonResult      `json:"results"`
	Throughput  []probeResult     `json:"throughput,omitempty"`
	MultiProbe  *multiProbeResult `json:"multi_outcome,omitempty"`
	Edge        []edgeResult      `json:"edge,omitempty"`
	Cluster     *clusterResult    `json:"cluster,omitempty"`
	Error       string            `json:"error,omitempty"`
}

// multiProbeResult is the amortization probe of the multi-outcome engine:
// the per-point-per-outcome ingest cost of one k-outcome estimator (one
// shared Gram fold + k O(d) vector folds per point) against k independent
// generic-erm estimators fed the same covariates (k full O(d²) folds per
// point). The ratio is the amortization the shared fold buys; CI gates the
// multi cost like the other ingest metrics.
type multiProbeResult struct {
	K                               int     `json:"k"`
	T                               int     `json:"T"`
	Dim                             int     `json:"d"`
	Batch                           int     `json:"batch"`
	NsPerPointPerOutcome            float64 `json:"ns_per_point_per_outcome"`
	IndependentNsPerPointPerOutcome float64 `json:"independent_ns_per_point_per_outcome"`
	AmortizationX                   float64 `json:"amortization_x"`
	EstimateAllNs                   float64 `json:"estimate_all_ns"`
	IndependentEstimateAllNs        float64 `json:"independent_estimate_all_ns"`
}

// probeResult is the machine-readable form of one serving-shaped throughput
// probe: the per-phase costs downstream perf-trajectory tooling
// (cmd/privreg-benchdiff, the CI bench-trajectory job) compares across PRs.
type probeResult struct {
	Mechanism        string  `json:"mechanism"`
	Algorithm        string  `json:"algorithm"`
	T                int     `json:"T"`
	Dim              int     `json:"d"`
	Batch            int     `json:"batch"`
	ScalarNsPerPoint float64 `json:"scalar_ns_per_point"`
	BatchNsPerPoint  float64 `json:"batch_ns_per_point"`
	EstimateNs       float64 `json:"estimate_ns"`
	CheckpointNs     float64 `json:"checkpoint_ns"`
	CheckpointBytes  int     `json:"checkpoint_bytes"`
}

// probeHorizon sizes the throughput-probe stream per mechanism so every
// ingest measurement integrates at least a few milliseconds of work:
// naive-recompute pays a full private batch solve per point and stays short,
// the sub-microsecond nonprivate baseline gets a long stream, and the tree
// mechanisms sit in between.
func probeHorizon(name string) int {
	switch name {
	case "naive-recompute":
		return 64
	case "nonprivate":
		return 8192
	default:
		return 512
	}
}

func toJSONResult(r *experiments.Result) jsonResult {
	out := jsonResult{ID: r.ID, Title: r.Title, Slopes: r.Slopes, Notes: r.Notes}
	if r.Table != nil {
		out.Table = jsonTable{Title: r.Table.Title, Columns: r.Table.Columns, Rows: r.Table.Rows}
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (E1..E10, A1..A5) or \"all\"")
		trials     = flag.Int("trials", 0, "independent repetitions per configuration (0 = default)")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta      = flag.Float64("delta", 1e-6, "privacy parameter δ")
		workers    = flag.Int("workers", 0, "worker pool size for sweeps (0 = GOMAXPROCS; results are identical for any value)")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON results on stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
		mechanism  = flag.String("mechanism", "", "run a throughput probe of one registry mechanism instead of the paper experiments (see privreg-demo -list)")
		edge       = flag.Bool("edge", false, "run only the edge-throughput probes (HTTP/JSON vs binary wire) and print the rates")
		multiFl    = flag.Bool("multi", false, "run only the multi-outcome amortization probe (one k-outcome estimator vs k independent generic-erm) and print the per-outcome costs")
		outcomesFl = flag.Int("outcomes", 8, "multi-outcome probe: outcome-column count k")
		clusterFl  = flag.Bool("cluster", false, "run only the cluster-throughput probe (3-node ring, binary wire, ring-aware routing) and print the rate")
		horizon    = flag.Int("T", 1000, "throughput probe: stream length")
		dim        = flag.Int("d", 32, "throughput probe: covariate dimension")
		batch      = flag.Int("batch", 32, "throughput probe: batch size for the batched ingestion pass")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	defer stopProfiles()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		return 0
	}

	if *mechanism != "" {
		return runThroughputProbe(*mechanism, *horizon, *dim, *batch, *epsilon, *delta, *seed, *asJSON)
	}

	if *edge {
		return runEdgeCLI(*quick, *seed, *asJSON)
	}

	if *multiFl {
		return runMultiCLI(*outcomesFl, *horizon, *dim, *batch, *epsilon, *delta, *seed, *asJSON)
	}

	if *clusterFl {
		return runClusterCLI(*quick, *seed, *asJSON)
	}

	opts := experiments.Options{
		Trials:  *trials,
		Seed:    *seed,
		Quick:   *quick,
		Epsilon: *epsilon,
		Delta:   *delta,
		Workers: *workers,
	}

	start := time.Now()
	var results []*experiments.Result
	var runErr error
	if *experiment == "all" {
		results, runErr = experiments.All(opts)
	} else {
		var r *experiments.Result
		r, runErr = experiments.Run(*experiment, opts)
		if r != nil {
			results = append(results, r)
		}
	}
	elapsed := time.Since(start)

	if *asJSON {
		report := jsonReport{
			Seed:        *seed,
			Trials:      *trials,
			Quick:       *quick,
			Workers:     *workers,
			Epsilon:     *epsilon,
			Delta:       *delta,
			WallSeconds: elapsed.Seconds(),
		}
		for _, r := range results {
			report.Results = append(report.Results, toJSONResult(r))
		}
		// The JSON report doubles as the perf-trajectory artifact, so append a
		// serving-shaped throughput probe of every registry mechanism, then the
		// edge probes that measure the two serving transports end to end.
		if runErr == nil {
			for _, name := range privreg.Mechanisms() {
				p, err := probe(name, probeHorizon(name), 32, 32, *epsilon, *delta, *seed)
				if err != nil {
					runErr = fmt.Errorf("throughput probe %q: %w", name, err)
					break
				}
				report.Throughput = append(report.Throughput, *p)
			}
		}
		if runErr == nil {
			m, err := multiProbe(8, 512, 32, 32, *epsilon, *delta, *seed)
			if err != nil {
				runErr = fmt.Errorf("multi-outcome probe: %w", err)
			} else {
				report.MultiProbe = m
			}
		}
		if runErr == nil {
			var err error
			report.Edge, err = runEdgeProbes(*quick, *seed)
			if err != nil {
				runErr = err
			}
		}
		if runErr == nil {
			var err error
			report.Cluster, err = runClusterProbe(*quick, *seed)
			if err != nil {
				runErr = err
			}
			report.WallSeconds = time.Since(start).Seconds()
		}
		if runErr != nil {
			report.Error = runErr.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "error:", runErr)
			return 1
		}
		return 0
	}

	for _, r := range results {
		fmt.Println(r)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		return 1
	}
	fmt.Printf("total wall time: %s\n", elapsed.Round(time.Millisecond))
	return 0
}

// startProfiles arms the optional -cpuprofile / -memprofile outputs and
// returns the function that finalizes them. The CPU profile samples everything
// between flag parsing and process exit; the heap profile is a single snapshot
// taken after a forced GC so it reflects live retained state, not garbage.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error: close cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error: create mem profile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error: write mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error: close mem profile:", err)
			}
		}
	}, nil
}

// runThroughputProbe is the -mechanism CLI entry: run one probe and print it
// human-readably, or as a single JSON document with -json.
func runThroughputProbe(name string, horizon, dim, batch int, epsilon, delta float64, seed int64, asJSON bool) int {
	p, err := probe(name, horizon, dim, batch, epsilon, delta, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		fmt.Fprintln(os.Stderr, "registered mechanisms:", strings.Join(privreg.Mechanisms(), ", "))
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	perPoint := func(ns float64) time.Duration { return time.Duration(ns) }
	fmt.Printf("mechanism %q (%s): T=%d d=%d (ε=%g, δ=%g)\n", p.Mechanism, p.Algorithm, p.T, p.Dim, epsilon, delta)
	fmt.Printf("  scalar ingest : %10s total, %8s/point\n",
		time.Duration(p.ScalarNsPerPoint*float64(p.T)).Round(time.Microsecond), perPoint(p.ScalarNsPerPoint))
	fmt.Printf("  batch ingest  : %10s total, %8s/point (batch=%d)\n",
		time.Duration(p.BatchNsPerPoint*float64(p.T)).Round(time.Microsecond), perPoint(p.BatchNsPerPoint), p.Batch)
	fmt.Printf("  estimate      : %10s\n", time.Duration(p.EstimateNs).Round(time.Microsecond))
	fmt.Printf("  checkpoint    : %10s, %d bytes\n", time.Duration(p.CheckpointNs).Round(time.Microsecond), p.CheckpointBytes)
	return 0
}

// timePhase measures fn by repetition until at least 10ms of wall time has
// accumulated (capped at 1024 reps for expensive operations), returning the
// mean duration — stable enough for the bench-trajectory ratio comparison
// even when a single call is nanoseconds.
func timePhase(fn func() error) (time.Duration, error) {
	const (
		minWindow = 10 * time.Millisecond
		maxReps   = 1024
	)
	start := time.Now()
	reps := 0
	for {
		if err := fn(); err != nil {
			return 0, err
		}
		reps++
		if elapsed := time.Since(start); elapsed >= minWindow || reps >= maxReps {
			return elapsed / time.Duration(reps), nil
		}
	}
}

// probe streams a synthetic workload through one mechanism resolved by
// registry name: a scalar Observe pass, a batched ObserveBatch pass, an
// estimate, and a checkpoint, measuring wall time per phase. It is the
// serving-shaped complement to the paper experiments.
func probe(name string, horizon, dim, batch int, epsilon, delta float64, seed int64) (*probeResult, error) {
	info, err := privreg.Describe(name)
	if err != nil {
		return nil, err
	}
	if batch < 1 {
		batch = 1
	}
	build := func() (privreg.Estimator, error) {
		opts := []privreg.Option{
			privreg.WithEpsilonDelta(epsilon, delta),
			privreg.WithHorizon(horizon),
			privreg.WithConstraint(privreg.L2Constraint(dim, 1)),
			privreg.WithSeed(seed),
		}
		if info.NeedsDomain {
			opts = append(opts, privreg.WithDomain(privreg.UnitBallDomain(dim)))
		}
		if info.NeedsOracle {
			opts = append(opts, privreg.WithDomainOracle(func([]float64) bool { return true }))
		}
		return privreg.New(info.Name, opts...)
	}

	xs := make([][]float64, horizon)
	ys := make([]float64, horizon)
	for i := range xs {
		x := make([]float64, dim)
		x[i%dim] = 0.8
		x[(i+1)%dim] = -0.4
		xs[i] = x
		ys[i] = 0.5 * x[i%dim]
	}

	scalar, err := build()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < horizon; i++ {
		if err := scalar.Observe(xs[i], ys[i]); err != nil {
			return nil, err
		}
	}
	scalarElapsed := time.Since(start)

	batched, err := build()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for lo := 0; lo < horizon; lo += batch {
		hi := lo + batch
		if hi > horizon {
			hi = horizon
		}
		if err := batched.ObserveBatch(xs[lo:hi], ys[lo:hi]); err != nil {
			return nil, err
		}
	}
	batchElapsed := time.Since(start)

	// Estimate and checkpoint are single operations, so one sample is timer
	// noise (tens of nanoseconds for the lazy mechanisms); repeat each until
	// it has integrated a real wall-time window and report the mean. The
	// first estimate folds in the deferred running-sum aggregation — a real
	// serving cost, so it stays in the mean rather than being discarded as
	// warm-up.
	estimateElapsed, err := timePhase(func() error {
		_, err := batched.Estimate()
		return err
	})
	if err != nil {
		return nil, err
	}

	var ckpt []byte
	ckptElapsed, err := timePhase(func() error {
		var err error
		ckpt, err = batched.MarshalBinary()
		return err
	})
	if err != nil {
		return nil, err
	}

	return &probeResult{
		Mechanism:        info.Name,
		Algorithm:        scalar.Name(),
		T:                horizon,
		Dim:              dim,
		Batch:            batch,
		ScalarNsPerPoint: float64(scalarElapsed.Nanoseconds()) / float64(horizon),
		BatchNsPerPoint:  float64(batchElapsed.Nanoseconds()) / float64(horizon),
		EstimateNs:       float64(estimateElapsed.Nanoseconds()),
		CheckpointNs:     float64(ckptElapsed.Nanoseconds()),
		CheckpointBytes:  len(ckpt),
	}, nil
}

// multiProbe measures the amortization of the multi-outcome engine: the same
// T covariates carry k responses each, ingested once through a single
// k-outcome estimator (one shared O(d²) Gram fold plus k O(d) vector folds
// per point) and once through k independent generic-erm estimators (k full
// O(d²) folds per point). Both sides ingest batched through their flat entry
// points, then solve all k estimates; costs are reported per point per
// outcome so the two are directly comparable and AmortizationX is their
// ratio.
func multiProbe(k, horizon, dim, batch int, epsilon, delta float64, seed int64) (*multiProbeResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("multi-outcome probe needs k >= 2 outcomes, got %d", k)
	}
	if batch < 1 {
		batch = 1
	}
	baseOpts := func(seed int64) []privreg.Option {
		return []privreg.Option{
			privreg.WithEpsilonDelta(epsilon, delta),
			privreg.WithHorizon(horizon),
			privreg.WithConstraint(privreg.L2Constraint(dim, 1)),
			privreg.WithSeed(seed),
		}
	}

	est, err := privreg.New("multi-outcome", append(baseOpts(seed), privreg.WithOutcomes(k))...)
	if err != nil {
		return nil, err
	}
	multi, ok := est.(privreg.MultiEstimator)
	if !ok {
		return nil, fmt.Errorf("multi-outcome estimator does not implement MultiEstimator")
	}
	indep := make([]privreg.FlatObserver, k)
	indepEst := make([]privreg.Estimator, k)
	for o := 0; o < k; o++ {
		e, err := privreg.New("generic-erm", baseOpts(seed+int64(o))...)
		if err != nil {
			return nil, err
		}
		fo, ok := e.(privreg.FlatObserver)
		if !ok {
			return nil, fmt.Errorf("generic-erm estimator does not implement FlatObserver")
		}
		indep[o], indepEst[o] = fo, e
	}

	// Deterministic workload, same covariate pattern as probe(); outcome o's
	// response reads a different coordinate so the k regressions differ.
	xs := make([]float64, horizon*dim)
	ys := make([]float64, horizon*k)
	for i := 0; i < horizon; i++ {
		row := xs[i*dim : (i+1)*dim]
		row[i%dim] = 0.8
		row[(i+1)%dim] = -0.4
		for o := 0; o < k; o++ {
			ys[i*k+o] = 0.5 * row[(i+o)%dim]
		}
	}
	cols := make([][]float64, k) // per-outcome response columns for the independents
	for o := 0; o < k; o++ {
		col := make([]float64, horizon)
		for i := 0; i < horizon; i++ {
			col[i] = ys[i*k+o]
		}
		cols[o] = col
	}

	start := time.Now()
	for lo := 0; lo < horizon; lo += batch {
		hi := lo + batch
		if hi > horizon {
			hi = horizon
		}
		if err := multi.ObserveMultiFlat(dim, xs[lo*dim:hi*dim], ys[lo*k:hi*k]); err != nil {
			return nil, err
		}
	}
	multiElapsed := time.Since(start)

	start = time.Now()
	for o := 0; o < k; o++ {
		for lo := 0; lo < horizon; lo += batch {
			hi := lo + batch
			if hi > horizon {
				hi = horizon
			}
			if err := indep[o].ObserveFlat(dim, xs[lo*dim:hi*dim], cols[o][lo:hi]); err != nil {
				return nil, err
			}
		}
	}
	indepElapsed := time.Since(start)

	estimateAll, err := timePhase(func() error {
		for o := 0; o < k; o++ {
			if _, err := multi.EstimateOutcome(o); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	indepEstimateAll, err := timePhase(func() error {
		for o := 0; o < k; o++ {
			if _, err := indepEst[o].Estimate(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	perOutcome := float64(multiElapsed.Nanoseconds()) / float64(horizon*k)
	indepPerOutcome := float64(indepElapsed.Nanoseconds()) / float64(horizon*k)
	return &multiProbeResult{
		K:                               k,
		T:                               horizon,
		Dim:                             dim,
		Batch:                           batch,
		NsPerPointPerOutcome:            perOutcome,
		IndependentNsPerPointPerOutcome: indepPerOutcome,
		AmortizationX:                   indepPerOutcome / perOutcome,
		EstimateAllNs:                   float64(estimateAll.Nanoseconds()),
		IndependentEstimateAllNs:        float64(indepEstimateAll.Nanoseconds()),
	}, nil
}

// runMultiCLI is the -multi CLI entry: run the amortization probe once and
// print it human-readably, or as a single JSON document with -json.
func runMultiCLI(k, horizon, dim, batch int, epsilon, delta float64, seed int64, asJSON bool) int {
	m, err := multiProbe(k, horizon, dim, batch, epsilon, delta, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("multi-outcome amortization: k=%d T=%d d=%d batch=%d (ε=%g, δ=%g)\n", m.K, m.T, m.Dim, m.Batch, epsilon, delta)
	fmt.Printf("  shared fold   : %8.0f ns/point/outcome (one estimator, k outcomes)\n", m.NsPerPointPerOutcome)
	fmt.Printf("  independent   : %8.0f ns/point/outcome (%d generic-erm estimators)\n", m.IndependentNsPerPointPerOutcome, m.K)
	fmt.Printf("  amortization  : %8.1fx\n", m.AmortizationX)
	fmt.Printf("  estimate all k: %10s shared, %10s independent\n",
		time.Duration(m.EstimateAllNs).Round(time.Microsecond), time.Duration(m.IndependentEstimateAllNs).Round(time.Microsecond))
	return 0
}
