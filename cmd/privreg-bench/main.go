// Command privreg-bench runs the reproduction experiments of the paper
// "Private Incremental Regression" (Kasiviswanathan, Nissim, Jin — PODS 2017)
// and prints the measured tables, scaling-exponent fits, and qualitative notes
// that EXPERIMENTS.md records.
//
// Usage:
//
//	privreg-bench -experiment all            # every experiment, full sweeps
//	privreg-bench -experiment E4 -trials 5   # one experiment, more repetitions
//	privreg-bench -list                      # list experiment IDs
//	privreg-bench -experiment all -quick     # reduced sweeps (seconds, not minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"privreg/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (E1..E10, A1..A4) or \"all\"")
		trials     = flag.Int("trials", 0, "independent repetitions per configuration (0 = default)")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta      = flag.Float64("delta", 1e-6, "privacy parameter δ")
		list       = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		return
	}

	opts := experiments.Options{
		Trials:  *trials,
		Seed:    *seed,
		Quick:   *quick,
		Epsilon: *epsilon,
		Delta:   *delta,
	}

	start := time.Now()
	if *experiment == "all" {
		results, err := experiments.All(opts)
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		r, err := experiments.Run(*experiment, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
