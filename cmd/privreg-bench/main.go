// Command privreg-bench runs the reproduction experiments of the paper
// "Private Incremental Regression" (Kasiviswanathan, Nissim, Jin — PODS 2017)
// and prints the measured tables, scaling-exponent fits, and qualitative notes
// that EXPERIMENTS.md records.
//
// Usage:
//
//	privreg-bench -experiment all            # every experiment, full sweeps
//	privreg-bench -experiment E4 -trials 5   # one experiment, more repetitions
//	privreg-bench -list                      # list experiment IDs
//	privreg-bench -experiment all -quick     # reduced sweeps (seconds, not minutes)
//	privreg-bench -experiment E6 -workers 1  # disable the sweep worker pool
//	privreg-bench -experiment all -json      # machine-readable results on stdout
//
// Besides the paper experiments, -mechanism runs a serving-shaped throughput
// probe of a single registry mechanism (see privreg.Mechanisms): it streams T
// points scalar and batched, measures ingestion and estimate latency, and
// reports the checkpoint size:
//
//	privreg-bench -mechanism projected -T 2000 -d 128 -batch 64
//
// The process exits non-zero whenever any experiment fails, so CI smoke runs
// gate on it. With -json, stdout carries exactly one JSON document (errors go
// to stderr) for downstream perf-trajectory tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"privreg"
	"privreg/internal/experiments"
)

// jsonResult is the machine-readable form of one experiment result.
type jsonResult struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Table  jsonTable          `json:"table"`
	Slopes map[string]float64 `json:"slopes,omitempty"`
	Notes  []string           `json:"notes,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Seed        int64        `json:"seed"`
	Trials      int          `json:"trials"`
	Quick       bool         `json:"quick"`
	Workers     int          `json:"workers"`
	Epsilon     float64      `json:"epsilon"`
	Delta       float64      `json:"delta"`
	WallSeconds float64      `json:"wall_seconds"`
	Results     []jsonResult `json:"results"`
	Error       string       `json:"error,omitempty"`
}

func toJSONResult(r *experiments.Result) jsonResult {
	out := jsonResult{ID: r.ID, Title: r.Title, Slopes: r.Slopes, Notes: r.Notes}
	if r.Table != nil {
		out.Table = jsonTable{Title: r.Table.Title, Columns: r.Table.Columns, Rows: r.Table.Rows}
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (E1..E10, A1..A5) or \"all\"")
		trials     = flag.Int("trials", 0, "independent repetitions per configuration (0 = default)")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta      = flag.Float64("delta", 1e-6, "privacy parameter δ")
		workers    = flag.Int("workers", 0, "worker pool size for sweeps (0 = GOMAXPROCS; results are identical for any value)")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON results on stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
		mechanism  = flag.String("mechanism", "", "run a throughput probe of one registry mechanism instead of the paper experiments (see privreg-demo -list)")
		horizon    = flag.Int("T", 1000, "throughput probe: stream length")
		dim        = flag.Int("d", 32, "throughput probe: covariate dimension")
		batch      = flag.Int("batch", 32, "throughput probe: batch size for the batched ingestion pass")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		return 0
	}

	if *mechanism != "" {
		return runThroughputProbe(*mechanism, *horizon, *dim, *batch, *epsilon, *delta, *seed)
	}

	opts := experiments.Options{
		Trials:  *trials,
		Seed:    *seed,
		Quick:   *quick,
		Epsilon: *epsilon,
		Delta:   *delta,
		Workers: *workers,
	}

	start := time.Now()
	var results []*experiments.Result
	var runErr error
	if *experiment == "all" {
		results, runErr = experiments.All(opts)
	} else {
		var r *experiments.Result
		r, runErr = experiments.Run(*experiment, opts)
		if r != nil {
			results = append(results, r)
		}
	}
	elapsed := time.Since(start)

	if *asJSON {
		report := jsonReport{
			Seed:        *seed,
			Trials:      *trials,
			Quick:       *quick,
			Workers:     *workers,
			Epsilon:     *epsilon,
			Delta:       *delta,
			WallSeconds: elapsed.Seconds(),
		}
		for _, r := range results {
			report.Results = append(report.Results, toJSONResult(r))
		}
		if runErr != nil {
			report.Error = runErr.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "error:", runErr)
			return 1
		}
		return 0
	}

	for _, r := range results {
		fmt.Println(r)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		return 1
	}
	fmt.Printf("total wall time: %s\n", elapsed.Round(time.Millisecond))
	return 0
}

// runThroughputProbe streams a synthetic workload through one mechanism
// resolved by registry name: a scalar Observe pass, a batched ObserveBatch
// pass, an estimate, and a checkpoint, reporting wall time per phase. It is
// the serving-shaped complement to the paper experiments.
func runThroughputProbe(name string, horizon, dim, batch int, epsilon, delta float64, seed int64) int {
	info, err := privreg.Describe(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		fmt.Fprintln(os.Stderr, "registered mechanisms:", strings.Join(privreg.Mechanisms(), ", "))
		return 2
	}
	if batch < 1 {
		batch = 1
	}
	build := func() (privreg.Estimator, error) {
		opts := []privreg.Option{
			privreg.WithEpsilonDelta(epsilon, delta),
			privreg.WithHorizon(horizon),
			privreg.WithConstraint(privreg.L2Constraint(dim, 1)),
			privreg.WithSeed(seed),
		}
		if info.NeedsDomain {
			opts = append(opts, privreg.WithDomain(privreg.UnitBallDomain(dim)))
		}
		if info.NeedsOracle {
			opts = append(opts, privreg.WithDomainOracle(func([]float64) bool { return true }))
		}
		return privreg.New(info.Name, opts...)
	}

	xs := make([][]float64, horizon)
	ys := make([]float64, horizon)
	for i := range xs {
		x := make([]float64, dim)
		x[i%dim] = 0.8
		x[(i+1)%dim] = -0.4
		xs[i] = x
		ys[i] = 0.5 * x[i%dim]
	}

	scalar, err := build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	start := time.Now()
	for i := 0; i < horizon; i++ {
		if err := scalar.Observe(xs[i], ys[i]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	}
	scalarElapsed := time.Since(start)

	batched, err := build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	start = time.Now()
	for lo := 0; lo < horizon; lo += batch {
		hi := lo + batch
		if hi > horizon {
			hi = horizon
		}
		if err := batched.ObserveBatch(xs[lo:hi], ys[lo:hi]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	}
	batchElapsed := time.Since(start)

	start = time.Now()
	if _, err := batched.Estimate(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	estimateElapsed := time.Since(start)

	start = time.Now()
	ckpt, err := batched.MarshalBinary()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	ckptElapsed := time.Since(start)

	perPoint := func(d time.Duration) time.Duration { return d / time.Duration(horizon) }
	fmt.Printf("mechanism %q (%s): T=%d d=%d (ε=%g, δ=%g)\n", info.Name, scalar.Name(), horizon, dim, epsilon, delta)
	fmt.Printf("  scalar ingest : %10s total, %8s/point\n", scalarElapsed.Round(time.Microsecond), perPoint(scalarElapsed))
	fmt.Printf("  batch ingest  : %10s total, %8s/point (batch=%d)\n", batchElapsed.Round(time.Microsecond), perPoint(batchElapsed), batch)
	fmt.Printf("  estimate      : %10s\n", estimateElapsed.Round(time.Microsecond))
	fmt.Printf("  checkpoint    : %10s, %d bytes\n", ckptElapsed.Round(time.Microsecond), len(ckpt))
	return 0
}
