// Command privreg-bench runs the reproduction experiments of the paper
// "Private Incremental Regression" (Kasiviswanathan, Nissim, Jin — PODS 2017)
// and prints the measured tables, scaling-exponent fits, and qualitative notes
// that EXPERIMENTS.md records.
//
// Usage:
//
//	privreg-bench -experiment all            # every experiment, full sweeps
//	privreg-bench -experiment E4 -trials 5   # one experiment, more repetitions
//	privreg-bench -list                      # list experiment IDs
//	privreg-bench -experiment all -quick     # reduced sweeps (seconds, not minutes)
//	privreg-bench -experiment E6 -workers 1  # disable the sweep worker pool
//	privreg-bench -experiment all -json      # machine-readable results on stdout
//
// The process exits non-zero whenever any experiment fails, so CI smoke runs
// gate on it. With -json, stdout carries exactly one JSON document (errors go
// to stderr) for downstream perf-trajectory tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"privreg/internal/experiments"
)

// jsonResult is the machine-readable form of one experiment result.
type jsonResult struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Table  jsonTable          `json:"table"`
	Slopes map[string]float64 `json:"slopes,omitempty"`
	Notes  []string           `json:"notes,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Seed        int64        `json:"seed"`
	Trials      int          `json:"trials"`
	Quick       bool         `json:"quick"`
	Workers     int          `json:"workers"`
	Epsilon     float64      `json:"epsilon"`
	Delta       float64      `json:"delta"`
	WallSeconds float64      `json:"wall_seconds"`
	Results     []jsonResult `json:"results"`
	Error       string       `json:"error,omitempty"`
}

func toJSONResult(r *experiments.Result) jsonResult {
	out := jsonResult{ID: r.ID, Title: r.Title, Slopes: r.Slopes, Notes: r.Notes}
	if r.Table != nil {
		out.Table = jsonTable{Title: r.Table.Title, Columns: r.Table.Columns, Rows: r.Table.Rows}
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (E1..E10, A1..A5) or \"all\"")
		trials     = flag.Int("trials", 0, "independent repetitions per configuration (0 = default)")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta      = flag.Float64("delta", 1e-6, "privacy parameter δ")
		workers    = flag.Int("workers", 0, "worker pool size for sweeps (0 = GOMAXPROCS; results are identical for any value)")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON results on stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		return 0
	}

	opts := experiments.Options{
		Trials:  *trials,
		Seed:    *seed,
		Quick:   *quick,
		Epsilon: *epsilon,
		Delta:   *delta,
		Workers: *workers,
	}

	start := time.Now()
	var results []*experiments.Result
	var runErr error
	if *experiment == "all" {
		results, runErr = experiments.All(opts)
	} else {
		var r *experiments.Result
		r, runErr = experiments.Run(*experiment, opts)
		if r != nil {
			results = append(results, r)
		}
	}
	elapsed := time.Since(start)

	if *asJSON {
		report := jsonReport{
			Seed:        *seed,
			Trials:      *trials,
			Quick:       *quick,
			Workers:     *workers,
			Epsilon:     *epsilon,
			Delta:       *delta,
			WallSeconds: elapsed.Seconds(),
		}
		for _, r := range results {
			report.Results = append(report.Results, toJSONResult(r))
		}
		if runErr != nil {
			report.Error = runErr.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "error:", runErr)
			return 1
		}
		return 0
	}

	for _, r := range results {
		fmt.Println(r)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		return 1
	}
	fmt.Printf("total wall time: %s\n", elapsed.Round(time.Millisecond))
	return 0
}
