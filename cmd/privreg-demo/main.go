// Command privreg-demo simulates the motivating scenario from the paper's
// introduction: a data scientist continuously updates the regression parameter
// of a linear model built on a stream of survey responses, while the sequence
// of published parameters is differentially private — no single respondent's
// participation can be inferred from the published updates.
//
// The demo streams synthetic survey data through the selected private
// mechanism (any name from the registry, see -mechanism) and the exact
// non-private solver, printing the estimated coefficients and the excess
// empirical risk at regular intervals.
//
// Usage:
//
//	privreg-demo -T 500 -d 8 -epsilon 1 -interval 50
//	privreg-demo -mechanism projected -d 64
//	privreg-demo -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"privreg"

	"privreg/internal/randx"
)

func main() {
	var (
		mechanism = flag.String("mechanism", "gradient", "private mechanism to run (see -list)")
		list      = flag.Bool("list", false, "list registered mechanisms and exit")
		horizon   = flag.Int("T", 500, "stream length")
		dim       = flag.Int("d", 8, "number of covariates (survey features)")
		epsilon   = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta     = flag.Float64("delta", 1e-6, "privacy parameter δ")
		interval  = flag.Int("interval", 50, "timesteps between published updates")
		seed      = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	if *list {
		printMechanisms(os.Stdout)
		return
	}

	cons := privreg.L2Constraint(*dim, 1.0)
	opts := []privreg.Option{
		privreg.WithEpsilonDelta(*epsilon, *delta),
		privreg.WithHorizon(*horizon),
		privreg.WithConstraint(cons),
		privreg.WithSeed(*seed),
		privreg.WithWarmStart(true),
	}
	// The width-driven mechanisms need a covariate domain; the demo's survey
	// answers live in the unit ball. The robust variant additionally screens
	// with an accept-all oracle (every synthetic respondent is in-domain).
	info, err := privreg.Describe(*mechanism)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		printMechanisms(os.Stderr)
		os.Exit(2)
	}
	if info.NeedsDomain {
		opts = append(opts, privreg.WithDomain(privreg.UnitBallDomain(*dim)))
	}
	if info.NeedsOracle {
		opts = append(opts, privreg.WithDomainOracle(func([]float64) bool { return true }))
	}

	private, err := privreg.New(*mechanism, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	exact, err := privreg.New("nonprivate",
		privreg.WithHorizon(*horizon),
		privreg.WithConstraint(cons),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Synthetic "survey": respondents answer d questions (covariate in the unit
	// ball) and report an outcome linearly related to the answers plus noise.
	src := randx.NewSource(*seed + 1)
	truth := src.UnitSphere(*dim)
	for i := range truth {
		truth[i] *= 0.7
	}

	var xs [][]float64
	var ys []float64
	fmt.Printf("streaming %d survey responses through %q (%s), d=%d, (ε=%g, δ=%g)\n",
		*horizon, info.Name, private.Name(), *dim, *epsilon, *delta)
	fmt.Printf("%6s  %14s  %14s  %12s\n", "t", "priv θ[0]", "exact θ[0]", "excess risk")
	for t := 1; t <= *horizon; t++ {
		x := src.UnitBall(*dim)
		y := 0.0
		for i := range x {
			y += x[i] * truth[i]
		}
		y += src.Normal(0, 0.05)
		xs = append(xs, x)
		ys = append(ys, y)

		if err := private.Observe(x, y); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := exact.Observe(x, y); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if t%*interval == 0 || t == *horizon {
			thetaPriv, err := private.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			thetaExact, err := exact.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			excess, err := privreg.ExcessRisk(cons, xs, ys, thetaPriv)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("%6d  %14.5f  %14.5f  %12.4f\n", t, thetaPriv[0], thetaExact[0], excess)
		}
	}
	fmt.Println("done: every printed row was derived from differentially private state only")
}

func printMechanisms(w *os.File) {
	fmt.Fprintln(w, "registered mechanisms:")
	for _, name := range privreg.Mechanisms() {
		info, err := privreg.Describe(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-17s %s (aliases: %s)\n", info.Name, info.Summary, strings.Join(info.Aliases, ", "))
	}
}
