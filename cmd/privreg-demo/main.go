// Command privreg-demo simulates the motivating scenario from the paper's
// introduction: a data scientist continuously updates the regression parameter
// of a linear model built on a stream of survey responses, while the sequence
// of published parameters is differentially private — no single respondent's
// participation can be inferred from the published updates.
//
// The demo streams synthetic survey data through both the private incremental
// regression mechanism (Algorithm PRIVINCREG1) and the exact non-private
// solver, printing the estimated coefficients and the excess empirical risk at
// regular intervals.
//
// Usage:
//
//	privreg-demo -T 500 -d 8 -epsilon 1 -interval 50
package main

import (
	"flag"
	"fmt"
	"os"

	"privreg"

	"privreg/internal/randx"
)

func main() {
	var (
		horizon  = flag.Int("T", 500, "stream length")
		dim      = flag.Int("d", 8, "number of covariates (survey features)")
		epsilon  = flag.Float64("epsilon", 1.0, "privacy parameter ε")
		delta    = flag.Float64("delta", 1e-6, "privacy parameter δ")
		interval = flag.Int("interval", 50, "timesteps between published updates")
		seed     = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	cons := privreg.L2Constraint(*dim, 1.0)
	private, err := privreg.NewGradientRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: *epsilon, Delta: *delta},
		Horizon:    *horizon,
		Constraint: cons,
		Seed:       *seed,
		WarmStart:  true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	exact, err := privreg.NewNonPrivateBaseline(privreg.Config{
		Horizon:    *horizon,
		Constraint: cons,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Synthetic "survey": respondents answer d questions (covariate in the unit
	// ball) and report an outcome linearly related to the answers plus noise.
	src := randx.NewSource(*seed + 1)
	truth := src.UnitSphere(*dim)
	for i := range truth {
		truth[i] *= 0.7
	}

	var xs [][]float64
	var ys []float64
	fmt.Printf("streaming %d survey responses, d=%d, (ε=%g, δ=%g)\n", *horizon, *dim, *epsilon, *delta)
	fmt.Printf("%6s  %14s  %14s  %12s\n", "t", "priv θ[0]", "exact θ[0]", "excess risk")
	for t := 1; t <= *horizon; t++ {
		x := src.UnitBall(*dim)
		y := 0.0
		for i := range x {
			y += x[i] * truth[i]
		}
		y += src.Normal(0, 0.05)
		xs = append(xs, x)
		ys = append(ys, y)

		if err := private.Observe(x, y); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := exact.Observe(x, y); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if t%*interval == 0 || t == *horizon {
			thetaPriv, err := private.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			thetaExact, err := exact.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			excess, err := privreg.ExcessRisk(cons, xs, ys, thetaPriv)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("%6d  %14.5f  %14.5f  %12.4f\n", t, thetaPriv[0], thetaExact[0], excess)
		}
	}
	fmt.Println("done: every printed row was derived from differentially private state only")
}
