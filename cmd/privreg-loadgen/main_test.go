package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privreg/internal/retry"
	"privreg/internal/wire"
)

// fixJitter pins the shared retry policy's jitter factor (0.5 → exactly
// 1.0× the base delay) and replaces its sleep with a recorder, restoring
// both when the test ends. The returned slice pointer accumulates every
// delay the retry loops asked for. The delay schedule itself is tested in
// internal/retry; these tests pin that the loadgen's send loops actually
// route their verdicts through it.
func fixJitter(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	oldJitter, oldSleep := retry.Jitter, retry.Sleep
	retry.Jitter = func() float64 { return 0.5 }
	retry.Sleep = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { retry.Jitter, retry.Sleep = oldJitter, oldSleep })
	return &slept
}

// TestSendBatchHonorsRetryAfterHTTP drives the HTTP retry loop through a 429
// and a 503, each carrying a Retry-After header, and checks the loop slept
// for exactly the hinted durations (jitter pinned to 1.0×) before the
// eventual success.
func TestSendBatchHonorsRetryAfterHTTP(t *testing.T) {
	slept := fixJitter(t)

	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		switch calls {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()

	n, retries, err := sendBatch(ts.Client(), ts.URL, "s", 4, 1, 0, 8)
	if err != nil {
		t.Fatalf("sendBatch: %v", err)
	}
	if n != 8 || retries != 2 {
		t.Fatalf("sendBatch = (%d points, %d retries), want (8, 2)", n, retries)
	}
	want := []time.Duration{2 * time.Second, 3 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v (the server's Retry-After hints)", *slept, want)
	}
}

// fakeWireServer speaks just enough of the binary protocol for the client:
// it completes the handshake, then answers each observe frame with the next
// scripted nack until the script runs out, after which everything is acked.
func fakeWireServer(t *testing.T, nacks []wire.Nack) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := wire.NewReader(conn)
		ft, _, err := r.Next()
		if err != nil || ft != wire.FrameHello {
			return
		}
		var b wire.Builder
		wire.AppendHelloAck(&b, wire.HelloAck{
			Version: wire.Version, Dim: 4, Horizon: 1024,
			Mechanism: "gradient", Server: "test",
		})
		if _, err := conn.Write(b.Bytes()); err != nil {
			return
		}
		rejected := 0
		for {
			ft, payload, err := r.Next()
			if err != nil || ft != wire.FrameObserve {
				return
			}
			p := wire.NewPayload(payload)
			reqID := p.U64() // observe payloads lead with the request ID
			b.Reset()
			if rejected < len(nacks) {
				nk := nacks[rejected]
				nk.ReqID = reqID
				wire.AppendNack(&b, nk)
				rejected++
			} else {
				wire.AppendAck(&b, wire.Ack{ReqID: reqID, Applied: 8, Len: 8})
			}
			if _, err := conn.Write(b.Bytes()); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestSendBatchWireHonorsRetryAfter is the binary-path twin of the HTTP
// test: retryable nacks (queue-full, then not-owner) carry RetryAfter hints
// and the retry loop must sleep for exactly those durations — the same
// jittered backoff as the HTTP path.
func TestSendBatchWireHonorsRetryAfter(t *testing.T) {
	slept := fixJitter(t)

	addr := fakeWireServer(t, []wire.Nack{
		{Code: wire.NackQueueFull, RetryAfter: 2, Msg: "queue full"},
		{Code: wire.NackNotOwner, RetryAfter: 1, Msg: "rebalancing"},
	})
	wc, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer wc.Close()

	n, retries, err := sendBatchWire(wc, "s", 4, 1, 0, 8)
	if err != nil {
		t.Fatalf("sendBatchWire: %v", err)
	}
	if n != 8 || retries != 2 {
		t.Fatalf("sendBatchWire = (%d points, %d retries), want (8, 2)", n, retries)
	}
	want := []time.Duration{2 * time.Second, 1 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v (the nacks' RetryAfter hints)", *slept, want)
	}
}

// TestSendBatchWireFatalNack pins the other half of the contract: a
// non-retryable nack surfaces immediately as an error, with no sleeping.
func TestSendBatchWireFatalNack(t *testing.T) {
	slept := fixJitter(t)

	addr := fakeWireServer(t, []wire.Nack{
		{Code: wire.NackStreamFull, Msg: "horizon exhausted"},
	})
	wc, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer wc.Close()

	if _, _, err := sendBatchWire(wc, "s", 4, 1, 0, 8); err == nil {
		t.Fatal("sendBatchWire succeeded, want stream-full error")
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v before a fatal nack, want no sleeps", *slept)
	}
}
