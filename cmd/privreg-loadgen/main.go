// Command privreg-loadgen drives a running privreg-server with deterministic
// synthetic traffic — N streams × M points, batched, optionally rate-limited
// — and then verifies the server end to end: every stream's estimate fetched
// over HTTP must be bit-identical to an in-process privreg.Pool fed exactly
// the same points.
//
// The shadow pool is built from the server's own GET /v1/config response, and
// the data for point j of stream s is a pure function of (s, j), so the
// comparison is exact: any divergence — a dropped point, a reordered batch, a
// float mangled by the JSON boundary, a checkpoint/restore glitch — fails the
// run with a non-zero exit.
//
// Usage:
//
//	privreg-loadgen -addr http://127.0.0.1:8080 -streams 8 -points 64 -batch 8
//
// With -proto binary (plus -wire-addr host:port) ingest and verification ride
// the compact binary wire protocol instead of HTTP/JSON — same deterministic
// data, same shadow-pool bit-identity check, several times the throughput:
//
//	privreg-loadgen -addr $URL -wire-addr 127.0.0.1:8081 -proto binary \
//	    -streams 8 -points 64 -batch 8
//
// Kill/restart verification: run a first phase, SIGTERM the server, restart
// it (it restores from its checkpoint), then run a second phase with -from set
// to the first phase's point count. The shadow pool locally replays points
// [0, from) before the phase, so the final comparison covers the server's
// whole life across the restart:
//
//	privreg-loadgen -addr $URL -streams 8 -points 24            # phase 1
//	# SIGTERM + restart privreg-server
//	privreg-loadgen -addr $URL -streams 8 -points 16 -from 24   # phase 2
//
// Churn mode: with -skew s > 0 the per-stream point counts follow a Zipf-like
// profile — stream i receives round(points / (i+1)^s) points (min 1) — so a
// few streams are hot and the long tail is cold. Combined with -streams far
// above the server's -store-cap this drives the spill store's worst case:
// constant eviction and fault-in under concurrent traffic. The skewed targets
// are a pure function of (i, points, skew), so the shadow-pool verification
// and -from restart phases work exactly as in the uniform case.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"privreg/internal/server"
	"privreg/internal/wire"
)

// streamTarget is the cumulative number of points stream i has received once
// `points` points have been offered per hot stream: the full count for
// stream 0, decaying as 1/(i+1)^skew down the tail (min 1). Monotone in
// points, so phase boundaries (-from) slice it consistently.
func streamTarget(i, points int, skew float64) int {
	if points <= 0 {
		return 0
	}
	if skew <= 0 {
		return points
	}
	t := int(math.Round(float64(points) / math.Pow(float64(i+1), skew)))
	if t < 1 {
		t = 1
	}
	if t > points {
		t = points
	}
	return t
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "base URL of the privreg-server")
		streams = flag.Int("streams", 8, "number of concurrent streams")
		points  = flag.Int("points", 64, "points to send per stream this phase")
		from    = flag.Int("from", 0, "index of the first point to send (later phases of a restart test)")
		batch   = flag.Int("batch", 8, "points per observe request")
		rate    = flag.Float64("rate", 0, "target ingest rate in points/sec per stream (0 = unlimited)")
		verify  = flag.Bool("verify", true, "verify server estimates bit-identically against an in-process shadow pool")
		prefix  = flag.String("stream-prefix", "load", "stream ID prefix")
		skew    = flag.Float64("skew", 0, "churn mode: Zipf-like exponent for per-stream point counts (stream i gets ~points/(i+1)^skew; 0 = uniform)")
		proto   = flag.String("proto", "json", `ingest transport: "json" (HTTP) or "binary" (the wire protocol; requires -wire-addr)`)
		wireTgt = flag.String("wire-addr", "", "host:port of the server's binary wire listener (used with -proto binary)")
	)
	flag.Parse()
	if *streams < 1 || *points < 1 || *batch < 1 || *from < 0 {
		fmt.Fprintln(os.Stderr, "error: -streams, -points, -batch must be positive and -from non-negative")
		return 2
	}
	if *skew < 0 {
		fmt.Fprintln(os.Stderr, "error: -skew must be non-negative")
		return 2
	}
	switch *proto {
	case "json", "binary":
	default:
		fmt.Fprintf(os.Stderr, "error: -proto must be json or binary, got %q\n", *proto)
		return 2
	}
	if *proto == "binary" && *wireTgt == "" {
		fmt.Fprintln(os.Stderr, "error: -proto binary requires -wire-addr")
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// The server's config is the shadow pool's recipe.
	spec, err := fetchSpec(client, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	fmt.Printf("server pool: mechanism=%s d=%d T=%d (ε=%g, δ=%g, seed=%d)\n",
		spec.Mechanism, spec.Dim, spec.Horizon, spec.Epsilon, spec.Delta, spec.Seed)

	// In binary mode all traffic — ingest and the verification estimates —
	// rides one multiplexed wire connection shared by every stream goroutine.
	// The handshake's pool shape must agree with /v1/config (same server, or
	// somebody pointed the two flags at different deployments).
	var wc *wire.Client
	if *proto == "binary" {
		wc, err = wire.Dial(*wireTgt, 10*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error: dialing wire listener:", err)
			return 1
		}
		defer wc.Close()
		if wc.Dim != spec.Dim || wc.Horizon != spec.Horizon || wc.Mechanism != spec.Mechanism {
			fmt.Fprintf(os.Stderr, "error: wire handshake (mechanism=%s d=%d T=%d) disagrees with /v1/config (mechanism=%s d=%d T=%d); -wire-addr points at a different pool\n",
				wc.Mechanism, wc.Dim, wc.Horizon, spec.Mechanism, spec.Dim, spec.Horizon)
			return 2
		}
	}
	to := *from + *points
	if to > spec.Horizon {
		fmt.Fprintf(os.Stderr, "error: from+points = %d exceeds the server's per-stream horizon %d\n", to, spec.Horizon)
		return 2
	}

	ids := make([]string, *streams)
	froms := make([]int, *streams)
	tos := make([]int, *streams)
	totalPlanned := 0
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%03d", *prefix, i)
		// Cumulative skewed targets: this phase sends the slice between the
		// profile at -from and the profile at -from+points.
		froms[i] = streamTarget(i, *from, *skew)
		tos[i] = streamTarget(i, to, *skew)
		totalPlanned += tos[i] - froms[i]
	}
	if *skew > 0 {
		fmt.Printf("churn: skew=%g, per-stream targets %d (hot) .. %d (cold), %d points total this phase\n",
			*skew, tos[0]-froms[0], tos[len(tos)-1]-froms[len(tos)-1], totalPlanned)
	}

	// Drive the server: one goroutine per stream, batched, paced to -rate.
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sent int
	var retries429 int
	errc := make(chan error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(id string, from, to int) {
			defer wg.Done()
			var interval time.Duration
			if *rate > 0 {
				interval = time.Duration(float64(*batch) / *rate * float64(time.Second))
			}
			next := time.Now()
			for lo := from; lo < to; lo += *batch {
				hi := lo + *batch
				if hi > to {
					hi = to
				}
				if interval > 0 {
					time.Sleep(time.Until(next))
					next = next.Add(interval)
				}
				var (
					n, retr int
					err     error
				)
				if wc != nil {
					n, retr, err = sendBatchWire(wc, id, spec.Dim, lo, hi)
				} else {
					n, retr, err = sendBatch(client, *addr, id, spec.Dim, lo, hi)
				}
				if err != nil {
					errc <- fmt.Errorf("stream %s batch [%d,%d): %w", id, lo, hi, err)
					return
				}
				mu.Lock()
				sent += n
				retries429 += retr
				mu.Unlock()
			}
		}(id, froms[i], tos[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Printf("sent %d points over %d streams in %s via %s (%.0f points/sec, %d backpressure retries)\n",
		sent, len(ids), elapsed.Round(time.Millisecond), *proto, float64(sent)/elapsed.Seconds(), retries429)

	if !*verify {
		return 0
	}

	// Build the shadow pool and replay the server's entire point history
	// [0, tos[i]) per stream — including any earlier phases this process
	// never sent.
	shadow, err := spec.NewPool()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error: building shadow pool:", err)
		return 1
	}
	for i, id := range ids {
		for j := 0; j < tos[i]; j++ {
			x, y := server.SyntheticPoint(id, j, spec.Dim)
			if err := shadow.Observe(id, x, y); err != nil {
				fmt.Fprintf(os.Stderr, "error: shadow %s point %d: %v\n", id, j, err)
				return 1
			}
		}
	}

	mismatches := 0
	for i, id := range ids {
		var (
			est []float64
			n   int
		)
		// Estimates ride the same transport as ingest, so a binary run
		// verifies the wire protocol's estimate path too.
		if wc != nil {
			est, n, err = wc.Estimate(id)
		} else {
			est, n, err = fetchEstimate(client, *addr, id)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if n != tos[i] {
			fmt.Fprintf(os.Stderr, "MISMATCH %s: server len=%d, want %d\n", id, n, tos[i])
			mismatches++
			continue
		}
		want, err := shadow.Estimate(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if !equalVectors(est, want) {
			fmt.Fprintf(os.Stderr, "MISMATCH %s: server estimate is not bit-identical to the shadow pool\n  server %v\n  shadow %v\n", id, est, want)
			mismatches++
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d/%d streams diverged\n", mismatches, len(ids))
		return 1
	}
	fmt.Printf("verified: %d streams bit-identical to the in-process shadow pool at t=%d (hot-stream length)\n", len(ids), tos[0])
	return 0
}

func fetchSpec(client *http.Client, addr string) (server.Spec, error) {
	var spec server.Spec
	resp, err := client.Get(addr + "/v1/config")
	if err != nil {
		return spec, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return spec, fmt.Errorf("GET /v1/config: %s: %s", resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return spec, fmt.Errorf("decoding /v1/config: %w", err)
	}
	return spec, nil
}

// sendBatch posts points [lo, hi) of the stream, retrying on 429 backpressure
// with linear backoff. Returns the number of points applied and the number of
// 429 retries performed.
func sendBatch(client *http.Client, addr, id string, dim, lo, hi int) (int, int, error) {
	xs := make([][]float64, 0, hi-lo)
	ys := make([]float64, 0, hi-lo)
	for j := lo; j < hi; j++ {
		x, y := server.SyntheticPoint(id, j, dim)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	body, err := json.Marshal(map[string]any{"xs": xs, "ys": ys})
	if err != nil {
		return 0, 0, err
	}
	url := fmt.Sprintf("%s/v1/streams/%s/observe", addr, id)
	retries := 0
	for {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, retries, err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return hi - lo, retries, nil
		case http.StatusTooManyRequests:
			retries++
			if retries > 200 {
				return 0, retries, fmt.Errorf("still overloaded after %d retries: %s", retries, respBody)
			}
			time.Sleep(time.Duration(10+10*min(retries, 10)) * time.Millisecond)
		default:
			return 0, retries, fmt.Errorf("%s: %s", resp.Status, respBody)
		}
	}
}

// sendBatchWire sends points [lo, hi) of the stream as one binary observe
// frame, retrying on queue-full nacks with the same linear backoff as the
// HTTP path. Returns the number of points applied and the number of
// backpressure retries performed.
func sendBatchWire(wc *wire.Client, id string, dim, lo, hi int) (int, int, error) {
	xs := make([]float64, 0, (hi-lo)*dim)
	ys := make([]float64, 0, hi-lo)
	for j := lo; j < hi; j++ {
		x, y := server.SyntheticPoint(id, j, dim)
		xs = append(xs, x...)
		ys = append(ys, y)
	}
	retries := 0
	for {
		applied, _, err := wc.Observe(id, xs, ys)
		if err == nil {
			return applied, retries, nil
		}
		var ne *wire.NackError
		if !errors.As(err, &ne) || !ne.Retryable() {
			return 0, retries, err
		}
		retries++
		if retries > 200 {
			return 0, retries, fmt.Errorf("still overloaded after %d retries: %s", retries, ne.Msg)
		}
		time.Sleep(time.Duration(10+10*min(retries, 10)) * time.Millisecond)
	}
}

func fetchEstimate(client *http.Client, addr, id string) ([]float64, int, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/streams/%s/estimate", addr, id))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, 0, fmt.Errorf("estimate %s: %s: %s", id, resp.Status, body)
	}
	var out struct {
		Estimate []float64 `json:"estimate"`
		Len      int       `json:"len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, fmt.Errorf("decoding estimate %s: %w", id, err)
	}
	return out.Estimate, out.Len, nil
}

func equalVectors(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
