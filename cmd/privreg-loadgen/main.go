// Command privreg-loadgen drives a running privreg-server with deterministic
// synthetic traffic — N streams × M points, batched, optionally rate-limited
// — and then verifies the server end to end: every stream's estimate fetched
// over HTTP must be bit-identical to an in-process privreg.Pool fed exactly
// the same points.
//
// The shadow pool is built from the server's own GET /v1/config response, and
// the data for point j of stream s is a pure function of (s, j), so the
// comparison is exact: any divergence — a dropped point, a reordered batch, a
// float mangled by the JSON boundary, a checkpoint/restore glitch — fails the
// run with a non-zero exit.
//
// Usage:
//
//	privreg-loadgen -addr http://127.0.0.1:8080 -streams 8 -points 64 -batch 8
//
// With -proto binary (plus -wire-addr host:port) ingest and verification ride
// the compact binary wire protocol instead of HTTP/JSON — same deterministic
// data, same shadow-pool bit-identity check, several times the throughput:
//
//	privreg-loadgen -addr $URL -wire-addr 127.0.0.1:8081 -proto binary \
//	    -streams 8 -points 64 -batch 8
//
// Kill/restart verification: run a first phase, SIGTERM the server, restart
// it (it restores from its checkpoint), then run a second phase with -from set
// to the first phase's point count. The shadow pool locally replays points
// [0, from) before the phase, so the final comparison covers the server's
// whole life across the restart:
//
//	privreg-loadgen -addr $URL -streams 8 -points 24            # phase 1
//	# SIGTERM + restart privreg-server
//	privreg-loadgen -addr $URL -streams 8 -points 16 -from 24   # phase 2
//
// Churn mode: with -skew s > 0 the per-stream point counts follow a Zipf-like
// profile — stream i receives round(points / (i+1)^s) points (min 1) — so a
// few streams are hot and the long tail is cold. Combined with -streams far
// above the server's -store-cap this drives the spill store's worst case:
// constant eviction and fault-in under concurrent traffic. The skewed targets
// are a pure function of (i, points, skew), so the shadow-pool verification
// and -from restart phases work exactly as in the uniform case.
//
// Cluster mode: with -cluster the generator fetches the consistent-hash ring
// from GET /v1/ring on -addr and routes each stream's traffic client-side to
// its owner node — no forwarding hop — over whichever transport -proto
// selects (wire addresses come from the ring, so -wire-addr is not needed).
// Without -cluster any single member works as the entry point; the server
// forwards misrouted requests itself.
//
// Retryable rejections — HTTP 429/503 and wire queue-full / not-owner /
// importing nacks — back off honoring the server's Retry-After hint (header
// or nack field) when present, falling back to capped exponential delay,
// jittered either way so synchronized clients desynchronize. Rebalance seals
// during a node join or leave therefore cost retries, never failures.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"privreg/internal/cluster"
	"privreg/internal/retry"
	"privreg/internal/server"
	"privreg/internal/wire"
)

// Retry policy comes from internal/retry, shared with the server's
// forwarding proxy and the bench probes so every privreg client backs off
// identically. maxSendRetries bounds how long one batch may stay rejected
// before the run fails.
const maxSendRetries = 200

// streamTarget is the cumulative number of points stream i has received once
// `points` points have been offered per hot stream: the full count for
// stream 0, decaying as 1/(i+1)^skew down the tail (min 1). Monotone in
// points, so phase boundaries (-from) slice it consistently.
func streamTarget(i, points int, skew float64) int {
	if points <= 0 {
		return 0
	}
	if skew <= 0 {
		return points
	}
	t := int(math.Round(float64(points) / math.Pow(float64(i+1), skew)))
	if t < 1 {
		t = 1
	}
	if t > points {
		t = points
	}
	return t
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the privreg-server")
		streams  = flag.Int("streams", 8, "number of concurrent streams")
		points   = flag.Int("points", 64, "points to send per stream this phase")
		from     = flag.Int("from", 0, "index of the first point to send (later phases of a restart test)")
		batch    = flag.Int("batch", 8, "points per observe request")
		rate     = flag.Float64("rate", 0, "target ingest rate in points/sec per stream (0 = unlimited)")
		verify   = flag.Bool("verify", true, "verify server estimates bit-identically against an in-process shadow pool")
		prefix   = flag.String("stream-prefix", "load", "stream ID prefix")
		skew     = flag.Float64("skew", 0, "churn mode: Zipf-like exponent for per-stream point counts (stream i gets ~points/(i+1)^skew; 0 = uniform)")
		proto    = flag.String("proto", "json", `ingest transport: "json" (HTTP) or "binary" (the wire protocol; requires -wire-addr unless -cluster)`)
		wireTgt  = flag.String("wire-addr", "", "host:port of the server's binary wire listener (used with -proto binary)")
		useRing  = flag.Bool("cluster", false, "ring-aware mode: fetch the ring from -addr and route each stream client-side to its owner node")
		outcomes = flag.Int("outcomes", 0, "expected outcome-column count k of a multi-outcome pool; 0 takes k from the server's config, any other value must agree with it")
	)
	flag.Parse()
	if *streams < 1 || *points < 1 || *batch < 1 || *from < 0 {
		fmt.Fprintln(os.Stderr, "error: -streams, -points, -batch must be positive and -from non-negative")
		return 2
	}
	if *skew < 0 {
		fmt.Fprintln(os.Stderr, "error: -skew must be non-negative")
		return 2
	}
	switch *proto {
	case "json", "binary":
	default:
		fmt.Fprintf(os.Stderr, "error: -proto must be json or binary, got %q\n", *proto)
		return 2
	}
	if *proto == "binary" && *wireTgt == "" && !*useRing {
		fmt.Fprintln(os.Stderr, "error: -proto binary requires -wire-addr (or -cluster, which takes wire addresses from the ring)")
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// The server's config is the shadow pool's recipe.
	spec, err := fetchSpec(client, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	k := spec.Outcomes
	if k < 1 {
		k = 1
	}
	if *outcomes > 0 && *outcomes != k {
		fmt.Fprintf(os.Stderr, "error: -outcomes %d disagrees with the server's config (pool serves %d outcomes)\n", *outcomes, k)
		return 2
	}
	fmt.Printf("server pool: mechanism=%s d=%d k=%d T=%d (ε=%g, δ=%g, seed=%d)\n",
		spec.Mechanism, spec.Dim, k, spec.Horizon, spec.Epsilon, spec.Delta, spec.Seed)

	// Transports. One target by default; in -cluster mode one per ring
	// member, with each stream routed to its owner. In binary mode all of a
	// target's traffic — ingest and the verification estimates — rides one
	// multiplexed wire connection shared by every stream goroutine.
	dial := func(base, wireAddr string) (*target, error) {
		t := &target{base: base}
		if *proto != "binary" {
			return t, nil
		}
		wc, err := wire.Dial(wireAddr, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("dialing wire listener %s: %w", wireAddr, err)
		}
		// The handshake's pool shape must agree with /v1/config (same
		// deployment, or the flags point at two different ones).
		if wc.Dim != spec.Dim || wc.Horizon != spec.Horizon || wc.Mechanism != spec.Mechanism || wc.Outcomes != k {
			wc.Close()
			return nil, fmt.Errorf("wire handshake at %s (mechanism=%s d=%d k=%d T=%d) disagrees with /v1/config (mechanism=%s d=%d k=%d T=%d)",
				wireAddr, wc.Mechanism, wc.Dim, wc.Outcomes, wc.Horizon, spec.Mechanism, spec.Dim, k, spec.Horizon)
		}
		t.wc = wc
		return t, nil
	}
	var targetFor func(id string) *target
	if *useRing {
		ring, err := fetchRing(client, *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		byNode := make(map[string]*target, ring.Len())
		for _, n := range ring.Nodes() {
			t, err := dial("http://"+n.Addr, n.WireAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: ring member %s: %v\n", n.ID, err)
				return 1
			}
			if t.wc != nil {
				defer t.wc.Close()
			}
			byNode[n.ID] = t
		}
		targetFor = func(id string) *target { return byNode[ring.Owner(id).ID] }
		fmt.Printf("cluster: ring v%d, %d members; routing streams client-side to their owners\n",
			ring.Version(), ring.Len())
	} else {
		t, err := dial(*addr, *wireTgt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if t.wc != nil {
			defer t.wc.Close()
		}
		targetFor = func(string) *target { return t }
	}
	to := *from + *points
	if to > spec.Horizon {
		fmt.Fprintf(os.Stderr, "error: from+points = %d exceeds the server's per-stream horizon %d\n", to, spec.Horizon)
		return 2
	}

	ids := make([]string, *streams)
	froms := make([]int, *streams)
	tos := make([]int, *streams)
	totalPlanned := 0
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%03d", *prefix, i)
		// Cumulative skewed targets: this phase sends the slice between the
		// profile at -from and the profile at -from+points.
		froms[i] = streamTarget(i, *from, *skew)
		tos[i] = streamTarget(i, to, *skew)
		totalPlanned += tos[i] - froms[i]
	}
	if *skew > 0 {
		fmt.Printf("churn: skew=%g, per-stream targets %d (hot) .. %d (cold), %d points total this phase\n",
			*skew, tos[0]-froms[0], tos[len(tos)-1]-froms[len(tos)-1], totalPlanned)
	}

	// Drive the server: one goroutine per stream, batched, paced to -rate.
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sent int
	var retries429 int
	errc := make(chan error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(id string, from, to int) {
			defer wg.Done()
			tgt := targetFor(id)
			var interval time.Duration
			if *rate > 0 {
				interval = time.Duration(float64(*batch) / *rate * float64(time.Second))
			}
			next := time.Now()
			for lo := from; lo < to; lo += *batch {
				hi := lo + *batch
				if hi > to {
					hi = to
				}
				if interval > 0 {
					time.Sleep(time.Until(next))
					next = next.Add(interval)
				}
				var (
					n, retr int
					err     error
				)
				if tgt.wc != nil {
					n, retr, err = sendBatchWire(tgt.wc, id, spec.Dim, k, lo, hi)
				} else {
					n, retr, err = sendBatch(client, tgt.base, id, spec.Dim, k, lo, hi)
				}
				if err != nil {
					errc <- fmt.Errorf("stream %s batch [%d,%d): %w", id, lo, hi, err)
					return
				}
				mu.Lock()
				sent += n
				retries429 += retr
				mu.Unlock()
			}
		}(id, froms[i], tos[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Printf("sent %d points over %d streams in %s via %s (%.0f points/sec, %d backpressure retries)\n",
		sent, len(ids), elapsed.Round(time.Millisecond), *proto, float64(sent)/elapsed.Seconds(), retries429)

	if !*verify {
		return 0
	}

	// Build the shadow pool and replay the server's entire point history
	// [0, tos[i]) per stream — including any earlier phases this process
	// never sent.
	shadow, err := spec.NewPool()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error: building shadow pool:", err)
		return 1
	}
	for i, id := range ids {
		for j := 0; j < tos[i]; j++ {
			if k > 1 {
				x, ys := server.SyntheticPointMulti(id, j, spec.Dim, k)
				if err := shadow.ObserveMultiFlat(id, spec.Dim, x, ys); err != nil {
					fmt.Fprintf(os.Stderr, "error: shadow %s point %d: %v\n", id, j, err)
					return 1
				}
				continue
			}
			x, y := server.SyntheticPoint(id, j, spec.Dim)
			if err := shadow.Observe(id, x, y); err != nil {
				fmt.Fprintf(os.Stderr, "error: shadow %s point %d: %v\n", id, j, err)
				return 1
			}
		}
	}

	mismatches := 0
	for i, id := range ids {
		// Estimates ride the same transport (and, in cluster mode, the same
		// owner node) as ingest, so a binary run verifies the wire protocol's
		// estimate path too. On a multi-outcome pool every outcome index is
		// fetched and compared independently — the whole point of the shared
		// fold is that all k regressions stay exact simultaneously.
		tgt := targetFor(id)
		for o := 0; o < k; o++ {
			var (
				est []float64
				n   int
			)
			if tgt.wc != nil {
				est, n, err = fetchEstimateWire(tgt.wc, id, o)
			} else {
				est, n, err = fetchEstimate(client, tgt.base, id, o)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			if n != tos[i] {
				fmt.Fprintf(os.Stderr, "MISMATCH %s outcome %d: server len=%d, want %d\n", id, o, n, tos[i])
				mismatches++
				continue
			}
			want, err := shadow.EstimateOutcome(id, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			if !equalVectors(est, want) {
				fmt.Fprintf(os.Stderr, "MISMATCH %s outcome %d: server estimate is not bit-identical to the shadow pool\n  server %v\n  shadow %v\n", id, o, est, want)
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d/%d streams×outcomes diverged\n", mismatches, len(ids)*k)
		return 1
	}
	fmt.Printf("verified: %d streams × %d outcomes bit-identical to the in-process shadow pool at t=%d (hot-stream length)\n", len(ids), k, tos[0])
	return 0
}

// target is one node's pair of transports: an HTTP base URL plus, in binary
// mode, a multiplexed wire connection.
type target struct {
	base string
	wc   *wire.Client
}

// fetchRing pulls and rebuilds the cluster's consistent-hash ring from a
// member's GET /v1/ring.
func fetchRing(client *http.Client, addr string) (*cluster.Ring, error) {
	resp, err := client.Get(addr + "/v1/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/ring: %s: %s (is the server clustered?)", resp.Status, body)
	}
	ring := new(cluster.Ring)
	if err := json.Unmarshal(body, ring); err != nil {
		return nil, fmt.Errorf("decoding ring: %w", err)
	}
	return ring, nil
}

func fetchSpec(client *http.Client, addr string) (server.Spec, error) {
	var spec server.Spec
	resp, err := client.Get(addr + "/v1/config")
	if err != nil {
		return spec, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return spec, fmt.Errorf("GET /v1/config: %s: %s", resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return spec, fmt.Errorf("decoding /v1/config: %w", err)
	}
	return spec, nil
}

// sendBatch posts points [lo, hi) of the stream, retrying 429 (backpressure)
// and 503 (rebalance seal / import / drain) with jittered backoff honoring
// the response's Retry-After. Returns the number of points applied and the
// number of retries performed.
func sendBatch(client *http.Client, addr, id string, dim, k, lo, hi int) (int, int, error) {
	xs := make([][]float64, 0, hi-lo)
	payload := map[string]any{"from": lo}
	if k > 1 {
		yss := make([][]float64, 0, hi-lo)
		for j := lo; j < hi; j++ {
			x, yrow := server.SyntheticPointMulti(id, j, dim, k)
			xs = append(xs, x)
			yss = append(yss, yrow)
		}
		payload["xs"], payload["yss"] = xs, yss
	} else {
		ys := make([]float64, 0, hi-lo)
		for j := lo; j < hi; j++ {
			x, y := server.SyntheticPoint(id, j, dim)
			xs = append(xs, x)
			ys = append(ys, y)
		}
		payload["xs"], payload["ys"] = xs, ys
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, 0, err
	}
	url := fmt.Sprintf("%s/v1/streams/%s/observe", addr, id)
	retries := 0
	for {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, retries, err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return hi - lo, retries, nil
		case retry.RetryableStatus(resp.StatusCode):
			retries++
			if retries > maxSendRetries {
				return 0, retries, fmt.Errorf("still rejected (%s) after %d retries: %s", resp.Status, retries, respBody)
			}
			retry.Backoff(retries, retry.HTTPRetryAfter(resp))
		default:
			return 0, retries, fmt.Errorf("%s: %s", resp.Status, respBody)
		}
	}
}

// sendBatchWire sends points [lo, hi) of the stream as one binary observe
// frame, retrying retryable nacks (queue-full, not-owner, importing) with
// the exact same jittered backoff as the HTTP path, honoring the nack's
// RetryAfter field. Returns the number of points applied and the number of
// retries performed.
func sendBatchWire(wc *wire.Client, id string, dim, k, lo, hi int) (int, int, error) {
	xs := make([]float64, 0, (hi-lo)*dim)
	ys := make([]float64, 0, (hi-lo)*k)
	for j := lo; j < hi; j++ {
		if k > 1 {
			x, yrow := server.SyntheticPointMulti(id, j, dim, k)
			xs = append(xs, x...)
			ys = append(ys, yrow...)
			continue
		}
		x, y := server.SyntheticPoint(id, j, dim)
		xs = append(xs, x...)
		ys = append(ys, y)
	}
	retries := 0
	for {
		applied, _, err := wc.ObserveAt(id, int64(lo), xs, ys)
		if err == nil {
			return applied, retries, nil
		}
		if !wire.IsRetryable(err) {
			return 0, retries, err
		}
		retries++
		if retries > maxSendRetries {
			return 0, retries, fmt.Errorf("still rejected after %d retries: %v", retries, err)
		}
		hint, _ := wire.RetryAfter(err)
		retry.Backoff(retries, hint)
	}
}

// fetchEstimate reads one stream's estimate, retrying retryable statuses —
// an estimate during a rebalance seal, an import window, or a failure-
// detection suspicion gap is a matter of waiting, not an error.
func fetchEstimate(client *http.Client, addr, id string, outcome int) ([]float64, int, error) {
	url := fmt.Sprintf("%s/v1/streams/%s/estimate", addr, id)
	if outcome > 0 {
		url = fmt.Sprintf("%s?outcome=%d", url, outcome)
	}
	for attempt := 1; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if retry.RetryableStatus(resp.StatusCode) && attempt <= maxSendRetries {
				retry.Backoff(attempt, retry.HTTPRetryAfter(resp))
				continue
			}
			return nil, 0, fmt.Errorf("estimate %s: %s: %s", id, resp.Status, body)
		}
		var out struct {
			Estimate []float64 `json:"estimate"`
			Len      int       `json:"len"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("decoding estimate %s: %w", id, err)
		}
		return out.Estimate, out.Len, nil
	}
}

// fetchEstimateWire is the binary-path twin of fetchEstimate.
func fetchEstimateWire(wc *wire.Client, id string, outcome int) ([]float64, int, error) {
	for attempt := 1; ; attempt++ {
		est, n, err := wc.EstimateOutcome(id, outcome)
		if wire.IsRetryable(err) && attempt <= maxSendRetries {
			hint, _ := wire.RetryAfter(err)
			retry.Backoff(attempt, hint)
			continue
		}
		return est, n, err
	}
}

func equalVectors(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
