// Package privreg is a Go implementation of differentially private incremental
// (streaming) empirical risk minimization and linear regression, reproducing
// the mechanisms and guarantees of
//
//	"Private Incremental Regression"
//	Shiva Prasad Kasiviswanathan, Kobbi Nissim, Hongxia Jin
//	PODS 2017 (arXiv:1701.01093)
//
// The problem: data points (x_t, y_t) arrive one at a time, and at every
// timestep the mechanism must publish an estimate of the constrained empirical
// risk minimizer over the entire history observed so far — while the whole
// sequence of published estimates is (ε, δ)-differentially private with
// respect to changing any single data point in the stream (event-level
// privacy).
//
// # Construction
//
// Mechanisms are selected from a registry by name and configured with
// functional options, so deployments can pick mechanisms from config files:
//
//	est, err := privreg.New("gradient",
//	    privreg.WithEpsilonDelta(1.0, 1e-6),
//	    privreg.WithHorizon(100_000),
//	    privreg.WithConstraint(privreg.L2Constraint(16, 1)),
//	    privreg.WithSeed(42),
//	)
//	if err != nil { ... }
//	for t := 0; t < 100_000; t++ {
//	    x, y := nextObservation()
//	    if err := est.Observe(x, y); err != nil { ... }
//	    theta, _ := est.Estimate() // private estimate for the prefix so far
//	    _ = theta
//	}
//
// Mechanisms lists the registered names; Describe returns aliases and
// per-mechanism requirements. The mechanisms, matching Table 1 of the paper:
//
//   - "gradient" (Algorithm PRIVINCREG1) maintains a private gradient function
//     for least squares with the Tree Mechanism and runs noisy projected
//     gradient descent at every estimate (excess risk ≈ √d, worst-case
//     optimal).
//   - "projected" (Algorithm PRIVINCREG2) additionally projects the data into
//     a low-dimensional sketch sized by the Gaussian widths of the covariate
//     domain and the constraint set, optimizes there, and lifts the solution
//     back (excess risk ≈ T^{1/3}·W^{2/3}, dimension-free for sparse/L1-ball
//     geometry). Requires WithDomain; WithSketch selects the dense Gaussian
//     projection or the O(d log d) SRHT fast path.
//   - "robust-projected" is the §5.2 extension: WithDomainOracle screens
//     covariates, rejected points are neutralized before touching private
//     state.
//   - "generic-erm" (Mechanism PRIVINCERM) converts any private batch ERM
//     algorithm into an incremental one by recomputing every τ steps, for any
//     supported loss (WithLoss).
//   - "naive-recompute" and "nonprivate" are the baselines the experiments
//     compare against.
//
// Budgets are validated at this boundary: the Gaussian-noise mechanisms
// require ε > 0 and δ ∈ (0, 1) and fail construction otherwise.
//
// # Serving
//
// The package is engineered for long-running services (see docs/SERVING.md):
//
//   - ObserveBatch ingests contiguous batches with up-front all-or-nothing
//     validation and amortized continual-sum aggregation, bit-identical to a
//     scalar Observe loop.
//   - Every estimator checkpoints via MarshalBinary/UnmarshalBinary: restore
//     into an identically configured instance and the continuation is
//     bit-identical to an uninterrupted run — restarts are invisible in the
//     published sequence.
//   - Pool manages one estimator per stream ID with sharded locking, lazy
//     stream creation, per-stream derived seeds, Stats snapshots, and
//     whole-pool Checkpoint/Restore.
//
// # Performance
//
// The streaming hot path is engineered for sustained throughput (see
// docs/PERFORMANCE.md for the benchmark record): per-timestep updates are
// allocation-free in steady state, the Tree Mechanism defers its running-sum
// aggregation until an estimate is requested, Gaussian noise is drawn with a
// vectorized sampler, and the experiment harness runs sweeps on a bounded
// worker pool with results byte-identical to a serial run.
//
// Non-private and naive-private baselines, constraint-set geometry (L1/L2/Lp
// balls, simplex, polytopes, group-L1 balls, sparse domains), synthetic stream
// generators, and a full benchmark harness reproducing the shape of every
// bound in the paper are included. See README.md for a tour and
// EXPERIMENTS.md for the paper-versus-measured record.
package privreg
