// Package privreg is a Go implementation of differentially private incremental
// (streaming) empirical risk minimization and linear regression, reproducing
// the mechanisms and guarantees of
//
//	"Private Incremental Regression"
//	Shiva Prasad Kasiviswanathan, Kobbi Nissim, Hongxia Jin
//	PODS 2017 (arXiv:1701.01093)
//
// The problem: data points (x_t, y_t) arrive one at a time, and at every
// timestep the mechanism must publish an estimate of the constrained empirical
// risk minimizer over the entire history observed so far — while the whole
// sequence of published estimates is (ε, δ)-differentially private with
// respect to changing any single data point in the stream (event-level
// privacy).
//
// Three mechanisms are provided, matching Table 1 of the paper:
//
//   - NewGenericERM converts any private batch ERM algorithm into an
//     incremental one by recomputing every τ steps (excess risk ≈ (Td)^{1/3}
//     for convex losses, ≈ √d for strongly convex losses).
//   - NewGradientRegression (Algorithm PRIVINCREG1) maintains a private
//     gradient function for least squares with the Tree Mechanism and runs
//     noisy projected gradient descent at every step (excess risk ≈ √d,
//     worst-case optimal).
//   - NewProjectedRegression (Algorithm PRIVINCREG2) additionally projects the
//     data into a low-dimensional Gaussian sketch sized by the Gaussian widths
//     of the covariate domain and the constraint set, optimizes there, and
//     lifts the solution back (excess risk ≈ T^{1/3}·W^{2/3}, dimension-free
//     for sparse/L1-ball geometry).
//
// Non-private and naive-private baselines, constraint-set geometry (L1/L2/Lp
// balls, simplex, polytopes, group-L1 balls, sparse domains), synthetic stream
// generators, and a full benchmark harness reproducing the shape of every
// bound in the paper are included. See README.md for a tour and
// EXPERIMENTS.md for the paper-versus-measured record.
//
// # Performance
//
// The streaming hot path is engineered for sustained throughput (see
// docs/PERFORMANCE.md for the benchmark record):
//
//   - NewProjectedRegression accepts a sketch backend via Config.SketchBackend:
//     the paper's dense Gaussian projection (O(m·d) per point, the default),
//     the subsampled randomized Hadamard transform (SketchSRHT, O(d log d) per
//     point — several times faster once d ≳ 64), or SketchAuto to pick by
//     dimension. Both backends satisfy the same norm-preservation guarantee.
//   - Per-timestep updates are allocation-free in steady state: the Tree
//     Mechanism exposes AddTo/SumInto buffer variants, Gaussian noise is drawn
//     with a vectorized sampler, and the mechanisms reuse internal buffers for
//     clamping, projection and outer products.
//   - The experiment harness runs independent sweep cells on a bounded worker
//     pool (experiments.Options.Workers, default GOMAXPROCS) with results that
//     are byte-identical to a serial run for any fixed seed.
//
// Quick start:
//
//	cons := privreg.L2Constraint(10, 1.0)
//	est, err := privreg.NewGradientRegression(privreg.Config{
//		Privacy:    privreg.Privacy{Epsilon: 1, Delta: 1e-6},
//		Horizon:    1000,
//		Constraint: cons,
//		Seed:       42,
//	})
//	if err != nil { ... }
//	for t := 0; t < 1000; t++ {
//		x, y := nextObservation()
//		if err := est.Observe(x, y); err != nil { ... }
//		theta, _ := est.Estimate() // private estimate for the prefix so far
//		_ = theta
//	}
package privreg
