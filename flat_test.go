package privreg

import (
	"strings"
	"testing"
)

// TestObserveFlatMatchesObserveBatch is the acceptance test of the zero-copy
// ingest path: for every mechanism, feeding rows through ObserveFlat from a
// packed row-major buffer produces exactly the state ObserveBatch produces —
// same counts, bit-identical estimates. It also checks the estimator does not
// retain the flat buffer: scribbling over it after the call must not change
// the estimate.
func TestObserveFlatMatchesObserveBatch(t *testing.T) {
	for _, tc := range testMechanismCases() {
		t.Run(tc.name, func(t *testing.T) {
			batched, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := New(tc.name, tc.opts(42)...)
			if err != nil {
				t.Fatal(err)
			}
			fo, ok := flat.(FlatObserver)
			if !ok {
				t.Fatalf("estimator %T does not implement FlatObserver", flat)
			}

			xs := make([][]float64, tc.horizon)
			ys := make([]float64, tc.horizon)
			for i := range xs {
				xs[i], ys[i] = syntheticPoint(i, tc.dim)
			}

			// Same uneven chunking on both sides so batch boundaries line up.
			for lo := 0; lo < tc.horizon; {
				hi := lo + 1 + (lo % 4)
				if hi > tc.horizon {
					hi = tc.horizon
				}
				if err := batched.ObserveBatch(xs[lo:hi], ys[lo:hi]); err != nil {
					t.Fatalf("ObserveBatch[%d:%d]: %v", lo, hi, err)
				}
				buf := make([]float64, 0, (hi-lo)*tc.dim)
				for i := lo; i < hi; i++ {
					buf = append(buf, xs[i]...)
				}
				if err := fo.ObserveFlat(tc.dim, buf, ys[lo:hi]); err != nil {
					t.Fatalf("ObserveFlat[%d:%d]: %v", lo, hi, err)
				}
				// The estimator must have copied what it needs: poisoning the
				// transport buffer now must not perturb the stream's state.
				for i := range buf {
					buf[i] = 1e30
				}
				lo = hi
			}
			if err := fo.ObserveFlat(tc.dim, nil, nil); err != nil {
				t.Fatalf("empty flat batch: %v", err)
			}

			if batched.Len() != flat.Len() {
				t.Fatalf("Len: batched %d != flat %d", batched.Len(), flat.Len())
			}
			a, err := batched.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			b, err := flat.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			sameVector(t, "estimate", a, b)
		})
	}
}

// TestObserveFlatValidation checks shape errors surface before any state
// changes, and that a Pool routes ObserveFlat through the same stream as
// ObserveBatch.
func TestObserveFlatValidation(t *testing.T) {
	est, err := New("nonprivate",
		WithEpsilonDelta(1, 1e-6), WithHorizon(8),
		WithConstraint(L2Constraint(3, 1)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	fo := est.(FlatObserver)
	if err := fo.ObserveFlat(0, nil, nil); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("zero dim: %v", err)
	}
	if err := fo.ObserveFlat(3, make([]float64, 5), make([]float64, 2)); err == nil {
		t.Fatal("ragged flat buffer accepted")
	}
	if est.Len() != 0 {
		t.Fatalf("failed batches mutated state: len %d", est.Len())
	}
}

// TestPoolObserveFlat checks the Pool-level entry point: flat and nested
// ingestion into pools built from the same template converge to bit-identical
// per-stream estimates.
func TestPoolObserveFlat(t *testing.T) {
	newPool := func() *Pool {
		p, err := NewPool("gradient",
			WithEpsilonDelta(1, 1e-6), WithHorizon(16),
			WithConstraint(L2Constraint(4, 1)), WithSeed(7),
			WithMaxIterations(10))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := newPool(), newPool()

	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	flatBuf := make([]float64, 0, 12*4)
	for i := range xs {
		xs[i], ys[i] = syntheticPoint(i, 4)
		flatBuf = append(flatBuf, xs[i]...)
	}
	if err := a.ObserveBatch("s", xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := b.ObserveFlat("s", 4, flatBuf, ys); err != nil {
		t.Fatal(err)
	}
	ea, err := a.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	sameVector(t, "pool estimate", ea, eb)

	if err := b.ObserveFlat("s", 4, make([]float64, 7), make([]float64, 2)); err == nil {
		t.Fatal("pool accepted ragged flat buffer")
	}
	if err := b.ObserveFlat("s", -1, nil, nil); err == nil {
		t.Fatal("pool accepted negative dim")
	}
}
