package privreg

import (
	"strings"
	"testing"
)

func TestMechanismsRegistry(t *testing.T) {
	names := Mechanisms()
	want := []string{"gradient", "projected", "robust-projected", "generic-erm", "naive-recompute", "multi-outcome", "nonprivate"}
	if len(names) != len(want) {
		t.Fatalf("Mechanisms() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Mechanisms()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, name := range names {
		info, err := Describe(name)
		if err != nil {
			t.Fatalf("Describe(%q): %v", name, err)
		}
		if info.Name != name || info.Summary == "" {
			t.Fatalf("Describe(%q) = %+v", name, info)
		}
	}
}

func TestNewResolvesAliasesCaseInsensitively(t *testing.T) {
	base := []Option{
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(16),
		WithConstraint(L2Constraint(3, 1)),
		WithSeed(1),
	}
	for _, alias := range []string{"gradient", "reg1", "PRIV-INC-REG1", "  Gradient-Regression "} {
		est, err := New(alias, base...)
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if est.Mechanism() != "gradient" {
			t.Fatalf("New(%q).Mechanism() = %q", alias, est.Mechanism())
		}
		if est.Name() != "priv-inc-reg1" {
			t.Fatalf("New(%q).Name() = %q", alias, est.Name())
		}
	}
}

func TestNewUnknownMechanismListsValidNames(t *testing.T) {
	_, err := New("no-such-mechanism")
	if err == nil {
		t.Fatal("unknown mechanism should be rejected")
	}
	for _, name := range Mechanisms() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestNewValidatesPrivacyAtBoundary(t *testing.T) {
	base := func(p Privacy) []Option {
		return []Option{
			WithPrivacy(p),
			WithHorizon(16),
			WithConstraint(L2Constraint(3, 1)),
		}
	}
	bad := []Privacy{
		{},                         // zero budget
		{Epsilon: -1, Delta: 1e-6}, // negative epsilon
		{Epsilon: 0, Delta: 1e-6},  // zero epsilon
		{Epsilon: 1, Delta: 0},     // Gaussian mechanisms need delta > 0
		{Epsilon: 1, Delta: 1},     // delta must be < 1
		{Epsilon: 1, Delta: 1.5},   // out of range
	}
	for _, name := range []string{"gradient", "generic-erm", "naive-recompute"} {
		for _, p := range bad {
			if _, err := New(name, base(p)...); err == nil {
				t.Fatalf("New(%q) accepted invalid budget %+v", name, p)
			} else if !strings.Contains(err.Error(), "privreg:") {
				t.Fatalf("budget error should come from the public boundary, got %q", err)
			}
		}
	}
	// The deprecated constructors route through the same validation.
	if _, err := NewGenericERM(Config{
		Privacy:    Privacy{Epsilon: 1, Delta: 0},
		Horizon:    16,
		Constraint: L2Constraint(3, 1),
	}, SquaredLoss); err == nil {
		t.Fatal("NewGenericERM accepted delta = 0")
	}
	// The non-private baseline ignores the budget entirely.
	if _, err := New("nonprivate", WithHorizon(16), WithConstraint(L2Constraint(3, 1))); err != nil {
		t.Fatalf("nonprivate should not require a budget: %v", err)
	}
}

func TestOptionMechanismCompatibility(t *testing.T) {
	base := []Option{
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(16),
		WithConstraint(L2Constraint(3, 1)),
	}
	// WithLoss only applies to the ERM mechanisms.
	if _, err := New("gradient", append(base, WithLoss(LogisticLoss))...); err == nil {
		t.Fatal("gradient should reject WithLoss")
	}
	if _, err := New("generic-erm", append(base, WithLoss(LogisticLoss))...); err != nil {
		t.Fatalf("generic-erm should accept WithLoss: %v", err)
	}
	// WithDomainOracle only applies to robust-projected, which requires it.
	if _, err := New("generic-erm", append(base, WithDomainOracle(func([]float64) bool { return true }))...); err == nil {
		t.Fatal("generic-erm should reject WithDomainOracle")
	}
	robustBase := []Option{
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(16),
		WithConstraint(L1Constraint(8, 1)),
		WithDomain(SparseDomain(8, 2)),
	}
	if _, err := New("robust-projected", robustBase...); err == nil {
		t.Fatal("robust-projected should require WithDomainOracle")
	}
	if _, err := New("robust-projected", append(robustBase, WithDomainOracle(func([]float64) bool { return true }))...); err != nil {
		t.Fatalf("robust-projected with oracle: %v", err)
	}
	// The projected mechanisms require a domain.
	if _, err := New("projected", base...); err == nil {
		t.Fatal("projected should require WithDomain")
	}
	// Constraint is always required.
	if _, err := New("gradient", WithEpsilonDelta(1, 1e-6), WithHorizon(16)); err == nil {
		t.Fatal("missing constraint should be rejected")
	}
	// Horizon is required unless unknown-horizon mode is chosen.
	if _, err := New("gradient", WithEpsilonDelta(1, 1e-6), WithConstraint(L2Constraint(3, 1))); err == nil {
		t.Fatal("missing horizon should be rejected")
	}
	if _, err := New("gradient", WithEpsilonDelta(1, 1e-6), WithConstraint(L2Constraint(3, 1)), WithUnknownHorizon()); err != nil {
		t.Fatalf("WithUnknownHorizon should stand in for a horizon: %v", err)
	}
}

func TestOptionArgumentValidation(t *testing.T) {
	if _, err := New("gradient", WithHorizon(-5)); err == nil {
		t.Fatal("negative horizon should be rejected by the option")
	}
	if _, err := New("gradient", WithConstraint(Constraint{})); err == nil {
		t.Fatal("zero constraint should be rejected by the option")
	}
	if _, err := New("projected", WithDomain(Domain{})); err == nil {
		t.Fatal("zero domain should be rejected by the option")
	}
	if _, err := New("robust-projected", WithDomainOracle(nil)); err == nil {
		t.Fatal("nil oracle should be rejected by the option")
	}
	if _, err := New("generic-erm", WithLoss(Loss(99))); err == nil {
		t.Fatal("unknown loss should be rejected by the option")
	}
	if _, err := New("projected", WithSketch(Sketch(99))); err == nil {
		t.Fatal("unknown sketch backend should be rejected by the option")
	}
	if _, err := New("gradient", nil); err == nil {
		t.Fatal("nil option should be rejected")
	}
}

// TestNewMatchesDeprecatedConstructors pins the shim contract: both entry
// points build identical estimators (same seeded output).
func TestNewMatchesDeprecatedConstructors(t *testing.T) {
	cfg := Config{
		Privacy:    Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    16,
		Constraint: L2Constraint(4, 1),
		Seed:       9,
		WarmStart:  true,
	}
	old, err := NewGradientRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := New("gradient",
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(16),
		WithConstraint(L2Constraint(4, 1)),
		WithSeed(9),
		WithWarmStart(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		x, y := syntheticPoint(i, 4)
		if err := old.Observe(x, y); err != nil {
			t.Fatal(err)
		}
		if err := neu.Observe(x, y); err != nil {
			t.Fatal(err)
		}
	}
	a, err := old.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := neu.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	sameVector(t, "gradient", a, b)
}
