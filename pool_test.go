package privreg

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testPoolOptions(seed int64) []Option {
	return []Option{
		WithEpsilonDelta(1, 1e-6),
		WithHorizon(64),
		WithConstraint(L2Constraint(4, 1)),
		WithSeed(seed),
		WithMaxIterations(20),
	}
}

func TestPoolBasics(t *testing.T) {
	p, err := NewPool("gradient", testPoolOptions(7)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("user-%d", i%3)
		x, y := syntheticPoint(i, 4)
		if err := p.Observe(id, x, y); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Mechanism != "gradient" || st.Streams != 3 || st.Observations != 10 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Privacy.Epsilon != 1 || st.Privacy.Delta != 1e-6 {
		t.Fatalf("Stats privacy = %+v", st.Privacy)
	}
	if got := p.Streams(); len(got) != 3 || got[0] != "user-0" {
		t.Fatalf("Streams = %v", got)
	}
	if p.Len("user-0") == 0 {
		t.Fatal("user-0 should have observations")
	}
	theta, err := p.Estimate("user-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(theta) != 4 {
		t.Fatalf("estimate dimension %d", len(theta))
	}
	if _, err := p.Estimate("nobody"); err == nil {
		t.Fatal("estimate for an unknown stream should error")
	}
	if !p.Drop("user-1") || p.Drop("user-1") {
		t.Fatal("Drop semantics broken")
	}
	if p.Stats().Streams != 2 {
		t.Fatal("dropped stream still counted")
	}
}

func TestPoolRetainedBytesSurfacesSlowPathState(t *testing.T) {
	// The slow-path mechanisms report their retained sufficient statistics;
	// the store caches the size per stream and Stats aggregates it.
	p, err := NewPool("generic-erm", testPoolOptions(9)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().RetainedBytes; got != 0 {
		t.Fatalf("empty pool RetainedBytes = %d", got)
	}
	for i := 0; i < 6; i++ {
		x, y := syntheticPoint(i, 4)
		if err := p.Observe(fmt.Sprintf("user-%d", i%2), x, y); err != nil {
			t.Fatal(err)
		}
	}
	one := p.Stats().RetainedBytes
	if one <= 0 {
		t.Fatalf("RetainedBytes = %d, want > 0 for generic-erm streams", one)
	}
	// On the sufficient-statistics path the size is per stream, not per point.
	for i := 0; i < 20; i++ {
		x, y := syntheticPoint(i, 4)
		if err := p.Observe("user-0", x, y); err != nil {
			t.Fatal(err)
		}
	}
	if after := p.Stats().RetainedBytes; after != one {
		t.Fatalf("quadratic RetainedBytes grew with stream length: %d -> %d", one, after)
	}
}

func TestPoolValidatesTemplateEagerly(t *testing.T) {
	if _, err := NewPool("gradient", WithHorizon(16)); err == nil {
		t.Fatal("missing constraint should fail at NewPool, not first use")
	}
	if _, err := NewPool("gradient", WithEpsilonDelta(-1, 1e-6), WithHorizon(16), WithConstraint(L2Constraint(3, 1))); err == nil {
		t.Fatal("invalid budget should fail at NewPool")
	}
	if _, err := NewPool("no-such", testPoolOptions(1)...); err == nil {
		t.Fatal("unknown mechanism should fail at NewPool")
	}
}

// TestPoolStreamsAreIndependentAndDeterministic verifies per-stream seed
// derivation: the same stream ID always reproduces the same outputs, distinct
// IDs draw different noise.
func TestPoolStreamsAreIndependentAndDeterministic(t *testing.T) {
	run := func(id string) []float64 {
		p, err := NewPool("gradient", testPoolOptions(7)...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			x, y := syntheticPoint(i, 4)
			if err := p.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
		}
		theta, err := p.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		return theta
	}
	a1, a2, b := run("alice"), run("alice"), run("bob")
	sameVector(t, "same stream id", a1, a2)
	differ := false
	for k := range a1 {
		if a1[k] != b[k] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("distinct stream ids should draw independent noise")
	}
}

// TestPoolConcurrentMultiStream hammers a pool from many goroutines — mixed
// observes, batch observes, estimates, stats, drops — and then verifies the
// per-stream observation counts. Run under -race this is the acceptance test
// for the sharded locking design.
func TestPoolConcurrentMultiStream(t *testing.T) {
	p, err := NewPool("gradient", testPoolOptions(3)...)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 16
		streams   = 23 // spread across shards; some IDs shared between workers
		perWorker = 24
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("stream-%d", (w*perWorker+i)%streams)
				x, y := syntheticPoint(i, 4)
				var err error
				switch i % 4 {
				case 0, 1:
					err = p.Observe(id, x, y)
				case 2:
					x2, y2 := syntheticPoint(i+1, 4)
					err = p.ObserveBatch(id, [][]float64{x, x2}, []float64{y, y2})
				case 3:
					err = p.Observe(id, x, y)
					if err == nil {
						_, err = p.Estimate(id)
					}
					_ = p.Stats()
				}
				if err != nil {
					errc <- fmt.Errorf("worker %d step %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := p.Stats()
	// 1/4 of the steps observe two points, the rest one.
	wantObs := int64(workers * perWorker * 5 / 4)
	if st.Observations != wantObs {
		t.Fatalf("Observations = %d, want %d", st.Observations, wantObs)
	}
	if st.Streams != streams {
		t.Fatalf("Streams = %d, want %d", st.Streams, streams)
	}
}

// TestPoolCheckpointDuringTraffic takes checkpoints while writer goroutines
// are actively feeding the pool (run under -race in CI). Every snapshot must
// be internally consistent — each stream's state is some prefix of the points
// that stream was fed — and restorable: restoring the blob into a fresh pool
// and re-feeding the observed prefix into a reference pool must produce
// bit-identical estimates.
func TestPoolCheckpointDuringTraffic(t *testing.T) {
	const (
		streams   = 8
		perStream = 32
		snapshots = 5
	)
	p, err := NewPool("gradient", testPoolOptions(11)...)
	if err != nil {
		t.Fatal(err)
	}
	streamID := func(s int) string { return fmt.Sprintf("live-%d", s) }

	var wg sync.WaitGroup
	errc := make(chan error, streams+snapshots)
	blobs := make([][]byte, snapshots)
	start := make(chan struct{})
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			id := streamID(s)
			for i := 0; i < perStream; {
				x, y := syntheticPoint(i, 4)
				if i%3 == 2 && i+1 < perStream {
					x2, y2 := syntheticPoint(i+1, 4)
					if err := p.ObserveBatch(id, [][]float64{x, x2}, []float64{y, y2}); err != nil {
						errc <- err
						return
					}
					i += 2
				} else {
					if err := p.Observe(id, x, y); err != nil {
						errc <- err
						return
					}
					i++
				}
			}
		}(s)
	}
	for c := 0; c < snapshots; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			blob, err := p.Checkpoint()
			if err != nil {
				errc <- err
				return
			}
			blobs[c] = blob
		}(c)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for c, blob := range blobs {
		restored, err := NewPool("gradient", testPoolOptions(11)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Restore(blob); err != nil {
			t.Fatalf("snapshot %d not restorable: %v", c, err)
		}
		reference, err := NewPool("gradient", testPoolOptions(11)...)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range restored.Streams() {
			k := restored.Len(id)
			if k < 0 || k > perStream {
				t.Fatalf("snapshot %d stream %s: Len %d outside fed range [0, %d]", c, id, k, perStream)
			}
			if k == 0 {
				// The checkpoint caught the stream between creation and its
				// first observation; nothing to compare.
				continue
			}
			// The snapshot must equal the state after exactly the first k
			// points of this stream's deterministic sequence: scalar and
			// batched ingestion are bit-identical, so a scalar replay is a
			// valid reference regardless of how the writer chunked them.
			for i := 0; i < k; i++ {
				x, y := syntheticPoint(i, 4)
				if err := reference.Observe(id, x, y); err != nil {
					t.Fatal(err)
				}
			}
			want, err := reference.Estimate(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Estimate(id)
			if err != nil {
				t.Fatalf("snapshot %d stream %s: estimate after restore: %v", c, id, err)
			}
			sameVector(t, fmt.Sprintf("snapshot %d stream %s (k=%d)", c, id, k), want, got)
		}
	}
}

// TestPoolDropRacesSameStreamWrites hammers one stream ID with concurrent
// Drop, Observe, ObserveBatch, Estimate, and Checkpoint calls — the
// drop-vs-write interleavings on a single stream that the multi-stream
// concurrency test never produces. Run under -race in CI. There is no single
// "right" winner for any interleaving; the invariants are: no data race, no
// error other than the documented sentinels, and a pool that is still
// coherent (checkpointable and restorable) afterwards. Runs against both
// store backends, since the spill store's eviction path adds interleavings
// of its own.
func TestPoolDropRacesSameStreamWrites(t *testing.T) {
	baseOpts := func(seed int64) []Option {
		return []Option{
			WithEpsilonDelta(1, 1e-6),
			WithHorizon(1 << 16), // far beyond what the test feeds: ErrStreamFull never fires
			WithConstraint(L2Constraint(4, 1)),
			WithSeed(seed),
			WithMaxIterations(10),
		}
	}
	run := func(t *testing.T, opts []Option) {
		p, err := NewPool("gradient", opts...)
		if err != nil {
			t.Fatal(err)
		}
		const (
			id    = "contended"
			iters = 150
		)
		var wg sync.WaitGroup
		errc := make(chan error, 5)
		wg.Add(5)
		go func() { // scalar writer
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x, y := syntheticPoint(i, 4)
				if err := p.Observe(id, x, y); err != nil {
					errc <- fmt.Errorf("observe: %w", err)
					return
				}
			}
		}()
		go func() { // batch writer
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x1, y1 := syntheticPoint(i, 4)
				x2, y2 := syntheticPoint(i+1, 4)
				if err := p.ObserveBatch(id, [][]float64{x1, x2}, []float64{y1, y2}); err != nil {
					errc <- fmt.Errorf("batch: %w", err)
					return
				}
			}
		}()
		go func() { // reader
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := p.Estimate(id); err != nil && !errors.Is(err, ErrUnknownStream) {
					errc <- fmt.Errorf("estimate: %w", err)
					return
				}
				if n, ok := p.LenOK(id); ok && n < 0 {
					errc <- fmt.Errorf("LenOK returned negative length %d", n)
					return
				}
			}
		}()
		go func() { // checkpointer
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				if _, err := p.Checkpoint(); err != nil {
					errc <- fmt.Errorf("checkpoint: %w", err)
					return
				}
			}
		}()
		go func() { // dropper
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p.Drop(id)
			}
		}()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		// Whatever interleaving happened, the pool is still coherent: the
		// contended stream (if alive) reports a consistent length, and the
		// whole pool checkpoints and restores.
		if p.Has(id) {
			if n, ok := p.LenOK(id); !ok || n < 0 {
				t.Fatalf("surviving stream reports (%d, %v)", n, ok)
			}
		}
		blob, err := p.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewPool("gradient", baseOpts(21)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(blob); err != nil {
			t.Fatalf("post-race checkpoint not restorable: %v", err)
		}
	}
	t.Run("resident", func(t *testing.T) { run(t, baseOpts(21)) })
	t.Run("spill", func(t *testing.T) {
		run(t, append(baseOpts(21), WithSpillDir(t.TempDir()), WithStoreCap(1)))
	})
}

// TestPoolUnknownStreamSentinel verifies the exported sentinel servers match
// on to translate "no such stream" into a 404.
func TestPoolUnknownStreamSentinel(t *testing.T) {
	p, err := NewPool("gradient", testPoolOptions(5)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Estimate("ghost"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("Estimate(unknown) = %v, want ErrUnknownStream", err)
	}
	if p.Has("ghost") {
		t.Fatal("Has(unknown) = true")
	}
	x, y := syntheticPoint(0, 4)
	if err := p.Observe("ghost", x, y); err != nil {
		t.Fatal(err)
	}
	if !p.Has("ghost") {
		t.Fatal("Has(existing) = false")
	}
}

// TestPoolCheckpointRestore checkpoints a pool mid-stream, restores into a
// fresh pool built from the same template, continues both, and requires every
// stream's estimates to be bit-identical — the multi-stream version of the
// single-estimator determinism guarantee.
func TestPoolCheckpointRestore(t *testing.T) {
	ids := []string{"alice", "bob", "carol"}
	orig, err := NewPool("gradient", testPoolOptions(7)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for _, id := range ids {
			x, y := syntheticPoint(i, 4)
			if err := orig.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	blob, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := NewPool("gradient", testPoolOptions(7)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if got := restored.Stats(); got.Streams != len(ids) || got.Observations != int64(12*len(ids)) {
		t.Fatalf("restored Stats = %+v", got)
	}

	for i := 12; i < 20; i++ {
		for _, id := range ids {
			x, y := syntheticPoint(i, 4)
			if err := orig.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
			if err := restored.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		a, err := orig.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		sameVector(t, "pool stream "+id, a, b)
	}

	// Mechanism mismatch is rejected.
	other, err := NewPool("nonprivate", WithHorizon(64), WithConstraint(L2Constraint(4, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(blob); err == nil {
		t.Fatal("cross-mechanism pool restore should be rejected")
	}
	// Garbage is rejected.
	if err := restored.Restore([]byte("junk")); err == nil {
		t.Fatal("garbage pool blob should be rejected")
	}

	// Restore is all-or-nothing: a checkpoint with one corrupt stream blob
	// must leave the pool exactly as it was.
	before := make(map[string][]float64)
	for _, id := range ids {
		theta, err := restored.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = theta
	}
	if err := restored.Restore(blob[:len(blob)-7]); err == nil {
		t.Fatal("truncated pool blob should be rejected")
	}
	if got := restored.Stats(); got.Streams != len(ids) {
		t.Fatalf("failed restore changed stream count: %+v", got)
	}
	for _, id := range ids {
		theta, err := restored.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		sameVector(t, "post-failed-restore "+id, before[id], theta)
	}
}
