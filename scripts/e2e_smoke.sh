#!/usr/bin/env bash
# e2e_smoke.sh — boot privreg-server, drive it with privreg-loadgen, SIGTERM,
# restart from the checkpoint, and verify the server resumed bit-identically.
#
# This is the CI e2e job (and runnable locally: ./scripts/e2e_smoke.sh). It
# exercises the full binary path the Go tests can't: process boot, flag
# parsing, signal-driven drain, checkpoint files surviving an actual process
# death, and the loadgen's shadow-pool verification across both phases — over
# HTTP/JSON, under spill-store churn, and over the binary wire protocol.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

bin="$(mktemp -d)"
data="$(mktemp -d)"
addr="127.0.0.1:18329"
srv_pid=""

cleanup() {
  if [ -n "$srv_pid" ] && kill -0 "$srv_pid" 2>/dev/null; then
    kill -9 "$srv_pid" 2>/dev/null || true
  fi
  rm -rf "$bin" "$data"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bin/privreg-server" ./cmd/privreg-server
go build -o "$bin/privreg-loadgen" ./cmd/privreg-loadgen

server_flags=(
  -addr "$addr"
  -mechanism gradient -epsilon 1 -delta 1e-6
  -horizon 512 -dim 8 -radius 1 -seed 42
  -checkpoint-dir "$data" -checkpoint-interval 2s
)

start_server() {
  "$bin/privreg-server" "${server_flags[@]}" &
  srv_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "server died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "server never became healthy" >&2
  return 1
}

stop_server() {
  kill -TERM "$srv_pid"
  # The server must drain and exit 0: queued points applied, final checkpoint
  # written.
  wait "$srv_pid"
  srv_pid=""
}

echo "== phase 1: boot + ingest 8 streams x 24 points + verify"
start_server
"$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 24 -batch 6

echo "== SIGTERM (graceful drain + final checkpoint)"
stop_server
test -f "$data/MANIFEST" || { echo "no checkpoint manifest written" >&2; exit 1; }
test -d "$data/segments" || { echo "no segment directory written" >&2; exit 1; }

echo "== phase 2: restart from checkpoint + ingest 16 more points + verify"
start_server
# -from 24: the loadgen replays points [0,24) into its shadow pool locally,
# sends [24,40) to the server, and then requires the server's estimates at
# t=40 to be bit-identical — which only holds if the restart resumed every
# stream exactly where the killed process left it.
"$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 16 -from 24 -batch 4

echo "== graceful shutdown"
stop_server

echo "e2e smoke OK: restart from checkpoint is bit-identical"

# ---------------------------------------------------------------------------
# Churn phase: the bounded-memory spill store under 4x-cap skewed load.
#
# A second server runs with -store-cap 16 while the loadgen drives 64 streams
# (4x the resident cap) with a Zipf-skewed point profile, so the store is
# constantly evicting cold streams to segment files and faulting them back in.
# The phase then kills the server mid-churn (graceful SIGTERM: queued points
# land, dirty segments flush, the manifest is renamed into place), restarts it
# from the manifest, pushes more skewed traffic, and requires every stream —
# resident or spilled, restored lazily — to be bit-identical to the loadgen's
# fully-resident shadow pool.
# ---------------------------------------------------------------------------

churn_data="$(mktemp -d)"
churn_addr="127.0.0.1:18330"
trap 'cleanup; rm -rf "$churn_data"' EXIT

churn_flags=(
  -addr "$churn_addr"
  -mechanism gradient -epsilon 1 -delta 1e-6
  -horizon 512 -dim 8 -radius 1 -seed 42
  -checkpoint-dir "$churn_data" -checkpoint-interval 2s
  -store-cap 16
)

start_churn_server() {
  "$bin/privreg-server" "${churn_flags[@]}" &
  srv_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$churn_addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "churn server died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "churn server never became healthy" >&2
  return 1
}

stat_field() {
  # Extracts an integer PoolStats field from GET /v1/stats.
  curl -fsS "http://$churn_addr/v1/stats" | grep -o "\"$1\": [0-9-]*" | grep -o '[0-9-]*$'
}

echo "== churn phase 1: 64 streams over a 16-stream resident cap, skewed"
start_churn_server
"$bin/privreg-loadgen" -addr "http://$churn_addr" -streams 64 -points 24 -batch 6 -skew 1.2

resident="$(stat_field Resident)"
spilled="$(stat_field Spilled)"
echo "residency after churn: resident=$resident spilled=$spilled (cap 16)"
[ "$resident" -le 16 ] || { echo "resident $resident exceeds the store cap 16" >&2; exit 1; }
[ "$spilled" -ge 1 ] || { echo "no streams spilled under 4x-cap load" >&2; exit 1; }

echo "== kill mid-churn (drain flushes dirty segments + manifest)"
stop_server
test -f "$churn_data/MANIFEST" || { echo "no manifest written" >&2; exit 1; }
segs=$(ls "$churn_data/segments" | wc -l)
[ "$segs" -ge 64 ] || { echo "only $segs segment files for 64 streams" >&2; exit 1; }

echo "== churn phase 2: restart from manifest + more skewed traffic + verify"
start_churn_server
# Restore is lazy: before any traffic, no stream state is resident.
resident="$(stat_field Resident)"
streams="$(stat_field Streams)"
[ "$streams" -eq 64 ] || { echo "restart registered $streams streams, want 64" >&2; exit 1; }
[ "$resident" -eq 0 ] || { echo "restart faulted $resident streams in eagerly, want lazy restore" >&2; exit 1; }
# The shadow pool replays the full skewed history [0, target(i, 32)) per
# stream; estimates must be bit-identical across cap-evictions AND the
# restart, for hot and cold streams alike.
"$bin/privreg-loadgen" -addr "http://$churn_addr" -streams 64 -points 8 -from 24 -batch 4 -skew 1.2

echo "== graceful shutdown"
stop_server

echo "e2e smoke OK: restart from checkpoint is bit-identical (uniform + churn/spill)"

# ---------------------------------------------------------------------------
# Binary wire phase: the same restart contract over the binary protocol.
#
# A third server listens on both front ends (-wire-addr); the loadgen drives
# it with -proto binary — observes and estimate verification both go over the
# wire protocol, with the HTTP /v1/config endpoint only cross-checked against
# the HelloAck handshake. SIGTERM mid-history, restart, continue: the shadow
# pool's bit-identical verdict proves the wire decode path (frames → flat
# row buffers → estimators) applies exactly the same floats in exactly the
# same order as the JSON path and that drain flushes every pending wire ack.
# ---------------------------------------------------------------------------

wire_data="$(mktemp -d)"
wire_http="127.0.0.1:18331"
wire_bin="127.0.0.1:18332"
trap 'cleanup; rm -rf "$churn_data" "$wire_data"' EXIT

wire_flags=(
  -addr "$wire_http" -wire-addr "$wire_bin"
  -mechanism gradient -epsilon 1 -delta 1e-6
  -horizon 512 -dim 8 -radius 1 -seed 42
  -checkpoint-dir "$wire_data" -checkpoint-interval 2s
)

start_wire_server() {
  "$bin/privreg-server" "${wire_flags[@]}" &
  srv_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$wire_http/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "wire server died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "wire server never became healthy" >&2
  return 1
}

echo "== wire phase 1: binary ingest 8 streams x 24 points + verify"
start_wire_server
"$bin/privreg-loadgen" -addr "http://$wire_http" -proto binary -wire-addr "$wire_bin" \
  -streams 8 -points 24 -batch 6

echo "== SIGTERM mid-history (drain flushes pending wire acks + checkpoint)"
stop_server
test -f "$wire_data/MANIFEST" || { echo "no manifest written by wire phase" >&2; exit 1; }

echo "== wire phase 2: restart + binary ingest 16 more points + verify"
start_wire_server
"$bin/privreg-loadgen" -addr "http://$wire_http" -proto binary -wire-addr "$wire_bin" \
  -streams 8 -points 16 -from 24 -batch 4

echo "== graceful shutdown"
stop_server

echo "e2e smoke OK: restart from checkpoint is bit-identical (json + churn/spill + binary wire)"
