#!/usr/bin/env bash
# e2e_smoke.sh — boot privreg-server, drive it with privreg-loadgen, SIGTERM,
# restart from the checkpoint, and verify the server resumed bit-identically.
#
# This is the CI e2e job (and runnable locally: ./scripts/e2e_smoke.sh). It
# exercises the full binary path the Go tests can't: process boot, flag
# parsing, signal-driven drain, checkpoint files surviving an actual process
# death, and the loadgen's shadow-pool verification across both phases.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

bin="$(mktemp -d)"
data="$(mktemp -d)"
addr="127.0.0.1:18329"
srv_pid=""

cleanup() {
  if [ -n "$srv_pid" ] && kill -0 "$srv_pid" 2>/dev/null; then
    kill -9 "$srv_pid" 2>/dev/null || true
  fi
  rm -rf "$bin" "$data"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bin/privreg-server" ./cmd/privreg-server
go build -o "$bin/privreg-loadgen" ./cmd/privreg-loadgen

server_flags=(
  -addr "$addr"
  -mechanism gradient -epsilon 1 -delta 1e-6
  -horizon 512 -dim 8 -radius 1 -seed 42
  -checkpoint-dir "$data" -checkpoint-interval 2s
)

start_server() {
  "$bin/privreg-server" "${server_flags[@]}" &
  srv_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "server died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "server never became healthy" >&2
  return 1
}

stop_server() {
  kill -TERM "$srv_pid"
  # The server must drain and exit 0: queued points applied, final checkpoint
  # written.
  wait "$srv_pid"
  srv_pid=""
}

echo "== phase 1: boot + ingest 8 streams x 24 points + verify"
start_server
"$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 24 -batch 6

echo "== SIGTERM (graceful drain + final checkpoint)"
stop_server
test -f "$data/pool.ckpt" || { echo "no checkpoint written" >&2; exit 1; }

echo "== phase 2: restart from checkpoint + ingest 16 more points + verify"
start_server
# -from 24: the loadgen replays points [0,24) into its shadow pool locally,
# sends [24,40) to the server, and then requires the server's estimates at
# t=40 to be bit-identical — which only holds if the restart resumed every
# stream exactly where the killed process left it.
"$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 16 -from 24 -batch 4

echo "== graceful shutdown"
stop_server

echo "e2e smoke OK: restart from checkpoint is bit-identical"
