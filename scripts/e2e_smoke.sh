#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end smoke of the serving stack as real processes.
#
# This is the CI e2e job (and runnable locally: ./scripts/e2e_smoke.sh). It
# exercises the full binary path the Go tests can't: process boot, flag
# parsing, signal-driven drain, checkpoint files surviving an actual process
# death, cluster handoff across process exits, and the loadgen's shadow-pool
# verification across all of it.
#
# Phases are selectable via E2E_PHASES (space-separated; default runs all):
#
#   restart   boot + ingest + SIGTERM + restart from checkpoint, bit-identical
#   churn     the bounded-memory spill store under 4x-cap Zipf-skewed load
#   wire      the same restart contract over the binary wire protocol
#   cluster   3-node ring: ring-aware ingest, kill one node mid-churn
#             (graceful leave + live handoff), verify bit-identical
#   unclean   3-node ring with gossip failure detection: kill -9 one node
#             mid-wave, survivors converge to ring v+1 and promote warm
#             standbys with no operator action, verify bit-identical
#
#   E2E_PHASES="cluster" ./scripts/e2e_smoke.sh
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

phases="${E2E_PHASES:-restart churn wire cluster unclean}"

bin="$(mktemp -d)"
tmpdirs=("$bin")
pids=()

cleanup() {
  for pid in "${pids[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "${tmpdirs[@]}"
}
trap cleanup EXIT

# The build stamps a version so the phases can assert it surfaces end to end
# (/healthz, /v1/stats, the wire HelloAck) — the mixed-version-cluster
# detection signal.
e2e_version="e2e-$(git rev-parse --short HEAD 2>/dev/null || echo local)"

echo "== building binaries (version $e2e_version)"
go build -ldflags "-X privreg/internal/version.Version=$e2e_version" \
  -o "$bin/privreg-server" ./cmd/privreg-server
go build -o "$bin/privreg-loadgen" ./cmd/privreg-loadgen

# start_server NAME ADDR [server flags...] — boots a server in the
# background, waits for liveness, and records the pid in $srv_pid and in the
# per-name variable pid_NAME (so multi-node phases can address nodes).
srv_pid=""
start_server() {
  local name="$1" addr="$2"
  shift 2
  "$bin/privreg-server" -addr "$addr" "$@" &
  srv_pid=$!
  pids+=("$srv_pid")
  eval "pid_$name=$srv_pid"
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "$name died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "$name never became healthy" >&2
  return 1
}

# stop_server PID — SIGTERM and require a clean exit: queued points applied,
# cluster streams handed off, final checkpoint written.
stop_server() {
  local pid="$1"
  kill -TERM "$pid"
  wait "$pid"
}

# stat_field ADDR FIELD — extracts an integer PoolStats field from /v1/stats.
stat_field() {
  curl -fsS "http://$1/v1/stats" | grep -o "\"$2\": [0-9-]*" | grep -o '[0-9-]*$'
}

want_phase() { case " $phases " in *" $1 "*) return 0 ;; *) return 1 ;; esac }

spec_flags=(-mechanism gradient -epsilon 1 -delta 1e-6
  -horizon 512 -dim 8 -radius 1 -seed 42)

# ---------------------------------------------------------------------------
# restart: boot, ingest, SIGTERM (graceful drain + final checkpoint), restart
# from the checkpoint, ingest more, verify the whole history bit-identically.
# ---------------------------------------------------------------------------
phase_restart() {
  local data addr="127.0.0.1:18329"
  data="$(mktemp -d)"; tmpdirs+=("$data")
  local flags=("${spec_flags[@]}" -checkpoint-dir "$data" -checkpoint-interval 2s)

  echo "== restart phase 1: boot + ingest 8 streams x 24 points + verify"
  start_server restart "$addr" "${flags[@]}"
  curl -fsS "http://$addr/healthz" | grep -q "\"version\": \"$e2e_version\"" \
    || { echo "healthz does not carry the ldflags-injected version" >&2; return 1; }
  "$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 24 -batch 6

  echo "== SIGTERM (graceful drain + final checkpoint)"
  stop_server "$srv_pid"
  test -f "$data/MANIFEST" || { echo "no checkpoint manifest written" >&2; return 1; }
  test -d "$data/segments" || { echo "no segment directory written" >&2; return 1; }

  echo "== restart phase 2: restart from checkpoint + ingest 16 more + verify"
  start_server restart "$addr" "${flags[@]}"
  # -from 24: the loadgen replays points [0,24) into its shadow pool locally,
  # sends [24,40) to the server, and then requires the server's estimates at
  # t=40 to be bit-identical — which only holds if the restart resumed every
  # stream exactly where the killed process left it.
  "$bin/privreg-loadgen" -addr "http://$addr" -streams 8 -points 16 -from 24 -batch 4

  echo "== graceful shutdown"
  stop_server "$srv_pid"
  echo "e2e restart OK: restart from checkpoint is bit-identical"
}

# ---------------------------------------------------------------------------
# churn: the bounded-memory spill store under 4x-cap skewed load. -store-cap
# 16 under 64 Zipf-skewed streams keeps the store constantly evicting cold
# streams to segment files and faulting them back in; kill mid-churn,
# restart, verify hot and cold streams alike.
# ---------------------------------------------------------------------------
phase_churn() {
  local data addr="127.0.0.1:18330"
  data="$(mktemp -d)"; tmpdirs+=("$data")
  local flags=("${spec_flags[@]}" -checkpoint-dir "$data" -checkpoint-interval 2s -store-cap 16)

  echo "== churn phase 1: 64 streams over a 16-stream resident cap, skewed"
  start_server churn "$addr" "${flags[@]}"
  "$bin/privreg-loadgen" -addr "http://$addr" -streams 64 -points 24 -batch 6 -skew 1.2

  local resident spilled segs streams
  resident="$(stat_field "$addr" Resident)"
  spilled="$(stat_field "$addr" Spilled)"
  echo "residency after churn: resident=$resident spilled=$spilled (cap 16)"
  [ "$resident" -le 16 ] || { echo "resident $resident exceeds the store cap 16" >&2; return 1; }
  [ "$spilled" -ge 1 ] || { echo "no streams spilled under 4x-cap load" >&2; return 1; }

  echo "== kill mid-churn (drain flushes dirty segments + manifest)"
  stop_server "$srv_pid"
  test -f "$data/MANIFEST" || { echo "no manifest written" >&2; return 1; }
  segs=$(ls "$data/segments" | wc -l)
  [ "$segs" -ge 64 ] || { echo "only $segs segment files for 64 streams" >&2; return 1; }

  echo "== churn phase 2: restart from manifest + more skewed traffic + verify"
  start_server churn "$addr" "${flags[@]}"
  # Restore is lazy: before any traffic, no stream state is resident.
  resident="$(stat_field "$addr" Resident)"
  streams="$(stat_field "$addr" Streams)"
  [ "$streams" -eq 64 ] || { echo "restart registered $streams streams, want 64" >&2; return 1; }
  [ "$resident" -eq 0 ] || { echo "restart faulted $resident streams in eagerly, want lazy restore" >&2; return 1; }
  # The shadow pool replays the full skewed history [0, target(i, 32)) per
  # stream; estimates must be bit-identical across cap-evictions AND the
  # restart, for hot and cold streams alike.
  "$bin/privreg-loadgen" -addr "http://$addr" -streams 64 -points 8 -from 24 -batch 4 -skew 1.2

  echo "== graceful shutdown"
  stop_server "$srv_pid"
  echo "e2e churn OK: spill-store churn + restart is bit-identical"
}

# ---------------------------------------------------------------------------
# wire: the same restart contract over the binary protocol. Observes and
# estimate verification both ride wire frames; the bit-identical verdict
# proves the wire decode path applies exactly the same floats in exactly the
# same order as the JSON path and that drain flushes every pending wire ack.
# ---------------------------------------------------------------------------
phase_wire() {
  local data http="127.0.0.1:18331" wire="127.0.0.1:18332"
  data="$(mktemp -d)"; tmpdirs+=("$data")
  local flags=(-wire-addr "$wire" "${spec_flags[@]}"
    -checkpoint-dir "$data" -checkpoint-interval 2s)

  echo "== wire phase 1: binary ingest 8 streams x 24 points + verify"
  start_server wire "$http" "${flags[@]}"
  "$bin/privreg-loadgen" -addr "http://$http" -proto binary -wire-addr "$wire" \
    -streams 8 -points 24 -batch 6

  echo "== SIGTERM mid-history (drain flushes pending wire acks + checkpoint)"
  stop_server "$srv_pid"
  test -f "$data/MANIFEST" || { echo "no manifest written by wire phase" >&2; return 1; }

  echo "== wire phase 2: restart + binary ingest 16 more points + verify"
  start_server wire "$http" "${flags[@]}"
  "$bin/privreg-loadgen" -addr "http://$http" -proto binary -wire-addr "$wire" \
    -streams 8 -points 16 -from 24 -batch 4

  echo "== graceful shutdown"
  stop_server "$srv_pid"
  echo "e2e wire OK: binary-protocol restart is bit-identical"
}

# ---------------------------------------------------------------------------
# cluster: 3 nodes on one consistent-hash ring. Ring-aware binary ingest
# (each stream routed client-side to its owner), then a second churn wave
# through a single entry node while a member is SIGTERMed mid-wave — its
# graceful leave hands every owned stream's segments to the survivors and
# rebalances the ring. The loadgen's shadow pool never hears about any of
# this: estimates must stay bit-identical through seals, forwards, and the
# ownership flip, because the cluster never lets two nodes apply points to
# one stream.
# ---------------------------------------------------------------------------
phase_cluster() {
  local ha="127.0.0.1:18333" wa="127.0.0.1:18334"
  local hb="127.0.0.1:18335" wb="127.0.0.1:18336"
  local hc="127.0.0.1:18337" wc_="127.0.0.1:18338"
  local peers="a=$ha/$wa,b=$hb/$wb,c=$hc/$wc_"

  echo "== cluster: booting 3 nodes (ring v1)"
  start_server node_a "$ha" -wire-addr "$wa" -node-id a -peers "$peers" "${spec_flags[@]}"
  start_server node_b "$hb" -wire-addr "$wb" -node-id b -peers "$peers" "${spec_flags[@]}"
  start_server node_c "$hc" -wire-addr "$wc_" -node-id c -peers "$peers" "${spec_flags[@]}"

  for addr in "$ha" "$hb" "$hc"; do
    curl -fsS "http://$addr/v1/ring" | grep -q '"version": 1' \
      || { echo "node at $addr does not serve ring v1" >&2; return 1; }
    curl -fsS "http://$addr/readyz" | grep -q '"status": "ready"' \
      || { echo "node at $addr is not ready" >&2; return 1; }
  done

  echo "== cluster wave 1: ring-aware binary ingest, 48 skewed streams"
  "$bin/privreg-loadgen" -addr "http://$ha" -cluster -proto binary \
    -streams 48 -points 12 -batch 4 -skew 1.2

  echo "== cluster wave 2: churn via one entry node, kill node c mid-wave"
  # Paced so the wave is still in flight when the kill lands. Node a forwards
  # misrouted requests; while c drains, its streams answer retryable 503s,
  # then the handoff flips ownership to the survivors.
  "$bin/privreg-loadgen" -addr "http://$ha" \
    -streams 48 -points 12 -from 12 -batch 4 -skew 1.2 -rate 10 &
  local lg_pid=$!
  sleep 0.4
  stop_server "$pid_node_c"
  wait "$lg_pid" || { echo "loadgen failed across the node-c leave" >&2; return 1; }

  echo "== cluster: survivors rebalanced (ring v2, 2 members)"
  for addr in "$ha" "$hb"; do
    curl -fsS "http://$addr/v1/ring" | grep -q '"version": 2' \
      || { echo "survivor at $addr did not adopt ring v2" >&2; return 1; }
  done
  curl -fsS "http://$ha/v1/stats" | grep -q '"members": 2' \
    || { echo "node a stats do not show 2 members" >&2; return 1; }
  curl -fsS "http://$ha/v1/stats" | grep -q "\"version\": \"$e2e_version\"" \
    || { echo "stats do not carry the ldflags-injected version" >&2; return 1; }

  echo "== cluster wave 3: ring-aware ingest on the rebalanced ring + verify"
  # The full history [0, 32) per hot stream — wave 1 (ring-aware), wave 2
  # (forwarded, across the leave), wave 3 (ring-aware on ring v2) — must be
  # bit-identical to the shadow pool on the 2-node cluster.
  "$bin/privreg-loadgen" -addr "http://$ha" -cluster -proto binary \
    -streams 48 -points 8 -from 24 -batch 4 -skew 1.2

  echo "== graceful shutdown"
  stop_server "$pid_node_a"
  stop_server "$pid_node_b"
  echo "e2e cluster OK: kill-mid-churn handoff is bit-identical"
}

# ---------------------------------------------------------------------------
# unclean: self-healing. 3 nodes with gossip failure detection (probe 100ms,
# suspicion 500ms) and replication factor 2, so every applied batch ships to
# a warm standby before its ack. A member is kill -9ed mid-wave — no drain,
# no handoff, no goodbye. The survivors' detectors must confirm the death and
# independently converge on ring v+1, promoting their standby copies and
# replaying the pre-ack batch queue, with no operator action. The loadgen
# rides the outage on retries (503/not-owner are retryable) and its
# conditional offsets make those retries exactly-once, so the final verify
# must be bit-identical for every stream — including those the dead node
# owned.
# ---------------------------------------------------------------------------
phase_unclean() {
  local ha="127.0.0.1:18339" wa="127.0.0.1:18340"
  local hb="127.0.0.1:18341" wb="127.0.0.1:18342"
  local hc="127.0.0.1:18343" wc_="127.0.0.1:18344"
  local peers="a=$ha/$wa,b=$hb/$wb,c=$hc/$wc_"
  local detector_flags=(-replicas 2 -probe-interval 100ms -probe-timeout 50ms
    -suspicion-timeout 500ms)

  echo "== unclean: booting 3 nodes (ring v1, failure detection on, replicas 2)"
  start_server uc_a "$ha" -wire-addr "$wa" -node-id a -peers "$peers" "${detector_flags[@]}" "${spec_flags[@]}"
  start_server uc_b "$hb" -wire-addr "$wb" -node-id b -peers "$peers" "${detector_flags[@]}" "${spec_flags[@]}"
  start_server uc_c "$hc" -wire-addr "$wc_" -node-id c -peers "$peers" "${detector_flags[@]}" "${spec_flags[@]}"

  for addr in "$ha" "$hb" "$hc"; do
    curl -fsS "http://$addr/v1/cluster/members" | grep -q '"failure_detection": true'       || { echo "node at $addr does not report failure detection on" >&2; return 1; }
  done

  echo "== unclean wave 1: ring-aware binary ingest, 48 skewed streams"
  "$bin/privreg-loadgen" -addr "http://$ha" -cluster -proto binary     -streams 48 -points 12 -batch 4 -skew 1.2

  echo "== unclean wave 2: churn via one entry node, kill -9 node c mid-wave"
  "$bin/privreg-loadgen" -addr "http://$ha"     -streams 48 -points 12 -from 12 -batch 4 -skew 1.2 -rate 10 &
  local lg_pid=$!
  sleep 0.4
  kill -9 "$pid_uc_c"
  wait "$pid_uc_c" 2>/dev/null || true
  local killed_at=$SECONDS
  wait "$lg_pid" || { echo "loadgen failed across the unclean kill of node c" >&2; return 1; }

  echo "== unclean: survivors must self-heal to ring v2 (no operator action)"
  # Suspicion is 500ms; allow generous CI slack on top of the wave itself.
  local deadline=$((killed_at + 20)) healed=0
  while [ $SECONDS -lt $deadline ]; do
    if curl -fsS "http://$ha/v1/ring" | grep -q '"version": 2'       && curl -fsS "http://$hb/v1/ring" | grep -q '"version": 2'; then
      healed=1
      break
    fi
    sleep 0.2
  done
  [ "$healed" -eq 1 ] || { echo "survivors never converged on ring v2 after the kill -9" >&2; return 1; }
  echo "   ring v2 adopted by both survivors $((SECONDS - killed_at))s after the kill"
  curl -fsS "http://$ha/v1/cluster/members" | grep -Eq '"state": "(dead|left)"'     || { echo "node a's member table does not show c dead/left" >&2; return 1; }
  curl -fsS "http://$ha/readyz" | grep -q '"members"'     || { echo "readyz does not carry the membership view" >&2; return 1; }

  echo "== unclean wave 3: ingest on the healed ring + bit-identical verify"
  # The full history [0, 32) per hot stream — including every batch acked by
  # the dead node, which must have survived via its pre-ack standby copies —
  # is verified against the shadow pool.
  "$bin/privreg-loadgen" -addr "http://$ha" -cluster -proto binary     -streams 48 -points 8 -from 24 -batch 4 -skew 1.2

  echo "== graceful shutdown"
  stop_server "$pid_uc_a"
  stop_server "$pid_uc_b"
  echo "e2e unclean OK: kill -9 self-healing is bit-identical"
}

for phase in $phases; do
  case "$phase" in
    restart) phase_restart ;;
    churn) phase_churn ;;
    wire) phase_wire ;;
    cluster) phase_cluster ;;
    unclean) phase_unclean ;;
    *) echo "unknown E2E phase: $phase (want restart|churn|wire|cluster|unclean)" >&2; exit 2 ;;
  esac
done

echo "e2e smoke OK: $phases"
