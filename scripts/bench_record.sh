#!/usr/bin/env sh
# Refresh the committed bench baseline (BENCH_baseline.json) after an
# intentional perf change — the recipe from docs/PERFORMANCE.md, encoded:
# two full quick-sweep runs, normalized to the per-run minimum (maximum for
# rate metrics) so the committed document is the run least disturbed by the
# machine.
#
# Usage:
#
#	scripts/bench_record.sh [output]       # default output: BENCH_baseline.json
#
# Run from the repository root, on hardware no faster than the CI runner
# class (see docs/PERFORMANCE.md: a baseline recorded on a fast machine
# makes the 1.5x CI gate fail on every PR), and note the hardware in the PR
# description when committing the result.
set -eu

out=${1:-BENCH_baseline.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench_record: run 1/2 ..." >&2
go run ./cmd/privreg-bench -json -quick > "$tmp/bench_1.json"
echo "bench_record: run 2/2 ..." >&2
go run ./cmd/privreg-bench -json -quick > "$tmp/bench_2.json"
go run ./cmd/privreg-benchdiff -normalize "$tmp/bench_1.json,$tmp/bench_2.json" > "$out"
echo "bench_record: wrote $out" >&2
