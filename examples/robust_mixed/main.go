// Robust private incremental regression when only part of the stream comes
// from a well-behaved domain (§5.2 of the paper).
//
// The projected mechanism's dimension-free guarantees need covariates from a
// small-Gaussian-width domain G (here: sparse vectors). Real streams are
// messier: some fraction of arrivals are dense outliers. The §5.2 extension
// keeps the guarantee for the in-domain points by consulting a membership
// oracle and neutralizing rejected points *before* they touch private state —
// which, unlike simply skipping them, preserves the privacy accounting.
//
// Run with:
//
//	go run ./examples/robust_mixed
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privreg"
)

const (
	dim      = 200
	sparsity = 4
	horizon  = 300
	epsilon  = 1.0
	delta    = 1e-6
	outlierP = 0.3 // fraction of dense, out-of-domain covariates
)

func main() {
	cons := privreg.L1Constraint(dim, 1.0)
	domain := privreg.SparseDomain(dim, sparsity)

	// The oracle accepts covariates that are (close to) sparse.
	oracle := func(x []float64) bool {
		nz := 0
		for _, v := range x {
			if v != 0 {
				nz++
			}
		}
		return nz <= 2*sparsity
	}

	cfg := privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: epsilon, Delta: delta},
		Horizon:    horizon,
		Constraint: cons,
		Domain:     domain,
		Seed:       29,
	}
	robust, err := privreg.NewRobustProjectedRegression(cfg, oracle)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := privreg.NewProjectedRegression(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth supported on a few coordinates.
	truth := make([]float64, dim)
	truth[3], truth[57], truth[120], truth[199] = 0.25, -0.25, 0.25, 0.25

	rng := rand.New(rand.NewSource(31))
	var inXs [][]float64
	var inYs []float64
	outliers := 0
	for t := 1; t <= horizon; t++ {
		var x []float64
		if rng.Float64() < outlierP {
			x = denseCovariate(rng)
			outliers++
		} else {
			x = sparseCovariate(rng)
		}
		var y float64
		for i, v := range x {
			y += v * truth[i]
		}
		y += 0.02 * rng.NormFloat64()
		if oracle(x) {
			inXs = append(inXs, x)
			inYs = append(inYs, y)
		}
		if err := robust.Observe(x, y); err != nil {
			log.Fatal(err)
		}
		if err := plain.Observe(x, y); err != nil {
			log.Fatal(err)
		}
	}

	thetaRobust, err := robust.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	thetaPlain, err := plain.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	excessRobust, _ := privreg.ExcessRisk(cons, inXs, inYs, thetaRobust)
	excessPlain, _ := privreg.ExcessRisk(cons, inXs, inYs, thetaPlain)

	fmt.Printf("stream: %d points, %d dense outliers (%.0f%%), d=%d, k=%d\n\n",
		horizon, outliers, 100*float64(outliers)/float64(horizon), dim, sparsity)
	fmt.Println("excess empirical risk measured on the in-domain points only:")
	fmt.Printf("  %-28s %.4f\n", robust.Name(), excessRobust)
	fmt.Printf("  %-28s %.4f\n", plain.Name(), excessPlain)
	fmt.Println("\nthe robust mechanism neutralizes out-of-domain covariates before they reach")
	fmt.Println("private state, so its guarantee on the in-domain risk survives the contamination")
}

func sparseCovariate(rng *rand.Rand) []float64 {
	x := make([]float64, dim)
	perm := rng.Perm(dim)
	mag := 1 / math.Sqrt(float64(sparsity))
	for i := 0; i < sparsity; i++ {
		if rng.Intn(2) == 0 {
			x[perm[i]] = mag
		} else {
			x[perm[i]] = -mag
		}
	}
	return x
}

func denseCovariate(rng *rand.Rand) []float64 {
	x := make([]float64, dim)
	var norm float64
	for i := range x {
		x[i] = rng.NormFloat64()
		norm += x[i] * x[i]
	}
	norm = math.Sqrt(norm)
	for i := range x {
		x[i] /= norm
	}
	return x
}
