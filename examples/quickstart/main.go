// Quickstart: maintain a differentially private estimate of a linear
// regression parameter over a data stream.
//
// At every timestep a new covariate/response pair arrives; the mechanism
// updates its private state and can publish, at any time, an estimate of the
// best-fitting parameter over everything seen so far. The entire sequence of
// published estimates is (ε, δ)-differentially private with respect to
// changing any single observation in the stream.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privreg"
)

func main() {
	const (
		dim     = 10     // number of covariates
		horizon = 100000 // stream length
		epsilon = 2.0
		delta   = 1e-6
	)

	// The regression parameter is constrained to the unit Euclidean ball
	// (ridge-style constraint).
	cons := privreg.L2Constraint(dim, 1.0)

	private, err := privreg.NewGradientRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: epsilon, Delta: delta},
		Horizon:    horizon,
		Constraint: cons,
		Seed:       42,
		WarmStart:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := privreg.NewNonPrivateBaseline(privreg.Config{Horizon: horizon, Constraint: cons})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic ground truth: y = <x, θ*> + noise.
	rng := rand.New(rand.NewSource(1))
	truth := make([]float64, dim)
	truth[0], truth[3], truth[7] = 0.5, -0.3, 0.2

	var xs [][]float64
	var ys []float64
	fmt.Printf("streaming %d observations with (ε=%g, δ=%g)\n\n", horizon, epsilon, delta)
	fmt.Printf("%8s  %14s  %16s  %14s\n", "t", "excess(priv)", "excess(constant0)", "excess(exact)")
	for t := 1; t <= horizon; t++ {
		x := make([]float64, dim)
		var norm float64
		for i := range x {
			x[i] = rng.NormFloat64()
			norm += x[i] * x[i]
		}
		// Normalize into the unit ball, as the privacy analysis assumes.
		norm = math.Sqrt(norm)
		if norm > 1 {
			for i := range x {
				x[i] /= norm
			}
		}
		var y float64
		for i := range x {
			y += x[i] * truth[i]
		}
		y += 0.02 * rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)

		if err := private.Observe(x, y); err != nil {
			log.Fatal(err)
		}
		if err := exact.Observe(x, y); err != nil {
			log.Fatal(err)
		}

		// Publish at a few checkpoints. The data-independent constant-0 predictor
		// is shown for scale: early on the privacy noise dominates and the private
		// estimate is no better than it, but as the stream grows the private
		// estimate pulls far ahead while the constant predictor's excess keeps
		// growing linearly.
		if t == 5000 || t == 25000 || t == horizon {
			thetaPriv, err := private.Estimate()
			if err != nil {
				log.Fatal(err)
			}
			thetaExact, err := exact.Estimate()
			if err != nil {
				log.Fatal(err)
			}
			excessPriv, _ := privreg.ExcessRisk(cons, xs, ys, thetaPriv)
			excessExact, _ := privreg.ExcessRisk(cons, xs, ys, thetaExact)
			excessZero, _ := privreg.ExcessRisk(cons, xs, ys, make([]float64, dim))
			fmt.Printf("%8d  %14.2f  %16.2f  %14.2f\n", t, excessPriv, excessZero, excessExact)
		}
	}
	fmt.Println("\nevery printed estimate was computed from differentially private state only")
}
