// Quickstart: maintain a differentially private estimate of a linear
// regression parameter over a data stream.
//
// At every timestep a new covariate/response pair arrives; the mechanism
// updates its private state and can publish, at any time, an estimate of the
// best-fitting parameter over everything seen so far. The entire sequence of
// published estimates is (ε, δ)-differentially private with respect to
// changing any single observation in the stream.
//
// The example uses the serving-grade construction path: mechanisms are
// selected from the registry by name (privreg.New) and configured with
// functional options, points are ingested in batches, and the estimator is
// checkpointed and restored mid-stream — the restored run continues exactly
// where the original left off.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privreg"
)

func main() {
	const (
		dim     = 10    // number of covariates
		horizon = 60000 // stream length
		epsilon = 2.0
		delta   = 1e-6
		batch   = 100 // points per ingestion batch
	)

	// The regression parameter is constrained to the unit Euclidean ball
	// (ridge-style constraint).
	cons := privreg.L2Constraint(dim, 1.0)

	newEstimator := func(name string) privreg.Estimator {
		est, err := privreg.New(name,
			privreg.WithEpsilonDelta(epsilon, delta),
			privreg.WithHorizon(horizon),
			privreg.WithConstraint(cons),
			privreg.WithSeed(42),
			privreg.WithWarmStart(true),
		)
		if err != nil {
			log.Fatal(err)
		}
		return est
	}
	private := newEstimator("gradient")
	exact := newEstimator("nonprivate")

	// Synthetic ground truth: y = <x, θ*> + noise.
	rng := rand.New(rand.NewSource(1))
	truth := make([]float64, dim)
	truth[0], truth[3], truth[7] = 0.5, -0.3, 0.2
	nextBatch := func(n int) ([][]float64, []float64) {
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for j := range xs {
			x := make([]float64, dim)
			var norm float64
			for i := range x {
				x[i] = rng.NormFloat64()
				norm += x[i] * x[i]
			}
			// Normalize into the unit ball, as the privacy analysis assumes.
			if norm = math.Sqrt(norm); norm > 1 {
				for i := range x {
					x[i] /= norm
				}
			}
			var y float64
			for i := range x {
				y += x[i] * truth[i]
			}
			xs[j] = x
			ys[j] = y + 0.02*rng.NormFloat64()
		}
		return xs, ys
	}

	var xs [][]float64
	var ys []float64
	fmt.Printf("streaming %d observations with (ε=%g, δ=%g), batches of %d\n\n", horizon, epsilon, delta, batch)
	fmt.Printf("%8s  %14s  %16s  %14s\n", "t", "excess(priv)", "excess(constant0)", "excess(exact)")
	for t := 0; t < horizon; t += batch {
		bx, by := nextBatch(batch)
		xs = append(xs, bx...)
		ys = append(ys, by...)

		// Batched ingestion: validated up front, bit-identical to a scalar
		// Observe loop, with the running-sum aggregation amortized per batch.
		if err := private.ObserveBatch(bx, by); err != nil {
			log.Fatal(err)
		}
		if err := exact.ObserveBatch(bx, by); err != nil {
			log.Fatal(err)
		}

		// Midway through the stream, checkpoint and restore: the restored
		// estimator continues bit-identically, so a process restart is
		// invisible in the published sequence (see docs/SERVING.md).
		if t+batch == horizon/2 {
			blob, err := private.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			restored := newEstimator(private.Mechanism())
			if err := restored.UnmarshalBinary(blob); err != nil {
				log.Fatal(err)
			}
			private = restored
			fmt.Printf("%8d  -- checkpointed (%d bytes) and restored; continuing --\n", t+batch, len(blob))
		}

		// Publish at a few checkpoints. The data-independent constant-0
		// predictor is shown for scale: early on the privacy noise dominates,
		// but as the stream grows the private estimate pulls far ahead while
		// the constant predictor's excess keeps growing linearly.
		if done := t + batch; done == 5000 || done == 25000 || done == horizon {
			thetaPriv, err := private.Estimate()
			if err != nil {
				log.Fatal(err)
			}
			thetaExact, err := exact.Estimate()
			if err != nil {
				log.Fatal(err)
			}
			excessPriv, _ := privreg.ExcessRisk(cons, xs, ys, thetaPriv)
			excessExact, _ := privreg.ExcessRisk(cons, xs, ys, thetaExact)
			excessZero, _ := privreg.ExcessRisk(cons, xs, ys, make([]float64, dim))
			fmt.Printf("%8d  %14.2f  %16.2f  %14.2f\n", done, excessPriv, excessZero, excessExact)
		}
	}
	fmt.Println("\nevery printed estimate was computed from differentially private state only")
}
