// Private incremental regression on an ongoing mobile survey with drifting
// associations — the motivating scenario from the paper's introduction.
//
// A data scientist keeps a linear model of how respondents' profile features
// relate to an outcome, updating it as survey responses stream in from mobile
// devices. The relationship drifts over time (new behaviours, seasons, app
// versions), so the model must be continuously re-estimated — yet no sequence
// of published coefficient updates may reveal whether any single person
// responded to the survey. Event-level differential privacy over the stream is
// exactly that guarantee.
//
// The example compares three policies over the same drifting stream:
//
//   - the generic transformation (recompute a private batch ERM every τ steps),
//   - the gradient mechanism (Algorithm PRIVINCREG1, updated every step), and
//   - the exact non-private solver (utility ceiling, not releasable).
//
// Run with:
//
//	go run ./examples/mobile_survey
package main

import (
	"fmt"
	"log"
	"math/rand"

	"privreg"
)

const (
	dim     = 12
	horizon = 1500
	epsilon = 1.0
	delta   = 1e-6
)

func main() {
	cons := privreg.L2Constraint(dim, 1.0)
	base := privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: epsilon, Delta: delta},
		Horizon:    horizon,
		Constraint: cons,
		Seed:       19,
		WarmStart:  true,
	}

	gradient, err := privreg.NewGradientRegression(base)
	if err != nil {
		log.Fatal(err)
	}
	generic, err := privreg.NewGenericERM(base, privreg.SquaredLoss)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := privreg.NewNonPrivateBaseline(privreg.Config{Horizon: horizon, Constraint: cons})
	if err != nil {
		log.Fatal(err)
	}

	// The association between profile features and outcome drifts from thetaA
	// to thetaB over the course of the survey.
	thetaA := make([]float64, dim)
	thetaB := make([]float64, dim)
	thetaA[0], thetaA[1] = 0.6, 0.3
	thetaB[4], thetaB[5] = -0.5, 0.4

	rng := rand.New(rand.NewSource(23))
	var xs [][]float64
	var ys []float64

	fmt.Printf("ongoing survey: %d responses, %d profile features, (ε=%g, δ=%g)\n\n", horizon, dim, epsilon, delta)
	fmt.Printf("%6s  %16s  %16s  %16s\n", "t", "excess(gradient)", "excess(generic)", "excess(exact)")
	for t := 1; t <= horizon; t++ {
		alpha := float64(t) / float64(horizon)
		x := profile(rng)
		var y float64
		for i := range x {
			y += x[i] * ((1-alpha)*thetaA[i] + alpha*thetaB[i])
		}
		y += 0.03 * rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)

		for _, est := range []privreg.Estimator{gradient, generic, exact} {
			if err := est.Observe(x, y); err != nil {
				log.Fatal(err)
			}
		}

		if t%300 == 0 || t == horizon {
			row := []float64{}
			for _, est := range []privreg.Estimator{gradient, generic, exact} {
				theta, err := est.Estimate()
				if err != nil {
					log.Fatal(err)
				}
				excess, err := privreg.ExcessRisk(cons, xs, ys, theta)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, excess)
			}
			fmt.Printf("%6d  %16.3f  %16.3f  %16.3f\n", t, row[0], row[1], row[2])
		}
	}
	fmt.Println("\nthe private mechanisms track the drifting association while every published")
	fmt.Println("update protects individual survey responses with event-level differential privacy")
}

// profile draws a respondent feature vector inside the unit ball (a mix of a
// few informative features and background noise).
func profile(rng *rand.Rand) []float64 {
	x := make([]float64, dim)
	var norm float64
	for i := range x {
		x[i] = rng.NormFloat64()
		norm += x[i] * x[i]
	}
	scale := 1.0
	if norm > 1 {
		scale = 1 / (1 + norm)
	}
	for i := range x {
		x[i] *= scale
	}
	return x
}
