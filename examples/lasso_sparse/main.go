// High-dimensional private Lasso over a stream of sparse covariates.
//
// This is the regime Section 5 of the paper targets: the ambient dimension is
// large (d = 1000 here), but the covariates are sparse and the constraint set
// is an L1 ball, so the combined Gaussian width W = w(X) + w(C) is tiny
// compared to √d. The projected mechanism (Algorithm PRIVINCREG2) sketches the
// stream into m ≪ d dimensions chosen from W, adds its privacy noise there,
// and lifts solutions back — yielding far less noise than the √d-scaled
// gradient mechanism (Algorithm PRIVINCREG1), which is also run for
// comparison.
//
// Run with:
//
//	go run ./examples/lasso_sparse
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privreg"
)

func main() {
	const (
		dim      = 1000
		sparsity = 5
		horizon  = 400
		epsilon  = 1.0
		delta    = 1e-6
	)

	cons := privreg.L1Constraint(dim, 1.0) // Lasso constraint
	domain := privreg.SparseDomain(dim, sparsity)
	fmt.Printf("d=%d, k=%d-sparse covariates\n", dim, sparsity)
	fmt.Printf("Gaussian widths: w(C)=%.2f (L1 ball), w(X)=%.2f (sparse), √d=%.2f\n\n",
		cons.GaussianWidth(), domain.GaussianWidth(), math.Sqrt(float64(dim)))

	projected, err := privreg.NewProjectedRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: epsilon, Delta: delta},
		Horizon:    horizon,
		Constraint: cons,
		Domain:     domain,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	gradient, err := privreg.NewGradientRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: epsilon, Delta: delta},
		Horizon:    horizon,
		Constraint: cons,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sparse ground truth inside the L1 ball.
	rng := rand.New(rand.NewSource(3))
	truth := make([]float64, dim)
	support := []int{10, 200, 431, 670, 999}
	for _, i := range support {
		truth[i] = 0.18
	}

	var xs [][]float64
	var ys []float64
	for t := 1; t <= horizon; t++ {
		x := sparseCovariate(rng, dim, sparsity)
		var y float64
		for i, v := range x {
			y += v * truth[i]
		}
		y += 0.02 * rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)
		if err := projected.Observe(x, y); err != nil {
			log.Fatal(err)
		}
		if err := gradient.Observe(x, y); err != nil {
			log.Fatal(err)
		}
	}

	thetaProj, err := projected.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	thetaGrad, err := gradient.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	excessProj, _ := privreg.ExcessRisk(cons, xs, ys, thetaProj)
	excessGrad, _ := privreg.ExcessRisk(cons, xs, ys, thetaGrad)

	fmt.Printf("after %d observations:\n", horizon)
	fmt.Printf("  %-34s excess risk = %.4f\n", projected.Name()+" (Algorithm 3, sketched)", excessProj)
	fmt.Printf("  %-34s excess risk = %.4f\n", gradient.Name()+" (Algorithm 2, full-dim)", excessGrad)
	fmt.Println("\nthe projected mechanism's noise scales with the Gaussian width, not with √d,")
	fmt.Println("which is why it is the right tool for high-dimensional sparse problems")
}

func sparseCovariate(rng *rand.Rand, dim, k int) []float64 {
	x := make([]float64, dim)
	perm := rng.Perm(dim)
	mag := 1 / math.Sqrt(float64(k))
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 {
			x[perm[i]] = mag
		} else {
			x[perm[i]] = -mag
		}
	}
	return x
}
