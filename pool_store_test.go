package privreg

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// spillPoolOptions is testPoolOptions plus the bounded-memory store.
func spillPoolOptions(seed int64, dir string, cap int) []Option {
	return append(testPoolOptions(seed), WithSpillDir(dir), WithStoreCap(cap))
}

// TestSpillPoolMatchesResidentPool is the acceptance property test of the
// stream-store engine: a pool capped at K resident estimators serving N ≫ K
// streams must stay within its residency bound and produce estimates
// bit-identical to an uncapped, fully-resident pool fed the same interleaved
// operation sequence — across evictions, fault-ins, drops, and full restarts
// from the on-disk manifest.
func TestSpillPoolMatchesResidentPool(t *testing.T) {
	const (
		streams     = 12
		cap         = 3
		rounds      = 3
		opsPerRound = 140
		horizon     = 64 // from testPoolOptions
	)
	dir := t.TempDir()
	capped, err := NewPool("gradient", spillPoolOptions(9, dir, cap)...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPool("gradient", testPoolOptions(9)...)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic op stream from a bare LCG, so failures replay exactly.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	counts := make(map[string]int)

	for round := 0; round < rounds; round++ {
		for op := 0; op < opsPerRound; op++ {
			id := fmt.Sprintf("st-%02d", next(streams))
			switch next(6) {
			case 0, 1, 2: // scalar observe
				i := counts[id]
				if i+1 > horizon {
					continue
				}
				x, y := syntheticPoint(i, 4)
				if err := capped.Observe(id, x, y); err != nil {
					t.Fatalf("capped observe %s[%d]: %v", id, i, err)
				}
				if err := ref.Observe(id, x, y); err != nil {
					t.Fatalf("ref observe %s[%d]: %v", id, i, err)
				}
				counts[id]++
			case 3: // batch observe
				i := counts[id]
				if i+3 > horizon {
					continue
				}
				var xs [][]float64
				var ys []float64
				for k := 0; k < 3; k++ {
					x, y := syntheticPoint(i+k, 4)
					xs = append(xs, x)
					ys = append(ys, y)
				}
				if err := capped.ObserveBatch(id, xs, ys); err != nil {
					t.Fatalf("capped batch %s[%d]: %v", id, i, err)
				}
				if err := ref.ObserveBatch(id, xs, ys); err != nil {
					t.Fatalf("ref batch %s[%d]: %v", id, i, err)
				}
				counts[id] += 3
			case 4: // estimate (forces fault-in of spilled streams)
				a, aerr := capped.Estimate(id)
				b, berr := ref.Estimate(id)
				if (aerr == nil) != (berr == nil) {
					t.Fatalf("estimate %s: capped err=%v, ref err=%v", id, aerr, berr)
				}
				if aerr != nil {
					if !errors.Is(aerr, ErrUnknownStream) || !errors.Is(berr, ErrUnknownStream) {
						t.Fatalf("estimate %s: unexpected errors %v / %v", id, aerr, berr)
					}
					continue
				}
				sameVector(t, "mid-run estimate "+id, b, a)
			case 5: // drop
				if da, db := capped.Drop(id), ref.Drop(id); da != db {
					t.Fatalf("drop %s: capped=%v ref=%v", id, da, db)
				}
				counts[id] = 0
			}
			if st := capped.Stats(); st.Resident > cap {
				t.Fatalf("round %d op %d: resident %d exceeds cap %d", round, op, st.Resident, cap)
			}
			if na, aok := capped.LenOK(id); true {
				if nb, bok := ref.LenOK(id); na != nb || aok != bok {
					t.Fatalf("LenOK %s: capped (%d,%v), ref (%d,%v)", id, na, aok, nb, bok)
				}
			}
		}
		// Restart: flush the capped pool's dirty segments + manifest, then
		// reopen a brand-new pool over the same directory. The reference pool
		// lives on uninterrupted — the restart must be invisible.
		if _, err := capped.Flush(); err != nil {
			t.Fatalf("round %d flush: %v", round, err)
		}
		capped, err = NewPool("gradient", spillPoolOptions(9, dir, cap)...)
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		st := capped.Stats()
		if st.Streams != ref.Stats().Streams {
			t.Fatalf("round %d reopen: %d streams, ref has %d", round, st.Streams, ref.Stats().Streams)
		}
		if st.Resident != 0 {
			t.Fatalf("round %d reopen: %d resident streams, want lazy restore (0)", round, st.Resident)
		}
	}

	// Final audit: identical stream sets, lengths, and bit-identical estimates.
	gotIDs, wantIDs := capped.Streams(), ref.Streams()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("stream sets differ: capped %v, ref %v", gotIDs, wantIDs)
	}
	for i, id := range wantIDs {
		if gotIDs[i] != id {
			t.Fatalf("stream sets differ: capped %v, ref %v", gotIDs, wantIDs)
		}
		if got, want := capped.Len(id), ref.Len(id); got != want {
			t.Fatalf("stream %s: capped len %d, ref len %d", id, got, want)
		}
		if ref.Len(id) == 0 {
			continue
		}
		want, err := ref.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := capped.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		sameVector(t, "final estimate "+id, want, got)
	}
	st := capped.Stats()
	if st.FaultIns == 0 || ref.Stats().Evictions != 0 {
		t.Fatalf("the capped pool should have faulted streams in (stats %+v)", st)
	}
}

// TestFlushRewritesOnlyTouchedSegments verifies the O(M) incremental
// checkpoint property: after a full flush of N streams, touching M streams
// and flushing again rewrites exactly M segment files — counted both from
// FlushStats and from the segment directory itself.
func TestFlushRewritesOnlyTouchedSegments(t *testing.T) {
	const n = 24
	dir := t.TempDir()
	// Unbounded residency (cap 0): the disk layer is pure checkpointing here,
	// so segment-write counts are exact — no eviction interleaves. The capped
	// variant of the same property is covered by the store-level flush test.
	p, err := NewPool("gradient", spillPoolOptions(5, dir, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	id := func(i int) string { return fmt.Sprintf("seg-%02d", i) }
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x, y := syntheticPoint(j, 4)
			if err := p.Observe(id(i), x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Streams != n || fs.ManifestBytes == 0 {
		t.Fatalf("first flush = %+v, want manifest over %d streams", fs, n)
	}
	if st := p.Stats(); st.DirtyStreams != 0 {
		t.Fatalf("dirty after flush: %+v", st)
	}

	segSet := func() map[string]bool {
		des, err := os.ReadDir(filepath.Join(dir, "segments"))
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]bool, len(des))
		for _, de := range des {
			out[de.Name()] = true
		}
		return out
	}
	before := segSet()
	if len(before) != n {
		t.Fatalf("%d segment files after full flush, want %d", len(before), n)
	}

	touched := []int{3, 11, 19}
	for _, i := range touched {
		x, y := syntheticPoint(4, 4)
		if err := p.Observe(id(i), x, y); err != nil {
			t.Fatal(err)
		}
	}
	fs, err = p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Segments != len(touched) {
		t.Fatalf("incremental flush rewrote %d segments, want %d (O(touched), not O(%d))", fs.Segments, len(touched), n)
	}
	after := segSet()
	if len(after) != n {
		t.Fatalf("%d segment files after incremental flush, want %d", len(after), n)
	}
	fresh := 0
	for name := range after {
		if !before[name] {
			fresh++
		}
	}
	if fresh != len(touched) {
		t.Fatalf("%d new segment files on disk, want %d", fresh, len(touched))
	}

	// A reopened pool restores lazily from the manifest and matches the live
	// pool bit-identically on both touched and untouched streams.
	q, err := NewPool("gradient", spillPoolOptions(5, dir, 8)...)
	if err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Streams != n || st.Resident != 0 {
		t.Fatalf("reopened stats = %+v, want %d lazy streams", st, n)
	}
	for _, i := range []int{3, 19, 0, 23} {
		want, err := p.Estimate(id(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Estimate(id(i))
		if err != nil {
			t.Fatal(err)
		}
		sameVector(t, "reopened "+id(i), want, got)
	}
}

// TestSpillPoolWarmStartEstimates covers the one case where Estimate is a
// real mutation: with WithWarmStart the optimizer's start point (the cached
// previous estimate) feeds future outputs, so estimate-touched state must
// survive spill/fault-in and restarts for the capped pool to stay
// bit-identical to a resident one.
func TestSpillPoolWarmStartEstimates(t *testing.T) {
	warmOpts := func(extra ...Option) []Option {
		return append([]Option{
			WithEpsilonDelta(1, 1e-6),
			WithHorizon(64),
			WithConstraint(L2Constraint(4, 1)),
			WithSeed(17),
			WithMaxIterations(20),
			WithWarmStart(true),
		}, extra...)
	}
	dir := t.TempDir()
	capped, err := NewPool("gradient", warmOpts(WithSpillDir(dir), WithStoreCap(1))...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPool("gradient", warmOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"warm-a", "warm-b", "warm-c"}
	for round := 0; round < 4; round++ {
		for i, id := range ids {
			x, y := syntheticPoint(round*4+i, 4)
			if err := capped.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
			if err := ref.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
			// Interleaved estimates: each one seeds the next warm start, and
			// with cap 1 every access of a different stream evicts the last.
			a, err := capped.Estimate(id)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.Estimate(id)
			if err != nil {
				t.Fatal(err)
			}
			sameVector(t, fmt.Sprintf("warm round %d %s", round, id), b, a)
		}
		if round == 1 {
			// Mid-run restart: warm-start state must be in the segments.
			if _, err := capped.Flush(); err != nil {
				t.Fatal(err)
			}
			capped, err = NewPool("gradient", warmOpts(WithSpillDir(dir), WithStoreCap(1))...)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolLenOK pins the Len/LenOK contract: LenOK distinguishes an unknown
// stream (0, false) from an empty or short one, while Len stays the
// 0-for-unknown shim.
func TestPoolLenOK(t *testing.T) {
	p, err := NewPool("gradient", testPoolOptions(3)...)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := p.LenOK("ghost"); n != 0 || ok {
		t.Fatalf("LenOK(unknown) = (%d, %v), want (0, false)", n, ok)
	}
	if p.Len("ghost") != 0 {
		t.Fatal("Len(unknown) != 0")
	}
	x, y := syntheticPoint(0, 4)
	if err := p.Observe("a", x, y); err != nil {
		t.Fatal(err)
	}
	if n, ok := p.LenOK("a"); n != 1 || !ok {
		t.Fatalf("LenOK(existing) = (%d, %v), want (1, true)", n, ok)
	}
	p.Drop("a")
	if _, ok := p.LenOK("a"); ok {
		t.Fatal("LenOK(dropped) reported existing")
	}
}

// TestPoolStoreOptionValidation pins the option plumbing: the store options
// are pool-scoped and internally consistent.
func TestPoolStoreOptionValidation(t *testing.T) {
	// A resident cap without a spill target would discard private state.
	if _, err := NewPool("gradient", append(testPoolOptions(1), WithStoreCap(4))...); err == nil {
		t.Fatal("WithStoreCap without WithSpillDir accepted")
	}
	if _, err := NewPool("gradient", append(testPoolOptions(1), WithStoreCap(-1), WithSpillDir(t.TempDir()))...); err == nil {
		t.Fatal("negative store cap accepted")
	}
	if _, err := NewPool("gradient", append(testPoolOptions(1), WithSpillDir(""))...); err == nil {
		t.Fatal("empty spill dir accepted")
	}
	// Single estimators have no stream store.
	if _, err := New("gradient", WithEpsilonDelta(1, 1e-6), WithHorizon(16),
		WithConstraint(L2Constraint(4, 1)), WithSpillDir(t.TempDir())); err == nil {
		t.Fatal("New accepted the pool-scoped WithSpillDir")
	}
	if _, err := New("gradient", WithEpsilonDelta(1, 1e-6), WithHorizon(16),
		WithConstraint(L2Constraint(4, 1)), WithStoreCap(2)); err == nil {
		t.Fatal("New accepted the pool-scoped WithStoreCap")
	}
	// Flush without a spill dir is ErrNotPersistent.
	p, err := NewPool("gradient", testPoolOptions(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("resident Flush = %v, want ErrNotPersistent", err)
	}
	// A spill directory is bound to its mechanism.
	dir := t.TempDir()
	sp, err := NewPool("gradient", spillPoolOptions(1, dir, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	x, y := syntheticPoint(0, 4)
	if err := sp.Observe("a", x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool("nonprivate", WithHorizon(64), WithConstraint(L2Constraint(4, 1)), WithSpillDir(dir)); err == nil {
		t.Fatal("reopening a gradient spill dir as nonprivate accepted")
	}
}

// TestSpillPoolMonolithicCheckpoint verifies the monolithic Checkpoint blob
// of a spill-backed pool equals the fully-resident pool's (spilled streams
// are copied from their segments without fault-in) and restores across store
// backends.
func TestSpillPoolMonolithicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	capped, err := NewPool("gradient", spillPoolOptions(7, dir, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPool("gradient", testPoolOptions(7)...)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		id := fmt.Sprintf("mono-%d", s)
		for j := 0; j < 8; j++ {
			x, y := syntheticPoint(j, 4)
			if err := capped.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
			if err := ref.Observe(id, x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	faultsBefore := capped.Stats().FaultIns
	got, err := capped.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats().FaultIns != faultsBefore {
		t.Fatal("monolithic checkpoint faulted spilled streams in")
	}
	want, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("checkpoint sizes differ: capped %d, resident %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("checkpoints differ at byte %d", i)
		}
	}
	// The blob restores into a spill-backed pool too.
	restored, err := NewPool("gradient", spillPoolOptions(7, t.TempDir(), 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(got); err != nil {
		t.Fatal(err)
	}
	if st := restored.Stats(); st.Streams != 6 || st.Resident > 2 {
		t.Fatalf("restored stats = %+v", st)
	}
	a, err := ref.Estimate("mono-3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Estimate("mono-3")
	if err != nil {
		t.Fatal(err)
	}
	sameVector(t, "restored mono-3", a, b)
}
