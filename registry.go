package privreg

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"privreg/internal/core"
	"privreg/internal/erm"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// MechanismInfo describes one entry of the mechanism registry.
type MechanismInfo struct {
	// Name is the canonical registry name, the value New and NewPool accept.
	Name string
	// Aliases are alternative names New resolves to the same mechanism.
	Aliases []string
	// Summary is a one-line description for CLI help and config tooling.
	Summary string
	// Private reports whether the mechanism consumes a privacy budget.
	Private bool
	// NeedsDomain reports whether WithDomain is required.
	NeedsDomain bool
	// NeedsOracle reports whether WithDomainOracle is required.
	NeedsOracle bool
	// AcceptsLoss reports whether WithLoss is honored.
	AcceptsLoss bool
	// MultiOutcome reports whether WithOutcomes(k > 1) is honored: the
	// mechanism serves k regressions over one shared feature stream.
	MultiOutcome bool
}

// mechanism is a registry entry: public metadata plus the construction hook.
type mechanism struct {
	info  MechanismInfo
	build func(s *settings) (core.Estimator, error)
}

// registry holds every mechanism in its canonical order (the order Mechanisms
// reports and CLIs list).
var registry = []*mechanism{
	{
		info: MechanismInfo{
			Name:    "gradient",
			Aliases: []string{"reg1", "priv-inc-reg1", "gradient-regression"},
			Summary: "Algorithm PRIVINCREG1: Tree-Mechanism private gradient, excess risk ≈ √d",
			Private: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if err := rejectLossAndOracle(s, "gradient"); err != nil {
				return nil, err
			}
			cfg := s.cfg
			return core.NewGradientRegression(cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.RegressionOptions{
				MaxIterations: cfg.MaxIterations,
				WarmStart:     cfg.WarmStart,
				UseHybridTree: cfg.UnknownHorizon,
			})
		},
	},
	{
		info: MechanismInfo{
			Name:        "projected",
			Aliases:     []string{"reg2", "priv-inc-reg2", "projected-regression"},
			Summary:     "Algorithm PRIVINCREG2: optimize in a width-sized random sketch, excess risk ≈ T^{1/3}·W^{2/3}",
			Private:     true,
			NeedsDomain: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if err := rejectLossAndOracle(s, "projected"); err != nil {
				return nil, err
			}
			return buildProjected(s.cfg)
		},
	},
	{
		info: MechanismInfo{
			Name:        "robust-projected",
			Aliases:     []string{"robust", "priv-inc-reg2-robust"},
			Summary:     "§5.2 robust PRIVINCREG2: an oracle screens covariates, rejected points are neutralized",
			Private:     true,
			NeedsDomain: true,
			NeedsOracle: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if s.lossSet {
				return nil, errors.New(`privreg: mechanism "robust-projected" is least-squares by construction and does not accept WithLoss`)
			}
			if s.oracle == nil {
				return nil, errors.New(`privreg: mechanism "robust-projected" requires WithDomainOracle`)
			}
			return buildRobustProjected(s.cfg, s.oracle)
		},
	},
	{
		info: MechanismInfo{
			Name:        "generic-erm",
			Aliases:     []string{"erm", "priv-inc-erm"},
			Summary:     "Mechanism PRIVINCERM: recompute a private batch solve every τ steps, any convex loss",
			Private:     true,
			AcceptsLoss: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if s.oracle != nil {
				return nil, errors.New(`privreg: mechanism "generic-erm" does not accept WithDomainOracle`)
			}
			f, err := s.loss.function()
			if err != nil {
				return nil, err
			}
			cfg := s.cfg
			return core.NewGenericERM(f, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.GenericOptions{
				Tau:        cfg.Tau,
				Batch:      erm.PrivateBatchOptions{Iterations: cfg.MaxIterations},
				HistoryCap: cfg.HistoryCap,
			})
		},
	},
	{
		info: MechanismInfo{
			Name:        "naive-recompute",
			Aliases:     []string{"naive"},
			Summary:     "baseline: re-solve privately at every step, budget split by advanced composition (≈ √T worse)",
			Private:     true,
			AcceptsLoss: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if s.oracle != nil {
				return nil, errors.New(`privreg: mechanism "naive-recompute" does not accept WithDomainOracle`)
			}
			f, err := s.loss.function()
			if err != nil {
				return nil, err
			}
			cfg := s.cfg
			return core.NewNaiveRecompute(f, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.NaiveOptions{
				Batch:      erm.PrivateBatchOptions{Iterations: cfg.MaxIterations},
				HistoryCap: cfg.HistoryCap,
			})
		},
	},
	{
		info: MechanismInfo{
			Name:         "multi-outcome",
			Aliases:      []string{"primo", "multi"},
			Summary:      "PRIMO-style engine: one shared Gram fold serves k least-squares regressions under a split budget",
			Private:      true,
			MultiOutcome: true,
		},
		build: func(s *settings) (core.Estimator, error) {
			if err := rejectLossAndOracle(s, "multi-outcome"); err != nil {
				return nil, err
			}
			cfg := s.cfg
			k := cfg.Outcomes
			if k == 0 {
				k = 1
			}
			return core.NewMultiOutcome(cfg.Constraint.set, k, cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.MultiOptions{
				Tau:   cfg.Tau,
				Batch: erm.PrivateBatchOptions{Iterations: cfg.MaxIterations},
			})
		},
	},
	{
		info: MechanismInfo{
			Name:    "nonprivate",
			Aliases: []string{"exact", "baseline", "exact-incremental"},
			Summary: "exact non-private incremental least squares: the utility ceiling",
			Private: false,
		},
		build: func(s *settings) (core.Estimator, error) {
			if err := rejectLossAndOracle(s, "nonprivate"); err != nil {
				return nil, err
			}
			return core.NewNonPrivateIncremental(s.cfg.Constraint.set, s.cfg.MaxIterations), nil
		},
	},
}

func rejectLossAndOracle(s *settings, name string) error {
	if s.lossSet {
		return fmt.Errorf("privreg: mechanism %q is least-squares by construction and does not accept WithLoss", name)
	}
	if s.oracle != nil {
		return fmt.Errorf("privreg: mechanism %q does not accept WithDomainOracle", name)
	}
	return nil
}

// buildProjected and buildRobustProjected share the PRIVINCREG2 option
// plumbing between the registry and the deprecated constructors.
func buildProjected(cfg Config) (core.Estimator, error) {
	backend, err := cfg.SketchBackend.backend()
	if err != nil {
		return nil, err
	}
	return core.NewProjectedRegression(cfg.Domain.set, cfg.Constraint.set, cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.ProjectedOptions{
		RegressionOptions: core.RegressionOptions{
			MaxIterations: cfg.MaxIterations,
			WarmStart:     cfg.WarmStart,
			UseHybridTree: cfg.UnknownHorizon,
		},
		ProjectionDim: cfg.ProjectionDim,
		Sketch:        backend,
	})
}

func buildRobustProjected(cfg Config, oracle func(x []float64) bool) (core.Estimator, error) {
	backend, err := cfg.SketchBackend.backend()
	if err != nil {
		return nil, err
	}
	return core.NewRobustProjectedRegression(cfg.Domain.set, cfg.Constraint.set,
		func(x vec.Vector) bool { return oracle([]float64(x)) },
		cfg.Privacy.params(), cfg.horizonOrDefault(), randx.NewSource(cfg.Seed), core.ProjectedOptions{
			RegressionOptions: core.RegressionOptions{
				MaxIterations: cfg.MaxIterations,
				WarmStart:     cfg.WarmStart,
				UseHybridTree: cfg.UnknownHorizon,
			},
			ProjectionDim: cfg.ProjectionDim,
			Sketch:        backend,
		})
}

// lookupMechanism resolves a canonical name or alias, case-insensitively.
func lookupMechanism(name string) (*mechanism, error) {
	needle := strings.ToLower(strings.TrimSpace(name))
	for _, m := range registry {
		if m.info.Name == needle {
			return m, nil
		}
		for _, a := range m.info.Aliases {
			if a == needle {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("privreg: unknown mechanism %q (valid names: %s)", name, strings.Join(Mechanisms(), ", "))
}

// Mechanisms returns the canonical names of every registered mechanism, in
// registry order. These are the values New and NewPool accept (aliases listed
// by Describe are accepted too).
func Mechanisms() []string {
	out := make([]string, len(registry))
	for i, m := range registry {
		out[i] = m.info.Name
	}
	return out
}

// Describe returns the registry metadata for a mechanism name or alias.
func Describe(name string) (MechanismInfo, error) {
	m, err := lookupMechanism(name)
	if err != nil {
		return MechanismInfo{}, err
	}
	info := m.info
	info.Aliases = append([]string(nil), m.info.Aliases...)
	sort.Strings(info.Aliases)
	return info, nil
}

// New constructs an estimator by registry name (or alias), configured with
// functional options. It is the construction path deployments should use —
// mechanism selection becomes a config-file string, and every parameter is
// validated at this boundary with a clear error:
//
//	est, err := privreg.New("gradient",
//	    privreg.WithEpsilonDelta(1, 1e-6),
//	    privreg.WithHorizon(100000),
//	    privreg.WithConstraint(privreg.L2Constraint(16, 1)),
//	    privreg.WithSeed(42),
//	)
//
// See Mechanisms for the valid names and Describe for per-mechanism details.
func New(name string, opts ...Option) (Estimator, error) {
	m, err := lookupMechanism(name)
	if err != nil {
		return nil, err
	}
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if s.spillDir != "" || s.storeCap != 0 {
		return nil, errors.New("privreg: WithSpillDir/WithStoreCap configure a Pool's stream store and do not apply to a single estimator; use NewPool")
	}
	return buildEstimator(m, s)
}

// buildEstimator runs the shared validation pipeline and wraps the core
// estimator in the public adapter. It is the single construction funnel used
// by New, the deprecated constructors, and Pool.
func buildEstimator(m *mechanism, s *settings) (Estimator, error) {
	if m.info.Private {
		if err := validatePrivacy(s.cfg.Privacy); err != nil {
			return nil, err
		}
	}
	if s.cfg.Outcomes > 1 && !m.info.MultiOutcome {
		return nil, fmt.Errorf("privreg: mechanism %q serves a single outcome; WithOutcomes(%d) requires the multi-outcome mechanism", m.info.Name, s.cfg.Outcomes)
	}
	if err := s.cfg.validate(m.info.NeedsDomain); err != nil {
		return nil, err
	}
	inner, err := m.build(s)
	if err != nil {
		return nil, err
	}
	return &estimatorAdapter{inner: inner, mechanism: m.info.Name}, nil
}
