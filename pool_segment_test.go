package privreg

import (
	"errors"
	"fmt"
	"testing"
)

// TestExportImportSegmentBitIdentical is the pool-level handoff contract:
// moving a stream between two pools of the same recipe (mechanism, privacy,
// template seed) through ExportSegment/ImportSegment must be invisible in
// the output sequence — the destination continues the stream exactly where
// the source stood, and further observations land bit-identically to a pool
// that never moved.
func TestExportImportSegmentBitIdentical(t *testing.T) {
	for _, spill := range []bool{false, true} {
		name := "resident"
		if spill {
			name = "spill"
		}
		t.Run(name, func(t *testing.T) {
			opts := func() []Option { return testPoolOptions(31) }
			src, err := NewPool("gradient", opts()...)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewPool("gradient", opts()...)
			if err != nil {
				t.Fatal(err)
			}
			dstOpts := opts()
			if spill {
				dstOpts = append(dstOpts, WithSpillDir(t.TempDir()))
			}
			dst, err := NewPool("gradient", dstOpts...)
			if err != nil {
				t.Fatal(err)
			}

			const half, full = 9, 17
			for i := 0; i < half; i++ {
				x, y := syntheticPoint(i, 4)
				if err := src.Observe("mover", x, y); err != nil {
					t.Fatal(err)
				}
				if err := ref.Observe("mover", x, y); err != nil {
					t.Fatal(err)
				}
			}

			data, n, err := src.ExportSegment("mover")
			if err != nil || n != half {
				t.Fatalf("export: n=%d err=%v", n, err)
			}
			id, err := dst.ImportSegment(data, n)
			if err != nil || id != "mover" {
				t.Fatalf("import: id=%q err=%v", id, err)
			}
			if got := dst.Len("mover"); got != half {
				t.Fatalf("imported length %d, want %d", got, half)
			}

			for i := half; i < full; i++ {
				x, y := syntheticPoint(i, 4)
				if err := dst.Observe("mover", x, y); err != nil {
					t.Fatal(err)
				}
				if err := ref.Observe("mover", x, y); err != nil {
					t.Fatal(err)
				}
			}
			got, err := dst.Estimate("mover")
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Estimate("mover")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%x", got) != fmt.Sprintf("%x", want) {
				t.Fatalf("handed-off estimate diverged:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestExportSegmentUnknownStream pins the error identity.
func TestExportSegmentUnknownStream(t *testing.T) {
	p, err := NewPool("gradient", testPoolOptions(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ExportSegment("nope"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("ExportSegment(nope) = %v, want ErrUnknownStream", err)
	}
}
