package privreg_test

import (
	"fmt"
	"math"

	"privreg"
)

// ExampleNew demonstrates the registry construction path: mechanisms are
// selected by name and configured with functional options, so a deployment
// can drive mechanism choice from a config file.
func ExampleNew() {
	est, err := privreg.New("gradient",
		privreg.WithEpsilonDelta(1, 1e-6),
		privreg.WithHorizon(64),
		privreg.WithConstraint(privreg.L2Constraint(4, 1.0)),
		privreg.WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Batched ingestion is bit-identical to a scalar Observe loop.
	xs := [][]float64{{0.5, 0.2, 0, 0}, {0.1, 0, 0.3, 0}}
	ys := []float64{0.13, 0.03}
	if err := est.ObserveBatch(xs, ys); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mechanism:", est.Mechanism())
	fmt.Println("observations:", est.Len())
	fmt.Println("registry:", privreg.Mechanisms())
	// Output:
	// mechanism: gradient
	// observations: 2
	// registry: [gradient projected robust-projected generic-erm naive-recompute multi-outcome nonprivate]
}

// ExampleNewPool demonstrates the multi-stream manager: one private estimator
// per stream ID, created lazily, safe for concurrent use, with whole-pool
// checkpoint/restore.
func ExampleNewPool() {
	pool, err := privreg.NewPool("gradient",
		privreg.WithEpsilonDelta(1, 1e-6),
		privreg.WithHorizon(64),
		privreg.WithConstraint(privreg.L2Constraint(4, 1.0)),
		privreg.WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("user-%d", i%2)
		if err := pool.Observe(id, []float64{0.4, 0, 0.1, 0}, 0.2); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	st := pool.Stats()
	fmt.Println("streams:", st.Streams, "observations:", st.Observations)

	// Checkpoint the whole pool and restore into a fresh one built from the
	// same template; every stream continues bit-identically.
	blob, err := pool.Checkpoint()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fresh, err := privreg.NewPool("gradient",
		privreg.WithEpsilonDelta(1, 1e-6),
		privreg.WithHorizon(64),
		privreg.WithConstraint(privreg.L2Constraint(4, 1.0)),
		privreg.WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := fresh.Restore(blob); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("restored streams:", fresh.Stats().Streams)
	// Output:
	// streams: 2 observations: 6
	// restored streams: 2
}

// ExampleNewGradientRegression demonstrates the streaming workflow: observe
// points one at a time and read a differentially private estimate whenever one
// is needed.
func ExampleNewGradientRegression() {
	cons := privreg.L2Constraint(4, 1.0)
	est, err := privreg.NewGradientRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    64,
		Constraint: cons,
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for t := 0; t < 64; t++ {
		x := []float64{0.5, 0.2, 0, 0}
		y := 0.3*x[0] - 0.1*x[1]
		if err := est.Observe(x, y); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	theta, err := est.Estimate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("observations:", est.Len())
	fmt.Println("estimate dimension:", len(theta))
	fmt.Println("estimate feasible:", cons.Contains(theta, 1e-6))
	// Output:
	// observations: 64
	// estimate dimension: 4
	// estimate feasible: true
}

// ExampleNewProjectedRegression shows the width-driven mechanism for a
// high-dimensional sparse problem with a Lasso constraint.
func ExampleNewProjectedRegression() {
	d := 256
	cons := privreg.L1Constraint(d, 1.0)
	domain := privreg.SparseDomain(d, 3)
	est, err := privreg.NewProjectedRegression(privreg.Config{
		Privacy:    privreg.Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    32,
		Constraint: cons,
		Domain:     domain,
		Seed:       2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	x := make([]float64, d)
	x[7] = 1 / math.Sqrt(2)
	x[90] = 1 / math.Sqrt(2)
	for t := 0; t < 32; t++ {
		if err := est.Observe(x, 0.2); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	theta, err := est.Estimate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("estimate feasible:", cons.Contains(theta, 1e-4))
	fmt.Println("width of constraint below sqrt(d):", cons.GaussianWidth() < math.Sqrt(float64(d)))
	// Output:
	// estimate feasible: true
	// width of constraint below sqrt(d): true
}

// ExampleExcessRisk evaluates an estimate against the best constrained fit on
// a prefix, which is the quantity the paper's guarantees bound.
func ExampleExcessRisk() {
	cons := privreg.L2Constraint(2, 1.0)
	xs := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	ys := []float64{0.4, -0.2, 0.4}
	excess, err := privreg.ExcessRisk(cons, xs, ys, []float64{0.4, -0.2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("excess of the exact fit: %.4f\n", excess)
	// Output:
	// excess of the exact fit: 0.0000
}
