package privreg

import (
	"math"
	"testing"
)

func testConfig(d int) Config {
	return Config{
		Privacy:    Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    32,
		Constraint: L2Constraint(d, 1),
		Seed:       7,
	}
}

// runStream feeds a small synthetic stream and returns covariates, responses.
func runStream(t *testing.T, est Estimator, d, n int) ([][]float64, []float64) {
	t.Helper()
	xs := make([][]float64, 0, n)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		x[i%d] = 0.9
		y := 0.5 * x[i%d]
		xs = append(xs, x)
		ys = append(ys, y)
		if err := est.Observe(x, y); err != nil {
			t.Fatalf("Observe(%d): %v", i, err)
		}
	}
	return xs, ys
}

func TestConstraintConstructorsAndGeometry(t *testing.T) {
	cases := []Constraint{
		L2Constraint(8, 1),
		L1Constraint(8, 1),
		LpConstraint(8, 1.5, 1),
		SimplexConstraint(8, 1),
		GroupL1Constraint(8, 2, 1),
		BoxConstraint(8, 0.5),
		PolytopeConstraint([][]float64{{1, 0}, {0, 1}, {-1, -1}}),
	}
	for _, c := range cases {
		if c.Dim() <= 0 || c.Diameter() <= 0 || c.GaussianWidth() <= 0 {
			t.Fatalf("%s: degenerate geometry", c.Name())
		}
		x := make([]float64, c.Dim())
		for i := range x {
			x[i] = 3
		}
		p := c.Project(x)
		if !c.Contains(p, 1e-5) {
			t.Fatalf("%s: projection not contained", c.Name())
		}
	}
	// Width ordering the library is built around.
	l1 := L1Constraint(1024, 1)
	l2 := L2Constraint(1024, 1)
	if l1.GaussianWidth() >= l2.GaussianWidth()/4 {
		t.Fatal("L1 constraint should have much smaller width than L2 in high dimension")
	}
	// Domains.
	if SparseDomain(100, 3).GaussianWidth() >= UnitBallDomain(100).GaussianWidth() {
		t.Fatal("sparse domain should be narrower than the unit ball")
	}
	if !L1Domain(10, 1).Contains(make([]float64, 10), 1e-9) {
		t.Fatal("origin should belong to the L1 domain")
	}
}

func TestGradientRegressionPublicAPI(t *testing.T) {
	d := 4
	cfg := testConfig(d)
	est, err := NewGradientRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Name() == "" {
		t.Fatal("empty name")
	}
	xs, ys := runStream(t, est, d, 32)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(theta) != d {
		t.Fatalf("estimate dimension %d", len(theta))
	}
	if !cfg.Constraint.Contains(theta, 1e-5) {
		t.Fatal("estimate not feasible")
	}
	if est.Len() != 32 {
		t.Fatalf("Len = %d", est.Len())
	}
	excess, err := ExcessRisk(cfg.Constraint, xs, ys, theta)
	if err != nil {
		t.Fatal(err)
	}
	if excess < 0 || math.IsNaN(excess) {
		t.Fatalf("excess risk = %v", excess)
	}
}

func TestProjectedRegressionPublicAPI(t *testing.T) {
	d := 32
	cfg := Config{
		Privacy:    Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    24,
		Constraint: L1Constraint(d, 1),
		Domain:     SparseDomain(d, 3),
		Seed:       11,
	}
	est, err := NewProjectedRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, est, d, 24)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Constraint.Contains(theta, 1e-4) {
		t.Fatal("estimate not feasible")
	}
	// Domain is required.
	bad := cfg
	bad.Domain = Domain{}
	if _, err := NewProjectedRegression(bad); err == nil {
		t.Fatal("missing domain should be rejected")
	}
	// Mismatched dimensions are rejected.
	bad = cfg
	bad.Domain = SparseDomain(d+1, 3)
	if _, err := NewProjectedRegression(bad); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
}

func TestRobustProjectedRegressionPublicAPI(t *testing.T) {
	d := 16
	cfg := Config{
		Privacy:    Privacy{Epsilon: 1, Delta: 1e-6},
		Horizon:    16,
		Constraint: L1Constraint(d, 1),
		Domain:     SparseDomain(d, 2),
		Seed:       13,
	}
	est, err := NewRobustProjectedRegression(cfg, func(x []float64) bool {
		nz := 0
		for _, v := range x {
			if v != 0 {
				nz++
			}
		}
		return nz <= 4
	})
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, est, d, 16)
	if _, err := est.Estimate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRobustProjectedRegression(cfg, nil); err == nil {
		t.Fatal("nil oracle should be rejected")
	}
}

func TestGenericERMAndNaivePublicAPI(t *testing.T) {
	d := 3
	cfg := testConfig(d)
	for _, l := range []Loss{SquaredLoss, LogisticLoss, HingeLoss} {
		est, err := NewGenericERM(cfg, l)
		if err != nil {
			t.Fatalf("loss %v: %v", l, err)
		}
		runStream(t, est, d, 8)
		if _, err := est.Estimate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewGenericERM(cfg, Loss(99)); err == nil {
		t.Fatal("unknown loss should be rejected")
	}
	naiveCfg := cfg
	naiveCfg.Horizon = 6
	naiveCfg.MaxIterations = 5
	naive, err := NewNaiveRecompute(naiveCfg, SquaredLoss)
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, naive, d, 6)
	if _, err := naive.Estimate(); err != nil {
		t.Fatal(err)
	}
}

func TestNonPrivateBaselineMatchesSignal(t *testing.T) {
	d := 3
	cfg := testConfig(d)
	est, err := NewNonPrivateBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := runStream(t, est, d, 30)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	excess, err := ExcessRisk(cfg.Constraint, xs, ys, theta)
	if err != nil {
		t.Fatal(err)
	}
	if excess > 1e-6 {
		t.Fatalf("exact baseline has nonzero excess risk %v", excess)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGradientRegression(Config{}); err == nil {
		t.Fatal("missing constraint should be rejected")
	}
	cfg := testConfig(3)
	cfg.Horizon = 0
	if _, err := NewGradientRegression(cfg); err == nil {
		t.Fatal("missing horizon should be rejected")
	}
	cfg.UnknownHorizon = true
	if _, err := NewGradientRegression(cfg); err != nil {
		t.Fatalf("UnknownHorizon should allow a zero horizon: %v", err)
	}
	bad := testConfig(3)
	bad.Privacy = Privacy{Epsilon: -1, Delta: 1e-6}
	if _, err := NewGradientRegression(bad); err == nil {
		t.Fatal("invalid privacy should be rejected")
	}
}

func TestSameSeedSameOutput(t *testing.T) {
	d := 4
	run := func() []float64 {
		est, err := NewGradientRegression(testConfig(d))
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, est, d, 16)
		theta, err := est.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return theta
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different outputs")
		}
	}
}

func TestExcessRiskAndWidthHelpers(t *testing.T) {
	cons := L2Constraint(2, 1)
	xs := [][]float64{{1, 0}, {0, 1}}
	ys := []float64{0.5, -0.5}
	// The exact minimizer (0.5, -0.5) has zero excess.
	if got, err := ExcessRisk(cons, xs, ys, []float64{0.5, -0.5}); err != nil || got > 1e-9 {
		t.Fatalf("ExcessRisk of the exact minimizer = %v, %v", got, err)
	}
	// A bad estimate has positive excess.
	if got, _ := ExcessRisk(cons, xs, ys, []float64{-0.5, 0.5}); got <= 0 {
		t.Fatalf("ExcessRisk of a bad estimate = %v", got)
	}
	if _, err := ExcessRisk(cons, xs, ys[:1], []float64{0, 0}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := ExcessRisk(Constraint{}, xs, ys, []float64{0, 0}); err == nil {
		t.Fatal("invalid constraint should error")
	}
	w, err := GaussianWidthOf(L1Constraint(100, 1), 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	analytic := L1Constraint(100, 1).GaussianWidth()
	if math.Abs(w-analytic)/analytic > 0.3 {
		t.Fatalf("Monte-Carlo width %v far from analytic %v", w, analytic)
	}
	if _, err := GaussianWidthOf(Constraint{}, 10, 1); err == nil {
		t.Fatal("invalid constraint should error")
	}
}
