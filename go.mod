module privreg

go 1.22
