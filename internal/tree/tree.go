// Package tree implements the Tree Mechanism (also called the binary
// mechanism) of Dwork et al. and Chan et al. for differentially private
// continual release of vector sums, as described in Appendix C of "Private
// Incremental Regression" (Algorithm TREEMECH), together with the Hybrid
// Mechanism that removes the need to know the stream length in advance, and a
// naive per-step mechanism used as an ablation baseline.
//
// Given a stream of vectors υ_1, ..., υ_T with a bound Δ₂ on the L2 distance
// between any two domain elements, the Tree Mechanism releases at each timestep
// t a private estimate of the prefix sum Σ_{i≤t} υ_i whose error grows only
// polylogarithmically in T (Proposition C.1), while the whole output sequence
// is (ε, δ)-differentially private with respect to changing one stream element.
// Space usage is O(d log T): only one partial sum per tree level is retained.
//
// Noise is counter-keyed and lazy: the noise vector of tree node (level j,
// dyadic index i) is a pure function of (noiseKey, j, i) — a keyed PRF stream
// fed through the ziggurat (randx.CounterSource) — and is materialized (and
// memoized per level) only when the node first participates in a released
// prefix sum. Ingestion is therefore pure accumulation, and because noise
// depends on the node's identity rather than on draw order, batch and scalar
// ingestion, eager and deferred estimates, and checkpoint/restore at any cut
// point all observe bit-identical outputs by construction. The privacy
// analysis is unchanged: each node still carries one fixed N(0, σ²I_d) draw,
// used consistently across every release it contributes to — laziness moves
// the computation of that draw, not its joint distribution (see
// docs/PERFORMANCE.md for the design note).
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"privreg/internal/codec"
	"privreg/internal/dp"
	"privreg/internal/randx"
)

// Mechanism is the common interface of the continual-sum mechanisms in this
// package. Add consumes the next stream element and returns the private
// estimate of the running sum after that element.
type Mechanism interface {
	// Add appends v to the stream and returns the private running-sum estimate.
	// The returned slice is owned by the caller.
	Add(v []float64) ([]float64, error)
	// AddTo appends v to the stream and, when dst is non-nil, writes the private
	// running-sum estimate into dst (which must have the mechanism's dimension).
	// It is the allocation-free fast path of Add: a nil dst consumes the element
	// and updates internal state without computing the estimate at all.
	AddTo(dst, v []float64) error
	// Sum returns the private running-sum estimate at the current timestep
	// without consuming a new element. Before any Add it returns the zero vector.
	Sum() []float64
	// SumInto writes the current private running-sum estimate into dst without
	// allocating. dst must have the mechanism's dimension.
	SumInto(dst []float64)
	// Len returns the number of elements consumed so far.
	Len() int
	// NoiseSigma returns the per-node (or per-step) Gaussian noise standard
	// deviation used internally. Exposed for diagnostics and tests.
	NoiseSigma() float64
	// MarshalState serializes the mechanism's complete mutable state — partial
	// sums, stream position, and the noise key — such that a mechanism
	// constructed with the same configuration and restored with UnmarshalState
	// continues bit-identically to the original.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state captured by MarshalState into a mechanism
	// constructed with the same configuration; structural parameters are
	// verified and a mismatch is an error.
	UnmarshalState(data []byte) error
}

// Tree is the Tree Mechanism for a stream of known maximum length.
type Tree struct {
	dim         int
	maxT        int
	levels      int
	sensitivity float64
	sigma       float64
	// noiseKey keys the counter-based PRF: node (level j, dyadic index i) gets
	// the noise vector FillNormalAt(noiseKey, nodeIndex(j, i), ·, sigma),
	// independent of draw order.
	noiseKey int64

	t int
	// alpha[j] is the in-progress (noise-free) partial sum at level j
	// (covering a dyadic range of length 2^j that has not yet been "closed").
	alpha [][]float64
	// noise[j] memoizes the materialized noise vector of the level-j node
	// noiseIdx[j] (0 = none; live node indices are ≥ 1). A node stays the
	// level's active one for up to 2^j steps, so one buffer per level gives
	// full reuse across repeated estimates.
	noise    [][]float64
	noiseIdx []uint64
	// cs is the reusable PRF stream for noise materialization (kept as a field
	// so the hot path takes no address of a stack local).
	cs randx.CounterSource
	// current private running sum, maintained lazily: adds that do not need
	// the estimate immediately (AddTo with a nil destination, the batch
	// ingestion path) only mark it dirty, and the O(levels·dim) aggregation —
	// including any noise materialization — runs once at the next Sum/SumInto.
	sum   []float64
	dirty bool
}

// Config collects the parameters of a Tree Mechanism instance.
type Config struct {
	// Dim is the dimension of the stream elements.
	Dim int
	// MaxLen is the maximum stream length T. The mechanism refuses elements
	// beyond MaxLen; use the Hybrid mechanism when T is unknown.
	MaxLen int
	// Sensitivity is Δ₂ = max_{υ,υ'∈Z} ‖υ - υ'‖₂, the L2 diameter of the domain.
	Sensitivity float64
	// Privacy is the (ε, δ) guarantee for the entire output sequence.
	Privacy dp.Params
}

// New returns a Tree Mechanism for streams of length at most cfg.MaxLen.
//
// Following Algorithm 4 of the paper, every tree node is perturbed with
// N(0, σ² I_d) noise with σ = Δ₂ · L · sqrt(2 ln(2/δ)) / ε, where
// L = ⌈log₂ MaxLen⌉ + 1 is the number of tree levels (the paper writes log T for
// this quantity). Each stream element contributes to at most L nodes, so by the
// Gaussian mechanism and L-fold composition over levels the full sequence of
// node values — and hence every prefix-sum output, which is a post-processing of
// them — is (ε, δ)-differentially private.
//
// The noise key is drawn from the source (one draw, like Split), so distinct
// mechanisms constructed from the same Source receive independent keys —
// after construction the source is never consumed again, and all node noise
// is a pure function of (key, node identity).
func New(cfg Config, src *randx.Source) (*Tree, error) {
	if src == nil {
		return nil, errors.New("tree: nil randomness source")
	}
	return newWithKey(cfg, src.DeriveKey())
}

// newWithKey is the construction path shared by New and the Hybrid mechanism's
// per-epoch trees (which derive their keys with randx.SubKey rather than from
// a Source).
func newWithKey(cfg Config, noiseKey int64) (*Tree, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("tree: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.MaxLen <= 0 {
		return nil, fmt.Errorf("tree: max length must be positive, got %d", cfg.MaxLen)
	}
	if int64(cfg.MaxLen) > maxTreeLen {
		// Enforces the nodeIndex packing invariant: dyadic indices must fit
		// below the level field, or distinct nodes would share a PRF
		// coordinate (and thus a noise vector, voiding the independence the
		// composition analysis assumes). 2^48 is far beyond any storable
		// stream (the partial sums alone would exceed memory first).
		return nil, fmt.Errorf("tree: max length %d exceeds the supported maximum %d", cfg.MaxLen, maxTreeLen)
	}
	if cfg.Sensitivity < 0 {
		return nil, errors.New("tree: negative sensitivity")
	}
	if err := cfg.Privacy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Privacy.Delta == 0 {
		return nil, errors.New("tree: the Tree Mechanism with Gaussian noise requires delta > 0")
	}
	levels := numLevels(cfg.MaxLen)
	sigma := cfg.Sensitivity * float64(levels) * math.Sqrt(2*math.Log(2/cfg.Privacy.Delta)) / cfg.Privacy.Epsilon
	tr := &Tree{
		dim:         cfg.Dim,
		maxT:        cfg.MaxLen,
		levels:      levels,
		sensitivity: cfg.Sensitivity,
		sigma:       sigma,
		noiseKey:    noiseKey,
		alpha:       make([][]float64, levels),
		noise:       make([][]float64, levels),
		noiseIdx:    make([]uint64, levels),
		sum:         make([]float64, cfg.Dim),
	}
	for j := 0; j < levels; j++ {
		tr.alpha[j] = make([]float64, cfg.Dim)
		tr.noise[j] = make([]float64, cfg.Dim)
	}
	return tr, nil
}

// numLevels returns the number of dyadic levels needed for streams of length n.
func numLevels(n int) int {
	l := 1
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}

// maxTreeLen bounds MaxLen so dyadic node indices (at most MaxLen) always fit
// below the level field of nodeIndex. Typed int64 so the bound compiles (and
// is vacuously unreachable) on 32-bit platforms.
const maxTreeLen int64 = 1 << 48

// nodeIndex packs a tree node's identity — its level and its dyadic index
// within the level — into the 64-bit PRF node coordinate. Level fits in 8
// bits (levels ≤ 64); dyadic indices are at most maxTreeLen < 2^56, enforced
// at construction.
func nodeIndex(level int, idx uint64) uint64 {
	return uint64(level)<<56 | idx
}

// Dim returns the dimension of the stream elements.
func (tr *Tree) Dim() int { return tr.dim }

// MaxLen returns the configured maximum stream length.
func (tr *Tree) MaxLen() int { return tr.maxT }

// Len returns the number of elements consumed so far.
func (tr *Tree) Len() int { return tr.t }

// Levels returns the number of dyadic levels of the tree (⌈log₂ MaxLen⌉ + 1).
func (tr *Tree) Levels() int { return tr.levels }

// NoiseSigma returns the per-node Gaussian noise standard deviation.
func (tr *Tree) NoiseSigma() float64 { return tr.sigma }

// Add consumes the next stream element and returns the private running sum.
func (tr *Tree) Add(v []float64) ([]float64, error) {
	out := make([]float64, tr.dim)
	if err := tr.AddTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// AddTo consumes the next stream element and, when dst is non-nil, writes the
// private running-sum estimate into dst. It performs no heap allocation and —
// with a nil dst — no noise sampling at all: ingestion is pure accumulation
// into the preallocated per-level partial sums, and node noise is materialized
// only when an estimate is actually released (here with dst non-nil, or at a
// later Sum/SumInto).
func (tr *Tree) AddTo(dst, v []float64) error {
	if len(v) != tr.dim {
		return fmt.Errorf("tree: element dimension %d does not match mechanism dimension %d", len(v), tr.dim)
	}
	if dst != nil && len(dst) != tr.dim {
		return fmt.Errorf("tree: destination dimension %d does not match mechanism dimension %d", len(dst), tr.dim)
	}
	if tr.t >= tr.maxT {
		return fmt.Errorf("tree: stream length exceeds configured maximum %d", tr.maxT)
	}
	tr.t++
	t := tr.t

	// i is the index of the lowest set bit of t: the level at which a dyadic
	// range closes at this timestep.
	i := lowestSetBit(t)
	if i >= tr.levels {
		// Cannot happen for t <= maxT, but guard anyway.
		i = tr.levels - 1
	}

	// a_i ← Σ_{j<i} a_j + υ_t  (fold the lower in-progress sums into level i).
	ai := tr.alpha[i]
	for j := 0; j < i; j++ {
		aj := tr.alpha[j]
		for k := range ai {
			ai[k] += aj[k]
		}
	}
	for k := range ai {
		ai[k] += v[k]
	}
	// Zero the lower levels.
	for j := 0; j < i; j++ {
		zero(tr.alpha[j])
	}

	// The running sum s_t = Σ_{j : Bin_j(t) ≠ 0} (a_j + noise_j) is pure
	// post-processing of the node values, so it is computed lazily: eagerly
	// only when the caller asked for the estimate now (dst non-nil), otherwise
	// deferred to the next Sum/SumInto, which amortizes both the aggregation
	// and the noise materialization across batched adds.
	if dst != nil {
		tr.refreshSum()
		copy(dst, tr.sum)
	} else {
		tr.dirty = true
	}
	return nil
}

// nodeNoise returns the memoized noise vector of the level-j node with dyadic
// index idx, materializing it from the PRF stream on first use. Pure in
// (noiseKey, j, idx): re-materializing after a restore, or in a different
// instance, reproduces the identical vector.
func (tr *Tree) nodeNoise(j int, idx uint64) []float64 {
	if tr.noiseIdx[j] != idx {
		tr.cs = randx.NewCounterSource(tr.noiseKey, nodeIndex(j, idx))
		tr.cs.FillNormal(tr.noise[j], tr.sigma)
		tr.noiseIdx[j] = idx
	}
	return tr.noise[j]
}

// refreshSum recomputes s_t ← Σ_{j : Bin_j(t) ≠ 0} (a_j + noise_j) from the
// closed nodes. Deterministic given (noiseKey, t), so lazy and eager callers
// observe bit-identical estimates.
func (tr *Tree) refreshSum() {
	zero(tr.sum)
	for j := 0; j < tr.levels; j++ {
		if tr.t&(1<<uint(j)) == 0 {
			continue
		}
		aj := tr.alpha[j]
		nj := tr.nodeNoise(j, uint64(tr.t)>>uint(j))
		for k := range tr.sum {
			tr.sum[k] += aj[k] + nj[k]
		}
	}
	tr.dirty = false
}

// Sum returns a copy of the current private running-sum estimate.
func (tr *Tree) Sum() []float64 {
	out := make([]float64, tr.dim)
	tr.SumInto(out)
	return out
}

// SumInto writes the current private running-sum estimate into dst without
// allocating.
func (tr *Tree) SumInto(dst []float64) {
	if tr.dirty {
		tr.refreshSum()
	}
	copy(dst, tr.sum)
}

// ErrorBound returns a high-probability bound on the Euclidean error of the
// running-sum estimate at any single timestep, per Proposition C.1: with
// probability at least 1-β the error is at most
//
//	σ · ( √(L·d) + √(2 L ln(1/β)) )
//
// where L is the number of tree levels (at most L noisy nodes are summed, each
// with independent N(0, σ² I_d) noise, so the error is a Gaussian vector with
// total variance at most L·σ² per coordinate).
func (tr *Tree) ErrorBound(beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("tree: ErrorBound requires beta in (0,1)")
	}
	l := float64(tr.levels)
	d := float64(tr.dim)
	return tr.sigma * (math.Sqrt(l*d) + math.Sqrt(2*l*math.Log(1/beta)))
}

// treeStateVersion is the Tree checkpoint format version. Version 2 is the
// counter-keyed lazy-noise format: it persists the noise key and the exact
// per-level partial sums only — node noise and the cached running sum are pure
// functions of them and are re-materialized on demand after restore. Version-1
// blobs (which carried noisy node buffers and a generator stream position) are
// rejected.
const treeStateVersion = 2

// MarshalState implements Mechanism: it serializes the stream position, the
// per-level exact partial sums, and the noise key. Together with the
// construction parameters — which the restoring instance must share, and which
// are embedded for verification — this is everything needed to continue
// bit-identically: noise is a pure function of (noiseKey, node), so no sampler
// position exists to capture.
func (tr *Tree) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(treeStateVersion)
	w.String("tree")
	w.Int(tr.dim)
	w.Int(tr.maxT)
	w.F64(tr.sensitivity)
	w.F64(tr.sigma)
	w.Int(tr.t)
	for j := 0; j < tr.levels; j++ {
		w.F64s(tr.alpha[j])
	}
	w.I64(tr.noiseKey)
	return w.Bytes(), nil
}

// UnmarshalState implements Mechanism: it restores state captured by
// MarshalState into a Tree constructed with the same configuration. The noise
// key is taken from the checkpoint (the restoring instance may have been built
// with a different seed), and all noise memoization is invalidated — it will
// re-materialize identically on the next released estimate.
func (tr *Tree) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(treeStateVersion)
	r.ExpectString("mechanism kind", "tree")
	r.ExpectInt("dimension", tr.dim)
	r.ExpectInt("max length", tr.maxT)
	if s := r.F64(); r.Err() == nil && s != tr.sensitivity {
		return fmt.Errorf("tree: checkpoint sensitivity %g does not match configured %g", s, tr.sensitivity)
	}
	if s := r.F64(); r.Err() == nil && s != tr.sigma {
		return fmt.Errorf("tree: checkpoint noise scale %g does not match configured %g (privacy parameters differ)", s, tr.sigma)
	}
	t := r.Int()
	if r.Err() == nil && (t < 0 || t > tr.maxT) {
		return fmt.Errorf("tree: checkpoint stream position %d outside [0, %d]", t, tr.maxT)
	}
	for j := 0; j < tr.levels; j++ {
		r.F64sInto(tr.alpha[j])
	}
	noiseKey := r.I64()
	if err := r.Finish(); err != nil {
		return err
	}
	tr.t = t
	tr.noiseKey = noiseKey
	for j := range tr.noiseIdx {
		tr.noiseIdx[j] = 0
	}
	tr.dirty = true
	return nil
}

// lowestSetBit returns the index of the lowest set bit of t. The degenerate
// input t <= 0 (no set bit — the old hand-rolled shift loop spun forever on
// it) maps to level 0.
func lowestSetBit(t int) int {
	if t <= 0 {
		return 0
	}
	return bits.TrailingZeros(uint(t))
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
