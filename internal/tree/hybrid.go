package tree

import (
	"errors"
	"fmt"

	"privreg/internal/codec"
	"privreg/internal/dp"
	"privreg/internal/randx"
)

// snapshotNode is the PRF node-coordinate namespace of the Hybrid mechanism's
// per-epoch snapshot noise; the high bit separates it from any tree node
// coordinate (whose level field is < 64).
func snapshotNode(epoch int) uint64 { return 1<<63 | uint64(epoch) }

// epochTreeKey derives the noise key of epoch k's in-epoch tree from the
// Hybrid's own key — a pure function, so a restored mechanism re-derives the
// identical keys without replaying any stream.
func epochTreeKey(noiseKey int64, epoch int) int64 {
	return randx.SubKey(noiseKey, uint64(epoch)+1)
}

// Hybrid implements the Hybrid Mechanism of Chan, Shi and Song: a continual
// private sum mechanism that does not require the stream length in advance and
// achieves asymptotically the same error as the Tree Mechanism (footnote 13 of
// the paper).
//
// The construction combines two components, each given half of the privacy
// budget:
//
//   - a "logarithmic" mechanism that, every time the stream length reaches a
//     power of two, publishes a fresh noisy snapshot of that epoch's sum (the
//     epochs partition the stream, so each element is perturbed once here, and
//     prefixes are reconstructed as sums of at most ⌈log₂ t⌉ noisy terms); and
//   - within each epoch (2^k, 2^{k+1}], a fresh Tree Mechanism of length 2^k
//     over only the elements of that epoch.
//
// The reported running sum is Σ completed-epoch snapshots + in-epoch tree sum.
//
// Like Tree, all noise is counter-keyed and lazy: epoch k's snapshot noise is
// a pure function of (noiseKey, k) and epoch trees derive their keys with
// epochTreeKey, so ingestion — including epoch rollover — samples nothing and
// the released sequence is independent of when estimates are read.
type Hybrid struct {
	dim         int
	sensitivity float64
	privacy     dp.Params
	noiseKey    int64

	t int
	// completedExact is the noise-free sum of all elements in completed epochs
	// (private state; never released raw — releases add the snapshot noise).
	completedExact []float64
	// epochs counts completed epochs; epoch k (0-based) has length 2^k.
	epochs int
	// noiseSum memoizes Σ_{k < noised} snapshot noise of completed epochs;
	// lagging epochs are materialized at the next released estimate.
	noiseSum []float64
	noised   int
	// epochExact is the noise-free sum of the current epoch's elements, folded
	// into completedExact at the epoch boundary.
	epochExact []float64
	// epochTree handles the current epoch.
	epochTree *Tree
	epochLen  int
	logSigma  float64
	// sum is the cached running-sum estimate, maintained lazily like
	// Tree.sum; epochSum is a reusable scratch buffer.
	sum      []float64
	dirty    bool
	epochSum []float64
}

// NewHybrid returns a Hybrid mechanism for streams of unbounded (unknown)
// length with the given element dimension, L2 sensitivity and privacy budget.
// The noise key is drawn from the source (one draw, like Split); after
// construction the source is never consumed again.
func NewHybrid(dim int, sensitivity float64, p dp.Params, src *randx.Source) (*Hybrid, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("tree: dimension must be positive, got %d", dim)
	}
	if sensitivity < 0 {
		return nil, errors.New("tree: negative sensitivity")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Delta == 0 {
		return nil, errors.New("tree: the Hybrid mechanism with Gaussian noise requires delta > 0")
	}
	if src == nil {
		return nil, errors.New("tree: nil randomness source")
	}
	half := p.Halve()
	// The logarithmic component: each element is contained in every snapshot at
	// or after its epoch. A change of one element shifts every subsequent
	// snapshot by at most Δ₂. Rather than composing over an unbounded number of
	// snapshots, the standard trick is to publish at epoch k the noisy sum of
	// elements of epoch k only (a disjoint partition, sensitivity Δ₂ once), and
	// reconstruct the prefix as the sum of per-epoch noisy sums. The number of
	// noisy terms summed is ⌈log₂ t⌉, giving polylog error.
	logSigma, err := dp.GaussianSigma(sensitivity, half)
	if err != nil {
		return nil, err
	}
	h := &Hybrid{
		dim:            dim,
		sensitivity:    sensitivity,
		privacy:        p,
		noiseKey:       src.DeriveKey(),
		completedExact: make([]float64, dim),
		noiseSum:       make([]float64, dim),
		epochExact:     make([]float64, dim),
		logSigma:       logSigma,
		sum:            make([]float64, dim),
		epochSum:       make([]float64, dim),
	}
	if err := h.startEpoch(0); err != nil {
		return nil, err
	}
	return h, nil
}

// startEpoch constructs epoch k's in-epoch tree (length 2^k) with its derived
// noise key.
func (h *Hybrid) startEpoch(epoch int) error {
	length := 1 << uint(epoch)
	et, err := newWithKey(Config{
		Dim:         h.dim,
		MaxLen:      length,
		Sensitivity: h.sensitivity,
		Privacy:     h.privacy.Halve(),
	}, epochTreeKey(h.noiseKey, epoch))
	if err != nil {
		return err
	}
	h.epochTree = et
	h.epochLen = length
	return nil
}

// Dim returns the element dimension.
func (h *Hybrid) Dim() int { return h.dim }

// Len returns the number of elements consumed so far.
func (h *Hybrid) Len() int { return h.t }

// NoiseSigma returns the per-node noise standard deviation of the current
// epoch's tree component.
func (h *Hybrid) NoiseSigma() float64 { return h.epochTree.NoiseSigma() }

// Add consumes the next stream element and returns the private running sum.
func (h *Hybrid) Add(v []float64) ([]float64, error) {
	out := make([]float64, h.dim)
	if err := h.AddTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// AddTo consumes the next stream element and, when dst is non-nil, writes the
// private running-sum estimate into dst. The steady-state path (all timesteps
// except the O(log T) epoch boundaries, which construct the next epoch's tree)
// performs no heap allocation, and no path samples noise: an epoch boundary
// only folds the exact epoch sum forward — its snapshot noise is materialized
// at the next released estimate.
func (h *Hybrid) AddTo(dst, v []float64) error {
	if len(v) != h.dim {
		return fmt.Errorf("tree: element dimension %d does not match mechanism dimension %d", len(v), h.dim)
	}
	if dst != nil && len(dst) != h.dim {
		return fmt.Errorf("tree: destination dimension %d does not match mechanism dimension %d", len(dst), h.dim)
	}
	h.t++
	for k := range h.epochExact {
		h.epochExact[k] += v[k]
	}
	if err := h.epochTree.AddTo(nil, v); err != nil {
		return err
	}
	// If the epoch just completed, fold its exact sum into the completed-epoch
	// accumulator and start the next (doubled) epoch. Estimates at and after
	// this timestep use the epoch's snapshot noise (one Gaussian per
	// coordinate) instead of its tree sum — a strictly less noisy, equally
	// private release of the same prefix.
	if h.epochTree.Len() == h.epochLen {
		for k := range h.completedExact {
			h.completedExact[k] += h.epochExact[k]
		}
		zero(h.epochExact)
		h.epochs++
		if err := h.startEpoch(h.epochs); err != nil {
			return err
		}
	}
	if dst != nil {
		h.refreshSum()
		copy(dst, h.sum)
	} else {
		h.dirty = true
	}
	return nil
}

// refreshSum recomputes the cached estimate: completed-epoch snapshots plus
// the in-epoch tree sum, materializing any lagging snapshot noise first.
// Deterministic given (noiseKey, t), so lazy and eager callers observe
// bit-identical estimates.
func (h *Hybrid) refreshSum() {
	if h.noised < h.epochs {
		buf := randx.GetBuf(h.dim)
		for h.noised < h.epochs {
			randx.FillNormalAt(h.noiseKey, snapshotNode(h.noised), *buf, h.logSigma)
			for k := range h.noiseSum {
				h.noiseSum[k] += (*buf)[k]
			}
			h.noised++
		}
		randx.PutBuf(buf)
	}
	h.epochTree.SumInto(h.epochSum)
	for k := range h.sum {
		h.sum[k] = h.completedExact[k] + h.noiseSum[k] + h.epochSum[k]
	}
	h.dirty = false
}

// Sum returns a copy of the current private running-sum estimate.
func (h *Hybrid) Sum() []float64 {
	out := make([]float64, h.dim)
	h.SumInto(out)
	return out
}

// SumInto writes the current private running-sum estimate into dst without
// allocating.
func (h *Hybrid) SumInto(dst []float64) {
	if h.dirty {
		h.refreshSum()
	}
	copy(dst, h.sum)
}

// hybridStateVersion is the Hybrid checkpoint format version. Version 2 is
// the counter-keyed lazy-noise format (see treeStateVersion).
const hybridStateVersion = 2

// MarshalState implements Mechanism for the Hybrid mechanism: it captures the
// exact accumulators, the epoch counter, the in-progress epoch (as a nested
// Tree checkpoint), and the noise key. Snapshot noise is a pure function of
// (noiseKey, epoch) and is re-materialized on demand after restore.
func (h *Hybrid) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(hybridStateVersion)
	w.String("hybrid")
	w.Int(h.dim)
	w.F64(h.sensitivity)
	w.F64(h.logSigma)
	w.Int(h.t)
	w.F64s(h.completedExact)
	w.F64s(h.epochExact)
	w.Int(h.epochs)
	et, err := h.epochTree.MarshalState()
	if err != nil {
		return nil, err
	}
	w.Blob(et)
	w.I64(h.noiseKey)
	return w.Bytes(), nil
}

// UnmarshalState implements Mechanism: it restores state captured by
// MarshalState into a Hybrid constructed with the same configuration.
func (h *Hybrid) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(hybridStateVersion)
	r.ExpectString("mechanism kind", "hybrid")
	r.ExpectInt("dimension", h.dim)
	if s := r.F64(); r.Err() == nil && s != h.sensitivity {
		return fmt.Errorf("tree: checkpoint sensitivity %g does not match configured %g", s, h.sensitivity)
	}
	if s := r.F64(); r.Err() == nil && s != h.logSigma {
		return fmt.Errorf("tree: checkpoint noise scale %g does not match configured %g (privacy parameters differ)", s, h.logSigma)
	}
	t := r.Int()
	r.F64sInto(h.completedExact)
	r.F64sInto(h.epochExact)
	epochs := r.Int()
	treeBlob := r.Blob()
	noiseKey := r.I64()
	if err := r.Finish(); err != nil {
		return err
	}
	if t < 0 || epochs < 0 || epochs > 62 {
		return fmt.Errorf("tree: corrupt hybrid checkpoint (t=%d, epochs=%d)", t, epochs)
	}
	h.t = t
	h.epochs = epochs
	h.noiseKey = noiseKey
	// Rebuild the in-progress epoch tree for the checkpointed epoch and restore
	// its state (which carries its own noise key).
	if err := h.startEpoch(epochs); err != nil {
		return err
	}
	if err := h.epochTree.UnmarshalState(treeBlob); err != nil {
		return err
	}
	// Snapshot-noise memoization restarts from scratch; it re-materializes
	// identically from (noiseKey, epoch) at the next released estimate.
	zero(h.noiseSum)
	h.noised = 0
	h.dirty = true
	return nil
}

// NaiveSum is the baseline continual-sum mechanism that perturbs the running
// sum independently at every timestep, splitting the privacy budget across the
// T releases with advanced composition. Its error grows like √T (times √d),
// versus polylog(T) for the Tree Mechanism; the ablation benchmark
// BenchmarkAblationTreeVsNaiveSum quantifies the gap.
//
// The per-release noise is counter-keyed by the timestep: release t carries
// the noise vector FillNormalAt(noiseKey, t, ·, σ), drawn lazily when the
// release is actually read and memoized per timestep, so repeated reads of the
// same release observe the same value — exactly as the eager implementation's
// cached release did.
type NaiveSum struct {
	dim      int
	sigma    float64
	noiseKey int64
	t        int
	exact    []float64
	// noise memoizes the release noise of timestep noiseT (0 = none yet).
	noise  []float64
	noiseT int
	cs     randx.CounterSource
}

// NewNaiveSum returns a naive continual-sum mechanism for streams of length at
// most maxLen with the given sensitivity and total privacy budget.
func NewNaiveSum(dim, maxLen int, sensitivity float64, p dp.Params, src *randx.Source) (*NaiveSum, error) {
	if dim <= 0 || maxLen <= 0 {
		return nil, errors.New("tree: dimension and max length must be positive")
	}
	if src == nil {
		return nil, errors.New("tree: nil randomness source")
	}
	per, err := dp.PerInvocationAdvanced(p, maxLen)
	if err != nil {
		return nil, err
	}
	sigma, err := dp.GaussianSigma(sensitivity, per)
	if err != nil {
		return nil, err
	}
	return &NaiveSum{
		dim:      dim,
		sigma:    sigma,
		noiseKey: src.DeriveKey(),
		exact:    make([]float64, dim),
		noise:    make([]float64, dim),
	}, nil
}

// Len returns the number of elements consumed so far.
func (n *NaiveSum) Len() int { return n.t }

// NoiseSigma returns the per-release noise standard deviation.
func (n *NaiveSum) NoiseSigma() float64 { return n.sigma }

// Add consumes the next stream element and returns the perturbed running sum.
func (n *NaiveSum) Add(v []float64) ([]float64, error) {
	out := make([]float64, n.dim)
	if err := n.AddTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// AddTo consumes the next stream element and, when dst is non-nil, writes the
// timestep's perturbed running sum into dst without allocating. With a nil
// dst nothing is sampled: the release noise of a timestep materializes only
// when that release is read.
func (n *NaiveSum) AddTo(dst, v []float64) error {
	if len(v) != n.dim {
		return fmt.Errorf("tree: element dimension %d does not match mechanism dimension %d", len(v), n.dim)
	}
	if dst != nil && len(dst) != n.dim {
		return fmt.Errorf("tree: destination dimension %d does not match mechanism dimension %d", len(dst), n.dim)
	}
	n.t++
	for k := range n.exact {
		n.exact[k] += v[k]
	}
	if dst != nil {
		n.SumInto(dst)
	}
	return nil
}

// Sum returns a copy of the current timestep's private running-sum estimate.
func (n *NaiveSum) Sum() []float64 {
	out := make([]float64, n.dim)
	n.SumInto(out)
	return out
}

// SumInto writes the current timestep's private running-sum estimate into dst
// without allocating. Before any Add it writes the zero vector.
func (n *NaiveSum) SumInto(dst []float64) {
	if n.t == 0 {
		for k := range dst {
			dst[k] = 0
		}
		return
	}
	if n.noiseT != n.t {
		n.cs = randx.NewCounterSource(n.noiseKey, uint64(n.t))
		n.cs.FillNormal(n.noise, n.sigma)
		n.noiseT = n.t
	}
	for k := range dst {
		dst[k] = n.exact[k] + n.noise[k]
	}
}

// naiveSumStateVersion is the NaiveSum checkpoint format version. Version 2
// is the counter-keyed lazy-noise format (see treeStateVersion).
const naiveSumStateVersion = 2

// MarshalState implements Mechanism: the exact accumulator, stream position,
// and noise key. Release noise is a pure function of (noiseKey, t).
func (n *NaiveSum) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(naiveSumStateVersion)
	w.String("naive-sum")
	w.Int(n.dim)
	w.F64(n.sigma)
	w.Int(n.t)
	w.F64s(n.exact)
	w.I64(n.noiseKey)
	return w.Bytes(), nil
}

// UnmarshalState implements Mechanism.
func (n *NaiveSum) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(naiveSumStateVersion)
	r.ExpectString("mechanism kind", "naive-sum")
	r.ExpectInt("dimension", n.dim)
	if s := r.F64(); r.Err() == nil && s != n.sigma {
		return fmt.Errorf("tree: checkpoint noise scale %g does not match configured %g (privacy parameters differ)", s, n.sigma)
	}
	t := r.Int()
	r.F64sInto(n.exact)
	noiseKey := r.I64()
	if err := r.Finish(); err != nil {
		return err
	}
	if t < 0 {
		return fmt.Errorf("tree: corrupt naive-sum checkpoint (t=%d)", t)
	}
	n.t = t
	n.noiseKey = noiseKey
	n.noiseT = 0
	return nil
}

// Interface conformance checks.
var (
	_ Mechanism = (*Tree)(nil)
	_ Mechanism = (*Hybrid)(nil)
	_ Mechanism = (*NaiveSum)(nil)
)
