package tree

import (
	"errors"
	"fmt"

	"privreg/internal/codec"
	"privreg/internal/dp"
	"privreg/internal/randx"
)

// Hybrid implements the Hybrid Mechanism of Chan, Shi and Song: a continual
// private sum mechanism that does not require the stream length in advance and
// achieves asymptotically the same error as the Tree Mechanism (footnote 13 of
// the paper).
//
// The construction combines two components, each given half of the privacy
// budget:
//
//   - a "logarithmic" mechanism that, every time the stream length reaches a
//     power of two, publishes a fresh noisy snapshot of the total sum so far
//     (each element is included in at most one snapshot *release period*, and
//     snapshots are produced at most ⌈log₂ t⌉ + 1 times, so each contributes
//     to at most that many outputs via post-processing of a per-epoch sum); and
//   - within each epoch (2^k, 2^{k+1}], a fresh Tree Mechanism of length 2^k
//     over only the elements of that epoch.
//
// The reported running sum is snapshot + in-epoch tree sum.
type Hybrid struct {
	dim         int
	sensitivity float64
	privacy     dp.Params
	src         *randx.Source

	t int
	// snapshot is the noisy sum of all elements in completed epochs.
	snapshot []float64
	// exactPrefix is the noise-free sum of elements in completed epochs; kept
	// only until the snapshot for the epoch boundary has been produced (it is
	// perturbed and then discarded into snapshot; never released raw).
	exactPrefix []float64
	// epochTree handles the current epoch.
	epochTree *Tree
	epochLen  int
	logSigma  float64
	// sum is the cached running-sum estimate, maintained lazily like
	// Tree.sum: batched adds mark it dirty and the snapshot+epoch aggregation
	// runs once at the next Sum/SumInto.
	sum   []float64
	dirty bool
	// epochSum and noiseWork are reusable scratch buffers that keep the
	// per-timestep path allocation-free.
	epochSum  []float64
	noiseWork []float64
}

// NewHybrid returns a Hybrid mechanism for streams of unbounded (unknown)
// length with the given element dimension, L2 sensitivity and privacy budget.
func NewHybrid(dim int, sensitivity float64, p dp.Params, src *randx.Source) (*Hybrid, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("tree: dimension must be positive, got %d", dim)
	}
	if sensitivity < 0 {
		return nil, errors.New("tree: negative sensitivity")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Delta == 0 {
		return nil, errors.New("tree: the Hybrid mechanism with Gaussian noise requires delta > 0")
	}
	if src == nil {
		return nil, errors.New("tree: nil randomness source")
	}
	half := p.Halve()
	// The logarithmic component: each element is contained in every snapshot at
	// or after its epoch. A change of one element shifts every subsequent
	// snapshot by at most Δ₂. Rather than composing over an unbounded number of
	// snapshots, the standard trick is to publish at epoch k the noisy sum of
	// elements of epoch k only (a disjoint partition, sensitivity Δ₂ once), and
	// reconstruct the prefix as the sum of per-epoch noisy sums. The number of
	// noisy terms summed is ⌈log₂ t⌉, giving polylog error.
	logSigma, err := dp.GaussianSigma(sensitivity, half)
	if err != nil {
		return nil, err
	}
	h := &Hybrid{
		dim:         dim,
		sensitivity: sensitivity,
		privacy:     p,
		src:         src,
		snapshot:    make([]float64, dim),
		exactPrefix: make([]float64, dim),
		logSigma:    logSigma,
		sum:         make([]float64, dim),
		epochSum:    make([]float64, dim),
		noiseWork:   make([]float64, dim),
	}
	if err := h.startEpoch(1); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Hybrid) startEpoch(length int) error {
	half := h.privacy.Halve()
	et, err := New(Config{
		Dim:         h.dim,
		MaxLen:      length,
		Sensitivity: h.sensitivity,
		Privacy:     half,
	}, h.src.Split())
	if err != nil {
		return err
	}
	h.epochTree = et
	h.epochLen = length
	return nil
}

// Dim returns the element dimension.
func (h *Hybrid) Dim() int { return h.dim }

// Len returns the number of elements consumed so far.
func (h *Hybrid) Len() int { return h.t }

// NoiseSigma returns the per-node noise standard deviation of the current
// epoch's tree component.
func (h *Hybrid) NoiseSigma() float64 { return h.epochTree.NoiseSigma() }

// Add consumes the next stream element and returns the private running sum.
func (h *Hybrid) Add(v []float64) ([]float64, error) {
	out := make([]float64, h.dim)
	if err := h.AddTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// AddTo consumes the next stream element and, when dst is non-nil, writes the
// private running-sum estimate into dst. The steady-state path (all timesteps
// except the O(log T) epoch boundaries, which construct the next epoch's tree)
// performs no heap allocation.
func (h *Hybrid) AddTo(dst, v []float64) error {
	if len(v) != h.dim {
		return fmt.Errorf("tree: element dimension %d does not match mechanism dimension %d", len(v), h.dim)
	}
	if dst != nil && len(dst) != h.dim {
		return fmt.Errorf("tree: destination dimension %d does not match mechanism dimension %d", len(dst), h.dim)
	}
	h.t++
	// Track the epoch's exact contribution (private state; never released raw).
	for k := range h.exactPrefix {
		h.exactPrefix[k] += v[k]
	}
	if err := h.epochTree.AddTo(nil, v); err != nil {
		return err
	}
	// At an epoch boundary the estimate must be materialized before the
	// snapshot fold so that Sum after this call reports the same tree-based
	// value it always has; otherwise the aggregation is deferred exactly as in
	// Tree.AddTo.
	boundary := h.epochTree.Len() == h.epochLen
	if dst != nil || boundary {
		h.refreshSum()
		if dst != nil {
			copy(dst, h.sum)
		}
	} else {
		h.dirty = true
	}

	// If the epoch just completed, fold a fresh noisy snapshot of this epoch's
	// exact sum into the cumulative snapshot and start the next (doubled) epoch.
	if boundary {
		h.src.FillNormal(h.noiseWork, 0, h.logSigma)
		for k := range h.snapshot {
			h.snapshot[k] += h.exactPrefix[k] + h.noiseWork[k]
		}
		zero(h.exactPrefix)
		if err := h.startEpoch(h.epochLen * 2); err != nil {
			return err
		}
	}
	return nil
}

// refreshSum recomputes the cached estimate snapshot + in-epoch tree sum.
// Deterministic, so lazy and eager callers observe bit-identical estimates.
func (h *Hybrid) refreshSum() {
	h.epochTree.SumInto(h.epochSum)
	for k := range h.sum {
		h.sum[k] = h.snapshot[k] + h.epochSum[k]
	}
	h.dirty = false
}

// Sum returns a copy of the current private running-sum estimate.
func (h *Hybrid) Sum() []float64 {
	out := make([]float64, h.dim)
	h.SumInto(out)
	return out
}

// SumInto writes the current private running-sum estimate into dst without
// allocating.
func (h *Hybrid) SumInto(dst []float64) {
	if h.dirty {
		h.refreshSum()
	}
	copy(dst, h.sum)
}

// hybridStateVersion is the Hybrid checkpoint format version.
const hybridStateVersion = 1

// MarshalState implements Mechanism for the Hybrid mechanism: it captures the
// snapshot accumulator, the in-progress epoch (as a nested Tree checkpoint),
// and both randomness positions.
func (h *Hybrid) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(hybridStateVersion)
	w.String("hybrid")
	w.Int(h.dim)
	w.F64(h.sensitivity)
	w.F64(h.logSigma)
	w.Int(h.t)
	w.F64s(h.snapshot)
	w.F64s(h.exactPrefix)
	w.F64s(h.sum)
	w.Bool(h.dirty)
	w.Int(h.epochLen)
	et, err := h.epochTree.MarshalState()
	if err != nil {
		return nil, err
	}
	w.Blob(et)
	st := h.src.State()
	w.I64(st.Seed)
	w.U64(st.Draws)
	return w.Bytes(), nil
}

// UnmarshalState implements Mechanism: it restores state captured by
// MarshalState into a Hybrid constructed with the same configuration.
func (h *Hybrid) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(hybridStateVersion)
	r.ExpectString("mechanism kind", "hybrid")
	r.ExpectInt("dimension", h.dim)
	if s := r.F64(); r.Err() == nil && s != h.sensitivity {
		return fmt.Errorf("tree: checkpoint sensitivity %g does not match configured %g", s, h.sensitivity)
	}
	if s := r.F64(); r.Err() == nil && s != h.logSigma {
		return fmt.Errorf("tree: checkpoint noise scale %g does not match configured %g (privacy parameters differ)", s, h.logSigma)
	}
	t := r.Int()
	r.F64sInto(h.snapshot)
	r.F64sInto(h.exactPrefix)
	r.F64sInto(h.sum)
	dirty := r.Bool()
	epochLen := r.Int()
	treeBlob := r.Blob()
	st := randx.State{Seed: r.I64(), Draws: r.U64()}
	if err := r.Finish(); err != nil {
		return err
	}
	if t < 0 || epochLen <= 0 {
		return fmt.Errorf("tree: corrupt hybrid checkpoint (t=%d, epochLen=%d)", t, epochLen)
	}
	// Rebuild the in-progress epoch tree with the checkpointed epoch length and
	// restore its state; the placeholder source is replaced by the restore.
	et, err := New(Config{
		Dim:         h.dim,
		MaxLen:      epochLen,
		Sensitivity: h.sensitivity,
		Privacy:     h.privacy.Halve(),
	}, randx.NewSource(0))
	if err != nil {
		return err
	}
	if err := et.UnmarshalState(treeBlob); err != nil {
		return err
	}
	src, err := randx.NewSourceAt(st)
	if err != nil {
		return err
	}
	h.t = t
	h.dirty = dirty
	h.epochLen = epochLen
	h.epochTree = et
	h.src = src
	return nil
}

// NaiveSum is the baseline continual-sum mechanism that perturbs the running
// sum independently at every timestep, splitting the privacy budget across the
// T releases with advanced composition. Its error grows like √T (times √d),
// versus polylog(T) for the Tree Mechanism; the ablation benchmark
// BenchmarkAblationTreeVsNaiveSum quantifies the gap.
type NaiveSum struct {
	dim   int
	sigma float64
	src   *randx.Source
	t     int
	exact []float64
	sum   []float64
}

// NewNaiveSum returns a naive continual-sum mechanism for streams of length at
// most maxLen with the given sensitivity and total privacy budget.
func NewNaiveSum(dim, maxLen int, sensitivity float64, p dp.Params, src *randx.Source) (*NaiveSum, error) {
	if dim <= 0 || maxLen <= 0 {
		return nil, errors.New("tree: dimension and max length must be positive")
	}
	if src == nil {
		return nil, errors.New("tree: nil randomness source")
	}
	per, err := dp.PerInvocationAdvanced(p, maxLen)
	if err != nil {
		return nil, err
	}
	sigma, err := dp.GaussianSigma(sensitivity, per)
	if err != nil {
		return nil, err
	}
	return &NaiveSum{
		dim:   dim,
		sigma: sigma,
		src:   src,
		exact: make([]float64, dim),
		sum:   make([]float64, dim),
	}, nil
}

// Len returns the number of elements consumed so far.
func (n *NaiveSum) Len() int { return n.t }

// NoiseSigma returns the per-release noise standard deviation.
func (n *NaiveSum) NoiseSigma() float64 { return n.sigma }

// Add consumes the next stream element and returns a freshly perturbed running sum.
func (n *NaiveSum) Add(v []float64) ([]float64, error) {
	out := make([]float64, n.dim)
	if err := n.AddTo(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// AddTo consumes the next stream element and, when dst is non-nil, writes a
// freshly perturbed running sum into dst without allocating.
func (n *NaiveSum) AddTo(dst, v []float64) error {
	if len(v) != n.dim {
		return fmt.Errorf("tree: element dimension %d does not match mechanism dimension %d", len(v), n.dim)
	}
	if dst != nil && len(dst) != n.dim {
		return fmt.Errorf("tree: destination dimension %d does not match mechanism dimension %d", len(dst), n.dim)
	}
	n.t++
	for k := range n.exact {
		n.exact[k] += v[k]
	}
	n.src.FillNormal(n.sum, 0, n.sigma)
	for k := range n.sum {
		n.sum[k] += n.exact[k]
	}
	if dst != nil {
		copy(dst, n.sum)
	}
	return nil
}

// Sum returns a copy of the most recent private running-sum estimate.
func (n *NaiveSum) Sum() []float64 {
	out := make([]float64, n.dim)
	copy(out, n.sum)
	return out
}

// SumInto writes the most recent private running-sum estimate into dst without
// allocating.
func (n *NaiveSum) SumInto(dst []float64) {
	copy(dst, n.sum)
}

// naiveSumStateVersion is the NaiveSum checkpoint format version.
const naiveSumStateVersion = 1

// MarshalState implements Mechanism. Unlike Tree/Hybrid the released sum is
// not recomputable post-processing (fresh noise is drawn at every release), so
// both the exact accumulator and the last released sum are captured.
func (n *NaiveSum) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(naiveSumStateVersion)
	w.String("naive-sum")
	w.Int(n.dim)
	w.F64(n.sigma)
	w.Int(n.t)
	w.F64s(n.exact)
	w.F64s(n.sum)
	st := n.src.State()
	w.I64(st.Seed)
	w.U64(st.Draws)
	return w.Bytes(), nil
}

// UnmarshalState implements Mechanism.
func (n *NaiveSum) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(naiveSumStateVersion)
	r.ExpectString("mechanism kind", "naive-sum")
	r.ExpectInt("dimension", n.dim)
	if s := r.F64(); r.Err() == nil && s != n.sigma {
		return fmt.Errorf("tree: checkpoint noise scale %g does not match configured %g (privacy parameters differ)", s, n.sigma)
	}
	t := r.Int()
	r.F64sInto(n.exact)
	r.F64sInto(n.sum)
	st := randx.State{Seed: r.I64(), Draws: r.U64()}
	if err := r.Finish(); err != nil {
		return err
	}
	src, err := randx.NewSourceAt(st)
	if err != nil {
		return err
	}
	n.t = t
	n.src = src
	return nil
}

// Interface conformance checks.
var (
	_ Mechanism = (*Tree)(nil)
	_ Mechanism = (*Hybrid)(nil)
	_ Mechanism = (*NaiveSum)(nil)
)
