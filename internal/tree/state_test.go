package tree

import (
	"testing"

	"privreg/internal/dp"
	"privreg/internal/randx"
)

func testPrivacy() dp.Params { return dp.Params{Epsilon: 1, Delta: 1e-6} }

func element(i, dim int) []float64 {
	v := make([]float64, dim)
	v[i%dim] = 0.5
	v[(i+1)%dim] = -0.25
	return v
}

// buildMechanism constructs one of the three mechanisms with a deterministic
// source derived from seed.
func buildMechanism(t *testing.T, kind string, dim, maxLen int, seed int64) Mechanism {
	t.Helper()
	src := randx.NewSource(seed)
	switch kind {
	case "tree":
		m, err := New(Config{Dim: dim, MaxLen: maxLen, Sensitivity: 2, Privacy: testPrivacy()}, src)
		if err != nil {
			t.Fatal(err)
		}
		return m
	case "hybrid":
		m, err := NewHybrid(dim, 2, testPrivacy(), src)
		if err != nil {
			t.Fatal(err)
		}
		return m
	case "naive-sum":
		m, err := NewNaiveSum(dim, maxLen, 2, testPrivacy(), src)
		if err != nil {
			t.Fatal(err)
		}
		return m
	default:
		t.Fatalf("unknown kind %q", kind)
		return nil
	}
}

// TestCheckpointRestoreBitIdentical checkpoints each mechanism mid-stream,
// restores into a freshly constructed instance, and verifies the continuation
// is bit-identical to the uninterrupted run — including the noise drawn after
// the restore point.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const dim, maxLen, ckptAt = 3, 64, 21
	for _, kind := range []string{"tree", "hybrid", "naive-sum"} {
		t.Run(kind, func(t *testing.T) {
			full := buildMechanism(t, kind, dim, maxLen, 42)
			half := buildMechanism(t, kind, dim, maxLen, 42)
			for i := 0; i < ckptAt; i++ {
				v := element(i, dim)
				if _, err := full.Add(v); err != nil {
					t.Fatal(err)
				}
				if _, err := half.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := half.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			// Restore into an instance built with a different seed: every bit of
			// relevant randomness state must come from the checkpoint.
			restored := buildMechanism(t, kind, dim, maxLen, 999)
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			if restored.Len() != ckptAt {
				t.Fatalf("restored Len = %d, want %d", restored.Len(), ckptAt)
			}
			for i := ckptAt; i < maxLen; i++ {
				v := element(i, dim)
				a, err := full.Add(v)
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Add(v)
				if err != nil {
					t.Fatal(err)
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("step %d coordinate %d: uninterrupted %v != restored %v", i, k, a[k], b[k])
					}
				}
			}
		})
	}
}

// TestCheckpointStructuralMismatchRejected verifies that restoring into a
// mechanism with different structural parameters fails loudly.
func TestCheckpointStructuralMismatchRejected(t *testing.T) {
	m := buildMechanism(t, "tree", 3, 64, 1)
	blob, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := buildMechanism(t, "tree", 4, 64, 1).UnmarshalState(blob); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	if err := buildMechanism(t, "tree", 3, 32, 1).UnmarshalState(blob); err == nil {
		t.Fatal("horizon mismatch should be rejected")
	}
	if err := buildMechanism(t, "hybrid", 3, 64, 1).UnmarshalState(blob); err == nil {
		t.Fatal("kind mismatch should be rejected")
	}
	if err := buildMechanism(t, "tree", 3, 64, 1).UnmarshalState(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob should be rejected")
	}
}

// TestLazySumMatchesEager verifies the deferred running-sum aggregation (AddTo
// with nil destination, then Sum) returns exactly the estimates the eager path
// (AddTo with a destination) produces.
func TestLazySumMatchesEager(t *testing.T) {
	const dim, maxLen = 4, 40
	for _, kind := range []string{"tree", "hybrid"} {
		t.Run(kind, func(t *testing.T) {
			eager := buildMechanism(t, kind, dim, maxLen, 7)
			lazy := buildMechanism(t, kind, dim, maxLen, 7)
			dst := make([]float64, dim)
			for i := 0; i < maxLen; i++ {
				v := element(i, dim)
				if err := eager.AddTo(dst, v); err != nil {
					t.Fatal(err)
				}
				if err := lazy.AddTo(nil, v); err != nil {
					t.Fatal(err)
				}
				// Query the lazy side only occasionally, as the batch path does.
				if i%7 == 0 || i == maxLen-1 {
					got := lazy.Sum()
					want := eager.Sum()
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("step %d coordinate %d: lazy %v != eager %v", i, k, got[k], want[k])
						}
					}
				}
			}
		})
	}
}
