package tree

import (
	"math"
	"testing"

	"privreg/internal/randx"
)

// This file is the double-count audit of the lazy aggregation paths: an
// independent reference implementation recomputes every released estimate
// from scratch — exact prefix sums straight off the element log plus the
// counter-keyed noise of exactly the nodes that should contribute — and a
// property test drives the mechanisms through randomly interleaved
// AddTo(nil)/AddTo(dst)/SumInto/checkpoint/restore sequences, requiring
// bit-identical agreement at every read. A double-count at a Hybrid epoch
// rollover, a stale lazy running sum, or noise attributed to the wrong node
// shows up as an exact mismatch.

// refTreeSum recomputes, from first principles, the Tree Mechanism's released
// estimate after t elements: for every set bit j of t the covering dyadic
// node is (j, t>>j), spanning elements ((t>>j − 1)·2^j, (t>>j)·2^j], and the
// estimate is the sum of those nodes' exact sums plus their counter-keyed
// noise vectors.
func refTreeSum(key int64, sigma float64, dim, t int, elems [][]float64) []float64 {
	out := make([]float64, dim)
	noise := make([]float64, dim)
	for j := 0; t>>uint(j) > 0; j++ {
		if t&(1<<uint(j)) == 0 {
			continue
		}
		idx := t >> uint(j)
		lo := (idx - 1) << uint(j) // node covers elements lo+1 .. idx<<j (1-based)
		hi := idx << uint(j)
		for e := lo; e < hi; e++ {
			for k := range out {
				out[k] += elems[e][k]
			}
		}
		randx.FillNormalAt(key, nodeIndex(j, uint64(idx)), noise, sigma)
		for k := range out {
			out[k] += noise[k]
		}
	}
	return out
}

// refHybridSum recomputes the Hybrid estimate after t elements: completed
// epoch k (length 2^k, elements (2^k−1, 2^{k+1}−1]) contributes its exact sum
// plus its snapshot noise, and the in-progress epoch contributes a refTreeSum
// over its own elements under its derived key.
func refHybridSum(h *Hybrid, t int, elems [][]float64) []float64 {
	dim := h.dim
	out := make([]float64, dim)
	noise := make([]float64, dim)
	epoch := 0
	start := 0 // 0-based index of the current epoch's first element
	for {
		length := 1 << uint(epoch)
		if start+length > t {
			break
		}
		// Epoch is complete: exact sum + snapshot noise.
		for e := start; e < start+length; e++ {
			for k := range out {
				out[k] += elems[e][k]
			}
		}
		randx.FillNormalAt(h.noiseKey, snapshotNode(epoch), noise, h.logSigma)
		for k := range out {
			out[k] += noise[k]
		}
		start += length
		epoch++
	}
	// In-progress epoch through its own tree (possibly empty).
	sub := elems[start:t]
	treeSigma := h.epochTree.sigma
	tsum := refTreeSum(epochTreeKey(h.noiseKey, epoch), treeSigma, dim, len(sub), sub)
	for k := range out {
		out[k] += tsum[k]
	}
	return out
}

// refNaiveSum recomputes the NaiveSum release after t elements.
func refNaiveSum(key int64, sigma float64, dim, t int, elems [][]float64) []float64 {
	out := make([]float64, dim)
	if t == 0 {
		return out
	}
	for e := 0; e < t; e++ {
		for k := range out {
			out[k] += elems[e][k]
		}
	}
	noise := make([]float64, dim)
	randx.FillNormalAt(key, uint64(t), noise, sigma)
	for k := range out {
		out[k] += noise[k]
	}
	return out
}

// refSum dispatches to the kind's reference implementation.
func refSum(m Mechanism, t int, elems [][]float64) []float64 {
	switch mm := m.(type) {
	case *Tree:
		return refTreeSum(mm.noiseKey, mm.sigma, mm.dim, t, elems)
	case *Hybrid:
		return refHybridSum(mm, t, elems)
	case *NaiveSum:
		return refNaiveSum(mm.noiseKey, mm.sigma, mm.dim, t, elems)
	}
	panic("unknown mechanism")
}

// TestInterleavedOpsMatchReference is the audit property test: random
// interleavings of lazy adds, eager adds, estimate reads, and mid-stream
// checkpoint/restore (into instances built with different seeds) must match
// the reference implementation bit-for-bit at every read.
func TestInterleavedOpsMatchReference(t *testing.T) {
	const dim, maxLen = 3, 96
	for _, kind := range []string{"tree", "hybrid", "naive-sum"} {
		t.Run(kind, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				driver := randx.NewSource(int64(1000*trial + 17))
				mech := buildMechanism(t, kind, dim, maxLen, int64(trial+1))
				elems := make([][]float64, 0, maxLen)
				dst := make([]float64, dim)

				// The reference accumulates in its own order, so agreement is up
				// to float association (a few ulps); any double-count or
				// mis-keyed noise vector is orders of magnitude larger. (Exact
				// bit-identity between the mechanism's own paths is covered by
				// TestLazySumMatchesEager and the checkpoint tests.)
				check := func(got []float64, label string) {
					t.Helper()
					want := refSum(mech, len(elems), elems)
					for k := range want {
						if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
							t.Fatalf("trial %d %s at t=%d coord %d: mechanism %v != reference %v",
								trial, label, len(elems), k, got[k], want[k])
						}
					}
				}

				for len(elems) < maxLen {
					switch driver.Intn(6) {
					case 0, 1: // lazy add
						v := driver.NormalVector(dim, 1)
						elems = append(elems, v)
						if err := mech.AddTo(nil, v); err != nil {
							t.Fatal(err)
						}
					case 2: // eager add
						v := driver.NormalVector(dim, 1)
						elems = append(elems, v)
						if err := mech.AddTo(dst, v); err != nil {
							t.Fatal(err)
						}
						check(dst, "AddTo")
					case 3: // SumInto read
						mech.SumInto(dst)
						check(dst, "SumInto")
					case 4: // Sum read
						check(mech.Sum(), "Sum")
					case 5: // checkpoint, restore into a differently seeded instance
						blob, err := mech.MarshalState()
						if err != nil {
							t.Fatal(err)
						}
						restored := buildMechanism(t, kind, dim, maxLen, int64(9000+trial))
						if err := restored.UnmarshalState(blob); err != nil {
							t.Fatal(err)
						}
						mech = restored
						check(mech.Sum(), "post-restore Sum")
					}
				}
				check(mech.Sum(), "final Sum")
			}
		})
	}
}

// TestHybridEpochRolloverNoDoubleCount pins the rollover accounting directly:
// at every epoch boundary crossing, the released estimate of a low-noise
// Hybrid must stay within noise tolerance of the exact prefix sum — a
// double-counted epoch (folded into the completed accumulator while still in
// the tree term) would show up as a near-2× error at the boundary.
func TestHybridEpochRolloverNoDoubleCount(t *testing.T) {
	h, err := NewHybrid(2, 2, lowNoise(), randx.NewSource(31))
	if err != nil {
		t.Fatal(err)
	}
	exact := []float64{0, 0}
	for i := 1; i <= 130; i++ { // crosses boundaries at 1, 3, 7, 15, 31, 63, 127
		v := []float64{1, -0.5}
		exact[0] += v[0]
		exact[1] += v[1]
		got, err := h.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-exact[0]) > 1e-2 || math.Abs(got[1]-exact[1]) > 1e-2 {
			t.Fatalf("t=%d: got %v, exact %v", i, got, exact)
		}
		// A lazy reader must agree with the eager value bit-for-bit.
		lazy := h.Sum()
		if lazy[0] != got[0] || lazy[1] != got[1] {
			t.Fatalf("t=%d: Sum %v != AddTo estimate %v", i, lazy, got)
		}
	}
}
