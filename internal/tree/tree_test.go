package tree

import (
	"math"
	"testing"
	"testing/quick"

	"privreg/internal/dp"
	"privreg/internal/randx"
)

// lowNoise returns privacy parameters with an enormous epsilon so noise is
// negligible and the mechanism's bookkeeping can be checked exactly.
func lowNoise() dp.Params { return dp.Params{Epsilon: 1e9, Delta: 1e-6} }

func TestTreeConfigValidation(t *testing.T) {
	src := randx.NewSource(1)
	cases := []Config{
		{Dim: 0, MaxLen: 4, Sensitivity: 1, Privacy: lowNoise()},
		{Dim: 2, MaxLen: 0, Sensitivity: 1, Privacy: lowNoise()},
		{Dim: 2, MaxLen: 4, Sensitivity: -1, Privacy: lowNoise()},
		{Dim: 2, MaxLen: 4, Sensitivity: 1, Privacy: dp.Params{Epsilon: 0, Delta: 1e-6}},
		{Dim: 2, MaxLen: 4, Sensitivity: 1, Privacy: dp.Params{Epsilon: 1, Delta: 0}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, src); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := New(Config{Dim: 2, MaxLen: 4, Sensitivity: 1, Privacy: lowNoise()}, nil); err == nil {
		t.Fatal("nil source should be rejected")
	}
}

func TestTreeExactSumsAtNegligibleNoise(t *testing.T) {
	src := randx.NewSource(2)
	const dim, T = 3, 37
	mech, err := New(Config{Dim: dim, MaxLen: T, Sensitivity: 2, Privacy: lowNoise()}, src)
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, dim)
	for i := 1; i <= T; i++ {
		v := []float64{float64(i), -0.5 * float64(i), 1}
		for k := range exact {
			exact[k] += v[k]
		}
		got, err := mech.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		for k := range exact {
			if math.Abs(got[k]-exact[k]) > 1e-3 {
				t.Fatalf("t=%d coord %d: got %v want %v", i, k, got[k], exact[k])
			}
		}
	}
	if mech.Len() != T {
		t.Fatalf("Len = %d", mech.Len())
	}
}

func TestTreeRejectsOverflowAndDimMismatch(t *testing.T) {
	src := randx.NewSource(3)
	mech, err := New(Config{Dim: 2, MaxLen: 2, Sensitivity: 1, Privacy: lowNoise()}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mech.Add([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := mech.Add([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mech.Add([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mech.Add([]float64{1, 1}); err == nil {
		t.Fatal("exceeding MaxLen should error")
	}
}

func TestTreeNoiseCalibration(t *testing.T) {
	src := randx.NewSource(4)
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	mech, err := New(Config{Dim: 2, MaxLen: 1024, Sensitivity: 2, Privacy: p}, src)
	if err != nil {
		t.Fatal(err)
	}
	levels := mech.Levels()
	want := 2 * float64(levels) * math.Sqrt(2*math.Log(2/p.Delta)) / p.Epsilon
	if math.Abs(mech.NoiseSigma()-want) > 1e-9 {
		t.Fatalf("sigma = %v, want %v", mech.NoiseSigma(), want)
	}
	if levels != 11 { // ceil(log2 1024)+1
		t.Fatalf("levels = %d, want 11", levels)
	}
	// Error bound sanity: positive, increasing in dimension.
	small := mech.ErrorBound(0.05)
	src2 := randx.NewSource(5)
	bigger, _ := New(Config{Dim: 32, MaxLen: 1024, Sensitivity: 2, Privacy: p}, src2)
	if bigger.ErrorBound(0.05) <= small {
		t.Fatal("error bound should grow with dimension")
	}
}

func TestTreeErrorWithinBound(t *testing.T) {
	// With real noise, the observed error should stay below the 95% bound in the
	// vast majority of runs; we allow a small number of violations.
	p := dp.Params{Epsilon: 1, Delta: 1e-5}
	const trials = 20
	violations := 0
	for trial := 0; trial < trials; trial++ {
		src := randx.NewSource(int64(100 + trial))
		const dim, T = 4, 128
		mech, err := New(Config{Dim: dim, MaxLen: T, Sensitivity: 2, Privacy: p}, src)
		if err != nil {
			t.Fatal(err)
		}
		bound := mech.ErrorBound(0.05)
		exact := make([]float64, dim)
		worst := 0.0
		for i := 0; i < T; i++ {
			v := src.UnitSphere(dim)
			for k := range exact {
				exact[k] += v[k]
			}
			got, err := mech.Add(v)
			if err != nil {
				t.Fatal(err)
			}
			var e float64
			for k := range exact {
				d := got[k] - exact[k]
				e += d * d
			}
			if e = math.Sqrt(e); e > worst {
				worst = e
			}
		}
		if worst > bound {
			violations++
		}
	}
	if violations > 3 {
		t.Fatalf("error exceeded the 95%% bound in %d/%d trials", violations, trials)
	}
}

func TestTreeSpaceUsage(t *testing.T) {
	// The mechanism must only keep O(levels) per-level buffers, independent of T.
	src := randx.NewSource(6)
	mech, err := New(Config{Dim: 5, MaxLen: 1 << 16, Sensitivity: 1, Privacy: lowNoise()}, src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(mech.alpha), mech.Levels(); got != want {
		t.Fatalf("alpha buffers = %d, want %d", got, want)
	}
	if got, want := len(mech.noise), mech.Levels(); got != want {
		t.Fatalf("noise buffers = %d, want %d", got, want)
	}
}

func TestLowestSetBit(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 0, 4: 2, 6: 1, 8: 3, 12: 2, 1024: 10}
	for in, want := range cases {
		if got := lowestSetBit(in); got != want {
			t.Fatalf("lowestSetBit(%d) = %d, want %d", in, got, want)
		}
	}
	// The degenerate inputs must terminate (the old shift loop spun forever on
	// them) and map to level 0.
	if got := lowestSetBit(0); got != 0 {
		t.Fatalf("lowestSetBit(0) = %d, want 0", got)
	}
	if got := lowestSetBit(-8); got != 0 {
		t.Fatalf("lowestSetBit(-8) = %d, want 0", got)
	}
}

// TestAddToMatchesAdd checks that the allocation-free entry point and the
// allocating one produce identical streams of estimates for identical seeds.
func TestAddToMatchesAdd(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	const dim, T = 3, 50
	a, err := New(Config{Dim: dim, MaxLen: T, Sensitivity: 2, Privacy: p}, randx.NewSource(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Dim: dim, MaxLen: T, Sensitivity: 2, Privacy: p}, randx.NewSource(42))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, dim)
	for i := 0; i < T; i++ {
		v := []float64{float64(i), 1, -0.25 * float64(i)}
		got, err := a.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddTo(dst, v); err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if got[k] != dst[k] {
				t.Fatalf("t=%d coord %d: Add=%v AddTo=%v", i, k, got[k], dst[k])
			}
		}
	}
	// SumInto must agree with Sum.
	b.SumInto(dst)
	for k, v := range a.Sum() {
		if v != dst[k] {
			t.Fatalf("SumInto disagrees with Sum at %d", k)
		}
	}
}

// TestTreeAddToZeroAlloc is the allocation-regression guard of the hot path:
// a Tree Mechanism update must not touch the heap.
func TestTreeAddToZeroAlloc(t *testing.T) {
	src := randx.NewSource(11)
	mech, err := New(Config{
		Dim: 256, MaxLen: 1 << 20, Sensitivity: 2,
		Privacy: dp.Params{Epsilon: 1, Delta: 1e-6},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 256)
	v[0] = 1
	dst := make([]float64, 256)
	if allocs := testing.AllocsPerRun(200, func() {
		if err := mech.AddTo(dst, v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Tree.AddTo allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { mech.SumInto(dst) }); allocs != 0 {
		t.Fatalf("Tree.SumInto allocates %v times per run, want 0", allocs)
	}
}

// TestNaiveSumAddToZeroAlloc covers the baseline mechanism's fast path too.
func TestNaiveSumAddToZeroAlloc(t *testing.T) {
	src := randx.NewSource(12)
	mech, err := NewNaiveSum(64, 1<<20, 2, dp.Params{Epsilon: 1, Delta: 1e-6}, src)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 64)
	v[1] = 0.5
	dst := make([]float64, 64)
	if allocs := testing.AllocsPerRun(200, func() {
		if err := mech.AddTo(dst, v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("NaiveSum.AddTo allocates %v times per run, want 0", allocs)
	}
}

// TestHybridAddToMatchesAdd checks the Hybrid fast path across several epoch
// boundaries.
func TestHybridAddToMatchesAdd(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	a, err := NewHybrid(2, 2, p, randx.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHybrid(2, 2, p, randx.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	for i := 1; i <= 70; i++ {
		v := []float64{1, float64(i % 5)}
		got, err := a.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddTo(dst, v); err != nil {
			t.Fatal(err)
		}
		if got[0] != dst[0] || got[1] != dst[1] {
			t.Fatalf("t=%d: Add=%v AddTo=%v", i, got, dst)
		}
	}
}

// TestSharedSourceMechanismsGetIndependentNoise guards the key-derivation
// contract: two mechanisms constructed from the *same* Source must receive
// distinct noise keys (the derivation consumes a parent draw, like Split), so
// their releases never share noise — subtracting two releases must not cancel
// the perturbation.
func TestSharedSourceMechanismsGetIndependentNoise(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	src := randx.NewSource(7)
	tr, err := New(Config{Dim: 1, MaxLen: 8, Sensitivity: 2, Privacy: p}, src)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNaiveSum(1, 8, 2, p, src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.noiseKey == nv.noiseKey {
		t.Fatal("mechanisms built from one source share a noise key")
	}
	a, err := tr.Add([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := nv.Add([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	// Zero inputs make the releases pure noise; normalized by each sigma they
	// must differ (equality would mean a shared underlying draw).
	if a[0]/tr.NoiseSigma() == b[0]/nv.NoiseSigma() {
		t.Fatal("releases of shared-source mechanisms carry identical noise")
	}
}

func TestNumLevels(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 8: 4, 9: 5, 1024: 11}
	for in, want := range cases {
		if got := numLevels(in); got != want {
			t.Fatalf("numLevels(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHybridExactSumsAtNegligibleNoise(t *testing.T) {
	src := randx.NewSource(7)
	mech, err := NewHybrid(2, 2, lowNoise(), src)
	if err != nil {
		t.Fatal(err)
	}
	exact := []float64{0, 0}
	const T = 100 // crosses several epoch boundaries
	for i := 1; i <= T; i++ {
		v := []float64{1, float64(i % 3)}
		exact[0] += v[0]
		exact[1] += v[1]
		got, err := mech.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-exact[0]) > 1e-2 || math.Abs(got[1]-exact[1]) > 1e-2 {
			t.Fatalf("t=%d: got %v want %v", i, got, exact)
		}
	}
	if mech.Len() != T {
		t.Fatalf("Len = %d", mech.Len())
	}
}

func TestHybridValidation(t *testing.T) {
	src := randx.NewSource(8)
	if _, err := NewHybrid(0, 1, lowNoise(), src); err == nil {
		t.Fatal("zero dimension should be rejected")
	}
	if _, err := NewHybrid(2, 1, dp.Params{Epsilon: 1, Delta: 0}, src); err == nil {
		t.Fatal("delta=0 should be rejected")
	}
	if _, err := NewHybrid(2, 1, lowNoise(), nil); err == nil {
		t.Fatal("nil source should be rejected")
	}
	mech, _ := NewHybrid(2, 1, lowNoise(), src)
	if _, err := mech.Add([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestNaiveSumExactAtNegligibleNoise(t *testing.T) {
	src := randx.NewSource(9)
	mech, err := NewNaiveSum(2, 16, 2, lowNoise(), src)
	if err != nil {
		t.Fatal(err)
	}
	exact := []float64{0, 0}
	for i := 0; i < 16; i++ {
		v := []float64{1, -1}
		exact[0]++
		exact[1]--
		got, err := mech.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-exact[0]) > 1e-2 || math.Abs(got[1]-exact[1]) > 1e-2 {
			t.Fatalf("naive sum wrong at %d: %v vs %v", i, got, exact)
		}
	}
}

func TestNaiveSumNoisierThanTreeForLongStreams(t *testing.T) {
	// The defining comparison: for the same total budget the per-release noise of
	// the naive mechanism must exceed the tree mechanism's per-node noise scaled
	// by the number of summed nodes, once T is large.
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	const T = 4096
	src := randx.NewSource(10)
	tr, err := New(Config{Dim: 1, MaxLen: T, Sensitivity: 2, Privacy: p}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNaiveSum(1, T, 2, p, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case per-release error scale: tree ≈ σ_tree·√levels, naive ≈ σ_naive.
	treeScale := tr.NoiseSigma() * math.Sqrt(float64(tr.Levels()))
	if nv.NoiseSigma() <= treeScale {
		t.Fatalf("naive per-release noise %v should exceed tree error scale %v at T=%d",
			nv.NoiseSigma(), treeScale, T)
	}
}

// Property: with negligible noise the tree mechanism reproduces prefix sums of
// arbitrary random streams.
func TestTreePrefixSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.NewSource(seed)
		dim := 1 + src.Intn(4)
		T := 1 + src.Intn(40)
		mech, err := New(Config{Dim: dim, MaxLen: T, Sensitivity: 1, Privacy: lowNoise()}, src.Split())
		if err != nil {
			return false
		}
		exact := make([]float64, dim)
		for i := 0; i < T; i++ {
			v := src.NormalVector(dim, 1)
			for k := range exact {
				exact[k] += v[k]
			}
			got, err := mech.Add(v)
			if err != nil {
				return false
			}
			for k := range exact {
				if math.Abs(got[k]-exact[k]) > 1e-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
