package vec

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vec: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix whose rows are copies of the given vectors.
// All rows must have the same dimension.
func NewMatrixFromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(dimErr("NewMatrixFromRows", d, len(r)))
		}
		copy(m.data[i*d:(i+1)*d], r)
	}
	return m
}

// Identity returns the d x d identity matrix.
func Identity(d int) *Matrix {
	m := NewMatrix(d, d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Incr adds v to the entry at row i, column j.
func (m *Matrix) Incr(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("vec: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a Vector sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("vec: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return Vector(m.data[i*m.cols : (i+1)*m.cols])
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("vec: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets every entry of m to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Data returns the underlying row-major storage of m. Callers must treat the
// returned slice as read-only unless they own the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// CopyFrom copies the entries of src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("vec: CopyFrom shape mismatch")
	}
	copy(m.data, src.data)
}

// AddInPlace sets m = m + b. Shapes must match.
func (m *Matrix) AddInPlace(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic("vec: AddInPlace shape mismatch")
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
}

// SubInPlace sets m = m - b. Shapes must match.
func (m *Matrix) SubInPlace(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic("vec: SubInPlace shape mismatch")
	}
	for i := range m.data {
		m.data[i] -= b.data[i]
	}
}

// ScaleInPlace multiplies every entry of m by c.
func (m *Matrix) ScaleInPlace(c float64) {
	for i := range m.data {
		m.data[i] *= c
	}
}

// MulVec returns m * x as a new vector of dimension Rows().
func (m *Matrix) MulVec(x Vector) Vector {
	if m.cols != len(x) {
		panic(dimErr("MulVec", m.cols, len(x)))
	}
	out := make(Vector, m.rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes dst = m * x without allocating. dst must have dimension
// Rows(). Large products are computed on multiple goroutines; the result is
// bit-identical to the serial evaluation (each destination row is an
// independent fixed-order accumulation).
func (m *Matrix) MulVecTo(dst, x Vector) {
	if m.cols != len(x) {
		panic(dimErr("MulVecTo", m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(dimErr("MulVecTo dst", len(dst), m.rows))
	}
	if m.rows*m.cols >= mulVecParallelMin {
		parallelRows(m.rows, func(lo, hi int) { m.mulVecRows(dst, x, lo, hi) })
		return
	}
	m.mulVecRows(dst, x, 0, m.rows)
}

// MulVecT returns mᵀ * x as a new vector of dimension Cols().
func (m *Matrix) MulVecT(x Vector) Vector {
	out := make(Vector, m.cols)
	m.MulVecTTo(out, x)
	return out
}

// MulVecTTo computes dst = mᵀ * x without allocating. dst must have dimension
// Cols().
func (m *Matrix) MulVecTTo(dst, x Vector) {
	if m.rows != len(x) {
		panic(dimErr("MulVecT", m.rows, len(x)))
	}
	if len(dst) != m.cols {
		panic(dimErr("MulVecTTo dst", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(dimErr("Mul", m.cols, b.rows))
	}
	out := NewMatrix(m.rows, b.cols)
	m.mulInto(out, b)
	return out
}

// MulTo computes dst = m * b without allocating. dst must be Rows() x b.Cols()
// and must not alias m or b.
func (m *Matrix) MulTo(dst, b *Matrix) {
	if m.cols != b.rows {
		panic(dimErr("MulTo", m.cols, b.rows))
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic("vec: MulTo destination shape mismatch")
	}
	m.mulInto(dst, b)
}

// mulInto dispatches the product to the serial or row-parallel kernel. The
// parallel kernel partitions destination rows, so the result is bit-identical
// to the serial one.
func (m *Matrix) mulInto(out, b *Matrix) {
	if m.rows*m.cols*b.cols >= mulParallelMin {
		parallelRows(m.rows, func(lo, hi int) { m.mulRows(out, b, lo, hi) })
		return
	}
	m.mulRows(out, b, 0, m.rows)
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	m.TransposeTo(out)
	return out
}

// TransposeTo writes the transpose of m into dst without allocating. dst must
// be Cols() x Rows() and must not alias m.
func (m *Matrix) TransposeTo(dst *Matrix) {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic("vec: TransposeTo destination shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.data[j*dst.cols+i] = m.data[i*m.cols+j]
		}
	}
}

// AddOuterInPlace adds the rank-one update alpha * x xᵀ to the square matrix m.
// The matrix must be Dim(x) x Dim(x).
func (m *Matrix) AddOuterInPlace(alpha float64, x Vector) {
	if m.rows != len(x) || m.cols != len(x) {
		panic("vec: AddOuterInPlace requires a d x d matrix for a d-vector")
	}
	for i := 0; i < m.rows; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] += xi * x[j]
		}
	}
}

// Outer returns the outer product x yᵀ as a new len(x) x len(y) matrix.
func Outer(x, y Vector) *Matrix {
	out := NewMatrix(len(x), len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, yj := range y {
			row[j] = xi * yj
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	return Norm2(Vector(m.data))
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, x := range m.data {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// SymmetrizeInPlace replaces the square matrix m by (m + mᵀ)/2. This is used to
// repair the symmetry of privately perturbed second-moment matrices before they
// are consumed by the optimizer.
func (m *Matrix) SymmetrizeInPlace() {
	if m.rows != m.cols {
		panic("vec: SymmetrizeInPlace requires a square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// Trace returns the trace of the square matrix m.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("vec: Trace requires a square matrix")
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// SpectralNormUpperBound returns an inexpensive upper bound on the spectral norm
// of m, namely min(sqrt(‖m‖_1 ‖m‖_inf), ‖m‖_F). It is used to bound step sizes.
func (m *Matrix) SpectralNormUpperBound() float64 {
	// ‖m‖_inf: max row sum of absolute values.
	var rowMax float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > rowMax {
			rowMax = s
		}
	}
	// ‖m‖_1: max column sum of absolute values.
	colSums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j, v := range m.data[i*m.cols : (i+1)*m.cols] {
			colSums[j] += math.Abs(v)
		}
	}
	var colMax float64
	for _, s := range colSums {
		if s > colMax {
			colMax = s
		}
	}
	holder := math.Sqrt(rowMax * colMax)
	fro := m.FrobeniusNorm()
	if fro < holder {
		return fro
	}
	return holder
}

// PowerIterationSpectralNorm estimates the spectral norm (largest singular value)
// of m by running iters rounds of power iteration on mᵀm, starting from v0.
// If v0 is nil a deterministic all-ones start vector is used. The estimate is a
// lower bound that converges to the true value as iters grows.
func (m *Matrix) PowerIterationSpectralNorm(iters int, v0 Vector) float64 {
	if m.cols == 0 || m.rows == 0 {
		return 0
	}
	v := v0
	if v == nil {
		v = make(Vector, m.cols)
		v.Fill(1)
	} else {
		v = v.Clone()
	}
	if v.Normalize() == 0 {
		v.Fill(1)
		v.Normalize()
	}
	var sigma float64
	for k := 0; k < iters; k++ {
		u := m.MulVec(v)
		sigma = Norm2(u)
		if sigma == 0 {
			return 0
		}
		v = m.MulVecT(u)
		if v.Normalize() == 0 {
			return sigma
		}
	}
	return sigma
}

// Equal reports whether a and b have the same shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		s += " ["
		for i := 0; i < m.rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		s += "]"
	}
	return s
}
