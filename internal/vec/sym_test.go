package vec

import (
	"math"
	"testing"
)

func symTestVectors(d, n int) []Vector {
	out := make([]Vector, n)
	s := uint64(12345)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>11))/float64(1<<52) - 1
	}
	for i := range out {
		v := make(Vector, d)
		for j := range v {
			v[j] = next()
		}
		out[i] = v
	}
	return out
}

func TestSymMatrixMatchesDenseOuter(t *testing.T) {
	for _, d := range []int{1, 2, 5, 8, 17} {
		sym := NewSymMatrix(d)
		dense := NewMatrix(d, d)
		xs := symTestVectors(d, 7)
		for k, x := range xs {
			alpha := 1 + 0.25*float64(k)
			sym.AddScaledOuter(alpha, x)
			dense.AddOuterInPlace(alpha, x)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if math.Abs(sym.At(i, j)-dense.At(i, j)) > 1e-12 {
					t.Fatalf("d=%d: sym(%d,%d)=%v dense=%v", d, i, j, sym.At(i, j), dense.At(i, j))
				}
			}
		}
		if math.Abs(sym.Trace()-dense.Trace()) > 1e-12 {
			t.Fatalf("d=%d: trace %v vs %v", d, sym.Trace(), dense.Trace())
		}
		// Mat-vec agrees with the dense product.
		x := symTestVectors(d, 1)[0]
		got := make(Vector, d)
		sym.MulVecTo(got, x)
		want := dense.MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("d=%d: MulVecTo[%d]=%v dense=%v", d, i, got[i], want[i])
			}
		}
		// Round-trip through the dense conversion.
		back := NewMatrix(d, d)
		sym.ToDense(back)
		if !back.Equal(dense, 1e-12) {
			t.Fatalf("d=%d: ToDense mismatch", d)
		}
	}
}

func TestSymMatrixCopyCloneZero(t *testing.T) {
	d := 6
	a := NewSymMatrix(d)
	xs := symTestVectors(d, 3)
	for _, x := range xs {
		a.AddScaledOuter(1, x)
	}
	b := a.Clone()
	c := NewSymMatrix(d)
	c.CopyFrom(a)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if b.At(i, j) != a.At(i, j) || c.At(i, j) != a.At(i, j) {
				t.Fatalf("copy mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Clone is independent storage.
	b.AddScaledOuter(1, xs[0])
	if b.At(0, 0) == a.At(0, 0) && xs[0][0] != 0 {
		t.Fatal("Clone shares storage with the original")
	}
	a.Zero()
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("Zero left a non-zero entry")
		}
	}
	if len(a.Data()) != d*(d+1)/2 {
		t.Fatalf("packed storage has %d entries, want %d", len(a.Data()), d*(d+1)/2)
	}
}

func TestSymMatrixMulVecDeterministic(t *testing.T) {
	d := 9
	a := NewSymMatrix(d)
	for _, x := range symTestVectors(d, 5) {
		a.AddScaledOuter(0.7, x)
	}
	x := symTestVectors(d, 1)[0]
	first := make(Vector, d)
	a.MulVecTo(first, x)
	for rep := 0; rep < 10; rep++ {
		got := make(Vector, d)
		a.MulVecTo(got, x)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("rep %d: MulVecTo not bit-deterministic at %d", rep, i)
			}
		}
	}
}

func BenchmarkSymMatrixAddScaledOuter(b *testing.B) {
	d := 32
	a := NewSymMatrix(d)
	x := symTestVectors(d, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AddScaledOuter(1, x)
	}
}
