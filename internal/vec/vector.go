// Package vec provides the small dense linear-algebra substrate used throughout
// the private incremental regression library: vectors, dense matrices,
// factorizations (Cholesky, QR), and least-squares solvers.
//
// The package deliberately keeps a tiny, allocation-aware surface: everything is
// backed by []float64 slices, operations state clearly whether they allocate, and
// mutating operations take the receiver as the destination. It is not a general
// purpose BLAS; it implements exactly what the mechanisms in internal/core and the
// batch solvers in internal/erm need, with careful handling of degenerate inputs.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or wrapped) whenever two operands have
// incompatible dimensions.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector {
	if d < 0 {
		panic("vec: negative dimension")
	}
	return make(Vector, d)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimension (length) of v.
func (v Vector) Dim() int { return len(v) }

// CopyFrom copies src into v. The dimensions must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(dimErr("CopyFrom", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets every entry of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every entry of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Dot returns the inner product <v, w>.
func Dot(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(dimErr("Dot", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v. It guards against overflow for
// large entries by scaling, matching the behaviour of the classical dnrm2 kernel.
func Norm2(v Vector) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the L1 norm of v.
func Norm1(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L-infinity norm of v.
func NormInf(v Vector) float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// NormP returns the Lp norm of v for p >= 1. For p = +Inf it returns NormInf(v).
func NormP(v Vector, p float64) float64 {
	if p < 1 {
		panic("vec: NormP requires p >= 1")
	}
	if math.IsInf(p, 1) {
		return NormInf(v)
	}
	if p == 1 {
		return Norm1(v)
	}
	if p == 2 {
		return Norm2(v)
	}
	var s float64
	for _, x := range v {
		s += math.Pow(math.Abs(x), p)
	}
	return math.Pow(s, 1/p)
}

// Scale multiplies every entry of v in place by c.
func (v Vector) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Scaled returns a new vector equal to c*v.
func Scaled(v Vector, c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Add returns the new vector v + w.
func Add(v, w Vector) Vector {
	if len(v) != len(w) {
		panic(dimErr("Add", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns the new vector v - w.
func Sub(v, w Vector) Vector {
	if len(v) != len(w) {
		panic(dimErr("Sub", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace sets v = v + w.
func (v Vector) AddInPlace(w Vector) {
	if len(v) != len(w) {
		panic(dimErr("AddInPlace", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace sets v = v - w.
func (v Vector) SubInPlace(w Vector) {
	if len(v) != len(w) {
		panic(dimErr("SubInPlace", len(v), len(w)))
	}
	for i := range v {
		v[i] -= w[i]
	}
}

// AddScaledInPlace sets v = v + alpha*w without allocating. It is the method
// form of Axpy, convenient when the destination is the receiver of a chain of
// in-place updates.
func (v Vector) AddScaledInPlace(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(dimErr("AddScaledInPlace", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Axpy sets dst = dst + alpha*x. dst and x must have the same dimension.
func Axpy(dst Vector, alpha float64, x Vector) {
	if len(dst) != len(x) {
		panic(dimErr("Axpy", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Dist2 returns the Euclidean distance between v and w.
func Dist2(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(dimErr("Dist2", len(v), len(w)))
	}
	var scale, ssq float64
	ssq = 1
	for i := range v {
		x := v[i] - w[i]
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Normalize scales v in place to unit Euclidean norm and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func (v Vector) Normalize() float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	v.Scale(1 / n)
	return n
}

// Equal reports whether v and w have the same dimension and all entries are
// within tol of each other.
func Equal(v, w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry of v is finite (neither NaN nor ±Inf).
func IsFinite(v Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Sum returns the sum of the entries of v.
func Sum(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum entry of v and its index. It panics on an empty vector.
func Max(v Vector) (float64, int) {
	if len(v) == 0 {
		panic("vec: Max of empty vector")
	}
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return best, bi
}

// Support returns the indices of the nonzero entries of v.
func Support(v Vector) []int {
	var idx []int
	for i, x := range v {
		if x != 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// NumNonzero returns the number of nonzero entries of v.
func NumNonzero(v Vector) int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

func dimErr(op string, a, b int) string {
	return fmt.Sprintf("vec: %s: %v (%d vs %d)", op, ErrDimensionMismatch, a, b)
}
