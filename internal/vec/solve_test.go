package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func spdMatrix(r *rand.Rand, d int) *Matrix {
	// A = B Bᵀ + I is symmetric positive definite.
	b := NewMatrix(d, d)
	for i := range b.Data() {
		b.Data()[i] = r.NormFloat64()
	}
	a := b.Mul(b.Transpose())
	for i := 0; i < d; i++ {
		a.Incr(i, i, 1)
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := spdMatrix(r, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.Transpose())
	if !recon.Equal(a, 1e-8) {
		t.Fatalf("L Lᵀ != A\nA=%v\nrecon=%v", a, recon)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFromRows([]Vector{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestSolveSPD(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		d := 1 + r.Intn(8)
		a := spdMatrix(r, d)
		want := randomVector(r, d)
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want, 1e-6) {
			t.Fatalf("SolveSPD: got %v want %v", got, want)
		}
	}
}

func TestSolveRidgeMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := spdMatrix(r, 4)
	b := randomVector(r, 4)
	lambda := 0.7
	got, err := SolveRidge(a, b, lambda)
	if err != nil {
		t.Fatal(err)
	}
	reg := a.Clone()
	for i := 0; i < 4; i++ {
		reg.Incr(i, i, lambda)
	}
	check := reg.MulVec(got)
	if !Equal(check, b, 1e-8) {
		t.Fatalf("(A+λI)x != b: %v vs %v", check, b)
	}
	if _, err := SolveRidge(a, b, -1); err == nil {
		t.Fatal("negative ridge should error")
	}
}

func TestQRLeastSquaresExactFit(t *testing.T) {
	// Overdetermined consistent system: the residual must be ~0 and the
	// solution must match the generator.
	r := rand.New(rand.NewSource(6))
	n, d := 12, 4
	a := NewMatrix(n, d)
	for i := range a.Data() {
		a.Data()[i] = r.NormFloat64()
	}
	want := randomVector(r, d)
	b := a.MulVec(want)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.IsFullRank() {
		t.Fatal("random matrix reported rank deficient")
	}
	got, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-8) {
		t.Fatalf("QR solve: got %v want %v", got, want)
	}
}

func TestLeastSquaresNormalEquationsOptimality(t *testing.T) {
	// For a noisy overdetermined system, the residual of the LS solution must be
	// orthogonal to the column space (normal equations Aᵀ(Ax - b) = 0).
	r := rand.New(rand.NewSource(7))
	n, d := 20, 3
	a := NewMatrix(n, d)
	for i := range a.Data() {
		a.Data()[i] = r.NormFloat64()
	}
	b := randomVector(r, n)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := a.MulVec(x)
	resid.SubInPlace(b)
	normalEq := a.MulVecT(resid)
	if Norm2(normalEq) > 1e-6 {
		t.Fatalf("normal equations violated: |Aᵀr| = %v", Norm2(normalEq))
	}
}

func TestLeastSquaresRankDeficientFallback(t *testing.T) {
	// Duplicate columns: rank deficient; the fallback must still return a finite
	// solution with a small residual relative to the best achievable.
	a := NewMatrixFromRows([]Vector{{1, 1}, {2, 2}, {3, 3}})
	b := Vector{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFinite(x) {
		t.Fatalf("non-finite solution %v", x)
	}
	resid := a.MulVec(x)
	resid.SubInPlace(b)
	if Norm2(resid) > 1e-4 {
		t.Fatalf("residual too large: %v", Norm2(resid))
	}
}

func TestQRRejectsWideMatrix(t *testing.T) {
	a := NewMatrix(2, 5)
	if _, err := NewQR(a); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

// Property: SolveSPD solves systems built from random SPD matrices to high
// relative accuracy.
func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a := spdMatrix(r, d)
		want := randomVector(r, d)
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return Dist2(got, want) <= 1e-5*(1+Norm2(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyNaNRejected(t *testing.T) {
	a := NewMatrixFromRows([]Vector{{math.NaN(), 0}, {0, 1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("NaN matrix should be rejected")
	}
}
