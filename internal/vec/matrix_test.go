package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(0, 1, 5)
	m.Incr(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMatrixFromRowsAndRowCol(t *testing.T) {
	m := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if !Equal(m.Row(1), Vector{3, 4}, 0) {
		t.Fatalf("Row(1) = %v", m.Row(1))
	}
	if !Equal(m.Col(1), Vector{2, 4, 6}, 0) {
		t.Fatalf("Col(1) = %v", m.Col(1))
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	m := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	x := Vector{1, 1}
	if got := m.MulVec(x); !Equal(got, Vector{3, 7}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
	if got := m.MulVecT(x); !Equal(got, Vector{4, 6}, 0) {
		t.Fatalf("MulVecT = %v", got)
	}
	dst := make(Vector, 2)
	m.MulVecTo(dst, x)
	if !Equal(dst, Vector{3, 7}, 0) {
		t.Fatalf("MulVecTo = %v", dst)
	}
	tr := m.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Fatalf("Transpose wrong: %v", tr)
	}
}

func TestMatMulAgainstManual(t *testing.T) {
	a := NewMatrixFromRows([]Vector{{1, 2, 0}, {0, 1, -1}})
	b := NewMatrixFromRows([]Vector{{1, 0}, {2, 1}, {3, 3}})
	c := a.Mul(b)
	want := NewMatrixFromRows([]Vector{{5, 2}, {-1, -2}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestOuterAndAddOuter(t *testing.T) {
	x := Vector{1, 2}
	y := Vector{3, 4, 5}
	o := Outer(x, y)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Fatalf("Outer wrong: %v", o)
	}
	m := NewMatrix(2, 2)
	m.AddOuterInPlace(2, x)
	if m.At(0, 0) != 2 || m.At(1, 1) != 8 || m.At(0, 1) != 4 {
		t.Fatalf("AddOuterInPlace wrong: %v", m)
	}
}

func TestSymmetrizeTraceNorms(t *testing.T) {
	m := NewMatrixFromRows([]Vector{{1, 4}, {2, 3}})
	m.SymmetrizeInPlace()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("SymmetrizeInPlace wrong: %v", m)
	}
	if m.Trace() != 4 {
		t.Fatalf("Trace = %v", m.Trace())
	}
	if got := m.FrobeniusNorm(); math.Abs(got-math.Sqrt(1+9+9+9)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestSpectralNormEstimates(t *testing.T) {
	// diag(3, 1) has spectral norm 3.
	m := NewMatrixFromRows([]Vector{{3, 0}, {0, 1}})
	upper := m.SpectralNormUpperBound()
	if upper < 3-1e-9 {
		t.Fatalf("upper bound %v below true value 3", upper)
	}
	est := m.PowerIterationSpectralNorm(50, Vector{1, 1})
	if math.Abs(est-3) > 1e-6 {
		t.Fatalf("power iteration = %v, want 3", est)
	}
	if est > upper+1e-9 {
		t.Fatalf("power iteration %v exceeds upper bound %v", est, upper)
	}
}

// Property: (A B) x == A (B x) for random matrices.
func TestMulAssociativityWithVector(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewMatrix(n, k)
		b := NewMatrix(k, m)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = r.NormFloat64()
		}
		x := randomVector(r, m)
		left := a.Mul(b).MulVec(x)
		right := a.MulVec(b.MulVec(x))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecT(x) equals Transpose().MulVec(x).
func TestMulVecTMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(6), 1+r.Intn(6)
		a := NewMatrix(n, m)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		x := randomVector(r, n)
		return Equal(a.MulVecT(x), a.Transpose().MulVec(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMulVecMatchesSerial checks that the goroutine-parallel MulVec
// path (triggered above the size threshold) is bit-identical to the serial
// row loop.
func TestParallelMulVecMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	rows, cols := 300, 300 // rows*cols above mulVecParallelMin
	if rows*cols < mulVecParallelMin {
		t.Fatalf("test matrix too small to exercise the parallel path")
	}
	a := NewMatrix(rows, cols)
	for i := range a.Data() {
		a.Data()[i] = r.NormFloat64()
	}
	x := randomVector(r, cols)
	got := a.MulVec(x)
	want := make(Vector, rows)
	a.mulVecRows(want, x, 0, rows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel MulVec differs from serial at row %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestMulToAndTransposeTo checks the in-place variants against their
// allocating counterparts, including reuse of a dirty destination.
func TestMulToAndTransposeTo(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := NewMatrix(4, 6)
	b := NewMatrix(6, 3)
	for i := range a.Data() {
		a.Data()[i] = r.NormFloat64()
	}
	for i := range b.Data() {
		b.Data()[i] = r.NormFloat64()
	}
	dst := NewMatrix(4, 3)
	dst.Data()[0] = 99 // dirty destination must be overwritten
	a.MulTo(dst, b)
	if !dst.Equal(a.Mul(b), 1e-12) {
		t.Fatal("MulTo differs from Mul")
	}
	tr := NewMatrix(6, 4)
	a.TransposeTo(tr)
	if !tr.Equal(a.Transpose(), 1e-12) {
		t.Fatal("TransposeTo differs from Transpose")
	}
	// MulVecTTo must match MulVecT on a dirty destination.
	x := randomVector(r, 4)
	out := make(Vector, 6)
	out[2] = 7
	a.MulVecTTo(out, x)
	if !Equal(out, a.MulVecT(x), 1e-12) {
		t.Fatal("MulVecTTo differs from MulVecT")
	}
}

// TestParallelMulMatchesSerial checks the row-parallel matrix product above
// the flops threshold.
func TestParallelMulMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := 160 // n^3 above mulParallelMin
	if n*n*n < mulParallelMin {
		t.Fatalf("test matrices too small to exercise the parallel path")
	}
	a := NewMatrix(n, n)
	b := NewMatrix(n, n)
	for i := range a.Data() {
		a.Data()[i] = r.NormFloat64()
	}
	for i := range b.Data() {
		b.Data()[i] = r.NormFloat64()
	}
	got := a.Mul(b)
	want := NewMatrix(n, n)
	a.mulRows(want, b, 0, n)
	if !got.Equal(want, 0) {
		t.Fatal("parallel Mul differs from serial")
	}
}
