package vec

import "fmt"

// SymMatrix is a symmetric d x d matrix stored as its packed upper triangle
// (row-major, d(d+1)/2 entries). It is the storage format of the sufficient
// statistics Σ x xᵀ maintained by the amortized ERM mechanisms: a rank-one
// update touches half the entries of the dense representation and the
// checkpoint blob shrinks accordingly. All kernels run in a fixed serial
// order, so every operation is bit-deterministic.
type SymMatrix struct {
	d    int
	data []float64
}

// NewSymMatrix returns the zero symmetric matrix of dimension d.
func NewSymMatrix(d int) *SymMatrix {
	if d < 0 {
		panic("vec: negative matrix dimension")
	}
	return &SymMatrix{d: d, data: make([]float64, d*(d+1)/2)}
}

// Dim returns the dimension d.
func (s *SymMatrix) Dim() int { return s.d }

// index returns the packed offset of entry (i, j) with i <= j.
func (s *SymMatrix) index(i, j int) int {
	return i*s.d - i*(i-1)/2 + (j - i)
}

// At returns the entry at row i, column j.
func (s *SymMatrix) At(i, j int) float64 {
	if i < 0 || i >= s.d || j < 0 || j >= s.d {
		panic(fmt.Sprintf("vec: index (%d,%d) out of range for %dx%d symmetric matrix", i, j, s.d, s.d))
	}
	if i > j {
		i, j = j, i
	}
	return s.data[s.index(i, j)]
}

// Data returns the packed upper-triangle storage. Callers must treat the
// returned slice as read-only unless they own the matrix.
func (s *SymMatrix) Data() []float64 { return s.data }

// Zero sets every entry to zero.
func (s *SymMatrix) Zero() {
	for i := range s.data {
		s.data[i] = 0
	}
}

// CopyFrom copies src into s. Dimensions must match.
func (s *SymMatrix) CopyFrom(src *SymMatrix) {
	if s.d != src.d {
		panic("vec: SymMatrix CopyFrom dimension mismatch")
	}
	copy(s.data, src.data)
}

// Clone returns a deep copy of s.
func (s *SymMatrix) Clone() *SymMatrix {
	out := NewSymMatrix(s.d)
	copy(out.data, s.data)
	return out
}

// AddScaledOuter adds the rank-one update alpha * x xᵀ to s, touching only the
// packed upper triangle (d(d+1)/2 fused multiply-adds).
func (s *SymMatrix) AddScaledOuter(alpha float64, x Vector) {
	if len(x) != s.d {
		panic(dimErr("SymMatrix.AddScaledOuter", s.d, len(x)))
	}
	off := 0
	for i := 0; i < s.d; i++ {
		xi := alpha * x[i]
		row := s.data[off : off+s.d-i]
		tail := x[i:]
		for k, xk := range tail {
			row[k] += xi * xk
		}
		off += s.d - i
	}
}

// MulVecTo computes dst = s * x without allocating. dst must have dimension d
// and must not alias x. The accumulation order is fixed (rows of the packed
// triangle in order, diagonal first), so the result is bit-deterministic.
func (s *SymMatrix) MulVecTo(dst, x Vector) {
	if len(x) != s.d {
		panic(dimErr("SymMatrix.MulVecTo", s.d, len(x)))
	}
	if len(dst) != s.d {
		panic(dimErr("SymMatrix.MulVecTo dst", s.d, len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	off := 0
	for i := 0; i < s.d; i++ {
		xi := x[i]
		dst[i] += s.data[off] * xi
		row := s.data[off+1 : off+s.d-i]
		for k, v := range row {
			j := i + 1 + k
			dst[i] += v * x[j]
			dst[j] += v * xi
		}
		off += s.d - i
	}
}

// Trace returns the trace of s.
func (s *SymMatrix) Trace() float64 {
	var t float64
	off := 0
	for i := 0; i < s.d; i++ {
		t += s.data[off]
		off += s.d - i
	}
	return t
}

// ToDense writes the full d x d symmetric matrix into dst.
func (s *SymMatrix) ToDense(dst *Matrix) {
	if dst.Rows() != s.d || dst.Cols() != s.d {
		panic("vec: SymMatrix.ToDense shape mismatch")
	}
	off := 0
	for i := 0; i < s.d; i++ {
		for j := i; j < s.d; j++ {
			v := s.data[off]
			dst.Set(i, j, v)
			if i != j {
				dst.Set(j, i, v)
			}
			off++
		}
	}
}
