package vec

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("vec: matrix is not positive definite")

// ErrSingular is returned by solvers when the system is singular or too
// ill-conditioned to solve reliably.
var ErrSingular = errors.New("vec: singular or ill-conditioned system")

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive definite matrix A, so that A = L Lᵀ. Only the lower triangle of A is
// read. It returns ErrNotPositiveDefinite if a non-positive pivot is found.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows() != a.Cols() {
		return nil, errors.New("vec: Cholesky requires a square matrix")
	}
	l := NewMatrix(a.Rows(), a.Rows())
	if err := choleskyInto(a, l); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors a into the caller-provided l (same shape, zeroed or
// reused), the buffer-reusing core of Cholesky.
func choleskyInto(a, l *Matrix) error {
	n := a.Rows()
	for j := 0; j < n; j++ {
		var sum float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			sum += v * v
		}
		diag := a.At(j, j) - sum
		if diag <= 0 || math.IsNaN(diag) {
			return ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(diag)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return nil
}

// SolveSPD solves A x = b for a symmetric positive definite A via Cholesky
// factorization. A ridge term may be added by the caller beforehand to make a
// positive semi-definite system strictly positive definite.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	if len(b) != a.Rows() {
		return nil, errors.New("vec: SolveSPD dimension mismatch")
	}
	return solveCholesky(l, b, make(Vector, len(b))), nil
}

// solveCholesky solves L Lᵀ x = b given the Cholesky factor L, using y as the
// forward-substitution scratch; the returned solution is freshly allocated.
func solveCholesky(l *Matrix, b, y Vector) Vector {
	n := len(b)
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward substitution: Lᵀ x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveRidge solves (A + lambda I) x = b. It is the workhorse for solving the
// regularized normal equations of least squares. lambda must be non-negative.
func SolveRidge(a *Matrix, b Vector, lambda float64) (Vector, error) {
	return SolveRidgeWith(nil, a, b, lambda)
}

// RidgeWorkspace holds the factorization buffers of a ridge solve — the
// regularized copy of A, its Cholesky factor, and the substitution
// intermediate — so repeated solves of same-shaped systems (the incremental
// least-squares estimators re-solve their d×d normal equations on every new
// estimate) allocate only the returned solution vector.
type RidgeWorkspace struct {
	reg *Matrix
	l   *Matrix
	y   Vector
}

func (ws *RidgeWorkspace) ensure(n int) {
	if ws.reg == nil || ws.reg.Rows() != n {
		ws.reg = NewMatrix(n, n)
		ws.l = NewMatrix(n, n)
		ws.y = NewVector(n)
	}
}

// SolveRidgeWith is SolveRidge with reusable factorization buffers; ws may be
// nil (a transient workspace is used).
func SolveRidgeWith(ws *RidgeWorkspace, a *Matrix, b Vector, lambda float64) (Vector, error) {
	if lambda < 0 {
		return nil, errors.New("vec: negative ridge parameter")
	}
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("vec: SolveRidge requires a square matrix")
	}
	if len(b) != n {
		return nil, errors.New("vec: SolveRidge dimension mismatch")
	}
	if ws == nil {
		ws = &RidgeWorkspace{}
	}
	ws.ensure(n)
	copy(ws.reg.Data(), a.Data())
	for i := 0; i < n; i++ {
		ws.reg.Incr(i, i, lambda)
	}
	if err := choleskyInto(ws.reg, ws.l); err != nil {
		return nil, err
	}
	return solveCholesky(ws.l, b, ws.y), nil
}

// QR holds a thin Householder QR factorization of an n x d matrix with n >= d.
type QR struct {
	qr    *Matrix   // packed Householder vectors + R
	rdiag []float64 // diagonal of R
}

// NewQR computes the Householder QR factorization of a. The input is not
// modified. It returns ErrSingular if a has fewer rows than columns.
func NewQR(a *Matrix) (*QR, error) {
	n, d := a.Rows(), a.Cols()
	if n < d {
		return nil, ErrSingular
	}
	qr := a.Clone()
	rdiag := make([]float64, d)
	for k := 0; k < d; k++ {
		// Compute the norm of column k below the diagonal.
		var nrm float64
		for i := k; i < n; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < n; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Incr(k, k, 1)
			// Apply the transformation to the remaining columns.
			for j := k + 1; j < d; j++ {
				var s float64
				for i := k; i < n; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < n; i++ {
					qr.Incr(i, j, s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// IsFullRank reports whether the factored matrix has full column rank
// (all diagonal entries of R are nonzero beyond a small tolerance).
func (f *QR) IsFullRank() bool {
	for _, r := range f.rdiag {
		if math.Abs(r) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ‖A x - b‖₂ using the
// stored factorization. It returns ErrSingular when A is rank deficient.
func (f *QR) Solve(b Vector) (Vector, error) {
	n, d := f.qr.Rows(), f.qr.Cols()
	if len(b) != n {
		return nil, errors.New("vec: QR.Solve dimension mismatch")
	}
	if !f.IsFullRank() {
		return nil, ErrSingular
	}
	y := b.Clone()
	// Apply the Householder reflections to b.
	for k := 0; k < d; k++ {
		var s float64
		for i := k; i < n; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < n; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution on R.
	x := make(Vector, d)
	for k := d - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < d; j++ {
			s -= f.qr.At(k, j) * x[j]
		}
		x[k] = s / f.rdiag[k]
	}
	return x, nil
}

// LeastSquares returns argmin_x ‖A x - b‖₂ via QR factorization, falling back to
// a ridge-regularized normal-equation solve when A is rank deficient.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() >= a.Cols() {
		f, err := NewQR(a)
		if err == nil && f.IsFullRank() {
			return f.Solve(b)
		}
	}
	// Fall back to (AᵀA + eps I) x = Aᵀ b, which always has a solution and is a
	// good proxy for the minimum-norm least-squares solution.
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	eps := 1e-10 * (1 + ata.Trace())
	return SolveRidge(ata, atb, eps)
}
