package vec

import (
	"runtime"
	"sync"
)

// Thresholds (in scalar multiply-adds) above which the matrix kernels fan the
// row loop out across goroutines. Below them the goroutine bookkeeping costs
// more than it saves; above them the kernels are memory/compute bound and the
// row partition parallelizes cleanly. Each goroutine writes a disjoint row
// range of the destination and the per-row accumulation order is unchanged, so
// parallel results are bit-identical to the serial ones.
const (
	mulVecParallelMin = 1 << 16 // m*x: rows*cols flops (e.g. 256x256)
	mulParallelMin    = 1 << 21 // m*b: rows*inner*cols flops (e.g. 128^3)
)

// parallelRows splits [0, rows) into contiguous chunks and runs work on each
// chunk concurrently, blocking until all chunks complete. Chunk boundaries
// depend only on rows and GOMAXPROCS, never on the data.
func parallelRows(rows int, work func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		work(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulVecRows computes dst[lo:hi] = (m * x)[lo:hi].
func (m *Matrix) mulVecRows(dst, x Vector, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// mulRows computes out rows [lo, hi) of the product m * b.
func (m *Matrix) mulRows(out, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for j := range orow {
			orow[j] = 0
		}
		for k := 0; k < m.cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j := range orow {
				orow[j] += a * brow[j]
			}
		}
	}
}
