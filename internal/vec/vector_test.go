package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotAndNorms(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := Dot(v, w); got != 1*4+2*(-5)+3*6 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2(Vector{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(w); got != 15 {
		t.Fatalf("Norm1 = %v, want 15", got)
	}
	if got := NormInf(w); got != 6 {
		t.Fatalf("NormInf = %v, want 6", got)
	}
	if got := NormP(Vector{1, 1, 1, 1}, 2); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("NormP(2) = %v, want 2", got)
	}
	if got := NormP(w, 1); got != 15 {
		t.Fatalf("NormP(1) = %v, want 15", got)
	}
	if got := NormP(w, math.Inf(1)); got != 6 {
		t.Fatalf("NormP(inf) = %v, want 6", got)
	}
}

func TestNorm2OverflowSafety(t *testing.T) {
	v := Vector{1e200, 1e200}
	got := Norm2(v)
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflow-unsafe: got %v want %v", got, want)
	}
}

func TestAddSubScaleAxpy(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 5}
	if got := Add(v, w); !Equal(got, Vector{4, 7}, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(w, v); !Equal(got, Vector{2, 3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	u := v.Clone()
	u.Scale(3)
	if !Equal(u, Vector{3, 6}, 0) {
		t.Fatalf("Scale = %v", u)
	}
	a := Vector{1, 1}
	Axpy(a, 2, Vector{3, 4})
	if !Equal(a, Vector{7, 9}, 0) {
		t.Fatalf("Axpy = %v", a)
	}
	if got := Scaled(v, -1); !Equal(got, Vector{-1, -2}, 0) {
		t.Fatalf("Scaled = %v", got)
	}
	v2 := v.Clone()
	v2.AddInPlace(w)
	if !Equal(v2, Vector{4, 7}, 0) {
		t.Fatalf("AddInPlace = %v", v2)
	}
	v2.SubInPlace(w)
	if !Equal(v2, v, 1e-15) {
		t.Fatalf("SubInPlace = %v", v2)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNormalizeAndDist(t *testing.T) {
	v := Vector{3, 4}
	n := v.Normalize()
	if !almostEqual(n, 5, 1e-12) || !almostEqual(Norm2(v), 1, 1e-12) {
		t.Fatalf("Normalize: norm=%v result=%v", n, v)
	}
	z := Vector{0, 0}
	if z.Normalize() != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
	if got := Dist2(Vector{1, 1}, Vector{4, 5}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestSupportAndNonzero(t *testing.T) {
	v := Vector{0, 1, 0, -2, 0}
	sup := Support(v)
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("Support = %v", sup)
	}
	if NumNonzero(v) != 2 {
		t.Fatalf("NumNonzero = %d", NumNonzero(v))
	}
	if Sum(v) != -1 {
		t.Fatalf("Sum = %v", Sum(v))
	}
	m, i := Max(v)
	if m != 1 || i != 1 {
		t.Fatalf("Max = %v at %d", m, i)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Vector{1, 2, 3}) {
		t.Fatal("finite vector reported non-finite")
	}
	if IsFinite(Vector{1, math.NaN()}) {
		t.Fatal("NaN vector reported finite")
	}
	if IsFinite(Vector{math.Inf(1)}) {
		t.Fatal("Inf vector reported finite")
	}
}

func randomVector(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Property: the triangle inequality and Cauchy–Schwarz hold for random vectors.
func TestNormProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(20)
		v := randomVector(rng, d)
		w := randomVector(rng, d)
		if Norm2(Add(v, w)) > Norm2(v)+Norm2(w)+1e-9 {
			return false
		}
		if math.Abs(Dot(v, w)) > Norm2(v)*Norm2(w)+1e-9 {
			return false
		}
		// Norm ordering: ‖v‖_inf ≤ ‖v‖_2 ≤ ‖v‖_1.
		return NormInf(v) <= Norm2(v)+1e-9 && Norm2(v) <= Norm1(v)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Axpy agrees with Add+Scaled.
func TestAxpyProperty(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			alpha = 1
		}
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(15)
		v := randomVector(r, d)
		x := randomVector(r, d)
		want := Add(v, Scaled(x, alpha))
		got := v.Clone()
		Axpy(got, alpha, x)
		return Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
