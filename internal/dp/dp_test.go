package dp

import (
	"errors"
	"math"
	"testing"

	"privreg/internal/randx"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Epsilon: 1, Delta: 1e-6}, true},
		{Params{Epsilon: 0.1, Delta: 0}, true},
		{Params{Epsilon: 0, Delta: 1e-6}, false},
		{Params{Epsilon: -1, Delta: 1e-6}, false},
		{Params{Epsilon: 1, Delta: 1}, false},
		{Params{Epsilon: 1, Delta: -0.1}, false},
		{Params{Epsilon: math.Inf(1), Delta: 0}, false},
		{Params{Epsilon: math.NaN(), Delta: 0}, false},
	}
	for i, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: expected error for %v", i, c.p)
		}
	}
}

func TestHalveAndSplit(t *testing.T) {
	p := Params{Epsilon: 2, Delta: 1e-4}
	h := p.Halve()
	if h.Epsilon != 1 || h.Delta != 5e-5 {
		t.Fatalf("Halve = %v", h)
	}
	s := p.SplitEven(4)
	if s.Epsilon != 0.5 || s.Delta != 2.5e-5 {
		t.Fatalf("SplitEven = %v", s)
	}
}

func TestGaussianSigmaCalibration(t *testing.T) {
	p := Params{Epsilon: 1, Delta: 1e-6}
	sigma, err := GaussianSigma(2, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(2*math.Log(2/1e-6)) / 1
	if math.Abs(sigma-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", sigma, want)
	}
	// Noise must shrink as epsilon grows and as sensitivity shrinks.
	s2, _ := GaussianSigma(2, Params{Epsilon: 2, Delta: 1e-6})
	if s2 >= sigma {
		t.Fatal("sigma should decrease with epsilon")
	}
	s3, _ := GaussianSigma(1, p)
	if s3 >= sigma {
		t.Fatal("sigma should decrease with sensitivity")
	}
	if _, err := GaussianSigma(1, Params{Epsilon: 1, Delta: 0}); err == nil {
		t.Fatal("Gaussian mechanism with delta=0 must be rejected")
	}
	if _, err := GaussianSigma(-1, p); err == nil {
		t.Fatal("negative sensitivity must be rejected")
	}
}

func TestLaplaceScale(t *testing.T) {
	b, err := LaplaceScale(3, 1.5)
	if err != nil || b != 2 {
		t.Fatalf("LaplaceScale = %v, %v", b, err)
	}
	if _, err := LaplaceScale(1, 0); err == nil {
		t.Fatal("epsilon=0 must be rejected")
	}
}

func TestGaussianMechanismPerturb(t *testing.T) {
	src := randx.NewSource(1)
	p := Params{Epsilon: 1, Delta: 1e-5}
	mech, err := NewGaussianMechanism(1, p, src)
	if err != nil {
		t.Fatal(err)
	}
	value := []float64{1, 2, 3}
	out := mech.Perturb(value)
	if len(out) != 3 {
		t.Fatalf("wrong output length %d", len(out))
	}
	// The input must be untouched.
	if value[0] != 1 || value[1] != 2 || value[2] != 3 {
		t.Fatal("Perturb modified its input")
	}
	// Empirical noise standard deviation should match sigma within tolerance.
	const n = 20000
	var ss float64
	zero := make([]float64, 1)
	for i := 0; i < n; i++ {
		v := mech.Perturb(zero)
		ss += v[0] * v[0]
	}
	emp := math.Sqrt(ss / n)
	if math.Abs(emp-mech.Sigma())/mech.Sigma() > 0.05 {
		t.Fatalf("empirical sigma %v vs calibrated %v", emp, mech.Sigma())
	}
	if _, err := NewGaussianMechanism(1, p, nil); err == nil {
		t.Fatal("nil source must be rejected")
	}
}

func TestLaplaceMechanismPerturb(t *testing.T) {
	src := randx.NewSource(2)
	mech, err := NewLaplaceMechanism(1, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	if mech.Scale() != 2 {
		t.Fatalf("scale = %v, want 2", mech.Scale())
	}
	out := mech.Perturb([]float64{0, 0})
	if len(out) != 2 {
		t.Fatal("wrong output length")
	}
	if _, err := NewLaplaceMechanism(1, 0.5, nil); err == nil {
		t.Fatal("nil source must be rejected")
	}
}

func TestPerturbInPlace(t *testing.T) {
	src := randx.NewSource(3)
	mech, err := NewGaussianMechanism(1, Params{Epsilon: 1, Delta: 1e-5}, src)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{5, 5}
	mech.PerturbInPlace(v)
	if v[0] == 5 && v[1] == 5 {
		t.Fatal("PerturbInPlace added no noise")
	}
}

func TestErrBudgetExhaustedIsSentinel(t *testing.T) {
	acc, err := NewAccountant(Params{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Spend("big", Params{Epsilon: 2, Delta: 1e-7}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected ErrBudgetExhausted, got %v", err)
	}
}
