// Package dp implements the differential-privacy substrate used by the
// incremental mechanisms: privacy parameters, the Gaussian and Laplace
// mechanisms for vector-valued functions, and sequential / advanced composition
// accounting (Theorems A.3 and A.4 of the paper).
//
// The definitions follow Section 2 and Appendix A.2 of "Private Incremental
// Regression" (Kasiviswanathan, Nissim, Jin — PODS 2017): two streams are
// neighbors when they differ in a single datapoint, and an algorithm is
// (ε, δ)-differentially private when the distributions of its entire output
// sequence on neighboring streams are (e^ε, δ)-close (event-level privacy,
// Definition 4).
package dp

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/randx"
)

// Params holds an (ε, δ) differential-privacy guarantee.
type Params struct {
	// Epsilon is the multiplicative privacy-loss bound. Must be positive.
	Epsilon float64
	// Delta is the probability with which the ε bound may fail. Must lie in
	// [0, 1). Delta == 0 denotes pure ε-differential privacy.
	Delta float64
}

// Validate returns an error when the parameters are outside their legal range.
func (p Params) Validate() error {
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("dp: epsilon must be a positive finite number, got %v", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("dp: delta must lie in [0, 1), got %v", p.Delta)
	}
	return nil
}

// String renders the parameters compactly.
func (p Params) String() string {
	return fmt.Sprintf("(ε=%g, δ=%g)", p.Epsilon, p.Delta)
}

// Halve returns parameters with both ε and δ halved. The regression mechanisms
// use this to split the budget between the two Tree Mechanism invocations
// (Steps 3–4 of Algorithm 2 and Steps 5–6 of Algorithm 3).
func (p Params) Halve() Params {
	return Params{Epsilon: p.Epsilon / 2, Delta: p.Delta / 2}
}

// SplitEven returns parameters with ε and δ divided evenly across k components,
// per basic composition (Theorem A.3).
func (p Params) SplitEven(k int) Params {
	if k <= 0 {
		panic("dp: SplitEven requires k >= 1")
	}
	return Params{Epsilon: p.Epsilon / float64(k), Delta: p.Delta / float64(k)}
}

// ErrBudgetExhausted is returned by the Accountant when a requested spend would
// exceed the configured total budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// GaussianSigma returns the standard deviation of the Gaussian mechanism noise
// for a function with L2-sensitivity sensitivity under (ε, δ)-differential
// privacy, following the calibration of Theorem A.2:
//
//	σ = sensitivity * sqrt(2 ln(2/δ)) / ε.
//
// δ must be strictly positive for the Gaussian mechanism.
func GaussianSigma(sensitivity float64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Delta == 0 {
		return 0, errors.New("dp: the Gaussian mechanism requires delta > 0")
	}
	if sensitivity < 0 {
		return 0, errors.New("dp: negative sensitivity")
	}
	return sensitivity * math.Sqrt(2*math.Log(2/p.Delta)) / p.Epsilon, nil
}

// LaplaceScale returns the scale parameter b of the Laplace mechanism for a
// function with L1-sensitivity sensitivity under ε-differential privacy:
// b = sensitivity / ε.
func LaplaceScale(sensitivity float64, epsilon float64) (float64, error) {
	if !(epsilon > 0) {
		return 0, errors.New("dp: epsilon must be positive")
	}
	if sensitivity < 0 {
		return 0, errors.New("dp: negative sensitivity")
	}
	return sensitivity / epsilon, nil
}

// GaussianMechanism perturbs vector-valued outputs with Gaussian noise
// calibrated to an L2-sensitivity bound.
type GaussianMechanism struct {
	sigma float64
	src   *randx.Source
}

// NewGaussianMechanism builds a Gaussian mechanism adding N(0, σ² I) noise where
// σ is calibrated for the given L2-sensitivity and privacy parameters.
func NewGaussianMechanism(sensitivity float64, p Params, src *randx.Source) (*GaussianMechanism, error) {
	sigma, err := GaussianSigma(sensitivity, p)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("dp: nil randomness source")
	}
	return &GaussianMechanism{sigma: sigma, src: src}, nil
}

// Sigma returns the per-coordinate noise standard deviation.
func (g *GaussianMechanism) Sigma() float64 { return g.sigma }

// Perturb adds independent N(0, σ²) noise to every coordinate of value and
// returns a new slice; the input is not modified.
func (g *GaussianMechanism) Perturb(value []float64) []float64 {
	out := make([]float64, len(value))
	for i, v := range value {
		out[i] = v + g.src.Normal(0, g.sigma)
	}
	return out
}

// PerturbInPlace adds independent N(0, σ²) noise to every coordinate of value.
func (g *GaussianMechanism) PerturbInPlace(value []float64) {
	for i := range value {
		value[i] += g.src.Normal(0, g.sigma)
	}
}

// LaplaceMechanism perturbs vector-valued outputs with Laplace noise calibrated
// to an L1-sensitivity bound (pure ε-differential privacy).
type LaplaceMechanism struct {
	scale float64
	src   *randx.Source
}

// NewLaplaceMechanism builds a Laplace mechanism with scale calibrated for the
// given L1 sensitivity and ε.
func NewLaplaceMechanism(sensitivity, epsilon float64, src *randx.Source) (*LaplaceMechanism, error) {
	scale, err := LaplaceScale(sensitivity, epsilon)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("dp: nil randomness source")
	}
	return &LaplaceMechanism{scale: scale, src: src}, nil
}

// Scale returns the per-coordinate Laplace scale parameter.
func (l *LaplaceMechanism) Scale() float64 { return l.scale }

// Perturb adds independent Laplace(0, b) noise to every coordinate of value and
// returns a new slice.
func (l *LaplaceMechanism) Perturb(value []float64) []float64 {
	out := make([]float64, len(value))
	for i, v := range value {
		out[i] = v + l.src.Laplace(l.scale)
	}
	return out
}
