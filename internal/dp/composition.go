package dp

import (
	"fmt"
	"math"
	"sync"
)

// BasicComposition returns the privacy guarantee of running k mechanisms, each
// (ε, δ)-differentially private, on the same data (Theorem A.3): (kε, kδ).
func BasicComposition(per Params, k int) Params {
	if k < 0 {
		panic("dp: negative composition count")
	}
	return Params{Epsilon: per.Epsilon * float64(k), Delta: per.Delta * float64(k)}
}

// AdvancedComposition returns the overall privacy guarantee of k adaptive
// invocations of an (ε, δ)-differentially private mechanism with slack δ*
// (Theorem A.4, Dwork–Rothblum–Vadhan boosting):
//
//	( ε√(2k ln(1/δ*)) + 2kε² ,  kδ + δ* ).
func AdvancedComposition(per Params, k int, deltaStar float64) Params {
	if k < 0 {
		panic("dp: negative composition count")
	}
	if deltaStar <= 0 || deltaStar >= 1 {
		panic("dp: advanced composition slack must lie in (0, 1)")
	}
	kk := float64(k)
	eps := per.Epsilon*math.Sqrt(2*kk*math.Log(1/deltaStar)) + 2*kk*per.Epsilon*per.Epsilon
	return Params{Epsilon: eps, Delta: kk*per.Delta + deltaStar}
}

// PerInvocationAdvanced inverts advanced composition: it returns the per-
// invocation privacy parameters (ε', δ') such that k adaptive invocations of an
// (ε', δ')-differentially private mechanism are together (ε, δ)-differentially
// private, using the split employed in the proof of Theorem 3.1:
//
//	ε' = ε / (2 √(2k ln(2/δ)))    and    δ' = δ / (2k).
//
// With this setting ε'√(2k ln(2/δ)) = ε/2 and, whenever 2kε'² ≤ ε/2 (which holds
// for every ε ≤ 1 and k ≥ 1 and, more generally, whenever ε ≤ 2 ln(2/δ)), the
// total guarantee is at most (ε, δ). For the regime ε > 2 ln(2/δ) the function
// conservatively shrinks ε' further so the bound still holds.
func PerInvocationAdvanced(total Params, k int) (Params, error) {
	if err := total.Validate(); err != nil {
		return Params{}, err
	}
	if total.Delta == 0 {
		return Params{}, fmt.Errorf("dp: advanced composition requires delta > 0, got %v", total)
	}
	if k <= 0 {
		return Params{}, fmt.Errorf("dp: composition count must be positive, got %d", k)
	}
	kk := float64(k)
	logTerm := math.Log(2 / total.Delta)
	epsPrime := total.Epsilon / (2 * math.Sqrt(2*kk*logTerm))
	// Guarantee 2k ε'² ≤ ε/2, i.e. ε' ≤ sqrt(ε / (4k)). Take the min to stay safe
	// for very large ε.
	if cap := math.Sqrt(total.Epsilon / (4 * kk)); epsPrime > cap {
		epsPrime = cap
	}
	deltaPrime := total.Delta / (2 * kk)
	return Params{Epsilon: epsPrime, Delta: deltaPrime}, nil
}

// Accountant tracks cumulative privacy expenditure against a total budget using
// basic composition. Mechanisms register each access to the data by calling
// Spend; the accountant refuses spends that would exceed the budget. It is safe
// for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	budget Params
	spent  Params
	events []SpendEvent
}

// SpendEvent records a single registered privacy expenditure.
type SpendEvent struct {
	Label  string
	Params Params
}

// NewAccountant returns an accountant with the given total budget.
func NewAccountant(budget Params) (*Accountant, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{budget: budget}, nil
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// Spent returns the cumulative expenditure registered so far (basic composition).
func (a *Accountant) Spent() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Params{
		Epsilon: math.Max(0, a.budget.Epsilon-a.spent.Epsilon),
		Delta:   math.Max(0, a.budget.Delta-a.spent.Delta),
	}
}

// Spend registers a privacy expenditure with the given label. It returns
// ErrBudgetExhausted (and registers nothing) if the spend would push either ε
// or δ above the budget beyond a small numerical tolerance.
func (a *Accountant) Spend(label string, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	const tol = 1e-9
	if a.spent.Epsilon+p.Epsilon > a.budget.Epsilon*(1+tol)+tol ||
		a.spent.Delta+p.Delta > a.budget.Delta*(1+tol)+tol {
		return fmt.Errorf("%w: budget %v, already spent %v, requested %v (%s)",
			ErrBudgetExhausted, a.budget, a.spent, p, label)
	}
	a.spent.Epsilon += p.Epsilon
	a.spent.Delta += p.Delta
	a.events = append(a.events, SpendEvent{Label: label, Params: p})
	return nil
}

// Events returns a copy of the registered spend events in order.
func (a *Accountant) Events() []SpendEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SpendEvent, len(a.events))
	copy(out, a.events)
	return out
}
