package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicComposition(t *testing.T) {
	p := BasicComposition(Params{Epsilon: 0.1, Delta: 1e-7}, 10)
	if math.Abs(p.Epsilon-1) > 1e-12 || math.Abs(p.Delta-1e-6) > 1e-18 {
		t.Fatalf("BasicComposition = %v", p)
	}
	if got := BasicComposition(Params{Epsilon: 1, Delta: 0}, 0); got.Epsilon != 0 {
		t.Fatalf("zero-fold composition = %v", got)
	}
}

func TestAdvancedCompositionFormula(t *testing.T) {
	per := Params{Epsilon: 0.1, Delta: 1e-8}
	k := 20
	deltaStar := 1e-6
	got := AdvancedComposition(per, k, deltaStar)
	wantEps := 0.1*math.Sqrt(2*20*math.Log(1/deltaStar)) + 2*20*0.01
	wantDelta := 20*1e-8 + 1e-6
	if math.Abs(got.Epsilon-wantEps) > 1e-12 || math.Abs(got.Delta-wantDelta) > 1e-18 {
		t.Fatalf("AdvancedComposition = %v, want (%v, %v)", got, wantEps, wantDelta)
	}
}

// TestPerInvocationAdvancedRoundTrip is the key soundness property used by the
// mechanisms: composing the per-invocation parameters k times with the advanced
// composition theorem must not exceed the requested total budget.
func TestPerInvocationAdvancedRoundTrip(t *testing.T) {
	f := func(seedEps, seedK uint8) bool {
		eps := 0.05 + float64(seedEps%40)/10 // 0.05 .. 4.0
		k := 1 + int(seedK%200)
		total := Params{Epsilon: eps, Delta: 1e-6}
		per, err := PerInvocationAdvanced(total, k)
		if err != nil {
			return false
		}
		// Recompose with slack delta/2, matching the derivation.
		recomposed := AdvancedComposition(per, k, total.Delta/2)
		return recomposed.Epsilon <= total.Epsilon*(1+1e-9) &&
			recomposed.Delta <= total.Delta*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPerInvocationAdvancedRejectsBadInput(t *testing.T) {
	if _, err := PerInvocationAdvanced(Params{Epsilon: 1, Delta: 0}, 5); err == nil {
		t.Fatal("delta=0 should be rejected")
	}
	if _, err := PerInvocationAdvanced(Params{Epsilon: 1, Delta: 1e-6}, 0); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := PerInvocationAdvanced(Params{Epsilon: -1, Delta: 1e-6}, 3); err == nil {
		t.Fatal("invalid epsilon should be rejected")
	}
}

func TestPerInvocationMonotonicity(t *testing.T) {
	total := Params{Epsilon: 1, Delta: 1e-6}
	p10, _ := PerInvocationAdvanced(total, 10)
	p100, _ := PerInvocationAdvanced(total, 100)
	if p100.Epsilon >= p10.Epsilon {
		t.Fatalf("per-invocation epsilon should shrink with k: %v vs %v", p100, p10)
	}
	if p100.Delta >= p10.Delta {
		t.Fatalf("per-invocation delta should shrink with k: %v vs %v", p100, p10)
	}
}

func TestAccountantSpending(t *testing.T) {
	acc, err := NewAccountant(Params{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Spend("first", Params{Epsilon: 0.4, Delta: 4e-7}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Spend("second", Params{Epsilon: 0.4, Delta: 4e-7}); err != nil {
		t.Fatal(err)
	}
	// Third spend of 0.4 would exceed ε=1.
	if err := acc.Spend("third", Params{Epsilon: 0.4, Delta: 1e-7}); err == nil {
		t.Fatal("expected budget exhaustion")
	}
	spent := acc.Spent()
	if math.Abs(spent.Epsilon-0.8) > 1e-12 {
		t.Fatalf("spent = %v", spent)
	}
	rem := acc.Remaining()
	if math.Abs(rem.Epsilon-0.2) > 1e-12 {
		t.Fatalf("remaining = %v", rem)
	}
	events := acc.Events()
	if len(events) != 2 || events[0].Label != "first" || events[1].Label != "second" {
		t.Fatalf("events = %v", events)
	}
	if acc.Budget().Epsilon != 1 {
		t.Fatalf("budget = %v", acc.Budget())
	}
}

func TestAccountantRejectsInvalidBudget(t *testing.T) {
	if _, err := NewAccountant(Params{Epsilon: 0, Delta: 0}); err == nil {
		t.Fatal("invalid budget should be rejected")
	}
}

func TestAccountantConcurrentSafety(t *testing.T) {
	acc, _ := NewAccountant(Params{Epsilon: 100, Delta: 1e-2})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				_ = acc.Spend("g", Params{Epsilon: 0.01, Delta: 1e-9})
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	spent := acc.Spent()
	if math.Abs(spent.Epsilon-8) > 1e-9 {
		t.Fatalf("concurrent spends lost updates: %v", spent)
	}
}
