package stream

import (
	"math"
	"strings"
	"testing"

	"privreg/internal/vec"
)

func TestReadCSVBasic(t *testing.T) {
	data := "0.5,1,0,0\n-0.2,0,1,0\n0.9,0,0,1\n"
	pts, err := ReadCSV(strings.NewReader(data), NewCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Y != 0.5 || pts[1].Y != -0.2 {
		t.Fatalf("responses wrong: %v %v", pts[0].Y, pts[1].Y)
	}
	if len(pts[0].X) != 3 || pts[0].X[0] != 1 {
		t.Fatalf("covariates wrong: %v", pts[0].X)
	}
}

func TestReadCSVHeaderResponseColumnAndLimit(t *testing.T) {
	data := "x1,x2,label\n1,0,0.3\n0,1,0.7\n1,1,0.9\n"
	opts := CSVOptions{ResponseColumn: 2, HasHeader: true, Normalize: true, MaxRecords: 2}
	pts, err := ReadCSV(strings.NewReader(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("MaxRecords ignored: %d", len(pts))
	}
	if pts[0].Y != 0.3 || pts[0].X[0] != 1 || pts[0].X[1] != 0 {
		t.Fatalf("header/response handling wrong: %+v", pts[0])
	}
}

func TestReadCSVNormalization(t *testing.T) {
	data := "5,3,4\n" // y=5 (clamped to 1), x=(3,4) normalized to unit norm
	pts, err := ReadCSV(strings.NewReader(data), NewCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Y != 1 {
		t.Fatalf("response not clamped: %v", pts[0].Y)
	}
	if math.Abs(vec.Norm2(pts[0].X)-1) > 1e-12 {
		t.Fatalf("covariate not normalized: %v", pts[0].X)
	}
	// Without normalization values pass through unchanged.
	raw, err := ReadCSV(strings.NewReader(data), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].Y != 5 || raw[0].X[1] != 4 {
		t.Fatalf("normalization applied when disabled: %+v", raw[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(nil, NewCSVOptions()); err == nil {
		t.Fatal("nil reader should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), NewCSVOptions()); err == nil {
		t.Fatal("ragged records should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n"), NewCSVOptions()); err == nil {
		t.Fatal("non-numeric field should error")
	}
	if _, err := ReadCSV(strings.NewReader("1\n"), NewCSVOptions()); err == nil {
		t.Fatal("single-column data should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n"), CSVOptions{ResponseColumn: 5}); err == nil {
		t.Fatal("out-of-range response column should error")
	}
	// Empty input yields no points and no error.
	pts, err := ReadCSV(strings.NewReader(""), NewCSVOptions())
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty input: %v, %v", pts, err)
	}
}

func TestReplayCyclesAndCopies(t *testing.T) {
	pts, err := ReadCSV(strings.NewReader("0.1,1,0\n0.2,0,1\n"), NewCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dim() != 2 || rep.Len() != 2 {
		t.Fatalf("Dim/Len wrong: %d %d", rep.Dim(), rep.Len())
	}
	a := rep.Next()
	b := rep.Next()
	c := rep.Next() // cycles back to the first point
	if a.Y != 0.1 || b.Y != 0.2 || c.Y != 0.1 {
		t.Fatalf("replay order wrong: %v %v %v", a.Y, b.Y, c.Y)
	}
	// Mutating a returned covariate must not corrupt the stored data.
	a.X[0] = 99
	rep.Next() // advance past the second point again
	d := rep.Next()
	if d.X[0] == 99 {
		t.Fatal("replay leaked internal storage")
	}
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay should error")
	}
}
