// Package stream provides the synthetic data-stream generators used by the
// examples, experiments and benchmarks. The paper's guarantees are worst-case
// over input streams, so the generators focus on controlling exactly the
// quantities the bounds depend on: dimension d, stream length T, the norm
// bounds ‖x‖ ≤ 1 and |y| ≤ 1, covariate sparsity (which controls w(X)), the
// attainable minimum empirical risk OPT, and adaptivity of the covariates to a
// previously fixed projection (the failure mode Section 5 guards against with
// Gordon's theorem).
package stream

import (
	"errors"
	"math"

	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// Generator produces a stream of labelled points one timestep at a time.
type Generator interface {
	// Next returns the datapoint for the next timestep.
	Next() loss.Point
	// Dim returns the covariate dimension.
	Dim() int
}

// Collect draws n points from a generator into a slice.
func Collect(g Generator, n int) []loss.Point {
	out := make([]loss.Point, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// LinearModel generates covariate/response pairs from the linear model
// y = <x, θ*> + w with sub-Gaussian noise w, normalized so that ‖x‖ ≤ 1 and
// |y| ≤ 1 (the normalization assumed by Algorithms 2 and 3).
type LinearModel struct {
	// Theta is the ground-truth regression vector θ*.
	Theta vec.Vector
	// NoiseStd is the standard deviation of the additive response noise; the
	// resulting minimum empirical risk OPT scales as T·NoiseStd².
	NoiseStd float64
	// Sparsity, when positive, makes every covariate exactly Sparsity-sparse
	// (unit-norm, random support); when zero, covariates are uniform on the
	// unit sphere. Sparse covariates give the input domain X a small Gaussian
	// width, the regime where Algorithm 3 shines.
	Sparsity int
	// CovariateScale shrinks covariates into a ball of this radius (default 1).
	CovariateScale float64

	src *randx.Source
}

// NewLinearModel returns a linear-model generator with the given ground truth.
func NewLinearModel(theta vec.Vector, noiseStd float64, sparsity int, src *randx.Source) (*LinearModel, error) {
	if len(theta) == 0 {
		return nil, errors.New("stream: empty ground-truth vector")
	}
	if noiseStd < 0 {
		return nil, errors.New("stream: negative noise standard deviation")
	}
	if src == nil {
		return nil, errors.New("stream: nil randomness source")
	}
	return &LinearModel{Theta: theta.Clone(), NoiseStd: noiseStd, Sparsity: sparsity, CovariateScale: 1, src: src}, nil
}

// Dim implements Generator.
func (m *LinearModel) Dim() int { return len(m.Theta) }

// Next implements Generator.
func (m *LinearModel) Next() loss.Point {
	d := len(m.Theta)
	var x vec.Vector
	if m.Sparsity > 0 {
		x = vec.Vector(m.src.SparseVector(d, m.Sparsity))
	} else {
		x = vec.Vector(m.src.UnitSphere(d))
	}
	scale := m.CovariateScale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	x.Scale(scale)
	y := vec.Dot(x, m.Theta) + m.src.Normal(0, m.NoiseStd)
	// Clamp the response into [-1, 1] as the algorithms assume ‖Y‖ ≤ 1.
	if y > 1 {
		y = 1
	} else if y < -1 {
		y = -1
	}
	return loss.Point{X: x, Y: y}
}

// Classification generates labelled points for logistic/hinge losses: covariates
// uniform on the unit sphere and labels y ∈ {-1, +1} drawn from the logistic
// model P(y = 1 | x) = σ(<x, θ*>/Temperature).
type Classification struct {
	// Theta is the ground-truth separator.
	Theta vec.Vector
	// Temperature controls label noise; smaller is cleaner (default 0.1).
	Temperature float64

	src *randx.Source
}

// NewClassification returns a logistic-model classification stream.
func NewClassification(theta vec.Vector, temperature float64, src *randx.Source) (*Classification, error) {
	if len(theta) == 0 {
		return nil, errors.New("stream: empty ground-truth vector")
	}
	if src == nil {
		return nil, errors.New("stream: nil randomness source")
	}
	if temperature <= 0 {
		temperature = 0.1
	}
	return &Classification{Theta: theta.Clone(), Temperature: temperature, src: src}, nil
}

// Dim implements Generator.
func (c *Classification) Dim() int { return len(c.Theta) }

// Next implements Generator.
func (c *Classification) Next() loss.Point {
	x := vec.Vector(c.src.UnitSphere(len(c.Theta)))
	margin := vec.Dot(x, c.Theta) / c.Temperature
	p := 1 / (1 + math.Exp(-margin))
	y := -1.0
	if c.src.Bernoulli(p) {
		y = 1.0
	}
	return loss.Point{X: x, Y: y}
}

// Drift wraps another generator and rotates its ground truth over time by
// linearly interpolating between an initial and a final parameter vector. It
// models the "associations need to be re-evaluated over time" motivation in the
// introduction of the paper and is used by the mobile-survey example.
type Drift struct {
	start, end vec.Vector
	horizon    int
	noiseStd   float64
	sparsity   int
	t          int
	src        *randx.Source
}

// NewDrift returns a drifting linear-model generator that moves from start to
// end over horizon timesteps.
func NewDrift(start, end vec.Vector, horizon int, noiseStd float64, sparsity int, src *randx.Source) (*Drift, error) {
	if len(start) == 0 || len(start) != len(end) {
		return nil, errors.New("stream: drift endpoints must be non-empty and share a dimension")
	}
	if horizon <= 0 {
		return nil, errors.New("stream: drift horizon must be positive")
	}
	if src == nil {
		return nil, errors.New("stream: nil randomness source")
	}
	return &Drift{start: start.Clone(), end: end.Clone(), horizon: horizon, noiseStd: noiseStd, sparsity: sparsity, src: src}, nil
}

// Dim implements Generator.
func (g *Drift) Dim() int { return len(g.start) }

// Next implements Generator.
func (g *Drift) Next() loss.Point {
	alpha := float64(g.t) / float64(g.horizon)
	if alpha > 1 {
		alpha = 1
	}
	g.t++
	theta := g.start.Clone()
	theta.Scale(1 - alpha)
	vec.Axpy(theta, alpha, g.end)
	d := len(theta)
	var x vec.Vector
	if g.sparsity > 0 {
		x = vec.Vector(g.src.SparseVector(d, g.sparsity))
	} else {
		x = vec.Vector(g.src.UnitSphere(d))
	}
	y := vec.Dot(x, theta) + g.src.Normal(0, g.noiseStd)
	if y > 1 {
		y = 1
	} else if y < -1 {
		y = -1
	}
	return loss.Point{X: x, Y: y}
}

// Mixture interleaves points from an in-domain generator and an out-of-domain
// generator: with probability OutlierFraction the next point comes from the
// outlier generator. It drives the §5.2 robust-extension experiment, where
// only a subset G of the domain has small Gaussian width.
type Mixture struct {
	// InDomain generates the well-behaved (e.g. sparse) covariates.
	InDomain Generator
	// Outlier generates the out-of-domain covariates (e.g. dense).
	Outlier Generator
	// OutlierFraction is the probability of drawing from Outlier.
	OutlierFraction float64

	src *randx.Source
	// lastWasOutlier records the origin of the most recent point so callers
	// (and the §5.2 oracle) can identify in-domain points.
	lastWasOutlier bool
}

// NewMixture returns a mixture stream.
func NewMixture(inDomain, outlier Generator, outlierFraction float64, src *randx.Source) (*Mixture, error) {
	if inDomain == nil || outlier == nil {
		return nil, errors.New("stream: nil component generator")
	}
	if inDomain.Dim() != outlier.Dim() {
		return nil, errors.New("stream: mixture components must share a dimension")
	}
	if outlierFraction < 0 || outlierFraction > 1 {
		return nil, errors.New("stream: outlier fraction must lie in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("stream: nil randomness source")
	}
	return &Mixture{InDomain: inDomain, Outlier: outlier, OutlierFraction: outlierFraction, src: src}, nil
}

// Dim implements Generator.
func (m *Mixture) Dim() int { return m.InDomain.Dim() }

// Next implements Generator.
func (m *Mixture) Next() loss.Point {
	if m.src.Bernoulli(m.OutlierFraction) {
		m.lastWasOutlier = true
		return m.Outlier.Next()
	}
	m.lastWasOutlier = false
	return m.InDomain.Next()
}

// LastWasOutlier reports whether the most recently generated point came from
// the outlier component.
func (m *Mixture) LastWasOutlier() bool { return m.lastWasOutlier }

// Adaptive generates covariates that are chosen adversarially with respect to a
// fixed linear map reported by the Probe callback: each covariate is (a
// normalized perturbation of) the direction that the probe shrinks the most
// among a handful of random candidates. It reproduces the adaptivity issue
// discussed in Section 5 — plain JL guarantees fail against such streams, while
// Gordon's theorem over a small-width domain still holds — and is used in the
// projection-distortion tests and experiment E8.
type Adaptive struct {
	dim      int
	sparsity int
	// Probe maps a candidate covariate to the projected vector the adversary
	// can observe (e.g. Φx).
	Probe func(vec.Vector) vec.Vector
	// Candidates is the number of random candidates examined per step
	// (default 16).
	Candidates int
	// Theta is the ground-truth used for responses.
	Theta    vec.Vector
	NoiseStd float64

	src *randx.Source
}

// NewAdaptive returns an adaptive stream against the given probe.
func NewAdaptive(theta vec.Vector, sparsity int, probe func(vec.Vector) vec.Vector, src *randx.Source) (*Adaptive, error) {
	if len(theta) == 0 {
		return nil, errors.New("stream: empty ground-truth vector")
	}
	if probe == nil {
		return nil, errors.New("stream: nil probe")
	}
	if src == nil {
		return nil, errors.New("stream: nil randomness source")
	}
	return &Adaptive{dim: len(theta), sparsity: sparsity, Probe: probe, Candidates: 16, Theta: theta.Clone(), src: src}, nil
}

// Dim implements Generator.
func (a *Adaptive) Dim() int { return a.dim }

// Next implements Generator.
func (a *Adaptive) Next() loss.Point {
	cands := a.Candidates
	if cands <= 0 {
		cands = 16
	}
	var worst vec.Vector
	worstRatio := math.Inf(1)
	for i := 0; i < cands; i++ {
		var x vec.Vector
		if a.sparsity > 0 {
			x = vec.Vector(a.src.SparseVector(a.dim, a.sparsity))
		} else {
			x = vec.Vector(a.src.UnitSphere(a.dim))
		}
		px := a.Probe(x)
		ratio := vec.Norm2(px) / math.Max(vec.Norm2(x), 1e-12)
		if ratio < worstRatio {
			worstRatio = ratio
			worst = x
		}
	}
	y := vec.Dot(worst, a.Theta) + a.src.Normal(0, a.NoiseStd)
	if y > 1 {
		y = 1
	} else if y < -1 {
		y = -1
	}
	return loss.Point{X: worst, Y: y}
}
