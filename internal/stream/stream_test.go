package stream

import (
	"math"
	"testing"

	"privreg/internal/randx"
	"privreg/internal/vec"
)

func TestLinearModelBoundsAndSignal(t *testing.T) {
	src := randx.NewSource(1)
	truth := vec.Vector{0.5, -0.3, 0.2, 0.1}
	gen, err := NewLinearModel(truth, 0.05, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Dim() != 4 {
		t.Fatalf("Dim = %d", gen.Dim())
	}
	var corr float64
	const n = 2000
	for i := 0; i < n; i++ {
		p := gen.Next()
		if vec.Norm2(p.X) > 1+1e-9 {
			t.Fatalf("covariate norm %v > 1", vec.Norm2(p.X))
		}
		if p.Y < -1-1e-9 || p.Y > 1+1e-9 {
			t.Fatalf("response %v outside [-1, 1]", p.Y)
		}
		corr += p.Y * vec.Dot(p.X, truth)
	}
	if corr/n <= 0 {
		t.Fatal("responses carry no signal about the ground truth")
	}
}

func TestLinearModelSparsity(t *testing.T) {
	src := randx.NewSource(2)
	truth := make(vec.Vector, 50)
	truth[0] = 0.5
	gen, err := NewLinearModel(truth, 0.01, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := gen.Next()
		if vec.NumNonzero(p.X) != 3 {
			t.Fatalf("covariate has %d nonzeros, want 3", vec.NumNonzero(p.X))
		}
		if math.Abs(vec.Norm2(p.X)-1) > 1e-9 {
			t.Fatalf("sparse covariate norm %v", vec.Norm2(p.X))
		}
	}
}

func TestLinearModelValidation(t *testing.T) {
	src := randx.NewSource(3)
	if _, err := NewLinearModel(nil, 0.1, 0, src); err == nil {
		t.Fatal("empty truth should error")
	}
	if _, err := NewLinearModel(vec.Vector{1}, -0.1, 0, src); err == nil {
		t.Fatal("negative noise should error")
	}
	if _, err := NewLinearModel(vec.Vector{1}, 0.1, 0, nil); err == nil {
		t.Fatal("nil source should error")
	}
}

func TestClassificationLabelsAndSignal(t *testing.T) {
	src := randx.NewSource(4)
	truth := vec.Vector{1, 0, 0}
	gen, err := NewClassification(truth, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := gen.Next()
		if p.Y != 1 && p.Y != -1 {
			t.Fatalf("label %v not in {-1, +1}", p.Y)
		}
		if math.Abs(vec.Norm2(p.X)-1) > 1e-9 {
			t.Fatalf("covariate not on unit sphere: %v", vec.Norm2(p.X))
		}
		if p.Y*vec.Dot(p.X, truth) > 0 {
			agree++
		}
	}
	if float64(agree)/n < 0.7 {
		t.Fatalf("labels agree with the separator only %v of the time", float64(agree)/n)
	}
}

func TestDriftMovesGroundTruth(t *testing.T) {
	src := randx.NewSource(5)
	start := vec.Vector{0.8, 0}
	end := vec.Vector{0, 0.8}
	gen, err := NewDrift(start, end, 100, 0.01, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	// Early responses correlate with start, late responses with end.
	var early, late float64
	for i := 0; i < 200; i++ {
		p := gen.Next()
		if i < 30 {
			early += p.Y * vec.Dot(p.X, start)
		}
		if i > 120 {
			late += p.Y * vec.Dot(p.X, end)
		}
	}
	if early <= 0 || late <= 0 {
		t.Fatalf("drift stream lost signal: early=%v late=%v", early, late)
	}
	if _, err := NewDrift(start, vec.Vector{1}, 10, 0, 0, src); err == nil {
		t.Fatal("mismatched endpoints should error")
	}
}

func TestMixtureFractionAndOracleTracking(t *testing.T) {
	src := randx.NewSource(6)
	truth := make(vec.Vector, 20)
	truth[0] = 0.5
	inGen, _ := NewLinearModel(truth, 0.01, 2, src.Split())
	outGen, _ := NewLinearModel(truth, 0.01, 0, src.Split())
	mix, err := NewMixture(inGen, outGen, 0.3, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	const n = 3000
	for i := 0; i < n; i++ {
		p := mix.Next()
		if mix.LastWasOutlier() {
			outliers++
			if vec.NumNonzero(p.X) == 2 {
				t.Fatal("outlier flag set for a sparse (in-domain) point")
			}
		} else if vec.NumNonzero(p.X) != 2 {
			t.Fatal("in-domain flag set for a dense point")
		}
	}
	frac := float64(outliers) / n
	if math.Abs(frac-0.3) > 0.04 {
		t.Fatalf("outlier fraction %v, want 0.3", frac)
	}
	if _, err := NewMixture(inGen, outGen, 1.5, src); err == nil {
		t.Fatal("fraction > 1 should error")
	}
	if _, err := NewMixture(nil, outGen, 0.1, src); err == nil {
		t.Fatal("nil component should error")
	}
}

func TestAdaptiveShrinksProbeNorm(t *testing.T) {
	// The adaptive stream picks covariates whose probe image is small; its
	// average probe-norm ratio must be below that of i.i.d. covariates.
	src := randx.NewSource(7)
	d := 40
	// A probe that halves the first 20 coordinates.
	probe := func(x vec.Vector) vec.Vector {
		out := x.Clone()
		for i := 0; i < d/2; i++ {
			out[i] *= 0.25
		}
		return out
	}
	truth := make(vec.Vector, d)
	truth[0] = 0.5
	adv, err := NewAdaptive(truth, 2, probe, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	iid, _ := NewLinearModel(truth, 0.01, 2, src.Split())
	ratio := func(x vec.Vector) float64 { return vec.Norm2(probe(x)) / vec.Norm2(x) }
	var advSum, iidSum float64
	const n = 300
	for i := 0; i < n; i++ {
		advSum += ratio(adv.Next().X)
		iidSum += ratio(iid.Next().X)
	}
	if advSum/n >= iidSum/n {
		t.Fatalf("adaptive stream is not adversarial: adaptive ratio %v vs iid %v", advSum/n, iidSum/n)
	}
	if _, err := NewAdaptive(truth, 2, nil, src); err == nil {
		t.Fatal("nil probe should error")
	}
}

func TestCollect(t *testing.T) {
	src := randx.NewSource(8)
	gen, _ := NewLinearModel(vec.Vector{0.5, 0.5}, 0.1, 0, src)
	data := Collect(gen, 17)
	if len(data) != 17 {
		t.Fatalf("Collect returned %d points", len(data))
	}
	for _, p := range data {
		if len(p.X) != 2 {
			t.Fatal("wrong covariate dimension")
		}
	}
}
