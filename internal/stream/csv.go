package stream

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"privreg/internal/loss"
	"privreg/internal/vec"
)

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// ResponseColumn is the zero-based index of the response (label) column;
	// every other column is treated as a covariate. Default 0.
	ResponseColumn int
	// HasHeader skips the first record.
	HasHeader bool
	// Normalize rescales each covariate vector into the unit Euclidean ball and
	// clamps responses to [-1, 1], matching the normalization the private
	// mechanisms assume. Default true via NewCSVOptions; if constructing the
	// struct literally, set it explicitly.
	Normalize bool
	// MaxRecords bounds the number of records read (0 = no bound).
	MaxRecords int
}

// NewCSVOptions returns the default options: response in column 0, no header,
// normalization on.
func NewCSVOptions() CSVOptions {
	return CSVOptions{ResponseColumn: 0, Normalize: true}
}

// ReadCSV parses labelled points from CSV data, one record per point, with one
// response column and the remaining columns as covariates. It lets users drive
// the incremental mechanisms from logged (offline-collected) data in addition
// to the synthetic generators in this package. All records must have the same
// number of columns.
func ReadCSV(r io.Reader, opts CSVOptions) ([]loss.Point, error) {
	if r == nil {
		return nil, errors.New("stream: nil reader")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for clearer errors
	var out []loss.Point
	width := -1
	row := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: reading CSV record %d: %w", row, err)
		}
		row++
		if opts.HasHeader && row == 1 {
			continue
		}
		if width == -1 {
			width = len(rec)
			if width < 2 {
				return nil, fmt.Errorf("stream: CSV needs at least 2 columns, got %d", width)
			}
			if opts.ResponseColumn < 0 || opts.ResponseColumn >= width {
				return nil, fmt.Errorf("stream: response column %d out of range for %d columns", opts.ResponseColumn, width)
			}
		} else if len(rec) != width {
			return nil, fmt.Errorf("stream: CSV record %d has %d columns, want %d", row, len(rec), width)
		}
		x := make(vec.Vector, 0, width-1)
		var y float64
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: CSV record %d column %d: %w", row, i, err)
			}
			if i == opts.ResponseColumn {
				y = v
			} else {
				x = append(x, v)
			}
		}
		if opts.Normalize {
			if n := vec.Norm2(x); n > 1 {
				x.Scale(1 / n)
			}
			if y > 1 {
				y = 1
			} else if y < -1 {
				y = -1
			}
		}
		out = append(out, loss.Point{X: x, Y: y})
		if opts.MaxRecords > 0 && len(out) >= opts.MaxRecords {
			break
		}
	}
	return out, nil
}

// Replay turns a pre-loaded slice of points into a Generator that replays them
// in order, cycling back to the beginning when exhausted. It lets CSV-loaded
// data be used anywhere a synthetic generator is accepted.
type Replay struct {
	points []loss.Point
	next   int
}

// NewReplay returns a Generator replaying the given points. At least one point
// is required.
func NewReplay(points []loss.Point) (*Replay, error) {
	if len(points) == 0 {
		return nil, errors.New("stream: replay requires at least one point")
	}
	d := len(points[0].X)
	for i, p := range points {
		if len(p.X) != d {
			return nil, fmt.Errorf("stream: replay point %d has dimension %d, want %d", i, len(p.X), d)
		}
	}
	return &Replay{points: points}, nil
}

// Dim implements Generator.
func (r *Replay) Dim() int { return len(r.points[0].X) }

// Len returns the number of distinct points replayed before cycling.
func (r *Replay) Len() int { return len(r.points) }

// Next implements Generator.
func (r *Replay) Next() loss.Point {
	p := r.points[r.next]
	r.next = (r.next + 1) % len(r.points)
	return loss.Point{X: p.X.Clone(), Y: p.Y}
}
