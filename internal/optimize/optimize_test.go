package optimize

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// quadratic returns value and gradient closures for f(θ) = ‖θ - c‖².
func quadratic(center vec.Vector) (func(vec.Vector) float64, GradientFunc) {
	value := func(th vec.Vector) float64 {
		d := vec.Sub(th, center)
		return vec.Dot(d, d)
	}
	grad := func(th vec.Vector) vec.Vector {
		g := vec.Sub(th, center)
		g.Scale(2)
		return g
	}
	return value, grad
}

func TestProjectedGradientConvergesInteriorOptimum(t *testing.T) {
	d := 8
	c := constraint.NewL2Ball(d, 1)
	center := vec.NewVector(d)
	center[0], center[1] = 0.3, -0.2 // inside the ball
	value, grad := quadratic(center)
	res, err := Projected(c, grad, Options{Iterations: 800, Lipschitz: 4, GradError: 0, Average: false})
	if err != nil {
		t.Fatal(err)
	}
	if value(res.Theta) > 1e-3 {
		t.Fatalf("did not converge: f=%v at %v", value(res.Theta), res.Theta)
	}
	if res.Iterations != 800 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestProjectedGradientConvergesBoundaryOptimum(t *testing.T) {
	// Optimum of the unconstrained quadratic lies outside C; the constrained
	// optimum is the projection of the center onto the ball.
	d := 5
	c := constraint.NewL2Ball(d, 1)
	center := vec.NewVector(d)
	center.Fill(2)
	value, grad := quadratic(center)
	want := c.Project(center)
	res, err := Projected(c, grad, Options{Iterations: 2000, Lipschitz: 12, Average: false})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Dist2(res.Theta, want) > 1e-2 {
		t.Fatalf("constrained optimum %v, want %v (f=%v)", res.Theta, want, value(res.Theta))
	}
}

func TestNoisyProjectedRespectsConstraint(t *testing.T) {
	src := randx.NewSource(1)
	d := 6
	c := constraint.NewL1Ball(d, 1)
	center := vec.NewVector(d)
	center.Fill(1)
	_, grad := quadratic(center)
	noisy := func(th vec.Vector) vec.Vector {
		g := grad(th)
		for i := range g {
			g[i] += src.Normal(0, 0.5)
		}
		return g
	}
	res, err := NoisyProjected(c, noisy, Options{Iterations: 200, Lipschitz: 10, GradError: 0.5, Average: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(res.Theta, 1e-6) {
		t.Fatalf("average iterate %v outside the constraint set", res.Theta)
	}
	if !c.Contains(res.Last, 1e-6) {
		t.Fatalf("last iterate %v outside the constraint set", res.Last)
	}
}

// TestNoisyProjectedSatisfiesPropositionB1 checks the quantitative guarantee:
// with gradient error bounded by α the excess objective after r steps is at most
// (α+L)‖C‖/√r + α‖C‖ (allowing a small slack for the high-probability nature of
// the bound).
func TestNoisyProjectedSatisfiesPropositionB1(t *testing.T) {
	src := randx.NewSource(2)
	d := 10
	c := constraint.NewL2Ball(d, 1)
	center := vec.NewVector(d)
	center[0] = 0.5
	value, grad := quadratic(center)
	lip := 2 * (1 + 0.5) // ‖∇f‖ ≤ 2(‖θ‖+‖c‖) over the ball
	for _, alpha := range []float64{0.05, 0.3} {
		for _, r := range []int{25, 100, 400} {
			noisy := func(th vec.Vector) vec.Vector {
				g := grad(th)
				dir := vec.Vector(src.UnitSphere(d))
				vec.Axpy(g, alpha*src.Float64(), dir)
				return g
			}
			res, err := NoisyProjected(c, noisy, Options{Iterations: r, Lipschitz: lip, GradError: alpha, Average: true})
			if err != nil {
				t.Fatal(err)
			}
			excess := value(res.Theta) - 0 // optimum value is 0 at the interior center
			bound := (alpha+lip)*c.Diameter()/math.Sqrt(float64(r)) + alpha*c.Diameter()
			if excess > 1.5*bound {
				t.Fatalf("alpha=%v r=%d: excess %v exceeds 1.5× the Proposition B.1 bound %v", alpha, r, excess, bound)
			}
		}
	}
}

func TestDefaultStepSizeAndIterationRule(t *testing.T) {
	if got := DefaultStepSize(2, 100, 1, 3); math.Abs(got-2.0/(10*4)) > 1e-12 {
		t.Fatalf("DefaultStepSize = %v", got)
	}
	if got := DefaultStepSize(2, 100, 0, 0); got != 1 {
		t.Fatalf("degenerate DefaultStepSize = %v", got)
	}
	// Corollary B.2: r = (1 + L/α)², clamped.
	if got := IterationsForTargetError(9, 3, 1, 1000); got != 16 {
		t.Fatalf("IterationsForTargetError = %d, want 16", got)
	}
	if got := IterationsForTargetError(9, 3, 50, 1000); got != 50 {
		t.Fatalf("min clamp failed: %d", got)
	}
	if got := IterationsForTargetError(1e6, 1, 1, 200); got != 200 {
		t.Fatalf("max clamp failed: %d", got)
	}
	if got := IterationsForTargetError(5, 0, 1, 300); got != 300 {
		t.Fatalf("zero gradient error should hit max iterations: %d", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	c := constraint.NewL2Ball(2, 1)
	_, grad := quadratic(vec.Vector{0, 0})
	if _, err := NoisyProjected(nil, grad, Options{Iterations: 1}); err == nil {
		t.Fatal("nil constraint should error")
	}
	if _, err := NoisyProjected(c, nil, Options{Iterations: 1}); err == nil {
		t.Fatal("nil gradient should error")
	}
	if _, err := NoisyProjected(c, grad, Options{Iterations: 0}); err == nil {
		t.Fatal("zero iterations should error")
	}
	if _, err := NoisyProjected(c, grad, Options{Iterations: 1, Start: vec.Vector{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dimension start should error")
	}
	bad := func(vec.Vector) vec.Vector { return vec.Vector{1} }
	if _, err := NoisyProjected(c, bad, Options{Iterations: 1}); err == nil {
		t.Fatal("wrong-dimension gradient should error")
	}
}

func TestWarmStartFromOptimumStaysPut(t *testing.T) {
	d := 4
	c := constraint.NewL2Ball(d, 1)
	center := vec.NewVector(d)
	center[0] = 0.4
	value, grad := quadratic(center)
	res, err := Projected(c, grad, Options{Iterations: 50, Lipschitz: 3, Start: center, Average: false})
	if err != nil {
		t.Fatal(err)
	}
	if value(res.Theta) > 1e-10 {
		t.Fatalf("started at the optimum but drifted to f=%v", value(res.Theta))
	}
}

func TestFrankWolfeOnCrossPolytope(t *testing.T) {
	d := 6
	p := constraint.CrossPolytope(d, 1)
	center := vec.NewVector(d)
	center[0] = 0.6
	value, grad := quadratic(center)
	res, err := FrankWolfe(p, grad, PolytopeLMO(p), 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if value(res.Theta) > 5e-2 {
		t.Fatalf("Frank-Wolfe did not converge: f=%v at %v", value(res.Theta), res.Theta)
	}
	if !p.Contains(res.Theta, 1e-3) {
		t.Fatalf("Frank-Wolfe iterate outside the polytope")
	}
	if _, err := FrankWolfe(p, grad, nil, 10, nil); err == nil {
		t.Fatal("nil LMO should error")
	}
	if _, err := FrankWolfe(p, grad, PolytopeLMO(p), 0, nil); err == nil {
		t.Fatal("zero iterations should error")
	}
}

func TestAverageVsLastIterate(t *testing.T) {
	d := 3
	c := constraint.NewL2Ball(d, 1)
	center := vec.NewVector(d)
	center[0] = 0.2
	_, grad := quadratic(center)
	avg, err := Projected(c, grad, Options{Iterations: 100, Lipschitz: 3, Average: true})
	if err != nil {
		t.Fatal(err)
	}
	last, err := Projected(c, grad, Options{Iterations: 100, Lipschitz: 3, Average: false})
	if err != nil {
		t.Fatal(err)
	}
	// Both must be feasible; the last iterate of a noise-free run should be at
	// least as close to the optimum as the average.
	if vec.Dist2(last.Theta, center) > vec.Dist2(avg.Theta, center)+1e-9 {
		t.Fatalf("last iterate worse than average on a noise-free problem")
	}
}
