// Package optimize implements the first-order constrained convex optimizers
// the mechanisms rely on: projected (sub)gradient descent, the noisy projected
// gradient descent procedure NOISYPROJGRAD analyzed in Appendix B of the
// paper, and Frank–Wolfe as an alternative projection-free method used in
// ablation experiments.
//
// All optimizers consume a GradientFunc — in the private mechanisms this is a
// *private gradient function* (Definition 5), so evaluating it any number of
// times is free post-processing of already-privatized state and does not
// consume additional privacy budget.
package optimize

import (
	"errors"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/vec"
)

// GradientFunc returns (an approximation of) the gradient of the objective at
// theta. It must not modify theta.
type GradientFunc func(theta vec.Vector) vec.Vector

// ValueFunc returns the objective value at theta; optional, used only for
// averaging diagnostics and the Frank–Wolfe line search fallback.
type ValueFunc func(theta vec.Vector) float64

// Options configures the projected gradient optimizers.
type Options struct {
	// Iterations r is the number of gradient steps. Must be positive.
	Iterations int
	// StepSize is the constant step size η. When zero, the step size is set to
	// ‖C‖ / (√r · (GradError + Lipschitz)) as in Proposition B.1.
	StepSize float64
	// Lipschitz is the bound L on the true gradient norm, used for the default
	// step size. Ignored when StepSize > 0.
	Lipschitz float64
	// GradError is the bound α on the gradient approximation error, used for
	// the default step size. Ignored when StepSize > 0.
	GradError float64
	// Start is the initial iterate; it is projected onto the constraint set
	// before use. When nil, the projection of the origin is used.
	Start vec.Vector
	// Average controls whether the returned iterate is the running average
	// θ̄ = (1/r) Σ θ_k (as in the Appendix-B analysis, true by default via
	// NoisyProjected) or the final iterate.
	Average bool
}

// Result carries the output of an optimizer run.
type Result struct {
	// Theta is the returned iterate (average or last, per Options.Average).
	Theta vec.Vector
	// Last is the final iterate θ_{r+1}.
	Last vec.Vector
	// Iterations is the number of steps actually performed.
	Iterations int
}

// DefaultStepSize returns the constant step size η = ‖C‖ / (√r (α + L)) used in
// Proposition B.1.
func DefaultStepSize(diameter float64, iterations int, gradError, lipschitz float64) float64 {
	denom := math.Sqrt(float64(iterations)) * (gradError + lipschitz)
	if denom <= 0 {
		return 1
	}
	return diameter / denom
}

// NoisyProjected runs the NOISYPROJGRAD procedure of Appendix B: r rounds of
// θ_{k+1} = P_C(θ_k - η·g(θ_k)) followed by averaging. With a gradient oracle
// whose error is at most α (with high probability per call), Proposition B.1
// guarantees excess objective at most (α+L)‖C‖/√r + α‖C‖, and Corollary B.2
// shows r = (1 + L/α)² steps suffice for excess 2α‖C‖.
func NoisyProjected(c constraint.Set, grad GradientFunc, opts Options) (Result, error) {
	if c == nil || grad == nil {
		return Result{}, errors.New("optimize: nil constraint set or gradient function")
	}
	if opts.Iterations <= 0 {
		return Result{}, errors.New("optimize: iteration count must be positive")
	}
	d := c.Dim()
	step := opts.StepSize
	if step <= 0 {
		step = DefaultStepSize(c.Diameter(), opts.Iterations, opts.GradError, opts.Lipschitz)
	}
	var theta vec.Vector
	if opts.Start != nil {
		if len(opts.Start) != d {
			return Result{}, errors.New("optimize: start point has wrong dimension")
		}
		theta = c.Project(opts.Start)
	} else {
		theta = c.Project(vec.NewVector(d))
	}
	avg := vec.NewVector(d)
	work := vec.NewVector(d)
	for k := 0; k < opts.Iterations; k++ {
		avg.AddInPlace(theta)
		g := grad(theta)
		if len(g) != d {
			return Result{}, errors.New("optimize: gradient has wrong dimension")
		}
		work.CopyFrom(theta)
		vec.Axpy(work, -step, g)
		theta = c.Project(work)
	}
	avg.Scale(1 / float64(opts.Iterations))
	out := avg
	if !opts.Average {
		out = theta.Clone()
	}
	return Result{Theta: out, Last: theta.Clone(), Iterations: opts.Iterations}, nil
}

// Projected runs exact projected gradient descent (the noise-free special case
// α = 0 of NoisyProjected). It is used by the non-private baselines and the
// exact constrained ERM solver.
func Projected(c constraint.Set, grad GradientFunc, opts Options) (Result, error) {
	return NoisyProjected(c, grad, opts)
}

// IterationsForTargetError returns the iteration count r = Θ((1 + T‖C‖/α')²)
// used by Algorithms 2 and 3 of the paper, where α' is the gradient-error scale
// and T‖C‖ plays the role of the Lipschitz constant of the accumulated loss.
// The count is clamped to [minIters, maxIters] to keep runtimes sane.
func IterationsForTargetError(lipschitz, gradError float64, minIters, maxIters int) int {
	if gradError <= 0 {
		return maxIters
	}
	ratio := 1 + lipschitz/gradError
	r := int(math.Ceil(ratio * ratio))
	if r < minIters {
		r = minIters
	}
	if maxIters > 0 && r > maxIters {
		r = maxIters
	}
	return r
}

// FrankWolfe runs the projection-free Frank–Wolfe (conditional gradient) method
// over the constraint set, using the set's support structure via a linear
// minimization oracle built from SupportFunction directions. It requires only a
// gradient oracle and is provided for ablation comparisons against projected
// descent on polytope-like sets; it uses the classic 2/(k+2) step schedule.
func FrankWolfe(c constraint.Set, grad GradientFunc, lmo func(direction vec.Vector) vec.Vector, iterations int, start vec.Vector) (Result, error) {
	if c == nil || grad == nil || lmo == nil {
		return Result{}, errors.New("optimize: nil constraint set, gradient, or linear oracle")
	}
	if iterations <= 0 {
		return Result{}, errors.New("optimize: iteration count must be positive")
	}
	d := c.Dim()
	var theta vec.Vector
	if start != nil {
		theta = c.Project(start)
	} else {
		theta = c.Project(vec.NewVector(d))
	}
	for k := 0; k < iterations; k++ {
		g := grad(theta)
		// The LMO returns argmin_{s∈C} <s, g> ; pass -g so callers can implement
		// it as the support-maximizing vertex for direction -g.
		s := lmo(vec.Scaled(g, -1))
		gamma := 2 / float64(k+2)
		for i := range theta {
			theta[i] = (1-gamma)*theta[i] + gamma*s[i]
		}
	}
	return Result{Theta: theta.Clone(), Last: theta.Clone(), Iterations: iterations}, nil
}

// PolytopeLMO returns a linear minimization oracle for a vertex-described
// polytope: for a direction u it returns the vertex maximizing <v, u>.
func PolytopeLMO(p *constraint.Polytope) func(vec.Vector) vec.Vector {
	vertices := p.Vertices()
	return func(u vec.Vector) vec.Vector {
		best := math.Inf(-1)
		var arg vec.Vector
		for _, v := range vertices {
			if s := vec.Dot(v, u); s > best {
				best = s
				arg = v
			}
		}
		return arg.Clone()
	}
}
