package erm

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// makeRegressionData builds n points from y = <x, θ*> + noise with unit-ball
// covariates.
func makeRegressionData(n, d int, truth vec.Vector, noise float64, src *randx.Source) []loss.Point {
	data := make([]loss.Point, n)
	for i := range data {
		x := vec.Vector(src.UnitBall(d))
		y := vec.Dot(x, truth) + src.Normal(0, noise)
		data[i] = loss.Point{X: x, Y: y}
	}
	return data
}

func TestExactMatchesClosedFormUnconstrainedInterior(t *testing.T) {
	// With an interior optimum, the constrained solution equals the OLS solution.
	src := randx.NewSource(1)
	d, n := 3, 200
	truth := vec.Vector{0.3, -0.2, 0.1}
	data := makeRegressionData(n, d, truth, 0.01, src)
	cons := constraint.NewL2Ball(d, 5) // generous: optimum is interior
	got, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Closed form via normal equations.
	ata := vec.NewMatrix(d, d)
	aty := vec.NewVector(d)
	for _, z := range data {
		ata.AddOuterInPlace(1, z.X)
		vec.Axpy(aty, z.Y, z.X)
	}
	want, err := vec.SolveRidge(ata, aty, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Dist2(got, want) > 1e-3 {
		t.Fatalf("Exact = %v, closed form = %v", got, want)
	}
}

func TestExactRespectsConstraint(t *testing.T) {
	src := randx.NewSource(2)
	d := 4
	truth := vec.Vector{2, 2, 2, 2} // far outside the small ball
	data := makeRegressionData(100, d, truth, 0.01, src)
	cons := constraint.NewL1Ball(d, 0.5)
	got, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(got, 1e-6) {
		t.Fatalf("solution %v outside the constraint set", got)
	}
	// Optimality within the set: no random feasible point does better.
	obj := loss.Empirical(loss.Squared{}, got, data)
	for trial := 0; trial < 200; trial++ {
		probe := cons.Project(vec.Vector(src.NormalVector(d, 1)))
		if loss.Empirical(loss.Squared{}, probe, data) < obj-1e-6 {
			t.Fatalf("found a better feasible point than Exact's solution")
		}
	}
}

func TestExactEmptyData(t *testing.T) {
	cons := constraint.NewL2Ball(3, 1)
	got, err := Exact(loss.Squared{}, cons, nil, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(got, 1e-9) {
		t.Fatal("empty-data solution must still be feasible")
	}
	if _, err := Exact(nil, cons, nil, ExactOptions{}); err == nil {
		t.Fatal("nil loss should error")
	}
}

func TestLeastSquaresStateMatchesDirectComputation(t *testing.T) {
	src := randx.NewSource(3)
	d, n := 4, 60
	truth := vec.Vector{0.2, -0.3, 0.1, 0.4}
	data := makeRegressionData(n, d, truth, 0.05, src)
	cons := constraint.NewL2Ball(d, 1)
	state := NewLeastSquaresState(d, cons)
	for _, z := range data {
		state.Observe(z.X, z.Y)
	}
	if state.Len() != n {
		t.Fatalf("Len = %d", state.Len())
	}
	// Risk computed from sufficient statistics must equal the direct sum.
	theta := vec.Vector{0.1, 0.1, -0.1, 0.2}
	want := loss.Empirical(loss.Squared{}, theta, data)
	if got := state.Risk(theta); math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("Risk = %v, want %v", got, want)
	}
	// Gradient from sufficient statistics must equal the summed gradient.
	wantG := loss.EmpiricalGradient(loss.Squared{}, theta, data)
	if got := state.Gradient(theta); vec.Dist2(got, wantG) > 1e-8*(1+vec.Norm2(wantG)) {
		t.Fatalf("Gradient = %v, want %v", got, wantG)
	}
	// Minimizer must be at least as good as the batch Exact solver result.
	minimized := state.Minimize(0)
	exact, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state.Risk(minimized) > state.Risk(exact)+1e-6 {
		t.Fatalf("incremental minimizer risk %v worse than batch %v", state.Risk(minimized), state.Risk(exact))
	}
	if !cons.Contains(minimized, 1e-6) {
		t.Fatal("minimizer not feasible")
	}
}

func TestLeastSquaresStateEmptyAndUnconstrained(t *testing.T) {
	state := NewLeastSquaresState(3, nil)
	m := state.Minimize(0)
	if vec.Norm2(m) != 0 {
		t.Fatalf("empty unconstrained minimizer = %v", m)
	}
	state.Observe(vec.Vector{1, 0, 0}, 2)
	state.Observe(vec.Vector{0, 1, 0}, -1)
	state.Observe(vec.Vector{0, 0, 1}, 0.5)
	m = state.Minimize(0)
	if vec.Dist2(m, vec.Vector{2, -1, 0.5}) > 1e-6 {
		t.Fatalf("unconstrained minimizer = %v", m)
	}
}

func TestPrivateBatchFeasibleAndReasonable(t *testing.T) {
	src := randx.NewSource(4)
	d, n := 4, 3000
	truth := vec.Vector{0.5, -0.4, 0.3, 0.3}
	data := makeRegressionData(n, d, truth, 0.05, src.Split())
	cons := constraint.NewL2Ball(d, 1)
	p := dp.Params{Epsilon: 2, Delta: 1e-6}
	theta, err := PrivateBatch(loss.Squared{}, cons, data, p, src.Split(), PrivateBatchOptions{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatalf("private solution %v not feasible", theta)
	}
	// The private solution must beat the trivial all-zeros predictor (the data
	// has strong signal and n is large relative to the noise scale).
	exact, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	excessPrivate := loss.Empirical(loss.Squared{}, theta, data) - loss.Empirical(loss.Squared{}, exact, data)
	excessTrivial := loss.Empirical(loss.Squared{}, vec.NewVector(d), data) - loss.Empirical(loss.Squared{}, exact, data)
	if excessPrivate >= excessTrivial {
		t.Fatalf("private batch ERM (excess %v) should beat the trivial predictor (excess %v)", excessPrivate, excessTrivial)
	}
}

func TestPrivateBatchNoiseDecreasesWithEpsilon(t *testing.T) {
	src := randx.NewSource(5)
	d, n := 3, 300
	truth := vec.Vector{0.5, -0.4, 0.3}
	data := makeRegressionData(n, d, truth, 0.02, src.Split())
	cons := constraint.NewL2Ball(d, 1)
	exact, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	excess := func(eps float64, seed int64) float64 {
		var total float64
		const reps = 5
		for i := int64(0); i < reps; i++ {
			theta, err := PrivateBatch(loss.Squared{}, cons, data, dp.Params{Epsilon: eps, Delta: 1e-6}, randx.NewSource(seed+i), PrivateBatchOptions{Iterations: 60})
			if err != nil {
				t.Fatal(err)
			}
			total += loss.Empirical(loss.Squared{}, theta, data) - loss.Empirical(loss.Squared{}, exact, data)
		}
		return total / reps
	}
	low := excess(0.1, 100)
	high := excess(10, 200)
	if high >= low {
		t.Fatalf("excess risk should decrease with epsilon: ε=0.1 → %v, ε=10 → %v", low, high)
	}
}

func TestPrivateBatchValidation(t *testing.T) {
	cons := constraint.NewL2Ball(2, 1)
	src := randx.NewSource(6)
	if _, err := PrivateBatch(nil, cons, nil, dp.Params{Epsilon: 1, Delta: 1e-6}, src, PrivateBatchOptions{}); err == nil {
		t.Fatal("nil loss should error")
	}
	if _, err := PrivateBatch(loss.Squared{}, cons, nil, dp.Params{Epsilon: 1, Delta: 1e-6}, nil, PrivateBatchOptions{}); err == nil {
		t.Fatal("nil source should error")
	}
	if _, err := PrivateBatch(loss.Squared{}, cons, nil, dp.Params{Epsilon: 0, Delta: 1e-6}, src, PrivateBatchOptions{}); err == nil {
		t.Fatal("invalid privacy should error")
	}
	// Empty data returns a feasible default.
	theta, err := PrivateBatch(loss.Squared{}, cons, nil, dp.Params{Epsilon: 1, Delta: 1e-6}, src, PrivateBatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(theta, 1e-9) {
		t.Fatal("empty-data private solution must be feasible")
	}
}
