package erm

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/codec"
	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/loss"
	"privreg/internal/optimize"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// This file implements the amortized slow-path solver substrate:
//
//   - QuadraticStats: the O(d²) sufficient statistics (Σ x xᵀ, Σ y x, Σ y², n)
//     of a quadratic empirical risk, maintained incrementally with packed
//     rank-one updates so a private solve never revisits the stream;
//   - Solver: a reusable counter-keyed noisy-projected-gradient workspace.
//     Iteration k of invocation i draws its noise as a pure function of
//     (key, i, k) via randx.FillNormalAt, never from a sequential generator,
//     so a solve scheduled at a τ boundary can be deferred to the next
//     Estimate — or skipped entirely when a later boundary supersedes it —
//     and still produce bit-identical output whenever it runs.
//
// PrivateBatch (erm.go) remains the sequential-source variant used by callers
// that replay a randomness stream; the incremental mechanisms in
// internal/core use the keyed Solver exclusively.

// QuadraticStats maintains the sufficient statistics of a quadratic empirical
// risk Σ_i scale·(y_i − ⟨x_i, θ⟩)² + n·(ridge/2)·‖θ‖²: the second-moment
// matrix A = Σ x xᵀ (packed symmetric), the cross-moment B = Σ y·x, the
// response energy Σ y², and the count n. Folding a point is O(d²) and the
// empirical gradient at any θ is 2·scale·(Aθ − B) + n·ridge·θ, computed in
// O(d²) independent of n.
type QuadraticStats struct {
	a  *vec.SymMatrix
	b  vec.Vector
	yy float64
	n  int
}

// NewQuadraticStats returns empty statistics for dimension d.
func NewQuadraticStats(d int) *QuadraticStats {
	return &QuadraticStats{a: vec.NewSymMatrix(d), b: vec.NewVector(d)}
}

// Dim returns the covariate dimension.
func (s *QuadraticStats) Dim() int { return len(s.b) }

// Len returns the number of folded points.
func (s *QuadraticStats) Len() int { return s.n }

// Add folds the pair (x, y) into the statistics.
func (s *QuadraticStats) Add(x vec.Vector, y float64) {
	if len(x) != len(s.b) {
		panic("erm: QuadraticStats dimension mismatch")
	}
	s.n++
	s.a.AddScaledOuter(1, x)
	vec.Axpy(s.b, y, x)
	s.yy += y * y
}

// CopyFrom copies src into s. Dimensions must match.
func (s *QuadraticStats) CopyFrom(src *QuadraticStats) {
	s.a.CopyFrom(src.a)
	s.b.CopyFrom(src.b)
	s.yy = src.yy
	s.n = src.n
}

// Reset empties the statistics.
func (s *QuadraticStats) Reset() {
	s.a.Zero()
	for i := range s.b {
		s.b[i] = 0
	}
	s.yy = 0
	s.n = 0
}

// Bytes returns the retained memory of the statistics: the packed triangle
// plus the cross-moment vector (8 bytes per float64). It is the quantity
// surfaced as retained-state bytes in pool statistics.
func (s *QuadraticStats) Bytes() int {
	return 8 * (len(s.a.Data()) + len(s.b))
}

// GradientInto writes the empirical gradient Σ_i ∇ℓ(θ; z_i) =
// 2·scale·(Aθ − B) + n·ridge·θ into dst. dst must not alias theta. The
// operation order is fixed, so the result is bit-deterministic.
func (s *QuadraticStats) GradientInto(dst, theta vec.Vector, scale, ridge float64) {
	s.a.MulVecTo(dst, theta)
	nridge := float64(s.n) * ridge
	for i := range dst {
		dst[i] = 2*scale*(dst[i]-s.b[i]) + nridge*theta[i]
	}
}

// Risk returns the empirical risk of θ under the quadratic form:
// scale·(θᵀAθ − 2⟨B, θ⟩ + Σy²) + n·(ridge/2)·‖θ‖².
func (s *QuadraticStats) Risk(theta vec.Vector, scale, ridge float64) float64 {
	q := vec.NewVector(len(theta))
	s.a.MulVecTo(q, theta)
	nt := vec.Norm2(theta)
	return scale*(vec.Dot(theta, q)-2*vec.Dot(s.b, theta)+s.yy) +
		float64(s.n)*ridge/2*nt*nt
}

// quadStatsVersion is the QuadraticStats checkpoint format version.
const quadStatsVersion = 1

// MarshalState serializes the statistics. The blob is O(d²) regardless of how
// many points were folded.
func (s *QuadraticStats) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(quadStatsVersion)
	w.Int(s.Dim())
	w.Int(s.n)
	w.F64s(s.a.Data())
	w.F64s(s.b)
	w.F64(s.yy)
	return w.Bytes(), nil
}

// UnmarshalState restores statistics captured by MarshalState into a receiver
// of the same dimension.
func (s *QuadraticStats) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(quadStatsVersion)
	r.ExpectInt("dimension", s.Dim())
	n := r.Int()
	r.F64sInto(s.a.Data())
	r.F64sInto(s.b)
	yy := r.F64()
	if err := r.Finish(); err != nil {
		return err
	}
	if n < 0 {
		return errors.New("erm: corrupt checkpoint (negative observation count)")
	}
	s.n = n
	s.yy = yy
	return nil
}

// Solver is a reusable workspace for counter-keyed private batch ERM solves.
// A solve is a pure function of (problem state, key, invocation index): the
// per-iteration Gaussian noise is randx.FillNormalAt(SubKey(key, invocation),
// iteration, ·, σ), so the output does not depend on when the solve runs, how
// many other solves ran before it, or whether any scheduled solve was skipped.
// The workspace buffers are fully overwritten by each call — a Solver carries
// no state between solves (deliberately: cross-solve warm starts would make
// the output depend on which earlier solves executed, breaking the deferral
// and skip semantics).
//
// A Solver is not safe for concurrent use.
type Solver struct {
	c       constraint.Set
	inplace constraint.InplaceProjector

	theta, next, grad, noise, avg vec.Vector
}

// NewSolver returns a solver workspace over the constraint set c.
func NewSolver(c constraint.Set) *Solver {
	d := c.Dim()
	ip, _ := c.(constraint.InplaceProjector)
	return &Solver{
		c:       c,
		inplace: ip,
		theta:   vec.NewVector(d),
		next:    vec.NewVector(d),
		grad:    vec.NewVector(d),
		noise:   vec.NewVector(d),
		avg:     vec.NewVector(d),
	}
}

// SolveStats runs the keyed private solve over quadratic sufficient
// statistics. f must satisfy loss.AsQuadratic; the statistics must have been
// folded from data clamped to the bounds in opts.
func (sv *Solver) SolveStats(f loss.Function, stats *QuadraticStats, p dp.Params, key int64, invocation uint64, opts PrivateBatchOptions) (vec.Vector, error) {
	scale, ridge, ok := loss.AsQuadratic(f)
	if !ok {
		return nil, fmt.Errorf("erm: loss %q has no quadratic sufficient statistics", f.Name())
	}
	if stats.Dim() != sv.c.Dim() {
		return nil, errors.New("erm: statistics dimension mismatch")
	}
	opts.fill(stats.Len())
	lip := f.Lipschitz(sv.c, opts.XBound, opts.YBound)
	return sv.run(stats.Len(), lip, func(dst, theta vec.Vector) {
		stats.GradientInto(dst, theta, scale, ridge)
	}, p, key, invocation, opts)
}

// SolveHistory runs the keyed private solve over an explicit dataset, using
// the chunked (GOMAXPROCS-independent) empirical gradient. It is the fallback
// for losses without quadratic sufficient statistics.
func (sv *Solver) SolveHistory(f loss.Function, data []loss.Point, p dp.Params, key int64, invocation uint64, opts PrivateBatchOptions) (vec.Vector, error) {
	if f == nil {
		return nil, errors.New("erm: nil loss")
	}
	opts.fill(len(data))
	lip := f.Lipschitz(sv.c, opts.XBound, opts.YBound)
	return sv.run(len(data), lip, func(dst, theta vec.Vector) {
		loss.EmpiricalGradientInto(f, dst, theta, data)
	}, p, key, invocation, opts)
}

// PrivateBatchAt is the convenience form of Solver.SolveHistory for callers
// that do not retain a workspace (reference implementations in tests, one-off
// solves). It allocates a fresh Solver, so the result is identical to any
// other solver's on the same arguments.
func PrivateBatchAt(f loss.Function, c constraint.Set, data []loss.Point, p dp.Params, key int64, invocation uint64, opts PrivateBatchOptions) (vec.Vector, error) {
	if c == nil {
		return nil, errors.New("erm: nil constraint set")
	}
	return NewSolver(c).SolveHistory(f, data, p, key, invocation, opts)
}

// run is the shared noisy-projected-gradient body: the same algorithmic
// template as PrivateBatch (noise calibrated by advanced composition over the
// iterations, per Bassily et al.), with three differences — keyed noise,
// reused buffers, and a tolerance-based early stop. The early stop fires only
// when consecutive iterates move less than opts.Tolerance, which genuine
// privacy noise (σ·step per coordinate) keeps far out of reach, so under real
// budgets the full run executes and the Appendix-B iterate average is
// returned; in the negligible-noise regime the stop returns the converged
// final iterate. Either way the trajectory — and therefore the stop decision
// and the output — is a deterministic function of the inputs.
func (sv *Solver) run(n int, lip float64, gradInto func(dst, theta vec.Vector), p dp.Params, key int64, invocation uint64, opts PrivateBatchOptions) (vec.Vector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts.fill(n)
	d := sv.c.Dim()
	if n == 0 {
		return sv.c.Project(vec.NewVector(d)), nil
	}
	perIter, err := dp.PerInvocationAdvanced(p, opts.Iterations)
	if err != nil {
		return nil, err
	}
	// Changing one datapoint changes the summed gradient by at most 2L in L2.
	sigma, err := dp.GaussianSigma(2*lip, perIter)
	if err != nil {
		return nil, err
	}
	gradErr := sigma * math.Sqrt(float64(d))
	step := optimize.DefaultStepSize(sv.c.Diameter(), opts.Iterations, gradErr, float64(n)*lip)
	tol := opts.Tolerance
	if tol == 0 {
		tol = defaultSolveTolerance
	} else if tol < 0 {
		tol = 0
	}
	solveKey := randx.SubKey(key, invocation)
	if opts.Start != nil {
		if len(opts.Start) != d {
			return nil, errors.New("erm: start point has wrong dimension")
		}
		sv.theta.CopyFrom(opts.Start)
	} else {
		for i := range sv.theta {
			sv.theta[i] = 0
		}
	}
	sv.projectInPlace(sv.theta)
	for i := range sv.avg {
		sv.avg[i] = 0
	}
	for k := 0; k < opts.Iterations; k++ {
		sv.avg.AddInPlace(sv.theta)
		gradInto(sv.grad, sv.theta)
		randx.FillNormalAt(solveKey, uint64(k), sv.noise, sigma)
		sv.grad.AddInPlace(sv.noise)
		sv.next.CopyFrom(sv.theta)
		vec.Axpy(sv.next, -step, sv.grad)
		sv.projectInPlace(sv.next)
		moved := vec.Dist2(sv.next, sv.theta)
		sv.theta, sv.next = sv.next, sv.theta
		if tol > 0 && moved < tol {
			// Converged: the final iterate is the minimizer; the running
			// average would still carry the early transient.
			return sv.theta.Clone(), nil
		}
	}
	sv.avg.Scale(1 / float64(opts.Iterations))
	return sv.avg.Clone(), nil
}

// defaultSolveTolerance matches the exact solver's convergence threshold; at
// the scale of real privacy noise it never triggers.
const defaultSolveTolerance = 1e-10

// projectInPlace projects x onto the constraint set, in place when the set
// has the capability and through a copy otherwise.
func (sv *Solver) projectInPlace(x vec.Vector) {
	if sv.inplace != nil {
		sv.inplace.ProjectInPlace(x)
		return
	}
	x.CopyFrom(sv.c.Project(x))
}
