package erm

import (
	"errors"

	"privreg/internal/codec"
	"privreg/internal/vec"
)

// MultiStats maintains the sufficient statistics of k quadratic empirical
// risks that share one feature stream (the PRIMO setting: one X, k outcome
// vectors). The feature-side state — the second-moment matrix A = Σ x xᵀ and
// the count n — is held once; each outcome i adds only its cross-moment
// B_i = Σ y_i·x and response energy Σ y_i². Folding a row (x, y_1..y_k) is
// one O(d²) rank-one update plus k O(d) vector folds, against k·O(d²) for k
// independent QuadraticStats.
//
// Outcome(i) exposes outcome i as a *QuadraticStats whose matrix aliases the
// shared A, so Solver.SolveStats serves each outcome unchanged.
type MultiStats struct {
	a    *vec.SymMatrix
	n    int
	bs   []vec.Vector
	yys  []float64
	view []QuadraticStats // per-outcome views over the shared a; scalars refreshed on access
}

// NewMultiStats returns empty statistics for dimension d and k outcomes.
func NewMultiStats(d, k int) *MultiStats {
	if k < 1 {
		panic("erm: MultiStats needs at least one outcome")
	}
	m := &MultiStats{
		a:    vec.NewSymMatrix(d),
		bs:   make([]vec.Vector, k),
		yys:  make([]float64, k),
		view: make([]QuadraticStats, k),
	}
	for i := range m.bs {
		m.bs[i] = vec.NewVector(d)
		m.view[i] = QuadraticStats{a: m.a, b: m.bs[i]}
	}
	return m
}

// Dim returns the covariate dimension.
func (m *MultiStats) Dim() int { return m.a.Dim() }

// Outcomes returns k.
func (m *MultiStats) Outcomes() int { return len(m.bs) }

// Len returns the number of folded rows.
func (m *MultiStats) Len() int { return m.n }

// Add folds one row into the statistics: the shared matrix once, then each
// outcome's vector moments in index order. len(ys) must equal Outcomes().
func (m *MultiStats) Add(x vec.Vector, ys []float64) {
	if len(x) != m.a.Dim() {
		panic("erm: MultiStats dimension mismatch")
	}
	if len(ys) != len(m.bs) {
		panic("erm: MultiStats outcome count mismatch")
	}
	m.n++
	m.a.AddScaledOuter(1, x)
	for i, y := range ys {
		vec.Axpy(m.bs[i], y, x)
		m.yys[i] += y * y
	}
}

// Outcome returns outcome i's statistics as a QuadraticStats view. The view
// aliases the shared matrix and the outcome's moment vector — it is valid
// until the next Add/CopyFrom/Reset/UnmarshalState, and must not be mutated
// through QuadraticStats methods.
func (m *MultiStats) Outcome(i int) *QuadraticStats {
	v := &m.view[i]
	v.yy = m.yys[i]
	v.n = m.n
	return v
}

// CopyFrom copies src into m. Shapes must match.
func (m *MultiStats) CopyFrom(src *MultiStats) {
	if m.a.Dim() != src.a.Dim() || len(m.bs) != len(src.bs) {
		panic("erm: MultiStats CopyFrom shape mismatch")
	}
	m.a.CopyFrom(src.a)
	for i := range m.bs {
		m.bs[i].CopyFrom(src.bs[i])
		m.yys[i] = src.yys[i]
	}
	m.n = src.n
}

// Reset empties the statistics.
func (m *MultiStats) Reset() {
	m.a.Zero()
	for i := range m.bs {
		for j := range m.bs[i] {
			m.bs[i][j] = 0
		}
		m.yys[i] = 0
	}
	m.n = 0
}

// Bytes returns the retained memory of the statistics: one packed triangle
// plus k cross-moment vectors (8 bytes per float64).
func (m *MultiStats) Bytes() int {
	return 8 * (len(m.a.Data()) + len(m.bs)*m.a.Dim())
}

// multiStatsVersion is the MultiStats checkpoint format version.
const multiStatsVersion = 1

// MarshalState serializes the statistics: the shared feature-side state once,
// then the k per-outcome moments. The blob is O(d² + k·d) regardless of how
// many rows were folded.
func (m *MultiStats) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(multiStatsVersion)
	w.Int(m.Dim())
	w.Int(len(m.bs))
	w.Int(m.n)
	w.F64s(m.a.Data())
	for i := range m.bs {
		w.F64s(m.bs[i])
		w.F64(m.yys[i])
	}
	return w.Bytes(), nil
}

// UnmarshalState restores statistics captured by MarshalState into a receiver
// of the same shape.
func (m *MultiStats) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(multiStatsVersion)
	r.ExpectInt("dimension", m.Dim())
	r.ExpectInt("outcome count", len(m.bs))
	n := r.Int()
	r.F64sInto(m.a.Data())
	for i := range m.bs {
		r.F64sInto(m.bs[i])
		m.yys[i] = r.F64()
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if n < 0 {
		return errors.New("erm: corrupt checkpoint (negative observation count)")
	}
	m.n = n
	return nil
}
