package erm

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

func quadParams() dp.Params {
	return dp.Params{Epsilon: 1, Delta: 1e-6}
}

// negligibleNoise is a budget so large that the calibrated noise is far below
// the solver's convergence scale.
func negligibleNoise() dp.Params {
	return dp.Params{Epsilon: 1e9, Delta: 1e-6}
}

func foldStats(data []loss.Point, d int) *QuadraticStats {
	stats := NewQuadraticStats(d)
	for _, z := range data {
		stats.Add(z.X, z.Y)
	}
	return stats
}

func TestQuadraticStatsMatchEmpiricalRiskAndGradient(t *testing.T) {
	src := randx.NewSource(11)
	d, n := 5, 80
	truth := vec.Vector{0.2, -0.1, 0.3, 0, 0.1}
	data := makeRegressionData(n, d, truth, 0.05, src)
	theta := vec.Vector{0.1, -0.2, 0.05, 0.15, -0.1}
	for _, tc := range []struct {
		f     loss.Function
		ridge float64
	}{
		{loss.Squared{}, 0},
		{loss.L2Regularized{Base: loss.Squared{}, Lambda: 0.3}, 0.3},
	} {
		scale, ridge, ok := loss.AsQuadratic(tc.f)
		if !ok || ridge != tc.ridge {
			t.Fatalf("%s: AsQuadratic = (%v, %v, %v)", tc.f.Name(), scale, ridge, ok)
		}
		stats := foldStats(data, d)
		if stats.Len() != n || stats.Dim() != d {
			t.Fatalf("Len/Dim = %d/%d", stats.Len(), stats.Dim())
		}
		want := loss.Empirical(tc.f, theta, data)
		if got := stats.Risk(theta, scale, ridge); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("%s: Risk = %v, want %v", tc.f.Name(), got, want)
		}
		wantG := loss.EmpiricalGradient(tc.f, theta, data)
		got := vec.NewVector(d)
		stats.GradientInto(got, theta, scale, ridge)
		if vec.Dist2(got, wantG) > 1e-9*(1+vec.Norm2(wantG)) {
			t.Fatalf("%s: GradientInto = %v, want %v", tc.f.Name(), got, wantG)
		}
	}
}

func TestQuadraticStatsMarshalRoundTrip(t *testing.T) {
	src := randx.NewSource(13)
	d := 4
	data := makeRegressionData(30, d, vec.Vector{0.1, 0.2, -0.1, 0}, 0.1, src)
	stats := foldStats(data, d)
	blob, err := stats.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewQuadraticStats(d)
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != stats.Len() || restored.yy != stats.yy {
		t.Fatalf("restored n/yy = %d/%v, want %d/%v", restored.Len(), restored.yy, stats.Len(), stats.yy)
	}
	for i, v := range stats.a.Data() {
		if restored.a.Data()[i] != v {
			t.Fatalf("A[%d] differs after round trip", i)
		}
	}
	for i, v := range stats.b {
		if restored.b[i] != v {
			t.Fatalf("B[%d] differs after round trip", i)
		}
	}
	// The blob is O(d²): folding more points must not grow it.
	for i := 0; i < 100; i++ {
		stats.Add(data[i%len(data)].X, data[i%len(data)].Y)
	}
	blob2, err := stats.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) != len(blob) {
		t.Fatalf("checkpoint grew with stream length: %d -> %d bytes", len(blob), len(blob2))
	}
	// Wrong dimension is rejected.
	if err := NewQuadraticStats(d + 1).UnmarshalState(blob); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
}

func TestSolveStatsApproximatesSolveHistory(t *testing.T) {
	// Same key, invocation, and noise sequence: the stats-based gradient and
	// the per-point gradient differ only in floating-point association, so the
	// two trajectories stay within numerical distance of each other.
	src := randx.NewSource(17)
	d, n := 4, 120
	truth := vec.Vector{0.3, -0.2, 0.1, 0.05}
	data := makeRegressionData(n, d, truth, 0.05, src)
	cons := constraint.NewL2Ball(d, 1)
	stats := foldStats(data, d)
	opts := PrivateBatchOptions{Iterations: 60}
	const key, inv = 99, 3
	fromStats, err := NewSolver(cons).SolveStats(loss.Squared{}, stats, quadParams(), key, inv, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromHistory, err := NewSolver(cons).SolveHistory(loss.Squared{}, data, quadParams(), key, inv, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dist := vec.Dist2(fromStats, fromHistory); dist > 1e-8 {
		t.Fatalf("stats and history solves diverge: %v apart", dist)
	}
	if !cons.Contains(fromStats, 1e-9) {
		t.Fatal("solution must be feasible")
	}
}

func TestSolverIsPureFunctionOfKeyAndInvocation(t *testing.T) {
	src := randx.NewSource(19)
	d, n := 3, 50
	data := makeRegressionData(n, d, vec.Vector{0.2, 0.1, -0.3}, 0.1, src)
	cons := constraint.NewL2Ball(d, 1)
	stats := foldStats(data, d)
	opts := PrivateBatchOptions{Iterations: 40}
	const key = 42
	sv := NewSolver(cons)
	want, err := sv.SolveStats(loss.Squared{}, stats, quadParams(), key, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated solves at other invocations, then repeat: the reused
	// workspace must not leak state between solves.
	if _, err := sv.SolveStats(loss.Squared{}, stats, quadParams(), key, 3, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.SolveHistory(loss.Squared{}, data[:10], quadParams(), key, 7, opts); err != nil {
		t.Fatal(err)
	}
	again, err := sv.SolveStats(loss.Squared{}, stats, quadParams(), key, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != again[i] {
			t.Fatalf("solve not reproducible at coordinate %d: %v vs %v", i, want[i], again[i])
		}
	}
	// A fresh solver — and the convenience PrivateBatchAt — produce the same
	// bits as the reused workspace on the same arguments.
	fresh, err := NewSolver(cons).SolveStats(loss.Squared{}, stats, quadParams(), key, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	hist1, err := sv.SolveHistory(loss.Squared{}, data, quadParams(), key, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	hist2, err := PrivateBatchAt(loss.Squared{}, cons, data, quadParams(), key, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != fresh[i] {
			t.Fatalf("fresh solver differs at %d", i)
		}
		if hist1[i] != hist2[i] {
			t.Fatalf("PrivateBatchAt differs from SolveHistory at %d", i)
		}
	}
	// Different invocations draw different noise.
	other, err := sv.SolveStats(loss.Squared{}, stats, quadParams(), key, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Dist2(want, other) == 0 {
		t.Fatal("different invocations should produce different outputs")
	}
}

func TestSolverAccurateUnderNegligibleNoise(t *testing.T) {
	src := randx.NewSource(23)
	d, n := 4, 400
	truth := vec.Vector{0.3, -0.2, 0.1, 0.2}
	data := makeRegressionData(n, d, truth, 0.01, src)
	cons := constraint.NewL2Ball(d, 1)
	stats := foldStats(data, d)
	got, err := NewSolver(cons).SolveStats(loss.Squared{}, stats, negligibleNoise(), 7, 1,
		PrivateBatchOptions{Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(loss.Squared{}, cons, data, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same criterion as the sequential PrivateBatch tests: the solve closes
	// most of the gap between the trivial zero estimator and the exact ERM.
	excess := loss.Empirical(loss.Squared{}, got, data) - loss.Empirical(loss.Squared{}, exact, data)
	trivial := loss.Empirical(loss.Squared{}, vec.NewVector(d), data) - loss.Empirical(loss.Squared{}, exact, data)
	if excess > trivial/2 {
		t.Fatalf("keyed solve excess %v not better than half the trivial excess %v", excess, trivial)
	}
	// Disabling the early stop must also be deterministic and feasible.
	noStop, err := NewSolver(cons).SolveStats(loss.Squared{}, stats, negligibleNoise(), 7, 1,
		PrivateBatchOptions{Iterations: 300, Tolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(noStop, 1e-9) {
		t.Fatal("no-stop solution must be feasible")
	}
}

func TestSolverEdgeCases(t *testing.T) {
	cons := constraint.NewL2Ball(3, 1)
	sv := NewSolver(cons)
	// Empty data: the projected origin, no error.
	got, err := sv.SolveStats(loss.Squared{}, NewQuadraticStats(3), quadParams(), 1, 0, PrivateBatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(got) != 0 {
		t.Fatalf("empty solve = %v, want origin", got)
	}
	// Non-quadratic loss is rejected by SolveStats.
	if _, err := sv.SolveStats(loss.Logistic{}, NewQuadraticStats(3), quadParams(), 1, 0, PrivateBatchOptions{}); err == nil {
		t.Fatal("logistic loss should be rejected")
	}
	// Dimension mismatch is rejected.
	if _, err := sv.SolveStats(loss.Squared{}, NewQuadraticStats(4), quadParams(), 1, 0, PrivateBatchOptions{}); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	// Invalid privacy parameters are rejected.
	if _, err := sv.SolveStats(loss.Squared{}, NewQuadraticStats(3), dp.Params{}, 1, 0, PrivateBatchOptions{}); err == nil {
		t.Fatal("zero privacy params should be rejected")
	}
}

func BenchmarkSolveStats(b *testing.B) {
	src := randx.NewSource(29)
	d := 32
	data := makeRegressionData(256, d, vec.Vector(src.UnitBall(d)), 0.05, src)
	cons := constraint.NewL2Ball(d, 1)
	stats := foldStats(data, d)
	sv := NewSolver(cons)
	opts := PrivateBatchOptions{Iterations: 60}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.SolveStats(loss.Squared{}, stats, quadParams(), 5, uint64(i), opts); err != nil {
			b.Fatal(err)
		}
	}
}
