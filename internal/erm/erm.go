// Package erm implements batch empirical risk minimization: an exact
// constrained solver used to compute the true minimizers θ̂_t that excess risk
// is measured against, a specialized incremental exact least-squares solver,
// and a differentially private batch ERM algorithm in the style of Bassily,
// Smith and Thakurta (noisy projected gradient descent with advanced
// composition) that serves as the black box of the paper's generic
// transformation (Mechanism PRIVINCERM, Section 3).
package erm

import (
	"errors"
	"math"

	"privreg/internal/codec"
	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/loss"
	"privreg/internal/optimize"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// ExactOptions configures the exact batch solver.
type ExactOptions struct {
	// Iterations is the number of projected gradient steps (default 2000).
	Iterations int
	// Tolerance stops early when consecutive iterates move less than this in
	// Euclidean norm (default 1e-10).
	Tolerance float64
	// Start optionally warm-starts the solver.
	Start vec.Vector
}

func (o *ExactOptions) fill() {
	if o.Iterations <= 0 {
		o.Iterations = 2000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
}

// Exact returns (an accurate approximation of) the constrained empirical risk
// minimizer argmin_{θ∈C} Σ_i ℓ(θ; z_i) by projected gradient descent with a
// diminishing step size. For smooth losses on the datasets used here the result
// is accurate to well below the excess-risk scales being measured; tests verify
// it against closed-form solutions where available.
func Exact(f loss.Function, c constraint.Set, data []loss.Point, opts ExactOptions) (vec.Vector, error) {
	if f == nil || c == nil {
		return nil, errors.New("erm: nil loss or constraint set")
	}
	opts.fill()
	n := len(data)
	if n == 0 {
		return c.Project(vec.NewVector(c.Dim())), nil
	}
	// Estimate a smoothness constant: for the losses in this library the
	// empirical gradient is Lipschitz with constant at most 2 Σ ‖x_i‖², so a
	// step of 1/(2 Σ ‖x_i‖²) is safe; fall back to a diminishing schedule when
	// that is degenerate.
	var sumSq float64
	for _, z := range data {
		nx := vec.Norm2(z.X)
		sumSq += nx * nx
	}
	base := 0.0
	if sumSq > 0 {
		base = 1 / (2 * sumSq)
	}
	theta := c.Project(vec.NewVector(c.Dim()))
	if opts.Start != nil {
		theta = c.Project(opts.Start)
	}
	best := theta.Clone()
	bestVal := loss.Empirical(f, theta, data)
	work := vec.NewVector(c.Dim())
	for k := 0; k < opts.Iterations; k++ {
		g := loss.EmpiricalGradient(f, theta, data)
		step := base
		if step == 0 {
			step = c.Diameter() / (math.Sqrt(float64(k+1)) * (1 + vec.Norm2(g)))
		}
		work.CopyFrom(theta)
		vec.Axpy(work, -step, g)
		next := c.Project(work)
		moved := vec.Dist2(next, theta)
		theta = next
		if v := loss.Empirical(f, theta, data); v < bestVal {
			bestVal = v
			best.CopyFrom(theta)
		}
		if moved < opts.Tolerance {
			break
		}
	}
	return best, nil
}

// LeastSquaresState maintains the sufficient statistics (XᵀX, Xᵀy) of a growing
// least-squares problem so that the exact constrained minimizer over the prefix
// can be computed at any timestep without revisiting the data. It is the
// non-private ground-truth oracle used by the excess-risk metrics and
// experiments.
type LeastSquaresState struct {
	d   int
	c   constraint.Set
	n   int
	ata *vec.Matrix
	aty vec.Vector
	yy  float64
	// sol memoizes the minimizer computed at observation count solN with
	// solIters iterations (solN < 0 = none): the statistics are the complete
	// solver input, so while no new points arrive Minimize returns the
	// previous solution instead of re-solving. ridge holds the reusable
	// factorization buffers of the normal-equation solve.
	sol      vec.Vector
	solN     int
	solIters int
	ridge    vec.RidgeWorkspace
}

// NewLeastSquaresState returns an empty state for d-dimensional covariates
// constrained to c (c may be nil for unconstrained least squares).
func NewLeastSquaresState(d int, c constraint.Set) *LeastSquaresState {
	return &LeastSquaresState{d: d, c: c, ata: vec.NewMatrix(d, d), aty: vec.NewVector(d), solN: -1}
}

// Observe folds the pair (x, y) into the sufficient statistics.
func (s *LeastSquaresState) Observe(x vec.Vector, y float64) {
	if len(x) != s.d {
		panic("erm: LeastSquaresState dimension mismatch")
	}
	s.n++
	s.ata.AddOuterInPlace(1, x)
	vec.Axpy(s.aty, y, x)
	s.yy += y * y
}

// Len returns the number of observed points.
func (s *LeastSquaresState) Len() int { return s.n }

// Risk returns the empirical squared-loss risk Σ (y_i - <x_i, θ>)² of θ on the
// observed prefix, computed from the sufficient statistics in O(d²).
func (s *LeastSquaresState) Risk(theta vec.Vector) float64 {
	q := s.ata.MulVec(theta)
	return s.yy - 2*vec.Dot(s.aty, theta) + vec.Dot(theta, q)
}

// Gradient returns the exact gradient 2(XᵀXθ - Xᵀy) of the prefix risk.
func (s *LeastSquaresState) Gradient(theta vec.Vector) vec.Vector {
	g := s.ata.MulVec(theta)
	g.SubInPlace(s.aty)
	g.Scale(2)
	return g
}

// Minimize returns the exact constrained least-squares minimizer over the
// observed prefix. The unconstrained solution is attempted first via the
// (ridge-stabilized) normal equations; when it is feasible it is optimal and is
// returned directly, otherwise projected gradient descent on the sufficient
// statistics is run with iters steps (default 2000 when iters <= 0). Repeat
// calls with no new observations return the memoized solution; the normal
// equations reuse the state's factorization buffers.
func (s *LeastSquaresState) Minimize(iters int) vec.Vector {
	if iters <= 0 {
		iters = 2000
	}
	if s.solN == s.n && s.solIters == iters && s.sol != nil {
		return s.sol.Clone()
	}
	theta := s.minimize(iters)
	s.sol = theta.Clone()
	s.solN = s.n
	s.solIters = iters
	return theta
}

// minimize is the memoization-free solver body behind Minimize.
func (s *LeastSquaresState) minimize(iters int) vec.Vector {
	if s.n == 0 {
		if s.c != nil {
			return s.c.Project(vec.NewVector(s.d))
		}
		return vec.NewVector(s.d)
	}
	eps := 1e-10 * (1 + s.ata.Trace())
	unconstrained, err := vec.SolveRidgeWith(&s.ridge, s.ata, s.aty, eps)
	if err == nil {
		if s.c == nil || s.c.Contains(unconstrained, 1e-9) {
			if s.c == nil {
				return unconstrained
			}
			return s.c.Project(unconstrained)
		}
	}
	c := s.c
	if c == nil {
		// Unconstrained but singular system: fall back to gradient descent within
		// a generous ball.
		c = constraint.NewL2Ball(s.d, 1e6)
	}
	// Smoothness constant of the prefix risk is 2·λmax(XᵀX).
	lmax := s.ata.PowerIterationSpectralNorm(50, nil)
	step := 0.0
	if lmax > 0 {
		step = 1 / (2 * lmax)
	}
	theta := c.Project(vec.NewVector(s.d))
	if err == nil {
		theta = c.Project(unconstrained)
	}
	best := theta.Clone()
	bestVal := s.Risk(theta)
	work := vec.NewVector(s.d)
	for k := 0; k < iters; k++ {
		g := s.Gradient(theta)
		eta := step
		if eta == 0 {
			eta = c.Diameter() / (math.Sqrt(float64(k+1)) * (1 + vec.Norm2(g)))
		}
		work.CopyFrom(theta)
		vec.Axpy(work, -eta, g)
		next := c.Project(work)
		moved := vec.Dist2(next, theta)
		theta = next
		if v := s.Risk(theta); v < bestVal {
			bestVal = v
			best.CopyFrom(theta)
		}
		if moved < 1e-12 {
			break
		}
	}
	return best
}

// lsStateVersion is the LeastSquaresState checkpoint format version.
const lsStateVersion = 1

// MarshalState serializes the sufficient statistics (XᵀX, Xᵀy, Σy², n) so an
// incremental least-squares stream can be checkpointed and resumed exactly.
func (s *LeastSquaresState) MarshalState() ([]byte, error) {
	var w codec.Writer
	w.Version(lsStateVersion)
	w.Int(s.d)
	w.Int(s.n)
	w.F64s(s.ata.Data())
	w.F64s(s.aty)
	w.F64(s.yy)
	return w.Bytes(), nil
}

// UnmarshalState restores sufficient statistics captured by MarshalState into
// a state constructed with the same dimension and constraint set.
func (s *LeastSquaresState) UnmarshalState(data []byte) error {
	r := codec.NewReader(data)
	r.Version(lsStateVersion)
	r.ExpectInt("dimension", s.d)
	n := r.Int()
	r.F64sInto(s.ata.Data())
	r.F64sInto(s.aty)
	yy := r.F64()
	if err := r.Finish(); err != nil {
		return err
	}
	if n < 0 {
		return errors.New("erm: corrupt checkpoint (negative observation count)")
	}
	s.n = n
	s.yy = yy
	// The solution memo is not part of the checkpoint; the next Minimize
	// recomputes (deterministically) from the restored statistics.
	s.sol = nil
	s.solN = -1
	return nil
}

// PrivateBatchOptions configures the private batch ERM solver.
type PrivateBatchOptions struct {
	// Iterations is the number of noisy gradient steps (default: 50 + √n,
	// capped at 400). Each iteration touches the whole dataset once.
	Iterations int
	// XBound and YBound are the data normalization bounds used to derive the
	// Lipschitz constant (defaults 1 and 1).
	XBound, YBound float64
	// Start optionally warm-starts the solver (it is projected onto C first).
	Start vec.Vector
	// Tolerance configures the keyed Solver's early stop: the solve ends when
	// consecutive iterates move less than this in Euclidean norm, returning
	// the converged final iterate. Zero selects the default (1e-10, the exact
	// solver's threshold — far below any real privacy-noise scale, so under
	// genuine budgets the full run executes and the iterate average is
	// returned); negative disables the stop. The stop decision is a
	// deterministic function of the solver's inputs, because the keyed noise
	// — and therefore the whole trajectory — is. PrivateBatch (the
	// sequential-source variant) ignores this field.
	Tolerance float64
}

func (o *PrivateBatchOptions) fill(n int) {
	if o.Iterations <= 0 {
		o.Iterations = 50 + int(math.Sqrt(float64(n)))
		if o.Iterations > 400 {
			o.Iterations = 400
		}
	}
	if o.XBound <= 0 {
		o.XBound = 1
	}
	if o.YBound <= 0 {
		o.YBound = 1
	}
}

// PrivateBatch runs an (ε, δ)-differentially private batch ERM algorithm on the
// dataset: noisy projected gradient descent where each of the R full-gradient
// evaluations is privatized with the Gaussian mechanism (per-datapoint gradient
// sensitivity 2L) and the per-iteration budget is set by advanced composition
// so the whole run satisfies the requested privacy. This is the same algorithmic
// template as Bassily et al. [2] and achieves the ≈ √d/(ε) · L‖C‖ excess-risk
// shape their Theorem 2.4 guarantees, which is all the generic transformation
// of Section 3 needs from its black box.
func PrivateBatch(f loss.Function, c constraint.Set, data []loss.Point, p dp.Params, src *randx.Source, opts PrivateBatchOptions) (vec.Vector, error) {
	if f == nil || c == nil {
		return nil, errors.New("erm: nil loss or constraint set")
	}
	if src == nil {
		return nil, errors.New("erm: nil randomness source")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(data)
	opts.fill(n)
	d := c.Dim()
	if n == 0 {
		return c.Project(vec.NewVector(d)), nil
	}
	lip := f.Lipschitz(c, opts.XBound, opts.YBound)
	perIter, err := dp.PerInvocationAdvanced(p, opts.Iterations)
	if err != nil {
		return nil, err
	}
	// Changing one datapoint changes the summed gradient by at most 2L in L2.
	mech, err := dp.NewGaussianMechanism(2*lip, perIter, src)
	if err != nil {
		return nil, err
	}
	sigma := mech.Sigma()
	// Gradient error scale: the noise vector has norm ≈ σ√d w.h.p.
	gradErr := sigma * math.Sqrt(float64(d))
	grad := func(theta vec.Vector) vec.Vector {
		g := loss.EmpiricalGradient(f, theta, data)
		mech.PerturbInPlace(g)
		return g
	}
	res, err := optimize.NoisyProjected(c, grad, optimize.Options{
		Iterations: opts.Iterations,
		Lipschitz:  float64(n) * lip,
		GradError:  gradErr,
		Start:      opts.Start,
		Average:    true,
	})
	if err != nil {
		return nil, err
	}
	return res.Theta, nil
}
