package sketch

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/vec"
)

// LiftOptions configures the lifting solver.
type LiftOptions struct {
	// InnerIterations is the projected-gradient budget of each feasibility
	// check (default 400).
	InnerIterations int
	// OuterIterations is the bisection budget on the Minkowski scale
	// (default 25).
	OuterIterations int
	// Tolerance is the residual ‖Φθ - ϑ‖ below which a scale is declared
	// feasible (default 1e-3·(1+‖ϑ‖)).
	Tolerance float64
	// MaxScale bounds the Minkowski scale searched (default 4: the target is
	// in ΦC whenever the mechanism is used as intended, so scales slightly
	// above 1 always suffice; the slack absorbs the ball relaxation).
	MaxScale float64
}

func (o *LiftOptions) fill(target vec.Vector) {
	if o.InnerIterations <= 0 {
		o.InnerIterations = 400
	}
	if o.OuterIterations <= 0 {
		o.OuterIterations = 25
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-3 * (1 + vec.Norm2(target))
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 4
	}
}

// lift solves the convex program of Step 9 of Algorithm 3,
//
//	minimize ‖θ‖_C   subject to   Φθ = ϑ,
//
// for any Transform Φ, and returns the recovered θ ∈ R^d. It works for any
// constraint.Set by bisecting on the Minkowski scale s: for each candidate s
// it checks feasibility of {θ ∈ sC : Φθ ≈ ϑ} by minimizing ‖Φθ - ϑ‖² over sC
// with FISTA (a smooth problem with constant step 1/‖Φ‖²). The smallest
// feasible scale yields the minimizer. If no scale up to MaxScale is feasible,
// the best-effort θ with the smallest residual is returned along with a nil
// error — callers project the result onto C, which keeps the output
// well-defined (and private, since this is post-processing).
func lift(tf Transform, c constraint.Set, target vec.Vector, opts LiftOptions) (vec.Vector, error) {
	if c == nil {
		return nil, errors.New("sketch: nil constraint set")
	}
	m, d := tf.OutputDim(), tf.InputDim()
	if len(target) != m {
		return nil, fmt.Errorf("sketch: lift target has dimension %d, want %d", len(target), m)
	}
	opts.fill(target)

	if vec.Norm2(target) == 0 {
		return vec.NewVector(d), nil
	}

	specUpper := tf.SpectralUpper()
	feasible := func(scale float64, start vec.Vector) (vec.Vector, float64) {
		// Minimize f(θ) = ‖Φθ - ϑ‖² over the scaled set with FISTA (accelerated
		// projected gradient); the gradient Lipschitz constant is 2‖Φ‖².
		set := c.Scale(scale)
		theta := set.Project(vec.NewVector(d))
		if start != nil {
			theta = set.Project(start)
		}
		step := 0.5
		if specUpper > 0 {
			step = 1 / (2 * specUpper * specUpper)
		}
		work := vec.NewVector(d)
		residual := vec.NewVector(m)
		grad := vec.NewVector(d)
		y := theta.Clone()
		prev := theta.Clone()
		tk := 1.0
		best := theta.Clone()
		bestRes := math.Inf(1)
		evalResidual := func(th vec.Vector) float64 {
			tf.ApplyTo(residual, th)
			residual.SubInPlace(target)
			return vec.Norm2(residual)
		}
		for k := 0; k < opts.InnerIterations; k++ {
			// Gradient step at the momentum point y.
			tf.ApplyTo(residual, y)
			residual.SubInPlace(target)
			tf.ApplyTransposeTo(grad, residual)
			work.CopyFrom(y)
			vec.Axpy(work, -2*step, grad)
			next := set.Project(work)
			if res := evalResidual(next); res < bestRes {
				bestRes = res
				best.CopyFrom(next)
				if res <= opts.Tolerance {
					break
				}
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			y = next.Clone()
			vec.Axpy(y, (tk-1)/tNext, vec.Sub(next, prev))
			prev = next
			tk = tNext
		}
		return best, bestRes
	}

	// First check whether the target is reachable within C itself (scale 1).
	bestTheta, bestRes := feasible(1, nil)
	if bestRes <= opts.Tolerance {
		// Bisect downward for the minimum-norm solution.
		lo, hi := 0.0, 1.0
		warm := bestTheta
		for i := 0; i < opts.OuterIterations; i++ {
			mid := (lo + hi) / 2
			if mid <= 0 {
				break
			}
			th, res := feasible(mid, warm)
			if res <= opts.Tolerance {
				hi = mid
				bestTheta, bestRes = th, res
				warm = th
			} else {
				lo = mid
			}
			if hi-lo <= 1e-4*hi {
				break
			}
		}
		return bestTheta, nil
	}
	// Otherwise grow the scale until feasible (handles the ball-relaxed
	// projected domain whose points may fall slightly outside ΦC).
	scale := 1.0
	warm := bestTheta
	for scale < opts.MaxScale {
		scale *= 1.25
		th, res := feasible(scale, warm)
		if res < bestRes {
			bestTheta, bestRes = th, res
			warm = th
		}
		if res <= opts.Tolerance {
			return th, nil
		}
	}
	return bestTheta, nil
}
