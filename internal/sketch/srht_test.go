package sketch

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

func TestNewSRHTValidation(t *testing.T) {
	src := randx.NewSource(1)
	if _, err := NewSRHT(0, 5, src); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := NewSRHT(3, 0, src); err == nil {
		t.Fatal("d=0 should error")
	}
	if _, err := NewSRHT(3, 5, nil); err == nil {
		t.Fatal("nil source should error")
	}
	if _, err := NewSRHT(9, 5, src); err == nil {
		t.Fatal("m above padded dimension should error")
	}
	s, err := NewSRHT(4, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	if s.InputDim() != 5 || s.OutputDim() != 4 {
		t.Fatalf("dims = %d, %d", s.InputDim(), s.OutputDim())
	}
	if s.PaddedDim() != 8 {
		t.Fatalf("padded dim = %d, want 8", s.PaddedDim())
	}
	if s.SpectralUpper() <= 0 {
		t.Fatal("spectral bound should be positive")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestFWHTIsScaledInvolution checks the defining property H(Hx) = n·x of the
// unnormalized Walsh–Hadamard transform.
func TestFWHTIsScaledInvolution(t *testing.T) {
	src := randx.NewSource(2)
	for _, n := range []int{1, 2, 8, 64} {
		x := vec.Vector(src.NormalVector(n, 1))
		w := x.Clone()
		fwht(w)
		fwht(w)
		for i := range x {
			if math.Abs(w[i]-float64(n)*x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: H(Hx)[%d] = %v, want %v", n, i, w[i], float64(n)*x[i])
			}
		}
	}
}

// TestSRHTAdjointIdentity checks <Φx, u> == <x, Φᵀu> — the property the
// lifting solver's gradient step relies on.
func TestSRHTAdjointIdentity(t *testing.T) {
	src := randx.NewSource(3)
	s, err := NewSRHT(7, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := vec.Vector(src.NormalVector(20, 1))
		u := vec.Vector(src.NormalVector(7, 1))
		if diff := math.Abs(vec.Dot(s.Apply(x), u) - vec.Dot(x, s.ApplyTranspose(u))); diff > 1e-10 {
			t.Fatalf("adjoint identity violated by %v", diff)
		}
	}
}

// TestSRHTLinearity checks Φ(ax + by) = aΦx + bΦy, i.e. that the scratch
// buffer reuse does not leak state between applies.
func TestSRHTLinearity(t *testing.T) {
	src := randx.NewSource(4)
	s, err := NewSRHT(8, 30, src)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Vector(src.NormalVector(30, 1))
	y := vec.Vector(src.NormalVector(30, 1))
	combo := vec.Add(vec.Scaled(x, 2.5), vec.Scaled(y, -1.25))
	want := vec.Add(vec.Scaled(s.Apply(x), 2.5), vec.Scaled(s.Apply(y), -1.25))
	if got := s.Apply(combo); !vec.Equal(got, want, 1e-10) {
		t.Fatalf("linearity violated: %v vs %v", got, want)
	}
}

// TestSRHTIsometryInExpectation checks E‖Φx‖² = ‖x‖² by averaging over many
// independent transforms of a fixed vector — the normalization shared with the
// dense Gaussian projector.
func TestSRHTIsometryInExpectation(t *testing.T) {
	src := randx.NewSource(5)
	d, m := 48, 16
	x := vec.Vector(src.NormalVector(d, 1))
	nx2 := vec.Dot(x, x)
	var sum float64
	const reps = 400
	for r := 0; r < reps; r++ {
		s, err := NewSRHT(m, d, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		px := s.Apply(x)
		sum += vec.Dot(px, px)
	}
	emp := sum / reps
	if math.Abs(emp-nx2)/nx2 > 0.15 {
		t.Fatalf("E‖Φx‖² = %v, want %v (±15%%)", emp, nx2)
	}
}

// TestJLNormPreservationSharedByBackends is the shared Johnson–Lindenstrauss
// property test of the Transform interface: at adequate m, both the dense
// Gaussian projector and the SRHT preserve the norms of sparse unit vectors to
// within (1±γ) with high probability. It runs the identical workload through
// both backends.
func TestJLNormPreservationSharedByBackends(t *testing.T) {
	const (
		d, k  = 256, 4
		m     = 64
		gamma = 0.5 // generous distortion bound; failures are exponentially rare
	)
	for _, backend := range []Backend{BackendDense, BackendSRHT} {
		src := randx.NewSource(11)
		tf, err := New(backend, m, d, src.Split())
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if tf.InputDim() != d || tf.OutputDim() != m {
			t.Fatalf("%v: dims %d→%d", backend, tf.InputDim(), tf.OutputDim())
		}
		for trial := 0; trial < 200; trial++ {
			x := vec.Vector(src.SparseVector(d, k))
			ratio := vec.Norm2(tf.Apply(x)) / vec.Norm2(x)
			if ratio < 1-gamma || ratio > 1+gamma {
				t.Fatalf("%v: norm ratio %v outside (1±%v) on trial %d", backend, ratio, gamma, trial)
			}
		}
		// The rescaled apply must make the preservation exact (footnote 15).
		for trial := 0; trial < 20; trial++ {
			x := vec.Vector(src.SparseVector(d, k))
			if diff := math.Abs(vec.Norm2(tf.ScaledApply(x)) - vec.Norm2(x)); diff > 1e-9 {
				t.Fatalf("%v: ScaledApply norm off by %v", backend, diff)
			}
		}
	}
}

// TestBackendSelection pins down the constructor dispatch, including the
// automatic dimension-based choice.
func TestBackendSelection(t *testing.T) {
	src := randx.NewSource(6)
	tf, err := New(BackendDense, 4, 16, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tf.(*Projector); !ok {
		t.Fatalf("BackendDense built %T", tf)
	}
	tf, err = New(BackendSRHT, 4, 16, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tf.(*SRHT); !ok {
		t.Fatalf("BackendSRHT built %T", tf)
	}
	tf, err = New(BackendAuto, 4, 16, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tf.(*Projector); !ok {
		t.Fatalf("BackendAuto at d=16 built %T, want dense", tf)
	}
	tf, err = New(BackendAuto, 4, srhtCrossover, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tf.(*SRHT); !ok {
		t.Fatalf("BackendAuto at d=%d built %T, want SRHT", srhtCrossover, tf)
	}
	if _, err := New(Backend(99), 4, 16, src.Split()); err == nil {
		t.Fatal("unknown backend should error")
	}
}

// TestSRHTApplyZeroAlloc asserts the steady-state allocation contract of the
// fast path: ApplyTo, ApplyTransposeTo and ScaledApplyTo must not touch the
// heap.
func TestSRHTApplyZeroAlloc(t *testing.T) {
	src := randx.NewSource(7)
	s, err := NewSRHT(64, 512, src)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Vector(src.NormalVector(512, 1))
	dst := vec.NewVector(64)
	back := vec.NewVector(512)
	if allocs := testing.AllocsPerRun(100, func() { s.ApplyTo(dst, x) }); allocs != 0 {
		t.Fatalf("SRHT.ApplyTo allocates %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.ScaledApplyTo(dst, x) }); allocs != 0 {
		t.Fatalf("SRHT.ScaledApplyTo allocates %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.ApplyTransposeTo(back, dst) }); allocs != 0 {
		t.Fatalf("SRHT.ApplyTransposeTo allocates %v times per run", allocs)
	}
}

// TestSRHTLiftRecoversProjectedPoint mirrors the dense lifting test: the
// Step-9 recovery program must work unchanged on the fast backend.
func TestSRHTLiftRecoversProjectedPoint(t *testing.T) {
	d := 96
	cons := constraint.NewL1Ball(d, 1)
	src := randx.NewSource(8)
	theta := cons.Project(vec.Vector(src.SparseVector(d, 3)))
	s, err := NewSRHT(48, d, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	target := s.Apply(theta)
	lifted, err := s.Lift(cons, target, LiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(lifted, 1e-3) {
		t.Fatalf("lifted point outside C: ‖lifted‖₁ = %v", vec.Norm1(lifted))
	}
	if res := vec.Dist2(s.Apply(lifted), target); res > 1e-2*(1+vec.Norm2(target)) {
		t.Fatalf("lift residual %v too large", res)
	}
}

// TestSRHTImageSetVariants checks the projected-domain construction on the
// fast backend.
func TestSRHTImageSetVariants(t *testing.T) {
	src := randx.NewSource(9)
	d, m := 16, 5
	s, err := NewSRHT(m, d, src)
	if err != nil {
		t.Fatal(err)
	}
	img := s.ImageSet(constraint.NewL1Ball(d, 1), 0.2)
	poly, ok := img.(*constraint.Polytope)
	if !ok {
		t.Fatalf("L1 image should be a polytope, got %T", img)
	}
	if poly.NumVertices() != 2*d || poly.Dim() != m {
		t.Fatalf("polytope image: %d vertices in dim %d", poly.NumVertices(), poly.Dim())
	}
	img2 := s.ImageSet(constraint.NewL2Ball(d, 1), 0.2)
	if _, ok := img2.(*constraint.L2Ball); !ok {
		t.Fatalf("L2 image should be a ball relaxation, got %T", img2)
	}
}
