package sketch

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// SRHT is a subsampled randomized Hadamard transform Φ: R^d → R^m,
//
//	Φ = √(p/m) · R · (H/√p) · D,
//
// where p is d padded to the next power of two, D is a diagonal matrix of
// i.i.d. Rademacher signs, H/√p is the orthonormal Walsh–Hadamard matrix, and
// R selects m of the p rotated coordinates uniformly without replacement. The
// overall scaling makes E‖Φx‖² = ‖x‖², the same normalization as the dense
// Gaussian projector, and the sign-flipped Hadamard rotation spreads any fixed
// vector's energy evenly across coordinates so the subsample preserves norms
// to within (1±γ) with high probability — the JL property, at O(d log d) per
// apply instead of the dense projector's O(m·d).
//
// The *To methods share an internal scratch buffer of length p and must not be
// invoked concurrently on the same instance.
type SRHT struct {
	m, d, dpad int
	// signs holds the d Rademacher entries of D (the padded coordinates are
	// always zero, so their signs are never needed).
	signs []float64
	// rows holds the m sampled coordinates, sorted for cache-friendly gathers.
	rows []int
	// scale is √(p/m)/√p = 1/√m, folded into the gather/scatter loops.
	scale float64
	// specUpper bounds ‖Φ‖: R·(H/√p)·D is a row-submatrix of an orthogonal
	// matrix, so ‖Φ‖ ≤ √(p/m) exactly.
	specUpper float64
	scratch   vec.Vector
}

// NewSRHT samples an SRHT mapping R^d → R^m: d Rademacher signs and a uniform
// m-subset of the p padded coordinates, consuming randomness from src.
func NewSRHT(m, d int, src *randx.Source) (*SRHT, error) {
	if m <= 0 || d <= 0 {
		return nil, fmt.Errorf("sketch: projection dimensions must be positive, got m=%d d=%d", m, d)
	}
	if src == nil {
		return nil, errors.New("sketch: nil randomness source")
	}
	dpad := nextPow2(d)
	if m > dpad {
		return nil, fmt.Errorf("sketch: SRHT output dimension m=%d exceeds padded input dimension %d", m, dpad)
	}
	signs := make([]float64, d)
	for i := range signs {
		signs[i] = src.Rademacher()
	}
	rows := append([]int(nil), src.Perm(dpad)[:m]...)
	sort.Ints(rows)
	return &SRHT{
		m:         m,
		d:         d,
		dpad:      dpad,
		signs:     signs,
		rows:      rows,
		scale:     1 / math.Sqrt(float64(m)),
		specUpper: math.Sqrt(float64(dpad) / float64(m)),
		scratch:   vec.NewVector(dpad),
	}, nil
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fwht applies the unnormalized fast Walsh–Hadamard transform in place.
// len(a) must be a power of two; the cost is len(a)·log₂len(a) additions.
func fwht(a []float64) {
	n := len(a)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j] = x + y
				a[j+h] = x - y
			}
		}
	}
}

// InputDim returns the ambient dimension d.
func (s *SRHT) InputDim() int { return s.d }

// OutputDim returns the projected dimension m.
func (s *SRHT) OutputDim() int { return s.m }

// PaddedDim returns the power-of-two dimension p the transform operates in.
func (s *SRHT) PaddedDim() int { return s.dpad }

// SpectralUpper returns the exact bound √(p/m) on ‖Φ‖.
func (s *SRHT) SpectralUpper() float64 { return s.specUpper }

// Apply returns Φx as a new vector.
func (s *SRHT) Apply(x vec.Vector) vec.Vector {
	out := vec.NewVector(s.m)
	s.ApplyTo(out, x)
	return out
}

// ApplyTo computes dst = Φx in O(p log p) time with no heap allocation.
func (s *SRHT) ApplyTo(dst, x vec.Vector) {
	if len(x) != s.d {
		panic(fmt.Sprintf("sketch: SRHT apply dimension %d, want %d", len(x), s.d))
	}
	if len(dst) != s.m {
		panic(fmt.Sprintf("sketch: SRHT apply destination dimension %d, want %d", len(dst), s.m))
	}
	w := s.scratch
	for i, sg := range s.signs {
		w[i] = sg * x[i]
	}
	for i := s.d; i < s.dpad; i++ {
		w[i] = 0
	}
	fwht(w)
	for j, r := range s.rows {
		dst[j] = s.scale * w[r]
	}
}

// ApplyTranspose returns Φᵀu as a new vector.
func (s *SRHT) ApplyTranspose(u vec.Vector) vec.Vector {
	out := vec.NewVector(s.d)
	s.ApplyTransposeTo(out, u)
	return out
}

// ApplyTransposeTo computes dst = Φᵀu = D Hᵀ Rᵀ u / √m (H is symmetric) with
// no heap allocation.
func (s *SRHT) ApplyTransposeTo(dst, u vec.Vector) {
	if len(u) != s.m {
		panic(fmt.Sprintf("sketch: SRHT transpose apply dimension %d, want %d", len(u), s.m))
	}
	if len(dst) != s.d {
		panic(fmt.Sprintf("sketch: SRHT transpose destination dimension %d, want %d", len(dst), s.d))
	}
	w := s.scratch
	w.Zero()
	for j, r := range s.rows {
		w[r] = u[j]
	}
	fwht(w)
	for i, sg := range s.signs {
		dst[i] = s.scale * sg * w[i]
	}
}

// ScaledApply returns Φx̃ with the footnote-15 rescaling (‖Φx̃‖ = ‖x‖).
func (s *SRHT) ScaledApply(x vec.Vector) vec.Vector {
	out := vec.NewVector(s.m)
	s.ScaledApplyTo(out, x)
	return out
}

// ScaledApplyTo is the allocation-free form of ScaledApply.
func (s *SRHT) ScaledApplyTo(dst, x vec.Vector) {
	scaledApplyTo(s, dst, x)
}

// ImageSet returns a constraint set in R^m containing ΦC (see imageSet).
func (s *SRHT) ImageSet(c constraint.Set, gamma float64) constraint.Set {
	return imageSet(s, c, gamma)
}

// Lift solves the Step-9 recovery program for this transform (see lift).
func (s *SRHT) Lift(c constraint.Set, target vec.Vector, opts LiftOptions) (vec.Vector, error) {
	return lift(s, c, target, opts)
}

// Interface conformance checks.
var (
	_ Transform = (*Projector)(nil)
	_ Transform = (*SRHT)(nil)
)
