// Package sketch implements the dimensionality-reduction machinery of
// Section 5 of the paper: Johnson–Lindenstrauss projections Φ ∈ R^{m×d},
// projected images of constraint sets, and the lifting procedure of
// Theorem 5.3 that recovers a point of the original constraint set from its
// projection by Minkowski-functional minimization (Step 9 of Algorithm 3).
//
// Two interchangeable backends implement the shared Transform interface:
//
//   - Projector — the paper's dense Gaussian projection with i.i.d. N(0, 1/m)
//     entries (Theorem 5.1, Gordon), O(m·d) per apply;
//   - SRHT — the subsampled randomized Hadamard transform, O(d log d) per
//     apply with the same norm-preservation guarantee up to log factors.
//
// Use New with a Backend to pick one; the mechanisms in internal/core expose
// the choice through their options.
package sketch

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// Projector is a fixed Gaussian random projection Φ: R^d → R^m.
type Projector struct {
	m, d int
	phi  *vec.Matrix
	// specUpper is a cached upper bound on ‖Φ‖, used for optimizer step sizes.
	specUpper float64
}

// NewProjector samples an m×d projection matrix with i.i.d. N(0, 1/m) entries,
// the distribution used by Theorem 5.1 (Gordon) and Algorithm 3.
func NewProjector(m, d int, src *randx.Source) (*Projector, error) {
	if m <= 0 || d <= 0 {
		return nil, fmt.Errorf("sketch: projection dimensions must be positive, got m=%d d=%d", m, d)
	}
	if src == nil {
		return nil, errors.New("sketch: nil randomness source")
	}
	phi := vec.NewMatrix(m, d)
	sigma := 1 / math.Sqrt(float64(m))
	src.FillNormal(phi.Data(), 0, sigma)
	p := &Projector{m: m, d: d, phi: phi}
	p.specUpper = phi.PowerIterationSpectralNorm(30, nil) * 1.05
	if p.specUpper == 0 {
		p.specUpper = phi.SpectralNormUpperBound()
	}
	return p, nil
}

// InputDim returns the ambient dimension d.
func (p *Projector) InputDim() int { return p.d }

// OutputDim returns the projected dimension m.
func (p *Projector) OutputDim() int { return p.m }

// Matrix returns the underlying projection matrix (read-only).
func (p *Projector) Matrix() *vec.Matrix { return p.phi }

// Apply returns Φx.
func (p *Projector) Apply(x vec.Vector) vec.Vector {
	return p.phi.MulVec(x)
}

// ApplyTo computes dst = Φx without allocating.
func (p *Projector) ApplyTo(dst, x vec.Vector) {
	p.phi.MulVecTo(dst, x)
}

// ApplyTranspose returns Φᵀu.
func (p *Projector) ApplyTranspose(u vec.Vector) vec.Vector {
	return p.phi.MulVecT(u)
}

// ApplyTransposeTo computes dst = Φᵀu without allocating.
func (p *Projector) ApplyTransposeTo(dst, u vec.Vector) {
	p.phi.MulVecTTo(dst, u)
}

// SpectralUpper returns a cached upper bound on the spectral norm ‖Φ‖.
func (p *Projector) SpectralUpper() float64 { return p.specUpper }

// ScaledApply returns Φx̃ where x̃ = (‖x‖/‖Φx‖)·x is the paper's rescaled
// covariate (footnote 15 of the paper); by construction ‖Φx̃‖ = ‖x‖. For x = 0
// the zero vector is returned.
func (p *Projector) ScaledApply(x vec.Vector) vec.Vector {
	out := vec.NewVector(p.m)
	p.ScaledApplyTo(out, x)
	return out
}

// ScaledApplyTo is the allocation-free form of ScaledApply.
func (p *Projector) ScaledApplyTo(dst, x vec.Vector) {
	scaledApplyTo(p, dst, x)
}

// ImageSet returns a constraint set in the projected space R^m that is used as
// the optimization domain of Algorithm 3 (the set ΦC). See imageSet for the
// exact-versus-relaxed cases; the relaxation is recorded in DESIGN.md as an
// engineering substitution.
func (p *Projector) ImageSet(c constraint.Set, gamma float64) constraint.Set {
	return imageSet(p, c, gamma)
}

// Lift solves the convex program of Step 9 of Algorithm 3,
//
//	minimize ‖θ‖_C   subject to   Φθ = ϑ,
//
// and returns the recovered θ ∈ R^d (see lift for the solver).
func (p *Projector) Lift(c constraint.Set, target vec.Vector, opts LiftOptions) (vec.Vector, error) {
	return lift(p, c, target, opts)
}
