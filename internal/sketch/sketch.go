// Package sketch implements the dimensionality-reduction machinery of
// Section 5 of the paper: Gaussian Johnson–Lindenstrauss projections
// Φ ∈ R^{m×d} with i.i.d. N(0, 1/m) entries, projected images of constraint
// sets, and the lifting procedure of Theorem 5.3 that recovers a point of the
// original constraint set from its projection by Minkowski-functional
// minimization (Step 9 of Algorithm 3).
package sketch

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// Projector is a fixed Gaussian random projection Φ: R^d → R^m.
type Projector struct {
	m, d int
	phi  *vec.Matrix
	// specUpper is a cached upper bound on ‖Φ‖, used for optimizer step sizes.
	specUpper float64
}

// NewProjector samples an m×d projection matrix with i.i.d. N(0, 1/m) entries,
// the distribution used by Theorem 5.1 (Gordon) and Algorithm 3.
func NewProjector(m, d int, src *randx.Source) (*Projector, error) {
	if m <= 0 || d <= 0 {
		return nil, fmt.Errorf("sketch: projection dimensions must be positive, got m=%d d=%d", m, d)
	}
	if src == nil {
		return nil, errors.New("sketch: nil randomness source")
	}
	phi := vec.NewMatrix(m, d)
	sigma := 1 / math.Sqrt(float64(m))
	data := phi.Data()
	for i := range data {
		data[i] = src.Normal(0, sigma)
	}
	p := &Projector{m: m, d: d, phi: phi}
	p.specUpper = phi.PowerIterationSpectralNorm(30, nil) * 1.05
	if p.specUpper == 0 {
		p.specUpper = phi.SpectralNormUpperBound()
	}
	return p, nil
}

// InputDim returns the ambient dimension d.
func (p *Projector) InputDim() int { return p.d }

// OutputDim returns the projected dimension m.
func (p *Projector) OutputDim() int { return p.m }

// Matrix returns the underlying projection matrix (read-only).
func (p *Projector) Matrix() *vec.Matrix { return p.phi }

// Apply returns Φx.
func (p *Projector) Apply(x vec.Vector) vec.Vector {
	return p.phi.MulVec(x)
}

// ApplyTranspose returns Φᵀu.
func (p *Projector) ApplyTranspose(u vec.Vector) vec.Vector {
	return p.phi.MulVecT(u)
}

// SpectralUpper returns a cached upper bound on the spectral norm ‖Φ‖.
func (p *Projector) SpectralUpper() float64 { return p.specUpper }

// ScaledApply returns Φx̃ where x̃ = (‖x‖/‖Φx‖)·x is the paper's rescaled
// covariate (footnote 15 of the paper); by construction ‖Φx̃‖ = ‖x‖. For x = 0
// the zero vector is returned.
func (p *Projector) ScaledApply(x vec.Vector) vec.Vector {
	px := p.Apply(x)
	nx := vec.Norm2(x)
	npx := vec.Norm2(px)
	if nx == 0 || npx == 0 {
		return vec.NewVector(p.m)
	}
	px.Scale(nx / npx)
	return px
}

// ImageSet returns a constraint set in the projected space R^m that is used as
// the optimization domain of Algorithm 3 (the set ΦC).
//
// For vertex-described sets (L1 balls and polytopes) the image is itself a
// polytope — the convex hull of the projected vertices — and is returned
// exactly. For other sets the exact image is expensive to project onto, so a
// Euclidean-ball relaxation of radius (1+γ)·‖C‖ is returned; by Gordon's
// theorem (Theorem 5.1) ΦC is contained in this ball with high probability, the
// diameter bound ‖ΦC‖ = O(‖C‖) used in the utility analysis (Lemma 5.4) is
// preserved, and a final projection onto C after lifting restores feasibility.
// The relaxation is recorded in DESIGN.md as an engineering substitution.
func (p *Projector) ImageSet(c constraint.Set, gamma float64) constraint.Set {
	if gamma < 0 {
		gamma = 0
	}
	switch s := c.(type) {
	case *constraint.L1Ball:
		cross := constraint.CrossPolytope(s.Dim(), s.Radius())
		return p.projectPolytope(cross)
	case *constraint.Polytope:
		return p.projectPolytope(s)
	default:
		return constraint.NewL2Ball(p.m, (1+gamma)*c.Diameter())
	}
}

func (p *Projector) projectPolytope(poly *constraint.Polytope) constraint.Set {
	vertices := poly.Vertices()
	projected := make([]vec.Vector, len(vertices))
	for i, v := range vertices {
		projected[i] = p.Apply(v)
	}
	return constraint.NewPolytope(projected)
}

// LiftOptions configures the lifting solver.
type LiftOptions struct {
	// InnerIterations is the projected-gradient budget of each feasibility
	// check (default 200).
	InnerIterations int
	// OuterIterations is the bisection budget on the Minkowski scale
	// (default 40).
	OuterIterations int
	// Tolerance is the residual ‖Φθ - ϑ‖ below which a scale is declared
	// feasible (default 1e-6·(1+‖ϑ‖)).
	Tolerance float64
	// MaxScale bounds the Minkowski scale searched (default 4: the target is
	// in ΦC whenever the mechanism is used as intended, so scales slightly
	// above 1 always suffice; the slack absorbs the ball relaxation).
	MaxScale float64
}

func (o *LiftOptions) fill(target vec.Vector) {
	if o.InnerIterations <= 0 {
		o.InnerIterations = 400
	}
	if o.OuterIterations <= 0 {
		o.OuterIterations = 25
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-3 * (1 + vec.Norm2(target))
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 4
	}
}

// Lift solves the convex program of Step 9 of Algorithm 3,
//
//	minimize ‖θ‖_C   subject to   Φθ = ϑ,
//
// and returns the recovered θ ∈ R^d. It works for any constraint.Set by
// bisecting on the Minkowski scale s: for each candidate s it checks
// feasibility of {θ ∈ sC : Φθ ≈ ϑ} by minimizing ‖Φθ - ϑ‖² over sC with
// projected gradient descent (a smooth problem with constant step 1/‖Φ‖²).
// The smallest feasible scale yields the minimizer. If no scale up to
// MaxScale·(1) is feasible, the best effort θ with the smallest residual is
// returned along with a nil error — callers project the result onto C, which
// keeps the output well-defined (and private, since this is post-processing).
func (p *Projector) Lift(c constraint.Set, target vec.Vector, opts LiftOptions) (vec.Vector, error) {
	if c == nil {
		return nil, errors.New("sketch: nil constraint set")
	}
	if len(target) != p.m {
		return nil, fmt.Errorf("sketch: lift target has dimension %d, want %d", len(target), p.m)
	}
	opts.fill(target)

	if vec.Norm2(target) == 0 {
		return vec.NewVector(p.d), nil
	}

	feasible := func(scale float64, start vec.Vector) (vec.Vector, float64) {
		// Minimize f(θ) = ‖Φθ - ϑ‖² over the scaled set with FISTA (accelerated
		// projected gradient); the gradient Lipschitz constant is 2‖Φ‖².
		set := c.Scale(scale)
		theta := set.Project(vec.NewVector(p.d))
		if start != nil {
			theta = set.Project(start)
		}
		step := 0.5
		if p.specUpper > 0 {
			step = 1 / (2 * p.specUpper * p.specUpper)
		}
		work := vec.NewVector(p.d)
		residual := vec.NewVector(p.m)
		y := theta.Clone()
		prev := theta.Clone()
		tk := 1.0
		best := theta.Clone()
		bestRes := math.Inf(1)
		evalResidual := func(th vec.Vector) float64 {
			p.phi.MulVecTo(residual, th)
			residual.SubInPlace(target)
			return vec.Norm2(residual)
		}
		for k := 0; k < opts.InnerIterations; k++ {
			// Gradient step at the momentum point y.
			p.phi.MulVecTo(residual, y)
			residual.SubInPlace(target)
			grad := p.phi.MulVecT(residual)
			work.CopyFrom(y)
			vec.Axpy(work, -2*step, grad)
			next := set.Project(work)
			if res := evalResidual(next); res < bestRes {
				bestRes = res
				best.CopyFrom(next)
				if res <= opts.Tolerance {
					break
				}
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			y = next.Clone()
			vec.Axpy(y, (tk-1)/tNext, vec.Sub(next, prev))
			prev = next
			tk = tNext
		}
		return best, bestRes
	}

	// First check whether the target is reachable within C itself (scale 1).
	bestTheta, bestRes := feasible(1, nil)
	if bestRes <= opts.Tolerance {
		// Bisect downward for the minimum-norm solution.
		lo, hi := 0.0, 1.0
		warm := bestTheta
		for i := 0; i < opts.OuterIterations; i++ {
			mid := (lo + hi) / 2
			if mid <= 0 {
				break
			}
			th, res := feasible(mid, warm)
			if res <= opts.Tolerance {
				hi = mid
				bestTheta, bestRes = th, res
				warm = th
			} else {
				lo = mid
			}
			if hi-lo <= 1e-4*hi {
				break
			}
		}
		return bestTheta, nil
	}
	// Otherwise grow the scale until feasible (handles the ball-relaxed
	// projected domain whose points may fall slightly outside ΦC).
	scale := 1.0
	warm := bestTheta
	for scale < opts.MaxScale {
		scale *= 1.25
		th, res := feasible(scale, warm)
		if res < bestRes {
			bestTheta, bestRes = th, res
			warm = th
		}
		if res <= opts.Tolerance {
			return th, nil
		}
	}
	return bestTheta, nil
}
