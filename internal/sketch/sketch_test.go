package sketch

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

func TestNewProjectorValidation(t *testing.T) {
	src := randx.NewSource(1)
	if _, err := NewProjector(0, 5, src); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := NewProjector(3, 0, src); err == nil {
		t.Fatal("d=0 should error")
	}
	if _, err := NewProjector(3, 5, nil); err == nil {
		t.Fatal("nil source should error")
	}
	p, err := NewProjector(3, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.InputDim() != 5 || p.OutputDim() != 3 {
		t.Fatalf("dims = %d, %d", p.InputDim(), p.OutputDim())
	}
	if p.Matrix().Rows() != 3 || p.Matrix().Cols() != 5 {
		t.Fatal("matrix shape wrong")
	}
	if p.SpectralUpper() <= 0 {
		t.Fatal("spectral bound should be positive")
	}
}

func TestProjectorEntryDistribution(t *testing.T) {
	// Entries are N(0, 1/m): the empirical variance of the entries must match.
	src := randx.NewSource(2)
	m, d := 40, 200
	p, err := NewProjector(m, d, src)
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	for _, v := range p.Matrix().Data() {
		ss += v * v
	}
	emp := ss / float64(m*d)
	if math.Abs(emp-1.0/float64(m))/(1.0/float64(m)) > 0.1 {
		t.Fatalf("entry variance %v, want %v", emp, 1.0/float64(m))
	}
}

func TestApplyAndTranspose(t *testing.T) {
	src := randx.NewSource(3)
	p, err := NewProjector(2, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Vector{1, -1, 0.5}
	px := p.Apply(x)
	if len(px) != 2 {
		t.Fatalf("Apply output dim = %d", len(px))
	}
	u := vec.Vector{0.3, 0.7}
	ptu := p.ApplyTranspose(u)
	if len(ptu) != 3 {
		t.Fatalf("ApplyTranspose output dim = %d", len(ptu))
	}
	// <Φx, u> == <x, Φᵀu>.
	if math.Abs(vec.Dot(px, u)-vec.Dot(x, ptu)) > 1e-12 {
		t.Fatal("adjoint identity violated")
	}
}

func TestScaledApplyPreservesNorm(t *testing.T) {
	src := randx.NewSource(4)
	p, err := NewProjector(8, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := vec.Vector(src.SparseVector(64, 3))
		x.Scale(0.5 + 0.5*src.Float64())
		px := p.ScaledApply(x)
		if math.Abs(vec.Norm2(px)-vec.Norm2(x)) > 1e-9 {
			t.Fatalf("‖Φx̃‖ = %v, want ‖x‖ = %v", vec.Norm2(px), vec.Norm2(x))
		}
	}
	// Zero vector maps to zero.
	if vec.Norm2(p.ScaledApply(vec.NewVector(64))) != 0 {
		t.Fatal("zero covariate should map to zero")
	}
}

func TestApproximateNormPreservationAtAdequateM(t *testing.T) {
	// With m well above w(S)², unscaled projection should preserve norms of
	// sparse vectors to within ~30%.
	src := randx.NewSource(5)
	d, k := 128, 3
	domain := constraint.NewSparseSet(d, k, 1)
	w := domain.GaussianWidth()
	m := int(4 * w * w)
	p, err := NewProjector(m, d, src)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x := vec.Vector(src.SparseVector(d, k))
		ratio := vec.Norm2(p.Apply(x)) / vec.Norm2(x)
		if ratio < 0.6 || ratio > 1.4 {
			t.Fatalf("norm ratio %v outside [0.6, 1.4] at m=%d", ratio, m)
		}
	}
}

func TestImageSetVariants(t *testing.T) {
	src := randx.NewSource(6)
	d, m := 16, 5
	p, err := NewProjector(m, d, src)
	if err != nil {
		t.Fatal(err)
	}
	// L1 ball → polytope image with 2d vertices.
	img := p.ImageSet(constraint.NewL1Ball(d, 1), 0.2)
	poly, ok := img.(*constraint.Polytope)
	if !ok {
		t.Fatalf("L1 image should be a polytope, got %T", img)
	}
	if poly.NumVertices() != 2*d {
		t.Fatalf("polytope image has %d vertices, want %d", poly.NumVertices(), 2*d)
	}
	if poly.Dim() != m {
		t.Fatalf("polytope image dimension = %d", poly.Dim())
	}
	// Every projected point of C must lie in the image set.
	l1 := constraint.NewL1Ball(d, 1)
	for trial := 0; trial < 20; trial++ {
		theta := l1.Project(vec.Vector(src.NormalVector(d, 1)))
		if !img.Contains(p.Apply(theta), 1e-2) {
			t.Fatalf("Φθ not contained in the exact image set")
		}
	}
	// L2 ball → ball relaxation.
	img2 := p.ImageSet(constraint.NewL2Ball(d, 1), 0.2)
	if _, ok := img2.(*constraint.L2Ball); !ok {
		t.Fatalf("L2 image should be a ball relaxation, got %T", img2)
	}
	if math.Abs(img2.Diameter()-1.2) > 1e-12 {
		t.Fatalf("relaxed ball radius = %v, want 1.2", img2.Diameter())
	}
}

func TestLiftRecoversProjectedPoint(t *testing.T) {
	// Lifting Φθ for θ ∈ C must recover a feasible point whose projection matches
	// the target, with error shrinking as m grows (Theorem 5.3).
	d := 96
	cons := constraint.NewL1Ball(d, 1)
	src := randx.NewSource(7)
	theta := cons.Project(vec.Vector(src.SparseVector(d, 3)))
	errAt := func(m int) float64 {
		p, err := NewProjector(m, d, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		target := p.Apply(theta)
		lifted, err := p.Lift(cons, target, LiftOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cons.Contains(lifted, 1e-3) {
			t.Fatalf("lifted point outside C (m=%d): ‖lifted‖₁=%v", m, vec.Norm1(lifted))
		}
		// The lifted point must reproduce the projection target closely.
		if res := vec.Dist2(p.Apply(lifted), target); res > 1e-2*(1+vec.Norm2(target)) {
			t.Fatalf("lift residual %v too large at m=%d", res, m)
		}
		return vec.Dist2(lifted, theta)
	}
	e8 := errAt(8)
	e48 := errAt(48)
	if e48 > e8+1e-9 && e48 > 0.3 {
		t.Fatalf("lift error should shrink with m: m=8 → %v, m=48 → %v", e8, e48)
	}
}

func TestLiftZeroTargetAndValidation(t *testing.T) {
	d := 10
	cons := constraint.NewL1Ball(d, 1)
	src := randx.NewSource(8)
	p, err := NewProjector(4, d, src)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := p.Lift(cons, vec.NewVector(4), LiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(lifted) != 0 {
		t.Fatalf("lift of zero target = %v", lifted)
	}
	if _, err := p.Lift(nil, vec.NewVector(4), LiftOptions{}); err == nil {
		t.Fatal("nil constraint should error")
	}
	if _, err := p.Lift(cons, vec.NewVector(3), LiftOptions{}); err == nil {
		t.Fatal("wrong-dimension target should error")
	}
}

func TestLiftPrefersSmallMinkowskiNorm(t *testing.T) {
	// When the target is the projection of a point deep inside C, the lift should
	// return a point with Minkowski norm close to (not much larger than) the
	// original's.
	d := 48
	cons := constraint.NewL1Ball(d, 1)
	src := randx.NewSource(9)
	theta := vec.NewVector(d)
	theta[3] = 0.4 // ‖θ‖_C = 0.4
	p, err := NewProjector(24, d, src)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := p.Lift(cons, p.Apply(theta), LiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cons.MinkowskiNorm(lifted); got > 0.8 {
		t.Fatalf("lifted Minkowski norm %v much larger than original 0.4", got)
	}
}
