package sketch

import (
	"fmt"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// Transform is a fixed linear dimensionality-reduction map Φ: R^d → R^m with
// the Johnson–Lindenstrauss property: for any fixed x, ‖Φx‖ ≈ ‖x‖ with high
// probability. Both the dense Gaussian Projector and the fast SRHT implement
// it, so every consumer — the projected mechanisms, the lifting solver, the
// experiments — is backend-agnostic.
//
// The *To variants write into caller-provided buffers and perform no heap
// allocation; they are the per-timestep hot path. A Transform's *To methods
// may share internal scratch and must not be called concurrently on the same
// instance (distinct instances are independent).
type Transform interface {
	// InputDim returns the ambient dimension d.
	InputDim() int
	// OutputDim returns the projected dimension m.
	OutputDim() int
	// Apply returns Φx as a new vector.
	Apply(x vec.Vector) vec.Vector
	// ApplyTo computes dst = Φx without allocating. dst must have length m.
	ApplyTo(dst, x vec.Vector)
	// ApplyTranspose returns Φᵀu as a new vector.
	ApplyTranspose(u vec.Vector) vec.Vector
	// ApplyTransposeTo computes dst = Φᵀu without allocating. dst must have
	// length d.
	ApplyTransposeTo(dst, u vec.Vector)
	// ScaledApply returns Φx̃ where x̃ = (‖x‖/‖Φx‖)·x is the paper's rescaled
	// covariate (footnote 15); by construction ‖Φx̃‖ = ‖x‖.
	ScaledApply(x vec.Vector) vec.Vector
	// ScaledApplyTo is the allocation-free form of ScaledApply.
	ScaledApplyTo(dst, x vec.Vector)
	// SpectralUpper returns a cached upper bound on the spectral norm ‖Φ‖, used
	// for optimizer step sizes.
	SpectralUpper() float64
	// ImageSet returns a constraint set in R^m containing the image ΦC, used as
	// the optimization domain of Algorithm 3.
	ImageSet(c constraint.Set, gamma float64) constraint.Set
	// Lift solves the Step-9 convex program min ‖θ‖_C s.t. Φθ ≈ target.
	Lift(c constraint.Set, target vec.Vector, opts LiftOptions) (vec.Vector, error)
}

// Backend selects the sketch implementation used by a mechanism.
type Backend int

const (
	// BackendDense is the paper's dense Gaussian JL projection: an m×d matrix
	// of i.i.d. N(0, 1/m) entries, O(m·d) per apply. The default.
	BackendDense Backend = iota
	// BackendSRHT is the subsampled randomized Hadamard transform: random sign
	// flips, a fast Walsh–Hadamard transform, and uniform row subsampling,
	// O(d log d) per apply with the same norm-preservation guarantee up to log
	// factors ("Private Sketches for Linear Regression", Das et al.).
	BackendSRHT
	// BackendAuto picks SRHT when the ambient dimension is large enough for the
	// O(d log d) apply to beat the dense O(m·d) one (d ≥ 64), dense otherwise.
	BackendAuto
)

// srhtCrossover is the ambient dimension at which BackendAuto switches from
// the dense projector to the SRHT; below it the dense matvec's tight inner
// loop wins, above it the O(d log d) transform does (see docs/PERFORMANCE.md).
const srhtCrossover = 64

// String implements fmt.Stringer for diagnostics and benchmark labels.
func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendSRHT:
		return "srht"
	case BackendAuto:
		return "auto"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// New constructs a Transform of the requested backend mapping R^d → R^m,
// consuming randomness from src.
func New(b Backend, m, d int, src *randx.Source) (Transform, error) {
	switch b {
	case BackendDense:
		return NewProjector(m, d, src)
	case BackendSRHT:
		return NewSRHT(m, d, src)
	case BackendAuto:
		if d >= srhtCrossover {
			return NewSRHT(m, d, src)
		}
		return NewProjector(m, d, src)
	default:
		return nil, fmt.Errorf("sketch: unknown backend %d", int(b))
	}
}

// Spec identifies a Transform up to exact reconstruction: the requested
// backend, the shape, and the seed of the randomness source it was sampled
// from. Because transforms are immutable after construction, the spec is their
// entire serializable state — checkpoints persist a Spec instead of the m×d
// matrix (or sign/row tables) and rebuild the identical transform on restore.
type Spec struct {
	// Backend is the backend that was requested at construction (BackendAuto is
	// recorded as such; its dense/SRHT choice is a deterministic function of the
	// dimensions, so reconstruction makes the same choice).
	Backend Backend
	// OutputDim and InputDim are the transform's shape (m and d).
	OutputDim, InputDim int
	// Seed seeds the source the transform's randomness was drawn from.
	Seed int64
}

// New reconstructs the transform the spec describes. A transform built from
// the spec of a previous construction is identical to the original: same
// matrix entries (dense) or sign/row tables (SRHT).
func (s Spec) New() (Transform, error) {
	return New(s.Backend, s.OutputDim, s.InputDim, randx.NewSource(s.Seed))
}

// scaledApplyTo implements the footnote-15 rescaled apply for any Transform:
// dst = (‖x‖/‖Φx‖)·Φx, the zero vector when x or Φx vanishes.
func scaledApplyTo(t Transform, dst, x vec.Vector) {
	t.ApplyTo(dst, x)
	nx := vec.Norm2(x)
	npx := vec.Norm2(dst)
	if nx == 0 || npx == 0 {
		dst.Zero()
		return
	}
	dst.Scale(nx / npx)
}

// imageSet returns the projected optimization domain for any Transform.
//
// For vertex-described sets (L1 balls and polytopes) the image is itself a
// polytope — the convex hull of the projected vertices — and is returned
// exactly. For other sets the exact image is expensive to project onto, so a
// Euclidean-ball relaxation of radius (1+γ)·‖C‖ is returned; the embedding
// theorem keeps ΦC inside this ball with high probability, the diameter bound
// ‖ΦC‖ = O(‖C‖) used in the utility analysis (Lemma 5.4) is preserved, and a
// final projection onto C after lifting restores feasibility.
func imageSet(t Transform, c constraint.Set, gamma float64) constraint.Set {
	if gamma < 0 {
		gamma = 0
	}
	switch s := c.(type) {
	case *constraint.L1Ball:
		cross := constraint.CrossPolytope(s.Dim(), s.Radius())
		return projectPolytope(t, cross)
	case *constraint.Polytope:
		return projectPolytope(t, s)
	default:
		return constraint.NewL2Ball(t.OutputDim(), (1+gamma)*c.Diameter())
	}
}

func projectPolytope(t Transform, poly *constraint.Polytope) constraint.Set {
	vertices := poly.Vertices()
	projected := make([]vec.Vector, len(vertices))
	for i, v := range vertices {
		projected[i] = t.Apply(v)
	}
	return constraint.NewPolytope(projected)
}
