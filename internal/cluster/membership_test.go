package cluster

import (
	"fmt"
	"testing"
	"time"
)

// Membership tests drive the detector with a synthetic clock — there is no
// time.Sleep anywhere in this file; every timeout "elapses" by calling Tick
// with a later timestamp.

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testConfig() DetectorConfig {
	return DetectorConfig{
		Self:             "a",
		ProbeInterval:    time.Second,
		ProbeTimeout:     500 * time.Millisecond,
		SuspicionTimeout: 3 * time.Second,
		IndirectProxies:  2,
	}
}

func kinds(events []Event) []EventKind {
	out := make([]EventKind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

// TestProbeRoundRobin: probes start one per interval, cycling over peers in
// sorted order, and an ack keeps everyone alive.
func TestProbeRoundRobin(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	var probed []string
	now := t0
	for i := 0; i < 4; i++ {
		now = now.Add(time.Second)
		actions, events := d.Tick(now)
		if len(events) != 0 {
			t.Fatalf("tick %d: unexpected events %v", i, kinds(events))
		}
		if len(actions) != 1 || actions[0].Kind != ActionPing {
			t.Fatalf("tick %d: actions = %+v, want one ping", i, actions)
		}
		probed = append(probed, actions[0].Target)
		d.HandleAck(actions[0].Target, now)
	}
	want := []string{"b", "c", "b", "c"}
	for i := range want {
		if probed[i] != want[i] {
			t.Fatalf("probe order = %v, want %v", probed, want)
		}
	}
	for _, id := range []string{"b", "c"} {
		if s, _ := d.State(id); s != StateAlive {
			t.Errorf("state(%s) = %s, want alive", id, s)
		}
	}
}

// TestDirectTimeoutEscalatesToIndirect: a missed direct probe produces a
// ping-req through the other alive member, not an immediate suspicion.
func TestDirectTimeoutEscalatesToIndirect(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	now := t0.Add(time.Second)
	actions, _ := d.Tick(now) // ping b
	if len(actions) != 1 || actions[0].Target != "b" {
		t.Fatalf("first tick actions = %+v, want ping b", actions)
	}

	now = now.Add(500 * time.Millisecond) // direct probe times out
	actions, events := d.Tick(now)
	if len(events) != 0 {
		t.Fatalf("unexpected events %v before indirect probing", kinds(events))
	}
	if len(actions) != 1 || actions[0].Kind != ActionPingReq || actions[0].Target != "b" {
		t.Fatalf("actions = %+v, want ping-req for b", actions)
	}
	if len(actions[0].Proxies) != 1 || actions[0].Proxies[0] != "c" {
		t.Fatalf("proxies = %v, want [c]", actions[0].Proxies)
	}
	if s, _ := d.State("b"); s != StateAlive {
		t.Fatalf("state(b) = %s before indirect timeout, want alive", s)
	}

	// A proxy-relayed ack clears the probe with no suspicion.
	d.HandleAck("b", now.Add(100*time.Millisecond))
	_, events = d.Tick(now.Add(time.Second))
	for _, e := range events {
		if e.Kind == EventSuspected {
			t.Fatalf("b suspected despite indirect ack")
		}
	}
}

// suspectB walks a fresh detector through the full probe → indirect →
// suspect sequence for member b and returns the detector, the suspicion
// time, and the suspicion event.
func suspectB(t *testing.T) (*Detector, time.Time) {
	t.Helper()
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	now := t0.Add(time.Second)
	d.Tick(now)                           // ping b
	now = now.Add(500 * time.Millisecond) // direct timeout
	d.Tick(now)                           // ping-req via c
	now = now.Add(500 * time.Millisecond) // indirect timeout
	_, events := d.Tick(now)
	if len(events) != 1 || events[0].Kind != EventSuspected || events[0].ID != "b" {
		t.Fatalf("events = %+v, want b suspected", events)
	}
	if s, _ := d.State("b"); s != StateSuspect {
		t.Fatalf("state(b) = %s, want suspect", s)
	}
	// The suspicion tick also started the next round-robin probe (of c);
	// ack it so only b's fate is in play for the caller.
	d.HandleAck("c", now)
	return d, now
}

// TestSuspicionTimesOutToDead: an unrefuted suspicion becomes a death after
// exactly the suspicion timeout.
func TestSuspicionTimesOutToDead(t *testing.T) {
	d, suspected := suspectB(t)
	// One tick just before the timeout: still suspect.
	_, events := d.Tick(suspected.Add(3*time.Second - time.Millisecond))
	for _, e := range events {
		if e.Kind == EventDead {
			t.Fatalf("b died before the suspicion timeout")
		}
	}
	_, events = d.Tick(suspected.Add(3 * time.Second))
	var dead bool
	for _, e := range events {
		if e.Kind == EventDead && e.ID == "b" {
			dead = true
		}
	}
	if !dead {
		t.Fatalf("events = %+v, want b dead", events)
	}
	if s, _ := d.State("b"); s != StateDead {
		t.Fatalf("state(b) = %s, want dead", s)
	}
}

// TestRefutationByIncarnationBump: gossip claiming b alive at a higher
// incarnation clears the suspicion — the false positive costs nothing.
func TestRefutationByIncarnationBump(t *testing.T) {
	d, suspected := suspectB(t)
	events := d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 1}}, suspected.Add(time.Second))
	var refuted bool
	for _, e := range events {
		if e.Kind == EventRefuted && e.ID == "b" {
			refuted = true
		}
	}
	if !refuted {
		t.Fatalf("events = %+v, want b refuted", events)
	}
	if s, _ := d.State("b"); s != StateAlive {
		t.Fatalf("state(b) = %s after refutation, want alive", s)
	}
	// The old suspicion must not still ripen into a death.
	_, events = d.Tick(suspected.Add(10 * time.Second))
	for _, e := range events {
		if e.Kind == EventDead {
			t.Fatalf("b died after refutation: %+v", events)
		}
	}
}

// TestSameIncarnationAliveDoesNotRefute: per SWIM, suspicion at incarnation
// i is only overridden by alive at i+1 or higher — stale "alive" gossip
// cannot mask a real failure.
func TestSameIncarnationAliveDoesNotRefute(t *testing.T) {
	d, suspected := suspectB(t)
	d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 0}}, suspected.Add(time.Second))
	if s, _ := d.State("b"); s != StateSuspect {
		t.Fatalf("state(b) = %s after same-incarnation alive gossip, want still suspect", s)
	}
}

// TestFirsthandAckRefutes: the suspecting node itself hearing an ack clears
// the suspicion immediately (it verified liveness firsthand).
func TestFirsthandAckRefutes(t *testing.T) {
	d, suspected := suspectB(t)
	events := d.HandleAck("b", suspected.Add(time.Second))
	if len(events) != 1 || events[0].Kind != EventRefuted {
		t.Fatalf("events = %+v, want refuted", events)
	}
	if s, _ := d.State("b"); s != StateAlive {
		t.Fatalf("state(b) = %s, want alive", s)
	}
}

// TestSelfRefutation: hearing your own suspicion bumps your incarnation so
// the refutation can spread; the bumped number rides the next gossip.
func TestSelfRefutation(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	events := d.HandleGossip("b", []MemberInfo{{ID: "a", State: StateSuspect, Incarnation: 0}}, t0.Add(time.Second))
	var bumped bool
	for _, e := range events {
		if e.Kind == EventSelfRefuted && e.Incarnation == 1 {
			bumped = true
		}
	}
	if !bumped {
		t.Fatalf("events = %+v, want self-refuted at incarnation 1", events)
	}
	if d.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", d.Incarnation())
	}
	for _, m := range d.Gossip() {
		if m.ID == "a" && (m.State != StateAlive || m.Incarnation != 1) {
			t.Fatalf("self gossip entry = %+v, want alive@1", m)
		}
	}
	// Stale suspicion at the old incarnation no longer bumps again.
	d.HandleGossip("c", []MemberInfo{{ID: "a", State: StateSuspect, Incarnation: 0}}, t0.Add(2*time.Second))
	if d.Incarnation() != 1 {
		t.Fatalf("incarnation = %d after stale suspicion, want still 1", d.Incarnation())
	}
}

// TestGossipSpreadsSuspicionAndDeath: a node that never probed the victim
// adopts the suspicion (starting its own timeout) and the death.
func TestGossipSpreadsSuspicionAndDeath(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	now := t0.Add(time.Second)
	events := d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateSuspect, Incarnation: 0}}, now)
	if len(events) != 1 || events[0].Kind != EventSuspected {
		t.Fatalf("events = %+v, want b suspected via gossip", events)
	}
	// The adopted suspicion ripens locally too.
	_, events = d.Tick(now.Add(3 * time.Second))
	var dead bool
	for _, e := range events {
		if e.Kind == EventDead && e.ID == "b" {
			dead = true
		}
	}
	if !dead {
		t.Fatalf("adopted suspicion did not ripen: %+v", events)
	}

	// Death gossip is adopted exactly once.
	d2 := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	events = d2.HandleGossip("c", []MemberInfo{{ID: "b", State: StateDead, Incarnation: 0}}, now)
	if len(events) != 1 || events[0].Kind != EventDead {
		t.Fatalf("events = %+v, want b dead via gossip", events)
	}
	if events = d2.HandleGossip("c", []MemberInfo{{ID: "b", State: StateDead, Incarnation: 0}}, now); len(events) != 0 {
		t.Fatalf("repeated death gossip re-emitted: %+v", events)
	}
}

// TestDeadIsStickyUntilRejoin: stale alive gossip cannot resurrect a dead
// member; a deliberate rejoin with a higher incarnation can — in the
// detector only, never in the ring (that takes the explicit join flow).
func TestDeadIsStickyUntilRejoin(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateDead, Incarnation: 0}}, t0)
	d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 0}}, t0.Add(time.Second))
	if s, _ := d.State("b"); s != StateDead {
		t.Fatalf("state(b) = %s after stale alive gossip, want dead", s)
	}
	events := d.HandleGossip("b", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 3}}, t0.Add(2*time.Second))
	var joined bool
	for _, e := range events {
		if e.Kind == EventJoined && e.ID == "b" {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("events = %+v, want b rejoined", events)
	}
	if s, _ := d.State("b"); s != StateAlive {
		t.Fatalf("state(b) = %s after rejoin, want alive", s)
	}
}

// TestLeftMembersAreNeverSuspected: a graceful departure is terminal — no
// probes, no suspicion, no death, no promotion.
func TestLeftMembersAreNeverSuspected(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b", "c"}, t0)
	d.MarkLeft("b")
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		actions, events := d.Tick(now)
		for _, a := range actions {
			if a.Target == "b" {
				t.Fatalf("left member probed: %+v", a)
			}
			d.HandleAck(a.Target, now)
		}
		for _, e := range events {
			if e.ID == "b" {
				t.Fatalf("left member produced event %+v", e)
			}
		}
	}
}

// TestTwoNodeClusterSuspectsWithoutProxies: with no third node to relay an
// indirect probe, the direct timeout alone escalates to suspicion.
func TestTwoNodeClusterSuspectsWithoutProxies(t *testing.T) {
	d := NewDetector(testConfig(), []string{"a", "b"}, t0)
	now := t0.Add(time.Second)
	d.Tick(now) // ping b
	now = now.Add(500 * time.Millisecond)
	_, events := d.Tick(now)
	if len(events) != 1 || events[0].Kind != EventSuspected || events[0].ID != "b" {
		t.Fatalf("events = %+v, want b suspected directly (no proxies)", events)
	}
}

// TestPartitionFlapNeverDoubleOwns is the partition-flap test: a node that
// is suspected and refuted leaves the ring untouched (no ownership change at
// all), and a node that is declared dead, removed, and later resurrects in
// the detector still owns nothing under the promoted ring — on every ring
// version, each stream has exactly one owner, and after the death transition
// the flapping node is never among them until an explicit ring re-add.
func TestPartitionFlapNeverDoubleOwns(t *testing.T) {
	members := []Node{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	ring, err := New(1, members, 2, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]string, 40)
	for i := range streams {
		streams[i] = fmt.Sprintf("stream-%d", i)
	}
	ownersV1 := make(map[string]string, len(streams))
	for _, id := range streams {
		ownersV1[id] = ring.Owner(id).ID
	}

	// Phase 1: b is suspected, then refuted by incarnation bump. No ring
	// transition may happen — refutation is exactly the "do nothing" path.
	d, suspected := suspectB(t)
	d.HandleGossip("c", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 1}}, suspected.Add(time.Second))
	_, events := d.Tick(suspected.Add(10 * time.Second))
	for _, e := range events {
		if e.Kind == EventDead {
			t.Fatalf("refuted suspicion still produced a death: %+v", e)
		}
	}
	for _, id := range streams {
		if got := ring.Owner(id).ID; got != ownersV1[id] {
			t.Fatalf("owner of %s changed without a ring transition", id)
		}
	}

	// Phase 2: b really dies. Every survivor computes Remove("b")
	// independently; determinism of New means they converge on identical
	// ownership with exactly one owner per stream, never b.
	d2, suspected2 := suspectB(t)
	_, events = d2.Tick(suspected2.Add(3 * time.Second))
	if len(events) != 1 || events[0].Kind != EventDead || events[0].ID != "b" {
		t.Fatalf("events = %+v, want b dead", events)
	}
	ringA, err := ring.Remove("b") // survivor a's computation
	if err != nil {
		t.Fatal(err)
	}
	ringC, err := ring.Remove("b") // survivor c's computation
	if err != nil {
		t.Fatal(err)
	}
	if ringA.Version() != 2 || ringC.Version() != 2 {
		t.Fatalf("successor ring versions = %d, %d, want 2", ringA.Version(), ringC.Version())
	}
	for _, id := range streams {
		oa, oc := ringA.Owner(id).ID, ringC.Owner(id).ID
		if oa != oc {
			t.Fatalf("survivors disagree on owner of %s: %s vs %s", id, oa, oc)
		}
		if oa == "b" {
			t.Fatalf("dead node still owns %s under ring v2", id)
		}
		// The promoted owner is the stream's old first successor — the node
		// that already holds the warm standby copy.
		if ownersV1[id] == "b" {
			succs := ring.Successors(id, 2)
			if len(succs) < 2 || succs[1].ID != oa {
				t.Fatalf("promoted owner of %s is %s, want old standby %v", id, oa, succs)
			}
		}
	}

	// Phase 3: b resurrects in the detector (rejoin with higher
	// incarnation). The ring is untouched by detector state — b owns
	// nothing until an explicit ring re-add, so there is no moment where
	// two rings both claim b as an owner of a promoted stream.
	d2.HandleGossip("b", []MemberInfo{{ID: "b", State: StateAlive, Incarnation: 5}}, suspected2.Add(4*time.Second))
	if s, _ := d2.State("b"); s != StateAlive {
		t.Fatalf("state(b) = %s after rejoin gossip, want alive", s)
	}
	for _, id := range streams {
		if ringA.Owner(id).ID == "b" {
			t.Fatalf("resurrected member owns %s without rejoining the ring", id)
		}
	}
	rejoined, err := ringA.Add(Node{ID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if rejoined.Version() != 3 {
		t.Fatalf("rejoin ring version = %d, want 3", rejoined.Version())
	}
	for _, id := range streams {
		if rejoined.Owner(id).ID == "" {
			t.Fatalf("stream %s has no owner after rejoin", id)
		}
	}
}
