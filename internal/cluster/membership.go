// membership.go is the SWIM-style failure detector (Das et al., "SWIM:
// Scalable Weakly-consistent Infection-style Process Group Membership
// Protocol"): each node periodically probes one peer directly, escalates a
// missed ack to an indirect probe through k proxies, and only then suspects
// the peer; a suspect that stays silent for the suspicion timeout is
// declared dead. Incarnation numbers make suspicion refutable — a suspected
// node that hears about its own suspicion bumps its incarnation and gossips
// "alive" with the higher number, which overrides the suspicion everywhere —
// so one dropped packet does not amputate a healthy node.
//
// The Detector is a pure state machine: no goroutines, no timers, no I/O.
// Time enters exclusively as arguments (Tick(now), HandleAck(id, now), …)
// and network effects leave as Action values the caller executes, which is
// what lets the full suspect/refute/promote cycle run under test with a
// synthetic clock and zero sleeps. The server wraps it with a real ticker
// and the wire transport's Ping/PingReq/Gossip frames.
//
// The caller must serialize access; the Detector does no locking.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

// MemberState is what the detector believes about one member.
type MemberState uint8

const (
	// StateAlive: answering probes, or not yet doubted.
	StateAlive MemberState = 1
	// StateSuspect: missed a direct and an indirect probe; the suspicion
	// timeout is running and the member can still refute.
	StateSuspect MemberState = 2
	// StateDead: suspicion expired unrefuted, or another node confirmed the
	// death. Terminal except for an explicit rejoin with a higher
	// incarnation.
	StateDead MemberState = 3
	// StateLeft: departed gracefully (ring handoff completed); never
	// suspected, never promoted over.
	StateLeft MemberState = 4
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// MemberInfo is one row of a gossiped membership table.
type MemberInfo struct {
	ID          string
	State       MemberState
	Incarnation uint64
}

// Member is the introspection view of one member: the gossiped facts plus
// the local evidence behind them.
type Member struct {
	MemberInfo
	// LastAck is when this node last heard from the member firsthand (an
	// ack, or gossip sent by the member itself); zero if never.
	LastAck time.Time
	// SuspectedAt is when the running suspicion started; zero unless
	// suspect.
	SuspectedAt time.Time
}

// ActionKind says what the caller should send.
type ActionKind uint8

const (
	// ActionPing: send a direct probe to Target; report an ack via
	// HandleAck(Target, now).
	ActionPing ActionKind = 1
	// ActionPingReq: ask each of Proxies to probe Target; report a
	// successful proxied probe via HandleAck(Target, now).
	ActionPingReq ActionKind = 2
)

// Action is a network effect the detector wants performed.
type Action struct {
	Kind    ActionKind
	Target  string
	Proxies []string // for ActionPingReq
}

// EventKind classifies a membership transition.
type EventKind uint8

const (
	// EventSuspected: a member missed direct and indirect probes (or a peer
	// gossiped its suspicion); the suspicion timeout is running.
	EventSuspected EventKind = 1
	// EventRefuted: a suspicion was cleared — firsthand ack, or gossip with
	// a higher incarnation — without any ring change.
	EventRefuted EventKind = 2
	// EventDead: the suspicion timeout expired unrefuted (or a peer
	// confirmed the death). The caller should remove the member from the
	// ring and promote standbys.
	EventDead EventKind = 3
	// EventJoined: a member appeared, or a dead member resurrected with a
	// higher incarnation. Ring re-admission stays explicit (the join flow);
	// the detector only tracks liveness.
	EventJoined EventKind = 4
	// EventLeft: a member departed gracefully.
	EventLeft EventKind = 5
	// EventSelfRefuted: this node heard itself suspected or declared dead
	// and bumped its own incarnation; the bumped table spreads with the
	// next probes.
	EventSelfRefuted EventKind = 6
)

func (k EventKind) String() string {
	switch k {
	case EventSuspected:
		return "suspected"
	case EventRefuted:
		return "refuted"
	case EventDead:
		return "dead"
	case EventJoined:
		return "joined"
	case EventLeft:
		return "left"
	case EventSelfRefuted:
		return "self-refuted"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one membership transition, in the order it happened.
type Event struct {
	Kind        EventKind
	ID          string
	Incarnation uint64
}

// DetectorConfig are the detector's timing and fanout parameters.
type DetectorConfig struct {
	// Self is this node's ID; it is gossiped as alive with the current
	// incarnation and never probed.
	Self string
	// ProbeInterval is how often a new direct probe starts (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout is how long each probe stage (direct, then indirect) may
	// run before escalating (default ProbeInterval/2). A member is
	// suspected after 2×ProbeTimeout of silence.
	ProbeTimeout time.Duration
	// SuspicionTimeout is how long a suspect may stay silent before it is
	// declared dead (default 3×ProbeInterval). This bounds the
	// unavailability window after an unclean death; the false-positive rate
	// rises as it shrinks.
	SuspicionTimeout time.Duration
	// IndirectProxies is k, the number of peers asked to probe on this
	// node's behalf before suspicion (default 2).
	IndirectProxies int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = 3 * c.ProbeInterval
	}
	if c.IndirectProxies <= 0 {
		c.IndirectProxies = 2
	}
	return c
}

type memberRec struct {
	state       MemberState
	incarnation uint64
	lastAck     time.Time
	suspectedAt time.Time
}

// probeState is the one probe in flight (SWIM probes one member per
// interval).
type probeState struct {
	target   string
	sentAt   time.Time
	indirect bool // escalated to ping-req
}

// Detector is the failure-detector state machine. Zero value is not usable;
// construct with NewDetector. Not safe for concurrent use.
type Detector struct {
	cfg         DetectorConfig
	incarnation uint64 // self
	members     map[string]*memberRec
	order       []string // sorted member IDs, the round-robin probe schedule
	probeIdx    int
	lastProbe   time.Time
	probe       *probeState
}

// NewDetector builds a detector for Self plus peers, all initially alive at
// incarnation 0 with now as their last-heard time (a boot grace period: a
// member must stay silent a full probe cycle before doubt begins).
func NewDetector(cfg DetectorConfig, peers []string, now time.Time) *Detector {
	d := &Detector{
		cfg:       cfg.withDefaults(),
		members:   make(map[string]*memberRec),
		lastProbe: now,
	}
	for _, id := range peers {
		if id == d.cfg.Self || id == "" {
			continue
		}
		d.members[id] = &memberRec{state: StateAlive, lastAck: now}
	}
	d.reorder()
	return d
}

func (d *Detector) reorder() {
	d.order = d.order[:0]
	for id := range d.members {
		d.order = append(d.order, id)
	}
	sort.Strings(d.order)
}

// Incarnation returns this node's current incarnation number.
func (d *Detector) Incarnation() uint64 { return d.incarnation }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Add introduces a member (a join), or resurrects a dead/left one.
func (d *Detector) Add(id string, now time.Time) {
	if id == d.cfg.Self || id == "" {
		return
	}
	rec, ok := d.members[id]
	if !ok {
		d.members[id] = &memberRec{state: StateAlive, lastAck: now}
		d.reorder()
		return
	}
	if rec.state != StateAlive {
		rec.state = StateAlive
		rec.lastAck = now
		rec.suspectedAt = time.Time{}
	}
}

// MarkLeft records a graceful departure: the member is no longer probed,
// never suspected, and its death never declared (there is nothing to
// promote — it handed its streams off before leaving).
func (d *Detector) MarkLeft(id string) {
	if rec, ok := d.members[id]; ok {
		rec.state = StateLeft
		rec.suspectedAt = time.Time{}
		if d.probe != nil && d.probe.target == id {
			d.probe = nil
		}
	}
}

// State returns the detector's belief about id (self is always alive).
func (d *Detector) State(id string) (MemberState, bool) {
	if id == d.cfg.Self {
		return StateAlive, true
	}
	rec, ok := d.members[id]
	if !ok {
		return 0, false
	}
	return rec.state, true
}

// Members returns the introspection view, sorted by ID, self included.
func (d *Detector) Members() []Member {
	out := make([]Member, 0, len(d.members)+1)
	out = append(out, Member{MemberInfo: MemberInfo{ID: d.cfg.Self, State: StateAlive, Incarnation: d.incarnation}})
	for _, id := range d.order {
		rec := d.members[id]
		out = append(out, Member{
			MemberInfo:  MemberInfo{ID: id, State: rec.state, Incarnation: rec.incarnation},
			LastAck:     rec.lastAck,
			SuspectedAt: rec.suspectedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Gossip returns the table to piggyback on outgoing probes and acks: every
// member's state and incarnation, plus self as alive. Sorted for
// determinism.
func (d *Detector) Gossip() []MemberInfo {
	out := make([]MemberInfo, 0, len(d.members)+1)
	out = append(out, MemberInfo{ID: d.cfg.Self, State: StateAlive, Incarnation: d.incarnation})
	for _, id := range d.order {
		rec := d.members[id]
		out = append(out, MemberInfo{ID: id, State: rec.state, Incarnation: rec.incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// probeable reports whether a member should be probed: alive members (the
// steady state) and suspects (a probe ack is the fastest refutation).
func probeable(s MemberState) bool { return s == StateAlive || s == StateSuspect }

// nextTarget advances the round-robin schedule to the next probeable member.
func (d *Detector) nextTarget() (string, bool) {
	for i := 0; i < len(d.order); i++ {
		id := d.order[d.probeIdx%len(d.order)]
		d.probeIdx++
		if probeable(d.members[id].state) {
			return id, true
		}
	}
	return "", false
}

// proxies picks up to k alive members other than target to carry an
// indirect probe.
func (d *Detector) proxies(target string) []string {
	var out []string
	for _, id := range d.order {
		if id == target || d.members[id].state != StateAlive {
			continue
		}
		out = append(out, id)
		if len(out) == d.cfg.IndirectProxies {
			break
		}
	}
	return out
}

// Tick advances the state machine to now: expires suspicions into deaths,
// escalates or concludes the in-flight probe, and starts the next probe when
// the interval has elapsed. The returned actions are probes for the caller
// to send; events are transitions that happened.
func (d *Detector) Tick(now time.Time) ([]Action, []Event) {
	var actions []Action
	var events []Event

	// Suspicions that outlived the timeout become deaths, in ID order so
	// event streams are deterministic under test.
	for _, id := range d.order {
		rec := d.members[id]
		if rec.state == StateSuspect && now.Sub(rec.suspectedAt) >= d.cfg.SuspicionTimeout {
			rec.state = StateDead
			rec.suspectedAt = time.Time{}
			events = append(events, Event{Kind: EventDead, ID: id, Incarnation: rec.incarnation})
			if d.probe != nil && d.probe.target == id {
				d.probe = nil
			}
		}
	}

	// Escalate or conclude the in-flight probe.
	if p := d.probe; p != nil && now.Sub(p.sentAt) >= d.cfg.ProbeTimeout {
		rec := d.members[p.target]
		switch {
		case rec == nil || !probeable(rec.state):
			d.probe = nil
		case !p.indirect:
			if proxies := d.proxies(p.target); len(proxies) > 0 {
				p.indirect = true
				p.sentAt = now
				actions = append(actions, Action{Kind: ActionPingReq, Target: p.target, Proxies: proxies})
				break
			}
			// No proxy available (two-node cluster, or everyone else is
			// down): suspicion rests on the direct probe alone.
			fallthrough
		default:
			if rec.state == StateAlive {
				rec.state = StateSuspect
				rec.suspectedAt = now
				events = append(events, Event{Kind: EventSuspected, ID: p.target, Incarnation: rec.incarnation})
			}
			d.probe = nil
		}
	}

	// Start the next probe when the interval has elapsed and no probe is in
	// flight.
	if d.probe == nil && now.Sub(d.lastProbe) >= d.cfg.ProbeInterval {
		if target, ok := d.nextTarget(); ok {
			d.probe = &probeState{target: target, sentAt: now}
			d.lastProbe = now
			actions = append(actions, Action{Kind: ActionPing, Target: target})
		}
	}
	return actions, events
}

// HandleAck records firsthand evidence that id is alive at now: a direct
// probe ack, or a proxy's confirmation that id answered. Firsthand evidence
// clears a local suspicion immediately (this node verified liveness itself);
// peers holding the same suspicion still need the incarnation-bump
// refutation to spread via gossip.
func (d *Detector) HandleAck(id string, now time.Time) []Event {
	rec, ok := d.members[id]
	if !ok {
		return nil
	}
	rec.lastAck = now
	if d.probe != nil && d.probe.target == id {
		d.probe = nil
	}
	if rec.state == StateSuspect {
		rec.state = StateAlive
		rec.suspectedAt = time.Time{}
		return []Event{{Kind: EventRefuted, ID: id, Incarnation: rec.incarnation}}
	}
	return nil
}

// HandleGossip merges a peer's membership table, received from `from` (the
// node that built it — hearing from it is itself firsthand liveness
// evidence). Precedence follows SWIM: higher incarnations win; at equal
// incarnations suspicion overrides aliveness; death overrides both and is
// only undone by an alive claim with a strictly higher incarnation (a
// deliberate rejoin). Entries about self never change local state — instead
// a suspicion or death claim at our incarnation or above bumps our
// incarnation, which is the refutation the gossip carries back out.
func (d *Detector) HandleGossip(from string, table []MemberInfo, now time.Time) []Event {
	var events []Event
	events = append(events, d.HandleAck(from, now)...)
	changedSet := false
	for _, m := range table {
		if m.ID == d.cfg.Self {
			if (m.State == StateSuspect || m.State == StateDead) && m.Incarnation >= d.incarnation {
				d.incarnation = m.Incarnation + 1
				events = append(events, Event{Kind: EventSelfRefuted, ID: d.cfg.Self, Incarnation: d.incarnation})
			}
			continue
		}
		rec, ok := d.members[m.ID]
		if !ok {
			if m.ID == "" {
				continue
			}
			rec = &memberRec{state: m.State, incarnation: m.Incarnation}
			switch m.State {
			case StateAlive:
				rec.lastAck = now
				events = append(events, Event{Kind: EventJoined, ID: m.ID, Incarnation: m.Incarnation})
			case StateSuspect:
				rec.suspectedAt = now
				events = append(events, Event{Kind: EventSuspected, ID: m.ID, Incarnation: m.Incarnation})
			}
			d.members[m.ID] = rec
			changedSet = true
			continue
		}
		switch m.State {
		case StateAlive:
			switch rec.state {
			case StateAlive:
				if m.Incarnation > rec.incarnation {
					rec.incarnation = m.Incarnation
				}
			case StateSuspect:
				if m.Incarnation > rec.incarnation {
					rec.state = StateAlive
					rec.incarnation = m.Incarnation
					rec.suspectedAt = time.Time{}
					events = append(events, Event{Kind: EventRefuted, ID: m.ID, Incarnation: m.Incarnation})
				}
			case StateDead, StateLeft:
				if m.Incarnation > rec.incarnation {
					rec.state = StateAlive
					rec.incarnation = m.Incarnation
					rec.lastAck = now
					rec.suspectedAt = time.Time{}
					events = append(events, Event{Kind: EventJoined, ID: m.ID, Incarnation: m.Incarnation})
				}
			}
		case StateSuspect:
			switch rec.state {
			case StateAlive:
				if m.Incarnation >= rec.incarnation {
					rec.state = StateSuspect
					rec.incarnation = m.Incarnation
					rec.suspectedAt = now
					events = append(events, Event{Kind: EventSuspected, ID: m.ID, Incarnation: m.Incarnation})
				}
			case StateSuspect:
				if m.Incarnation > rec.incarnation {
					rec.incarnation = m.Incarnation
				}
			}
		case StateDead:
			if rec.state != StateDead && rec.state != StateLeft {
				rec.state = StateDead
				if m.Incarnation > rec.incarnation {
					rec.incarnation = m.Incarnation
				}
				rec.suspectedAt = time.Time{}
				events = append(events, Event{Kind: EventDead, ID: m.ID, Incarnation: rec.incarnation})
				if d.probe != nil && d.probe.target == m.ID {
					d.probe = nil
				}
			}
		case StateLeft:
			if rec.state != StateLeft {
				rec.state = StateLeft
				rec.suspectedAt = time.Time{}
				events = append(events, Event{Kind: EventLeft, ID: m.ID, Incarnation: rec.incarnation})
				if d.probe != nil && d.probe.target == m.ID {
					d.probe = nil
				}
			}
		}
	}
	if changedSet {
		d.reorder()
	}
	return events
}
