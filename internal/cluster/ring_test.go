package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "a", Addr: "127.0.0.1:1", WireAddr: "127.0.0.1:101"},
		{ID: "b", Addr: "127.0.0.1:2", WireAddr: "127.0.0.1:102"},
		{ID: "c", Addr: "127.0.0.1:3", WireAddr: "127.0.0.1:103"},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, []Node{{ID: ""}}, 0, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := New(1, []Node{{ID: "a"}, {ID: "a"}}, 0, 0); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
	r, err := New(7, threeNodes(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 7 || r.Replicas() != DefaultReplicas || r.VNodes() != DefaultVNodes {
		t.Fatalf("defaults not applied: v=%d replicas=%d vnodes=%d", r.Version(), r.Replicas(), r.VNodes())
	}
}

// The ring is a pure function of (version, members, replicas, vnodes): two
// independently constructed rings over the same members must agree on every
// owner, regardless of the order the members were listed in. This is the
// property client-side routing depends on.
func TestDeterministicOwnership(t *testing.T) {
	a, err := New(1, threeNodes(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []Node{threeNodes()[2], threeNodes()[0], threeNodes()[1]}
	b, err := New(1, shuffled, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("stream-%04d", i)
		if a.Owner(id).ID != b.Owner(id).ID {
			t.Fatalf("owner of %q differs across member orderings: %q vs %q", id, a.Owner(id).ID, b.Owner(id).ID)
		}
	}
}

// Regular stream IDs must spread roughly evenly: no node should own a wildly
// disproportionate share. With 64 vnodes over 3 nodes the expected share is
// ~33%; allow [15%, 55%] to keep the test robust to the hash's natural
// variance without letting a broken hash pass.
func TestDistribution(t *testing.T) {
	r, err := New(1, threeNodes(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("user-%06d", i)).ID]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of regular IDs; distribution is broken: %v", id, frac*100, counts)
		}
	}
}

// Consistent hashing's defining property: adding or removing one node moves
// only the streams that must move. Streams whose owner is unchanged between
// ring versions must keep the same owner exactly, and the moved fraction
// should be in the ballpark of 1/n.
func TestMinimalMovement(t *testing.T) {
	r3, err := New(1, threeNodes(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := r3.Add(Node{ID: "d", Addr: "127.0.0.1:4", WireAddr: "127.0.0.1:104"})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Version() != 2 {
		t.Fatalf("Add produced version %d, want 2", r4.Version())
	}
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("stream-%05d", i)
		before, after := r3.Owner(id).ID, r4.Owner(id).ID
		if before != after {
			moved++
			if after != "d" {
				t.Fatalf("stream %q moved from %q to %q on join of d: only moves TO the joiner are allowed", id, before, after)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("join of a 4th node moved %.1f%% of streams, want roughly 25%%", frac*100)
	}

	// Removing the node we just added must restore the original ownership map
	// exactly (the ring is memoryless: same members => same placement).
	back, err := r4.Remove("d")
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != 3 {
		t.Fatalf("Remove produced version %d, want 3", back.Version())
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("stream-%05d", i)
		if r3.Owner(id).ID != back.Owner(id).ID {
			t.Fatalf("ownership of %q not restored after add+remove", id)
		}
	}
}

func TestAddRemoveErrors(t *testing.T) {
	r, err := New(1, threeNodes(), 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(Node{ID: "a"}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if _, err := r.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown node accepted")
	}
	one, err := New(1, []Node{{ID: "solo"}}, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Remove("solo"); err == nil {
		t.Fatal("Remove of last member accepted")
	}
}

func TestSuccessorsDistinct(t *testing.T) {
	r, err := New(1, threeNodes(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("s-%d", i)
		succ := r.Successors(id, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) returned %d nodes", id, len(succ))
		}
		if succ[0].ID != r.Owner(id).ID {
			t.Fatalf("Successors[0] %q != Owner %q for %q", succ[0].ID, r.Owner(id).ID, id)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n.ID] {
				t.Fatalf("Successors(%q, 3) repeats node %q", id, n.ID)
			}
			seen[n.ID] = true
		}
	}
	// k beyond the member count clamps.
	if got := len(r.Successors("x", 99)); got != 3 {
		t.Fatalf("Successors(x, 99) returned %d nodes, want 3", got)
	}
	if r.Successors("x", 0) != nil {
		t.Fatal("Successors(x, 0) should be nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r, err := New(9, threeNodes(), 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Ring
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version() != 9 || got.Replicas() != 2 || got.VNodes() != 32 || got.Len() != 3 {
		t.Fatalf("round-trip lost state: %+v", got)
	}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("rt-%d", i)
		if r.Owner(id).ID != got.Owner(id).ID {
			t.Fatalf("round-tripped ring disagrees on owner of %q", id)
		}
	}
	if got.Nodes()[0].WireAddr != "127.0.0.1:101" {
		t.Fatalf("wire addr lost: %+v", got.Nodes()[0])
	}

	var empty Ring
	if err := json.Unmarshal([]byte(`{"version":1,"nodes":[]}`), &empty); err == nil {
		t.Fatal("memberless ring decoded without error")
	}
}

func TestNodeByID(t *testing.T) {
	r, err := New(1, threeNodes(), 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := r.NodeByID("b")
	if !ok || n.Addr != "127.0.0.1:2" {
		t.Fatalf("NodeByID(b) = %+v, %v", n, ok)
	}
	if _, ok := r.NodeByID("zz"); ok {
		t.Fatal("NodeByID(zz) found a ghost")
	}
}
