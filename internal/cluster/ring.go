// Package cluster implements the consistent-hash ring that shards the stream
// namespace across privreg-server nodes.
//
// The ring is a value: a versioned, deterministic function from the member
// list to stream ownership. Every node (and every ring-aware client) that
// holds the same member list at the same version computes the same owner for
// every stream, so routing needs no coordination service — nodes gossip ring
// versions over the existing control plane and adopt whichever is newest.
// Placement uses the same FNV-1a + SplitMix64 derivation the Pool uses for
// per-stream seeds, so stream keys are spread uniformly even for adversarially
// regular ID patterns ("user-0001", "user-0002", ...).
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"privreg/internal/randx"
)

// DefaultVNodes is the number of virtual points each node contributes to the
// ring. 64 keeps the ownership imbalance across a handful of nodes within a
// few percent while keeping ring construction and lookup cheap (a ring of N
// nodes is N*64 sorted uint64s; lookup is one binary search).
const DefaultVNodes = 64

// DefaultReplicas is the total number of copies of each stream's segment
// state the cluster aims to keep: the owner plus one warm standby.
const DefaultReplicas = 2

// Node identifies one cluster member and how to reach it on both front ends.
// Addr is the HTTP host:port (control plane, JSON data plane); WireAddr is
// the binary protocol host:port (data plane, segment transfer). WireAddr may
// be empty for HTTP-only members, in which case peers cannot forward to it or
// replicate onto it.
type Node struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	WireAddr string `json:"wire_addr,omitempty"`
}

// Ring is an immutable, versioned consistent-hash ring. Construct one with
// New, derive successors with Add/Remove (each returns a new Ring at
// Version+1), and share ring values freely across goroutines — no method
// mutates a Ring after construction.
type Ring struct {
	version  uint64
	replicas int
	vnodes   int
	nodes    []Node // sorted by ID; the member list
	byID     map[string]int

	points []point // sorted by hash; the ring proper
}

// point is one virtual node: a position on the [0, 2^64) circle owned by
// nodes[node].
type point struct {
	hash uint64
	node int
}

// New builds a ring at the given version over the given members. Node IDs
// must be unique and non-empty. replicas and vnodes fall back to the package
// defaults when <= 0; replicas is clamped to the member count.
func New(version uint64, members []Node, replicas, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	nodes := make([]Node, len(members))
	copy(nodes, members)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	byID := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty ID", i)
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		byID[n.ID] = i
	}
	r := &Ring{
		version:  version,
		replicas: replicas,
		vnodes:   vnodes,
		nodes:    nodes,
		byID:     byID,
	}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for i, n := range nodes {
		base := fnv64a(n.ID)
		for v := 0; v < vnodes; v++ {
			// Same derivation shape as Pool.streamSeed: FNV over the
			// identifier, XOR a per-instance counter, SplitMix64 finalizer.
			h := randx.Mix64(base ^ (uint64(v)*0x9e3779b97f4a7c15 + 1))
			r.points = append(r.points, point{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node index so equal hashes (vanishingly rare but
		// possible) still order deterministically across all members.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Version returns the ring's version. Higher versions supersede lower ones;
// nodes adopt any ring strictly newer than the one they hold.
func (r *Ring) Version() uint64 { return r.version }

// Replicas returns the configured copy count (owner + standbys).
func (r *Ring) Replicas() int { return r.replicas }

// VNodes returns the per-node virtual point count.
func (r *Ring) VNodes() int { return r.vnodes }

// Nodes returns the member list sorted by ID. The caller must not mutate it.
func (r *Ring) Nodes() []Node { return r.nodes }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.nodes) }

// NodeByID returns the member with the given ID.
func (r *Ring) NodeByID(id string) (Node, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Node{}, false
	}
	return r.nodes[i], true
}

// Key maps a stream ID to its position on the circle. Exported so tests and
// tools can reason about placement; routing should use Owner/Successors.
func Key(streamID string) uint64 {
	return randx.Mix64(fnv64a(streamID))
}

// Owner returns the node responsible for a stream: the first virtual point
// clockwise from the stream's key.
func (r *Ring) Owner(streamID string) Node {
	if len(r.points) == 0 {
		return Node{}
	}
	return r.nodes[r.points[r.locate(Key(streamID))].node]
}

// Successors returns up to k distinct nodes for a stream in ring order,
// starting with the owner. Successors(id, r.Replicas()) is the stream's
// replica set: element 0 serves traffic, the rest hold warm standby segments.
func (r *Ring) Successors(streamID string, k int) []Node {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	out := make([]Node, 0, k)
	seen := make(map[int]bool, k)
	at := r.locate(Key(streamID))
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// locate returns the index of the first point at or clockwise after hash h.
func (r *Ring) locate(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Add returns a new ring at Version+1 with the given node joined. It is an
// error to add a duplicate ID.
func (r *Ring) Add(n Node) (*Ring, error) {
	if _, ok := r.byID[n.ID]; ok {
		return nil, fmt.Errorf("cluster: node %q is already a member", n.ID)
	}
	members := make([]Node, 0, len(r.nodes)+1)
	members = append(members, r.nodes...)
	members = append(members, n)
	return New(r.version+1, members, r.replicas, r.vnodes)
}

// Remove returns a new ring at Version+1 without the given node. Removing the
// last member or an unknown ID is an error.
func (r *Ring) Remove(id string) (*Ring, error) {
	if _, ok := r.byID[id]; !ok {
		return nil, fmt.Errorf("cluster: node %q is not a member", id)
	}
	if len(r.nodes) == 1 {
		return nil, fmt.Errorf("cluster: cannot remove the last member %q", id)
	}
	members := make([]Node, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n.ID != id {
			members = append(members, n)
		}
	}
	return New(r.version+1, members, r.replicas, r.vnodes)
}

// ringWire is the serialized form shared by the JSON codec (GET /v1/ring,
// cluster control endpoints) and the binary RingAck payload (which carries
// the same JSON blob — ring exchange is rare and small, so a bespoke binary
// layout would buy nothing).
type ringWire struct {
	Version  uint64 `json:"version"`
	Replicas int    `json:"replicas"`
	VNodes   int    `json:"vnodes"`
	Nodes    []Node `json:"nodes"`
}

// MarshalJSON encodes the ring's defining state; the derived points are
// recomputed on decode, which is what makes the encoding trustworthy — a
// corrupt or malicious peer cannot describe a ring whose ownership map
// disagrees with its member list.
func (r *Ring) MarshalJSON() ([]byte, error) {
	return json.Marshal(ringWire{
		Version:  r.version,
		Replicas: r.replicas,
		VNodes:   r.vnodes,
		Nodes:    r.nodes,
	})
}

// UnmarshalJSON decodes and rebuilds a ring. The receiver must be a fresh
// zero Ring (the standard library contract for unmarshalers).
func (r *Ring) UnmarshalJSON(data []byte) error {
	var w ringWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("cluster: decoding ring: %w", err)
	}
	if len(w.Nodes) == 0 {
		return fmt.Errorf("cluster: decoded ring has no members")
	}
	nr, err := New(w.Version, w.Nodes, w.Replicas, w.VNodes)
	if err != nil {
		return err
	}
	*r = *nr
	return nil
}

// fnv64a hashes a string with FNV-1a, the same base hash the Pool uses for
// per-stream seed derivation.
func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
