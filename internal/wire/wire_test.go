package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// TestFrameRoundTrip encodes every frame type and decodes it back through
// both the slice decoder and the io Reader.
func TestFrameRoundTrip(t *testing.T) {
	var b Builder
	AppendHello(&b, Hello{MinVersion: 1, MaxVersion: 3})
	AppendHelloAck(&b, HelloAck{Version: 1, Dim: 8, Horizon: 512, Mechanism: "gradient", Server: "v1.2.3"})
	xs := []float64{0.5, -0.25, math.Inf(1), math.Copysign(0, -1), 1e-300, 42, -7, 0.125}
	ys := []float64{0.75, -0.5}
	AppendObserve(&b, 7, FlagForwarded, "stream-a", -1, 4, xs, ys)
	AppendEstimate(&b, 8, 0, "stream-a", 0)
	AppendAck(&b, Ack{ReqID: 7, Applied: 2, Len: 40})
	AppendEstimateAck(&b, EstimateAck{ReqID: 8, Len: 40, Estimate: []float64{1, -2, 0.5, 0.25}})
	AppendNack(&b, Nack{ReqID: 9, Code: NackQueueFull, RetryAfter: 3, Msg: "queue full"})
	AppendError(&b, "fatal")

	check := func(t *testing.T, next func() (FrameType, []byte, error)) {
		t.Helper()
		ft, payload, err := next()
		if err != nil || ft != FrameHello {
			t.Fatalf("frame 1: type %v err %v", ft, err)
		}
		h, err := ParseHello(payload)
		if err != nil || h.MinVersion != 1 || h.MaxVersion != 3 {
			t.Fatalf("hello: %+v err %v", h, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameHelloAck {
			t.Fatalf("frame 2: type %v err %v", ft, err)
		}
		ha, err := ParseHelloAck(payload)
		if err != nil || ha.Dim != 8 || ha.Horizon != 512 || ha.Mechanism != "gradient" || ha.Server != "v1.2.3" {
			t.Fatalf("hello-ack: %+v err %v", ha, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameObserve {
			t.Fatalf("frame 3: type %v err %v", ft, err)
		}
		oh, err := ParseObserveHeader(payload, 4)
		if err != nil {
			t.Fatalf("observe header: %v", err)
		}
		if oh.ReqID != 7 || string(oh.ID) != "stream-a" || oh.Rows != 2 || !oh.Forwarded() {
			t.Fatalf("observe header: %+v", oh)
		}
		gotXs := make([]float64, 8)
		gotYs := make([]float64, 2)
		if err := oh.DecodeRows(gotXs, gotYs); err != nil {
			t.Fatalf("decode rows: %v", err)
		}
		for i, v := range xs {
			if math.Float64bits(gotXs[i]) != math.Float64bits(v) {
				t.Fatalf("x[%d]: got %v want %v (bit-exact)", i, gotXs[i], v)
			}
		}
		for i, v := range ys {
			if math.Float64bits(gotYs[i]) != math.Float64bits(v) {
				t.Fatalf("y[%d]: got %v want %v", i, gotYs[i], v)
			}
		}
		ft, payload, err = next()
		if err != nil || ft != FrameEstimate {
			t.Fatalf("frame 4: type %v err %v", ft, err)
		}
		er, err := ParseEstimate(payload)
		if err != nil || er.ReqID != 8 || string(er.ID) != "stream-a" || er.Forwarded() {
			t.Fatalf("estimate: %+v err %v", er, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameAck {
			t.Fatalf("frame 5: type %v err %v", ft, err)
		}
		ack, err := ParseAck(payload)
		if err != nil || ack.ReqID != 7 || ack.Applied != 2 || ack.Len != 40 {
			t.Fatalf("ack: %+v err %v", ack, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameEstimateAck {
			t.Fatalf("frame 6: type %v err %v", ft, err)
		}
		ea, err := ParseEstimateAck(payload)
		if err != nil || ea.ReqID != 8 || ea.Len != 40 || len(ea.Estimate) != 4 || ea.Estimate[1] != -2 {
			t.Fatalf("estimate-ack: %+v err %v", ea, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameNack {
			t.Fatalf("frame 7: type %v err %v", ft, err)
		}
		nk, err := ParseNack(payload)
		if err != nil || nk.Code != NackQueueFull || nk.RetryAfter != 3 || nk.Msg != "queue full" {
			t.Fatalf("nack: %+v err %v", nk, err)
		}
		ft, payload, err = next()
		if err != nil || ft != FrameError {
			t.Fatalf("frame 8: type %v err %v", ft, err)
		}
		if perr := ParseError(payload); perr == nil || perr.Error() != "wire: peer error: fatal" {
			t.Fatalf("error frame: %v", perr)
		}
	}

	t.Run("slice", func(t *testing.T) {
		rest := b.Bytes()
		check(t, func() (FrameType, []byte, error) {
			ft, payload, n, err := DecodeFrame(rest)
			rest = rest[n:]
			return ft, payload, err
		})
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
	})
	t.Run("reader", func(t *testing.T) {
		r := NewReader(bytes.NewReader(b.Bytes()))
		check(t, r.Next)
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	})
}

// TestCorruptFrames checks that damaged envelopes produce the right
// connection-fatal errors rather than garbage parses.
func TestCorruptFrames(t *testing.T) {
	var b Builder
	AppendAck(&b, Ack{ReqID: 1, Applied: 2, Len: 3})
	good := b.Bytes()

	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[7] ^= 0x40 // payload byte
		if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("want ErrBadCRC, got %v", err)
		}
	})
	t.Run("crc flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 1
		if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("want ErrBadCRC, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut++ {
			if _, _, _, err := DecodeFrame(good[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
			}
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad, MaxFrame+1)
		if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
		r := NewReader(bytes.NewReader(bad))
		if _, _, err := r.Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("reader: want ErrFrameTooLarge, got %v", err)
		}
	})
	t.Run("zero length", func(t *testing.T) {
		bad := []byte{0, 0, 0, 0, 1, 2, 3, 4}
		if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
}

// TestObserveHeaderValidation exercises the admission checks a hostile or
// buggy client can trip: row counts inconsistent with the payload, absurd
// IDs, dimension mismatches.
func TestObserveHeaderValidation(t *testing.T) {
	var b Builder
	AppendObserve(&b, 1, 0, "s", -1, 4, make([]float64, 8), make([]float64, 2))
	_, payload, _, err := DecodeFrame(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ParseObserveHeader(payload, 4); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	// Same frame against a different negotiated dimension must fail.
	if _, err := ParseObserveHeader(payload, 8); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// Corrupt the row count (offset: reqID 8 + flags 1 + idLen 2 + id 1 = 12).
	bad := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(bad[12:], 1<<31)
	if _, err := ParseObserveHeader(bad, 4); err == nil {
		t.Fatal("hostile row count accepted")
	}
	binary.LittleEndian.PutUint32(bad[12:], 0)
	if _, err := ParseObserveHeader(bad, 4); err == nil {
		t.Fatal("zero row count accepted")
	}
	// Empty stream ID.
	var b2 Builder
	AppendObserve(&b2, 1, 0, "", -1, 4, make([]float64, 4), make([]float64, 1))
	_, payload2, _, err := DecodeFrame(b2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseObserveHeader(payload2, 4); err == nil {
		t.Fatal("empty stream id accepted")
	}
}

// TestHelloValidation checks the magic and version-range guards.
func TestHelloValidation(t *testing.T) {
	var b Builder
	AppendHello(&b, Hello{MinVersion: 2, MaxVersion: 1})
	_, payload, _, err := DecodeFrame(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHello(payload); err == nil {
		t.Fatal("empty version range accepted")
	}
	if _, err := ParseHello([]byte("HTTP/1.1 200 OK")); err == nil {
		t.Fatal("plaintext accepted as hello")
	}
}

// TestClusterFrameRoundTrip covers the version-2 cluster frames: ring
// request/reply and segment push.
func TestClusterFrameRoundTrip(t *testing.T) {
	var b Builder
	AppendRingReq(&b, 11)
	ringJSON := []byte(`{"version":3,"replicas":2,"vnodes":64,"nodes":[{"id":"a","addr":"x"}]}`)
	AppendRingAck(&b, RingAck{ReqID: 11, Version: 3, Ring: ringJSON})
	seg := []byte("PRSG-fake-segment-bytes")
	AppendSegmentPush(&b, SegmentPush{ReqID: 12, RingV: 3, Length: 77, Standby: true, Data: seg})

	rest := b.Bytes()
	ft, payload, n, err := DecodeFrame(rest)
	if err != nil || ft != FrameRing {
		t.Fatalf("ring req: type %v err %v", ft, err)
	}
	rr, err := ParseRingReq(payload)
	if err != nil || rr.ReqID != 11 {
		t.Fatalf("ring req: %+v err %v", rr, err)
	}
	rest = rest[n:]

	ft, payload, n, err = DecodeFrame(rest)
	if err != nil || ft != FrameRingAck {
		t.Fatalf("ring ack: type %v err %v", ft, err)
	}
	ra, err := ParseRingAck(payload)
	if err != nil || ra.ReqID != 11 || ra.Version != 3 || !bytes.Equal(ra.Ring, ringJSON) {
		t.Fatalf("ring ack: %+v err %v", ra, err)
	}
	rest = rest[n:]

	ft, payload, _, err = DecodeFrame(rest)
	if err != nil || ft != FrameSegmentPush {
		t.Fatalf("segment push: type %v err %v", ft, err)
	}
	sp, err := ParseSegmentPush(payload)
	if err != nil || sp.ReqID != 12 || sp.RingV != 3 || sp.Length != 77 || !sp.Standby || !bytes.Equal(sp.Data, seg) {
		t.Fatalf("segment push: %+v err %v", sp, err)
	}

	// An empty segment push must be rejected at parse time.
	var b2 Builder
	AppendSegmentPush(&b2, SegmentPush{ReqID: 13})
	_, payload2, _, err := DecodeFrame(b2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSegmentPush(payload2); err == nil {
		t.Fatal("empty segment push accepted")
	}
}

// TestReaderReusesBuffer pins the zero-steady-state-allocation property of
// the frame reader: decoding a second frame of equal size must not allocate
// a fresh buffer.
func TestReaderReusesBuffer(t *testing.T) {
	var b Builder
	for i := 0; i < 64; i++ {
		AppendAck(&b, Ack{ReqID: uint64(i)})
	}
	r := NewReader(bytes.NewReader(b.Bytes()))
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(32, func() {
		if _, _, err := r.Next(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Reader.Next allocates %.1f per frame; want 0", allocs)
	}
}
