//go:build ignore

// Command gen_corpus regenerates the named seed entries in
// testdata/fuzz/FuzzFrameDecode. Run from this directory:
//
//	go run gen_corpus.go
//
// Each entry is one well-formed frame of a type the fuzzer should know how
// to reach without having to invent the envelope (magic, CRC, length) by
// mutation alone. Hash-named files alongside these are fuzzer-found
// regressions; never edit those by hand.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"privreg/internal/wire"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	write := func(name string, build func(b *wire.Builder)) {
		var b wire.Builder
		build(&b)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b.Bytes())) + ")"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", filepath.Join(dir, name))
	}

	write("seed-ring-req", func(b *wire.Builder) { wire.AppendRingReq(b, 21) })
	write("seed-ring-ack", func(b *wire.Builder) {
		wire.AppendRingAck(b, wire.RingAck{ReqID: 21, Version: 3, Ring: []byte(`{"version":3,"nodes":[{"id":"a"},{"id":"b"}]}`)})
	})
	write("seed-segment-push", func(b *wire.Builder) {
		wire.AppendSegmentPush(b, wire.SegmentPush{ReqID: 22, RingV: 3, Length: 17, Standby: true, Data: []byte("PRSGseedbytes")})
	})
	write("seed-ping", func(b *wire.Builder) {
		wire.AppendPing(b, wire.Ping{ReqID: 23, From: "node-a", Members: []wire.Member{
			{ID: "node-a", State: 0, Incarnation: 4},
			{ID: "node-b", State: 1, Incarnation: 2},
		}})
	})
	write("seed-ping-req", func(b *wire.Builder) {
		wire.AppendPingReq(b, wire.PingReq{ReqID: 24, From: "node-a", Target: "node-c", Members: []wire.Member{
			{ID: "node-c", State: 1, Incarnation: 9},
		}})
	})
	write("seed-gossip", func(b *wire.Builder) {
		wire.AppendGossip(b, wire.Gossip{ReqID: 24, OK: true, From: "node-c", Members: []wire.Member{
			{ID: "node-c", State: 0, Incarnation: 10},
		}})
	})
	write("seed-replicate", func(b *wire.Builder) {
		wire.AppendReplicate(b, 25, 3, "stream-r", 120, 2,
			[]float64{0.5, -0.5, 0.25, -0.25}, []float64{1, -1})
	})
	write("seed-replicate-multi", func(b *wire.Builder) {
		wire.AppendReplicate(b, 26, 3, "stream-m", 8, 2,
			[]float64{0.5, -0.5, 0.25, -0.25}, []float64{1, -1, 2, -2, 3, -3})
	})
	write("seed-observe-multi", func(b *wire.Builder) {
		wire.AppendObserve(b, 27, 0, "stream-m", -1, 2,
			[]float64{0.5, -0.5, 0.25, -0.25}, []float64{1, -1, 2, -2, 3, -3})
	})
	write("seed-estimate-outcome", func(b *wire.Builder) {
		wire.AppendEstimate(b, 28, 0, "stream-m", 2)
	})
}
