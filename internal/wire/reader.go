package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reader decodes a frame stream from an io.Reader. The frame buffer is
// reused across Next calls, so one long-lived connection decodes any number
// of frames with zero steady-state allocation.
type Reader struct {
	br  *bufio.Reader
	buf []byte // reused frame body (type + payload)
	hdr [4]byte
	crc [4]byte
}

// readerBufSize is the bufio buffer behind a connection reader: large enough
// that a typical observe frame (a few KiB) arrives in one syscall.
const readerBufSize = 64 << 10

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, readerBufSize)}
}

// Next reads one frame and returns its type and payload. The payload aliases
// the reader's internal buffer and is valid only until the next call. Any
// framing error (truncation, oversized length, CRC mismatch) is
// connection-fatal: the stream position can no longer be trusted, and the
// caller must close the connection.
func (r *Reader) Next() (FrameType, []byte, error) {
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		// A clean EOF between frames is the normal connection close; an EOF
		// inside the length prefix is a truncated frame.
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(r.hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrTruncated)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return 0, nil, ErrTruncated
	}
	if _, err := io.ReadFull(r.br, r.crc[:]); err != nil {
		return 0, nil, ErrTruncated
	}
	if binary.LittleEndian.Uint32(r.crc[:]) != crcOf(body) {
		return 0, nil, ErrBadCRC
	}
	return FrameType(body[0]), body[1:], nil
}

// DecodeFrame parses one frame from a byte slice (no io), returning the
// type, payload, and the number of bytes consumed. It is the fuzzing surface
// and the building block for tests that assemble multi-frame buffers; the
// connection paths use Reader. The payload aliases b.
func DecodeFrame(b []byte) (t FrameType, payload []byte, consumed int, err error) {
	if len(b) < 4 {
		return 0, nil, 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 {
		return 0, nil, 0, fmt.Errorf("%w: zero-length frame", ErrTruncated)
	}
	if n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	total := 4 + int(n) + 4
	if len(b) < total {
		return 0, nil, 0, ErrTruncated
	}
	body := b[4 : 4+n]
	if binary.LittleEndian.Uint32(b[4+n:]) != crcOf(body) {
		return 0, nil, 0, ErrBadCRC
	}
	return FrameType(body[0]), body[1:], total, nil
}
