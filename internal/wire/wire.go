// Package wire implements the compact framed binary protocol of the privreg
// serving edge: the hot ingest/estimate path spoken over persistent TCP
// connections, negotiated alongside (not instead of) the HTTP/JSON API.
//
// The JSON edge tops out parsing documents — at serving batch sizes the
// network layer costs more than the DP mechanisms behind it. This protocol
// removes that ceiling: observations travel as length-prefixed, CRC-checked
// frames of raw little-endian float64 rows, so the server-side decode is a
// bounds check plus a bit-pattern copy straight into estimator-owned buffers
// (no intermediate row-slice structures, no text parsing), and one connection
// carries any number of streams (frames for different streams interleave
// freely and coalesce in the server's group-commit ingester).
//
// # Framing
//
// Every frame has the same envelope (all integers little-endian, the
// convention internal/codec established for the checkpoint formats):
//
//	u32  n        byte length of what follows, excluding the trailing CRC
//	u8   type     frame type (the first of the n bytes)
//	...  payload  n-1 bytes
//	u32  crc      CRC-32 (IEEE) over the n bytes (type + payload)
//
// A connection opens with a Hello/HelloAck version negotiation and then
// carries request frames (Observe, Estimate) upstream and response frames
// (Ack, EstimateAck, Nack) downstream. Requests carry a client-chosen u64
// request ID echoed by the matching response, so responses may be awaited
// out of order and many requests can be in flight at once. Error frames are
// connection-fatal in both directions: the sender reports why and closes.
//
// # Backpressure
//
// The server applies the same admission control as the HTTP edge, expressed
// as Nack frames instead of status codes: NackQueueFull carries the same
// Retry-After derivation as the HTTP 429 (EWMA drain-rate share plus
// jitter), NackDraining is the 503 analogue, NackStreamFull the 409, and
// NackBadRequest the 400. A drain finishes every queued observation and
// flushes its acks before the connection closes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic opens every Hello payload; it is what lets a server reject a stray
// HTTP request (or any other plaintext) aimed at the wire port with a clean
// error instead of a confusing CRC failure deep into the stream.
const Magic = "PRWB"

// Version is the protocol version this package speaks. Hello carries the
// client's supported range; the server picks the highest version both sides
// share and echoes it in HelloAck.
//
// Version 3 (the membership protocol) added the Ping/PingReq/Gossip frames
// the SWIM failure detector probes and piggybacks membership state with, the
// Replicate frame that ships applied batches to warm standbys between
// segment snapshots, the FlagOffset conditional-ingest extension to Observe
// (an expected stream offset, making retries exactly-once across an owner
// crash), and the NackConflict code that rejects a mismatched offset.
//
// Version 2 (the cluster protocol) added a flags byte to Observe and
// Estimate payloads (FlagForwarded), a build-version string to HelloAck, and
// the Ring/RingAck/SegmentPush frames the cluster layer routes and migrates
// with. Older peers are not supported — the protocol is repo-internal and
// both ends ship together.
const Version = 3

// MaxFrame bounds the encoded size of a single frame (type + payload). It
// exists so a corrupt or adversarial length prefix cannot make a reader
// allocate gigabytes before the CRC check has a chance to reject the frame.
// At dim 512 it still leaves room for batches of thousands of rows.
const MaxFrame = 1 << 24

// FrameType identifies a frame. The zero value is invalid so an all-zeros
// buffer never parses.
type FrameType uint8

// Frame types. Hello/HelloAck appear exactly once per connection, in that
// order; everything after is requests upstream, responses downstream.
const (
	FrameHello       FrameType = 1  // client → server: magic + supported version range
	FrameHelloAck    FrameType = 2  // server → client: chosen version + pool shape
	FrameObserve     FrameType = 3  // client → server: batched rows for one stream
	FrameEstimate    FrameType = 4  // client → server: estimate request
	FrameAck         FrameType = 5  // server → client: observe accepted and applied
	FrameEstimateAck FrameType = 6  // server → client: estimate vector
	FrameNack        FrameType = 7  // server → client: request rejected (retryable or not)
	FrameError       FrameType = 8  // either direction: fatal protocol error, then close
	FrameRing        FrameType = 9  // client → server: request the current ring
	FrameRingAck     FrameType = 10 // server → client: versioned ring state (JSON blob)
	FrameSegmentPush FrameType = 11 // node → node: one stream's segment file (handoff/replication)
	FramePing        FrameType = 12 // node → node: SWIM direct probe (carries piggybacked membership)
	FramePingReq     FrameType = 13 // node → node: SWIM indirect probe request (probe target for me)
	FrameGossip      FrameType = 14 // node → node: membership table; also the ack for Ping/PingReq
	FrameReplicate   FrameType = 15 // owner → standby: one applied batch, buffered for promotion replay
)

// Request flags, carried by Observe and Estimate after the request ID.
const (
	// FlagForwarded marks a request relayed by a peer's forwarding proxy:
	// the receiver must serve it locally even if its ring says another node
	// owns the stream, which is what keeps a ring-version skew window from
	// bouncing a request between nodes forever.
	FlagForwarded uint8 = 1 << 0
	// FlagOffset marks an Observe that carries an expected stream offset (a
	// u64 after the flags byte): apply only if the stream currently holds
	// exactly that many points, ack without applying if the batch is already
	// in (an exact duplicate of a retried request), and reject with
	// NackConflict otherwise. This is what makes client retries exactly-once
	// across an owner crash and standby promotion.
	FlagOffset uint8 = 1 << 1
	// FlagOutcome marks an Estimate that carries an outcome index (a u16
	// after the stream ID) selecting one regression of a multi-outcome pool.
	// Absent, the request reads outcome 0, which is what keeps single-outcome
	// clients byte-identical on the wire.
	FlagOutcome uint8 = 1 << 2
)

// maxOutcomes bounds the outcome columns a multi-outcome frame may carry; it
// exists so a hostile frame cannot claim a row shape that makes the server
// size absurd buffers.
const maxOutcomes = 1 << 12

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameObserve:
		return "observe"
	case FrameEstimate:
		return "estimate"
	case FrameAck:
		return "ack"
	case FrameEstimateAck:
		return "estimate-ack"
	case FrameNack:
		return "nack"
	case FrameError:
		return "error"
	case FrameRing:
		return "ring"
	case FrameRingAck:
		return "ring-ack"
	case FrameSegmentPush:
		return "segment-push"
	case FramePing:
		return "ping"
	case FramePingReq:
		return "ping-req"
	case FrameGossip:
		return "gossip"
	case FrameReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// NackCode says why a request was rejected and whether retrying can help.
type NackCode uint8

// Nack codes, mirroring the HTTP edge's status mapping.
const (
	NackQueueFull     NackCode = 1 // retryable: stream ingest queue full (HTTP 429)
	NackDraining      NackCode = 2 // server shutting down (HTTP 503)
	NackStreamFull    NackCode = 3 // horizon overrun, batch rejected whole (HTTP 409)
	NackUnknownStream NackCode = 4 // estimate for a stream that never observed (HTTP 404)
	NackBadRequest    NackCode = 5 // malformed request (HTTP 400)
	NackNotOwner      NackCode = 6 // retryable: node neither owns the stream nor could forward it
	NackImporting     NackCode = 7 // retryable: node is importing handoff segments for this stream's shard
	NackConflict      NackCode = 8 // conditional observe offset mismatch (HTTP 409); not retryable
)

func (c NackCode) String() string {
	switch c {
	case NackQueueFull:
		return "queue-full"
	case NackDraining:
		return "draining"
	case NackStreamFull:
		return "stream-full"
	case NackUnknownStream:
		return "unknown-stream"
	case NackBadRequest:
		return "bad-request"
	case NackNotOwner:
		return "not-owner"
	case NackImporting:
		return "importing"
	case NackConflict:
		return "conflict"
	default:
		return fmt.Sprintf("nack(%d)", uint8(c))
	}
}

// Code returns the snake_case machine-readable identifier for the code, the
// form both transports expose: the HTTP error envelope's "code" field and
// the wire Nack carry the same taxonomy, one name per Nack constant.
func (c NackCode) Code() string {
	switch c {
	case NackQueueFull:
		return "queue_full"
	case NackDraining:
		return "draining"
	case NackStreamFull:
		return "stream_full"
	case NackUnknownStream:
		return "unknown_stream"
	case NackBadRequest:
		return "bad_request"
	case NackNotOwner:
		return "not_owner"
	case NackImporting:
		return "importing"
	case NackConflict:
		return "conflict"
	default:
		return fmt.Sprintf("nack_%d", uint8(c))
	}
}

// Retryable reports whether a request rejected with this code can succeed on
// retry: queue pressure drains, ring skew converges, and import windows
// close; the rest are permanent for the same request.
func (c NackCode) Retryable() bool {
	switch c {
	case NackQueueFull, NackNotOwner, NackImporting:
		return true
	default:
		return false
	}
}

// Framing errors. ErrFrameTooLarge and ErrBadCRC are connection-fatal: after
// either, the stream position can no longer be trusted.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")
	ErrBadCRC        = errors.New("wire: frame CRC mismatch")
	ErrTruncated     = errors.New("wire: truncated frame")
)

// maxIDLen bounds stream IDs on the wire; IDs are routing keys, not
// documents.
const maxIDLen = 1 << 10

// frameOverhead is the envelope cost around a payload: u32 length, u8 type,
// u32 CRC.
const frameOverhead = 4 + 1 + 4

// crcOf is the per-frame checksum: CRC-32 (IEEE) over type byte + payload,
// the same polynomial the checkpoint segment files use. It catches the
// failure modes networks and kernels actually produce — truncation, bit
// flips, interleaved writes — not adversaries.
func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Builder assembles frames into a reusable buffer. The zero value is ready;
// a Builder is not safe for concurrent use. Typical use appends one or more
// frames with Begin/…/Finish and writes Bytes() to the connection in a
// single write.
type Builder struct {
	buf   []byte
	start int // offset of the current frame's length prefix
}

// Reset discards buffered frames, keeping capacity.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Bytes returns every finished frame appended since the last Reset.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the buffered byte count.
func (b *Builder) Len() int { return len(b.buf) }

// Begin opens a frame of the given type. Each Begin must be matched by
// Finish before the next Begin.
func (b *Builder) Begin(t FrameType) {
	b.start = len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0) // length backpatched by Finish
	b.buf = append(b.buf, byte(t))
}

// Finish closes the frame opened by Begin: backpatches the length prefix and
// appends the CRC.
func (b *Builder) Finish() {
	body := b.buf[b.start+4:] // type + payload
	binary.LittleEndian.PutUint32(b.buf[b.start:], uint32(len(body)))
	b.buf = binary.LittleEndian.AppendUint32(b.buf, crcOf(body))
}

// U8 appends one byte to the open frame's payload.
func (b *Builder) U8(v uint8) { b.buf = append(b.buf, v) }

// U16 appends a little-endian uint16.
func (b *Builder) U16(v uint16) { b.buf = binary.LittleEndian.AppendUint16(b.buf, v) }

// U32 appends a little-endian uint32.
func (b *Builder) U32(v uint32) { b.buf = binary.LittleEndian.AppendUint32(b.buf, v) }

// U64 appends a little-endian uint64.
func (b *Builder) U64(v uint64) { b.buf = binary.LittleEndian.AppendUint64(b.buf, v) }

// F64 appends a float64 by its IEEE-754 bit pattern, preserving the exact
// value — the property the bit-identical shadow verification rides on.
func (b *Builder) F64(v float64) { b.U64(math.Float64bits(v)) }

// F64s appends a run of float64s with no length prefix (the frame header
// carries the counts).
func (b *Builder) F64s(vs []float64) {
	// Appending bit patterns in a tight loop is the whole encode path: no
	// reflection, no text, no per-element allocation.
	for _, v := range vs {
		b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
	}
}

// Str16 appends a u16 length-prefixed string (stream IDs, error messages).
func (b *Builder) Str16(s string) {
	b.U16(uint16(len(s)))
	b.buf = append(b.buf, s...)
}

// Payload is a sticky-error cursor over one frame's payload, the decode-side
// mirror of Builder (and of internal/codec.Reader: first error wins, later
// reads are no-ops, so decoders read straight-line and check once).
type Payload struct {
	buf []byte
	off int
	err error
}

// NewPayload wraps a payload slice for decoding.
func NewPayload(b []byte) Payload { return Payload{buf: b} }

// Err returns the first decode error, or nil.
func (p *Payload) Err() error { return p.err }

// Remaining returns the number of unread bytes.
func (p *Payload) Remaining() int { return len(p.buf) - p.off }

func (p *Payload) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

func (p *Payload) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || len(p.buf)-p.off < n {
		p.fail(ErrTruncated)
		return nil
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

// U8 reads one byte.
func (p *Payload) U8() uint8 {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (p *Payload) U16() uint16 {
	b := p.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (p *Payload) U32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (p *Payload) U64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64 bit pattern.
func (p *Payload) F64() float64 { return math.Float64frombits(p.U64()) }

// Bytes16 reads a u16 length-prefixed byte slice, aliasing the payload (no
// copy); the slice is only valid until the frame buffer is reused.
func (p *Payload) Bytes16() []byte {
	n := int(p.U16())
	return p.take(n)
}

// Str16 reads a u16 length-prefixed string (copies, so it outlives the
// frame buffer).
func (p *Payload) Str16() string { return string(p.Bytes16()) }

// F64sInto fills dst from consecutive bit patterns. It is the hot decode
// primitive: one bounds check, then a straight copy of len(dst) words with
// no per-element error handling.
func (p *Payload) F64sInto(dst []float64) {
	b := p.take(8 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// Finish returns the first decode error, or an error if unread payload
// remains (the frame and the decoder disagree about the format).
func (p *Payload) Finish() error {
	if p.err != nil {
		return p.err
	}
	if p.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing payload bytes", p.Remaining())
	}
	return nil
}

// --- Typed frame payloads -------------------------------------------------

// Hello is the client's opening frame.
type Hello struct {
	// MinVersion and MaxVersion delimit the protocol versions the client
	// speaks (inclusive).
	MinVersion, MaxVersion uint16
}

// AppendHello appends a Hello frame.
func AppendHello(b *Builder, h Hello) {
	b.Begin(FrameHello)
	b.buf = append(b.buf, Magic...)
	b.U16(h.MinVersion)
	b.U16(h.MaxVersion)
	b.Finish()
}

// ParseHello decodes a Hello payload.
func ParseHello(payload []byte) (Hello, error) {
	var h Hello
	p := NewPayload(payload)
	if magic := p.take(len(Magic)); magic != nil && string(magic) != Magic {
		return h, fmt.Errorf("wire: not a privreg wire connection (bad magic %q)", magic)
	}
	h.MinVersion = p.U16()
	h.MaxVersion = p.U16()
	if err := p.Finish(); err != nil {
		return h, err
	}
	if h.MinVersion > h.MaxVersion {
		return h, fmt.Errorf("wire: hello version range [%d,%d] is empty", h.MinVersion, h.MaxVersion)
	}
	return h, nil
}

// HelloAck is the server's reply: the negotiated version plus the pool shape
// a client needs to frame observations (row width) and sanity-check that it
// is talking to the pool it thinks it is.
type HelloAck struct {
	Version   uint16
	Dim       uint32
	Horizon   uint64
	Mechanism string
	// Server is the serving binary's build identifier (ldflags-injected),
	// so clients and peers can detect mixed-version clusters mid-upgrade.
	Server string
	// Outcomes is the pool's outcome-column count (k responses per row); 1
	// for every single-outcome pool. It trails the frame so acks from older
	// servers (which omit it) still parse.
	Outcomes uint16
}

// AppendHelloAck appends a HelloAck frame.
func AppendHelloAck(b *Builder, a HelloAck) {
	b.Begin(FrameHelloAck)
	b.U16(a.Version)
	b.U32(a.Dim)
	b.U64(a.Horizon)
	b.Str16(a.Mechanism)
	b.Str16(a.Server)
	if a.Outcomes == 0 {
		a.Outcomes = 1
	}
	b.U16(a.Outcomes)
	b.Finish()
}

// ParseHelloAck decodes a HelloAck payload.
func ParseHelloAck(payload []byte) (HelloAck, error) {
	var a HelloAck
	p := NewPayload(payload)
	a.Version = p.U16()
	a.Dim = p.U32()
	a.Horizon = p.U64()
	a.Mechanism = p.Str16()
	a.Server = p.Str16()
	a.Outcomes = 1
	if p.Err() == nil && p.Remaining() > 0 {
		a.Outcomes = p.U16()
	}
	if err := p.Finish(); err != nil {
		return a, err
	}
	if a.Outcomes == 0 || a.Outcomes > maxOutcomes {
		return a, fmt.Errorf("wire: hello-ack outcome count %d outside [1,%d]", a.Outcomes, maxOutcomes)
	}
	return a, nil
}

// ObserveHeader describes an Observe frame before its row data is decoded:
// everything needed for admission control (stream, row count) without
// touching the floats. Rows is validated against the payload length, so a
// header that parses cleanly guarantees the row region is exactly
// Rows×(Dim+Outcomes) float64s. The outcome width is not framed explicitly:
// it is whatever exactly fills the payload after Rows×Dim covariates, which
// keeps the k=1 encoding bit-identical to the pre-multi-outcome format.
type ObserveHeader struct {
	ReqID uint64
	// Flags carries request flags (FlagForwarded, FlagOffset).
	Flags uint8
	// From is the expected stream offset when FlagOffset is set, -1
	// otherwise (unconditional apply).
	From int64
	// ID aliases the frame buffer (valid until the next read); the server
	// interns it per connection rather than allocating a string per frame.
	ID   []byte
	Rows int
	// Outcomes is the response-column count carried per row (k ≥ 1),
	// inferred from the payload length.
	Outcomes int
	rows     []byte // raw little-endian row region: Rows×Dim xs then Rows×Outcomes ys
	dim      int
}

// Forwarded reports whether a peer's proxy relayed this request.
func (h *ObserveHeader) Forwarded() bool { return h.Flags&FlagForwarded != 0 }

// AppendObserve appends an Observe frame: reqID, flags, stream ID, and rows
// in row-major order — xs is Rows×dim values, ys is Rows×k values for any
// k ≥ 1 (k=1 reproduces the single-outcome encoding byte for byte). from is
// the expected stream offset for conditional ingest, or -1 for unconditional
// (the FlagOffset bit is set or cleared to match).
func AppendObserve(b *Builder, reqID uint64, flags uint8, id string, from int64, dim int, xs, ys []float64) {
	b.Begin(FrameObserve)
	b.U64(reqID)
	if from >= 0 {
		flags |= FlagOffset
	} else {
		flags &^= FlagOffset
	}
	b.U8(flags)
	if from >= 0 {
		b.U64(uint64(from))
	}
	b.Str16(id)
	rows := len(ys)
	if dim > 0 {
		rows = len(xs) / dim
	}
	b.U32(uint32(rows))
	b.F64s(xs)
	b.F64s(ys)
	b.Finish()
}

// ParseObserveHeader decodes an Observe payload against the connection's
// negotiated dimension. The returned header aliases the payload.
func ParseObserveHeader(payload []byte, dim int) (ObserveHeader, error) {
	var h ObserveHeader
	p := NewPayload(payload)
	h.ReqID = p.U64()
	h.Flags = p.U8()
	h.From = -1
	if h.Flags&FlagOffset != 0 {
		from := p.U64()
		if from > math.MaxInt64 {
			return h, fmt.Errorf("wire: observe offset %d overflows", from)
		}
		h.From = int64(from)
	}
	h.ID = p.Bytes16()
	rows := p.U32()
	if p.Err() != nil {
		return h, p.Err()
	}
	if len(h.ID) == 0 || len(h.ID) > maxIDLen {
		return h, fmt.Errorf("wire: observe stream id length %d outside [1,%d]", len(h.ID), maxIDLen)
	}
	// Bound rows by what the remaining payload could possibly hold before
	// multiplying, so a hostile count cannot overflow the size check.
	if rows == 0 || uint64(rows) > uint64(p.Remaining())/8 {
		return h, fmt.Errorf("wire: observe row count %d inconsistent with %d payload bytes", rows, p.Remaining())
	}
	h.Rows = int(rows)
	h.dim = dim
	k, err := rowOutcomes(p.Remaining(), h.Rows, dim, "observe")
	if err != nil {
		return h, err
	}
	h.Outcomes = k
	h.rows = p.take(p.Remaining())
	return h, p.Finish()
}

// rowOutcomes infers the outcome-column count of a row region: the payload
// must hold exactly Rows×(dim+k) float64s for some 1 ≤ k ≤ maxOutcomes, and
// k is whatever makes that fit exact. A single-outcome frame (the historic
// format) infers k=1; anything that does not divide out cleanly is rejected
// before a single float is touched.
func rowOutcomes(remaining, rows, dim int, frame string) (int, error) {
	if remaining%8 == 0 && rows > 0 {
		if floats := remaining / 8; floats%rows == 0 {
			if k := floats/rows - dim; k >= 1 && k <= maxOutcomes {
				return k, nil
			}
		}
	}
	return 0, fmt.Errorf("wire: %s frame carries %d row bytes, want %d rows × (dim %d + k responses) for some k in [1,%d]", frame, remaining, rows, dim, maxOutcomes)
}

// DecodeRows fills xs (Rows×dim values, row-major) and ys (Rows×Outcomes
// values) straight from the frame's bit patterns. The caller supplies the
// destination — in the server that is the pooled flat buffer handed to the
// estimator, which is what makes the ingest path copy-once end to end.
func (h *ObserveHeader) DecodeRows(xs, ys []float64) error {
	if len(xs) != h.Rows*h.dim || len(ys) != h.Rows*h.Outcomes {
		return fmt.Errorf("wire: DecodeRows destination %d×%d does not match frame %d×%d", len(ys), len(xs), h.Rows*h.Outcomes, h.Rows*h.dim)
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(h.rows[8*i:]))
	}
	off := 8 * len(xs)
	for i := range ys {
		ys[i] = math.Float64frombits(binary.LittleEndian.Uint64(h.rows[off+8*i:]))
	}
	return nil
}

// EstimateReq is an Estimate frame: a request ID, flags, a stream, and the
// outcome index to read (0 unless FlagOutcome is set).
type EstimateReq struct {
	ReqID   uint64
	Flags   uint8
	ID      []byte // aliases the frame buffer
	Outcome int
}

// Forwarded reports whether a peer's proxy relayed this request.
func (e *EstimateReq) Forwarded() bool { return e.Flags&FlagForwarded != 0 }

// AppendEstimate appends an Estimate frame. A non-zero outcome selects one
// regression of a multi-outcome pool (the FlagOutcome bit is set or cleared
// to match); outcome 0 keeps the historic single-outcome encoding.
func AppendEstimate(b *Builder, reqID uint64, flags uint8, id string, outcome int) {
	b.Begin(FrameEstimate)
	b.U64(reqID)
	if outcome > 0 {
		flags |= FlagOutcome
	} else {
		flags &^= FlagOutcome
	}
	b.U8(flags)
	b.Str16(id)
	if outcome > 0 {
		b.U16(uint16(outcome))
	}
	b.Finish()
}

// ParseEstimate decodes an Estimate payload.
func ParseEstimate(payload []byte) (EstimateReq, error) {
	var e EstimateReq
	p := NewPayload(payload)
	e.ReqID = p.U64()
	e.Flags = p.U8()
	e.ID = p.Bytes16()
	if e.Flags&FlagOutcome != 0 {
		e.Outcome = int(p.U16())
	}
	if err := p.Finish(); err != nil {
		return e, err
	}
	if len(e.ID) == 0 || len(e.ID) > maxIDLen {
		return e, fmt.Errorf("wire: estimate stream id length %d outside [1,%d]", len(e.ID), maxIDLen)
	}
	if e.Outcome >= maxOutcomes {
		return e, fmt.Errorf("wire: estimate outcome index %d outside [0,%d)", e.Outcome, maxOutcomes)
	}
	return e, nil
}

// Ack confirms an Observe: the points are applied to the private state (the
// wire analogue of the HTTP 200 — ack-after-apply, never ack-then-apply).
type Ack struct {
	ReqID   uint64
	Applied uint32 // points applied by this request
	Len     uint64 // stream length after applying
}

// AppendAck appends an Ack frame.
func AppendAck(b *Builder, a Ack) {
	b.Begin(FrameAck)
	b.U64(a.ReqID)
	b.U32(a.Applied)
	b.U64(a.Len)
	b.Finish()
}

// ParseAck decodes an Ack payload.
func ParseAck(payload []byte) (Ack, error) {
	var a Ack
	p := NewPayload(payload)
	a.ReqID = p.U64()
	a.Applied = p.U32()
	a.Len = p.U64()
	return a, p.Finish()
}

// EstimateAck carries an estimate vector back to the client.
type EstimateAck struct {
	ReqID    uint64
	Len      uint64
	Estimate []float64
}

// AppendEstimateAck appends an EstimateAck frame.
func AppendEstimateAck(b *Builder, a EstimateAck) {
	b.Begin(FrameEstimateAck)
	b.U64(a.ReqID)
	b.U64(a.Len)
	b.U32(uint32(len(a.Estimate)))
	b.F64s(a.Estimate)
	b.Finish()
}

// ParseEstimateAck decodes an EstimateAck payload.
func ParseEstimateAck(payload []byte) (EstimateAck, error) {
	var a EstimateAck
	p := NewPayload(payload)
	a.ReqID = p.U64()
	a.Len = p.U64()
	n := p.U32()
	if p.Err() != nil {
		return a, p.Err()
	}
	if uint64(n) != uint64(p.Remaining())/8 || p.Remaining()%8 != 0 {
		return a, fmt.Errorf("wire: estimate-ack dimension %d inconsistent with %d payload bytes", n, p.Remaining())
	}
	a.Estimate = make([]float64, n)
	p.F64sInto(a.Estimate)
	return a, p.Finish()
}

// Nack rejects one request, retryably or not.
type Nack struct {
	ReqID      uint64
	Code       NackCode
	RetryAfter uint16 // seconds; meaningful only for NackQueueFull
	Msg        string
}

// AppendNack appends a Nack frame.
func AppendNack(b *Builder, n Nack) {
	b.Begin(FrameNack)
	b.U64(n.ReqID)
	b.U8(uint8(n.Code))
	b.U16(n.RetryAfter)
	b.Str16(n.Msg)
	b.Finish()
}

// ParseNack decodes a Nack payload.
func ParseNack(payload []byte) (Nack, error) {
	var n Nack
	p := NewPayload(payload)
	n.ReqID = p.U64()
	n.Code = NackCode(p.U8())
	n.RetryAfter = p.U16()
	n.Msg = p.Str16()
	return n, p.Finish()
}

// AppendError appends a connection-fatal Error frame.
func AppendError(b *Builder, msg string) {
	b.Begin(FrameError)
	b.Str16(msg)
	b.Finish()
}

// ParseError decodes an Error payload into a Go error.
func ParseError(payload []byte) error {
	p := NewPayload(payload)
	msg := p.Str16()
	if err := p.Finish(); err != nil {
		return err
	}
	return fmt.Errorf("wire: peer error: %s", msg)
}

// --- Cluster frames -------------------------------------------------------

// RingReq asks the server for its current cluster ring.
type RingReq struct {
	ReqID uint64
}

// AppendRingReq appends a Ring request frame.
func AppendRingReq(b *Builder, reqID uint64) {
	b.Begin(FrameRing)
	b.U64(reqID)
	b.Finish()
}

// ParseRingReq decodes a Ring request payload.
func ParseRingReq(payload []byte) (RingReq, error) {
	var r RingReq
	p := NewPayload(payload)
	r.ReqID = p.U64()
	return r, p.Finish()
}

// RingAck carries the server's ring state: a version (so clients can skip
// decoding rings they already hold) and the same JSON document GET /v1/ring
// serves. Ring exchange is rare and tiny next to observe traffic, so reusing
// the JSON codec keeps exactly one serialized ring format in the system.
type RingAck struct {
	ReqID   uint64
	Version uint64
	Ring    []byte // aliases the frame buffer
}

// AppendRingAck appends a RingAck frame.
func AppendRingAck(b *Builder, a RingAck) {
	b.Begin(FrameRingAck)
	b.U64(a.ReqID)
	b.U64(a.Version)
	b.U32(uint32(len(a.Ring)))
	b.buf = append(b.buf, a.Ring...)
	b.Finish()
}

// ParseRingAck decodes a RingAck payload. The Ring slice aliases the payload.
func ParseRingAck(payload []byte) (RingAck, error) {
	var a RingAck
	p := NewPayload(payload)
	a.ReqID = p.U64()
	a.Version = p.U64()
	n := p.U32()
	if p.Err() != nil {
		return a, p.Err()
	}
	a.Ring = p.take(int(n))
	return a, p.Finish()
}

// SegmentPush ships one stream's checkpoint segment to a peer, during live
// handoff (ownership moving) or warm-standby replication (a copy for the
// stream's successor). Data is a complete segment file as written by the
// spill store — CRC-framed, self-describing — and Length is the stream's
// point count at export time, which the importer needs because segment
// files deliberately do not duplicate it. Answered with Ack (imported) or
// Nack (rejected; NackImporting/NackQueueFull are retryable).
//
// A segment must fit in MaxFrame along with its envelope; the spill store's
// segments are estimator state (KBs to a few MBs), far under the 16 MiB
// bound.
type SegmentPush struct {
	ReqID   uint64
	RingV   uint64 // sender's ring version, for skew diagnostics
	Length  uint64 // stream length the segment encodes
	Standby bool   // true for replication copies, false for handoff
	Data    []byte // aliases the frame buffer
}

// AppendSegmentPush appends a SegmentPush frame.
func AppendSegmentPush(b *Builder, sp SegmentPush) {
	b.Begin(FrameSegmentPush)
	b.U64(sp.ReqID)
	b.U64(sp.RingV)
	b.U64(sp.Length)
	if sp.Standby {
		b.U8(1)
	} else {
		b.U8(0)
	}
	b.U32(uint32(len(sp.Data)))
	b.buf = append(b.buf, sp.Data...)
	b.Finish()
}

// ParseSegmentPush decodes a SegmentPush payload. Data aliases the payload.
func ParseSegmentPush(payload []byte) (SegmentPush, error) {
	var sp SegmentPush
	p := NewPayload(payload)
	sp.ReqID = p.U64()
	sp.RingV = p.U64()
	sp.Length = p.U64()
	sp.Standby = p.U8() != 0
	n := p.U32()
	if p.Err() != nil {
		return sp, p.Err()
	}
	sp.Data = p.take(int(n))
	if err := p.Finish(); err != nil {
		return sp, err
	}
	if len(sp.Data) == 0 {
		return sp, fmt.Errorf("wire: segment-push carries no segment data")
	}
	return sp, nil
}

// --- Membership frames ----------------------------------------------------
//
// The SWIM failure detector speaks three frames over the same wire port the
// data path uses. Every probe piggybacks the sender's full membership table
// and every ack carries the receiver's back, so membership state spreads
// epidemically with no dedicated gossip timer — the probe schedule IS the
// gossip schedule. Tables are tiny (a handful of members, ~20 bytes each),
// so "full table" beats delta bookkeeping at this cluster scale.

// Member is one row of a gossiped membership table: who, what the sender
// believes about them, and the incarnation that belief is anchored to.
// States are the detector's (alive/suspect/dead/left); the wire carries them
// as opaque u8s so the package does not depend on the detector.
type Member struct {
	ID          string
	State       uint8
	Incarnation uint64
}

// maxMembers bounds a gossiped table; membership is a per-node cluster
// roster, not a data plane.
const maxMembers = 1 << 12

func appendMembers(b *Builder, members []Member) {
	b.U16(uint16(len(members)))
	for _, m := range members {
		b.Str16(m.ID)
		b.U8(m.State)
		b.U64(m.Incarnation)
	}
}

func parseMembers(p *Payload) ([]Member, error) {
	n := int(p.U16())
	if p.Err() != nil {
		return nil, p.Err()
	}
	if n > maxMembers {
		return nil, fmt.Errorf("wire: gossip table of %d members exceeds bound %d", n, maxMembers)
	}
	members := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		var m Member
		m.ID = p.Str16()
		m.State = p.U8()
		m.Incarnation = p.U64()
		if p.Err() != nil {
			return nil, p.Err()
		}
		if m.ID == "" || len(m.ID) > maxIDLen {
			return nil, fmt.Errorf("wire: gossip member id length %d outside [1,%d]", len(m.ID), maxIDLen)
		}
		members = append(members, m)
	}
	return members, nil
}

// Ping is a direct SWIM probe: "are you alive?", plus the sender's
// membership table. Answered with a Gossip frame (OK=1).
type Ping struct {
	ReqID   uint64
	From    string // sender's node ID
	Members []Member
}

// AppendPing appends a Ping frame.
func AppendPing(b *Builder, pg Ping) {
	b.Begin(FramePing)
	b.U64(pg.ReqID)
	b.Str16(pg.From)
	appendMembers(b, pg.Members)
	b.Finish()
}

// ParsePing decodes a Ping payload.
func ParsePing(payload []byte) (Ping, error) {
	var pg Ping
	p := NewPayload(payload)
	pg.ReqID = p.U64()
	pg.From = p.Str16()
	var err error
	if pg.Members, err = parseMembers(&p); err != nil {
		return pg, err
	}
	return pg, p.Finish()
}

// PingReq is an indirect SWIM probe: "probe Target on my behalf". The
// receiver probes Target itself and answers with a Gossip frame whose OK
// flag reports whether Target acked — a second, independent network path to
// the target before the sender escalates to suspicion.
type PingReq struct {
	ReqID   uint64
	From    string // originator's node ID
	Target  string // node to probe
	Members []Member
}

// AppendPingReq appends a PingReq frame.
func AppendPingReq(b *Builder, pr PingReq) {
	b.Begin(FramePingReq)
	b.U64(pr.ReqID)
	b.Str16(pr.From)
	b.Str16(pr.Target)
	appendMembers(b, pr.Members)
	b.Finish()
}

// ParsePingReq decodes a PingReq payload.
func ParsePingReq(payload []byte) (PingReq, error) {
	var pr PingReq
	p := NewPayload(payload)
	pr.ReqID = p.U64()
	pr.From = p.Str16()
	pr.Target = p.Str16()
	var err error
	if pr.Members, err = parseMembers(&p); err != nil {
		return pr, err
	}
	if err := p.Finish(); err != nil {
		return pr, err
	}
	if pr.Target == "" || len(pr.Target) > maxIDLen {
		return pr, fmt.Errorf("wire: ping-req target id length %d outside [1,%d]", len(pr.Target), maxIDLen)
	}
	return pr, nil
}

// Gossip is the membership response frame: the receiver's table, plus an OK
// flag that makes it double as the ack for Ping (always 1) and PingReq (1
// iff the proxied probe reached the target).
type Gossip struct {
	ReqID   uint64
	OK      bool
	From    string // responder's node ID
	Members []Member
}

// AppendGossip appends a Gossip frame.
func AppendGossip(b *Builder, g Gossip) {
	b.Begin(FrameGossip)
	b.U64(g.ReqID)
	if g.OK {
		b.U8(1)
	} else {
		b.U8(0)
	}
	b.Str16(g.From)
	appendMembers(b, g.Members)
	b.Finish()
}

// ParseGossip decodes a Gossip payload.
func ParseGossip(payload []byte) (Gossip, error) {
	var g Gossip
	p := NewPayload(payload)
	g.ReqID = p.U64()
	g.OK = p.U8() != 0
	g.From = p.Str16()
	var err error
	if g.Members, err = parseMembers(&p); err != nil {
		return g, err
	}
	return g, p.Finish()
}

// Replicate ships one applied batch from a stream's owner to a warm standby,
// right after the owner applies it and before the client's ack. The standby
// buffers (Start, rows) pairs per stream and replays them in order on
// promotion, which is what shrinks the unclean-death data-loss window from
// one segment-replication interval toward zero. Start is the stream's length
// before the batch, so a standby can detect (and skip or reject) gaps and
// duplicates exactly like conditional Observe does. Answered with Ack
// (buffered) or Nack.
type Replicate struct {
	ReqID uint64
	RingV uint64 // sender's ring version; stale senders are rejected
	Start uint64 // stream length before this batch
	ID    []byte // aliases the frame buffer
	Rows  int
	// Outcomes is the response-column count per row, inferred from the
	// payload length exactly like ObserveHeader.Outcomes.
	Outcomes int
	rows     []byte
	dim      int
}

// AppendReplicate appends a Replicate frame; xs is Rows×dim values
// (row-major), ys is Rows×k values for any k ≥ 1. dim sizes the rows; pass
// len(ys) rows via a zero dim only in the k=1 legacy shape.
func AppendReplicate(b *Builder, reqID, ringV uint64, id string, start uint64, dim int, xs, ys []float64) {
	b.Begin(FrameReplicate)
	b.U64(reqID)
	b.U64(ringV)
	b.U64(start)
	b.Str16(id)
	rows := len(ys)
	if dim > 0 {
		rows = len(xs) / dim
	}
	b.U32(uint32(rows))
	b.F64s(xs)
	b.F64s(ys)
	b.Finish()
}

// ParseReplicate decodes a Replicate payload against the connection's
// negotiated dimension. The returned value aliases the payload.
func ParseReplicate(payload []byte, dim int) (Replicate, error) {
	var r Replicate
	p := NewPayload(payload)
	r.ReqID = p.U64()
	r.RingV = p.U64()
	r.Start = p.U64()
	r.ID = p.Bytes16()
	rows := p.U32()
	if p.Err() != nil {
		return r, p.Err()
	}
	if len(r.ID) == 0 || len(r.ID) > maxIDLen {
		return r, fmt.Errorf("wire: replicate stream id length %d outside [1,%d]", len(r.ID), maxIDLen)
	}
	if rows == 0 || uint64(rows) > uint64(p.Remaining())/8 {
		return r, fmt.Errorf("wire: replicate row count %d inconsistent with %d payload bytes", rows, p.Remaining())
	}
	r.Rows = int(rows)
	r.dim = dim
	k, err := rowOutcomes(p.Remaining(), r.Rows, dim, "replicate")
	if err != nil {
		return r, err
	}
	r.Outcomes = k
	r.rows = p.take(p.Remaining())
	return r, p.Finish()
}

// DecodeRows fills xs (Rows×dim values, row-major) and ys (Rows×Outcomes
// values) from the frame's bit patterns, exactly like
// ObserveHeader.DecodeRows.
func (r *Replicate) DecodeRows(xs, ys []float64) error {
	if len(xs) != r.Rows*r.dim || len(ys) != r.Rows*r.Outcomes {
		return fmt.Errorf("wire: DecodeRows destination %d×%d does not match frame %d×%d", len(ys), len(xs), r.Rows*r.Outcomes, r.Rows*r.dim)
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.rows[8*i:]))
	}
	off := 8 * len(xs)
	for i := range ys {
		ys[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.rows[off+8*i:]))
	}
	return nil
}
