package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NackError is the client-side form of a Nack frame: a per-request rejection
// that did not break the connection. Queue-full nacks are retryable after
// RetryAfter seconds; the rest are verdicts.
type NackError struct {
	Code       NackCode
	RetryAfter int // seconds, for NackQueueFull
	Msg        string
}

func (e *NackError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("wire: request rejected: %s", e.Code)
}

// Retryable reports whether backing off and resending can succeed.
func (e *NackError) Retryable() bool { return e.Code.Retryable() }

// IsRetryable reports whether err is a wire rejection that can succeed on
// retry (queue pressure, ring skew, import windows). Transport errors return
// false: the caller must decide whether redialing is safe, this package
// cannot.
func IsRetryable(err error) bool {
	var ne *NackError
	return errors.As(err, &ne) && ne.Retryable()
}

// RetryAfter extracts the server's retry hint from a rejection. ok reports
// whether err carried one; a zero duration with ok=true means "retry
// whenever" (the server had no estimate).
func RetryAfter(err error) (d time.Duration, ok bool) {
	var ne *NackError
	if !errors.As(err, &ne) || !ne.Retryable() {
		return 0, false
	}
	return time.Duration(ne.RetryAfter) * time.Second, true
}

// Client is a connection to a privreg wire listener, safe for concurrent use
// by any number of goroutines: requests from different streams (or the same
// one) interleave on the single connection and are matched to responses by
// request ID, so the connection stays full without head-of-line blocking
// between streams — the client half of connection-level batching.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes; each request is built into the shared
	// builder and written with one Write call.
	wmu sync.Mutex
	b   Builder

	nextID atomic.Uint64

	// pending maps in-flight request IDs to their waiters.
	pmu     sync.Mutex
	pending map[uint64]chan response
	broken  error // set once the read loop dies; new requests fail fast

	// Pool shape from the HelloAck.
	Dim       int
	Horizon   int
	Mechanism string
	// Outcomes is the pool's response-column count (1 for single-outcome
	// pools); observe batches must carry Outcomes responses per row.
	Outcomes int
	// Server is the peer's build identifier from the HelloAck ("dev" for
	// uninjected builds).
	Server string
}

type response struct {
	frame  FrameType
	ack    Ack
	est    EstimateAck
	nack   Nack
	ring   RingAck
	gossip Gossip
}

// Dial connects to a wire listener, performs the Hello/HelloAck version
// negotiation, and starts the response reader.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are already batched application-side; waiting for more data
		// only adds latency.
		_ = tc.SetNoDelay(true)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan response)}
	var b Builder
	AppendHello(&b, Hello{MinVersion: Version, MaxVersion: Version})
	if _, err := conn.Write(b.Bytes()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	r := NewReader(conn)
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
	}
	t, payload, err := r.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: reading hello-ack: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch t {
	case FrameHelloAck:
	case FrameError:
		conn.Close()
		return nil, ParseError(payload)
	default:
		conn.Close()
		return nil, fmt.Errorf("wire: expected hello-ack, got %s", t)
	}
	ack, err := ParseHelloAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ack.Version != Version {
		conn.Close()
		return nil, fmt.Errorf("wire: server negotiated unsupported version %d", ack.Version)
	}
	c.Dim = int(ack.Dim)
	c.Horizon = int(ack.Horizon)
	c.Mechanism = ack.Mechanism
	c.Server = ack.Server
	c.Outcomes = int(ack.Outcomes)
	go c.readLoop(r)
	return c, nil
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop dispatches response frames to their waiters until the connection
// dies, then fails every remaining waiter.
func (c *Client) readLoop(r *Reader) {
	var err error
	for {
		var t FrameType
		var payload []byte
		t, payload, err = r.Next()
		if err != nil {
			break
		}
		var resp response
		var reqID uint64
		var perr error
		switch t {
		case FrameAck:
			resp.frame = t
			resp.ack, perr = ParseAck(payload)
			reqID = resp.ack.ReqID
		case FrameEstimateAck:
			resp.frame = t
			resp.est, perr = ParseEstimateAck(payload)
			reqID = resp.est.ReqID
		case FrameNack:
			resp.frame = t
			resp.nack, perr = ParseNack(payload)
			reqID = resp.nack.ReqID
		case FrameRingAck:
			resp.frame = t
			resp.ring, perr = ParseRingAck(payload)
			if perr == nil {
				// The blob aliases the reader's reusable frame buffer; copy it
				// before the next Next() overwrites it.
				resp.ring.Ring = append([]byte(nil), resp.ring.Ring...)
			}
			reqID = resp.ring.ReqID
		case FrameGossip:
			resp.frame = t
			resp.gossip, perr = ParseGossip(payload)
			reqID = resp.gossip.ReqID
		case FrameError:
			err = ParseError(payload)
		default:
			err = fmt.Errorf("wire: unexpected frame %s from server", t)
		}
		if err != nil {
			break
		}
		if perr != nil {
			err = perr
			break
		}
		c.pmu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.pmu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	if err == nil {
		err = errors.New("wire: connection closed")
	}
	c.pmu.Lock()
	c.broken = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- response{frame: FrameError}
	}
	c.pmu.Unlock()
	c.conn.Close()
}

// register allocates a request ID and its waiter channel.
func (c *Client) register() (uint64, chan response, error) {
	id := c.nextID.Add(1)
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.broken != nil {
		err := c.broken
		c.pmu.Unlock()
		return 0, nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()
	return id, ch, nil
}

func (c *Client) send(build func(reqID uint64)) (uint64, chan response, error) {
	reqID, ch, err := c.register()
	if err != nil {
		return 0, nil, err
	}
	c.wmu.Lock()
	c.b.Reset()
	build(reqID)
	_, err = c.conn.Write(c.b.Bytes())
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, reqID)
		c.pmu.Unlock()
		return 0, nil, err
	}
	return reqID, ch, nil
}

func (c *Client) await(ch chan response) (response, error) {
	resp := <-ch
	if resp.frame == 0 || resp.frame == FrameError {
		c.pmu.Lock()
		err := c.broken
		c.pmu.Unlock()
		if err == nil {
			err = errors.New("wire: connection closed")
		}
		return resp, err
	}
	if resp.frame == FrameNack {
		return resp, &NackError{
			Code:       resp.nack.Code,
			RetryAfter: int(resp.nack.RetryAfter),
			Msg:        resp.nack.Msg,
		}
	}
	return resp, nil
}

// Observe sends one batched observe frame — rows in row-major xs with
// Outcomes responses per row in ys — and blocks until the server acks it
// (the points are applied) or nacks it. Safe to call concurrently.
func (c *Client) Observe(id string, xs, ys []float64) (applied, streamLen int, err error) {
	return c.observe(0, id, -1, xs, ys)
}

// ObserveAt is Observe with an expected stream offset: the server applies
// the batch only if the stream currently holds exactly from points, acks
// without applying if the batch is already in (a retried duplicate), and
// rejects with NackConflict otherwise. Retry loops built on it are
// exactly-once even across an owner crash and standby promotion.
func (c *Client) ObserveAt(id string, from int64, xs, ys []float64) (applied, streamLen int, err error) {
	return c.observe(0, id, from, xs, ys)
}

// ForwardObserve is Observe with the forwarded flag set: the receiver serves
// the request locally even if its ring disagrees about ownership. Only the
// in-server forwarding proxy should use it. from carries the original
// request's expected offset through the hop (-1 for unconditional).
func (c *Client) ForwardObserve(id string, from int64, xs, ys []float64) (applied, streamLen int, err error) {
	return c.observe(FlagForwarded, id, from, xs, ys)
}

func (c *Client) observe(flags uint8, id string, from int64, xs, ys []float64) (applied, streamLen int, err error) {
	k := c.Outcomes
	if k < 1 {
		k = 1
	}
	if len(ys)%k != 0 || len(xs) != (len(ys)/k)*c.Dim {
		return 0, 0, fmt.Errorf("wire: observe batch %d×%d does not match pool shape dim %d × %d outcomes", len(ys), len(xs), c.Dim, k)
	}
	_, ch, err := c.send(func(reqID uint64) { AppendObserve(&c.b, reqID, flags, id, from, c.Dim, xs, ys) })
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return 0, 0, err
	}
	if resp.frame != FrameAck {
		return 0, 0, fmt.Errorf("wire: observe answered with %s", resp.frame)
	}
	return int(resp.ack.Applied), int(resp.ack.Len), nil
}

// Estimate fetches the stream's current private estimate (outcome 0) and
// length.
func (c *Client) Estimate(id string) ([]float64, int, error) {
	return c.estimate(0, id, 0)
}

// EstimateOutcome fetches one outcome's estimate from a multi-outcome pool.
func (c *Client) EstimateOutcome(id string, outcome int) ([]float64, int, error) {
	return c.estimate(0, id, outcome)
}

// ForwardEstimate is Estimate with the forwarded flag set; see ForwardObserve.
// outcome carries the original request's outcome index through the hop.
func (c *Client) ForwardEstimate(id string, outcome int) ([]float64, int, error) {
	return c.estimate(FlagForwarded, id, outcome)
}

func (c *Client) estimate(flags uint8, id string, outcome int) ([]float64, int, error) {
	if outcome < 0 {
		return nil, 0, fmt.Errorf("wire: estimate outcome index %d is negative", outcome)
	}
	_, ch, err := c.send(func(reqID uint64) { AppendEstimate(&c.b, reqID, flags, id, outcome) })
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return nil, 0, err
	}
	if resp.frame != FrameEstimateAck {
		return nil, 0, fmt.Errorf("wire: estimate answered with %s", resp.frame)
	}
	return resp.est.Estimate, int(resp.est.Len), nil
}

// FetchRing asks the server for its cluster ring and returns the ring
// version plus the JSON document (the same one GET /v1/ring serves; decode
// with cluster.Ring's UnmarshalJSON). A non-clustered server answers with
// version 0 and an empty blob.
func (c *Client) FetchRing() (version uint64, ringJSON []byte, err error) {
	_, ch, err := c.send(func(reqID uint64) { AppendRingReq(&c.b, reqID) })
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return 0, nil, err
	}
	if resp.frame != FrameRingAck {
		return 0, nil, fmt.Errorf("wire: ring request answered with %s", resp.frame)
	}
	return resp.ring.Version, resp.ring.Ring, nil
}

// PushSegment ships one stream's segment file to the peer and blocks until
// the peer has durably imported it (ack-after-apply, like Observe). length
// is the stream's point count at export; ringV the sender's ring version;
// standby distinguishes a replication copy from a handoff transfer.
func (c *Client) PushSegment(segment []byte, length uint64, ringV uint64, standby bool) error {
	if len(segment)+frameOverhead+64 > MaxFrame {
		return fmt.Errorf("wire: segment of %d bytes exceeds the %d-byte frame bound", len(segment), MaxFrame)
	}
	_, ch, err := c.send(func(reqID uint64) {
		AppendSegmentPush(&c.b, SegmentPush{ReqID: reqID, RingV: ringV, Length: length, Standby: standby, Data: segment})
	})
	if err != nil {
		return err
	}
	resp, err := c.await(ch)
	if err != nil {
		return err
	}
	if resp.frame != FrameAck {
		return fmt.Errorf("wire: segment push answered with %s", resp.frame)
	}
	return nil
}

// awaitTimeout is await with a deadline, for membership probes: a probe that
// has not answered by the detector's timeout is treated as lost, but the
// request stays registered so a late response is still drained (and
// discarded) instead of confusing the dispatch map.
func (c *Client) awaitTimeout(reqID uint64, ch chan response, d time.Duration) (response, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case resp := <-ch:
		if resp.frame == 0 || resp.frame == FrameError {
			c.pmu.Lock()
			err := c.broken
			c.pmu.Unlock()
			if err == nil {
				err = errors.New("wire: connection closed")
			}
			return resp, err
		}
		if resp.frame == FrameNack {
			return resp, &NackError{
				Code:       resp.nack.Code,
				RetryAfter: int(resp.nack.RetryAfter),
				Msg:        resp.nack.Msg,
			}
		}
		return resp, nil
	case <-t.C:
		c.pmu.Lock()
		delete(c.pending, reqID)
		c.pmu.Unlock()
		return response{}, fmt.Errorf("wire: request timed out after %s", d)
	}
}

// Ping sends a SWIM direct probe carrying the caller's membership table and
// blocks until the peer's Gossip ack or the timeout. The returned table is
// the peer's view.
func (c *Client) Ping(from string, members []Member, timeout time.Duration) (Gossip, error) {
	reqID, ch, err := c.send(func(reqID uint64) {
		AppendPing(&c.b, Ping{ReqID: reqID, From: from, Members: members})
	})
	if err != nil {
		return Gossip{}, err
	}
	resp, err := c.awaitTimeout(reqID, ch, timeout)
	if err != nil {
		return Gossip{}, err
	}
	if resp.frame != FrameGossip {
		return Gossip{}, fmt.Errorf("wire: ping answered with %s", resp.frame)
	}
	return resp.gossip, nil
}

// PingReq asks the peer to probe target on the caller's behalf. The reply's
// OK flag reports whether target acked the peer's probe within the peer's
// timeout.
func (c *Client) PingReq(from, target string, members []Member, timeout time.Duration) (Gossip, error) {
	reqID, ch, err := c.send(func(reqID uint64) {
		AppendPingReq(&c.b, PingReq{ReqID: reqID, From: from, Target: target, Members: members})
	})
	if err != nil {
		return Gossip{}, err
	}
	resp, err := c.awaitTimeout(reqID, ch, timeout)
	if err != nil {
		return Gossip{}, err
	}
	if resp.frame != FrameGossip {
		return Gossip{}, fmt.Errorf("wire: ping-req answered with %s", resp.frame)
	}
	return resp.gossip, nil
}

// Replicate ships one applied batch to a standby peer: stream id, the
// stream's length before the batch (start), and the rows, to be buffered for
// promotion replay. Blocks until the standby acks the buffer write.
func (c *Client) Replicate(id string, start uint64, ringV uint64, xs, ys []float64) error {
	k := c.Outcomes
	if k < 1 {
		k = 1
	}
	if len(ys)%k != 0 || len(xs) != (len(ys)/k)*c.Dim {
		return fmt.Errorf("wire: replicate batch %d×%d does not match pool shape dim %d × %d outcomes", len(ys), len(xs), c.Dim, k)
	}
	_, ch, err := c.send(func(reqID uint64) {
		AppendReplicate(&c.b, reqID, ringV, id, start, c.Dim, xs, ys)
	})
	if err != nil {
		return err
	}
	resp, err := c.await(ch)
	if err != nil {
		return err
	}
	if resp.frame != FrameAck {
		return fmt.Errorf("wire: replicate answered with %s", resp.frame)
	}
	return nil
}
