package wire

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeeds returns a spread of well-formed frame buffers the fuzzers mutate
// from; together with the checked-in regression corpus under testdata/fuzz
// they cover every frame type and the interesting boundary shapes (empty
// batches are unencodable, single-row frames, max-length IDs).
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(build func(b *Builder)) {
		var b Builder
		build(&b)
		seeds = append(seeds, append([]byte(nil), b.Bytes()...))
	}
	add(func(b *Builder) { AppendHello(b, Hello{MinVersion: 1, MaxVersion: 1}) })
	add(func(b *Builder) {
		AppendHelloAck(b, HelloAck{Version: 1, Dim: 8, Horizon: 1 << 20, Mechanism: "gradient"})
	})
	add(func(b *Builder) {
		AppendObserve(b, 1, 0, "s", -1, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8}, []float64{0.5, -0.5})
	})
	add(func(b *Builder) {
		AppendObserve(b, 2, 0, "stream-with-a-longer-name", -1, 1, []float64{0.25}, []float64{1})
	})
	add(func(b *Builder) { AppendEstimate(b, 3, 0, "s", 0) })
	add(func(b *Builder) { AppendEstimate(b, 3, 0, "s", 5) })
	add(func(b *Builder) { AppendAck(b, Ack{ReqID: 4, Applied: 8, Len: 64}) })
	add(func(b *Builder) { AppendEstimateAck(b, EstimateAck{ReqID: 5, Len: 64, Estimate: []float64{1, -1}}) })
	add(func(b *Builder) { AppendNack(b, Nack{ReqID: 6, Code: NackQueueFull, RetryAfter: 2, Msg: "full"}) })
	add(func(b *Builder) { AppendError(b, "boom") })
	add(func(b *Builder) { AppendRingReq(b, 10) })
	add(func(b *Builder) {
		AppendRingAck(b, RingAck{ReqID: 10, Version: 2, Ring: []byte(`{"version":2,"nodes":[{"id":"a"}]}`)})
	})
	add(func(b *Builder) {
		AppendSegmentPush(b, SegmentPush{ReqID: 11, RingV: 2, Length: 9, Standby: true, Data: []byte("PRSGxxxx")})
	})
	add(func(b *Builder) {
		AppendPing(b, Ping{ReqID: 12, From: "node-a", Members: []Member{{ID: "node-a", State: 1, Incarnation: 3}}})
	})
	add(func(b *Builder) {
		AppendPingReq(b, PingReq{ReqID: 13, From: "node-a", Target: "node-b", Members: []Member{{ID: "node-c"}}})
	})
	add(func(b *Builder) {
		AppendGossip(b, Gossip{ReqID: 13, OK: true, From: "node-b", Members: []Member{{ID: "node-b", Incarnation: 7}}})
	})
	add(func(b *Builder) {
		AppendReplicate(b, 14, 2, "s", 40, 2, []float64{1, 2, 3, 4}, []float64{0.5, -0.5})
	})
	// A multi-outcome observe: 2 rows × (dim 2 + 3 responses).
	add(func(b *Builder) {
		AppendObserve(b, 15, 0, "mo", -1, 2, []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4, 5, 6})
	})
	// Two frames back to back — the multi-frame stream case.
	add(func(b *Builder) {
		AppendObserve(b, 7, FlagForwarded, "a", -1, 2, []float64{1, 2}, []float64{3})
		AppendEstimate(b, 8, 0, "a", 0)
	})
	return seeds
}

// FuzzFrameDecode throws arbitrary bytes at the full decode stack — envelope
// then every typed payload parser — and requires it to either return an
// error or a structurally valid frame; it must never panic, over-read, or
// spin. This is the decoder the server runs against the open network.
func FuzzFrameDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	// Hand-built hostile envelopes: truncations, length lies, CRC damage.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 3})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for i := 0; i < 1024 && len(rest) > 0; i++ {
			ft, payload, n, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("DecodeFrame consumed %d of %d", n, len(rest))
			}
			parsePayload(t, ft, payload)
			rest = rest[n:]
		}

		// The io path must agree with the slice path frame for frame.
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			ft, payload, err := r.Next()
			if err != nil {
				if err == io.EOF {
					break
				}
				break
			}
			parsePayload(t, ft, payload)
		}
	})
}

// parsePayload runs the typed parser for ft; parsers may reject the payload
// but must not panic, and accepted observe frames must decode their rows
// into exactly the advertised shape.
func parsePayload(t *testing.T, ft FrameType, payload []byte) {
	t.Helper()
	switch ft {
	case FrameHello:
		_, _ = ParseHello(payload)
	case FrameHelloAck:
		_, _ = ParseHelloAck(payload)
	case FrameObserve:
		for _, dim := range []int{1, 4, 8} {
			h, err := ParseObserveHeader(payload, dim)
			if err != nil {
				continue
			}
			xs := make([]float64, h.Rows*dim)
			ys := make([]float64, h.Rows*h.Outcomes)
			if err := h.DecodeRows(xs, ys); err != nil {
				t.Fatalf("accepted observe header failed DecodeRows: %v", err)
			}
		}
	case FrameEstimate:
		_, _ = ParseEstimate(payload)
	case FrameAck:
		_, _ = ParseAck(payload)
	case FrameEstimateAck:
		_, _ = ParseEstimateAck(payload)
	case FrameNack:
		_, _ = ParseNack(payload)
	case FrameError:
		_ = ParseError(payload)
	case FrameRing:
		_, _ = ParseRingReq(payload)
	case FrameRingAck:
		_, _ = ParseRingAck(payload)
	case FrameSegmentPush:
		_, _ = ParseSegmentPush(payload)
	case FramePing:
		_, _ = ParsePing(payload)
	case FramePingReq:
		_, _ = ParsePingReq(payload)
	case FrameGossip:
		_, _ = ParseGossip(payload)
	case FrameReplicate:
		for _, dim := range []int{1, 4, 8} {
			rep, err := ParseReplicate(payload, dim)
			if err != nil {
				continue
			}
			xs := make([]float64, rep.Rows*dim)
			ys := make([]float64, rep.Rows*rep.Outcomes)
			if err := rep.DecodeRows(xs, ys); err != nil {
				t.Fatalf("accepted replicate frame failed DecodeRows: %v", err)
			}
		}
	}
}

// FuzzObservePayload aims the fuzzer one layer deeper: payload bytes go
// straight into the observe parser (no envelope to get past), which is where
// the row-count/length arithmetic lives.
func FuzzObservePayload(f *testing.F) {
	var b Builder
	AppendObserve(&b, 9, 0, "seed", -1, 2, []float64{1, 2, 3, 4}, []float64{5, 6})
	_, payload, _, err := DecodeFrame(b.Bytes())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), payload...), 2)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, payload []byte, dim int) {
		if dim < 1 || dim > 64 {
			dim = 1 + (dim&0x3f+64)%64
		}
		h, err := ParseObserveHeader(payload, dim)
		if err != nil {
			return
		}
		if h.Rows <= 0 {
			t.Fatalf("accepted header with %d rows", h.Rows)
		}
		if h.Outcomes < 1 {
			t.Fatalf("accepted header with %d outcomes", h.Outcomes)
		}
		xs := make([]float64, h.Rows*dim)
		ys := make([]float64, h.Rows*h.Outcomes)
		if err := h.DecodeRows(xs, ys); err != nil {
			t.Fatalf("accepted observe header failed DecodeRows: %v", err)
		}
	})
}
