package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewSource(43)
	diff := false
	a2 := NewSource(42)
	for i := 0; i < 20; i++ {
		if a2.Float64() != c.Float64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependenceAndDeterminism(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	sa := a.Split()
	sb := b.Split()
	for i := 0; i < 50; i++ {
		if sa.Float64() != sb.Float64() {
			t.Fatal("splits of identically seeded sources differ")
		}
	}
	// Parent and child streams should not be identical.
	parent := NewSource(9)
	child := parent.Split()
	same := true
	for i := 0; i < 20; i++ {
		if parent.Float64() != child.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("split stream identical to parent stream")
	}
}

func TestNormalMoments(t *testing.T) {
	src := NewSource(1)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := src.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("variance = %v, want 9", variance)
	}
	if src.Normal(5, 0) != 5 {
		t.Fatal("zero-sigma Normal should return the mean")
	}
}

func TestLaplaceMoments(t *testing.T) {
	src := NewSource(2)
	const n = 200000
	b := 1.5
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := src.Laplace(b)
		sum += x
		sumAbs += math.Abs(x)
	}
	if math.Abs(sum/n) > 0.05 {
		t.Fatalf("Laplace mean = %v, want 0", sum/n)
	}
	// E|X| = b for Laplace(0, b).
	if math.Abs(sumAbs/n-b) > 0.05 {
		t.Fatalf("Laplace E|X| = %v, want %v", sumAbs/n, b)
	}
	if src.Laplace(0) != 0 {
		t.Fatal("zero-scale Laplace should return 0")
	}
}

func TestExponentialAndBernoulli(t *testing.T) {
	src := NewSource(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += src.Exponential(2)
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean = %v, want 0.5", sum/n)
	}
	count := 0
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.3) {
			count++
		}
	}
	if math.Abs(float64(count)/n-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) rate = %v", float64(count)/n)
	}
	if src.Bernoulli(0) || !src.Bernoulli(1) {
		t.Fatal("degenerate Bernoulli probabilities mishandled")
	}
}

func TestRademacherAndUniform(t *testing.T) {
	src := NewSource(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		r := src.Rademacher()
		if r != 1 && r != -1 {
			t.Fatalf("Rademacher returned %v", r)
		}
		sum += r
	}
	if math.Abs(sum/n) > 0.02 {
		t.Fatalf("Rademacher mean = %v", sum/n)
	}
	for i := 0; i < 1000; i++ {
		u := src.Uniform(-2, 5)
		if u < -2 || u >= 5 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
}

func TestUnitSphereAndBall(t *testing.T) {
	src := NewSource(5)
	for i := 0; i < 200; i++ {
		v := src.UnitSphere(7)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Fatalf("UnitSphere norm = %v", math.Sqrt(n))
		}
		b := src.UnitBall(7)
		n = 0
		for _, x := range b {
			n += x * x
		}
		if math.Sqrt(n) > 1+1e-9 {
			t.Fatalf("UnitBall norm = %v", math.Sqrt(n))
		}
	}
}

func TestSparseVector(t *testing.T) {
	src := NewSource(6)
	f := func(seed int64) bool {
		s := NewSource(seed)
		d := 1 + s.Intn(30)
		k := 1 + s.Intn(d)
		v := src.SparseVector(d, k)
		nz := 0
		var norm float64
		for _, x := range v {
			if x != 0 {
				nz++
			}
			norm += x * x
		}
		return nz == k && math.Abs(math.Sqrt(norm)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Clamping behaviour.
	v := src.SparseVector(5, 100)
	nz := 0
	for _, x := range v {
		if x != 0 {
			nz++
		}
	}
	if nz != 5 {
		t.Fatalf("sparsity not clamped to dimension: %d", nz)
	}
}

func TestVectorAndMatrixSamplers(t *testing.T) {
	src := NewSource(7)
	v := src.NormalVector(10, 0)
	for _, x := range v {
		if x != 0 {
			t.Fatal("zero-sigma NormalVector should be all zeros")
		}
	}
	m := src.NormalMatrix(3, 4, 1)
	if len(m) != 12 {
		t.Fatalf("NormalMatrix length = %d", len(m))
	}
	l := src.LaplaceVector(5, 2)
	if len(l) != 5 {
		t.Fatalf("LaplaceVector length = %d", len(l))
	}
	p := src.Perm(10)
	seen := make(map[int]bool)
	for _, x := range p {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatal("Perm is not a permutation")
	}
}

func TestPanicsOnInvalidParameters(t *testing.T) {
	src := NewSource(8)
	cases := []func(){
		func() { src.Normal(0, -1) },
		func() { src.Laplace(-1) },
		func() { src.Exponential(0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}

// TestFillNormalMatchesScalarLoop checks the stream-compatibility contract of
// the vectorized sampler: FillNormal must consume the generator identically to
// a scalar Normal loop, so the two are interchangeable without perturbing any
// downstream randomness.
func TestFillNormalMatchesScalarLoop(t *testing.T) {
	a := NewSource(77)
	b := NewSource(77)
	bufA := make([]float64, 257)
	a.FillNormal(bufA, 1.5, 2.25)
	for i := range bufA {
		if want := b.Normal(1.5, 2.25); bufA[i] != want {
			t.Fatalf("FillNormal[%d] = %v, scalar loop = %v", i, bufA[i], want)
		}
	}
	// After the fill both sources must be in the same state.
	if a.Float64() != b.Float64() {
		t.Fatal("FillNormal advanced the stream differently from the scalar loop")
	}
	// sigma = 0 fills with the mean and must not consume the stream.
	c := NewSource(78)
	d := NewSource(78)
	buf := make([]float64, 8)
	c.FillNormal(buf, 3, 0)
	for _, v := range buf {
		if v != 3 {
			t.Fatalf("sigma=0 fill produced %v, want 3", v)
		}
	}
	if c.Float64() != d.Float64() {
		t.Fatal("sigma=0 FillNormal consumed the stream")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative sigma should panic")
			}
		}()
		c.FillNormal(buf, 0, -1)
	}()
}

// TestSplitNDeterministic checks that SplitN hands out the same per-worker
// streams as sequential Split calls.
func TestSplitNDeterministic(t *testing.T) {
	a := NewSource(5)
	b := NewSource(5)
	splits := a.SplitN(4)
	for i := 0; i < 4; i++ {
		want := b.Split()
		if splits[i].Float64() != want.Float64() {
			t.Fatalf("SplitN[%d] differs from sequential Split", i)
		}
	}
}
