package randx

import "math"

// This file implements the normal sampler behind Source.Normal / StdNormal /
// FillNormal and the counter-keyed FillNormalAt: a 128-layer double-precision
// ziggurat (the ZIGNOR variant of Doornik, "An Improved Ziggurat Method to
// Generate Normal Random Samples", 2005). Compared to math/rand.NormFloat64 it
// uses float64 tables (no float32 rounding in the accept tests), draws the
// layer index, sign, and mantissa from disjoint bits of a single 64-bit word,
// and is generic over any Uint64 supplier — which is what lets the same
// routine run on both a Source's counting generator and the counter-mode PRF
// streams used for lazy node-noise materialization.
//
// The tables are computed once at init from math.Exp/Log/Sqrt; all inputs are
// exact dyadic rationals derived from integer bits, so the sampler is
// deterministic for a fixed bit stream (TestFillNormalAtGolden pins fixed-seed
// outputs).

const (
	zigLayers = 128
	// zigR is the start of the tail block and zigV the common block area for a
	// 128-layer normal ziggurat (Doornik's ZIGNOR_R / ZIGNOR_V constants).
	zigR = 3.442619855899
	zigV = 9.91256303526217e-3
	// inv53 maps a 53-bit integer to [0, 1).
	inv53 = 1.0 / (1 << 53)
)

var (
	// zigX[i] is the right edge of block i (zigX[0] is the "pseudo" base-block
	// width V/f(R), zigX[1] = R, decreasing to zigX[zigLayers] = 0).
	zigX [zigLayers + 1]float64
	// zigRatio[i] = zigX[i+1]/zigX[i] is the rectangle acceptance threshold.
	zigRatio [zigLayers]float64
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigX[1] = zigR
	zigX[zigLayers] = 0
	for i := 2; i < zigLayers; i++ {
		zigX[i] = math.Sqrt(-2 * math.Log(zigV/zigX[i-1]+f))
		f = math.Exp(-0.5 * zigX[i] * zigX[i])
	}
	for i := 0; i < zigLayers; i++ {
		zigRatio[i] = zigX[i+1] / zigX[i]
	}
}

// bitsSource supplies raw 64-bit words; both *countingSource (a Source's
// generator) and *CounterSource (the keyed PRF stream) satisfy it.
type bitsSource interface {
	Uint64() uint64
}

// zigUniformPos returns a uniform sample in (0, 1] — strictly positive so it
// can be passed to math.Log.
func zigUniformPos(src bitsSource) float64 {
	return (float64(src.Uint64()>>11) + 1) * inv53
}

// zigNormal returns one N(0, 1) sample. One uint64 per attempt covers the
// layer index (7 bits), and a signed 53-bit mantissa; the wedge and tail paths
// (≈ 2.3% of attempts) draw extra words.
func zigNormal(src bitsSource) float64 {
	for {
		b := src.Uint64()
		i := int(b & (zigLayers - 1))
		u := float64(b>>11)*inv53*2 - 1 // uniform in [-1, 1)
		if math.Abs(u) < zigRatio[i] {
			// Inside the rectangle core of block i: accept immediately.
			return u * zigX[i]
		}
		if i == 0 {
			// Base block: sample the tail |x| > R by Marsaglia's method.
			neg := u < 0
			for {
				x := math.Log(zigUniformPos(src)) / zigR // ≤ 0
				y := math.Log(zigUniformPos(src))
				if -2*y >= x*x {
					if neg {
						return x - zigR
					}
					return zigR - x
				}
			}
		}
		// Wedge: accept x with probability proportional to the density gap
		// between the block edges (Doornik's exp-difference formulation, which
		// needs no density table).
		x := u * zigX[i]
		f0 := math.Exp(-0.5 * (zigX[i]*zigX[i] - x*x))
		f1 := math.Exp(-0.5 * (zigX[i+1]*zigX[i+1] - x*x))
		if f1+zigUniformPos(src)*(f0-f1) < 1.0 {
			return x
		}
	}
}
