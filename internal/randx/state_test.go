package randx

import (
	"math/rand"
	"testing"
)

// TestCountingWrapperPreservesStream verifies the counting wrapper produces
// exactly the same primitive variates as a bare math/rand generator with the
// same seed — counting draws must never perturb the underlying stream. (The
// normal samplers are excluded: they run the package's own ziggurat, not
// math/rand's; their determinism is covered by the ziggurat tests.)
func TestCountingWrapperPreservesStream(t *testing.T) {
	s := NewSource(12345)
	bare := rand.New(rand.NewSource(12345))
	for i := 0; i < 2000; i++ {
		switch i % 5 {
		case 0:
			if got, want := s.rng.Int63(), bare.Int63(); got != want {
				t.Fatalf("Int63 diverged at draw %d", i)
			}
		case 1:
			if got, want := s.Float64(), bare.Float64(); got != want {
				t.Fatalf("Float64 diverged at draw %d", i)
			}
		case 2:
			if got, want := s.rng.ExpFloat64(), bare.ExpFloat64(); got != want {
				t.Fatalf("ExpFloat64 diverged at draw %d", i)
			}
		case 3:
			if got, want := s.rng.Uint64(), bare.Uint64(); got != want {
				t.Fatalf("Uint64 diverged at draw %d", i)
			}
		case 4:
			if got, want := s.Intn(97), bare.Intn(97); got != want {
				t.Fatalf("Intn diverged at draw %d", i)
			}
		}
	}
}

// TestStateRestoreBitIdentical checks that a Source restored from State
// continues with exactly the variates the original would have produced.
func TestStateRestoreBitIdentical(t *testing.T) {
	orig := NewSource(777)
	// Consume a mixed workload: scalars, vectors, permutations, splits.
	buf := make([]float64, 33)
	for i := 0; i < 50; i++ {
		orig.FillNormal(buf, 0, 1.5)
		_ = orig.Laplace(0.3)
		_ = orig.Perm(13)
		_ = orig.Split()
	}

	st := orig.State()
	restored, err := NewSourceAt(st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != st {
		t.Fatalf("restored state %+v != saved %+v", restored.State(), st)
	}

	for i := 0; i < 500; i++ {
		a, b := orig.StdNormal(), restored.StdNormal()
		if a != b {
			t.Fatalf("restored stream diverged at draw %d: %v != %v", i, a, b)
		}
	}
	// Splits after restore are identical too.
	sa, sb := orig.Split(), restored.Split()
	if sa.Seed() != sb.Seed() {
		t.Fatal("split seeds diverged after restore")
	}
}

func TestStateZeroDraws(t *testing.T) {
	s := NewSource(5)
	st := s.State()
	if st.Seed != 5 || st.Draws != 0 {
		t.Fatalf("fresh state = %+v", st)
	}
	restored, err := NewSourceAt(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.StdNormal(); got != NewSource(5).StdNormal() {
		t.Fatal("zero-draw restore differs from fresh source")
	}
}

// TestReplayBound verifies a corrupt (absurdly large) draw count is rejected
// instead of spinning the replay loop.
func TestReplayBound(t *testing.T) {
	if _, err := NewSourceAt(State{Seed: 1, Draws: MaxReplayDraws + 1}); err != ErrReplayTooLarge {
		t.Fatalf("oversized replay = %v, want ErrReplayTooLarge", err)
	}
	if _, err := NewSourceAt(State{Seed: 1, Draws: 1000}); err != nil {
		t.Fatalf("legitimate replay rejected: %v", err)
	}
}
