package randx

import (
	"math"
	"sort"
	"testing"
)

// TestZigguratMoments checks the first three standardized moments of the
// ziggurat sampler at n = 1e6 against N(0, 1). The seed is fixed, so the
// tolerances can sit a few standard errors out without flakiness (standard
// errors at this n: mean 1e-3, variance 1.4e-3, skewness 2.4e-3).
func TestZigguratMoments(t *testing.T) {
	src := NewSource(314159)
	const n = 1_000_000
	var sum, sumSq, sumCu float64
	for i := 0; i < n; i++ {
		x := src.StdNormal()
		sum += x
		sumSq += x * x
		sumCu += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	sd := math.Sqrt(variance)
	skew := (sumCu/n - 3*mean*variance - mean*mean*mean) / (sd * sd * sd)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.01 {
		t.Fatalf("variance = %v, want ≈ 1", variance)
	}
	if math.Abs(skew) > 0.02 {
		t.Fatalf("skewness = %v, want ≈ 0", skew)
	}
}

// stdNormalCDF is Φ, the N(0,1) distribution function.
func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ksStatistic returns the two-sided Kolmogorov–Smirnov distance between the
// sample and N(0, 1).
func ksStatistic(sample []float64) float64 {
	sort.Float64s(sample)
	n := float64(len(sample))
	var d float64
	for i, x := range sample {
		f := stdNormalCDF(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// TestZigguratKolmogorovSmirnov is the distributional smoke test: at
// n = 200000 the critical KS distance at significance 0.001 is
// 1.949/√n ≈ 0.0044; the fixed seed keeps the check deterministic, and the
// looser 0.01 bound still catches any structural sampler defect (a wrong
// wedge or tail branch shifts D by far more).
func TestZigguratKolmogorovSmirnov(t *testing.T) {
	const n = 200_000
	src := NewSource(2718)
	sample := make([]float64, n)
	src.FillNormal(sample, 0, 1)
	if d := ksStatistic(sample); d > 0.01 {
		t.Fatalf("KS distance vs N(0,1) = %v, want < 0.01", d)
	}
	// The counter-keyed stream runs the same ziggurat over a different bit
	// source; give it its own KS pass.
	FillNormalAt(99, 123, sample, 1)
	if d := ksStatistic(sample); d > 0.01 {
		t.Fatalf("counter-keyed KS distance vs N(0,1) = %v, want < 0.01", d)
	}
}

// TestZigguratTailCoverage verifies the tail branch is actually exercised and
// produces values beyond the ziggurat cutoff R with roughly the right
// frequency (P(|X| > 3.4426…) ≈ 5.75e-4).
func TestZigguratTailCoverage(t *testing.T) {
	src := NewSource(7)
	const n = 1_000_000
	tail := 0
	for i := 0; i < n; i++ {
		if math.Abs(src.StdNormal()) > zigR {
			tail++
		}
	}
	want := 2 * (1 - stdNormalCDF(zigR)) * n
	if float64(tail) < want/2 || float64(tail) > want*2 {
		t.Fatalf("tail samples = %d, want ≈ %.0f", tail, want)
	}
}

// TestFillNormalAtGolden pins the exact outputs of the counter-keyed sampler
// for a fixed (key, node): the noise substrate of the lazy Tree Mechanism
// must be reproducible across platforms, architectures, and Go versions — a
// checkpoint restored elsewhere re-materializes exactly these values. If this
// test ever fails, the checkpoint format version must be bumped.
func TestFillNormalAtGolden(t *testing.T) {
	golden := []float64{
		0.6446534253480593,
		1.5472842794741677,
		-1.7275850415356633,
		-0.7430505563207951,
		-0.1871984538503954,
		1.4966165737345989,
		-0.912768511453333,
		0.807614655988581,
	}
	buf := make([]float64, len(golden))
	FillNormalAt(42, 7, buf, 1)
	for i, want := range golden {
		if buf[i] != want {
			t.Fatalf("FillNormalAt(42, 7)[%d] = %v, want %v", i, buf[i], want)
		}
	}
	if got, want := SubKey(42, 7), int64(1506751773655410801); got != want {
		t.Fatalf("SubKey(42, 7) = %d, want %d", got, want)
	}
}

// TestFillNormalAtPure verifies the defining property of counter-keyed noise:
// the output is a pure function of (key, node, len, sigma) — repeated and
// interleaved materializations agree bit-for-bit, and distinct keys or nodes
// give distinct streams.
func TestFillNormalAtPure(t *testing.T) {
	a := make([]float64, 64)
	b := make([]float64, 64)
	FillNormalAt(5, 11, a, 2.5)
	FillNormalAt(5, 12, b, 2.5) // interleave another node
	c := make([]float64, 64)
	FillNormalAt(5, 11, c, 2.5)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("re-materialization diverged at %d: %v != %v", i, a[i], c[i])
		}
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams of distinct nodes share %d/64 values", same)
	}
	// sigma scales linearly: FillNormalAt(k, n, ·, 2σ) = 2·FillNormalAt(k, n, ·, σ).
	FillNormalAt(5, 11, b, 5.0)
	for i := range a {
		if b[i] != 2*a[i] {
			t.Fatalf("sigma scaling broken at %d: %v != 2·%v", i, b[i], a[i])
		}
	}
	// sigma = 0 writes zeros.
	FillNormalAt(5, 11, b, 0)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("sigma=0 produced %v", b[i])
		}
	}
}

// TestSubKeyDistinct checks the child-key derivation spreads indices and
// differs from the parent key (collisions among small indices would correlate
// Hybrid epoch trees).
func TestSubKeyDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := uint64(0); i < 1000; i++ {
		k := SubKey(42, i)
		if k == 42 {
			t.Fatalf("SubKey(42, %d) equals the parent key", i)
		}
		if seen[k] {
			t.Fatalf("SubKey collision at index %d", i)
		}
		seen[k] = true
	}
	if SubKey(1, 3) == SubKey(2, 3) {
		t.Fatal("distinct parents produced the same child key")
	}
}

// TestNormalSamplersShareStream verifies all Source normal samplers run the
// same ziggurat over the same stream: a NormalVector equals an element-wise
// FillNormal from an identically positioned source.
func TestNormalSamplersShareStream(t *testing.T) {
	a := NewSource(1234)
	b := NewSource(1234)
	va := a.NormalVector(33, 2)
	vb := make([]float64, 33)
	b.FillNormal(vb, 0, 2)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("NormalVector[%d] = %v, FillNormal = %v", i, va[i], vb[i])
		}
	}
	if a.Float64() != b.Float64() {
		t.Fatal("samplers advanced the stream differently")
	}
}

// TestGetBufPutBuf covers the pooled scratch buffers used by lazy noise
// materialization.
func TestGetBufPutBuf(t *testing.T) {
	b := GetBuf(16)
	if len(*b) != 16 {
		t.Fatalf("GetBuf(16) length = %d", len(*b))
	}
	for i := range *b {
		if (*b)[i] != 0 {
			t.Fatal("GetBuf returned a non-zeroed buffer")
		}
		(*b)[i] = 1
	}
	PutBuf(b)
	c := GetBuf(8)
	for i := range *c {
		if (*c)[i] != 0 {
			t.Fatal("recycled buffer not re-zeroed")
		}
	}
	PutBuf(c)
}
