// Package randx provides the random-sampling substrate for the library:
// Gaussian and Laplace samplers, random vectors and matrices, sparse and
// unit-sphere samples, and a splittable, seedable Source so every mechanism,
// test, and benchmark is reproducible. Normal sampling runs a shared
// double-precision ziggurat (ziggurat.go); counter.go adds the counter-keyed
// PRF streams (CounterSource, FillNormalAt) behind the lazy Tree-Mechanism
// node noise, whose output is a pure function of (key, node) rather than of
// draw order.
//
// All samplers take an explicit *Source; nothing in the library uses the global
// math/rand state. This matters for differential privacy experiments where we
// re-run mechanisms on neighboring streams and must control all other
// randomness.
package randx

import (
	"errors"
	"math"
	"math/rand"
)

// Source wraps a deterministic pseudo-random generator. It is a thin layer over
// math/rand.Rand that adds the distribution samplers the privacy mechanisms
// need and supports deterministic splitting for parallel or multi-component use.
//
// A Source's exact stream position is observable (State) and restorable
// (NewSourceAt), which is what makes estimator checkpoint/restore bit-identical
// to an uninterrupted run: the state is the pair (seed, draws), where draws
// counts the primitive generator advances consumed so far.
type Source struct {
	rng     *rand.Rand
	counter *countingSource
	seed    int64
}

// countingSource wraps the underlying math/rand generator and counts primitive
// state advances. math/rand's generator advances its state exactly once per
// Int63 and once per Uint64 (Int63 is Uint64 with the top bit masked), so the
// pair (seed, advance count) pinpoints the stream position exactly and can be
// restored by replaying that many primitive draws. Both methods delegate to
// the native generator, so produced values and the state trajectory are
// identical to the unwrapped generator.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// State is the exact position of a Source's deterministic stream: the seed it
// was created with and the number of primitive generator advances consumed
// since. It is the unit of randomness serialization in checkpoints.
type State struct {
	Seed  int64
	Draws uint64
}

// NewSource returns a Source seeded with the given seed.
func NewSource(seed int64) *Source {
	// rand.NewSource's result is documented to implement Source64.
	c := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{rng: rand.New(c), counter: c, seed: seed}
}

// MaxReplayDraws bounds the stream position NewSourceAt will replay. It sits
// orders of magnitude above any draw count the library's mechanisms can
// legitimately accumulate (with tree-node noise now counter-keyed rather than
// stream-drawn, the heaviest remaining consumer is the private batch ERM
// solver's per-iteration noise, far below 2⁴⁴ for any real stream), so real
// checkpoints always restore while a corrupt Draws field — which would
// otherwise spin the replay loop for centuries — is rejected immediately.
const MaxReplayDraws = 1 << 44

// ErrReplayTooLarge is returned by NewSourceAt for stream positions beyond
// MaxReplayDraws, which only corrupt checkpoints produce.
var ErrReplayTooLarge = errors.New("randx: stream position exceeds the replay bound (corrupt checkpoint?)")

// NewSourceAt returns a Source positioned exactly at the given state: it seeds
// a fresh generator and replays st.Draws primitive advances. Restoration cost
// is linear in Draws at a few nanoseconds per draw — microseconds to
// milliseconds for typical streams, but seconds once a source has consumed
// billions of draws (e.g. a high-dimensional second-moment tree over a very
// long stream; see docs/SERVING.md). The trade-off is deliberate: the
// underlying generator's unexported state never needs to be persisted and
// every pre-existing seeded stream in the repository stays bit-identical.
func NewSourceAt(st State) (*Source, error) {
	if st.Draws > MaxReplayDraws {
		return nil, ErrReplayTooLarge
	}
	s := NewSource(st.Seed)
	for s.counter.draws < st.Draws {
		s.counter.Int63()
	}
	return s, nil
}

// State returns the Source's current stream position.
func (s *Source) State() State {
	return State{Seed: s.seed, Draws: s.counter.draws}
}

// Seed returns the seed the Source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Mix64 applies the SplitMix64 finalizer: a bijective avalanche mix that
// spreads nearby inputs to well-separated outputs. It is the seed-derivation
// primitive shared by Split and by per-stream seed derivation in consumers
// (e.g. the public Pool).
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new Source whose stream is deterministically derived from the
// parent but statistically independent of subsequent draws from it. It is used
// to hand separate randomness to sub-components (e.g. the two Tree Mechanism
// instances inside a regression mechanism).
func (s *Source) Split() *Source {
	return NewSource(s.DeriveKey())
}

// DeriveKey draws a 63-bit key from the parent stream — the allocation-free
// form of Split().Seed(), and the derivation the continual-sum mechanisms use
// for their noise keys. Like Split it consumes one parent draw, so distinct
// mechanisms constructed from the same Source receive independent keys (and
// hence independent noise) exactly as they received independent sub-streams
// under the draw-based scheme.
func (s *Source) DeriveKey() int64 {
	// SplitMix-style mixing keeps derived keys well separated even for small
	// consecutive parent draws.
	return int64(Mix64(s.rng.Uint64()) & 0x7fffffffffffffff)
}

// SplitN returns n Sources split off the parent in sequence, a convenience
// for handing one deterministic stream to each of n sub-components or
// workers: the split seeds depend only on the parent's state, never on
// scheduling, so parallel consumers reproduce serial ones exactly. (The
// experiment sweeps currently derive per-cell sources from the seed directly;
// SplitN is for callers that hold a Source rather than a seed.)
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Rand exposes the underlying *rand.Rand for callers that need raw uniform
// variates (e.g. permutation sampling).
func (s *Source) Rand() *rand.Rand { return s.rng }

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform sample in {0, ..., n-1}.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a uniformly random permutation of {0, ..., n-1}.
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Normal returns a sample from N(mu, sigma^2). sigma must be non-negative;
// sigma == 0 returns mu exactly. All of the Source's normal samplers (Normal,
// StdNormal, FillNormal, NormalVector, NormalMatrix) share one
// double-precision ziggurat (see ziggurat.go) over the counting generator, so
// they consume the stream identically per sample and remain interchangeable.
func (s *Source) Normal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("randx: negative standard deviation")
	}
	if sigma == 0 {
		return mu
	}
	return mu + sigma*zigNormal(s.counter)
}

// StdNormal returns a sample from N(0, 1).
func (s *Source) StdNormal() float64 { return zigNormal(s.counter) }

// FillNormal fills dst with i.i.d. N(mu, sigma^2) samples without allocating.
// It draws exactly len(dst) normals in index order through the same ziggurat
// as Normal, so it consumes the underlying stream identically to a scalar
// Normal loop — swapping one for the other never changes downstream
// randomness.
func (s *Source) FillNormal(dst []float64, mu, sigma float64) {
	if sigma < 0 {
		panic("randx: negative standard deviation")
	}
	if sigma == 0 {
		for i := range dst {
			dst[i] = mu
		}
		return
	}
	c := s.counter
	for i := range dst {
		dst[i] = mu + sigma*zigNormal(c)
	}
}

// Laplace returns a sample from the Laplace distribution with mean 0 and scale b.
// The density is (1/2b) exp(-|x|/b). b must be non-negative; b == 0 returns 0.
func (s *Source) Laplace(b float64) float64 {
	if b < 0 {
		panic("randx: negative Laplace scale")
	}
	if b == 0 {
		return 0
	}
	// Inverse CDF sampling: u uniform in (-1/2, 1/2).
	u := s.rng.Float64() - 0.5
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
		u = -u
	}
	return -sign * b * math.Log(1-2*u)
}

// Exponential returns a sample from the exponential distribution with rate
// lambda (mean 1/lambda).
func (s *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("randx: non-positive exponential rate")
	}
	return s.rng.ExpFloat64() / lambda
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Uniform returns a uniform sample in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Rademacher returns +1 or -1 with equal probability.
func (s *Source) Rademacher() float64 {
	if s.rng.Int63()&1 == 0 {
		return 1
	}
	return -1
}

// NormalVector returns a d-dimensional vector with i.i.d. N(0, sigma^2) entries.
func (s *Source) NormalVector(d int, sigma float64) []float64 {
	out := make([]float64, d)
	if sigma == 0 {
		return out
	}
	for i := range out {
		out[i] = sigma * zigNormal(s.counter)
	}
	return out
}

// LaplaceVector returns a d-dimensional vector with i.i.d. Laplace(0, b) entries.
func (s *Source) LaplaceVector(d int, b float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = s.Laplace(b)
	}
	return out
}

// UnitSphere returns a uniform sample from the Euclidean unit sphere in R^d.
func (s *Source) UnitSphere(d int) []float64 {
	for {
		v := s.NormalVector(d, 1)
		var n float64
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
		if n > 1e-12 {
			for i := range v {
				v[i] /= n
			}
			return v
		}
	}
}

// UnitBall returns a uniform sample from the Euclidean unit ball in R^d.
func (s *Source) UnitBall(d int) []float64 {
	v := s.UnitSphere(d)
	r := math.Pow(s.rng.Float64(), 1/float64(d))
	for i := range v {
		v[i] *= r
	}
	return v
}

// SparseVector returns a d-dimensional vector with exactly k nonzero entries at
// uniformly random positions; each nonzero entry is ±1/√k so that the vector has
// unit Euclidean norm. k is clamped to [1, d].
func (s *Source) SparseVector(d, k int) []float64 {
	if d <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	out := make([]float64, d)
	perm := s.rng.Perm(d)
	mag := 1 / math.Sqrt(float64(k))
	for i := 0; i < k; i++ {
		out[perm[i]] = mag * s.Rademacher()
	}
	return out
}

// NormalMatrix returns an m x d row-major matrix with i.i.d. N(0, sigma^2)
// entries, returned as a flat slice of length m*d.
func (s *Source) NormalMatrix(m, d int, sigma float64) []float64 {
	out := make([]float64, m*d)
	if sigma == 0 {
		return out
	}
	for i := range out {
		out[i] = sigma * zigNormal(s.counter)
	}
	return out
}
