package randx

import "sync"

// This file implements the counter-keyed noise substrate of the lazy Tree
// Mechanism: a splittable, counter-based PRF stream whose output is a pure
// function of (key, node) — never of draw order. The continual-sum mechanisms
// key every tree node's noise vector by its position in the dyadic tree, so
// ingestion performs no sampling at all and the noise of a node is
// materialized (identically, no matter when or how often) only when the node
// first participates in a released prefix sum. Batch and scalar ingestion,
// and checkpoint/restore at any cut point, are bit-identical by construction:
// there is no sampler state to advance out of sync.

// golden is the SplitMix64 increment (2^64/φ, the Weyl constant of the
// sequence).
const golden = 0x9e3779b97f4a7c15

// counterTag domain-separates SubKey derivation from CounterSource stream
// initialization (an arbitrary odd 64-bit constant, distinct from golden).
const counterTag = 0xd1b54a32d192ed03

// CounterSource is a counter-mode PRF stream: a SplitMix64 sequence whose
// initial state is a hash of a 64-bit key and a node index. Successive Uint64
// values are Mix64 over a Weyl sequence — the standard SplitMix64 generator —
// so streams for distinct (key, node) pairs are statistically independent and
// each stream is reproducible from its two integers alone. The zero value is
// a valid (key 0, node 0) stream; use NewCounterSource for keyed streams.
type CounterSource struct {
	state uint64
}

// NewCounterSource returns the PRF stream for the given key and node index.
func NewCounterSource(key int64, node uint64) CounterSource {
	s := Mix64(uint64(key) + golden)
	s = Mix64(s ^ Mix64(node+golden))
	return CounterSource{state: s}
}

// Uint64 returns the next 64-bit word of the stream.
func (c *CounterSource) Uint64() uint64 {
	c.state += golden
	return Mix64(c.state)
}

// FillNormal fills dst with i.i.d. N(0, sigma^2) samples drawn from the
// stream via the ziggurat. sigma must be non-negative; sigma == 0 writes
// zeros without consuming the stream.
func (c *CounterSource) FillNormal(dst []float64, sigma float64) {
	if sigma < 0 {
		panic("randx: negative standard deviation")
	}
	if sigma == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] = sigma * zigNormal(c)
	}
}

// SubKey derives an independent child PRF key from a parent key and an index,
// e.g. the per-epoch tree keys of the Hybrid mechanism. The derivation is a
// pure function (no generator state), so restored mechanisms re-derive the
// same sub-keys without replaying any stream.
func SubKey(key int64, idx uint64) int64 {
	return int64(Mix64(Mix64(uint64(key)+golden)^Mix64(idx+counterTag)) & 0x7fffffffffffffff)
}

// FillNormalAt fills dst with the i.i.d. N(0, sigma^2) noise vector of stream
// (key, node): a pure function of its arguments. It is the convenience form
// of CounterSource.FillNormal for callers that do not retain a stream.
func FillNormalAt(key int64, node uint64, dst []float64, sigma float64) {
	c := NewCounterSource(key, node)
	c.FillNormal(dst, sigma)
}

// bufPool recycles float64 scratch buffers for transient noise
// materialization (e.g. the Hybrid mechanism's per-epoch snapshot noise at
// estimate time), so the lazy paths stay allocation-free in steady state.
var bufPool = sync.Pool{New: func() any { return new([]float64) }}

// GetBuf returns a zeroed scratch buffer of length n from the pool.
func GetBuf(n int) *[]float64 {
	b := bufPool.Get().(*[]float64)
	if cap(*b) < n {
		*b = make([]float64, n)
	}
	*b = (*b)[:n]
	for i := range *b {
		(*b)[i] = 0
	}
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]float64) { bufPool.Put(b) }
