// Package version carries the build identification string, injected at link
// time:
//
//	go build -ldflags "-X privreg/internal/version.Version=v1.2.3" ./...
//
// Uninjected builds (go test, plain go build) report "dev". The string is
// surfaced in /healthz, /v1/stats, and the wire HelloAck so mixed-version
// clusters are detectable during rolling upgrades.
package version

// Version is the build identifier. Overridden via -ldflags -X; never mutated
// at runtime.
var Version = "dev"
