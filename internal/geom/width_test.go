package geom

import (
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

func TestEstimateWidthAgainstAnalytic(t *testing.T) {
	src := randx.NewSource(1)
	l2 := constraint.NewL2Ball(16, 1)
	w, err := EstimateWidth(l2, 3000, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-l2.GaussianWidth())/l2.GaussianWidth() > 0.1 {
		t.Fatalf("estimated width %v vs analytic %v", w, l2.GaussianWidth())
	}
	if _, err := EstimateWidth(l2, 0, src); err == nil {
		t.Fatal("zero samples should error")
	}
	if _, err := EstimateWidth(l2, 10, nil); err == nil {
		t.Fatal("nil source should error")
	}
}

func TestUnionWidthUpper(t *testing.T) {
	a := constraint.NewL1Ball(32, 1)
	b := constraint.NewL2Ball(32, 1)
	if got := UnionWidthUpper(a, b); math.Abs(got-(a.GaussianWidth()+b.GaussianWidth())) > 1e-12 {
		t.Fatalf("UnionWidthUpper = %v", got)
	}
}

func TestGordonDimension(t *testing.T) {
	// m must grow like w²/γ² and be clamped to the ambient dimension.
	m1 := GordonDimension(4, 0.5, 0.05, 1000)
	m2 := GordonDimension(8, 0.5, 0.05, 1000)
	if m2 <= m1 {
		t.Fatalf("dimension should grow with width: %d vs %d", m1, m2)
	}
	m3 := GordonDimension(4, 0.25, 0.05, 1000)
	if m3 <= m1 {
		t.Fatalf("dimension should grow as gamma shrinks: %d vs %d", m3, m1)
	}
	if got := GordonDimension(100, 0.1, 0.05, 50); got != 50 {
		t.Fatalf("dimension not clamped to ambient: %d", got)
	}
	if got := GordonDimension(4, 0.5, 0.05, 0); got < 1 {
		t.Fatalf("dimension should be at least 1: %d", got)
	}
	// Exact formula check: max(w², log(1/β))/γ².
	w, gamma, beta := 3.0, 0.5, 0.01
	want := int(math.Ceil(math.Max(w*w, math.Log(1/beta)) / (gamma * gamma)))
	if got := GordonDimension(w, gamma, beta, 10000); got != want {
		t.Fatalf("GordonDimension = %d, want %d", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for gamma out of range")
			}
		}()
		GordonDimension(1, 2, 0.05, 10)
	}()
}

func TestProjectionGamma(t *testing.T) {
	// γ = W^{1/3}/T^{1/3}, clamped to (0, 1/2].
	got := ProjectionGamma(8, 1000)
	want := math.Cbrt(8) / math.Cbrt(1000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("gamma = %v, want %v", got, want)
	}
	if ProjectionGamma(1000, 2) != 0.5 {
		t.Fatal("gamma should clamp to 0.5")
	}
	if g := ProjectionGamma(0, 0); g <= 0 || g > 0.5 {
		t.Fatalf("degenerate inputs gave gamma %v", g)
	}
	// Larger T → smaller γ (finer embedding, bigger m).
	if ProjectionGamma(8, 100000) >= ProjectionGamma(8, 100) {
		t.Fatal("gamma should shrink with T")
	}
}

func TestNormDistortionIdentityAndScaling(t *testing.T) {
	src := randx.NewSource(2)
	pts := make([]vec.Vector, 20)
	for i := range pts {
		pts[i] = vec.Vector(src.UnitSphere(8))
	}
	identity := func(x vec.Vector) vec.Vector { return x.Clone() }
	if d := NormDistortion(identity, pts); d != 0 {
		t.Fatalf("identity distortion = %v", d)
	}
	double := func(x vec.Vector) vec.Vector { return vec.Scaled(x, 2) }
	if d := NormDistortion(double, pts); math.Abs(d-3) > 1e-9 { // |4-1|/1 = 3
		t.Fatalf("doubling distortion = %v, want 3", d)
	}
	// Zero points are skipped.
	if d := NormDistortion(identity, []vec.Vector{vec.NewVector(8)}); d != 0 {
		t.Fatalf("zero-point distortion = %v", d)
	}
}

func TestInnerProductDistortion(t *testing.T) {
	src := randx.NewSource(3)
	xs := []vec.Vector{vec.Vector(src.UnitSphere(6)), vec.Vector(src.UnitSphere(6))}
	ys := []vec.Vector{vec.Vector(src.UnitSphere(6))}
	identity := func(x vec.Vector) vec.Vector { return x.Clone() }
	if d := InnerProductDistortion(identity, xs, ys); d != 0 {
		t.Fatalf("identity inner-product distortion = %v", d)
	}
	negate := func(x vec.Vector) vec.Vector { return vec.Scaled(x, -1) }
	// <-x, -y> = <x, y>, so negation has zero distortion too.
	if d := InnerProductDistortion(negate, xs, ys); d > 1e-12 {
		t.Fatalf("negation distortion = %v", d)
	}
	zero := func(x vec.Vector) vec.Vector { return vec.NewVector(len(x)) }
	if d := InnerProductDistortion(zero, xs, ys); d <= 0 {
		t.Fatalf("zero-map distortion = %v, want positive", d)
	}
}

func TestLiftErrorBound(t *testing.T) {
	c := constraint.NewL1Ball(256, 1)
	b1 := LiftErrorBound(c, 16, 0.05)
	b2 := LiftErrorBound(c, 64, 0.05)
	if b2 >= b1 {
		t.Fatalf("lift bound should shrink with m: %v vs %v", b1, b2)
	}
	// Exact formula.
	want := c.GaussianWidth()/4 + c.Diameter()*math.Sqrt(math.Log(1/0.05))/4
	if math.Abs(b1-want) > 1e-12 {
		t.Fatalf("lift bound = %v, want %v", b1, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for m=0")
			}
		}()
		LiftErrorBound(c, 0, 0.05)
	}()
}

// TestGordonEmbeddingEmpirically verifies the substance of Theorem 5.1: a
// Gaussian projection with m ≈ w(S)²/γ² rows preserves the norms of points of a
// low-width set to within γ (with comfortable slack), while a much smaller m
// does not.
func TestGordonEmbeddingEmpirically(t *testing.T) {
	src := randx.NewSource(4)
	d, k := 128, 3
	domain := constraint.NewSparseSet(d, k, 1)
	gamma := 0.35
	m := GordonDimension(domain.GaussianWidth(), gamma, 0.05, d)
	sigma := 1 / math.Sqrt(float64(m))
	phi := vec.NewMatrix(m, d)
	for i := range phi.Data() {
		phi.Data()[i] = src.Normal(0, sigma)
	}
	project := func(x vec.Vector) vec.Vector { return phi.MulVec(x) }
	pts := make([]vec.Vector, 100)
	for i := range pts {
		pts[i] = vec.Vector(src.SparseVector(d, k))
	}
	dist := NormDistortion(project, pts)
	if dist > 2.5*gamma {
		t.Fatalf("distortion %v far exceeds target %v at m=%d", dist, gamma, m)
	}
}
