// Package geom provides the geometric tools of Section 5 of the paper:
// Monte-Carlo Gaussian-width estimation, the Gordon-embedding dimension rule
// (Theorem 5.1), empirical distortion measurement for random projections, and
// the lifting-error bound of Theorem 5.3.
package geom

import (
	"errors"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// EstimateWidth estimates the Gaussian width w(S) = E_g sup_{a∈S} <a,g> of a
// set by averaging its support function over samples Gaussian directions. The
// returned value is an unbiased Monte-Carlo estimate; its standard error decays
// as diameter/√samples.
func EstimateWidth(s constraint.Set, samples int, src *randx.Source) (float64, error) {
	if samples <= 0 {
		return 0, errors.New("geom: sample count must be positive")
	}
	if src == nil {
		return 0, errors.New("geom: nil randomness source")
	}
	var sum float64
	for i := 0; i < samples; i++ {
		g := vec.Vector(src.NormalVector(s.Dim(), 1))
		sum += s.SupportFunction(g)
	}
	return sum / float64(samples), nil
}

// UnionWidthUpper returns the standard upper bound on the Gaussian width of a
// union (or Minkowski-style combination) of two sets used throughout Section 5:
// w(X ∪ C) ≤ w(X) + w(C). It is used to pick the projection dimension m.
func UnionWidthUpper(a, b constraint.Set) float64 {
	return a.GaussianWidth() + b.GaussianWidth()
}

// GordonDimension returns the embedding dimension m prescribed by Gordon's
// theorem (Theorem 5.1): to preserve all squared norms of a set of Gaussian
// width w up to relative error γ with failure probability β one needs
//
//	m ≥ (C/γ²) · max{w², log(1/β)}.
//
// The constant C is taken to be 1, matching the Θ(·) setting used in
// Algorithm 3; callers that need more head-room can scale the result.
// The returned dimension is clamped to [1, ambient].
func GordonDimension(width, gamma, beta float64, ambient int) int {
	if gamma <= 0 || gamma >= 1 {
		panic("geom: GordonDimension requires gamma in (0,1)")
	}
	if beta <= 0 || beta >= 1 {
		panic("geom: GordonDimension requires beta in (0,1)")
	}
	need := math.Max(width*width, math.Log(1/beta)) / (gamma * gamma)
	m := int(math.Ceil(need))
	if m < 1 {
		m = 1
	}
	if ambient > 0 && m > ambient {
		m = ambient
	}
	return m
}

// ProjectionGamma returns the distortion parameter γ used by Algorithm 3 of the
// paper: γ = W^{1/3} / T^{1/3}, where W = w(X) + w(C) and T is the stream
// length. The value is clamped to (0, 1/2] so that the embedding guarantees
// remain meaningful for very short streams or very wide sets.
func ProjectionGamma(width float64, streamLen int) float64 {
	if streamLen < 1 {
		streamLen = 1
	}
	g := math.Cbrt(width) / math.Cbrt(float64(streamLen))
	if g > 0.5 {
		g = 0.5
	}
	if g <= 0 || math.IsNaN(g) {
		g = 0.5
	}
	return g
}

// NormDistortion measures the worst relative squared-norm distortion
// max_i |‖Φx_i‖² - ‖x_i‖²| / ‖x_i‖² of a projection over a list of test points.
// Zero-norm points are skipped. It is the quantity bounded by Gordon's theorem
// and is what experiment E8 sweeps against m.
func NormDistortion(project func(vec.Vector) vec.Vector, points []vec.Vector) float64 {
	var worst float64
	for _, x := range points {
		n2 := vec.Dot(x, x)
		if n2 == 0 {
			continue
		}
		px := project(x)
		p2 := vec.Dot(px, px)
		if rel := math.Abs(p2-n2) / n2; rel > worst {
			worst = rel
		}
	}
	return worst
}

// InnerProductDistortion measures the worst additive inner-product distortion
// max_{i,j} |<Φx_i, Φy_j> - <x_i, y_j>| / (‖x_i‖‖y_j‖) over all pairs from two
// point lists, the quantity controlled by Corollary 5.2.
func InnerProductDistortion(project func(vec.Vector) vec.Vector, xs, ys []vec.Vector) float64 {
	pxs := make([]vec.Vector, len(xs))
	for i, x := range xs {
		pxs[i] = project(x)
	}
	pys := make([]vec.Vector, len(ys))
	for j, y := range ys {
		pys[j] = project(y)
	}
	var worst float64
	for i, x := range xs {
		nx := vec.Norm2(x)
		if nx == 0 {
			continue
		}
		for j, y := range ys {
			ny := vec.Norm2(y)
			if ny == 0 {
				continue
			}
			diff := math.Abs(vec.Dot(pxs[i], pys[j])-vec.Dot(x, y)) / (nx * ny)
			if diff > worst {
				worst = diff
			}
		}
	}
	return worst
}

// LiftErrorBound returns the high-probability bound of Theorem 5.3 on the
// Euclidean error of recovering u from Φu by Minkowski-functional minimization:
//
//	‖u - û‖ = O( w(C)/√m + ‖C‖·√(log(1/β))/√m ).
//
// The implied constant is taken to be 1.
func LiftErrorBound(c constraint.Set, m int, beta float64) float64 {
	if m <= 0 {
		panic("geom: LiftErrorBound requires positive projection dimension")
	}
	if beta <= 0 || beta >= 1 {
		panic("geom: LiftErrorBound requires beta in (0,1)")
	}
	sm := math.Sqrt(float64(m))
	return c.GaussianWidth()/sm + c.Diameter()*math.Sqrt(math.Log(1/beta))/sm
}
