package codec

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// This file defines the two on-disk record formats of the stream-store
// engine (internal/store):
//
//   - a segment: one stream's serialized estimator state, framed with the
//     store's meta string (the mechanism name), the stream ID, and a CRC so a
//     torn or misdirected file is detected before its bytes reach an
//     estimator;
//   - a manifest: the atomic root of an incremental checkpoint, listing for
//     every live stream the segment file holding its latest durable state.
//
// Both records share the package's little-endian primitives, carry an
// explicit version byte, and end in a CRC-32 (IEEE) of everything before it.
// The CRC is not for security — it catches the failure modes disks actually
// have (truncation on crash, a partially applied rename) so restore fails
// loudly instead of feeding garbage to UnmarshalBinary.

const (
	segmentMagic   = "PRSG"
	segmentVersion = 1

	manifestMagic   = "PRMF"
	manifestVersion = 1
)

// crcOf is the checksum both records append: CRC-32 (IEEE) over the encoded
// bytes preceding the checksum field.
func crcOf(b []byte) uint64 { return uint64(crc32.ChecksumIEEE(b)) }

// EncodeSegment frames one stream's checkpoint blob as a standalone segment
// file: magic, version, the store meta string (mechanism name), the stream
// ID, the blob, and a trailing CRC.
func EncodeSegment(meta, id string, blob []byte) []byte {
	var w Writer
	w.String(segmentMagic)
	w.Version(segmentVersion)
	w.String(meta)
	w.String(id)
	w.Blob(blob)
	w.U64(crcOf(w.Bytes()))
	return w.Bytes()
}

// DecodeSegment parses and verifies a segment file, returning the meta
// string, stream ID, and checkpoint blob. The returned blob aliases data.
func DecodeSegment(data []byte) (meta, id string, blob []byte, err error) {
	r := NewReader(data)
	if r.String() != segmentMagic {
		return "", "", nil, fmt.Errorf("codec: not a stream segment (bad magic)")
	}
	r.Version(segmentVersion)
	meta = r.String()
	id = r.String()
	blob = r.Blob()
	body := len(data) - r.Remaining()
	crc := r.U64()
	if err := r.Finish(); err != nil {
		return "", "", nil, fmt.Errorf("codec: corrupt stream segment: %w", err)
	}
	if crc != crcOf(data[:body]) {
		return "", "", nil, fmt.Errorf("codec: stream segment CRC mismatch (torn write or wrong file)")
	}
	return meta, id, blob, nil
}

// ManifestEntry records one stream in a checkpoint manifest: its ID, the
// segment file (relative to the store's segment directory) holding its latest
// durable state, and its observation count at the time that segment was
// written (so stream lengths are known without faulting the stream in).
type ManifestEntry struct {
	ID   string
	File string
	Len  int64
}

// EncodeManifest serializes a checkpoint manifest. Entries are written in
// sorted-ID order regardless of input order, so two manifests describing the
// same state are byte-identical.
func EncodeManifest(meta string, entries []ManifestEntry) []byte {
	sorted := make([]ManifestEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	var w Writer
	w.String(manifestMagic)
	w.Version(manifestVersion)
	w.String(meta)
	w.Int(len(sorted))
	for _, e := range sorted {
		w.String(e.ID)
		w.String(e.File)
		w.I64(e.Len)
	}
	w.U64(crcOf(w.Bytes()))
	return w.Bytes()
}

// DecodeManifest parses and verifies a checkpoint manifest.
func DecodeManifest(data []byte) (meta string, entries []ManifestEntry, err error) {
	r := NewReader(data)
	if r.String() != manifestMagic {
		return "", nil, fmt.Errorf("codec: not a checkpoint manifest (bad magic)")
	}
	r.Version(manifestVersion)
	meta = r.String()
	n := r.Int()
	if r.Err() != nil {
		return "", nil, fmt.Errorf("codec: corrupt manifest: %w", r.Err())
	}
	if n < 0 || n > maxSliceLen {
		return "", nil, fmt.Errorf("codec: corrupt manifest (entry count %d)", n)
	}
	entries = make([]ManifestEntry, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		e := ManifestEntry{ID: r.String(), File: r.String(), Len: r.I64()}
		if r.Err() != nil {
			return "", nil, fmt.Errorf("codec: corrupt manifest: %w", r.Err())
		}
		entries = append(entries, e)
	}
	body := len(data) - r.Remaining()
	crc := r.U64()
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("codec: corrupt manifest: %w", err)
	}
	if crc != crcOf(data[:body]) {
		return "", nil, fmt.Errorf("codec: manifest CRC mismatch (torn write or wrong file)")
	}
	return meta, entries, nil
}
