// Package codec implements the compact, versioned binary encoding used by the
// checkpoint/restore machinery: every estimator, continual-sum mechanism, and
// randomness source serializes its mutable state through the Writer/Reader
// pair defined here, so a stream can be checkpointed at an arbitrary timestep
// and resumed — on the same or another process — bit-identically to an
// uninterrupted run.
//
// The format is deliberately simple: fixed-width little-endian scalars,
// length-prefixed slices and strings, and an explicit version byte at the head
// of every component section. Readers accumulate the first error and turn all
// subsequent reads into no-ops, so decoding code can be written straight-line
// and checked once at the end with Err.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Writer builds a binary checkpoint blob. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Version writes a component version byte.
func (w *Writer) Version(v uint8) { w.buf = append(w.buf, v) }

// U64 writes a fixed-width unsigned integer.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 writes a fixed-width signed integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as a signed 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as a single byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// F64 writes a float64 by its IEEE-754 bits, preserving the exact value
// (including NaN payloads and signed zeros) so restored state is bit-identical.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.Int(len(v))
	for _, x := range v {
		w.F64(x)
	}
}

// Blob writes a length-prefixed byte slice (used to nest one component's
// encoding inside another's).
func (w *Writer) Blob(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// ErrShortBuffer is returned when a Reader runs past the end of its input.
var ErrShortBuffer = errors.New("codec: truncated input")

// maxSliceLen guards length prefixes so a corrupt blob cannot trigger a huge
// allocation before the mismatch is detected.
const maxSliceLen = 1 << 30

// Reader decodes a blob produced by Writer. The first error sticks: subsequent
// reads return zero values, and Err reports what went wrong.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over the given blob.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records a decoding error discovered by the caller (e.g. a semantic
// range check); like internal errors it sticks and turns subsequent reads into
// no-ops.
func (r *Reader) Fail(err error) { r.fail(err) }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Version reads a component version byte and checks it against want.
func (r *Reader) Version(want uint8) {
	b := r.take(1)
	if b == nil {
		return
	}
	if b[0] != want {
		r.fail(fmt.Errorf("codec: unsupported version %d (want %d)", b[0], want))
	}
}

// U64 reads a fixed-width unsigned integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	return b[0] != 0
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxSliceLen || r.off+8*n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// F64sInto reads a length-prefixed []float64 into dst, requiring the encoded
// length to match len(dst) exactly. It is the allocation-free counterpart of
// F64s for fixed-shape state buffers.
func (r *Reader) F64sInto(dst []float64) {
	n := r.Int()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail(fmt.Errorf("codec: encoded slice length %d does not match expected %d", n, len(dst)))
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// Blob reads a length-prefixed byte slice.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxSliceLen {
		r.fail(ErrShortBuffer)
		return nil
	}
	return r.take(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }

// ExpectInt reads an int and checks it equals want; the label names the field
// in the error message. Used to verify structural parameters (dimensions,
// horizons) that must match between the checkpoint and the restoring instance.
func (r *Reader) ExpectInt(label string, want int) {
	got := r.Int()
	if r.err == nil && got != want {
		r.fail(fmt.Errorf("codec: %s mismatch: checkpoint has %d, restoring instance has %d", label, got, want))
	}
}

// ExpectString reads a string and checks it equals want.
func (r *Reader) ExpectString(label, want string) {
	got := r.String()
	if r.err == nil && got != want {
		r.fail(fmt.Errorf("codec: %s mismatch: checkpoint has %q, restoring instance has %q", label, got, want))
	}
}

// Finish returns the first decoding error, or an error when unread bytes
// remain (a sign the blob and the decoder disagree about the format).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("codec: %d trailing bytes after decode", r.Remaining())
	}
	return nil
}
