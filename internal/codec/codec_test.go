package codec

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Version(3)
	w.U64(42)
	w.I64(-17)
	w.Int(123456)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Copysign(0, -1))
	w.F64s([]float64{1.5, -2.25, 0})
	w.Blob([]byte{9, 8, 7})
	w.String("priv-inc-reg1")

	r := NewReader(w.Bytes())
	r.Version(3)
	if got := r.U64(); got != 42 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -17 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatal("negative zero not preserved")
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	b := r.Blob()
	if len(b) != 3 || b[0] != 9 {
		t.Fatalf("Blob = %v", b)
	}
	if got := r.String(); got != "priv-inc-reg1" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncatedAndStickyErrors(t *testing.T) {
	var w Writer
	w.U64(1)
	r := NewReader(w.Bytes()[:4])
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Subsequent reads stay no-ops and the first error sticks.
	_ = r.F64s()
	_ = r.String()
	if r.Err() != ErrShortBuffer {
		t.Fatalf("sticky error = %v", r.Err())
	}
}

func TestVersionAndExpectMismatch(t *testing.T) {
	var w Writer
	w.Version(1)
	r := NewReader(w.Bytes())
	r.Version(2)
	if r.Err() == nil {
		t.Fatal("expected version mismatch")
	}

	var w2 Writer
	w2.Int(5)
	w2.String("dense")
	r2 := NewReader(w2.Bytes())
	r2.ExpectInt("dim", 6)
	if r2.Err() == nil {
		t.Fatal("expected dim mismatch")
	}
	r3 := NewReader(w2.Bytes())
	r3.ExpectInt("dim", 5)
	r3.ExpectString("backend", "srht")
	if r3.Err() == nil {
		t.Fatal("expected backend mismatch")
	}
}

func TestF64sIntoAndTrailing(t *testing.T) {
	var w Writer
	w.F64s([]float64{1, 2, 3})
	dst := make([]float64, 3)
	r := NewReader(w.Bytes())
	r.F64sInto(dst)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 3 {
		t.Fatalf("F64sInto = %v", dst)
	}
	// Length mismatch is rejected.
	r = NewReader(w.Bytes())
	r.F64sInto(make([]float64, 2))
	if r.Err() == nil {
		t.Fatal("expected length mismatch")
	}
	// Trailing bytes are rejected by Finish.
	var w2 Writer
	w2.Int(1)
	w2.Int(2)
	r2 := NewReader(w2.Bytes())
	_ = r2.Int()
	if err := r2.Finish(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestCorruptLengthDoesNotAllocate(t *testing.T) {
	var w Writer
	w.Int(1 << 40) // absurd length prefix with no payload
	r := NewReader(w.Bytes())
	if out := r.F64s(); out != nil || r.Err() == nil {
		t.Fatal("corrupt length should fail cleanly")
	}
}
