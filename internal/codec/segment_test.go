package codec

import (
	"bytes"
	"strings"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	blob := []byte{1, 2, 3, 250, 0, 7}
	data := EncodeSegment("gradient", "user/42", blob)
	meta, id, got, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "gradient" || id != "user/42" || !bytes.Equal(got, blob) {
		t.Fatalf("round trip: meta=%q id=%q blob=%v", meta, id, got)
	}
	// Empty blob and empty ID are legal.
	if _, _, _, err := DecodeSegment(EncodeSegment("m", "", nil)); err != nil {
		t.Fatalf("empty segment: %v", err)
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	data := EncodeSegment("gradient", "alice", []byte("state-bytes"))

	// Truncation at every length must be rejected, not silently decoded.
	for cut := 0; cut < len(data); cut++ {
		if _, _, _, err := DecodeSegment(data[:cut]); err == nil {
			t.Fatalf("truncated segment (%d/%d bytes) decoded without error", cut, len(data))
		}
	}
	// A single flipped byte anywhere must fail the CRC (or the framing).
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, _, err := DecodeSegment(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded without error", i)
		}
	}
	// Wrong magic gets a distinct message.
	if _, _, _, err := DecodeSegment([]byte("not a segment at all")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestManifestRoundTripAndOrder(t *testing.T) {
	entries := []ManifestEntry{
		{ID: "zed", File: "00aa-3.seg", Len: 7},
		{ID: "alice", File: "00bb-1.seg", Len: 42},
		{ID: "bob", File: "00cc-2.seg", Len: 0},
	}
	data := EncodeManifest("gradient", entries)
	meta, got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "gradient" || len(got) != 3 {
		t.Fatalf("decode: meta=%q entries=%v", meta, got)
	}
	// Entries come back in sorted-ID order regardless of input order, so two
	// manifests describing the same state are byte-identical.
	if got[0].ID != "alice" || got[1].ID != "bob" || got[2].ID != "zed" {
		t.Fatalf("entries not sorted: %v", got)
	}
	if got[0].Len != 42 || got[0].File != "00bb-1.seg" {
		t.Fatalf("entry fields mangled: %+v", got[0])
	}
	shuffled := []ManifestEntry{entries[1], entries[2], entries[0]}
	if !bytes.Equal(data, EncodeManifest("gradient", shuffled)) {
		t.Fatal("same entries in a different order produced different manifest bytes")
	}
	// Empty manifest (no streams yet) round-trips.
	if _, got, err := DecodeManifest(EncodeManifest("m", nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty manifest: %v %v", got, err)
	}
}

func TestManifestDetectsCorruption(t *testing.T) {
	data := EncodeManifest("gradient", []ManifestEntry{{ID: "a", File: "f.seg", Len: 3}})
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodeManifest(data[:cut]); err == nil {
			t.Fatalf("truncated manifest (%d/%d bytes) decoded without error", cut, len(data))
		}
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x08
		if _, _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded without error", i)
		}
	}
}
