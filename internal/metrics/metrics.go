// Package metrics provides the evaluation tooling of the benchmark harness:
// excess empirical-risk computation against exact minimizers, per-timestep risk
// curves, aggregation over repeated trials, log–log scaling-exponent fits used
// to check the *shape* of the paper's bounds, and plain-text table rendering
// that matches the rows reported in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"privreg/internal/loss"
	"privreg/internal/vec"
)

// ExcessRisk returns J(θ; data) - J(θ̂; data) for an explicit candidate and the
// exact minimizer θ̂ supplied by the caller. Negative values (possible when the
// "exact" minimizer is itself approximate) are clamped to zero.
func ExcessRisk(f loss.Function, data []loss.Point, theta, exact vec.Vector) float64 {
	r := loss.Empirical(f, theta, data) - loss.Empirical(f, exact, data)
	if r < 0 {
		return 0
	}
	return r
}

// Series is a sequence of (x, y) measurements, e.g. excess risk as a function
// of the stream length or the dimension.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.X) }

// LogLogSlope fits a least-squares line to (log x, log y) and returns its slope,
// the empirical scaling exponent. Points with non-positive coordinates are
// skipped; at least two usable points are required, otherwise NaN is returned.
// This is the primary tool for checking that measured excess risk grows like
// d^{1/2}, T^{1/3}, etc., as the paper's bounds predict.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	return slope(lx, ly)
}

func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Summary holds basic order statistics of repeated trials.
type Summary struct {
	Mean, Std, Median, Min, Max float64
	N                           int
}

// Summarize computes a Summary over the values.
func Summarize(values []float64) Summary {
	n := len(values)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	mn, mx := values[0], values[0]
	for _, v := range values {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	med := sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return Summary{Mean: mean, Std: std, Median: med, Min: mn, Max: mx, N: n}
}

// Table is a simple fixed-column text table used by cmd/privreg-bench to print
// the reproduction of each Table-1 row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row whose cells are formatted with %.4g.
func (t *Table) AddFloatRow(cells ...float64) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%.4g", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RiskCurve records the per-timestep excess risk of a mechanism over a run.
type RiskCurve struct {
	Timesteps  []int
	ExcessRisk []float64
}

// Append adds a checkpoint to the curve.
func (c *RiskCurve) Append(t int, excess float64) {
	c.Timesteps = append(c.Timesteps, t)
	c.ExcessRisk = append(c.ExcessRisk, excess)
}

// Max returns the maximum excess risk over the curve (the quantity Definition 1
// bounds uniformly over timesteps). Zero is returned for an empty curve.
func (c *RiskCurve) Max() float64 {
	var m float64
	for _, v := range c.ExcessRisk {
		if v > m {
			m = v
		}
	}
	return m
}

// Final returns the excess risk at the last checkpoint, or zero when empty.
func (c *RiskCurve) Final() float64 {
	if len(c.ExcessRisk) == 0 {
		return 0
	}
	return c.ExcessRisk[len(c.ExcessRisk)-1]
}
