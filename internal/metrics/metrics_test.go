package metrics

import (
	"math"
	"strings"
	"testing"

	"privreg/internal/loss"
	"privreg/internal/vec"
)

func TestExcessRisk(t *testing.T) {
	data := []loss.Point{
		{X: vec.Vector{1, 0}, Y: 1},
		{X: vec.Vector{0, 1}, Y: -1},
	}
	exact := vec.Vector{1, -1} // zero loss
	theta := vec.Vector{0, 0}  // loss 2
	if got := ExcessRisk(loss.Squared{}, data, theta, exact); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ExcessRisk = %v, want 2", got)
	}
	// Clamped at zero when the candidate happens to beat the supplied "exact".
	if got := ExcessRisk(loss.Squared{}, data, exact, theta); got != 0 {
		t.Fatalf("negative excess should clamp to 0, got %v", got)
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 0.5))
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("slope = %v, want 0.5", got)
	}
	// Cubic growth.
	ys = ys[:0]
	for _, x := range xs {
		ys = append(ys, 0.1*x*x*x)
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-3) > 1e-9 {
		t.Fatalf("slope = %v, want 3", got)
	}
	// Non-positive values are skipped; fewer than two usable points → NaN.
	if got := LogLogSlope([]float64{1, 2}, []float64{-1, 0}); !math.IsNaN(got) {
		t.Fatalf("expected NaN for unusable data, got %v", got)
	}
	if got := LogLogSlope([]float64{1, -2, 4}, []float64{2, 5, 8}); math.IsNaN(got) {
		t.Fatal("slope with one skipped point should still be defined")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median = %v", even.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Mean != 7 {
		t.Fatalf("single summary = %+v", single)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1.5")
	tb.AddFloatRow(2, 3.25)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "3.25") {
		t.Fatalf("table rendering missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns must be aligned: header and separator have equal length prefix.
	if len(lines[1]) == 0 || len(lines[2]) == 0 {
		t.Fatal("missing header or separator")
	}
}

func TestRiskCurve(t *testing.T) {
	var c RiskCurve
	if c.Max() != 0 || c.Final() != 0 {
		t.Fatal("empty curve should report zeros")
	}
	c.Append(1, 0.5)
	c.Append(2, 2.0)
	c.Append(4, 1.0)
	if c.Max() != 2.0 {
		t.Fatalf("Max = %v", c.Max())
	}
	if c.Final() != 1.0 {
		t.Fatalf("Final = %v", c.Final())
	}
	if len(c.Timesteps) != 3 {
		t.Fatalf("Timesteps = %v", c.Timesteps)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "test"
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}
