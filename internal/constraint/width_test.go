package constraint

import (
	"math"
	"testing"

	"privreg/internal/randx"
	"privreg/internal/vec"
)

// monteCarloWidth estimates E_g sup_{a∈S} <a,g> via the exact support function.
func monteCarloWidth(s Set, samples int, seed int64) float64 {
	src := randx.NewSource(seed)
	var sum float64
	for i := 0; i < samples; i++ {
		g := vec.Vector(src.NormalVector(s.Dim(), 1))
		sum += s.SupportFunction(g)
	}
	return sum / float64(samples)
}

// TestAnalyticWidthsMatchMonteCarlo cross-checks every analytic Gaussian-width
// formula against a Monte-Carlo estimate from the exact support function. The
// analytic values are Θ-accurate by design, so a generous relative tolerance is
// used.
func TestAnalyticWidthsMatchMonteCarlo(t *testing.T) {
	type tc struct {
		s   Set
		tol float64
	}
	cases := []tc{
		{NewL2Ball(20, 1), 0.1},
		{NewL2Ball(5, 2), 0.1},
		{NewL1Ball(50, 1), 0.25},
		{NewL1Ball(10, 2), 0.25},
		{NewSimplex(30, 1), 0.45},
		{NewBox(10, 0.5), 0.1},
		{NewLpBall(16, 1.5, 1), 0.45},
		{NewGroupL1Ball(24, 4, 1), 0.45},
		{NewSparseSet(64, 4, 1), 0.45},
	}
	for _, c := range cases {
		mc := monteCarloWidth(c.s, 4000, 17)
		an := c.s.GaussianWidth()
		rel := math.Abs(mc-an) / mc
		if rel > c.tol {
			t.Errorf("%s: analytic width %.3f vs Monte-Carlo %.3f (rel err %.2f > %.2f)",
				c.s.Name(), an, mc, rel, c.tol)
		}
	}
}

// TestWidthOrderings checks the qualitative relations Section 5.2 relies on:
// the L1 ball and sparse set are much "narrower" than the L2 ball in high
// dimension, which is exactly why the projected mechanism helps there.
func TestWidthOrderings(t *testing.T) {
	d := 512
	l2 := NewL2Ball(d, 1).GaussianWidth()
	l1 := NewL1Ball(d, 1).GaussianWidth()
	sparse := NewSparseSet(d, 4, 1).GaussianWidth()
	simplex := NewSimplex(d, 1).GaussianWidth()
	if l1 >= l2/4 {
		t.Fatalf("L1 width %v should be much smaller than L2 width %v at d=%d", l1, l2, d)
	}
	if sparse >= l2/2 {
		t.Fatalf("sparse width %v should be much smaller than L2 width %v", sparse, l2)
	}
	if simplex >= l2/4 {
		t.Fatalf("simplex width %v should be much smaller than L2 width %v", simplex, l2)
	}
	// Widths grow with the radius.
	if NewL1Ball(d, 2).GaussianWidth() <= l1 {
		t.Fatal("width should scale with the radius")
	}
	// Lp width interpolates between L1 and L2 for 1 < p < 2.
	lp := NewLpBall(d, 1.5, 1).GaussianWidth()
	if lp < l1 || lp > l2*1.5 {
		t.Fatalf("Lp(1.5) width %v should lie between L1 %v and ~L2 %v", lp, l1, l2)
	}
}

// TestPolytopeWidthBound checks the polytope width bound against Monte Carlo.
func TestPolytopeWidthBound(t *testing.T) {
	p := CrossPolytope(16, 1)
	mc := monteCarloWidth(p, 3000, 19)
	an := p.GaussianWidth()
	if an < mc*0.8 {
		t.Fatalf("polytope analytic width %v should upper bound Monte-Carlo %v (up to slack)", an, mc)
	}
	// The cross-polytope IS the L1 ball, so its Monte-Carlo width must agree with
	// the L1 ball's.
	l1 := monteCarloWidth(NewL1Ball(16, 1), 3000, 19)
	if math.Abs(mc-l1)/l1 > 0.05 {
		t.Fatalf("cross-polytope width %v != L1 ball width %v", mc, l1)
	}
}
