package constraint

import (
	"fmt"
	"math"
	"sort"

	"privreg/internal/vec"
)

// SparseSet is the set of k-sparse vectors of Euclidean norm at most r:
// {x ∈ R^d : ‖x‖₀ ≤ k, ‖x‖₂ ≤ r}. It is NOT convex; it is used as the input
// domain X of Section 5 (sparse covariates), where only the Gaussian width,
// support function, diameter and membership matter. Projection (hard
// thresholding to the k largest-magnitude coordinates, then rescaling into the
// ball) is provided because it is the natural Euclidean projection onto this
// set and is used by the stream generators.
type SparseSet struct {
	d, k int
	r    float64
}

// NewSparseSet returns the set of k-sparse vectors in R^d with norm at most r.
func NewSparseSet(d, k int, r float64) *SparseSet {
	if d <= 0 || k <= 0 || r <= 0 {
		panic("constraint: SparseSet requires positive dimension, sparsity and radius")
	}
	if k > d {
		k = d
	}
	return &SparseSet{d: d, k: k, r: r}
}

// Name implements Set.
func (s *SparseSet) Name() string {
	return fmt.Sprintf("SparseSet(k=%d, r=%g, d=%d)", s.k, s.r, s.d)
}

// Dim implements Set.
func (s *SparseSet) Dim() int { return s.d }

// Sparsity returns the sparsity budget k.
func (s *SparseSet) Sparsity() int { return s.k }

// Project implements Set: keep the k largest-magnitude coordinates and clip the
// Euclidean norm to r. This is the exact Euclidean projection onto the
// (non-convex) set.
func (s *SparseSet) Project(x vec.Vector) vec.Vector {
	checkDim("SparseSet", s.d, x)
	type iv struct {
		i int
		v float64
	}
	idx := make([]iv, len(x))
	for i, v := range x {
		idx[i] = iv{i, math.Abs(v)}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a].v > idx[b].v })
	out := vec.NewVector(s.d)
	for j := 0; j < s.k && j < len(idx); j++ {
		i := idx[j].i
		out[i] = x[i]
	}
	if n := vec.Norm2(out); n > s.r {
		out.Scale(s.r / n)
	}
	return out
}

// Contains implements Set.
func (s *SparseSet) Contains(x vec.Vector, tol float64) bool {
	checkDim("SparseSet", s.d, x)
	nz := 0
	for _, v := range x {
		if math.Abs(v) > tol {
			nz++
		}
	}
	return nz <= s.k && vec.Norm2(x) <= s.r+tol
}

// Diameter implements Set.
func (s *SparseSet) Diameter() float64 { return s.r }

// GaussianWidth implements Set: the width of the set of k-sparse unit vectors
// is Θ(√(k log(d/k))) (Section 2 of the paper); we use r·√(2k·log(d/k))
// (with d/k clamped below by e), which tracks the Monte-Carlo estimate within
// ~10–20% across the dimensions used in the experiments.
func (s *SparseSet) GaussianWidth() float64 {
	ratio := float64(s.d) / float64(s.k)
	if ratio < math.E {
		ratio = math.E
	}
	return s.r * math.Sqrt(2*float64(s.k)*math.Log(ratio))
}

// SupportFunction implements Set: the supremum of <a, g> over k-sparse vectors
// of norm ≤ r is r times the Euclidean norm of the k largest-magnitude entries
// of g.
func (s *SparseSet) SupportFunction(g vec.Vector) float64 {
	checkDim("SparseSet", s.d, g)
	mags := make([]float64, len(g))
	for i, v := range g {
		mags[i] = v * v
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
	var sum float64
	for j := 0; j < s.k; j++ {
		sum += mags[j]
	}
	return s.r * math.Sqrt(sum)
}

// MinkowskiNorm implements Set: for a k-sparse x it is ‖x‖₂/r, otherwise +Inf
// (no scaling of the set can make a dense vector k-sparse).
func (s *SparseSet) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("SparseSet", s.d, x)
	if vec.NumNonzero(x) > s.k {
		return math.Inf(1)
	}
	return vec.Norm2(x) / s.r
}

// Scale implements Set.
func (s *SparseSet) Scale(c float64) Set {
	if c <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewSparseSet(s.d, s.k, c*s.r)
}

// Interface conformance checks for every provided set.
var (
	_ Set = (*L2Ball)(nil)
	_ Set = (*L1Ball)(nil)
	_ Set = (*LpBall)(nil)
	_ Set = (*Simplex)(nil)
	_ Set = (*Box)(nil)
	_ Set = (*Polytope)(nil)
	_ Set = (*GroupL1Ball)(nil)
	_ Set = (*SparseSet)(nil)
)
