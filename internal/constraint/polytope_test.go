package constraint

import (
	"math"
	"math/rand"
	"testing"

	"privreg/internal/vec"
)

func TestPolytopeProjectionMatchesL1Ball(t *testing.T) {
	// The cross-polytope IS the L1 ball, so its iterative projection must agree
	// with the closed-form L1 projection.
	d := 4
	cross := CrossPolytope(d, 1)
	l1 := NewL1Ball(d, 1)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		x := randomVec(r, d)
		pc := cross.Project(x)
		pl := l1.Project(x)
		if vec.Dist2(pc, pl) > 2e-2 {
			t.Fatalf("cross-polytope projection %v differs from L1 projection %v (query %v)", pc, pl, x)
		}
	}
}

func TestPolytopeSimplexProjection(t *testing.T) {
	// The convex hull of the standard basis vectors is the probability simplex.
	d := 3
	vs := make([]vec.Vector, d)
	for i := 0; i < d; i++ {
		v := vec.NewVector(d)
		v[i] = 1
		vs[i] = v
	}
	hull := NewPolytope(vs)
	simplex := NewSimplex(d, 1)
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		x := randomVec(r, d)
		ph := hull.Project(x)
		ps := simplex.Project(x)
		if vec.Dist2(ph, ps) > 2e-2 {
			t.Fatalf("hull projection %v differs from simplex projection %v", ph, ps)
		}
	}
}

func TestPolytopeContainsVerticesAndCentroid(t *testing.T) {
	vs := []vec.Vector{{1, 0}, {0, 1}, {-1, -1}}
	p := NewPolytope(vs)
	for _, v := range vs {
		if !p.Contains(v, 1e-4) {
			t.Fatalf("vertex %v not contained", v)
		}
	}
	centroid := vec.Vector{0, 0}
	if !p.Contains(centroid, 1e-4) {
		t.Fatal("centroid not contained")
	}
	if p.Contains(vec.Vector{2, 2}, 1e-4) {
		t.Fatal("far point reported contained")
	}
}

func TestPolytopeSupportAndDiameter(t *testing.T) {
	vs := []vec.Vector{{2, 0}, {0, 1}, {-1, 0}}
	p := NewPolytope(vs)
	if p.Diameter() != 2 {
		t.Fatalf("diameter = %v", p.Diameter())
	}
	if got := p.SupportFunction(vec.Vector{1, 0}); got != 2 {
		t.Fatalf("support in +x = %v", got)
	}
	if got := p.SupportFunction(vec.Vector{0, -1}); got != 0 {
		t.Fatalf("support in -y = %v", got)
	}
	if p.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", p.NumVertices())
	}
}

func TestPolytopeMinkowskiNormSymmetricCase(t *testing.T) {
	// For the cross-polytope the Minkowski functional is the L1 norm.
	cross := CrossPolytope(3, 1)
	x := vec.Vector{0.3, -0.4, 0.1}
	got := cross.MinkowskiNorm(x)
	want := vec.Norm1(x)
	if math.Abs(got-want)/want > 5e-2 {
		t.Fatalf("cross-polytope Minkowski norm %v, want %v", got, want)
	}
}

func TestPolytopeScale(t *testing.T) {
	p := CrossPolytope(3, 1)
	s := p.Scale(2).(*Polytope)
	if math.Abs(s.Diameter()-2) > 1e-12 {
		t.Fatalf("scaled diameter = %v", s.Diameter())
	}
	if s.NumVertices() != p.NumVertices() {
		t.Fatal("scaling changed the vertex count")
	}
}

func TestPolytopeVerticesAreCopies(t *testing.T) {
	vs := []vec.Vector{{1, 2}}
	p := NewPolytope(vs)
	vs[0][0] = 99
	if p.Vertices()[0][0] == 99 {
		t.Fatal("polytope shares storage with caller vertices")
	}
	got := p.Vertices()
	got[0][0] = -7
	if p.Vertices()[0][0] == -7 {
		t.Fatal("Vertices() leaks internal storage")
	}
}

func TestMinkowskiByBisectionAgainstL2(t *testing.T) {
	// The generic bisection helper must agree with the closed form on an L2 ball.
	b := NewL2Ball(4, 2)
	x := vec.Vector{1, 1, 1, 1}
	got := minkowskiByBisection(b, x)
	want := vec.Norm2(x) / 2
	if math.Abs(got-want)/want > 1e-4 {
		t.Fatalf("bisection Minkowski = %v, want %v", got, want)
	}
	if minkowskiByBisection(b, vec.NewVector(4)) != 0 {
		t.Fatal("bisection Minkowski of zero should be 0")
	}
}

func TestSparseSetProjection(t *testing.T) {
	s := NewSparseSet(5, 2, 1)
	x := vec.Vector{0.1, -3, 0.2, 2, 0}
	p := s.Project(x)
	// Keeps the two largest-magnitude coordinates (indices 1 and 3), rescaled to
	// the unit ball.
	if p[0] != 0 || p[2] != 0 || p[4] != 0 {
		t.Fatalf("projection kept wrong support: %v", p)
	}
	if vec.Norm2(p) > 1+1e-9 {
		t.Fatalf("projection norm %v > 1", vec.Norm2(p))
	}
	if p[1] >= 0 || p[3] <= 0 {
		t.Fatalf("projection lost signs: %v", p)
	}
	if !s.Contains(p, 1e-9) {
		t.Fatal("projection not contained")
	}
	if s.Contains(vec.Vector{1, 1, 1, 0, 0}, 1e-9) {
		t.Fatal("dense vector reported contained")
	}
	if s.Sparsity() != 2 {
		t.Fatalf("Sparsity = %d", s.Sparsity())
	}
}
