package constraint

import (
	"fmt"
	"math"

	"privreg/internal/vec"
)

// GroupL1Ball is the unit ball (scaled by r) of the group/block L1,2 norm
// defined in Section 5.2 of the paper: coordinates are partitioned into
// consecutive blocks of size k (the last block may be shorter) and
//
//	‖θ‖_{k,L1,2} = Σ_blocks ‖θ_block‖₂ .
//
// It is the constraint set of group-Lasso style regression and has Gaussian
// width O(r·√(k + log(d/k))).
type GroupL1Ball struct {
	d, k   int
	r      float64
	groups [][2]int // half-open [start, end) index ranges
}

// NewGroupL1Ball returns the radius-r group-L1 ball in R^d with consecutive
// blocks of size k.
func NewGroupL1Ball(d, k int, r float64) *GroupL1Ball {
	if d <= 0 || k <= 0 || r <= 0 {
		panic("constraint: GroupL1Ball requires positive dimension, block size and radius")
	}
	if k > d {
		k = d
	}
	var groups [][2]int
	for start := 0; start < d; start += k {
		end := start + k
		if end > d {
			end = d
		}
		groups = append(groups, [2]int{start, end})
	}
	return &GroupL1Ball{d: d, k: k, r: r, groups: groups}
}

// Name implements Set.
func (b *GroupL1Ball) Name() string {
	return fmt.Sprintf("GroupL1Ball(k=%d, r=%g, d=%d)", b.k, b.r, b.d)
}

// Dim implements Set.
func (b *GroupL1Ball) Dim() int { return b.d }

// NumGroups returns the number of blocks.
func (b *GroupL1Ball) NumGroups() int { return len(b.groups) }

// Norm returns the group-L1,2 norm of x.
func (b *GroupL1Ball) Norm(x vec.Vector) float64 {
	checkDim("GroupL1Ball", b.d, x)
	var s float64
	for _, g := range b.groups {
		s += vec.Norm2(x[g[0]:g[1]])
	}
	return s
}

// Project implements Set. The projection factorizes: with z_j = ‖x_gj‖₂ the
// per-block norms, project z onto the L1 ball of radius r obtaining w, then
// rescale each block by w_j / z_j. This is the standard group-soft-thresholding
// argument and is verified by the property tests (idempotence, feasibility,
// and non-expansiveness).
func (b *GroupL1Ball) Project(x vec.Vector) vec.Vector {
	checkDim("GroupL1Ball", b.d, x)
	if b.Contains(x, 0) {
		return x.Clone()
	}
	z := make(vec.Vector, len(b.groups))
	for j, g := range b.groups {
		z[j] = vec.Norm2(x[g[0]:g[1]])
	}
	w := projectL1Ball(z, b.r)
	out := vec.NewVector(b.d)
	for j, g := range b.groups {
		if z[j] == 0 {
			continue
		}
		scale := w[j] / z[j]
		for i := g[0]; i < g[1]; i++ {
			out[i] = scale * x[i]
		}
	}
	return out
}

// Contains implements Set.
func (b *GroupL1Ball) Contains(x vec.Vector, tol float64) bool {
	checkDim("GroupL1Ball", b.d, x)
	return b.Norm(x) <= b.r+tol
}

// Diameter implements Set: the maximum L2 norm is r (all mass in one block).
func (b *GroupL1Ball) Diameter() float64 { return b.r }

// GaussianWidth implements Set, using the O(√(k log(d/k)))-type bound quoted in
// Section 5.2 (Talwar et al.): we use r·(√k + √(2 log(#groups))), which is the
// standard width bound for the group-L1 ball.
func (b *GroupL1Ball) GaussianWidth() float64 {
	ng := float64(len(b.groups))
	w := math.Sqrt(float64(b.k))
	if ng > 1 {
		w += math.Sqrt(2 * math.Log(ng))
	}
	return b.r * w
}

// SupportFunction implements Set: the dual of the group-L1,2 norm is the
// group-L∞,2 norm, so the support value is r·max_blocks ‖g_block‖₂.
func (b *GroupL1Ball) SupportFunction(g vec.Vector) float64 {
	checkDim("GroupL1Ball", b.d, g)
	var m float64
	for _, gr := range b.groups {
		if n := vec.Norm2(g[gr[0]:gr[1]]); n > m {
			m = n
		}
	}
	return b.r * m
}

// MinkowskiNorm implements Set: ‖x‖_C = ‖x‖_{k,L1,2} / r.
func (b *GroupL1Ball) MinkowskiNorm(x vec.Vector) float64 {
	return b.Norm(x) / b.r
}

// Scale implements Set.
func (b *GroupL1Ball) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewGroupL1Ball(b.d, b.k, s*b.r)
}
