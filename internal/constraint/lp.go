package constraint

import (
	"fmt"
	"math"

	"privreg/internal/vec"
)

// LpBall is the ball {θ : ‖θ‖_p ≤ r} for 1 ≤ p ≤ ∞. For p strictly between 1
// and 2 these sets interpolate between the Lasso and ridge constraint sets and
// are discussed in Section 5.2 of the paper; their Gaussian width scales as
// r·d^{1-1/p}.
//
// Projection onto an Lp ball has no closed form for general p; this
// implementation solves the KKT system by bisection on the Lagrange multiplier
// λ, with an inner per-coordinate Newton solve. The result is accurate to the
// configured tolerance (1e-10 on the constraint value) and is exercised by
// property-based tests.
type LpBall struct {
	d int
	p float64
	r float64
}

// NewLpBall returns the radius-r Lp ball in R^d. p must lie in [1, +Inf].
func NewLpBall(d int, p, r float64) *LpBall {
	if d <= 0 || r <= 0 {
		panic("constraint: LpBall requires positive dimension and radius")
	}
	if p < 1 {
		panic("constraint: LpBall requires p >= 1")
	}
	return &LpBall{d: d, p: p, r: r}
}

// Name implements Set.
func (b *LpBall) Name() string { return fmt.Sprintf("LpBall(p=%g, r=%g, d=%d)", b.p, b.r, b.d) }

// Dim implements Set.
func (b *LpBall) Dim() int { return b.d }

// P returns the norm exponent.
func (b *LpBall) P() float64 { return b.p }

// Radius returns the Lp radius.
func (b *LpBall) Radius() float64 { return b.r }

// Project implements Set.
func (b *LpBall) Project(x vec.Vector) vec.Vector {
	checkDim("LpBall", b.d, x)
	if b.Contains(x, 0) {
		return x.Clone()
	}
	switch {
	case b.p == 1:
		return projectL1Ball(x, b.r)
	case b.p == 2:
		out := x.Clone()
		out.Scale(b.r / vec.Norm2(out))
		return out
	case math.IsInf(b.p, 1):
		out := x.Clone()
		for i, v := range out {
			if v > b.r {
				out[i] = b.r
			} else if v < -b.r {
				out[i] = -b.r
			}
		}
		return out
	default:
		return b.projectGeneral(x)
	}
}

// projectGeneral projects onto the Lp ball for 1 < p < ∞, p ≠ 2. The KKT
// conditions of min ‖y-x‖²/2 s.t. ‖y‖_p^p ≤ r^p give, for λ ≥ 0,
//
//	y_i - x_i + λ p sign(y_i) |y_i|^{p-1} = 0,
//
// with sign(y_i) = sign(x_i) and |y_i| solving the scalar monotone equation
// u + λ p u^{p-1} = |x_i| on u ≥ 0. For fixed λ the constraint value
// Σ u_i(λ)^p is continuous and strictly decreasing in λ, so the outer problem
// is a one-dimensional root find handled by bisection.
func (b *LpBall) projectGeneral(x vec.Vector) vec.Vector {
	p := b.p
	target := math.Pow(b.r, p)
	absX := make([]float64, len(x))
	for i, v := range x {
		absX[i] = math.Abs(v)
	}
	constraintValue := func(lambda float64) ([]float64, float64) {
		u := make([]float64, len(absX))
		var sum float64
		for i, a := range absX {
			ui := solveScalarLp(a, lambda, p)
			u[i] = ui
			sum += math.Pow(ui, p)
		}
		return u, sum
	}
	// Bracket λ: at λ = 0 the value is ‖x‖_p^p > r^p (we only reach here when x
	// is outside); grow hi until the value drops below target.
	lo, hi := 0.0, 1.0
	_, v := constraintValue(hi)
	for v > target {
		hi *= 2
		_, v = constraintValue(hi)
		if hi > 1e18 {
			break
		}
	}
	var u []float64
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		var val float64
		u, val = constraintValue(mid)
		if math.Abs(val-target) <= 1e-12*(1+target) {
			break
		}
		if val > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	if u == nil {
		u, _ = constraintValue((lo + hi) / 2)
	}
	out := vec.NewVector(len(x))
	for i, v := range x {
		if v >= 0 {
			out[i] = u[i]
		} else {
			out[i] = -u[i]
		}
	}
	return out
}

// solveScalarLp solves u + λ p u^{p-1} = a for u ≥ 0 by Newton's method with a
// bisection safeguard. a ≥ 0, λ ≥ 0, p > 1.
func solveScalarLp(a, lambda, p float64) float64 {
	if a == 0 || lambda == 0 {
		if lambda == 0 {
			return a
		}
		return 0
	}
	f := func(u float64) float64 { return u + lambda*p*math.Pow(u, p-1) - a }
	lo, hi := 0.0, a // f(0) = -a < 0 (for p>1, u^{p-1}→0), f(a) ≥ 0.
	u := a / 2
	for iter := 0; iter < 100; iter++ {
		fu := f(u)
		if math.Abs(fu) <= 1e-14*(1+a) {
			return u
		}
		if fu > 0 {
			hi = u
		} else {
			lo = u
		}
		// Newton step with safeguard.
		deriv := 1 + lambda*p*(p-1)*math.Pow(u, p-2)
		next := u - fu/deriv
		if !(next > lo && next < hi) || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		u = next
	}
	return u
}

// Contains implements Set.
func (b *LpBall) Contains(x vec.Vector, tol float64) bool {
	checkDim("LpBall", b.d, x)
	return vec.NormP(x, b.p) <= b.r+tol
}

// Diameter implements Set. For p ≥ 2 the maximum L2 norm is r·d^{1/2-1/p}
// (attained at the "diagonal" corner); for p ≤ 2 it is r (attained at ±r·e_i).
func (b *LpBall) Diameter() float64 {
	if b.p >= 2 {
		if math.IsInf(b.p, 1) {
			return b.r * math.Sqrt(float64(b.d))
		}
		return b.r * math.Pow(float64(b.d), 0.5-1/b.p)
	}
	return b.r
}

// GaussianWidth implements Set: w(rB_p) = r·E‖g‖_q ≈ r·d^{1-1/p} for the dual
// exponent q = p/(p-1) (with the usual conventions at p = 1 and p = ∞).
func (b *LpBall) GaussianWidth() float64 {
	switch {
	case b.p == 1:
		return b.r * expectedMaxAbsGaussian(b.d)
	case math.IsInf(b.p, 1):
		return b.r * float64(b.d) * math.Sqrt(2/math.Pi)
	case b.p == 2:
		return b.r * expectedNormGaussian(b.d)
	default:
		return b.r * math.Pow(float64(b.d), 1-1/b.p)
	}
}

// SupportFunction implements Set: by Hölder duality, sup over the Lp ball of
// <a, g> is r‖g‖_q with 1/p + 1/q = 1.
func (b *LpBall) SupportFunction(g vec.Vector) float64 {
	checkDim("LpBall", b.d, g)
	switch {
	case b.p == 1:
		return b.r * vec.NormInf(g)
	case math.IsInf(b.p, 1):
		return b.r * vec.Norm1(g)
	default:
		q := b.p / (b.p - 1)
		return b.r * vec.NormP(g, q)
	}
}

// MinkowskiNorm implements Set: ‖x‖_C = ‖x‖_p / r.
func (b *LpBall) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("LpBall", b.d, x)
	return vec.NormP(x, b.p) / b.r
}

// Scale implements Set.
func (b *LpBall) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewLpBall(b.d, b.p, s*b.r)
}
