// Package constraint implements the convex constraint sets C and input domains
// X used by the private incremental regression mechanisms, together with the
// geometric operations the algorithms need: Euclidean projection (for projected
// gradient descent), the Minkowski functional ‖·‖_C (for the lifting step of
// Algorithm 3), the support function (for Monte-Carlo Gaussian-width
// estimation), analytic Gaussian widths, and L2 diameters.
//
// The sets provided cover every example discussed in Section 5.2 of the paper:
// L2 balls (ridge regression), L1 balls (Lasso), the probability simplex,
// Lp balls for 1 < p < 2, polytopes given as convex hulls of vertices,
// group/block-L1 balls, axis-aligned boxes, and the (non-convex) set of
// k-sparse unit vectors used as a low-Gaussian-width input domain X.
package constraint

import (
	"fmt"
	"math"

	"privreg/internal/vec"
)

// Set is a (usually convex) subset of R^d together with the geometric
// operations used throughout the library. Implementations must be immutable
// after construction and safe for concurrent use.
type Set interface {
	// Name returns a short human-readable description, e.g. "L1Ball(r=1, d=20)".
	Name() string
	// Dim returns the ambient dimension d.
	Dim() int
	// Project returns the Euclidean projection of x onto the set as a new vector.
	Project(x vec.Vector) vec.Vector
	// Contains reports whether x belongs to the set up to tolerance tol.
	Contains(x vec.Vector, tol float64) bool
	// Diameter returns ‖C‖ = sup_{θ∈C} ‖θ‖₂ (Definition 2 of the paper).
	Diameter() float64
	// GaussianWidth returns (an analytic estimate of) the Gaussian width
	// w(C) = E_g sup_{a∈C} <a, g> (Definition 3 of the paper).
	GaussianWidth() float64
	// SupportFunction returns sup_{a∈C} <a, g> for the given direction g. It is
	// exact for every provided set and is what the Monte-Carlo width estimator
	// in internal/geom averages.
	SupportFunction(g vec.Vector) float64
	// MinkowskiNorm returns ‖x‖_C = inf{ρ ≥ 0 : x ∈ ρC} (Definition 6). It
	// returns +Inf when no finite ρ works (e.g. a negative coordinate against
	// the probability simplex).
	MinkowskiNorm(x vec.Vector) float64
	// Scale returns the scaled set sC = {s·θ : θ ∈ C} for s > 0.
	Scale(s float64) Set
}

// checkDim panics with a descriptive message when the vector dimension does not
// match the set's ambient dimension.
func checkDim(setName string, d int, x vec.Vector) {
	if len(x) != d {
		panic(fmt.Sprintf("constraint: %s expects dimension %d, got %d", setName, d, len(x)))
	}
}

// expectedNormGaussian returns E‖g‖₂ for g ~ N(0, I_d). We use the tight and
// simple bounds d/√(d+1) ≤ E‖g‖ ≤ √d and return √d · √(d/(d+1)) which is within
// a fraction of a percent of the exact value for all d ≥ 1.
func expectedNormGaussian(d int) float64 {
	fd := float64(d)
	return math.Sqrt(fd) * math.Sqrt(fd/(fd+1))
}

// expectedMaxAbsGaussian returns (an accurate estimate of) E max_i |g_i| for
// g ~ N(0, I_d), the Gaussian width of the unit L1 ball.
func expectedMaxAbsGaussian(d int) float64 {
	if d <= 0 {
		return 0
	}
	if d == 1 {
		return math.Sqrt(2 / math.Pi)
	}
	// The standard asymptotic √(2 ln(2d)) slightly overshoots for small d; the
	// correction term below keeps the estimate within a few percent across the
	// whole range of dimensions used in the experiments.
	l := math.Sqrt(2 * math.Log(2*float64(d)))
	return l - (math.Log(math.Log(2*float64(d)))+math.Log(4*math.Pi))/(2*l)
}

// L2Ball is the Euclidean ball of radius r centered at the origin:
// {θ ∈ R^d : ‖θ‖₂ ≤ r}. It is the constraint set of ridge regression.
type L2Ball struct {
	d int
	r float64
}

// NewL2Ball returns the radius-r Euclidean ball in R^d.
func NewL2Ball(d int, r float64) *L2Ball {
	if d <= 0 || r <= 0 {
		panic("constraint: L2Ball requires positive dimension and radius")
	}
	return &L2Ball{d: d, r: r}
}

// Name implements Set.
func (b *L2Ball) Name() string { return fmt.Sprintf("L2Ball(r=%g, d=%d)", b.r, b.d) }

// Dim implements Set.
func (b *L2Ball) Dim() int { return b.d }

// Radius returns the ball radius.
func (b *L2Ball) Radius() float64 { return b.r }

// Project implements Set: points outside the ball are rescaled onto its surface.
func (b *L2Ball) Project(x vec.Vector) vec.Vector {
	checkDim("L2Ball", b.d, x)
	out := x.Clone()
	n := vec.Norm2(out)
	if n > b.r {
		out.Scale(b.r / n)
	}
	return out
}

// Contains implements Set.
func (b *L2Ball) Contains(x vec.Vector, tol float64) bool {
	checkDim("L2Ball", b.d, x)
	return vec.Norm2(x) <= b.r+tol
}

// Diameter implements Set.
func (b *L2Ball) Diameter() float64 { return b.r }

// GaussianWidth implements Set: w(rB₂) = r·E‖g‖ ≈ r√d.
func (b *L2Ball) GaussianWidth() float64 { return b.r * expectedNormGaussian(b.d) }

// SupportFunction implements Set: sup over the ball is r‖g‖₂.
func (b *L2Ball) SupportFunction(g vec.Vector) float64 {
	checkDim("L2Ball", b.d, g)
	return b.r * vec.Norm2(g)
}

// MinkowskiNorm implements Set: ‖x‖_C = ‖x‖₂ / r.
func (b *L2Ball) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("L2Ball", b.d, x)
	return vec.Norm2(x) / b.r
}

// Scale implements Set.
func (b *L2Ball) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewL2Ball(b.d, s*b.r)
}

// Box is the axis-aligned hypercube {θ : ‖θ‖_∞ ≤ c}.
type Box struct {
	d int
	c float64
}

// NewBox returns the box [-c, c]^d.
func NewBox(d int, c float64) *Box {
	if d <= 0 || c <= 0 {
		panic("constraint: Box requires positive dimension and half-width")
	}
	return &Box{d: d, c: c}
}

// Name implements Set.
func (b *Box) Name() string { return fmt.Sprintf("Box(c=%g, d=%d)", b.c, b.d) }

// Dim implements Set.
func (b *Box) Dim() int { return b.d }

// HalfWidth returns the per-coordinate half-width c.
func (b *Box) HalfWidth() float64 { return b.c }

// Project implements Set by clamping every coordinate to [-c, c].
func (b *Box) Project(x vec.Vector) vec.Vector {
	checkDim("Box", b.d, x)
	out := x.Clone()
	for i, v := range out {
		if v > b.c {
			out[i] = b.c
		} else if v < -b.c {
			out[i] = -b.c
		}
	}
	return out
}

// Contains implements Set.
func (b *Box) Contains(x vec.Vector, tol float64) bool {
	checkDim("Box", b.d, x)
	return vec.NormInf(x) <= b.c+tol
}

// Diameter implements Set: the farthest point is a corner at distance c√d.
func (b *Box) Diameter() float64 { return b.c * math.Sqrt(float64(b.d)) }

// GaussianWidth implements Set: w([-c,c]^d) = c·d·E|g| = c·d·√(2/π).
func (b *Box) GaussianWidth() float64 {
	return b.c * float64(b.d) * math.Sqrt(2/math.Pi)
}

// SupportFunction implements Set: sup over the box is c‖g‖₁.
func (b *Box) SupportFunction(g vec.Vector) float64 {
	checkDim("Box", b.d, g)
	return b.c * vec.Norm1(g)
}

// MinkowskiNorm implements Set: ‖x‖_C = ‖x‖_∞ / c.
func (b *Box) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("Box", b.d, x)
	return vec.NormInf(x) / b.c
}

// Scale implements Set.
func (b *Box) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewBox(b.d, s*b.c)
}
