package constraint

import (
	"fmt"
	"math"
	"sort"

	"privreg/internal/vec"
)

// projectSimplex returns the Euclidean projection of x onto the scaled
// probability simplex {w : w_i ≥ 0, Σ w_i = z} using the sorting algorithm of
// Held, Wolfe and Crowder (popularized by Duchi et al.). It runs in O(d log d).
func projectSimplex(x vec.Vector, z float64) vec.Vector {
	d := len(x)
	if d == 0 {
		return vec.Vector{}
	}
	u := x.Clone()
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	var cssv float64
	rho := -1
	var theta float64
	for i := 0; i < d; i++ {
		cssv += u[i]
		t := (cssv - z) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass goes to the largest coordinate; fall back to uniform z/d which
		// can only happen for pathological inputs (NaN-free guard).
		out := vec.NewVector(d)
		out.Fill(z / float64(d))
		return out
	}
	out := vec.NewVector(d)
	for i, v := range x {
		if w := v - theta; w > 0 {
			out[i] = w
		}
	}
	return out
}

// projectL1Ball returns the Euclidean projection of x onto the L1 ball of
// radius r, via the standard reduction to simplex projection on |x|.
func projectL1Ball(x vec.Vector, r float64) vec.Vector {
	if vec.Norm1(x) <= r {
		return x.Clone()
	}
	abs := make(vec.Vector, len(x))
	for i, v := range x {
		abs[i] = math.Abs(v)
	}
	w := projectSimplex(abs, r)
	out := vec.NewVector(len(x))
	for i, v := range x {
		if v >= 0 {
			out[i] = w[i]
		} else {
			out[i] = -w[i]
		}
	}
	return out
}

// L1Ball is the cross-polytope {θ : ‖θ‖₁ ≤ r}, the constraint set of Lasso
// regression. Its Gaussian width is Θ(r√(log d)), which is what makes the
// dimension-free bounds of Theorem 5.7 possible.
type L1Ball struct {
	d int
	r float64
}

// NewL1Ball returns the radius-r L1 ball in R^d.
func NewL1Ball(d int, r float64) *L1Ball {
	if d <= 0 || r <= 0 {
		panic("constraint: L1Ball requires positive dimension and radius")
	}
	return &L1Ball{d: d, r: r}
}

// Name implements Set.
func (b *L1Ball) Name() string { return fmt.Sprintf("L1Ball(r=%g, d=%d)", b.r, b.d) }

// Dim implements Set.
func (b *L1Ball) Dim() int { return b.d }

// Radius returns the L1 radius.
func (b *L1Ball) Radius() float64 { return b.r }

// Project implements Set.
func (b *L1Ball) Project(x vec.Vector) vec.Vector {
	checkDim("L1Ball", b.d, x)
	return projectL1Ball(x, b.r)
}

// Contains implements Set.
func (b *L1Ball) Contains(x vec.Vector, tol float64) bool {
	checkDim("L1Ball", b.d, x)
	return vec.Norm1(x) <= b.r+tol
}

// Diameter implements Set: the maximum L2 norm on the L1 ball is attained at a
// vertex ±r·e_i, so ‖C‖ = r.
func (b *L1Ball) Diameter() float64 { return b.r }

// GaussianWidth implements Set: w(rB₁) = r·E max_i |g_i| = Θ(r√(log d)).
func (b *L1Ball) GaussianWidth() float64 { return b.r * expectedMaxAbsGaussian(b.d) }

// SupportFunction implements Set: sup over the L1 ball is r‖g‖_∞.
func (b *L1Ball) SupportFunction(g vec.Vector) float64 {
	checkDim("L1Ball", b.d, g)
	return b.r * vec.NormInf(g)
}

// MinkowskiNorm implements Set: ‖x‖_C = ‖x‖₁ / r.
func (b *L1Ball) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("L1Ball", b.d, x)
	return vec.Norm1(x) / b.r
}

// Scale implements Set.
func (b *L1Ball) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewL1Ball(b.d, s*b.r)
}

// Simplex is the scaled probability simplex {θ : θ_i ≥ 0, Σ θ_i = z}. With
// z = 1 this is the standard probability simplex discussed in Section 5.2.
// Note that the simplex does not contain the origin, so its Minkowski
// functional is finite only on the non-negative orthant.
type Simplex struct {
	d int
	z float64
}

// NewSimplex returns the probability simplex in R^d scaled to total mass z.
func NewSimplex(d int, z float64) *Simplex {
	if d <= 0 || z <= 0 {
		panic("constraint: Simplex requires positive dimension and mass")
	}
	return &Simplex{d: d, z: z}
}

// Name implements Set.
func (s *Simplex) Name() string { return fmt.Sprintf("Simplex(z=%g, d=%d)", s.z, s.d) }

// Dim implements Set.
func (s *Simplex) Dim() int { return s.d }

// Project implements Set.
func (s *Simplex) Project(x vec.Vector) vec.Vector {
	checkDim("Simplex", s.d, x)
	return projectSimplex(x, s.z)
}

// Contains implements Set.
func (s *Simplex) Contains(x vec.Vector, tol float64) bool {
	checkDim("Simplex", s.d, x)
	var sum float64
	for _, v := range x {
		if v < -tol {
			return false
		}
		sum += v
	}
	return math.Abs(sum-s.z) <= tol*float64(s.d)+tol
}

// Diameter implements Set: the farthest point from the origin is a vertex z·e_i.
func (s *Simplex) Diameter() float64 { return s.z }

// GaussianWidth implements Set: w(simplex) = z·E max_i g_i = Θ(z√(log d)).
func (s *Simplex) GaussianWidth() float64 {
	// E max_i g_i is roughly half of E max_i |g_i| plus lower-order terms; the
	// √(2 ln d) asymptotic is the same and the constant here is accurate enough
	// for the width-driven parameter choices.
	if s.d == 1 {
		return 0
	}
	return s.z * math.Sqrt(2*math.Log(float64(s.d)))
}

// SupportFunction implements Set: sup over the simplex is z·max_i g_i.
func (s *Simplex) SupportFunction(g vec.Vector) float64 {
	checkDim("Simplex", s.d, g)
	m, _ := vec.Max(g)
	return s.z * m
}

// MinkowskiNorm implements Set: for x ≥ 0 (entrywise) the smallest ρ with
// x ∈ ρ·Simplex is Σ x_i / z; otherwise no scaling works and +Inf is returned.
func (s *Simplex) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("Simplex", s.d, x)
	var sum float64
	for _, v := range x {
		if v < 0 {
			return math.Inf(1)
		}
		sum += v
	}
	return sum / s.z
}

// Scale implements Set.
func (s *Simplex) Scale(c float64) Set {
	if c <= 0 {
		panic("constraint: scale must be positive")
	}
	return NewSimplex(s.d, c*s.z)
}
