package constraint

import (
	"fmt"
	"math"

	"privreg/internal/vec"
)

// Polytope is the convex hull conv{a_1, ..., a_l} of a finite set of vertices
// in R^d. Section 5.2 points out that when the number of vertices l is
// polynomial in d the Gaussian width is O(max_i ‖a_i‖ · √(log l)), so such
// polytopes are attractive low-width constraint sets.
//
// Euclidean projection onto a vertex-described polytope is a quadratic program;
// this implementation solves it in the weight space (a simplex-constrained
// least-squares problem, min_{w ∈ Δ} ‖Aᵀw - x‖²) with accelerated projected
// gradient descent, reusing the exact simplex projection. Accuracy is
// controlled by the iteration budget and verified by tests against brute-force
// solutions in low dimension.
type Polytope struct {
	d        int
	vertices []vec.Vector
	maxNorm  float64
	diameter float64
	// symmetric records whether the vertex set is symmetric about the origin
	// (every -a_i is also a vertex). In that case the Minkowski functional is a
	// norm and MinkowskiNorm can rely on the bisection helper being tight.
	symmetric bool
	projIters int
	// lipschitz is ‖A‖², the gradient Lipschitz constant of the weight-space
	// projection objective (A is the vertex matrix); precomputed once.
	lipschitz float64
}

// NewPolytope returns the convex hull of the given vertices. At least one
// vertex is required, and all vertices must share the same dimension.
func NewPolytope(vertices []vec.Vector) *Polytope {
	if len(vertices) == 0 {
		panic("constraint: Polytope requires at least one vertex")
	}
	d := len(vertices[0])
	if d == 0 {
		panic("constraint: Polytope vertices must be non-empty vectors")
	}
	vs := make([]vec.Vector, len(vertices))
	var maxNorm float64
	for i, v := range vertices {
		if len(v) != d {
			panic("constraint: Polytope vertices must share a dimension")
		}
		vs[i] = v.Clone()
		if n := vec.Norm2(v); n > maxNorm {
			maxNorm = n
		}
	}
	p := &Polytope{
		d:         d,
		vertices:  vs,
		maxNorm:   maxNorm,
		diameter:  maxNorm,
		symmetric: isSymmetricVertexSet(vs),
		projIters: 500,
	}
	// Precompute the gradient Lipschitz constant ‖A‖² of the weight-space
	// objective via power iteration (with a small safety margin).
	a := vec.NewMatrixFromRows(vs)
	spec := a.PowerIterationSpectralNorm(40, nil)
	if spec == 0 {
		spec = a.SpectralNormUpperBound()
	}
	p.lipschitz = 1.05 * spec * spec
	if p.lipschitz == 0 {
		p.lipschitz = 1
	}
	return p
}

// CrossPolytope returns the L1 ball of radius r represented explicitly as the
// convex hull of its 2d vertices {±r·e_i}. It is used in tests to cross-check
// the polytope projection against the closed-form L1 projection.
func CrossPolytope(d int, r float64) *Polytope {
	vs := make([]vec.Vector, 0, 2*d)
	for i := 0; i < d; i++ {
		v := vec.NewVector(d)
		v[i] = r
		vs = append(vs, v)
		w := vec.NewVector(d)
		w[i] = -r
		vs = append(vs, w)
	}
	return NewPolytope(vs)
}

func isSymmetricVertexSet(vs []vec.Vector) bool {
	const tol = 1e-12
	for _, v := range vs {
		found := false
		for _, w := range vs {
			if vec.Equal(vec.Scaled(v, -1), w, tol) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Name implements Set.
func (p *Polytope) Name() string {
	return fmt.Sprintf("Polytope(vertices=%d, d=%d)", len(p.vertices), p.d)
}

// Dim implements Set.
func (p *Polytope) Dim() int { return p.d }

// NumVertices returns the number of vertices.
func (p *Polytope) NumVertices() int { return len(p.vertices) }

// Vertices returns copies of the polytope's vertices.
func (p *Polytope) Vertices() []vec.Vector {
	out := make([]vec.Vector, len(p.vertices))
	for i, v := range p.vertices {
		out[i] = v.Clone()
	}
	return out
}

// Project implements Set via simplex-constrained least squares in weight space.
func (p *Polytope) Project(x vec.Vector) vec.Vector {
	checkDim("Polytope", p.d, x)
	w := p.projectWeights(x)
	return p.combine(w)
}

// projectWeights returns the simplex weights w minimizing ‖Σ w_i a_i - x‖².
func (p *Polytope) projectWeights(x vec.Vector) vec.Vector {
	l := len(p.vertices)
	if l == 1 {
		return vec.Vector{1}
	}
	// Initialize at the vertex nearest to x.
	w := vec.NewVector(l)
	best, bi := math.Inf(1), 0
	for i, v := range p.vertices {
		if d := vec.Dist2(v, x); d < best {
			best, bi = d, i
		}
	}
	w[bi] = 1

	// Gradient of f(w) = ½‖Σ w_i a_i - x‖² is grad_i = <a_i, r> with
	// r = Σ w_i a_i - x; its Lipschitz constant ‖A‖² is precomputed. The solve
	// uses FISTA (accelerated projected gradient) on the weight simplex.
	step := 1 / p.lipschitz
	r := make(vec.Vector, p.d)
	grad := make(vec.Vector, l)
	y := w.Clone()
	prev := w.Clone()
	tk := 1.0
	for iter := 0; iter < p.projIters; iter++ {
		// r = Σ y_i a_i - x
		copy(r, x)
		r.Scale(-1)
		for i, yi := range y {
			if yi != 0 {
				vec.Axpy(r, yi, p.vertices[i])
			}
		}
		for i, v := range p.vertices {
			grad[i] = vec.Dot(v, r)
		}
		next := y.Clone()
		vec.Axpy(next, -step, grad)
		next = projectSimplex(next, 1)
		tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
		y = next.Clone()
		vec.Axpy(y, (tk-1)/tNext, vec.Sub(next, prev))
		// Keep the momentum point on the simplex to preserve feasibility of the
		// gradient evaluation.
		y = projectSimplex(y, 1)
		moved := vec.Dist2(next, prev)
		prev = next
		w = next
		tk = tNext
		if moved <= 1e-12 {
			break
		}
	}
	return w
}

func (p *Polytope) combine(w vec.Vector) vec.Vector {
	out := vec.NewVector(p.d)
	for i, wi := range w {
		if wi != 0 {
			vec.Axpy(out, wi, p.vertices[i])
		}
	}
	return out
}

// Contains implements Set: x is in the hull iff its projection is within tol.
func (p *Polytope) Contains(x vec.Vector, tol float64) bool {
	checkDim("Polytope", p.d, x)
	proj := p.Project(x)
	return vec.Dist2(proj, x) <= tol+1e-9
}

// Diameter implements Set: the maximum L2 norm over a polytope is attained at a
// vertex.
func (p *Polytope) Diameter() float64 { return p.diameter }

// GaussianWidth implements Set: w(conv{a_i}) ≤ max_i ‖a_i‖ · √(2 log l), the
// bound quoted in Section 5.2 (exact for the expectation of a max of l
// sub-Gaussians up to lower-order terms).
func (p *Polytope) GaussianWidth() float64 {
	l := float64(len(p.vertices))
	if l <= 1 {
		return 0
	}
	return p.maxNorm * math.Sqrt(2*math.Log(l))
}

// SupportFunction implements Set: the support of a convex hull is the maximum
// over the vertices.
func (p *Polytope) SupportFunction(g vec.Vector) float64 {
	checkDim("Polytope", p.d, g)
	best := math.Inf(-1)
	for _, v := range p.vertices {
		if s := vec.Dot(v, g); s > best {
			best = s
		}
	}
	return best
}

// MinkowskiNorm implements Set. For a general vertex-described polytope
// containing the origin, ‖x‖_C = inf{ρ : x ∈ ρC} is computed by bisection on ρ
// using Contains on scaled copies; the result is accurate to a relative 1e-6.
// If no finite scaling contains x (e.g. the polytope has empty interior in the
// direction of x), +Inf is returned.
func (p *Polytope) MinkowskiNorm(x vec.Vector) float64 {
	checkDim("Polytope", p.d, x)
	return minkowskiByBisection(p, x)
}

// Scale implements Set.
func (p *Polytope) Scale(s float64) Set {
	if s <= 0 {
		panic("constraint: scale must be positive")
	}
	vs := make([]vec.Vector, len(p.vertices))
	for i, v := range p.vertices {
		vs[i] = vec.Scaled(v, s)
	}
	return NewPolytope(vs)
}

// minkowskiByBisection computes inf{ρ ≥ 0 : x ∈ ρC} for an arbitrary Set using
// membership queries on scaled copies. It assumes the set is star-shaped about
// the origin (true for every convex set containing the origin).
func minkowskiByBisection(c Set, x vec.Vector) float64 {
	n := vec.Norm2(x)
	if n == 0 {
		return 0
	}
	const tol = 1e-9
	// Bracket: grow hi until x ∈ hi·C or we give up.
	hi := 1.0
	found := false
	for iter := 0; iter < 80; iter++ {
		if c.Scale(hi).Contains(x, tol) {
			found = true
			break
		}
		hi *= 2
	}
	if !found {
		return math.Inf(1)
	}
	lo := 0.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mid == 0 {
			lo = hi / 4
			continue
		}
		if c.Scale(mid).Contains(x, tol) {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo <= 1e-6*(1+hi) {
			break
		}
	}
	return hi
}
