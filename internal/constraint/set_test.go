package constraint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privreg/internal/vec"
)

// allSets returns one instance of every provided set in dimension d, used by
// the shared property tests.
func allSets(d int) []Set {
	sets := []Set{
		NewL2Ball(d, 1.5),
		NewL1Ball(d, 1.2),
		NewLpBall(d, 1.5, 1.0),
		NewLpBall(d, 3.0, 1.0),
		NewSimplex(d, 1),
		NewBox(d, 0.8),
		NewGroupL1Ball(d, 2, 1.0),
		NewSparseSet(d, maxI(1, d/2), 1.0),
	}
	if d <= 6 {
		sets = append(sets, CrossPolytope(d, 1.0))
	}
	return sets
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randomVec(r *rand.Rand, d int) vec.Vector {
	v := make(vec.Vector, d)
	for i := range v {
		v[i] = 2 * r.NormFloat64()
	}
	return v
}

// TestProjectionProperties checks, for every set, the three defining properties
// of Euclidean projection onto a closed set: the result is feasible, projection
// is idempotent, and points already in the set are (essentially) fixed.
func TestProjectionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dims := []int{1, 2, 3, 5, 8}
	for _, d := range dims {
		for _, s := range allSets(d) {
			for trial := 0; trial < 25; trial++ {
				x := randomVec(r, d)
				p := s.Project(x)
				tol := 1e-6 * (1 + vec.Norm2(x))
				if !s.Contains(p, tol) {
					t.Fatalf("%s: projection of %v = %v is not feasible", s.Name(), x, p)
				}
				pp := s.Project(p)
				if vec.Dist2(pp, p) > 1e-5*(1+vec.Norm2(p)) {
					t.Fatalf("%s: projection not idempotent: %v -> %v", s.Name(), p, pp)
				}
			}
			// A feasible point must be (nearly) fixed by projection.
			inside := s.Project(randomVec(r, d))
			fixed := s.Project(inside)
			if vec.Dist2(fixed, inside) > 1e-5*(1+vec.Norm2(inside)) {
				t.Fatalf("%s: feasible point moved by projection", s.Name())
			}
		}
	}
}

// TestProjectionOptimality verifies, for the convex sets, that no sampled
// feasible point is closer to the query than the returned projection — the
// defining optimality property.
func TestProjectionOptimality(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	d := 4
	sets := []Set{
		NewL2Ball(d, 1),
		NewL1Ball(d, 1),
		NewLpBall(d, 1.5, 1),
		NewSimplex(d, 1),
		NewBox(d, 0.5),
		NewGroupL1Ball(d, 2, 1),
		CrossPolytope(d, 1),
	}
	for _, s := range sets {
		for trial := 0; trial < 10; trial++ {
			x := randomVec(r, d)
			p := s.Project(x)
			dist := vec.Dist2(p, x)
			for probe := 0; probe < 200; probe++ {
				q := s.Project(randomVec(r, d)) // a feasible point
				if vec.Dist2(q, x) < dist-1e-6 {
					t.Fatalf("%s: found feasible %v closer to %v than projection %v (%.6f < %.6f)",
						s.Name(), q, x, p, vec.Dist2(q, x), dist)
				}
			}
		}
	}
}

// TestProjectionNonExpansive checks the 1-Lipschitz property of projection onto
// the convex sets: ‖P(x) - P(y)‖ ≤ ‖x - y‖.
func TestProjectionNonExpansive(t *testing.T) {
	d := 6
	convex := []Set{
		NewL2Ball(d, 1), NewL1Ball(d, 1), NewLpBall(d, 1.7, 1), NewSimplex(d, 1),
		NewBox(d, 0.7), NewGroupL1Ball(d, 3, 1),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomVec(r, d)
		y := randomVec(r, d)
		for _, s := range convex {
			if vec.Dist2(s.Project(x), s.Project(y)) > vec.Dist2(x, y)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterIsAttainedBound(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, d := range []int{2, 4, 7} {
		for _, s := range allSets(d) {
			diam := s.Diameter()
			for trial := 0; trial < 50; trial++ {
				p := s.Project(randomVec(r, d))
				if vec.Norm2(p) > diam*(1+1e-6)+1e-9 {
					t.Fatalf("%s: feasible point norm %v exceeds diameter %v", s.Name(), vec.Norm2(p), diam)
				}
			}
		}
	}
}

func TestSupportFunctionDominatesFeasiblePoints(t *testing.T) {
	// h_S(g) must upper bound <p, g> for every feasible p.
	r := rand.New(rand.NewSource(14))
	for _, d := range []int{2, 5} {
		for _, s := range allSets(d) {
			for trial := 0; trial < 30; trial++ {
				g := randomVec(r, d)
				h := s.SupportFunction(g)
				p := s.Project(randomVec(r, d))
				if vec.Dot(p, g) > h+1e-6*(1+math.Abs(h)) {
					t.Fatalf("%s: support function %v < attained value %v", s.Name(), h, vec.Dot(p, g))
				}
			}
		}
	}
}

func TestMinkowskiNormProperties(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	d := 5
	// Symmetric norm-ball sets: ‖x‖_C is a norm; x / ‖x‖_C lies on the boundary.
	ballSets := []Set{NewL2Ball(d, 2), NewL1Ball(d, 1.5), NewLpBall(d, 1.5, 1), NewBox(d, 0.5), NewGroupL1Ball(d, 2, 1)}
	for _, s := range ballSets {
		for trial := 0; trial < 20; trial++ {
			x := randomVec(r, d)
			nx := s.MinkowskiNorm(x)
			if nx <= 0 {
				t.Fatalf("%s: Minkowski norm of nonzero vector = %v", s.Name(), nx)
			}
			// Homogeneity.
			if math.Abs(s.MinkowskiNorm(vec.Scaled(x, 3))-3*nx) > 1e-9*(1+nx) {
				t.Fatalf("%s: Minkowski norm not homogeneous", s.Name())
			}
			// Membership characterization: x/nx is on the boundary (in the set),
			// x/(0.9 nx) is outside.
			if !s.Contains(vec.Scaled(x, 1/nx), 1e-9*(1+vec.Norm2(x))+1e-9) {
				t.Fatalf("%s: x/‖x‖_C not in the set", s.Name())
			}
			if s.Contains(vec.Scaled(x, 1/(0.9*nx)), 1e-9) {
				t.Fatalf("%s: x/(0.9‖x‖_C) should be outside the set", s.Name())
			}
		}
		// Zero maps to zero.
		if s.MinkowskiNorm(vec.NewVector(d)) != 0 {
			t.Fatalf("%s: Minkowski norm of 0 != 0", s.Name())
		}
	}
	// Simplex: finite only on the non-negative orthant.
	sx := NewSimplex(3, 1)
	if got := sx.MinkowskiNorm(vec.Vector{0.2, 0.3, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("simplex Minkowski norm = %v, want 1", got)
	}
	if got := sx.MinkowskiNorm(vec.Vector{-0.1, 0.5, 0.6}); !math.IsInf(got, 1) {
		t.Fatalf("simplex Minkowski norm of negative vector = %v, want +Inf", got)
	}
	// SparseSet: +Inf for dense vectors.
	sp := NewSparseSet(5, 2, 1)
	if got := sp.MinkowskiNorm(vec.Vector{1, 1, 1, 0, 0}); !math.IsInf(got, 1) {
		t.Fatalf("sparse Minkowski norm of dense vector = %v, want +Inf", got)
	}
	if got := sp.MinkowskiNorm(vec.Vector{0.6, 0, 0.8, 0, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sparse Minkowski norm = %v, want 1", got)
	}
}

func TestScaleConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	d := 4
	for _, s := range allSets(d) {
		scaled := s.Scale(2)
		if math.Abs(scaled.Diameter()-2*s.Diameter()) > 1e-9 {
			t.Fatalf("%s: scaled diameter %v != 2×%v", s.Name(), scaled.Diameter(), s.Diameter())
		}
		for trial := 0; trial < 20; trial++ {
			p := s.Project(randomVec(r, d))
			if !scaled.Contains(vec.Scaled(p, 2), 1e-6) {
				t.Fatalf("%s: 2×feasible point not in 2×set", s.Name())
			}
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	s := NewL2Ball(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	s.Project(vec.Vector{1, 2})
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewL2Ball(0, 1) },
		func() { NewL2Ball(2, 0) },
		func() { NewL1Ball(2, -1) },
		func() { NewLpBall(2, 0.5, 1) },
		func() { NewSimplex(0, 1) },
		func() { NewBox(2, 0) },
		func() { NewGroupL1Ball(2, 0, 1) },
		func() { NewSparseSet(2, 0, 1) },
		func() { NewPolytope(nil) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}
