package constraint

import "privreg/internal/vec"

// InplaceProjector is an optional capability interface: sets that can project
// a vector onto themselves in place let hot loops (the private batch solvers,
// which project once per iteration) avoid one allocation per projection. An
// implementation must produce a result bitwise identical to Project on the
// same input. Callers fall back to Project when the capability is absent.
type InplaceProjector interface {
	// ProjectInPlace replaces x with its Euclidean projection onto the set.
	ProjectInPlace(x vec.Vector)
}

// ProjectInPlace implements InplaceProjector with the same operations as
// L2Ball.Project (norm test, conditional rescale), minus the clone.
func (b *L2Ball) ProjectInPlace(x vec.Vector) {
	checkDim("L2Ball", b.d, x)
	if n := vec.Norm2(x); n > b.r {
		x.Scale(b.r / n)
	}
}

var _ InplaceProjector = (*L2Ball)(nil)
