package constraint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privreg/internal/vec"
)

func TestSimplexProjectionKnownCases(t *testing.T) {
	// Already on the simplex: unchanged.
	p := projectSimplex(vec.Vector{0.2, 0.3, 0.5}, 1)
	if !vec.Equal(p, vec.Vector{0.2, 0.3, 0.5}, 1e-9) {
		t.Fatalf("projection moved a simplex point: %v", p)
	}
	// Symmetric point: uniform.
	p = projectSimplex(vec.Vector{5, 5, 5}, 1)
	if !vec.Equal(p, vec.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-9) {
		t.Fatalf("projection of symmetric point: %v", p)
	}
	// Dominant coordinate collapses to a vertex.
	p = projectSimplex(vec.Vector{10, 0, 0}, 1)
	if !vec.Equal(p, vec.Vector{1, 0, 0}, 1e-9) {
		t.Fatalf("projection of dominant point: %v", p)
	}
	// Negative coordinates are zeroed out.
	p = projectSimplex(vec.Vector{-5, 0.4, 0.8}, 1)
	if p[0] != 0 {
		t.Fatalf("negative coordinate survived: %v", p)
	}
	if math.Abs(vec.Sum(p)-1) > 1e-9 {
		t.Fatalf("projection mass = %v", vec.Sum(p))
	}
}

func TestL1ProjectionKnownCases(t *testing.T) {
	b := NewL1Ball(3, 1)
	// Inside: unchanged.
	in := vec.Vector{0.2, -0.3, 0.1}
	if !vec.Equal(b.Project(in), in, 1e-12) {
		t.Fatal("interior point moved")
	}
	// Symmetric outside point: soft-thresholded symmetrically.
	p := b.Project(vec.Vector{1, 1, 1})
	if !vec.Equal(p, vec.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-9) {
		t.Fatalf("projection of (1,1,1): %v", p)
	}
	// Signs are preserved.
	p = b.Project(vec.Vector{-2, 2, 0})
	if p[0] >= 0 || p[1] <= 0 {
		t.Fatalf("signs not preserved: %v", p)
	}
	if math.Abs(vec.Norm1(p)-1) > 1e-9 {
		t.Fatalf("projection L1 norm = %v", vec.Norm1(p))
	}
}

// TestL1ProjectionAgainstQuadraticCheck verifies optimality via the variational
// inequality <x - P(x), q - P(x)> ≤ 0 for feasible q.
func TestL1ProjectionVariationalInequality(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	b := NewL1Ball(6, 1)
	for trial := 0; trial < 50; trial++ {
		x := randomVec(r, 6)
		p := b.Project(x)
		for probe := 0; probe < 50; probe++ {
			q := b.Project(randomVec(r, 6))
			if vec.Dot(vec.Sub(x, p), vec.Sub(q, p)) > 1e-6 {
				t.Fatalf("variational inequality violated: x=%v p=%v q=%v", x, p, q)
			}
		}
	}
}

// TestGroupL1ReducesToL1 checks that with block size 1 the group-L1 ball
// coincides with the L1 ball (norm, projection, width order).
func TestGroupL1ReducesToL1(t *testing.T) {
	d := 7
	g := NewGroupL1Ball(d, 1, 1.3)
	l := NewL1Ball(d, 1.3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomVec(r, d)
		if math.Abs(g.Norm(x)-vec.Norm1(x)) > 1e-9 {
			return false
		}
		return vec.Equal(g.Project(x), l.Project(x), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupL1BlockStructure(t *testing.T) {
	g := NewGroupL1Ball(6, 2, 1)
	if g.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	// Norm of a vector supported on a single block is that block's L2 norm.
	x := vec.Vector{3, 4, 0, 0, 0, 0}
	if math.Abs(g.Norm(x)-5) > 1e-12 {
		t.Fatalf("group norm = %v, want 5", g.Norm(x))
	}
	// Uneven final block.
	g2 := NewGroupL1Ball(5, 2, 1)
	if g2.NumGroups() != 3 {
		t.Fatalf("NumGroups with ragged tail = %d", g2.NumGroups())
	}
	y := vec.Vector{0, 0, 0, 0, 2}
	if math.Abs(g2.Norm(y)-2) > 1e-12 {
		t.Fatalf("ragged-tail group norm = %v", g2.Norm(y))
	}
}

func TestLpProjectionSpecialCasesAgree(t *testing.T) {
	// p = 1, 2, ∞ must agree with the dedicated implementations.
	r := rand.New(rand.NewSource(22))
	d := 5
	l1 := NewL1Ball(d, 1)
	l2 := NewL2Ball(d, 1)
	box := NewBox(d, 1)
	lp1 := NewLpBall(d, 1, 1)
	lp2 := NewLpBall(d, 2, 1)
	lpInf := NewLpBall(d, math.Inf(1), 1)
	for trial := 0; trial < 40; trial++ {
		x := randomVec(r, d)
		if !vec.Equal(lp1.Project(x), l1.Project(x), 1e-7) {
			t.Fatalf("Lp(1) projection disagrees with L1: %v", x)
		}
		if !vec.Equal(lp2.Project(x), l2.Project(x), 1e-7) {
			t.Fatalf("Lp(2) projection disagrees with L2: %v", x)
		}
		if !vec.Equal(lpInf.Project(x), box.Project(x), 1e-7) {
			t.Fatalf("Lp(inf) projection disagrees with Box: %v", x)
		}
	}
}

func TestLpGeneralProjectionKKT(t *testing.T) {
	// For general p the projection must land exactly on the sphere ‖y‖_p = r when
	// the input is outside, and satisfy the variational inequality.
	r := rand.New(rand.NewSource(23))
	for _, p := range []float64{1.3, 1.5, 1.8, 3, 5} {
		b := NewLpBall(4, p, 1)
		for trial := 0; trial < 20; trial++ {
			x := randomVec(r, 4)
			x.Scale(3) // push outside
			y := b.Project(x)
			if math.Abs(vec.NormP(y, p)-1) > 1e-5 {
				t.Fatalf("p=%v: projection norm %v != 1", p, vec.NormP(y, p))
			}
			for probe := 0; probe < 30; probe++ {
				q := b.Project(randomVec(r, 4))
				if vec.Dot(vec.Sub(x, y), vec.Sub(q, y)) > 1e-4 {
					t.Fatalf("p=%v: variational inequality violated", p)
				}
			}
		}
	}
}

func TestSolveScalarLp(t *testing.T) {
	// u + λp u^{p-1} = a must be solved accurately.
	for _, tc := range []struct{ a, lambda, p float64 }{
		{1, 0.5, 1.5}, {2, 0.1, 3}, {0.3, 2, 1.2}, {5, 1, 2.5},
	} {
		u := solveScalarLp(tc.a, tc.lambda, tc.p)
		got := u + tc.lambda*tc.p*math.Pow(u, tc.p-1)
		if math.Abs(got-tc.a) > 1e-9*(1+tc.a) {
			t.Fatalf("solveScalarLp(%v): residual %v", tc, got-tc.a)
		}
	}
	if solveScalarLp(0, 1, 2) != 0 {
		t.Fatal("a=0 should give u=0")
	}
	if solveScalarLp(3, 0, 2) != 3 {
		t.Fatal("λ=0 should give u=a")
	}
}
