package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"privreg/internal/codec"
)

// On-disk layout of a Spill store rooted at dir:
//
//	dir/MANIFEST        recovery root: atomic-renamed, fsynced, versioned
//	dir/segments/       one segment file per stream generation
//
// Segment files are immutable once renamed into place: every write creates a
// new generation (<id-hash>-<gen>.seg) and the superseded file is deleted
// only after the next manifest no longer references it. Restore-on-boot reads
// only the manifest — streams fault in lazily on first access — so boot cost
// is O(live streams) metadata, not O(total state).
const (
	// ManifestFile is the manifest's file name inside the store directory.
	ManifestFile = "MANIFEST"
	// SegmentDir is the segment directory's name inside the store directory.
	SegmentDir = "segments"

	maxSpillShards = 64
)

// Spill is the bounded-memory StreamStore: at most cap streams are resident;
// colder streams live as segment files and fault back in on access. With
// cap <= 0 residency is unbounded but the disk layer (segment checkpoints,
// lazy restore) still applies.
type Spill struct {
	dir     string
	segDir  string
	meta    string // stamped into every segment and the manifest; checked on open
	factory Factory

	shards []spillShard

	gen atomic.Uint64 // segment file generation counter (unique per write)

	evictions   atomic.Int64
	faults      atomic.Int64
	evictErrors atomic.Int64

	// fsMu guards the bookkeeping that ties segment files to manifests.
	// Never acquired while holding a shard or entry lock's critical work —
	// only for short map/slice updates.
	fsMu sync.Mutex
	// unsynced holds segment files written by evictions (rename only, no
	// fsync — the hot path) since the last flush; Flush fsyncs them before
	// any manifest can reference them.
	unsynced map[string]struct{}
	// garbage holds superseded or dropped segment files that may still be
	// referenced by the last manifest; they are deleted only after a newer
	// manifest lands.
	garbage []string
	// manifestFiles is the set of segment files the latest on-disk manifest
	// references (used to keep Flush's garbage collection from deleting a
	// file a crash recovery would need).
	manifestFiles map[string]struct{}

	// flushMu serializes Flush: concurrent checkpoints would race on the
	// manifest rename and garbage collection.
	flushMu sync.Mutex
}

type spillShard struct {
	mu       sync.Mutex
	cap      int // max resident entries; <= 0 means unbounded
	table    map[string]*spillEntry
	head     *spillEntry // LRU list of resident entries, MRU first
	tail     *spillEntry
	resident int
}

// spillEntry is one stream's slot. Field ownership:
//   - st, file: guarded by mu (held across estimator work and disk I/O)
//   - prev, next, inLRU, pins: guarded by the owning shard's mu
//   - len, dirty, dropped: atomics, readable under either lock
type spillEntry struct {
	id string

	mu   sync.Mutex
	st   Stream // nil while spilled
	file string // current segment file name ("" before first write)

	prev, next *spillEntry
	inLRU      bool
	pins       int

	len     atomic.Int64
	bytes   atomic.Int64 // retained state of the resident estimator (0 while spilled)
	dirty   atomic.Bool
	dropped atomic.Bool
}

// OpenSpill opens (or creates) a spill store rooted at dir. meta is an
// identity string (the Pool passes its mechanism name) stamped into segments
// and the manifest and verified on open, so a store directory cannot be
// silently reused by an incompatible pool. cap bounds resident streams
// (<= 0 means unbounded). If a manifest exists, its streams are registered
// immediately — with their lengths — but their state faults in lazily.
func OpenSpill(dir, meta string, cap int, factory Factory) (*Spill, error) {
	// Segments hold raw private accumulator state — exactly as sensitive as
	// the process memory — so the tree is owner-only.
	segDir := filepath.Join(dir, SegmentDir)
	if err := os.MkdirAll(segDir, 0o700); err != nil {
		return nil, fmt.Errorf("store: creating segment directory: %w", err)
	}
	s := &Spill{
		dir:           dir,
		segDir:        segDir,
		meta:          meta,
		factory:       factory,
		unsynced:      make(map[string]struct{}),
		manifestFiles: make(map[string]struct{}),
	}
	// Shard layout: with a bounded cap the per-shard caps must sum exactly to
	// cap (so "resident <= cap" is a hard invariant, not a rounding hope),
	// which needs nshards <= cap; unbounded stores always use the full fan-out.
	nshards := maxSpillShards
	if cap > 0 && cap < nshards {
		nshards = cap
	}
	s.shards = make([]spillShard, nshards)
	for i := range s.shards {
		s.shards[i].table = make(map[string]*spillEntry)
		if cap <= 0 {
			s.shards[i].cap = 0
		} else {
			c := cap / nshards
			if i < cap%nshards {
				c++
			}
			s.shards[i].cap = c
		}
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadManifest reads the manifest (if any), registers every stream as a
// lazily faulted spilled entry, garbage-collects segment files a crashed
// flush or eviction left unreferenced, and advances the generation counter
// past every referenced file.
func (s *Spill) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, ManifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil // clean first boot
	}
	if err != nil {
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	meta, entries, err := codec.DecodeManifest(data)
	if err != nil {
		return fmt.Errorf("store: %s: %w", filepath.Join(s.dir, ManifestFile), err)
	}
	if meta != s.meta {
		return fmt.Errorf("store: manifest is for %q, store opened for %q", meta, s.meta)
	}
	var maxGen uint64
	for _, me := range entries {
		e := &spillEntry{id: me.ID, file: me.File}
		e.len.Store(me.Len)
		sh := &s.shards[shardIndex(me.ID, len(s.shards))]
		if _, dup := sh.table[me.ID]; dup {
			return fmt.Errorf("store: manifest lists stream %q twice", me.ID)
		}
		sh.table[me.ID] = e
		s.manifestFiles[me.File] = struct{}{}
		if g := segmentGen(me.File); g > maxGen {
			maxGen = g
		}
	}
	s.gen.Store(maxGen)
	// Remove segment files the manifest does not reference: leftovers from a
	// crash between segment writes and the manifest rename. They are not
	// recoverable state — the manifest is the only root.
	dirents, err := os.ReadDir(s.segDir)
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	for _, de := range dirents {
		if _, ok := s.manifestFiles[de.Name()]; !ok {
			_ = os.Remove(filepath.Join(s.segDir, de.Name()))
		}
	}
	return nil
}

// segmentName builds a fresh segment file name for a stream: an ID hash for
// human debuggability plus a store-unique generation for correctness.
func (s *Spill) segmentName(id string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return fmt.Sprintf("%016x-%d.seg", h.Sum64(), s.gen.Add(1))
}

// segmentGen parses the generation out of a segment file name (0 when the
// name is foreign).
func segmentGen(name string) uint64 {
	rest, ok := strings.CutSuffix(name, ".seg")
	if !ok {
		return 0
	}
	_, genStr, ok := strings.Cut(rest, "-")
	if !ok {
		return 0
	}
	g, err := strconv.ParseUint(genStr, 10, 64)
	if err != nil {
		return 0
	}
	return g
}

func (s *Spill) shardFor(id string) *spillShard {
	return &s.shards[shardIndex(id, len(s.shards))]
}

// --- LRU plumbing (all under the shard lock) --------------------------------

func (sh *spillShard) pushFront(e *spillEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
	e.inLRU = true
	sh.resident++
}

func (sh *spillShard) unlink(e *spillEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
	sh.resident--
}

func (sh *spillShard) moveFront(e *spillEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// --- access path ------------------------------------------------------------

func (s *Spill) Update(id string, create bool, fn func(Stream) error) error {
	return s.access(id, create, true, fn)
}

// Read faults the stream in like Update but leaves its dirty flag alone, so
// a read-only access never forces a later eviction or flush to rewrite the
// segment (see StreamStore.Read for when that is sound).
func (s *Spill) Read(id string, fn func(Stream) error) error {
	return s.access(id, false, false, fn)
}

func (s *Spill) access(id string, create, markDirty bool, fn func(Stream) error) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.table[id]
	created := false
	if e == nil {
		if !create {
			sh.mu.Unlock()
			return ErrNotFound
		}
		e = &spillEntry{id: id}
		sh.table[id] = e
		created = true
	}
	e.pins++
	sh.mu.Unlock()

	e.mu.Lock()
	err := s.materialize(e)
	materialized := e.st != nil
	if err == nil {
		err = fn(e.st)
		e.len.Store(int64(e.st.Len()))
		e.bytes.Store(streamStateBytes(e.st))
		if err == nil && markDirty {
			e.dirty.Store(true)
		}
	}
	e.mu.Unlock()

	s.release(sh, e, materialized, created)
	return err
}

// materialize ensures e.st is live: fault in from the segment file when one
// exists, otherwise build a fresh stream. Called with e.mu held.
func (s *Spill) materialize(e *spillEntry) error {
	if e.st != nil {
		return nil
	}
	st, err := s.factory(e.id)
	if err != nil {
		return err
	}
	if e.file != "" {
		blob, err := s.readSegment(e.file, e.id)
		if err != nil {
			return err
		}
		if err := st.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("store: faulting in stream %q: %w", e.id, err)
		}
		s.faults.Add(1)
	}
	e.st = st
	e.len.Store(int64(st.Len()))
	e.bytes.Store(streamStateBytes(st))
	return nil
}

// release is the bookkeeping tail of every pinned access: unpin, keep the
// LRU in sync with residency, drop placeholder entries whose construction
// failed, and evict past-cap residents.
func (s *Spill) release(sh *spillShard, e *spillEntry, materialized, created bool) {
	var victims []*spillEntry
	sh.mu.Lock()
	e.pins--
	if !e.dropped.Load() {
		switch {
		case materialized && !e.inLRU:
			sh.pushFront(e)
		case materialized:
			sh.moveFront(e)
		case created && e.pins == 0 && !e.inLRU:
			// The factory failed on a stream this call created: leave no
			// placeholder behind (matching "a failed build creates no
			// stream"). Entries that reached disk keep their slot.
			if !e.dirty.Load() && e.len.Load() == 0 {
				delete(sh.table, e.id)
				e.dropped.Store(true)
			}
		}
		victims = sh.collectVictims()
	}
	sh.mu.Unlock()
	for _, v := range victims {
		s.spillOut(sh, v)
	}
}

// collectVictims unlinks past-cap LRU-tail entries (skipping pinned ones)
// and returns them for spilling. Called with sh.mu held.
func (sh *spillShard) collectVictims() []*spillEntry {
	if sh.cap <= 0 || sh.resident <= sh.cap {
		return nil
	}
	var victims []*spillEntry
	e := sh.tail
	for e != nil && sh.resident > sh.cap {
		prev := e.prev
		if e.pins == 0 {
			sh.unlink(e)
			victims = append(victims, e)
		}
		e = prev
	}
	return victims
}

// spillOut serializes a victim's state to a fresh segment file and releases
// the in-memory estimator. On failure the stream is put back in the LRU (the
// state must not be lost) and the error is counted.
func (s *Spill) spillOut(sh *spillShard, v *spillEntry) {
	v.mu.Lock()
	if v.dropped.Load() || v.st == nil {
		v.mu.Unlock()
		return
	}
	if !v.dirty.Load() {
		// Clean evictions are free: either the segment on disk already holds
		// exactly this state, or the stream was never successfully mutated
		// and the factory rebuilds it bit-identically. Just release the
		// memory — read-heavy churn over cap costs no writes.
		v.st = nil
		v.bytes.Store(0)
		v.mu.Unlock()
		s.evictions.Add(1)
		return
	}
	blob, err := v.st.MarshalBinary()
	if err == nil {
		_, err = s.writeSegmentLocked(v, blob, false)
	}
	if err != nil {
		v.mu.Unlock()
		s.evictErrors.Add(1)
		sh.mu.Lock()
		if !v.dropped.Load() && !v.inLRU {
			sh.pushFront(v)
		}
		sh.mu.Unlock()
		return
	}
	v.st = nil
	v.bytes.Store(0)
	v.dirty.Store(false)
	v.mu.Unlock()
	s.evictions.Add(1)
}

// writeSegmentLocked writes a new segment generation for e (temp file +
// atomic rename), updates e.file, and queues the superseded file for
// collection after the next manifest. sync controls whether the file is
// fsynced before the rename: Flush syncs inline, evictions defer the sync to
// the next Flush (recorded in unsynced). Called with e.mu held; returns the
// encoded segment size.
func (s *Spill) writeSegmentLocked(e *spillEntry, blob []byte, sync bool) (int, error) {
	name := s.segmentName(e.id)
	path := filepath.Join(s.segDir, name)
	data := codec.EncodeSegment(s.meta, e.id, blob)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return 0, fmt.Errorf("store: creating segment: %w", err)
	}
	if _, err = f.Write(data); err == nil && sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("store: writing segment for stream %q: %w", e.id, err)
	}
	old := e.file
	e.file = name
	s.fsMu.Lock()
	if !sync {
		s.unsynced[name] = struct{}{}
	}
	if old != "" {
		s.garbage = append(s.garbage, old)
	}
	s.fsMu.Unlock()
	return len(data), nil
}

// readSegment reads and verifies one segment file, returning the stream blob.
func (s *Spill) readSegment(name, wantID string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.segDir, name))
	if err != nil {
		return nil, fmt.Errorf("store: reading segment for stream %q: %w", wantID, err)
	}
	meta, id, blob, err := codec.DecodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	if meta != s.meta || id != wantID {
		return nil, fmt.Errorf("store: segment %s belongs to stream %q of %q, wanted stream %q of %q", name, id, meta, wantID, s.meta)
	}
	return blob, nil
}

// --- the rest of the StreamStore interface ---------------------------------

func (s *Spill) Length(id string) (int, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.table[id]
	sh.mu.Unlock()
	if e == nil {
		return 0, false
	}
	return int(e.len.Load()), true
}

func (s *Spill) Has(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.table[id]
	sh.mu.Unlock()
	return ok
}

func (s *Spill) Delete(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.table[id]
	if e == nil {
		sh.mu.Unlock()
		return false
	}
	delete(sh.table, id)
	e.dropped.Store(true)
	if e.inLRU {
		sh.unlink(e)
	}
	sh.mu.Unlock()
	// Release the dropped state. Taking e.mu serializes with any in-flight
	// operation that pinned the entry before the drop.
	e.mu.Lock()
	file := e.file
	e.file = ""
	e.st = nil
	e.bytes.Store(0)
	e.mu.Unlock()
	if file != "" {
		s.fsMu.Lock()
		s.garbage = append(s.garbage, file)
		s.fsMu.Unlock()
	}
	return true
}

func (s *Spill) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.table {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func (s *Spill) Install(id string, st Stream) {
	e := &spillEntry{id: id, st: st}
	e.len.Store(int64(st.Len()))
	e.bytes.Store(streamStateBytes(st))
	e.dirty.Store(true)
	sh := s.shardFor(id)
	var oldFile string
	sh.mu.Lock()
	if old := sh.table[id]; old != nil {
		old.dropped.Store(true)
		if old.inLRU {
			sh.unlink(old)
		}
		oldFile = old.file // safe: dropped entries are never rewritten
	}
	sh.table[id] = e
	sh.pushFront(e)
	victims := sh.collectVictims()
	sh.mu.Unlock()
	if oldFile != "" {
		s.fsMu.Lock()
		s.garbage = append(s.garbage, oldFile)
		s.fsMu.Unlock()
	}
	for _, v := range victims {
		s.spillOut(sh, v)
	}
}

func (s *Spill) Marshal(id string) ([]byte, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.table[id]
	if e == nil {
		sh.mu.Unlock()
		return nil, ErrNotFound
	}
	e.pins++
	sh.mu.Unlock()

	e.mu.Lock()
	var blob []byte
	var err error
	switch {
	case e.st != nil:
		blob, err = e.st.MarshalBinary()
	case e.file != "":
		// Spilled and clean: the segment file already holds exactly the bytes
		// MarshalBinary would produce — serve them without faulting in.
		blob, err = s.readSegment(e.file, e.id)
	default:
		// Never materialized (a placeholder caught mid-create): build fresh
		// state so the caller sees an empty stream, like Resident would.
		if err = s.materialize(e); err == nil {
			blob, err = e.st.MarshalBinary()
		}
	}
	materialized := e.st != nil
	e.mu.Unlock()

	s.release(sh, e, materialized, false)
	return blob, err
}

// Export returns the stream's state as complete segment-file bytes. Spilled
// clean streams are served verbatim from disk (after CRC verification) —
// the file already is the transfer format — so continuous replication of
// cold streams costs reads, not deserialization.
func (s *Spill) Export(id string) ([]byte, int64, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.table[id]
	if e == nil {
		sh.mu.Unlock()
		return nil, 0, ErrNotFound
	}
	e.pins++
	sh.mu.Unlock()

	e.mu.Lock()
	var data []byte
	var err error
	switch {
	case e.st != nil:
		var blob []byte
		blob, err = e.st.MarshalBinary()
		if err == nil {
			data = codec.EncodeSegment(s.meta, e.id, blob)
		}
	case e.file != "":
		data, err = os.ReadFile(filepath.Join(s.segDir, e.file))
		if err == nil {
			// Verify before shipping: a locally corrupt segment must fail
			// here, not poison a peer.
			var meta, segID string
			meta, segID, _, err = codec.DecodeSegment(data)
			if err == nil && (meta != s.meta || segID != e.id) {
				err = fmt.Errorf("store: segment %s belongs to stream %q of %q, wanted %q of %q", e.file, segID, meta, e.id, s.meta)
			}
		}
	default:
		err = ErrNotFound // placeholder caught mid-create; nothing to ship
	}
	length := e.len.Load()
	materialized := e.st != nil
	e.mu.Unlock()

	s.release(sh, e, materialized, false)
	if err != nil {
		return nil, 0, err
	}
	return data, length, nil
}

// Import installs a peer's segment verbatim: the bytes are verified
// (CRC, store identity), written to a fresh local generation under
// segments/, and the stream is registered spilled and clean — no
// deserialization, no residency cost. The next Flush's manifest adopts the
// file; until then a crash leaves it as an orphan the boot-time GC removes,
// which is exactly the half-finished-import semantics the handoff protocol
// wants (the source still owns the authoritative copy until commit).
func (s *Spill) Import(data []byte, length int64) (string, error) {
	meta, id, _, err := codec.DecodeSegment(data)
	if err != nil {
		return "", fmt.Errorf("store: importing segment: %w", err)
	}
	if meta != s.meta {
		return "", fmt.Errorf("store: imported segment is for %q, store holds %q", meta, s.meta)
	}

	name := s.segmentName(id)
	path := filepath.Join(s.segDir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return "", fmt.Errorf("store: creating imported segment: %w", err)
	}
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("store: writing imported segment for stream %q: %w", id, err)
	}

	e := &spillEntry{id: id, file: name}
	e.len.Store(length)
	sh := s.shardFor(id)
	var oldFile string
	sh.mu.Lock()
	if old := sh.table[id]; old != nil {
		old.dropped.Store(true)
		if old.inLRU {
			sh.unlink(old)
		}
		oldFile = old.file
	}
	sh.table[id] = e
	sh.mu.Unlock()
	s.fsMu.Lock()
	s.unsynced[name] = struct{}{}
	if oldFile != "" {
		s.garbage = append(s.garbage, oldFile)
	}
	s.fsMu.Unlock()
	return id, nil
}

func (s *Spill) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Streams += len(sh.table)
		st.Resident += sh.resident
		for _, e := range sh.table {
			st.Observations += e.len.Load()
			st.StateBytes += e.bytes.Load()
			if e.dirty.Load() {
				st.Dirty++
			}
		}
		sh.mu.Unlock()
	}
	st.Spilled = st.Streams - st.Resident
	st.Evictions = s.evictions.Load()
	st.Faults = s.faults.Load()
	st.EvictErrors = s.evictErrors.Load()
	return st
}

// Flush writes an incremental checkpoint:
//
//  1. every dirty resident stream's state goes to a fresh segment file,
//     fsynced (streams untouched since the last flush are skipped — their
//     segment on disk is already current, which is what makes a checkpoint
//     after touching M of N streams O(M));
//  2. the live streams' current segment files are snapshotted (the manifest
//     content), then segment files written by evictions since the last flush
//     are fsynced — in that order, so every file the manifest names is
//     durable before the manifest is;
//  3. the manifest is written to a temp file, fsynced, atomically renamed
//     over the previous manifest, and the directory is fsynced, so the
//     recovery root moves forward atomically;
//  4. segment files superseded before this manifest are deleted.
//
// Concurrent traffic is not blocked globally: each stream is locked only
// while its own state is serialized, so the checkpoint is the usual
// per-stream-consistent snapshot.
func (s *Spill) Flush() (FlushStats, error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	var out FlushStats

	// 1. Flush dirty resident streams.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		entries := make([]*spillEntry, 0, len(sh.table))
		for _, e := range sh.table {
			entries = append(entries, e)
		}
		sh.mu.Unlock()
		for _, e := range entries {
			if e.dropped.Load() || !e.dirty.Load() {
				continue
			}
			e.mu.Lock()
			var n int
			var err error
			if e.dirty.Load() && e.st != nil && !e.dropped.Load() {
				var blob []byte
				blob, err = e.st.MarshalBinary()
				if err == nil {
					n, err = s.writeSegmentLocked(e, blob, true)
				}
				if err == nil {
					e.dirty.Store(false)
				}
			}
			e.mu.Unlock()
			if err != nil {
				return out, err
			}
			if n > 0 {
				out.Segments++
				out.SegmentBytes += n
			}
		}
	}

	// 2. Snapshot the live streams — the manifest content. This happens
	// BEFORE the unsynced sweep in step 3: any segment a snapshotted e.file
	// names was written before this point, so it is either already durable
	// (step-1 writes sync inline) or still present in unsynced and synced by
	// step 3. An eviction racing in after the snapshot installs a file this
	// manifest does not reference, which the next flush will cover.
	var entries []codec.ManifestEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snapshot := make([]*spillEntry, 0, len(sh.table))
		for _, e := range sh.table {
			snapshot = append(snapshot, e)
		}
		sh.mu.Unlock()
		for _, e := range snapshot {
			if e.dropped.Load() {
				continue
			}
			e.mu.Lock()
			file := e.file
			e.mu.Unlock()
			if file == "" {
				continue // created after step 1; the next flush will cover it
			}
			entries = append(entries, codec.ManifestEntry{ID: e.id, File: file, Len: e.len.Load()})
		}
	}

	// 3. Make eviction-written segments durable before the manifest can
	// reference them. The unsynced set is drained name-by-name only after
	// each successful sync, so an I/O error leaves the remaining names
	// queued for the next flush instead of silently forgotten.
	s.fsMu.Lock()
	pending := make([]string, 0, len(s.unsynced))
	for name := range s.unsynced {
		pending = append(pending, name)
	}
	s.fsMu.Unlock()
	for _, name := range pending {
		if err := syncFile(filepath.Join(s.segDir, name)); err != nil {
			return out, err
		}
		s.fsMu.Lock()
		delete(s.unsynced, name)
		s.fsMu.Unlock()
	}
	if err := syncDir(s.segDir); err != nil {
		return out, err
	}

	// 4. Write the manifest.
	data := codec.EncodeManifest(s.meta, entries)
	if err := writeFileAtomic(filepath.Join(s.dir, ManifestFile), data); err != nil {
		return out, err
	}
	if err := syncDir(s.dir); err != nil {
		return out, err
	}
	out.ManifestBytes = len(data)
	out.Streams = len(entries)

	// 5. Garbage-collect superseded segments no longer reachable from the
	// manifest just written. A file both superseded and referenced (a flush
	// raced an eviction) stays until the next flush.
	referenced := make(map[string]struct{}, len(entries))
	for _, me := range entries {
		referenced[me.File] = struct{}{}
	}
	s.fsMu.Lock()
	var keep []string
	for _, name := range s.garbage {
		if _, ok := referenced[name]; ok {
			keep = append(keep, name)
			continue
		}
		_ = os.Remove(filepath.Join(s.segDir, name))
	}
	s.garbage = keep
	s.manifestFiles = referenced
	s.fsMu.Unlock()
	return out, nil
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // superseded and collected between bookkeeping and here
	}
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so completed renames inside it are durable.
// Best-effort on platforms where directories cannot be opened for sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

// writeFileAtomic writes data to path via a sibling temp file, fsync, and
// atomic rename, so path always holds either the previous or the new
// complete content.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
