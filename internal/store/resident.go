package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"privreg/internal/codec"
)

// residentShards is the number of lock shards a Resident store spreads its
// streams over (the Pool's historical value): stream IDs hash to shards, so
// unrelated streams contend only 1/residentShards of the time, and each
// stream carries its own mutex for the (much longer) estimator work.
const residentShards = 64

// Resident is the fully-resident StreamStore: every stream stays in memory
// for the life of the process. It is the default backend and preserves the
// Pool's original sharded-locking behavior exactly.
type Resident struct {
	meta    string // store identity stamped into exported segments
	factory Factory
	shards  [residentShards]residentShard
}

type residentShard struct {
	mu      sync.RWMutex
	streams map[string]*residentEntry
}

type residentEntry struct {
	mu    sync.Mutex
	st    Stream
	len   atomic.Int64
	bytes atomic.Int64
}

// NewResident returns an empty fully-resident store building streams with
// the given factory. meta is the store identity (the Pool passes its
// mechanism name) stamped into exported segments and checked on import, the
// same contract the Spill store enforces on its directory.
func NewResident(meta string, factory Factory) *Resident {
	r := &Resident{meta: meta, factory: factory}
	for i := range r.shards {
		r.shards[i].streams = make(map[string]*residentEntry)
	}
	return r
}

func shardIndex(id string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

func (r *Resident) shardFor(id string) *residentShard {
	return &r.shards[shardIndex(id, residentShards)]
}

// entry returns the residentEntry for id, creating it when create is set.
func (r *Resident) entry(id string, create bool) (*residentEntry, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	if !create {
		return nil, ErrNotFound
	}
	// Build outside the shard lock (construction can be expensive: sketch
	// sampling, tree allocation), then insert; on a race the loser's stream
	// is discarded.
	st, err := r.factory(id)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if existing := sh.streams[id]; existing != nil {
		sh.mu.Unlock()
		return existing, nil
	}
	e = &residentEntry{st: st}
	sh.streams[id] = e
	sh.mu.Unlock()
	return e, nil
}

func (r *Resident) Update(id string, create bool, fn func(Stream) error) error {
	e, err := r.entry(id, create)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	err = fn(e.st)
	e.len.Store(int64(e.st.Len()))
	e.bytes.Store(streamStateBytes(e.st))
	return err
}

// Read is Update without creation; a fully-resident store has no dirty
// tracking to skip.
func (r *Resident) Read(id string, fn func(Stream) error) error {
	return r.Update(id, false, fn)
}

func (r *Resident) Length(id string) (int, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e == nil {
		return 0, false
	}
	return int(e.len.Load()), true
}

func (r *Resident) Has(id string) bool {
	sh := r.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.streams[id]
	sh.mu.RUnlock()
	return ok
}

func (r *Resident) Delete(id string) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.streams[id]
	delete(sh.streams, id)
	sh.mu.Unlock()
	return ok
}

func (r *Resident) Keys() []string {
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id := range sh.streams {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

func (r *Resident) Install(id string, st Stream) {
	e := &residentEntry{st: st}
	e.len.Store(int64(st.Len()))
	e.bytes.Store(streamStateBytes(st))
	sh := r.shardFor(id)
	sh.mu.Lock()
	sh.streams[id] = e
	sh.mu.Unlock()
}

func (r *Resident) Marshal(id string) ([]byte, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e == nil {
		return nil, ErrNotFound
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.MarshalBinary()
}

// Export serializes the stream and frames it as a segment; a fully-resident
// store has no segment files to serve verbatim, so this always marshals.
func (r *Resident) Export(id string) ([]byte, int64, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e == nil {
		return nil, 0, ErrNotFound
	}
	e.mu.Lock()
	blob, err := e.st.MarshalBinary()
	length := int64(e.st.Len())
	e.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	return codec.EncodeSegment(r.meta, id, blob), length, nil
}

// Import verifies and materializes a peer's segment, then installs it.
func (r *Resident) Import(data []byte, length int64) (string, error) {
	meta, id, blob, err := codec.DecodeSegment(data)
	if err != nil {
		return "", fmt.Errorf("store: importing segment: %w", err)
	}
	if meta != r.meta {
		return "", fmt.Errorf("store: imported segment is for %q, store holds %q", meta, r.meta)
	}
	st, err := r.factory(id)
	if err != nil {
		return "", err
	}
	if err := st.UnmarshalBinary(blob); err != nil {
		return "", fmt.Errorf("store: importing stream %q: %w", id, err)
	}
	_ = length // resident imports materialize, so the stream's own Len governs
	r.Install(id, st)
	return id, nil
}

func (r *Resident) Stats() Stats {
	var s Stats
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		s.Streams += len(sh.streams)
		for _, e := range sh.streams {
			s.Observations += e.len.Load()
			s.StateBytes += e.bytes.Load()
		}
		sh.mu.RUnlock()
	}
	s.Resident = s.Streams
	s.Dirty = s.Streams
	return s
}

func (r *Resident) Flush() (FlushStats, error) {
	return FlushStats{}, ErrNotPersistent
}
