package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"privreg/internal/codec"
)

// fakeStream is a minimal Stream for store tests: an append-only list of
// float64 values with a self-identifying binary codec.
type fakeStream struct {
	id   string
	vals []float64
}

func (f *fakeStream) Len() int { return len(f.vals) }

func (f *fakeStream) append(v float64) { f.vals = append(f.vals, v) }

func (f *fakeStream) MarshalBinary() ([]byte, error) {
	var w codec.Writer
	w.String(f.id)
	w.F64s(f.vals)
	return w.Bytes(), nil
}

func (f *fakeStream) UnmarshalBinary(data []byte) error {
	r := codec.NewReader(data)
	id := r.String()
	vals := r.F64s()
	if err := r.Finish(); err != nil {
		return err
	}
	if id != f.id {
		return fmt.Errorf("fake stream %q restored blob of %q", f.id, id)
	}
	f.vals = vals
	return nil
}

func fakeFactory() Factory {
	return func(id string) (Stream, error) { return &fakeStream{id: id}, nil }
}

// appendTo pushes one value through Update, creating the stream.
func appendTo(t *testing.T, s StreamStore, id string, v float64) {
	t.Helper()
	if err := s.Update(id, true, func(st Stream) error {
		st.(*fakeStream).append(v)
		return nil
	}); err != nil {
		t.Fatalf("update %s: %v", id, err)
	}
}

// valuesOf reads a stream's values through Update without mutating.
func valuesOf(t *testing.T, s StreamStore, id string) []float64 {
	t.Helper()
	var out []float64
	if err := s.Update(id, false, func(st Stream) error {
		out = append([]float64(nil), st.(*fakeStream).vals...)
		return nil
	}); err != nil {
		t.Fatalf("read %s: %v", id, err)
	}
	return out
}

func TestResidentBasics(t *testing.T) {
	s := NewResident("fake", fakeFactory())
	if err := s.Update("ghost", false, func(Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update(no-create, unknown) = %v, want ErrNotFound", err)
	}
	appendTo(t, s, "a", 1)
	appendTo(t, s, "a", 2)
	appendTo(t, s, "b", 3)
	if n, ok := s.Length("a"); n != 2 || !ok {
		t.Fatalf("Length(a) = %d, %v", n, ok)
	}
	if _, ok := s.Length("ghost"); ok {
		t.Fatal("Length(unknown) reported existing")
	}
	if got := s.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
	st := s.Stats()
	if st.Streams != 2 || st.Resident != 2 || st.Spilled != 0 || st.Observations != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	// Marshal/Install round-trips a stream into a second store.
	blob, err := s.Marshal("a")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewResident("fake", fakeFactory())
	fresh := &fakeStream{id: "a"}
	if err := fresh.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	s2.Install("a", fresh)
	if got := valuesOf(t, s2, "a"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("installed stream = %v", got)
	}
	if !s.Delete("b") || s.Delete("b") || s.Has("b") {
		t.Fatal("Delete semantics broken")
	}
	if _, err := s.Flush(); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("Resident Flush = %v, want ErrNotPersistent", err)
	}
}

func TestSpillEvictsBeyondCapAndFaultsBackIn(t *testing.T) {
	const cap = 2
	s, err := OpenSpill(t.TempDir(), "test", cap, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("s%d", i)
		appendTo(t, s, id, float64(i))
		appendTo(t, s, id, float64(i)+0.5)
	}
	st := s.Stats()
	if st.Streams != 6 || st.Resident > cap || st.Spilled < 6-cap {
		t.Fatalf("Stats after churn = %+v, want resident <= %d", st, cap)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// Cached lengths are available without fault-in.
	faultsBefore := s.Stats().Faults
	for i := 0; i < 6; i++ {
		if n, ok := s.Length(fmt.Sprintf("s%d", i)); n != 2 || !ok {
			t.Fatalf("Length(s%d) = %d, %v", i, n, ok)
		}
	}
	if got := s.Stats().Faults; got != faultsBefore {
		t.Fatalf("Length faulted streams in (%d -> %d)", faultsBefore, got)
	}
	// Spilled values fault back in intact.
	for i := 0; i < 6; i++ {
		got := valuesOf(t, s, fmt.Sprintf("s%d", i))
		if len(got) != 2 || got[0] != float64(i) || got[1] != float64(i)+0.5 {
			t.Fatalf("s%d = %v after fault-in", i, got)
		}
	}
	if got := s.Stats().Faults; got == faultsBefore {
		t.Fatal("reading all streams above cap recorded no fault-ins")
	}
	if got := s.Stats(); got.Resident > cap {
		t.Fatalf("resident %d exceeds cap %d after reads", got.Resident, cap)
	}
}

func TestSpillShardCapsSumExactly(t *testing.T) {
	for _, cap := range []int{1, 2, 5, 63, 64, 100, 1000} {
		s, err := OpenSpill(t.TempDir(), "test", cap, fakeFactory())
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := range s.shards {
			if s.shards[i].cap < 1 {
				t.Fatalf("cap=%d: shard %d has cap %d", cap, i, s.shards[i].cap)
			}
			total += s.shards[i].cap
		}
		if total != cap {
			t.Fatalf("cap=%d: shard caps sum to %d", cap, total)
		}
	}
}

func TestSpillFlushIsIncrementalAndReopens(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, "test", 4, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		appendTo(t, s, fmt.Sprintf("s%d", i), float64(i))
	}
	fs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Every stream was dirty (resident-dirty or spilled via eviction);
	// segments counts only the flush-written ones, the manifest covers all.
	if fs.Streams != n || fs.ManifestBytes == 0 {
		t.Fatalf("first flush = %+v, want %d streams", fs, n)
	}
	if st := s.Stats(); st.Dirty != 0 {
		t.Fatalf("dirty after flush = %d, want 0", st.Dirty)
	}

	// Touch 3 streams; the next flush rewrites exactly those segments.
	for _, id := range []string{"s1", "s4", "s7"} {
		appendTo(t, s, id, 99)
	}
	fs, err = s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Segments != 3 {
		t.Fatalf("incremental flush wrote %d segments, want 3 (touched streams only)", fs.Segments)
	}
	if fs.Streams != n {
		t.Fatalf("manifest covers %d streams, want %d", fs.Streams, n)
	}

	// A no-op flush writes no segments at all.
	fs, err = s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Segments != 0 || fs.Streams != n {
		t.Fatalf("idle flush = %+v", fs)
	}

	// Reopen: all streams registered lazily with cached lengths, no fault-ins
	// until state is actually needed.
	s2, err := OpenSpill(dir, "test", 4, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Keys(); len(got) != n {
		t.Fatalf("reopened Keys = %v", got)
	}
	st := s2.Stats()
	if st.Resident != 0 || st.Faults != 0 || st.Streams != n {
		t.Fatalf("reopened Stats = %+v, want fully lazy", st)
	}
	if ln, ok := s2.Length("s4"); !ok || ln != 2 {
		t.Fatalf("reopened Length(s4) = %d, %v (want cached 2)", ln, ok)
	}
	if got := valuesOf(t, s2, "s4"); len(got) != 2 || got[0] != 4 || got[1] != 99 {
		t.Fatalf("reopened s4 = %v", got)
	}
	if got := valuesOf(t, s2, "s0"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reopened s0 = %v", got)
	}
}

func TestSpillGarbageCollectsSupersededSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, "test", 8, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		appendTo(t, s, fmt.Sprintf("s%d", i), 1)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segs := func() int {
		des, err := os.ReadDir(filepath.Join(dir, SegmentDir))
		if err != nil {
			t.Fatal(err)
		}
		return len(des)
	}
	if got := segs(); got != n {
		t.Fatalf("%d segment files after first flush, want %d", got, n)
	}
	// Rewriting two streams twice leaves exactly one live segment per stream
	// after the next flush — superseded generations are collected.
	for round := 0; round < 2; round++ {
		appendTo(t, s, "s0", 2)
		appendTo(t, s, "s3", 2)
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := segs(); got != n {
		t.Fatalf("%d segment files after rewrites, want %d (no garbage)", got, n)
	}
	// Deleting a stream removes it from the manifest and, after the flush,
	// its segment from disk.
	if !s.Delete("s5") {
		t.Fatal("delete failed")
	}
	if fs, err := s.Flush(); err != nil || fs.Streams != n-1 {
		t.Fatalf("flush after delete = %+v, %v", fs, err)
	}
	if got := segs(); got != n-1 {
		t.Fatalf("%d segment files after delete, want %d", got, n-1)
	}
	s2, err := OpenSpill(dir, "test", 8, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Has("s5") {
		t.Fatal("deleted stream resurrected on reopen")
	}
}

func TestSpillMarshalSpilledStreamServesSegmentWithoutFaultIn(t *testing.T) {
	s, err := OpenSpill(t.TempDir(), "test", 1, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, s, "cold", 7)
	appendTo(t, s, "hot", 8) // evicts "cold" (cap 1, single shard)
	st := s.Stats()
	if st.Spilled != 1 {
		t.Fatalf("Stats = %+v, want one spilled stream", st)
	}
	blob, err := s.Marshal("cold")
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Faults != st.Faults || after.Resident != st.Resident {
		t.Fatalf("Marshal faulted the stream in: %+v -> %+v", st, after)
	}
	want := &fakeStream{id: "cold", vals: []float64{7}}
	wantBlob, _ := want.MarshalBinary()
	if !bytes.Equal(blob, wantBlob) {
		t.Fatalf("Marshal(cold) = %x, want %x", blob, wantBlob)
	}
	if _, err := s.Marshal("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Marshal(unknown) = %v", err)
	}
}

func TestSpillRejectsCorruptSegmentAndWrongMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, "mech-a", 1, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, s, "a", 1)
	appendTo(t, s, "b", 2) // spills "a"
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopening under a different meta string is refused.
	if _, err := OpenSpill(dir, "mech-b", 1, fakeFactory()); err == nil {
		t.Fatal("reopen with mismatched meta succeeded")
	}
	// Corrupting a's segment file makes the fault-in fail loudly.
	des, err := os.ReadDir(filepath.Join(dir, SegmentDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		path := filepath.Join(dir, SegmentDir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	gotErr := false
	for _, id := range []string{"a", "b"} {
		if err := s.Update(id, false, func(Stream) error { return nil }); err != nil {
			gotErr = true
		}
	}
	if !gotErr {
		t.Fatal("no error surfaced after corrupting every segment (at least the spilled stream must fail)")
	}
}

func TestSpillConcurrentChurnUnderCap(t *testing.T) {
	const (
		cap     = 4
		streams = 24
		workers = 8
		perW    = 60
	)
	s, err := OpenSpill(t.TempDir(), "test", cap, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("c%d", (w+i*workers)%streams)
				err := s.Update(id, true, func(st Stream) error {
					st.(*fakeStream).append(1)
					return nil
				})
				if err == nil && i%7 == 3 {
					err = s.Update(id, false, func(Stream) error { return nil })
				}
				if err != nil {
					errc <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Resident > cap {
		t.Fatalf("resident %d exceeds cap %d after quiesce", st.Resident, cap)
	}
	if st.Streams != streams || st.Observations != workers*perW {
		t.Fatalf("Stats = %+v, want %d streams / %d observations", st, streams, workers*perW)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < streams; i++ {
		n, ok := s.Length(fmt.Sprintf("c%d", i))
		if !ok {
			t.Fatalf("stream c%d vanished", i)
		}
		total += n
	}
	if total != workers*perW {
		t.Fatalf("summed lengths %d, want %d", total, workers*perW)
	}
}

func TestSpillReadDoesNotDirtyOrRewrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, "test", 1, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, s, "a", 1)
	appendTo(t, s, "b", 2) // spills dirty "a" (cap 1, single shard)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Dirty != 0 {
		t.Fatalf("dirty after flush: %+v", st)
	}
	// Reading both streams cycles each through fault-in and (clean) eviction.
	for i := 0; i < 3; i++ {
		for _, id := range []string{"a", "b"} {
			if err := s.Read(id, func(st Stream) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Dirty != 0 {
		t.Fatalf("reads dirtied streams: %+v", st)
	}
	if st.Faults == 0 || st.Evictions == 0 {
		t.Fatalf("read cycle did not churn residency: %+v", st)
	}
	// The flush after read-only churn rewrites nothing.
	fs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Segments != 0 {
		t.Fatalf("flush after read-only traffic wrote %d segments, want 0", fs.Segments)
	}
	// Values are intact after all the clean eviction cycles.
	if got := valuesOf(t, s, "a"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("a = %v after clean-eviction churn", got)
	}
	// Read on an unknown stream is ErrNotFound, never a create.
	if err := s.Read("ghost", func(Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read(unknown) = %v", err)
	}
	if s.Has("ghost") {
		t.Fatal("Read created a stream")
	}
}

func TestSpillDeleteRacesUpdate(t *testing.T) {
	s, err := OpenSpill(t.TempDir(), "test", 2, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = s.Update("contended", true, func(st Stream) error {
				st.(*fakeStream).append(float64(i))
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.Delete("contended")
		}
	}()
	wg.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Whatever interleaving happened, the store must still be coherent: the
	// stream either exists with a readable state or does not exist at all.
	if s.Has("contended") {
		got := valuesOf(t, s, "contended")
		if n, _ := s.Length("contended"); n != len(got) {
			t.Fatalf("cached length %d != state length %d", n, len(got))
		}
	}
}
