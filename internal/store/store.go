// Package store implements the Pool's storage engine: the mapping from
// stream IDs to live estimator state. It exists so residency policy is
// pluggable behind one interface — StreamStore — with two backends:
//
//   - Resident: every stream stays in memory for the life of the process
//     (the historical Pool behavior). Sharded locking, zero I/O.
//   - Spill: a bounded-memory store for the many-streams regime. At most a
//     configurable number of estimators are resident; colder streams are
//     serialized through their MarshalBinary codec to per-stream segment
//     files on disk and transparently faulted back in on next access.
//     Because checkpoint/restore is bit-identical (the estimator contract),
//     spill and fault-in are invisible in the output sequence. The Spill
//     store also provides incremental checkpointing: per-stream dirty
//     tracking, segment rewrites only for streams that changed, and an
//     fsynced, atomically renamed manifest as the recovery root, so
//     restore-on-boot is O(manifest) with streams faulting in lazily.
//
// The package is deliberately estimator-agnostic: it sees streams only
// through the three-method Stream interface, so it can be tested with tiny
// fakes and reused by any state machine with a binary codec.
package store

import "errors"

// Stream is the minimal surface the store needs from a stream's state: a
// length (for stats without deserialization) and the binary checkpoint codec
// used to spill state to disk and fault it back in. privreg.Estimator
// satisfies it.
type Stream interface {
	Len() int
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// Factory builds a fresh, empty Stream for the given ID — the hook the Pool
// supplies so the store can create streams on first use and rebuild them
// (before UnmarshalBinary) when faulting spilled state back in. It must be
// safe for concurrent use and deterministic per ID.
type Factory func(id string) (Stream, error)

// StateSizer is an optional Stream capability: streams that can report the
// bytes of per-stream state they retain in memory (sufficient statistics,
// history buffers, accumulators). Stores cache the value beside the length so
// Stats can aggregate it without faulting streams in or taking stream locks.
type StateSizer interface {
	StateBytes() int
}

// streamStateBytes reads a stream's retained-state size, 0 when the stream
// does not report one.
func streamStateBytes(st Stream) int64 {
	if sz, ok := st.(StateSizer); ok {
		return int64(sz.StateBytes())
	}
	return 0
}

// ErrNotFound is returned by store operations on IDs the store has never
// seen (or has deleted). Callers match it with errors.Is.
var ErrNotFound = errors.New("store: unknown stream")

// ErrNotPersistent is returned by Flush on backends without a disk layer.
var ErrNotPersistent = errors.New("store: backend has no persistence")

// Stats is a point-in-time snapshot of a store.
type Stats struct {
	// Streams is the number of live streams, resident or spilled.
	Streams int
	// Resident is the number of streams currently materialized in memory.
	Resident int
	// Spilled is the number of streams currently held only as segment files.
	Spilled int
	// Dirty is the number of streams modified since their last segment write
	// (always equal to Streams for non-persistent backends).
	Dirty int
	// Observations is the total observation count across all streams, from
	// per-stream cached lengths (no fault-in).
	Observations int64
	// StateBytes is the total retained in-memory state across resident
	// streams, from per-stream cached sizes (see StateSizer; spilled streams
	// retain no memory and contribute 0).
	StateBytes int64
	// Evictions counts resident→disk spills since the store opened.
	Evictions int64
	// Faults counts disk→resident fault-ins since the store opened.
	Faults int64
	// EvictErrors counts failed spill attempts (the stream stays resident).
	EvictErrors int64
}

// FlushStats describes one incremental checkpoint.
type FlushStats struct {
	// Segments is the number of segment files written by this flush — the
	// number of streams that were dirty, not the number of live streams.
	Segments int
	// SegmentBytes is the total encoded size of those segments.
	SegmentBytes int
	// ManifestBytes is the size of the manifest written at the end.
	ManifestBytes int
	// Streams is the number of streams the manifest covers.
	Streams int
}

// StreamStore is the Pool's storage engine. All methods are safe for
// concurrent use; operations on the same stream serialize, distinct streams
// proceed in parallel (up to shard granularity).
type StreamStore interface {
	// Update runs fn with exclusive access to the stream's materialized
	// state, creating the stream (when create is set) or faulting it in from
	// disk as needed. A nil return from fn marks the stream dirty. When the
	// stream does not exist and create is false, Update returns ErrNotFound
	// without calling fn.
	Update(id string, create bool, fn func(Stream) error) error
	// Read is Update without creation and without the dirty mark: for
	// operations whose state changes (if any) are deterministically
	// reconstructible from the last persisted state — estimate-cache fills,
	// lazy noise materialization — so the stream's segment on disk remains a
	// valid snapshot and a later eviction costs no write. Callers whose fn
	// mutates state that future *outputs* depend on must use Update.
	Read(id string, fn func(Stream) error) error
	// Length returns the stream's cached observation count without faulting
	// it in, and whether the stream exists.
	Length(id string) (int, bool)
	// Has reports whether the stream exists (resident or spilled).
	Has(id string) bool
	// Delete removes a stream and reports whether it existed.
	Delete(id string) bool
	// Keys returns the IDs of all live streams, sorted.
	Keys() []string
	// Install inserts (or replaces) a stream with already-built state —
	// the restore path. The installed stream is resident and dirty.
	Install(id string, st Stream)
	// Marshal returns the stream's serialized state. For spilled streams
	// this reads the segment file without faulting the stream in.
	Marshal(id string) ([]byte, error)
	// Export returns the stream's state as a complete, self-describing
	// segment file (internal/codec segment framing: store identity, stream
	// ID, CRC) plus its cached length — the unit of transfer the cluster
	// layer ships between nodes. For spilled streams the bytes come straight
	// from the segment file without faulting the stream in.
	Export(id string) (data []byte, length int64, err error)
	// Import installs a stream from a segment file produced by Export on a
	// peer with the same store identity. The segment's CRC and identity are
	// verified before any local state changes, so a corrupt or foreign
	// segment is rejected without side effects. length is the stream's
	// observation count at export time (segments do not embed it). An
	// existing stream with the same ID is replaced. Returns the imported
	// stream's ID.
	Import(data []byte, length int64) (id string, err error)
	// Stats returns a point-in-time snapshot.
	Stats() Stats
	// Flush writes an incremental checkpoint: every dirty stream's segment,
	// then the manifest. Non-persistent backends return ErrNotPersistent.
	Flush() (FlushStats, error)
}
