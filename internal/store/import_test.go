package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// segFiles lists the segment directory of a spill store rooted at dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	dirents, err := os.ReadDir(filepath.Join(dir, SegmentDir))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range dirents {
		out = append(out, de.Name())
	}
	return out
}

// TestExportImportRoundTrip moves streams between stores through the segment
// transfer format: resident→resident, spill→spill (with the source stream
// both resident and spilled-clean), and across backends.
func TestExportImportRoundTrip(t *testing.T) {
	t.Run("resident", func(t *testing.T) {
		src := NewResident("mech", fakeFactory())
		appendTo(t, src, "a", 1.5)
		appendTo(t, src, "a", -2.25)
		data, n, err := src.Export("a")
		if err != nil || n != 2 {
			t.Fatalf("export: n=%d err=%v", n, err)
		}
		dst := NewResident("mech", fakeFactory())
		id, err := dst.Import(data, n)
		if err != nil || id != "a" {
			t.Fatalf("import: id=%q err=%v", id, err)
		}
		if got := valuesOf(t, dst, "a"); len(got) != 2 || got[0] != 1.5 || got[1] != -2.25 {
			t.Fatalf("imported values %v", got)
		}
		if l, ok := dst.Length("a"); !ok || l != 2 {
			t.Fatalf("imported length %d %v", l, ok)
		}
	})

	t.Run("spill", func(t *testing.T) {
		srcDir, dstDir := t.TempDir(), t.TempDir()
		src, err := OpenSpill(srcDir, "mech", 1, fakeFactory())
		if err != nil {
			t.Fatal(err)
		}
		// Two streams over a cap of 1, so one is spilled-clean after a flush
		// and Export serves it verbatim from its file.
		appendTo(t, src, "hot", 3.5)
		appendTo(t, src, "cold", 7.25)
		if _, err := src.Flush(); err != nil {
			t.Fatal(err)
		}

		dst, err := OpenSpill(dstDir, "mech", 0, fakeFactory())
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"hot", "cold"} {
			data, n, err := src.Export(id)
			if err != nil || n != 1 {
				t.Fatalf("export %s: n=%d err=%v", id, n, err)
			}
			if got, err := dst.Import(data, n); err != nil || got != id {
				t.Fatalf("import %s: id=%q err=%v", id, got, err)
			}
		}
		// Imported streams are spilled (not resident) until first access.
		if st := dst.Stats(); st.Streams != 2 || st.Resident != 0 {
			t.Fatalf("post-import stats: %+v", st)
		}
		if got := valuesOf(t, dst, "hot"); len(got) != 1 || got[0] != 3.5 {
			t.Fatalf("hot: %v", got)
		}
		if got := valuesOf(t, dst, "cold"); len(got) != 1 || got[0] != 7.25 {
			t.Fatalf("cold: %v", got)
		}

		// After a flush the manifest adopts the imported files and a reopen
		// restores them.
		if _, err := dst.Flush(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSpill(dstDir, "mech", 0, fakeFactory())
		if err != nil {
			t.Fatal(err)
		}
		if got := valuesOf(t, re, "cold"); len(got) != 1 || got[0] != 7.25 {
			t.Fatalf("reopened cold: %v", got)
		}
	})

	t.Run("cross-backend", func(t *testing.T) {
		src := NewResident("mech", fakeFactory())
		appendTo(t, src, "x", 9)
		data, n, err := src.Export("x")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := OpenSpill(t.TempDir(), "mech", 0, fakeFactory())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Import(data, n); err != nil {
			t.Fatal(err)
		}
		if got := valuesOf(t, dst, "x"); len(got) != 1 || got[0] != 9 {
			t.Fatalf("cross-backend: %v", got)
		}
	})
}

// TestImportRejectsCorruptSegment flips a bit in a transferred segment and
// requires Import to reject it with NO local side effects: no stream
// registered, no segment file left behind, and the store's manifest still
// round-trips cleanly — a corrupt push must not poison the receiving node.
func TestImportRejectsCorruptSegment(t *testing.T) {
	src := NewResident("mech", fakeFactory())
	appendTo(t, src, "victim", 4.5)
	data, n, err := src.Export("victim")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	dst, err := OpenSpill(dir, "mech", 0, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, dst, "local", 1)
	if _, err := dst.Flush(); err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x10
	if _, err := dst.Import(corrupt, n); err == nil {
		t.Fatal("corrupt segment imported without error")
	}
	if dst.Has("victim") {
		t.Fatal("corrupt import registered the stream")
	}
	if files := segFiles(t, dir); len(files) != 1 {
		t.Fatalf("corrupt import left files behind: %v", files)
	}

	// Identity mismatches are rejected the same way.
	foreign := NewResident("other-mech", fakeFactory())
	appendTo(t, foreign, "victim", 4.5)
	fdata, fn, err := foreign.Export("victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import(fdata, fn); err == nil {
		t.Fatal("foreign-mechanism segment imported without error")
	}

	// The local stream and manifest are untouched: flush and reopen still
	// restore exactly the pre-import state.
	if _, err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSpill(dir, "mech", 0, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	if re.Has("victim") {
		t.Fatal("victim stream survived into the reopened store")
	}
	if got := valuesOf(t, re, "local"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("local stream damaged: %v", got)
	}
}

// TestImportOrphanGC simulates a node dying between importing handoff
// segments and the flush that would adopt them: the imported files are
// unreferenced by the manifest, so boot-time GC removes them and the store
// comes up exactly as the last manifest describes — the half-finished import
// leaves no trace, and the source (which keeps ownership until commit)
// remains the authoritative copy.
func TestImportOrphanGC(t *testing.T) {
	src := NewResident("mech", fakeFactory())
	appendTo(t, src, "moving", 8)
	data, n, err := src.Export("moving")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	dst, err := OpenSpill(dir, "mech", 0, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, dst, "settled", 2)
	if _, err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import(data, n); err != nil {
		t.Fatal(err)
	}
	if !dst.Has("moving") {
		t.Fatal("import did not register the stream")
	}
	if files := segFiles(t, dir); len(files) != 2 {
		t.Fatalf("want settled + imported segment files, got %v", files)
	}

	// "Crash": reopen the directory without flushing. The import never made
	// it into a manifest, so its file is an orphan.
	re, err := OpenSpill(dir, "mech", 0, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	if re.Has("moving") {
		t.Fatal("half-finished import survived the crash")
	}
	if files := segFiles(t, dir); len(files) != 1 {
		t.Fatalf("orphan segment not collected on boot: %v", files)
	}
	if got := valuesOf(t, re, "settled"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("settled stream damaged: %v", got)
	}
}

// TestImportReplacesExisting checks the replace path: importing over a live
// stream supersedes it, and the superseded segment file is collected by the
// next flush.
func TestImportReplacesExisting(t *testing.T) {
	src := NewResident("mech", fakeFactory())
	appendTo(t, src, "s", 10)
	appendTo(t, src, "s", 11)
	data, n, err := src.Export("s")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	dst, err := OpenSpill(dir, "mech", 0, fakeFactory())
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, dst, "s", 99)
	if _, err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import(data, n); err != nil {
		t.Fatal(err)
	}
	if got := valuesOf(t, dst, "s"); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("replacement not visible: %v", got)
	}
	if _, err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if files := segFiles(t, dir); len(files) != 1 {
		t.Fatalf("superseded segment not collected: %v", files)
	}

	// Export of a stream that does not exist.
	if _, _, err := dst.Export("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Export(ghost) = %v, want ErrNotFound", err)
	}
}
