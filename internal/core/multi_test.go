package core

import (
	"strings"
	"testing"

	"privreg/internal/codec"
	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// This file audits the multi-outcome engine against an independent reference:
// for every outcome, a from-scratch recomputation folds the clamped row log
// into fresh per-outcome QuadraticStats and runs one keyed solve with the
// invocation index the mechanism's schedule assigns — and the property test
// drives the mechanism through randomly interleaved row observes, flat-batch
// observes, per-outcome estimate reads (in random outcome order, including
// rounds that read only a subset), and mid-stream checkpoint/restore into
// differently-seeded instances, requiring bitwise agreement at every read.

const (
	multiDim     = 3
	multiK       = 4
	multiHorizon = 48
	multiTau     = 8
)

func multiBatchOpts() erm.PrivateBatchOptions { return erm.PrivateBatchOptions{Iterations: 12} }

func buildMulti(t *testing.T, cons constraint.Set, seed int64) *MultiOutcome {
	t.Helper()
	m, err := NewMultiOutcome(cons, multiK, privacy(), multiHorizon, randx.NewSource(seed),
		MultiOptions{Tau: multiTau, Batch: multiBatchOpts()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// multiRow is one clamped row of the reference log.
type multiRow struct {
	x  vec.Vector
	ys []float64
}

func clampMultiRow(x vec.Vector, ys []float64) multiRow {
	cx := x.Clone()
	clampInto(cx, x, 0)
	cys := make([]float64, len(ys))
	for i, y := range ys {
		if y > 1 {
			y = 1
		} else if y < -1 {
			y = -1
		}
		cys[i] = y
	}
	return multiRow{x: cx, ys: cys}
}

// multiPerCall recomputes the budget split the mechanism derives at
// construction: total → per outcome (advanced composition over k) → per
// boundary solve (advanced composition over T/τ).
func multiPerCall(t *testing.T) dp.Params {
	t.Helper()
	perOutcome, err := dp.PerInvocationAdvanced(privacy(), multiK)
	if err != nil {
		t.Fatal(err)
	}
	perCall, err := dp.PerInvocationAdvanced(perOutcome, multiHorizon/multiTau)
	if err != nil {
		t.Fatal(err)
	}
	return perCall
}

// refMultiEstimate recomputes outcome i's estimate after n rows from first
// principles: fold the clamped prefix up to the last τ boundary into fresh
// single-outcome statistics for that outcome and run one solve keyed by
// (SubKey(key, i), boundary index).
func refMultiEstimate(t *testing.T, cons constraint.Set, rows []multiRow, outcome int, key int64, per dp.Params) vec.Vector {
	t.Helper()
	inv := len(rows) / multiTau
	if inv == 0 {
		return cons.Project(vec.NewVector(cons.Dim()))
	}
	stats := erm.NewQuadraticStats(cons.Dim())
	for _, r := range rows[:inv*multiTau] {
		stats.Add(r.x, r.ys[outcome])
	}
	theta, err := erm.NewSolver(cons).SolveStats(loss.Squared{}, stats, per,
		randx.SubKey(key, uint64(outcome)), uint64(inv), multiBatchOpts())
	if err != nil {
		t.Fatal(err)
	}
	return theta
}

// TestMultiOutcomeInterleavedOpsMatchReference is the bitwise audit of the
// shared-statistics engine. Lazy per-outcome solves, memo staleness across τ
// boundaries, outcomes left unread across several boundaries (superseded
// snapshots), flat-batch folding, and pending-snapshot serialization are all
// exercised by the interleaving; any divergence from the independent
// reference is an exact mismatch.
func TestMultiOutcomeInterleavedOpsMatchReference(t *testing.T) {
	cons := constraint.NewL2Ball(multiDim, 1)
	per := multiPerCall(t)
	for trial := 0; trial < 4; trial++ {
		seed := int64(100*trial + 7)
		key := randx.NewSource(seed).DeriveKey()
		mech := buildMulti(t, cons, seed)
		driver := randx.NewSource(int64(5000*trial + 31))
		var rows []multiRow

		nextRow := func() (vec.Vector, []float64) {
			x := vec.Vector(driver.NormalVector(multiDim, 0.8))
			ys := make([]float64, multiK)
			for i := range ys {
				ys[i] = driver.Normal(0, 0.7)
			}
			return x, ys
		}
		checkOutcome := func(label string, i int) {
			t.Helper()
			got, err := mech.EstimateOutcome(i)
			if err != nil {
				t.Fatal(err)
			}
			want := refMultiEstimate(t, cons, rows, i, key, per)
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("trial %d %s outcome %d at t=%d coord %d: mechanism %v != reference %v",
						trial, label, i, len(rows), c, got[c], want[c])
				}
			}
		}

		for len(rows) < multiHorizon {
			switch driver.Intn(6) {
			case 0, 1: // row observe, estimates unread
				x, ys := nextRow()
				rows = append(rows, clampMultiRow(x, ys))
				if err := mech.ObserveMulti(x, ys); err != nil {
					t.Fatal(err)
				}
			case 2: // flat batch crossing (possibly several) boundaries
				n := 1 + driver.Intn(10)
				if room := multiHorizon - len(rows); n > room {
					n = room
				}
				xs := make([]float64, 0, n*multiDim)
				ys := make([]float64, 0, n*multiK)
				for j := 0; j < n; j++ {
					x, ry := nextRow()
					rows = append(rows, clampMultiRow(x, ry))
					xs = append(xs, x...)
					ys = append(ys, ry...)
				}
				if err := mech.ObserveMultiFlat(xs, ys); err != nil {
					t.Fatal(err)
				}
			case 3: // read a random subset of outcomes, in random order
				for _, i := range driver.Perm(multiK)[:1+driver.Intn(multiK)] {
					checkOutcome("EstimateOutcome", i)
				}
			case 4: // repeated read: the per-outcome memo must hold
				i := driver.Intn(multiK)
				checkOutcome("EstimateOutcome", i)
				checkOutcome("repeat EstimateOutcome", i)
			case 5: // checkpoint, restore into a differently seeded instance
				blob, err := mech.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				restored := buildMulti(t, cons, seed+9000)
				if err := restored.UnmarshalBinary(blob); err != nil {
					t.Fatal(err)
				}
				mech = restored
				for i := 0; i < multiK; i++ {
					checkOutcome("post-restore EstimateOutcome", i)
				}
			}
		}
		for i := 0; i < multiK; i++ {
			checkOutcome("final EstimateOutcome", i)
		}
		if mech.Len() != multiHorizon {
			t.Fatalf("Len = %d, want %d", mech.Len(), multiHorizon)
		}
	}
}

// TestMultiOutcomeScalarPathDegenerates pins the Estimator-interface contract:
// scalar Observe/Estimate work on a k=1 mechanism and are rejected on wider
// ones.
func TestMultiOutcomeScalarPathDegenerates(t *testing.T) {
	cons := constraint.NewL2Ball(multiDim, 1)
	single, err := NewMultiOutcome(cons, 1, privacy(), multiHorizon, randx.NewSource(3),
		MultiOptions{Tau: multiTau, Batch: multiBatchOpts()})
	if err != nil {
		t.Fatal(err)
	}
	p := loss.Point{X: vec.NewVector(multiDim), Y: 0.5}
	p.X[0] = 0.3
	if err := single.Observe(p); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Estimate(); err != nil {
		t.Fatal(err)
	}
	wide := buildMulti(t, cons, 3)
	if err := wide.Observe(p); err == nil {
		t.Fatal("scalar Observe on a k=4 mechanism should be rejected")
	}
	if err := wide.ObserveBatch([]loss.Point{p}); err == nil {
		t.Fatal("scalar ObserveBatch on a k=4 mechanism should be rejected")
	}
	if _, err := wide.EstimateOutcome(multiK); err == nil {
		t.Fatal("out-of-range outcome index should be rejected")
	}
}

// TestMultiOutcomeCheckpointFlatInT pins the checkpoint memory claim: the blob
// is O(d² + k·d) and must not grow with the stream.
func TestMultiOutcomeCheckpointFlatInT(t *testing.T) {
	cons := constraint.NewL2Ball(multiDim, 1)
	sizeAt := func(n int) int {
		mech := buildMulti(t, cons, 3)
		driver := randx.NewSource(77)
		for i := 0; i < n; i++ {
			x := vec.Vector(driver.NormalVector(multiDim, 0.5))
			ys := make([]float64, multiK)
			for j := range ys {
				ys[j] = driver.Normal(0, 0.5)
			}
			if err := mech.ObserveMulti(x, ys); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := mech.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return len(blob)
	}
	if small, large := sizeAt(multiTau), sizeAt(multiHorizon); small != large {
		t.Fatalf("checkpoint grew with the stream: %d -> %d bytes", small, large)
	}
}

// TestMultiOutcomeRejectsWrongShape pins the restore validation: a checkpoint
// of a different outcome count or version must be rejected loudly.
func TestMultiOutcomeRejectsWrongShape(t *testing.T) {
	cons := constraint.NewL2Ball(multiDim, 1)
	mech := buildMulti(t, cons, 5)
	var w codec.Writer
	w.Version(99)
	w.String(mech.Name())
	if err := mech.UnmarshalBinary(w.Bytes()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version should be rejected with a version error, got %v", err)
	}
	other, err := NewMultiOutcome(cons, multiK+1, privacy(), multiHorizon, randx.NewSource(5),
		MultiOptions{Tau: multiTau, Batch: multiBatchOpts()})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := other.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := mech.UnmarshalBinary(blob); err == nil {
		t.Fatal("checkpoint with a different outcome count should be rejected")
	}
}
