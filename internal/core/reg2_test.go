package core

import (
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/stream"
	"privreg/internal/vec"
)

func sparseDomainAndConstraint(d, k int) (constraint.Set, constraint.Set) {
	return constraint.NewSparseSet(d, k, 1), constraint.NewL1Ball(d, 1)
}

func TestProjectedRegressionParameterSelection(t *testing.T) {
	d, k := 128, 3
	domain, cons := sparseDomainAndConstraint(d, k)
	src := randx.NewSource(1)
	est, err := NewProjectedRegression(domain, cons, privacy(), 64, src, ProjectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Width() <= 0 {
		t.Fatal("width should be positive")
	}
	if est.Gamma() <= 0 || est.Gamma() > 0.5 {
		t.Fatalf("gamma = %v out of range", est.Gamma())
	}
	if m := est.ProjectionDim(); m < 1 || m > d {
		t.Fatalf("projection dimension %d out of range", m)
	}
	// A low-width domain in high ambient dimension should use far fewer than d
	// dimensions once d is large enough relative to the width rule.
	dBig := 4096
	domainBig := constraint.NewSparseSet(dBig, k, 1)
	consBig := constraint.NewL1Ball(dBig, 1)
	estBig, err := NewProjectedRegression(domainBig, consBig, privacy(), 64, randx.NewSource(2), ProjectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if estBig.ProjectionDim() >= dBig {
		t.Fatalf("no compression at d=%d: m=%d", dBig, estBig.ProjectionDim())
	}
	// Explicit overrides are honored.
	est2, err := NewProjectedRegression(domain, cons, privacy(), 64, randx.NewSource(3), ProjectedOptions{ProjectionDim: 7, Gamma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if est2.ProjectionDim() != 7 || est2.Gamma() != 0.3 {
		t.Fatalf("overrides ignored: m=%d gamma=%v", est2.ProjectionDim(), est2.Gamma())
	}
}

func TestProjectedRegressionValidation(t *testing.T) {
	domain, cons := sparseDomainAndConstraint(16, 2)
	src := randx.NewSource(4)
	if _, err := NewProjectedRegression(nil, cons, privacy(), 8, src, ProjectedOptions{}); err == nil {
		t.Fatal("nil domain should be rejected")
	}
	if _, err := NewProjectedRegression(constraint.NewSparseSet(8, 2, 1), cons, privacy(), 8, src, ProjectedOptions{}); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	if _, err := NewProjectedRegression(domain, cons, dp.Params{Epsilon: 1, Delta: 0}, 8, src, ProjectedOptions{}); err == nil {
		t.Fatal("delta=0 should be rejected")
	}
	if _, err := NewProjectedRegression(domain, cons, privacy(), 0, src, ProjectedOptions{}); err == nil {
		t.Fatal("zero horizon should be rejected")
	}
	if _, err := NewProjectedRegression(domain, cons, privacy(), 8, nil, ProjectedOptions{}); err == nil {
		t.Fatal("nil source should be rejected")
	}
}

func TestProjectedRegressionEstimatesAreFeasible(t *testing.T) {
	d, k := 48, 3
	domain, cons := sparseDomainAndConstraint(d, k)
	src := randx.NewSource(5)
	est, err := NewProjectedRegression(domain, cons, privacy(), 32, src, ProjectedOptions{
		RegressionOptions: RegressionOptions{MaxIterations: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.05, k, 6)
	feed(t, est, gen, 32)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(theta) != d {
		t.Fatalf("estimate has dimension %d, want %d", len(theta), d)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatalf("estimate not in C: ‖θ‖₁ = %v", vec.Norm1(theta))
	}
	if !vec.IsFinite(theta) {
		t.Fatal("estimate has non-finite entries")
	}
	if est.Len() != 32 {
		t.Fatalf("Len = %d", est.Len())
	}
}

func TestProjectedRegressionLowNoiseBeatsTrivial(t *testing.T) {
	// With negligible privacy noise, the projected mechanism should track the
	// exact minimizer much better than the trivial constant output, despite the
	// dimensionality reduction and lifting.
	d, k, horizon := 64, 3, 96
	domain, cons := sparseDomainAndConstraint(d, k)
	src := randx.NewSource(7)
	est, err := NewProjectedRegression(domain, cons, hugeEpsilon(), horizon, src.Split(), ProjectedOptions{
		RegressionOptions: RegressionOptions{MaxIterations: 300, MinIterations: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := vec.NewVector(d)
	truth[1], truth[5], truth[9] = 0.5, -0.3, 0.2
	gen, err := stream.NewLinearModel(truth, 0.02, k, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewNonPrivateIncremental(cons, 0)
	for i := 0; i < horizon; i++ {
		p := gen.Next()
		if err := est.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := oracle.Estimate()
	base := oracle.Risk(exact)
	excess := oracle.Risk(theta) - base
	trivialExcess := oracle.Risk(vec.NewVector(d)) - base
	if excess >= trivialExcess {
		t.Fatalf("low-noise projected mechanism (excess %v) should beat the trivial predictor (excess %v)", excess, trivialExcess)
	}
}

func TestProjectedRegressionExactImageOption(t *testing.T) {
	d, k := 24, 2
	domain, cons := sparseDomainAndConstraint(d, k)
	src := randx.NewSource(8)
	est, err := NewProjectedRegression(domain, cons, privacy(), 16, src, ProjectedOptions{
		RegressionOptions: RegressionOptions{MaxIterations: 60},
		ExactImage:        true,
		ProjectionDim:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.05, k, 9)
	feed(t, est, gen, 16)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatal("estimate not feasible with the exact-image option")
	}
}

func TestProjectedRegressionReproducible(t *testing.T) {
	d, k := 32, 2
	run := func() vec.Vector {
		domain, cons := sparseDomainAndConstraint(d, k)
		src := randx.NewSource(123)
		est, err := NewProjectedRegression(domain, cons, privacy(), 16, src, ProjectedOptions{
			RegressionOptions: RegressionOptions{MaxIterations: 50},
		})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := linearStream(d, 0.05, k, 10)
		feed(t, est, gen, 16)
		theta, err := est.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return theta
	}
	if !vec.Equal(run(), run(), 0) {
		t.Fatal("same seed produced different outputs")
	}
}

func TestRobustProjectedRegressionNeutralizesOutliers(t *testing.T) {
	d, k := 32, 2
	domain, cons := sparseDomainAndConstraint(d, k)
	src := randx.NewSource(11)
	oracle := func(x vec.Vector) bool { return vec.NumNonzero(x) <= 2*k }
	est, err := NewRobustProjectedRegression(domain, cons, oracle, privacy(), 24, src, ProjectedOptions{
		RegressionOptions: RegressionOptions{MaxIterations: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate sparse (accepted) and dense (rejected) points.
	sparseGen, _ := linearStream(d, 0.05, k, 12)
	denseGen, _ := linearStream(d, 0.05, 0, 13)
	for i := 0; i < 24; i++ {
		var p loss.Point
		if i%2 == 0 {
			p = sparseGen.Next()
		} else {
			p = denseGen.Next()
		}
		if err := est.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	if est.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", est.Dropped())
	}
	if est.Len() != 24 {
		t.Fatalf("Len = %d, want 24 (dropped points still advance the stream)", est.Len())
	}
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatal("robust estimate not feasible")
	}
	if _, err := NewRobustProjectedRegression(domain, cons, nil, privacy(), 8, src, ProjectedOptions{}); err == nil {
		t.Fatal("nil oracle should be rejected")
	}
}

func TestFlattenOuterAndMatrixFromFlat(t *testing.T) {
	x := vec.Vector{1, -2}
	flat := make([]float64, 4)
	flattenOuter(flat, x)
	want := []float64{1, -2, -2, 4}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flattenOuter = %v, want %v", flat, want)
		}
	}
	m := matrixFromFlat([]float64{1, 5, 3, 4}, 2)
	if m.At(0, 1) != 4 || m.At(1, 0) != 4 {
		t.Fatalf("matrixFromFlat did not symmetrize: %v", m)
	}
	dst := vec.NewVector(2)
	if y := clampInto(dst, vec.Vector{3, 4}, 7); y != 1 {
		t.Fatalf("clampInto y = %v, want 1", y)
	}
	if n := vec.Norm2(dst); n > 1+1e-12 {
		t.Fatalf("clampInto did not rescale into the unit ball: norm %v", n)
	}
}
