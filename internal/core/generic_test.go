package core

import (
	"errors"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

func TestTauSelectionRules(t *testing.T) {
	// Convex rule: τ = ⌈(Td)^{1/3}/ε^{2/3}⌉, clamped to [1, T].
	if got := TauConvex(1000, 8, 1); got != 20 {
		t.Fatalf("TauConvex = %d, want 20", got)
	}
	if got := TauConvex(10, 10000, 1); got != 10 {
		t.Fatalf("TauConvex should clamp to T: %d", got)
	}
	if got := TauConvex(1000, 8, 100); got < 1 {
		t.Fatalf("TauConvex should be at least 1: %d", got)
	}
	// Strongly convex rule grows with d and shrinks with ν and ε.
	a := TauStronglyConvex(10000, 16, 1, 0.5, 1, 1)
	b := TauStronglyConvex(10000, 64, 1, 0.5, 1, 1)
	if b <= a {
		t.Fatalf("strongly convex tau should grow with d: %d vs %d", a, b)
	}
	c := TauStronglyConvex(10000, 16, 1, 2, 1, 1)
	if c >= a {
		t.Fatalf("strongly convex tau should shrink with nu: %d vs %d", c, a)
	}
	if got := TauStronglyConvex(100, 16, 1, 0, 1, 1); got != 100 {
		t.Fatalf("degenerate nu should clamp to T: %d", got)
	}
	// Width-based rule grows with T.
	w1 := TauWidthBased(100, 2, 1, 1, 1, 1)
	w2 := TauWidthBased(10000, 2, 1, 1, 1, 1)
	if w2 <= w1 {
		t.Fatalf("width-based tau should grow with T: %d vs %d", w1, w2)
	}
	// TauForLoss dispatches on strong convexity.
	cons := constraint.NewL2Ball(8, 1)
	plain := TauForLoss(loss.Squared{}, cons, 1000, privacy())
	strong := TauForLoss(loss.L2Regularized{Base: loss.Squared{}, Lambda: 1}, cons, 1000, privacy())
	if plain == strong {
		t.Fatal("strongly convex loss should select a different tau than a plain convex loss")
	}
}

func TestGenericERMRecomputesOnlyEveryTau(t *testing.T) {
	d := 3
	cons := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(1)
	mech, err := NewGenericERM(loss.Squared{}, cons, hugeEpsilon(), 12, src, GenericOptions{
		Tau:   4,
		Batch: erm.PrivateBatchOptions{Iterations: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mech.Tau() != 4 {
		t.Fatalf("Tau = %d", mech.Tau())
	}
	gen, _ := linearStream(d, 0.02, 0, 2)
	var prev vec.Vector
	changes := 0
	for i := 1; i <= 12; i++ {
		if err := mech.Observe(gen.Next()); err != nil {
			t.Fatal(err)
		}
		cur, err := mech.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !vec.Equal(cur, prev, 0) {
			changes++
			if i%4 != 0 {
				t.Fatalf("estimate changed at timestep %d, which is not a multiple of τ=4", i)
			}
		}
		prev = cur
	}
	if changes == 0 {
		t.Fatal("estimate never changed; the batch solver was never invoked")
	}
	if mech.Len() != 12 {
		t.Fatalf("Len = %d", mech.Len())
	}
}

func TestGenericERMPerCallBudgetComposesWithinTotal(t *testing.T) {
	cons := constraint.NewL2Ball(4, 1)
	src := randx.NewSource(2)
	total := privacy()
	mech, err := NewGenericERM(loss.Squared{}, cons, total, 256, src, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 256 / mech.Tau()
	if calls < 1 {
		calls = 1
	}
	per := mech.PerCallPrivacy()
	recomposed := dp.AdvancedComposition(per, calls, total.Delta/2)
	if recomposed.Epsilon > total.Epsilon*(1+1e-9) || recomposed.Delta > total.Delta*(1+1e-9) {
		t.Fatalf("per-call budget %v recomposes to %v, exceeding total %v over %d calls",
			per, recomposed, total, calls)
	}
}

func TestGenericERMAccurateWithNegligibleNoise(t *testing.T) {
	d := 3
	cons := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(3)
	horizon := 48
	mech, err := NewGenericERM(loss.Squared{}, cons, hugeEpsilon(), horizon, src, GenericOptions{
		Tau:   8,
		Batch: erm.PrivateBatchOptions{Iterations: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.01, 0, 4)
	data := feed(t, mech, gen, horizon)
	theta, err := mech.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := erm.Exact(loss.Squared{}, cons, data, erm.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	excess := loss.Empirical(loss.Squared{}, theta, data) - loss.Empirical(loss.Squared{}, exact, data)
	// At a multiple of τ with negligible privacy noise only the black-box
	// solver's finite optimization budget separates the estimate from optimal;
	// it must clearly beat the trivial constant predictor.
	trivialExcess := loss.Empirical(loss.Squared{}, vec.NewVector(d), data) - loss.Empirical(loss.Squared{}, exact, data)
	if excess >= trivialExcess/2 {
		t.Fatalf("excess risk %v too large for negligible noise (trivial = %v)", excess, trivialExcess)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatal("estimate not feasible")
	}
}

func TestGenericERMValidation(t *testing.T) {
	cons := constraint.NewL2Ball(2, 1)
	src := randx.NewSource(5)
	if _, err := NewGenericERM(nil, cons, privacy(), 8, src, GenericOptions{}); err == nil {
		t.Fatal("nil loss should be rejected")
	}
	if _, err := NewGenericERM(loss.Squared{}, cons, privacy(), 0, src, GenericOptions{}); err == nil {
		t.Fatal("zero horizon should be rejected")
	}
	if _, err := NewGenericERM(loss.Squared{}, cons, dp.Params{}, 8, src, GenericOptions{}); err == nil {
		t.Fatal("invalid privacy should be rejected")
	}
	if _, err := NewGenericERM(loss.Squared{}, cons, privacy(), 8, nil, GenericOptions{}); err == nil {
		t.Fatal("nil source should be rejected")
	}
	mech, err := NewGenericERM(loss.Squared{}, cons, privacy(), 2, src, GenericOptions{Tau: 1, Batch: erm.PrivateBatchOptions{Iterations: 5}})
	if err != nil {
		t.Fatal(err)
	}
	p := loss.Point{X: vec.Vector{0.5, 0}, Y: 0.5}
	if err := mech.Observe(p); err != nil {
		t.Fatal(err)
	}
	if err := mech.Observe(p); err != nil {
		t.Fatal(err)
	}
	if err := mech.Observe(p); !errors.Is(err, ErrStreamFull) {
		t.Fatalf("expected ErrStreamFull, got %v", err)
	}
}

func TestNaiveRecomputeRunsAndIsFeasible(t *testing.T) {
	d := 3
	cons := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(6)
	mech, err := NewNaiveRecompute(loss.Squared{}, cons, privacy(), 16, src, NaiveOptions{Batch: erm.PrivateBatchOptions{Iterations: 10}})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.05, 0, 7)
	feed(t, mech, gen, 16)
	theta, err := mech.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Contains(theta, 1e-6) {
		t.Fatal("estimate not feasible")
	}
	if mech.Len() != 16 {
		t.Fatalf("Len = %d", mech.Len())
	}
	// Over-feeding errors.
	if err := mech.Observe(loss.Point{X: vec.Vector{0.1, 0, 0}, Y: 0}); !errors.Is(err, ErrStreamFull) {
		t.Fatalf("expected ErrStreamFull, got %v", err)
	}
}

func TestNaiveRecomputeNoisierThanGeneric(t *testing.T) {
	// The per-step budget of the naive mechanism must be strictly smaller than
	// the per-call budget of the τ-spaced generic mechanism for the same total
	// budget — the algebraic core of the √T-vs-(T/τ) comparison.
	d, horizon := 4, 128
	cons := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(8)
	generic, err := NewGenericERM(loss.Squared{}, cons, privacy(), horizon, src.Split(), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perStepNaive, err := dp.PerInvocationAdvanced(privacy(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if perStepNaive.Epsilon >= generic.PerCallPrivacy().Epsilon {
		t.Fatalf("naive per-step ε %v should be smaller than generic per-call ε %v",
			perStepNaive.Epsilon, generic.PerCallPrivacy().Epsilon)
	}
}

func TestExcessRiskBoundHelpers(t *testing.T) {
	p := privacy()
	// Bounds are positive, capped by the trivial bound, and monotone in the key
	// parameters (monotonicity is checked in a regime where the cap is not
	// active, i.e. with a moderate log(1/δ) factor).
	b1 := ExcessRiskBoundConvex(1000, 10, 1, 1, p)
	if b1 <= 0 || b1 > 1000*1*1 {
		t.Fatalf("convex bound out of range: %v", b1)
	}
	loose := dp.Params{Epsilon: 1, Delta: 0.1}
	if ExcessRiskBoundConvex(1000, 100, 1, 1, loose) <= ExcessRiskBoundConvex(1000, 10, 1, 1, loose) {
		t.Fatal("convex bound should grow with d")
	}
	r1 := ExcessRiskBoundReg1(1000, 16, 1, p, 0.05)
	r2 := ExcessRiskBoundReg1(1000, 64, 1, p, 0.05)
	if r2 <= r1 {
		t.Fatal("reg1 bound should grow with d")
	}
	g1 := ExcessRiskBoundReg2(1000, 3, 1, p, 0.05, 0)
	g2 := ExcessRiskBoundReg2(8000, 3, 1, p, 0.05, 0)
	if g2 <= g1 {
		t.Fatal("reg2 bound should grow with T")
	}
	// Check the OPT terms in a regime where the trivial-bound cap is inactive
	// (very long stream, loose δ).
	big := ExcessRiskBoundReg2(1<<20, 3, 1, loose, 0.05, 0)
	bigOpt := ExcessRiskBoundReg2(1<<20, 3, 1, loose, 0.05, 100)
	if bigOpt <= big {
		t.Fatal("reg2 bound should grow with OPT")
	}
}
