package core

import (
	"errors"
	"math"
	"testing"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/stream"
	"privreg/internal/vec"
)

func privacy() dp.Params { return dp.Params{Epsilon: 1, Delta: 1e-6} }

// hugeEpsilon yields negligible noise so mechanisms can be checked against the
// exact solution.
func hugeEpsilon() dp.Params { return dp.Params{Epsilon: 1e7, Delta: 1e-6} }

func linearStream(d int, noise float64, sparsity int, seed int64) (stream.Generator, vec.Vector) {
	src := randx.NewSource(seed)
	truth := vec.Vector(src.UnitSphere(d))
	truth.Scale(0.7)
	gen, err := stream.NewLinearModel(truth, noise, sparsity, src.Split())
	if err != nil {
		panic(err)
	}
	return gen, truth
}

func feed(t *testing.T, est Estimator, gen stream.Generator, n int) []loss.Point {
	t.Helper()
	data := make([]loss.Point, 0, n)
	for i := 0; i < n; i++ {
		p := gen.Next()
		data = append(data, p)
		if err := est.Observe(p); err != nil {
			t.Fatalf("Observe failed at %d: %v", i, err)
		}
	}
	return data
}

func TestClampPoint(t *testing.T) {
	p := clampPoint(loss.Point{X: vec.Vector{3, 4}, Y: 5})
	if math.Abs(vec.Norm2(p.X)-1) > 1e-12 {
		t.Fatalf("covariate not clipped to unit norm: %v", vec.Norm2(p.X))
	}
	if p.Y != 1 {
		t.Fatalf("response not clamped: %v", p.Y)
	}
	q := clampPoint(loss.Point{X: vec.Vector{0.1, 0.1}, Y: -0.5})
	if !vec.Equal(q.X, vec.Vector{0.1, 0.1}, 1e-15) || q.Y != -0.5 {
		t.Fatal("in-range point modified")
	}
}

func TestTrivialConstant(t *testing.T) {
	c := constraint.NewL2Ball(3, 1)
	m := NewTrivialConstant(c)
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	before, _ := m.Estimate()
	if err := m.Observe(loss.Point{X: vec.Vector{1, 0, 0}, Y: 1}); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Estimate()
	if !vec.Equal(before, after, 0) {
		t.Fatal("trivial mechanism output depends on the data")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !c.Contains(after, 1e-9) {
		t.Fatal("trivial output not feasible")
	}
}

func TestNonPrivateIncrementalTracksExactMinimizer(t *testing.T) {
	d := 4
	c := constraint.NewL2Ball(d, 1)
	m := NewNonPrivateIncremental(c, 0)
	gen, _ := linearStream(d, 0.02, 0, 1)
	data := feed(t, m, gen, 120)
	got, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := erm.Exact(loss.Squared{}, c, data, erm.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Risk(got) > m.Risk(exact)+1e-5 {
		t.Fatalf("incremental baseline risk %v worse than batch exact %v", m.Risk(got), m.Risk(exact))
	}
	if !c.Contains(got, 1e-6) {
		t.Fatal("estimate not feasible")
	}
	zero := m.Privacy()
	if zero.Epsilon != 0 {
		t.Fatal("baseline should report a zero privacy guarantee")
	}
}

func TestGradientRegressionConvergesWithNegligibleNoise(t *testing.T) {
	d := 5
	c := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(2)
	est, err := NewGradientRegression(c, hugeEpsilon(), 200, src, RegressionOptions{MaxIterations: 3000, MinIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.01, 0, 3)
	oracle := NewNonPrivateIncremental(c, 0)
	for i := 0; i < 200; i++ {
		p := gen.Next()
		if err := est.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := oracle.Estimate()
	excess := oracle.Risk(theta) - oracle.Risk(exact)
	// With negligible noise only the finite optimization budget separates the
	// mechanism from the exact minimizer; its excess must be tiny relative to the
	// trivial constant predictor's.
	trivial := oracle.Risk(vec.NewVector(d)) - oracle.Risk(exact)
	if excess > 0.3 || excess > trivial/10 {
		t.Fatalf("with negligible noise the mechanism should nearly match the exact solution; excess = %v (trivial = %v)", excess, trivial)
	}
	if !c.Contains(theta, 1e-6) {
		t.Fatal("estimate not feasible")
	}
}

func TestGradientRegressionEstimateFeasibleUnderRealNoise(t *testing.T) {
	d := 6
	c := constraint.NewL1Ball(d, 1)
	src := randx.NewSource(3)
	est, err := NewGradientRegression(c, privacy(), 64, src, RegressionOptions{MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := linearStream(d, 0.05, 2, 4)
	feed(t, est, gen, 64)
	theta, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(theta, 1e-6) {
		t.Fatalf("estimate %v not in the constraint set", theta)
	}
	if !vec.IsFinite(theta) {
		t.Fatal("estimate has non-finite entries")
	}
	if est.GradientErrorScale() <= 0 {
		t.Fatal("gradient error scale should be positive under real noise")
	}
	if est.Privacy() != privacy() {
		t.Fatal("privacy parameters not reported")
	}
}

func TestGradientRegressionReproducibleWithSameSeed(t *testing.T) {
	d := 4
	c := constraint.NewL2Ball(d, 1)
	run := func() vec.Vector {
		src := randx.NewSource(99)
		est, err := NewGradientRegression(c, privacy(), 32, src, RegressionOptions{MaxIterations: 80})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := linearStream(d, 0.05, 0, 5)
		feed(t, est, gen, 32)
		theta, err := est.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return theta
	}
	a := run()
	b := run()
	if !vec.Equal(a, b, 0) {
		t.Fatalf("same seed produced different outputs: %v vs %v", a, b)
	}
}

func TestGradientRegressionStreamFullAndValidation(t *testing.T) {
	c := constraint.NewL2Ball(2, 1)
	src := randx.NewSource(4)
	est, err := NewGradientRegression(c, privacy(), 2, src, RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := loss.Point{X: vec.Vector{0.1, 0.1}, Y: 0.1}
	if err := est.Observe(p); err != nil {
		t.Fatal(err)
	}
	if err := est.Observe(p); err != nil {
		t.Fatal(err)
	}
	if err := est.Observe(p); !errors.Is(err, ErrStreamFull) {
		t.Fatalf("expected ErrStreamFull, got %v", err)
	}
	if err := est.Observe(loss.Point{X: vec.Vector{1}, Y: 0}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	// Constructor validation.
	if _, err := NewGradientRegression(nil, privacy(), 4, src, RegressionOptions{}); err == nil {
		t.Fatal("nil constraint should be rejected")
	}
	if _, err := NewGradientRegression(c, dp.Params{Epsilon: 1, Delta: 0}, 4, src, RegressionOptions{}); err == nil {
		t.Fatal("delta=0 should be rejected")
	}
	if _, err := NewGradientRegression(c, privacy(), 0, src, RegressionOptions{}); err == nil {
		t.Fatal("zero horizon should be rejected")
	}
	if _, err := NewGradientRegression(c, privacy(), 4, nil, RegressionOptions{}); err == nil {
		t.Fatal("nil source should be rejected")
	}
}

func TestGradientRegressionHybridHasNoHorizonLimit(t *testing.T) {
	c := constraint.NewL2Ball(2, 1)
	src := randx.NewSource(5)
	est, err := NewGradientRegression(c, hugeEpsilon(), 4, src, RegressionOptions{UseHybridTree: true, MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	p := loss.Point{X: vec.Vector{0.5, 0.1}, Y: 0.3}
	for i := 0; i < 20; i++ { // well beyond the nominal horizon of 4
		if err := est.Observe(p); err != nil {
			t.Fatalf("hybrid mechanism rejected point %d: %v", i, err)
		}
	}
	if est.Len() != 20 {
		t.Fatalf("Len = %d", est.Len())
	}
	if _, err := est.Estimate(); err != nil {
		t.Fatal(err)
	}
}

func TestPrivateGradientMatchesExactWhenNoiseNegligible(t *testing.T) {
	d := 3
	c := constraint.NewL2Ball(d, 1)
	src := randx.NewSource(6)
	est, err := NewGradientRegression(c, hugeEpsilon(), 16, src, RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := erm.NewLeastSquaresState(d, c)
	gen, _ := linearStream(d, 0.05, 0, 7)
	for i := 0; i < 16; i++ {
		p := gen.Next()
		if err := est.Observe(p); err != nil {
			t.Fatal(err)
		}
		state.Observe(p.X, p.Y)
	}
	pg := est.Gradient()
	theta := vec.Vector{0.2, -0.1, 0.3}
	got := pg.Eval(theta)
	want := state.Gradient(theta)
	if vec.Dist2(got, want) > 1e-2*(1+vec.Norm2(want)) {
		t.Fatalf("private gradient %v differs from exact %v", got, want)
	}
}
