package core

import (
	"errors"
	"fmt"
	"math"

	"privreg/internal/constraint"
	"privreg/internal/dp"
	"privreg/internal/erm"
	"privreg/internal/loss"
	"privreg/internal/randx"
	"privreg/internal/vec"
)

// GenericERM is Mechanism PRIVINCERM (Section 3): the generic transformation of
// a private batch ERM algorithm into a private incremental one. The batch
// algorithm is invoked only every τ timesteps on the full history observed so
// far, with the per-invocation privacy budget derived from the total (ε, δ)
// budget by advanced composition over the T/τ invocations (the exact split used
// in the proof of Theorem 3.1). Between invocations the previous estimate is
// replayed, trading a staleness term of at most τ·L·‖C‖ against the reduced
// privacy noise.
type GenericERM struct {
	f       loss.Function
	c       constraint.Set
	privacy dp.Params
	perCall dp.Params
	horizon int
	tau     int

	batchOpts erm.PrivateBatchOptions
	src       *randx.Source

	history []loss.Point
	current vec.Vector
}

// GenericOptions configures GenericERM.
type GenericOptions struct {
	// Tau is the recomputation period τ. When zero it is chosen automatically
	// from the loss's convexity properties via TauForLoss.
	Tau int
	// Batch configures the private batch ERM black box.
	Batch erm.PrivateBatchOptions
}

// TauConvex returns the recomputation period τ = ⌈(Td)^{1/3} / ε^{2/3}⌉ used by
// Theorem 3.1 part 1 for general convex losses. The result is clamped to
// [1, T].
func TauConvex(horizon, dim int, epsilon float64) int {
	tau := int(math.Ceil(math.Cbrt(float64(horizon)*float64(dim)) / math.Pow(epsilon, 2.0/3.0)))
	return clampTau(tau, horizon)
}

// TauStronglyConvex returns τ = ⌈ √d·L / (ν^{1/2} ε ‖C‖^{1/2}) ⌉ used by
// Theorem 3.1 part 2 for ν-strongly convex losses, clamped to [1, T].
func TauStronglyConvex(horizon, dim int, lipschitz, nu, epsilon, diameter float64) int {
	if nu <= 0 || diameter <= 0 {
		return clampTau(horizon, horizon)
	}
	tau := int(math.Ceil(math.Sqrt(float64(dim)) * lipschitz / (math.Sqrt(nu) * epsilon * math.Sqrt(diameter))))
	return clampTau(tau, horizon)
}

// TauWidthBased returns τ = ⌈ √T·w(C)·C_ℓ^{1/4} / ((L‖C‖)^{1/4} ε^{1/2}) ⌉ used
// by Theorem 3.1 part 3 when the batch black box exploits constraint-set
// geometry (Talwar et al.), clamped to [1, T].
func TauWidthBased(horizon int, width, curvature, lipschitz, diameter, epsilon float64) int {
	denom := math.Pow(lipschitz*diameter, 0.25) * math.Sqrt(epsilon)
	if denom <= 0 {
		return clampTau(horizon, horizon)
	}
	tau := int(math.Ceil(math.Sqrt(float64(horizon)) * width * math.Pow(curvature, 0.25) / denom))
	return clampTau(tau, horizon)
}

func clampTau(tau, horizon int) int {
	if tau < 1 {
		return 1
	}
	if tau > horizon {
		return horizon
	}
	return tau
}

// TauForLoss picks τ automatically: the strongly convex rule when the loss has
// a positive strong-convexity modulus over C, otherwise the general convex rule.
func TauForLoss(f loss.Function, c constraint.Set, horizon int, p dp.Params) int {
	lip := f.Lipschitz(c, 1, 1)
	if nu := f.StrongConvexity(c, 1, 1); nu > 0 {
		return TauStronglyConvex(horizon, c.Dim(), lip, nu, p.Epsilon, c.Diameter())
	}
	return TauConvex(horizon, c.Dim(), p.Epsilon)
}

// NewGenericERM returns Mechanism PRIVINCERM for the given loss, constraint
// set, total privacy budget and stream horizon T.
func NewGenericERM(f loss.Function, c constraint.Set, p dp.Params, horizon int, src *randx.Source, opts GenericOptions) (*GenericERM, error) {
	if f == nil || c == nil {
		return nil, errors.New("core: nil loss or constraint set")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("core: horizon must be positive, got %d", horizon)
	}
	if src == nil {
		return nil, errors.New("core: nil randomness source")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tau := opts.Tau
	if tau <= 0 {
		tau = TauForLoss(f, c, horizon, p)
	}
	tau = clampTau(tau, horizon)
	calls := horizon / tau
	if calls < 1 {
		calls = 1
	}
	perCall, err := dp.PerInvocationAdvanced(p, calls)
	if err != nil {
		return nil, err
	}
	return &GenericERM{
		f:         f,
		c:         c,
		privacy:   p,
		perCall:   perCall,
		horizon:   horizon,
		tau:       tau,
		batchOpts: opts.Batch,
		src:       src,
		current:   c.Project(vec.NewVector(c.Dim())),
	}, nil
}

// Name implements Estimator.
func (g *GenericERM) Name() string { return "priv-inc-erm" }

// Tau returns the recomputation period in use.
func (g *GenericERM) Tau() int { return g.tau }

// PerCallPrivacy returns the per-invocation budget handed to the batch solver.
func (g *GenericERM) PerCallPrivacy() dp.Params { return g.perCall }

// Observe implements Estimator. On timesteps that are multiples of τ the
// private batch ERM black box is re-run on the full history with the per-call
// budget; on all other timesteps the previous output is retained.
func (g *GenericERM) Observe(p loss.Point) error {
	if len(g.history) >= g.horizon {
		return ErrStreamFull
	}
	g.history = append(g.history, clampPoint(p))
	t := len(g.history)
	if t%g.tau != 0 {
		return nil
	}
	theta, err := erm.PrivateBatch(g.f, g.c, g.history, g.perCall, g.src, g.batchOpts)
	if err != nil {
		return err
	}
	g.current = theta
	return nil
}

// ObserveBatch implements Estimator. The horizon check is hoisted so an
// oversized batch is rejected whole; each τ-boundary inside the batch still
// triggers its private batch solve, exactly as a scalar Observe loop would
// (skipping intermediate solves would change both the published sequence and
// the randomness stream).
func (g *GenericERM) ObserveBatch(ps []loss.Point) error {
	if len(g.history)+len(ps) > g.horizon {
		return ErrStreamFull
	}
	for _, p := range ps {
		if err := g.Observe(p); err != nil {
			return err
		}
	}
	return nil
}

// Estimate implements Estimator.
func (g *GenericERM) Estimate() (vec.Vector, error) { return g.current.Clone(), nil }

// Len implements Estimator.
func (g *GenericERM) Len() int { return len(g.history) }

// Privacy implements Estimator.
func (g *GenericERM) Privacy() dp.Params { return g.privacy }

// ExcessRiskBoundConvex returns the leading term of the Theorem 3.1 part 1
// excess-risk bound (Td)^{1/3}·L‖C‖·log^{5/2}(1/δ)/ε^{2/3}, capped at the
// trivial bound T·L‖C‖. It is used in EXPERIMENTS.md to annotate the predicted
// versus measured shapes.
func ExcessRiskBoundConvex(horizon, dim int, lipschitz, diameter float64, p dp.Params) float64 {
	trivial := float64(horizon) * lipschitz * diameter
	if p.Delta <= 0 || p.Delta >= 1 {
		return trivial
	}
	b := math.Cbrt(float64(horizon)*float64(dim)) * lipschitz * diameter *
		math.Pow(math.Log(1/p.Delta), 2.5) / math.Pow(p.Epsilon, 2.0/3.0)
	return math.Min(b, trivial)
}
